// The tracked-memory runtime: EasyCrash's substitute for PIN instrumentation.
//
// Applications allocate data objects here and perform all loads/stores of
// those objects through the Runtime, which routes them into the simulated
// cache hierarchy + NVM store, counts dynamic accesses (the crash-point
// clock), tracks the active code region, and executes the persistence plan
// (cache_block_flush calls) at region/main-loop persist points.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "easycrash/memsim/hierarchy.hpp"
#include "easycrash/memsim/nvm_store.hpp"
#include "easycrash/memsim/region_monitor.hpp"
#include "easycrash/runtime/data_object.hpp"
#include "easycrash/runtime/persistence_plan.hpp"

namespace easycrash::runtime {

/// Thrown when the armed crash point is reached. Models power loss /
/// processor failure: everything in the caches is gone, the NVM image stays.
struct CrashEvent {
  std::uint64_t accessIndex = 0;  ///< dynamic access index at which we crashed
  PointId activeRegion = kMainLoopEnd;  ///< innermost region, or kMainLoopEnd
  int iteration = 0;                    ///< main-loop iteration of the crash
  /// Full region stack at the crash instant, outermost first — the analogue
  /// of NVCT's CCTLib call-path information (paper §3): it distinguishes
  /// crash tests that stop in the same statement under different contexts.
  std::vector<PointId> regionPath;
};

/// Thrown by applications when corrupted state makes continued execution
/// impossible (the simulated analogue of a segmentation fault — paper
/// response class S3 "Interruption").
struct AppInterrupt {
  std::string reason;
};

#ifdef EASYCRASH_WATCHDOG_DISABLED
inline constexpr bool kWatchdogCompiledIn = false;
#else
inline constexpr bool kWatchdogCompiledIn = true;
#endif

/// Thrown from a tracked access when the installed cancellation flag is set
/// (the campaign watchdog flagging a runaway trial). Distinct from both
/// CrashEvent (simulated power loss) and AppInterrupt (simulated segfault):
/// cancellation is a harness decision, never an application response class.
struct TrialCancelled {
  std::uint64_t accessIndex = 0;  ///< window access count when cancelled
};

class Runtime {
 public:
  explicit Runtime(memsim::CacheConfig config = memsim::CacheConfig::scaledDefault());

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // ---- Data object registry -------------------------------------------------

  /// Allocate a data object of `bytes` bytes, block-aligned.
  ObjectId allocate(std::string name, std::uint64_t bytes, bool candidate,
                    bool readOnly = false);

  [[nodiscard]] const DataObjectInfo& object(ObjectId id) const;
  [[nodiscard]] std::optional<ObjectId> findObject(const std::string& name) const;
  [[nodiscard]] const std::vector<DataObjectInfo>& objects() const { return objects_; }
  [[nodiscard]] std::vector<ObjectId> candidateObjects() const;
  [[nodiscard]] std::uint64_t footprintBytes() const { return nextAddr_; }

  // ---- Tracked access (the instrumented load/store path) --------------------

  /// Tracked load/store: one simulated access plus one crash-clock tick.
  /// Inline so the memory system's header-level L1 fast path and the
  /// crash-window guard stay visible to the instrumented app's loops.
  void load(std::uint64_t addr, std::span<std::uint8_t> dst) {
    if (direct_) {
      nvm_.read(addr, dst);
    } else if (routesDirect(addr)) {
      nvm_.read(addr, dst);
      hierarchy_.touchRange(addr, dst.size());
    } else {
      hierarchy_.load(addr, dst);
    }
    if (monitor_ != nullptr) {
      monitor_->onRange(addr, static_cast<std::uint32_t>(dst.size()), 1,
                        /*write=*/false);
    }
    onAccess(1);
  }
  void store(std::uint64_t addr, std::span<const std::uint8_t> src) {
    if (direct_) {
      nvm_.poke(addr, src);
    } else if (routesDirect(addr)) {
      nvm_.poke(addr, src);
      hierarchy_.touchRange(addr, src.size());
    } else {
      hierarchy_.store(addr, src);
    }
    if (monitor_ != nullptr) {
      monitor_->onRange(addr, static_cast<std::uint32_t>(src.size()), 1,
                        /*write=*/true);
    }
    onAccess(1);
  }
  /// Bulk tracked access: move a whole span of `dst.size() / elemSize`
  /// logical elements in one call. Observationally identical to issuing the
  /// same range as ascending element-wise load()/store() calls of width
  /// `elemSize` — the crash clock advances by exactly that element count,
  /// region access attribution is unchanged, and armed captures/crashes fire
  /// at the same 1-based window index with the same memory state (each bulk
  /// chunk is clamped so its LAST element is the trigger; the scalar path
  /// also applies the triggering access before its clock tick). With the
  /// bulk fast path disabled (setBulk(false)) these literally lower to the
  /// element-wise loop. The span must be a whole number of elements.
  void loadRange(std::uint64_t addr, std::span<std::uint8_t> dst,
                 std::uint32_t elemSize);
  void storeRange(std::uint64_t addr, std::span<const std::uint8_t> src,
                  std::uint32_t elemSize);

  /// Architecturally-current value without counters or cache perturbation.
  void peek(std::uint64_t addr, std::span<std::uint8_t> dst) const;
  /// Read straight from the NVM image (what survives a crash).
  void readNvm(std::uint64_t addr, std::span<std::uint8_t> dst) const;

  template <typename T>
  [[nodiscard]] T loadValue(std::uint64_t addr) {
    T v{};
    load(addr, {reinterpret_cast<std::uint8_t*>(&v), sizeof(T)});
    return v;
  }
  template <typename T>
  void storeValue(std::uint64_t addr, const T& v) {
    store(addr, {reinterpret_cast<const std::uint8_t*>(&v), sizeof(T)});
  }
  /// Read-modify-write of one value: a tracked load, the mutation, and a
  /// tracked store (two clock ticks, exactly like loadValue + storeValue),
  /// but with the address computed once. Backs TrackedArray::Ref's compound
  /// assignments. Returns the stored value.
  template <typename T, typename Mutator>
  T updateValue(std::uint64_t addr, Mutator&& mutate) {
    T v = loadValue<T>(addr);
    v = mutate(v);
    storeValue(addr, v);
    return v;
  }
  template <typename T>
  [[nodiscard]] T peekValue(std::uint64_t addr) const {
    T v{};
    peek(addr, {reinterpret_cast<std::uint8_t*>(&v), sizeof(T)});
    return v;
  }

  // ---- Persistence (paper's cache_block_flush / load_value APIs) ------------

  /// Flush every cache block of an object (paper Figure 2a lines 20-22).
  void persistObject(ObjectId id, memsim::FlushKind kind = memsim::FlushKind::Clflushopt);
  /// Restore an object's bytes by storing `bytes` through the hierarchy
  /// (paper Figure 2b load_value): used on restart.
  void restoreObject(ObjectId id, std::span<const std::uint8_t> bytes);
  /// Snapshot the object's surviving NVM bytes (the post-crash dump file).
  [[nodiscard]] std::vector<std::uint8_t> dumpObjectNvm(ObjectId id) const;
  /// Snapshot the object's architecturally-current bytes (coherent snapshot,
  /// used by the physical-machine "verified" methodology of Figure 6).
  [[nodiscard]] std::vector<std::uint8_t> dumpObjectCurrent(ObjectId id) const;

  /// Inconsistency rate of an object: differing-dirty bytes / object size.
  [[nodiscard]] double inconsistentRate(ObjectId id) const;

  // ---- Region & main-loop structure -----------------------------------------

  void beginRegion(PointId region);
  void endRegion(PointId region);
  /// End of one iteration of the region's inner loop: persist point.
  void regionIterationEnd(PointId region);
  /// End of one main-loop iteration: persist point + iterator bookmark flush.
  void mainLoopIterationEnd(int iteration);
  /// Record the current main-loop iteration (bookmark object, always
  /// persisted — paper footnote 3).
  void bookmarkIteration(int iteration);
  [[nodiscard]] int bookmarkedIteration() const;
  /// Iteration bookmark surviving in NVM (what a restart would see).
  [[nodiscard]] int bookmarkedIterationNvm() const;

  [[nodiscard]] PointId activeRegion() const;
  [[nodiscard]] std::uint32_t regionCount() const { return regionCount_; }
  /// Declared by the application during setup (Table 1 "# of code regions").
  void declareRegionCount(std::uint32_t count) { regionCount_ = count; }

  /// Dynamic accesses attributed to each region during the crash window
  /// (region kMainLoopEnd collects accesses outside any region). Used to
  /// compute the paper's a_k time ratios. The hot-path counter is a flat
  /// vector indexed by point slot; this materialises the historical map view
  /// (keys present iff the region was ever charged an access).
  [[nodiscard]] std::map<PointId, std::uint64_t> regionAccesses() const {
    return pointMapView(regionAccesses_);
  }

  /// Number of iteration-end persist points reached per region (and per
  /// main loop, keyed kMainLoopEnd) — the denominator of the paper's
  /// flush-frequency model (Equation 5).
  [[nodiscard]] std::map<PointId, std::uint64_t> regionIterationEnds() const {
    return pointMapView(regionIterationEnds_);
  }

  // ---- Persistence plan ------------------------------------------------------

  void setPlan(PersistencePlan plan);
  [[nodiscard]] const PersistencePlan& plan() const { return plan_; }
  /// Number of executed persistence operations (Table 4 column 3).
  [[nodiscard]] std::uint64_t persistenceOps() const { return persistenceOps_; }

  // ---- Crash injection --------------------------------------------------------

  /// Arm a crash at the `accessIndex`-th tracked access inside the crash
  /// window (1-based). Throws CrashEvent from the access that reaches it.
  void armCrash(std::uint64_t accessIndex);
  void disarmCrash();

  /// Observes one would-be crash point without crashing: receives exactly the
  /// context a CrashEvent thrown at that access would carry, then the run
  /// continues. May itself throw to end the run early.
  using CaptureHook = std::function<void(const CrashEvent&)>;
  /// Arm read-only captures at the given 1-based window access indices
  /// (strictly increasing, all beyond the current clock). This is the
  /// multi-arm sibling of armCrash backing the campaign's single-sweep
  /// evaluator: one crashing run visits every pending crash point. The hook
  /// must only use non-perturbing reads (peek/readNvm/dumpObject*/
  /// inconsistentRate/regionPath) so the run it observes stays bit-identical
  /// to an unobserved one. A capture armed at the same index as armCrash
  /// fires before the CrashEvent is thrown.
  void armCaptures(std::vector<std::uint64_t> indices, CaptureHook hook);
  void disarmCaptures();
  /// Arm a deterministic fault at the `accessIndex`-th tracked access
  /// (1-based, strictly ahead of the clock, same clock as armCrash). The hook
  /// runs once, after the access's bytes and clock tick are applied but
  /// before any capture or armed crash at the same index fires — a fault is
  /// process-fatal, so when fault and crash/capture collide the fault must
  /// win identically on the per-trial and sweep paths. The hook is expected
  /// to terminate the process (`nvct --inject`); if it returns, execution
  /// simply continues. Bulk ranges clamp their chunks to the fault index, so
  /// the hook observes exactly the element-wise memory state.
  using FaultHook = std::function<void()>;
  void armFault(std::uint64_t accessIndex, FaultHook hook);
  void disarmFault();
  /// Region stack at this instant, outermost first (what CrashEvent carries
  /// as regionPath). Valid between tracked accesses, e.g. inside a capture
  /// hook or after catching an app exception.
  [[nodiscard]] const std::vector<PointId>& regionPath() const { return regionStack_; }
  /// Region stack at the most recent throw site. RegionScope destructors pop
  /// the live stack during unwinding, so by the time a harness-level catch
  /// observes an escaped exception regionPath() is already empty; this
  /// returns the stack as the innermost unwound scope saw it (falling back
  /// to the live stack when nothing has unwound). Used by the campaign to
  /// name the crash site of a trial that died before its armed crash fired.
  [[nodiscard]] const std::vector<PointId>& throwRegionPath() const {
    return unwindPath_.empty() ? regionStack_ : unwindPath_;
  }
  /// Crash window control: only accesses inside the window tick the clock
  /// (the paper triggers crashes during the main computation loop).
  void setCrashWindow(bool active) {
    crashWindowActive_ = active;
    if (monitor_ != nullptr) monitor_->setWindow(active);
  }
  [[nodiscard]] std::uint64_t windowAccesses() const { return windowAccesses_; }

  /// Simulate the power loss itself: drop all cache contents.
  void powerLoss();

  /// Direct-access mode: tracked loads/stores bypass the cache simulation
  /// and read/write the NVM image itself. With the caches never populated,
  /// the NVM image IS the architectural state, so every load returns exactly
  /// what the simulated hierarchy would have returned — values, control flow
  /// and therefore campaign results are bit-identical — while the simulation
  /// cost of a run collapses to raw memory traffic. Restarts run in this
  /// mode: the paper's restarts execute natively on the machine under study;
  /// only the crashing run (whose cache-vs-NVM divergence is the object of
  /// measurement) needs the hierarchy simulated. Crash-clock ticks, the
  /// watchdog poll and armed crashes/captures behave identically in both
  /// modes; MemEvents and NVM wear counters record (by design) nothing.
  void setDirect(bool on) noexcept { direct_ = on; }
  [[nodiscard]] bool direct() const noexcept { return direct_; }

  /// Bulk fast-path control: when off, loadRange/storeRange lower to the
  /// element-wise accesses they are equivalent to. The differential tests and
  /// `nvct --bulk off` use this to prove the equivalence on real workloads.
  void setBulk(bool on) noexcept { bulk_ = on; }
  [[nodiscard]] bool bulk() const noexcept { return bulk_; }

  /// Post-mortem scan fast-path control: when off, inconsistentRate and the
  /// snapshot dumps fall back to the probe-every-level scalar walk. Both
  /// settings are bit-identical (`nvct --scan off` and the differential
  /// tests prove it); the state lives on the hierarchy, not the runtime.
  void setScan(bool on) noexcept { hierarchy_.setScanFastPath(on); }
  [[nodiscard]] bool scan() const noexcept { return hierarchy_.scanFastPath(); }

  // ---- Adaptive region monitor & demotion routing ----------------------------

  /// Attach a region monitor: every tracked access (setup included) feeds its
  /// countdown sampler; the crash-window flag is mirrored so window totals
  /// line up with the crash clock. Already-allocated objects are attached
  /// immediately, later allocations as they happen. nullptr detaches (the
  /// default — full mode pays one predictable branch per access). The monitor
  /// must outlive the runtime or a later setMonitor(nullptr).
  void setMonitor(memsim::RegionMonitor* monitor);

  /// Demote data objects (by name, effective for objects allocated after the
  /// call — campaigns install the set before app setup): their values route
  /// straight to the NVM image (reads and writes, so the image IS their
  /// architectural state), while the cache hierarchy still simulates their
  /// block residency metadata-only (CacheHierarchy::touchRange) — occupancy,
  /// LRU order and evictions are bit-identical to full tracking, demoted
  /// lines just carry no payload and are never dirty. Tracked candidates
  /// therefore see exactly the cache pressure they would under full
  /// tracking: crash-time inconsistency rates, NVM snapshots and restart
  /// outcomes of sampled-mode campaigns match full mode bit-for-bit, which
  /// is what makes the Spearman selection provably mode-independent. Only
  /// payload work is skipped; demotion never touches candidates (campaign
  /// policy), so no post-mortem scan ever reads a demoted byte.
  void setDemotedNames(std::vector<std::string> names);
  [[nodiscard]] bool objectDemoted(ObjectId id) const { return object(id).demoted; }

  // ---- Cooperative cancellation (campaign watchdog) --------------------------

  /// Install a cancellation flag polled by tracked accesses inside the crash
  /// window; when it reads true the access throws TrialCancelled. nullptr
  /// (the default) removes the check down to a single predictable branch;
  /// -DEASYCRASH_WATCHDOG=OFF compiles the poll out of the access path
  /// entirely. The pointee must outlive the runtime or a later reset call.
  void setCancelFlag(const std::atomic<bool>* flag) noexcept {
    if constexpr (kWatchdogCompiledIn) cancel_ = flag;
  }

  // ---- Telemetry ---------------------------------------------------------------

  /// Label this runtime's trace events (crash injections, region spans,
  /// persists) with a run id, e.g. "golden" or "trial:17". The app name is a
  /// sink-wide common field (TraceSink::setCommonField) since one process
  /// studies one app at a time.
  void setTraceRun(std::string run) { traceRun_ = std::move(run); }
  [[nodiscard]] const std::string& traceRun() const { return traceRun_; }

  /// Enable the sampled access/wear profile on the underlying memory system
  /// (flight recorder). No-op when telemetry is compiled out or in direct
  /// mode, where the hierarchy records nothing by design. Campaigns enable
  /// this on the simulated runs only.
  void enableProfile();
  [[nodiscard]] bool profiling() const;
  /// Fold the memory system's sampled stride counters onto the tracked data
  /// objects (objects are contiguous block-aligned allocations, so this is a
  /// zero-cost-at-access-time range walk). `bins` caps the spatial resolution
  /// per object; objects spanning fewer strides get one bin per stride.
  /// Empty when profiling is off.
  [[nodiscard]] std::vector<ObjectProfile> objectProfiles(std::size_t bins = 16) const;

  // ---- Introspection -----------------------------------------------------------

  [[nodiscard]] memsim::CacheHierarchy& hierarchy() { return hierarchy_; }
  [[nodiscard]] const memsim::CacheHierarchy& hierarchy() const { return hierarchy_; }
  [[nodiscard]] memsim::NvmStore& nvm() { return nvm_; }
  [[nodiscard]] const memsim::MemEvents& events() const { return hierarchy_.events(); }

 private:
  /// Crash-clock tick. Outside the crash window this is a single predictable
  /// branch; inside it the out-of-line slow path handles counting, the
  /// watchdog poll and crash injection.
  void onAccess(std::uint64_t count) {
    if (!crashWindowActive_) return;
    onAccessSlow(count);
  }
  void onAccessSlow(std::uint64_t count);
  void fireCaptures();

  /// True when a per-object demotion routes this address straight to NVM.
  /// Objects are block-aligned, so the block-granular bitmap is exact; with
  /// no demotions installed (full mode) this is one predictable branch.
  [[nodiscard]] bool routesDirect(std::uint64_t addr) const {
    if (demotedBits_.empty()) return false;
    const std::uint64_t block = addr >> demotedShift_;
    if ((block >> 6) >= demotedBits_.size()) return false;
    return (demotedBits_[block >> 6] >> (block & 63)) & 1ull;
  }
  void markDemoted(const DataObjectInfo& info);

  /// Drive `count` logical accesses through `access(firstElem, nElems)`
  /// chunks. Each chunk is clamped so the next armed capture/crash index is
  /// the chunk's LAST element: the chunk's bytes are applied first, then
  /// onAccess(n) fires the hook / throws CrashEvent at exactly the
  /// element-wise window index with exactly the element-wise memory state.
  /// After a capture fires, captureNext_ has advanced, so the next loop
  /// iteration re-clamps against the new trigger.
  template <typename AccessFn>
  void forEachRangeChunk(std::uint64_t count, AccessFn&& access) {
    std::uint64_t done = 0;
    while (done < count) {
      std::uint64_t n = count - done;
      if (crashWindowActive_) {
        std::uint64_t next =
            crashAt_ != 0 ? std::min(crashAt_, captureNext_) : captureNext_;
        if (faultAt_ != 0) next = std::min(next, faultAt_);
        if (next != kNoCapture) {
          // Both triggers are strictly ahead of the clock (armCrash checks,
          // fireCaptures advances past fired indices), so toTrigger >= 1.
          const std::uint64_t toTrigger = next - windowAccesses_;
          if (toTrigger < n) n = toTrigger;
        }
      }
      access(done, n);
      onAccess(n);
      done += n;
    }
  }
  void executeDirective(const PersistDirective& directive, PointId point);

  /// Per-point counters are flat vectors indexed by `point + 1` (slot 0 is
  /// kMainLoopEnd), sized by beginRegion() before any hot-path increment —
  /// the per-access path is a single indexed add, no map lookup.
  [[nodiscard]] static std::size_t pointSlot(PointId point) {
    return static_cast<std::size_t>(point + 1);
  }
  void growPointSlots(std::size_t minSize);
  [[nodiscard]] static std::map<PointId, std::uint64_t> pointMapView(
      const std::vector<std::uint64_t>& counters);

  memsim::NvmStore nvm_;
  memsim::CacheHierarchy hierarchy_;

  std::vector<DataObjectInfo> objects_;
  std::uint64_t nextAddr_ = 0;

  PersistencePlan plan_;
  std::vector<std::uint64_t> pointCounters_;
  std::vector<std::uint64_t> regionIterationEnds_;
  std::uint64_t persistenceOps_ = 0;

  std::vector<PointId> regionStack_;
  /// Throw-site snapshot for throwRegionPath(): the region stack when the
  /// current exception's unwind first passed endRegion, keyed by the
  /// std::uncaught_exceptions() depth that recorded it.
  std::vector<PointId> unwindPath_;
  int unwindSeen_ = 0;
  std::uint32_t regionCount_ = 0;
  std::vector<std::uint64_t> regionAccesses_;

  /// Telemetry bookkeeping parallel to regionStack_: entry wall-clock and
  /// (when tracing) the MemEvents snapshot used for the per-region delta.
  struct RegionSpan {
    std::uint64_t startNs = 0;
    bool traced = false;
    memsim::MemEvents snapshot;
  };
  std::vector<RegionSpan> regionSpans_;
  std::string traceRun_;

  ObjectId iterObject_ = 0;  ///< the always-persisted loop-iterator bookmark

  bool crashWindowActive_ = false;
  bool direct_ = false;  ///< bypass the hierarchy, touch NVM bytes directly
  bool bulk_ = true;     ///< route loadRange/storeRange through the fast path

  /// Adaptive region monitor (sampled monitoring pre-pass) and the demoted
  /// routing bitmap (sampled crashing runs). Empty/null in full mode.
  memsim::RegionMonitor* monitor_ = nullptr;
  std::vector<std::string> demotedNames_;
  std::vector<std::uint64_t> demotedBits_;  ///< one bit per block
  std::uint32_t demotedShift_ = 0;          ///< log2(blockSize)
  std::uint64_t windowAccesses_ = 0;
  std::uint64_t crashAt_ = 0;  ///< 0 = disarmed
  std::uint64_t faultAt_ = 0;  ///< 0 = disarmed (deterministic fault injection)
  FaultHook faultHook_;

  /// Multi-arm capture state. captureNext_ mirrors captureAt_[captureCursor_]
  /// (kNoCapture when disarmed/exhausted) so the per-access check in
  /// onAccessSlow stays a single compare against a resident value.
  static constexpr std::uint64_t kNoCapture = ~std::uint64_t{0};
  std::vector<std::uint64_t> captureAt_;
  std::size_t captureCursor_ = 0;
  std::uint64_t captureNext_ = kNoCapture;
  CaptureHook captureHook_;

  const std::atomic<bool>* cancel_ = nullptr;  ///< watchdog cancellation flag
};

}  // namespace easycrash::runtime
