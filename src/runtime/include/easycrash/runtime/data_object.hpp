// Data-object metadata tracked by the runtime.
//
// The paper (§2.2) studies heap and global data objects. Candidates of
// critical data objects are the non-read-only objects whose lifetime is the
// main computation loop (§5.1); everything else is restored by the
// application's own initialisation on restart.
#pragma once

#include <cstdint>
#include <string>

namespace easycrash::runtime {

using ObjectId = std::uint32_t;

struct DataObjectInfo {
  ObjectId id = 0;
  std::string name;
  std::uint64_t addr = 0;   ///< base address in the simulated address space
  std::uint64_t bytes = 0;  ///< object size in bytes
  /// True when the object qualifies as a candidate critical data object:
  /// lifetime spans the main loop and it is not read-only.
  bool candidate = false;
  /// True for objects never written inside the main loop (restored by
  /// re-initialisation, never persisted).
  bool readOnly = false;
};

}  // namespace easycrash::runtime
