// Data-object metadata tracked by the runtime.
//
// The paper (§2.2) studies heap and global data objects. Candidates of
// critical data objects are the non-read-only objects whose lifetime is the
// main computation loop (§5.1); everything else is restored by the
// application's own initialisation on restart.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace easycrash::runtime {

using ObjectId = std::uint32_t;

struct DataObjectInfo {
  ObjectId id = 0;
  std::string name;
  std::uint64_t addr = 0;   ///< base address in the simulated address space
  std::uint64_t bytes = 0;  ///< object size in bytes
  /// True when the object qualifies as a candidate critical data object:
  /// lifetime spans the main loop and it is not read-only.
  bool candidate = false;
  /// True for objects never written inside the main loop (restored by
  /// re-initialisation, never persisted).
  bool readOnly = false;
  /// True when the sampled monitoring mode demoted this object out of full
  /// value tracking: its accesses bypass the cache hierarchy and touch the
  /// NVM image directly, so its NVM bytes always equal the architectural
  /// state (docs/INTERNALS.md "Adaptive region monitor").
  bool demoted = false;
};

/// Per-data-object access/wear profile derived at export time from the memory
/// system's sampled stride counters (Runtime::objectProfiles) — the raw
/// signal for the flight recorder's heatmaps and for future access-aware
/// object selection. Counts are sampled block touches, not raw accesses: the
/// L1-MRU fast path does not feed the profile (docs/OBSERVABILITY.md).
struct ObjectProfile {
  ObjectId id = 0;
  std::string name;
  std::uint64_t bytes = 0;
  std::uint64_t accesses = 0;   ///< sampled block touches in the object's range
  std::uint64_t nvmWrites = 0;  ///< modelled NVM block writes (wear)
  /// Touches/wear folded into equal-width spatial bins across the object.
  std::vector<std::uint64_t> accessBins;
  std::vector<std::uint64_t> wearBins;
};

}  // namespace easycrash::runtime
