// A persistence plan tells the runtime which data objects to flush, where,
// and how often. EasyCrash's decision framework (src/core) produces plans;
// the runtime executes them transparently while the application runs.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "easycrash/memsim/config.hpp"
#include "easycrash/runtime/data_object.hpp"

namespace easycrash::runtime {

/// Persist-point identifiers. Region ids 0..W-1 identify first-level inner
/// loops / code blocks (paper §5.2); kMainLoopEnd is the end of one main
/// computation loop iteration (the location used in Figure 2a).
using PointId = std::int32_t;
inline constexpr PointId kMainLoopEnd = -1;

/// What to do at one persist point.
struct PersistDirective {
  std::vector<ObjectId> objects;  ///< objects to cache_block_flush
  /// For loop-structured points: flush every `everyN` iteration-ends
  /// (paper's frequency x in Equation 5). 0 disables iteration-end flushing.
  std::uint32_t everyN = 1;
  /// For non-loop code regions: flush once when the region ends.
  bool atRegionEnd = false;
};

struct PersistencePlan {
  std::map<PointId, PersistDirective> points;
  memsim::FlushKind flushKind = memsim::FlushKind::Clflushopt;

  [[nodiscard]] bool empty() const { return points.empty(); }

  /// Convenience: persist `objects` at the end of every main-loop iteration —
  /// the configuration used by the paper's "selecting data objects" step.
  [[nodiscard]] static PersistencePlan atMainLoopEnd(std::vector<ObjectId> objects,
                                                     std::uint32_t everyN = 1) {
    PersistencePlan plan;
    PersistDirective d;
    d.objects = std::move(objects);
    d.everyN = everyN;
    plan.points[kMainLoopEnd] = std::move(d);
    return plan;
  }
};

}  // namespace easycrash::runtime
