// Typed handles over simulated data objects.
//
// TrackedArray<T> / TrackedScalar<T> are how instrumented applications touch
// their data: every element read/write becomes a simulated load/store (cache
// state, dirtiness, crash clock). A proxy reference makes `a[i] = x`,
// `a[i] += x` and `double v = a[i]` work naturally.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>

#include "easycrash/common/check.hpp"
#include "easycrash/runtime/runtime.hpp"

namespace easycrash::runtime {

template <typename T>
class TrackedArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "tracked elements must be trivially copyable");

 public:
  TrackedArray() = default;

  /// Allocate a new data object named `name` holding `count` elements.
  TrackedArray(Runtime& rt, std::string name, std::uint64_t count, bool candidate,
               bool readOnly = false)
      : rt_(&rt), count_(count) {
    id_ = rt.allocate(std::move(name), count * sizeof(T), candidate, readOnly);
    base_ = rt.object(id_).addr;
  }

  [[nodiscard]] std::uint64_t size() const { return count_; }
  [[nodiscard]] ObjectId id() const { return id_; }

  [[nodiscard]] T get(std::uint64_t i) const {
    EC_CHECK(i < count_);
    return rt_->loadValue<T>(base_ + i * sizeof(T));
  }

  void set(std::uint64_t i, const T& v) {
    EC_CHECK(i < count_);
    rt_->storeValue(base_ + i * sizeof(T), v);
  }

  /// Architecturally-current value without touching caches or the crash
  /// clock (used by post-crash analysis and acceptance verification).
  [[nodiscard]] T peek(std::uint64_t i) const {
    EC_CHECK(i < count_);
    return rt_->peekValue<T>(base_ + i * sizeof(T));
  }

  /// Read-modify-write of one element: one bounds check and one address
  /// computation for the load/store pair (compound assignments route here).
  template <typename Mutator>
  T apply(std::uint64_t i, Mutator&& mutate) {
    EC_CHECK(i < count_);
    return rt_->updateValue<T>(base_ + i * sizeof(T),
                               std::forward<Mutator>(mutate));
  }

  /// Element proxy enabling natural assignment/compound-assignment syntax.
  class Ref {
   public:
    Ref(TrackedArray& a, std::uint64_t i) : array_(a), index_(i) {}
    operator T() const { return array_.get(index_); }  // NOLINT(google-explicit-*)
    Ref& operator=(const T& v) {
      array_.set(index_, v);
      return *this;
    }
    Ref& operator=(const Ref& other) { return *this = static_cast<T>(other); }
    Ref& operator+=(const T& v) {
      array_.apply(index_, [&](T cur) { return cur + v; });
      return *this;
    }
    Ref& operator-=(const T& v) {
      array_.apply(index_, [&](T cur) { return cur - v; });
      return *this;
    }
    Ref& operator*=(const T& v) {
      array_.apply(index_, [&](T cur) { return cur * v; });
      return *this;
    }
    Ref& operator/=(const T& v) {
      array_.apply(index_, [&](T cur) { return cur / v; });
      return *this;
    }

   private:
    TrackedArray& array_;
    std::uint64_t index_;
  };

  Ref operator[](std::uint64_t i) { return Ref(*this, i); }
  T operator[](std::uint64_t i) const { return get(i); }

  /// Flush every cache block of this object (the paper's cache_block_flush).
  void persist(memsim::FlushKind kind = memsim::FlushKind::Clflushopt) {
    rt_->persistObject(id_, kind);
  }

 private:
  Runtime* rt_ = nullptr;
  ObjectId id_ = 0;
  std::uint64_t base_ = 0;
  std::uint64_t count_ = 0;
};

template <typename T>
class TrackedScalar {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  TrackedScalar() = default;
  TrackedScalar(Runtime& rt, std::string name, bool candidate)
      : rt_(&rt) {
    id_ = rt.allocate(std::move(name), sizeof(T), candidate);
    addr_ = rt.object(id_).addr;
  }

  [[nodiscard]] T get() const { return rt_->loadValue<T>(addr_); }
  void set(const T& v) { rt_->storeValue(addr_, v); }
  [[nodiscard]] T peek() const { return rt_->peekValue<T>(addr_); }
  [[nodiscard]] ObjectId id() const { return id_; }

 private:
  Runtime* rt_ = nullptr;
  ObjectId id_ = 0;
  std::uint64_t addr_ = 0;
};

/// RAII region marker (paper §5.2 code regions). Applications wrap each
/// first-level inner loop:
///
///   { RegionScope r(rt, 2);           // region R3 of MG
///     for (...) { ...; r.iterationEnd(); } }
class RegionScope {
 public:
  RegionScope(Runtime& rt, PointId region) : rt_(rt), region_(region) {
    rt_.beginRegion(region_);
  }
  ~RegionScope() {
    // endRegion can flush (persist point); a CrashEvent is never thrown from
    // flushes, so this destructor does not throw during crash unwinding.
    rt_.endRegion(region_);
  }
  RegionScope(const RegionScope&) = delete;
  RegionScope& operator=(const RegionScope&) = delete;

  void iterationEnd() { rt_.regionIterationEnd(region_); }

 private:
  Runtime& rt_;
  PointId region_;
};

}  // namespace easycrash::runtime
