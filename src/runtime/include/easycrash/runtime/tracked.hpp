// Typed handles over simulated data objects.
//
// TrackedArray<T> / TrackedScalar<T> are how instrumented applications touch
// their data: every element read/write becomes a simulated load/store (cache
// state, dirtiness, crash clock). A proxy reference makes `a[i] = x`,
// `a[i] += x` and `double v = a[i]` work naturally.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>

#include "easycrash/common/check.hpp"
#include "easycrash/runtime/runtime.hpp"

namespace easycrash::runtime {

template <typename T>
class TrackedArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "tracked elements must be trivially copyable");

 public:
  TrackedArray() = default;

  /// Allocate a new data object named `name` holding `count` elements.
  TrackedArray(Runtime& rt, std::string name, std::uint64_t count, bool candidate,
               bool readOnly = false)
      : rt_(&rt), count_(count) {
    id_ = rt.allocate(std::move(name), count * sizeof(T), candidate, readOnly);
    base_ = rt.object(id_).addr;
  }

  [[nodiscard]] std::uint64_t size() const { return count_; }
  [[nodiscard]] ObjectId id() const { return id_; }

  [[nodiscard]] T get(std::uint64_t i) const {
    EC_CHECK(i < count_);
    return rt_->loadValue<T>(base_ + i * sizeof(T));
  }

  void set(std::uint64_t i, const T& v) {
    EC_CHECK(i < count_);
    rt_->storeValue(base_ + i * sizeof(T), v);
  }

  /// Architecturally-current value without touching caches or the crash
  /// clock (used by post-crash analysis and acceptance verification).
  [[nodiscard]] T peek(std::uint64_t i) const {
    EC_CHECK(i < count_);
    return rt_->peekValue<T>(base_ + i * sizeof(T));
  }

  /// Read-modify-write of one element: one bounds check and one address
  /// computation for the load/store pair (compound assignments route here).
  template <typename Mutator>
  T apply(std::uint64_t i, Mutator&& mutate) {
    EC_CHECK(i < count_);
    return rt_->updateValue<T>(base_ + i * sizeof(T),
                               std::forward<Mutator>(mutate));
  }

  // ---- Bulk operations (the range fast path) -------------------------------
  //
  // Each bulk op is observationally identical to the ascending element-wise
  // get()/set() loop it replaces: the crash clock ticks once per element,
  // MemEvents counters match byte-for-byte, and armed captures/crashes fire
  // at the same window index with the same memory state (Runtime::loadRange/
  // storeRange clamp their chunks at the triggers). The win is mechanical:
  // one bounds check, one simulated access call and one memcpy per cache
  // block instead of per element.

  /// Elements processed per stack-buffer chunk by fill/copyFrom/forEachChunk.
  static constexpr std::uint64_t kChunkElems = 1024;

  /// Bulk read of elements [i, i+n) into `out` (must hold n elements).
  void readRange(std::uint64_t i, std::uint64_t n, T* out) const {
    EC_CHECK(i <= count_ && n <= count_ - i);
    if (n == 0) return;
    rt_->loadRange(base_ + i * sizeof(T),
                   {reinterpret_cast<std::uint8_t*>(out), n * sizeof(T)},
                   sizeof(T));
  }

  /// Bulk write of `src` (n elements) into elements [i, i+n).
  void writeRange(std::uint64_t i, std::uint64_t n, const T* src) {
    EC_CHECK(i <= count_ && n <= count_ - i);
    if (n == 0) return;
    rt_->storeRange(base_ + i * sizeof(T),
                    {reinterpret_cast<const std::uint8_t*>(src), n * sizeof(T)},
                    sizeof(T));
  }

  /// Set elements [i, i+n) to `v`, chunked through a stack buffer so bulk
  /// initialisation allocates nothing.
  void fillRange(std::uint64_t i, std::uint64_t n, const T& v) {
    EC_CHECK(i <= count_ && n <= count_ - i);
    T buf[kChunkElems];
    std::fill(buf, buf + std::min<std::uint64_t>(n, kChunkElems), v);
    for (std::uint64_t done = 0; done < n; done += kChunkElems) {
      writeRange(i + done, std::min<std::uint64_t>(kChunkElems, n - done), buf);
    }
  }

  /// Set every element to `v`.
  void fill(const T& v) { fillRange(0, count_, v); }

  /// Copy every element from `other` (same length), chunked read-then-write.
  /// The chunking is identical with the bulk fast path on or off, so the
  /// access sequence (and therefore every observable) matches across modes.
  void copyFrom(const TrackedArray& other) {
    EC_CHECK(other.count_ == count_);
    T buf[kChunkElems];
    for (std::uint64_t i = 0; i < count_; i += kChunkElems) {
      const std::uint64_t n = std::min<std::uint64_t>(kChunkElems, count_ - i);
      other.readRange(i, n, buf);
      writeRange(i, n, buf);
    }
  }

  /// Read-only chunked traversal: fn(firstIndex, std::span<const T>) over
  /// consecutive chunks of at most kChunkElems elements, each loaded with one
  /// bulk range access through a stack buffer. Backs reductions and scans.
  template <typename Fn>
  void forEachChunk(Fn&& fn) const {
    T buf[kChunkElems];
    for (std::uint64_t i = 0; i < count_; i += kChunkElems) {
      const std::uint64_t n = std::min<std::uint64_t>(kChunkElems, count_ - i);
      readRange(i, n, buf);
      fn(i, std::span<const T>(buf, n));
    }
  }

  /// Element proxy enabling natural assignment/compound-assignment syntax.
  class Ref {
   public:
    Ref(TrackedArray& a, std::uint64_t i) : array_(a), index_(i) {}
    operator T() const { return array_.get(index_); }  // NOLINT(google-explicit-*)
    Ref& operator=(const T& v) {
      array_.set(index_, v);
      return *this;
    }
    Ref& operator=(const Ref& other) { return *this = static_cast<T>(other); }
    Ref& operator+=(const T& v) {
      array_.apply(index_, [&](T cur) { return cur + v; });
      return *this;
    }
    Ref& operator-=(const T& v) {
      array_.apply(index_, [&](T cur) { return cur - v; });
      return *this;
    }
    Ref& operator*=(const T& v) {
      array_.apply(index_, [&](T cur) { return cur * v; });
      return *this;
    }
    Ref& operator/=(const T& v) {
      array_.apply(index_, [&](T cur) { return cur / v; });
      return *this;
    }

   private:
    TrackedArray& array_;
    std::uint64_t index_;
  };

  Ref operator[](std::uint64_t i) { return Ref(*this, i); }
  T operator[](std::uint64_t i) const { return get(i); }

  /// Flush every cache block of this object (the paper's cache_block_flush).
  void persist(memsim::FlushKind kind = memsim::FlushKind::Clflushopt) {
    rt_->persistObject(id_, kind);
  }

 private:
  Runtime* rt_ = nullptr;
  ObjectId id_ = 0;
  std::uint64_t base_ = 0;
  std::uint64_t count_ = 0;
};

template <typename T>
class TrackedScalar {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  TrackedScalar() = default;
  TrackedScalar(Runtime& rt, std::string name, bool candidate)
      : rt_(&rt) {
    id_ = rt.allocate(std::move(name), sizeof(T), candidate);
    addr_ = rt.object(id_).addr;
  }

  [[nodiscard]] T get() const { return rt_->loadValue<T>(addr_); }
  void set(const T& v) { rt_->storeValue(addr_, v); }
  [[nodiscard]] T peek() const { return rt_->peekValue<T>(addr_); }
  [[nodiscard]] ObjectId id() const { return id_; }

 private:
  Runtime* rt_ = nullptr;
  ObjectId id_ = 0;
  std::uint64_t addr_ = 0;
};

/// RAII region marker (paper §5.2 code regions). Applications wrap each
/// first-level inner loop:
///
///   { RegionScope r(rt, 2);           // region R3 of MG
///     for (...) { ...; r.iterationEnd(); } }
class RegionScope {
 public:
  RegionScope(Runtime& rt, PointId region) : rt_(rt), region_(region) {
    rt_.beginRegion(region_);
  }
  ~RegionScope() {
    // endRegion can flush (persist point); a CrashEvent is never thrown from
    // flushes, so this destructor does not throw during crash unwinding.
    rt_.endRegion(region_);
  }
  RegionScope(const RegionScope&) = delete;
  RegionScope& operator=(const RegionScope&) = delete;

  void iterationEnd() { rt_.regionIterationEnd(region_); }

 private:
  Runtime& rt_;
  PointId region_;
};

}  // namespace easycrash::runtime
