// Application interface for instrumented HPC kernels.
//
// Each benchmark (src/apps) implements IApp: it allocates tracked data
// objects in setup(), fills them in initialize(), performs one main-loop
// iteration per iterate() call (marking code regions on the way), and
// provides the application-specific acceptance verification the paper relies
// on (§2.2). The Driver below owns the main-loop protocol shared by every
// app: iterator bookmarking, persist points, convergence, iteration caps.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "easycrash/runtime/runtime.hpp"

namespace easycrash::runtime {

struct AppInfo {
  std::string name;
  std::string description;  ///< Table 1 "Description" column
};

/// Result of the application-specific acceptance verification.
struct VerifyOutcome {
  bool pass = false;
  double metric = 0.0;  ///< app-specific figure (residual, error norm, ...)
  std::string detail;
};

class IApp {
 public:
  virtual ~IApp() = default;

  [[nodiscard]] virtual const AppInfo& info() const = 0;

  /// Allocate tracked data objects and declare the region count.
  virtual void setup(Runtime& rt) = 0;
  /// Fill initial values (deterministic; also runs on restart).
  virtual void initialize(Runtime& rt) = 0;
  /// One main-computation-loop iteration (1-based). May throw AppInterrupt.
  virtual void iterate(Runtime& rt, int iteration) = 0;
  /// Nominal iteration count of the original execution (Table 1 last column).
  [[nodiscard]] virtual int nominalIterations() const = 0;
  /// Stop condition checked after each iteration. The default runs exactly
  /// nominalIterations(); convergence-driven apps override it (and may need
  /// extra iterations after a restart — the paper's S2 response).
  [[nodiscard]] virtual bool converged(Runtime& rt, int iteration) {
    (void)rt;
    return iteration >= nominalIterations();
  }
  /// Application-specific acceptance verification (paper §2.2).
  [[nodiscard]] virtual VerifyOutcome verify(Runtime& rt) = 0;
};

using AppFactory = std::function<std::unique_ptr<IApp>()>;

/// Outcome of driving an app (a full run, a crashed run, or a restart run).
struct RunResult {
  int finalIteration = 0;      ///< last completed main-loop iteration
  int iterationsExecuted = 0;  ///< iterations executed in this run
  bool reachedCap = false;     ///< hit maxIterations without converging
  bool interrupted = false;    ///< AppInterrupt (paper S3)
  std::string interruptReason;
  VerifyOutcome verification;
};

/// Drives the shared main-loop protocol. CrashEvent propagates to the caller
/// (the crash-test campaign); AppInterrupt is converted into the result.
class Driver {
 public:
  /// Run iterations [fromIteration .. converged], capped at maxIterations.
  /// Set maxIterations <= 0 to cap at nominalIterations().
  static RunResult run(IApp& app, Runtime& rt, int fromIteration = 1,
                       int maxIterations = 0);

  /// Full fresh execution: setup + initialize + run + verify.
  static RunResult freshRun(IApp& app, Runtime& rt, int maxIterations = 0);
};

}  // namespace easycrash::runtime
