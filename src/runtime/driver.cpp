#include "easycrash/runtime/app.hpp"

#include "easycrash/common/check.hpp"

namespace easycrash::runtime {

RunResult Driver::run(IApp& app, Runtime& rt, int fromIteration, int maxIterations) {
  if (maxIterations <= 0) maxIterations = app.nominalIterations();
  RunResult result;
  rt.setCrashWindow(true);
  try {
    for (int it = fromIteration; it <= maxIterations; ++it) {
      // Bookmark first: a crash inside this iteration restarts from it.
      rt.bookmarkIteration(it);
      app.iterate(rt, it);
      rt.mainLoopIterationEnd(it);
      result.finalIteration = it;
      ++result.iterationsExecuted;
      if (app.converged(rt, it)) break;
      if (it == maxIterations) result.reachedCap = true;
    }
  } catch (const AppInterrupt& interrupt) {
    rt.setCrashWindow(false);
    result.interrupted = true;
    result.interruptReason = interrupt.reason;
    return result;
  }
  rt.setCrashWindow(false);
  result.verification = app.verify(rt);
  return result;
}

RunResult Driver::freshRun(IApp& app, Runtime& rt, int maxIterations) {
  app.setup(rt);
  app.initialize(rt);
  return run(app, rt, 1, maxIterations);
}

}  // namespace easycrash::runtime
