#include "easycrash/runtime/runtime.hpp"

#include <algorithm>

#include "easycrash/common/check.hpp"

namespace easycrash::runtime {

Runtime::Runtime(memsim::CacheConfig config)
    : nvm_(config.blockSize), hierarchy_(std::move(config), nvm_) {
  // Object 0 is the loop-iterator bookmark (paper footnote 3: always
  // persisted; almost zero cost).
  iterObject_ = allocate("__iter", sizeof(int), /*candidate=*/false);
}

ObjectId Runtime::allocate(std::string name, std::uint64_t bytes, bool candidate,
                           bool readOnly) {
  EC_CHECK_MSG(bytes > 0, "cannot allocate empty data object");
  EC_CHECK_MSG(!findObject(name).has_value(), "duplicate data object name: " + name);
  const std::uint32_t blockSize = hierarchy_.config().blockSize;
  DataObjectInfo info;
  info.id = static_cast<ObjectId>(objects_.size());
  info.name = std::move(name);
  info.addr = nextAddr_;
  info.bytes = bytes;
  info.candidate = candidate;
  info.readOnly = readOnly;
  objects_.push_back(info);
  // Block-align the next allocation so objects never share a cache block
  // (flushing one object must not persist another's bytes).
  nextAddr_ += (bytes + blockSize - 1) / blockSize * blockSize;
  return info.id;
}

const DataObjectInfo& Runtime::object(ObjectId id) const {
  EC_CHECK(id < objects_.size());
  return objects_[id];
}

std::optional<ObjectId> Runtime::findObject(const std::string& name) const {
  for (const auto& o : objects_) {
    if (o.name == name) return o.id;
  }
  return std::nullopt;
}

std::vector<ObjectId> Runtime::candidateObjects() const {
  std::vector<ObjectId> ids;
  for (const auto& o : objects_) {
    if (o.candidate) ids.push_back(o.id);
  }
  return ids;
}

void Runtime::onAccess(std::uint64_t count) {
  if (!crashWindowActive_) return;
  const PointId region = activeRegion();
  regionAccesses_[region] += count;
  windowAccesses_ += count;
  if (crashAt_ != 0 && windowAccesses_ >= crashAt_) {
    CrashEvent crash;
    crash.accessIndex = windowAccesses_;
    crash.activeRegion = region;
    crash.iteration = bookmarkedIteration();
    crash.regionPath = regionStack_;
    crashAt_ = 0;
    // Deliberately do NOT invalidate the caches here: the campaign first
    // performs the post-mortem inconsistency analysis (comparing cache state
    // against the NVM image, as NVCT does), then calls powerLoss().
    throw crash;
  }
}

void Runtime::load(std::uint64_t addr, std::span<std::uint8_t> dst) {
  hierarchy_.load(addr, dst);
  onAccess(1);
}

void Runtime::store(std::uint64_t addr, std::span<const std::uint8_t> src) {
  hierarchy_.store(addr, src);
  onAccess(1);
}

void Runtime::peek(std::uint64_t addr, std::span<std::uint8_t> dst) const {
  hierarchy_.peek(addr, dst);
}

void Runtime::readNvm(std::uint64_t addr, std::span<std::uint8_t> dst) const {
  nvm_.read(addr, dst);
}

void Runtime::persistObject(ObjectId id, memsim::FlushKind kind) {
  const DataObjectInfo& info = object(id);
  hierarchy_.flushRange(info.addr, info.bytes, kind);
}

void Runtime::restoreObject(ObjectId id, std::span<const std::uint8_t> bytes) {
  const DataObjectInfo& info = object(id);
  EC_CHECK_MSG(bytes.size() == info.bytes, "restore size mismatch for " + info.name);
  hierarchy_.store(info.addr, bytes);
}

std::vector<std::uint8_t> Runtime::dumpObjectNvm(ObjectId id) const {
  const DataObjectInfo& info = object(id);
  std::vector<std::uint8_t> out(info.bytes);
  nvm_.read(info.addr, out);
  return out;
}

std::vector<std::uint8_t> Runtime::dumpObjectCurrent(ObjectId id) const {
  const DataObjectInfo& info = object(id);
  std::vector<std::uint8_t> out(info.bytes);
  hierarchy_.peek(info.addr, out);
  return out;
}

double Runtime::inconsistentRate(ObjectId id) const {
  const DataObjectInfo& info = object(id);
  const std::uint64_t bad = hierarchy_.inconsistentBytes(info.addr, info.bytes);
  return static_cast<double>(bad) / static_cast<double>(info.bytes);
}

void Runtime::beginRegion(PointId region) {
  EC_CHECK(region >= 0);
  regionStack_.push_back(region);
}

void Runtime::endRegion(PointId region) {
  EC_CHECK_MSG(!regionStack_.empty() && regionStack_.back() == region,
               "unbalanced region markers");
  regionStack_.pop_back();
  const auto it = plan_.points.find(region);
  if (it != plan_.points.end() && it->second.atRegionEnd) {
    executeDirective(it->second);
  }
}

void Runtime::regionIterationEnd(PointId region) {
  EC_CHECK_MSG(!regionStack_.empty() && regionStack_.back() == region,
               "iteration end outside its region");
  ++regionIterationEnds_[region];
  const auto it = plan_.points.find(region);
  if (it == plan_.points.end() || it->second.everyN == 0) return;
  if (++pointCounters_[region] % it->second.everyN == 0) {
    executeDirective(it->second);
  }
}

void Runtime::mainLoopIterationEnd(int iteration) {
  bookmarkIteration(iteration);
  ++regionIterationEnds_[kMainLoopEnd];
  const auto it = plan_.points.find(kMainLoopEnd);
  if (it == plan_.points.end() || it->second.everyN == 0) return;
  if (++pointCounters_[kMainLoopEnd] % it->second.everyN == 0) {
    executeDirective(it->second);
  }
}

void Runtime::bookmarkIteration(int iteration) {
  const DataObjectInfo& info = object(iterObject_);
  hierarchy_.store(info.addr,
                   {reinterpret_cast<const std::uint8_t*>(&iteration), sizeof(int)});
  hierarchy_.flushRange(info.addr, info.bytes, plan_.flushKind);
}

int Runtime::bookmarkedIteration() const {
  return peekValue<int>(object(iterObject_).addr);
}

int Runtime::bookmarkedIterationNvm() const {
  int v = 0;
  nvm_.read(object(iterObject_).addr, {reinterpret_cast<std::uint8_t*>(&v), sizeof(int)});
  return v;
}

PointId Runtime::activeRegion() const {
  return regionStack_.empty() ? kMainLoopEnd : regionStack_.back();
}

void Runtime::setPlan(PersistencePlan plan) {
  plan_ = std::move(plan);
  pointCounters_.clear();
}

void Runtime::executeDirective(const PersistDirective& directive) {
  for (ObjectId id : directive.objects) {
    persistObject(id, plan_.flushKind);
  }
  ++persistenceOps_;
}

void Runtime::armCrash(std::uint64_t accessIndex) {
  EC_CHECK_MSG(accessIndex > 0, "crash index is 1-based");
  EC_CHECK_MSG(accessIndex > windowAccesses_, "crash point already passed");
  crashAt_ = accessIndex;
}

void Runtime::disarmCrash() { crashAt_ = 0; }

}  // namespace easycrash::runtime
