#include "easycrash/runtime/runtime.hpp"

#include <algorithm>
#include <exception>

#include "easycrash/common/check.hpp"
#include "easycrash/telemetry/metrics.hpp"
#include "easycrash/telemetry/timer.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace easycrash::runtime {

namespace {

/// Registry handles resolved once; hot paths hold references.
struct RuntimeMetrics {
  telemetry::Histogram& regionUs;
  telemetry::Histogram& persistUs;
  telemetry::Counter& persistOps;
  telemetry::Counter& crashInjections;

  static RuntimeMetrics& get() {
    static RuntimeMetrics m{
        telemetry::MetricsRegistry::instance().histogram(
            "runtime.region_us",
            telemetry::Histogram::exponentialBounds(1.0, 4.0, 12)),
        telemetry::MetricsRegistry::instance().histogram(
            "runtime.persist_us",
            telemetry::Histogram::exponentialBounds(0.5, 4.0, 12)),
        telemetry::MetricsRegistry::instance().counter("runtime.persistence_ops"),
        telemetry::MetricsRegistry::instance().counter("runtime.crash_injections")};
    return m;
  }
};

}  // namespace

Runtime::Runtime(memsim::CacheConfig config)
    : nvm_(config.blockSize), hierarchy_(std::move(config), nvm_) {
  // Block size is power-of-two-validated by the cache config, so the demoted
  // routing bitmap indexes by shift.
  const std::uint32_t blockSize = hierarchy_.config().blockSize;
  while ((1u << demotedShift_) < blockSize) ++demotedShift_;
  // Slot 0 (kMainLoopEnd) must exist before any access; region slots are
  // grown by beginRegion() so the per-access increment never bounds-checks.
  growPointSlots(1);
  // Object 0 is the loop-iterator bookmark (paper footnote 3: always
  // persisted; almost zero cost).
  iterObject_ = allocate("__iter", sizeof(int), /*candidate=*/false);
}

void Runtime::growPointSlots(std::size_t minSize) {
  if (regionAccesses_.size() < minSize) {
    regionAccesses_.resize(minSize, 0);
    regionIterationEnds_.resize(minSize, 0);
    pointCounters_.resize(minSize, 0);
  }
}

std::map<PointId, std::uint64_t> Runtime::pointMapView(
    const std::vector<std::uint64_t>& counters) {
  std::map<PointId, std::uint64_t> out;
  for (std::size_t slot = 0; slot < counters.size(); ++slot) {
    if (counters[slot] != 0) {
      out.emplace(static_cast<PointId>(slot) - 1, counters[slot]);
    }
  }
  return out;
}

ObjectId Runtime::allocate(std::string name, std::uint64_t bytes, bool candidate,
                           bool readOnly) {
  EC_CHECK_MSG(bytes > 0, "cannot allocate empty data object");
  EC_CHECK_MSG(!findObject(name).has_value(), "duplicate data object name: " + name);
  const std::uint32_t blockSize = hierarchy_.config().blockSize;
  DataObjectInfo info;
  info.id = static_cast<ObjectId>(objects_.size());
  info.name = std::move(name);
  info.addr = nextAddr_;
  info.bytes = bytes;
  info.candidate = candidate;
  info.readOnly = readOnly;
  if (std::find(demotedNames_.begin(), demotedNames_.end(), info.name) !=
      demotedNames_.end()) {
    info.demoted = true;
    markDemoted(info);
  }
  objects_.push_back(info);
  if (monitor_ != nullptr) {
    monitor_->attach(info.id, info.name, info.addr, info.bytes);
  }
  // Block-align the next allocation so objects never share a cache block
  // (flushing one object must not persist another's bytes).
  nextAddr_ += (bytes + blockSize - 1) / blockSize * blockSize;
  return info.id;
}

void Runtime::setMonitor(memsim::RegionMonitor* monitor) {
  monitor_ = monitor;
  if (monitor_ == nullptr) return;
  monitor_->setWindow(crashWindowActive_);
  for (const auto& object : objects_) {
    monitor_->attach(object.id, object.name, object.addr, object.bytes);
  }
}

void Runtime::setDemotedNames(std::vector<std::string> names) {
  demotedNames_ = std::move(names);
  for (auto& object : objects_) {
    if (object.demoted) continue;
    if (std::find(demotedNames_.begin(), demotedNames_.end(), object.name) ==
        demotedNames_.end()) {
      continue;
    }
    // Only legal before the object has been touched through the hierarchy:
    // campaigns install the set before app setup. A cached block switching
    // to direct routing would leave a stale dirty copy behind.
    object.demoted = true;
    markDemoted(object);
  }
}

void Runtime::markDemoted(const DataObjectInfo& info) {
  const std::uint64_t first = info.addr >> demotedShift_;
  const std::uint64_t last = (info.addr + info.bytes - 1) >> demotedShift_;
  if (demotedBits_.size() <= (last >> 6)) demotedBits_.resize((last >> 6) + 1, 0);
  for (std::uint64_t block = first; block <= last; ++block) {
    demotedBits_[block >> 6] |= 1ull << (block & 63);
  }
}

const DataObjectInfo& Runtime::object(ObjectId id) const {
  EC_CHECK(id < objects_.size());
  return objects_[id];
}

std::optional<ObjectId> Runtime::findObject(const std::string& name) const {
  for (const auto& o : objects_) {
    if (o.name == name) return o.id;
  }
  return std::nullopt;
}

std::vector<ObjectId> Runtime::candidateObjects() const {
  std::vector<ObjectId> ids;
  for (const auto& o : objects_) {
    if (o.candidate) ids.push_back(o.id);
  }
  return ids;
}

void Runtime::onAccessSlow(std::uint64_t count) {
  if constexpr (kWatchdogCompiledIn) {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      throw TrialCancelled{windowAccesses_};
    }
  }
  const PointId region = activeRegion();
  regionAccesses_[pointSlot(region)] += count;
  windowAccesses_ += count;
  // An armed fault is process-fatal and must pre-empt captures and the armed
  // crash at the same index on the per-trial AND sweep paths alike, so it is
  // checked before either. The hook normally never returns.
  if (faultAt_ != 0 && windowAccesses_ >= faultAt_) {
    FaultHook hook = std::move(faultHook_);
    faultAt_ = 0;
    faultHook_ = nullptr;
    if (hook) hook();
  }
  // Captures observe the crash point without ending the run, and must fire
  // before the armed crash so a sweep's final index is both captured and
  // crashed on the very same access.
  if (windowAccesses_ >= captureNext_) fireCaptures();
  if (crashAt_ != 0 && windowAccesses_ >= crashAt_) {
    CrashEvent crash;
    crash.accessIndex = windowAccesses_;
    crash.activeRegion = region;
    crash.iteration = bookmarkedIteration();
    crash.regionPath = regionStack_;
    crashAt_ = 0;
    RuntimeMetrics::get().crashInjections.add();
    if (telemetry::tracing()) {
      telemetry::TraceEvent("crash_injected")
          .field("run", traceRun_)
          .field("access_index", crash.accessIndex)
          .field("region", crash.activeRegion)
          .field("iteration", crash.iteration)
          .emit();
    }
    // Deliberately do NOT invalidate the caches here: the campaign first
    // performs the post-mortem inconsistency analysis (comparing cache state
    // against the NVM image, as NVCT does), then calls powerLoss().
    throw crash;
  }
}

void Runtime::peek(std::uint64_t addr, std::span<std::uint8_t> dst) const {
  hierarchy_.peek(addr, dst);
}

void Runtime::readNvm(std::uint64_t addr, std::span<std::uint8_t> dst) const {
  nvm_.read(addr, dst);
}

void Runtime::loadRange(std::uint64_t addr, std::span<std::uint8_t> dst,
                        std::uint32_t elemSize) {
  EC_CHECK_MSG(elemSize > 0, "loadRange: zero element size");
  EC_CHECK_MSG(dst.size() % elemSize == 0,
               "loadRange: span is not a whole number of elements");
  if (dst.empty()) return;
  if (!bulk_) {
    for (std::uint64_t off = 0; off < dst.size(); off += elemSize) {
      load(addr + off, dst.subspan(off, elemSize));
    }
    return;
  }
  // One monitor feed for the whole span: the countdown sampler visits the
  // same logical elements the element-wise path would, so bulk on/off (and
  // any chunking below) produce bit-identical region stats.
  if (monitor_ != nullptr) {
    monitor_->onRange(addr, elemSize, dst.size() / elemSize, /*write=*/false);
  }
  // Objects never share a cache block, so one routing decision covers the
  // whole range (TrackedArray ranges stay inside one object).
  const bool demoted = !direct_ && routesDirect(addr);
  const bool direct = direct_ || demoted;
  forEachRangeChunk(dst.size() / elemSize,
                    [&](std::uint64_t first, std::uint64_t n) {
                      const std::uint64_t byteOff = first * elemSize;
                      const auto part = dst.subspan(byteOff, n * elemSize);
                      if (direct) {
                        nvm_.read(addr + byteOff, part);
                        if (demoted) {
                          hierarchy_.touchRange(addr + byteOff, part.size());
                        }
                      } else {
                        hierarchy_.loadRange(addr + byteOff, part, elemSize);
                      }
                    });
}

void Runtime::storeRange(std::uint64_t addr, std::span<const std::uint8_t> src,
                         std::uint32_t elemSize) {
  EC_CHECK_MSG(elemSize > 0, "storeRange: zero element size");
  EC_CHECK_MSG(src.size() % elemSize == 0,
               "storeRange: span is not a whole number of elements");
  if (src.empty()) return;
  if (!bulk_) {
    for (std::uint64_t off = 0; off < src.size(); off += elemSize) {
      store(addr + off, src.subspan(off, elemSize));
    }
    return;
  }
  if (monitor_ != nullptr) {
    monitor_->onRange(addr, elemSize, src.size() / elemSize, /*write=*/true);
  }
  const bool demoted = !direct_ && routesDirect(addr);
  const bool direct = direct_ || demoted;
  forEachRangeChunk(src.size() / elemSize,
                    [&](std::uint64_t first, std::uint64_t n) {
                      const std::uint64_t byteOff = first * elemSize;
                      const auto part = src.subspan(byteOff, n * elemSize);
                      if (direct) {
                        nvm_.poke(addr + byteOff, part);
                        if (demoted) {
                          hierarchy_.touchRange(addr + byteOff, part.size());
                        }
                      } else {
                        hierarchy_.storeRange(addr + byteOff, part, elemSize);
                      }
                    });
}

void Runtime::persistObject(ObjectId id, memsim::FlushKind kind) {
  const DataObjectInfo& info = object(id);
  hierarchy_.flushRange(info.addr, info.bytes, kind);
}

void Runtime::restoreObject(ObjectId id, std::span<const std::uint8_t> bytes) {
  const DataObjectInfo& info = object(id);
  EC_CHECK_MSG(bytes.size() == info.bytes, "restore size mismatch for " + info.name);
  if (direct_ || info.demoted) {
    nvm_.poke(info.addr, bytes);
  } else {
    hierarchy_.store(info.addr, bytes);
  }
}

std::vector<std::uint8_t> Runtime::dumpObjectNvm(ObjectId id) const {
  const DataObjectInfo& info = object(id);
  std::vector<std::uint8_t> out(info.bytes);
  nvm_.read(info.addr, out);
  return out;
}

std::vector<std::uint8_t> Runtime::dumpObjectCurrent(ObjectId id) const {
  const DataObjectInfo& info = object(id);
  std::vector<std::uint8_t> out(info.bytes);
  hierarchy_.peek(info.addr, out);
  return out;
}

double Runtime::inconsistentRate(ObjectId id) const {
  const DataObjectInfo& info = object(id);
  const std::uint64_t bad = hierarchy_.inconsistentBytes(info.addr, info.bytes);
  return static_cast<double>(bad) / static_cast<double>(info.bytes);
}

void Runtime::beginRegion(PointId region) {
  EC_CHECK(region >= 0);
  growPointSlots(pointSlot(region) + 1);
  regionStack_.push_back(region);
  RegionSpan span;
  span.startNs = telemetry::nowNs();
  span.traced = telemetry::tracing();
  if (span.traced) {
    span.snapshot = hierarchy_.events();
    telemetry::TraceEvent("region_enter")
        .field("run", traceRun_)
        .field("region", region)
        .field("depth", static_cast<std::uint64_t>(regionStack_.size()))
        .emit();
  }
  regionSpans_.push_back(std::move(span));
}

void Runtime::endRegion(PointId region) {
  EC_CHECK_MSG(!regionStack_.empty() && regionStack_.back() == region,
               "unbalanced region markers");
  // When an exception unwinds through the region scopes, remember the stack
  // as the first (innermost) scope saw it: that is the throw site, and the
  // live stack will be empty by the time a harness-level catch can look.
  const int unwinding = std::uncaught_exceptions();
  if (unwinding == 0) {
    unwindSeen_ = 0;
  } else if (unwinding != unwindSeen_) {
    unwindSeen_ = unwinding;
    unwindPath_ = regionStack_;
  }
  regionStack_.pop_back();
  const RegionSpan span = regionSpans_.back();
  regionSpans_.pop_back();
  RuntimeMetrics::get().regionUs.observe(
      static_cast<double>(telemetry::nowNs() - span.startNs) / 1000.0);
  if (span.traced && telemetry::tracing()) {
    // Per-region MemEvents delta: the memory-system cost of this activation.
    const memsim::MemEvents d = hierarchy_.events().delta(span.snapshot);
    telemetry::TraceEvent("region_exit")
        .field("run", traceRun_)
        .field("region", region)
        .field("loads", d.loads)
        .field("stores", d.stores)
        .field("nvm_block_writes", d.nvmBlockWrites)
        .field("flushes", d.totalFlushes())
        .field("duration_ns", telemetry::nowNs() - span.startNs)
        .emit();
  }
  const auto it = plan_.points.find(region);
  if (it != plan_.points.end() && it->second.atRegionEnd) {
    executeDirective(it->second, region);
  }
}

void Runtime::regionIterationEnd(PointId region) {
  EC_CHECK_MSG(!regionStack_.empty() && regionStack_.back() == region,
               "iteration end outside its region");
  ++regionIterationEnds_[pointSlot(region)];
  const auto it = plan_.points.find(region);
  if (it == plan_.points.end() || it->second.everyN == 0) return;
  if (++pointCounters_[pointSlot(region)] % it->second.everyN == 0) {
    executeDirective(it->second, region);
  }
}

void Runtime::mainLoopIterationEnd(int iteration) {
  bookmarkIteration(iteration);
  ++regionIterationEnds_[pointSlot(kMainLoopEnd)];
  const auto it = plan_.points.find(kMainLoopEnd);
  if (it == plan_.points.end() || it->second.everyN == 0) return;
  if (++pointCounters_[pointSlot(kMainLoopEnd)] % it->second.everyN == 0) {
    executeDirective(it->second, kMainLoopEnd);
  }
}

void Runtime::bookmarkIteration(int iteration) {
  const DataObjectInfo& info = object(iterObject_);
  hierarchy_.store(info.addr,
                   {reinterpret_cast<const std::uint8_t*>(&iteration), sizeof(int)});
  hierarchy_.flushRange(info.addr, info.bytes, plan_.flushKind);
}

int Runtime::bookmarkedIteration() const {
  return peekValue<int>(object(iterObject_).addr);
}

int Runtime::bookmarkedIterationNvm() const {
  int v = 0;
  nvm_.read(object(iterObject_).addr, {reinterpret_cast<std::uint8_t*>(&v), sizeof(int)});
  return v;
}

PointId Runtime::activeRegion() const {
  return regionStack_.empty() ? kMainLoopEnd : regionStack_.back();
}

void Runtime::setPlan(PersistencePlan plan) {
  plan_ = std::move(plan);
  std::fill(pointCounters_.begin(), pointCounters_.end(), 0);
}

void Runtime::executeDirective(const PersistDirective& directive, PointId point) {
  const bool trace = telemetry::tracing();
  const memsim::MemEvents before = trace ? hierarchy_.events() : memsim::MemEvents{};
  {
    telemetry::ScopedTimer timer(RuntimeMetrics::get().persistUs);
    for (ObjectId id : directive.objects) {
      persistObject(id, plan_.flushKind);
    }
  }
  ++persistenceOps_;
  RuntimeMetrics::get().persistOps.add();
  if (trace) {
    const memsim::MemEvents d = hierarchy_.events().delta(before);
    telemetry::TraceEvent("persist")
        .field("run", traceRun_)
        .field("point", point)
        .field("objects", static_cast<std::uint64_t>(directive.objects.size()))
        .field("nvm_writes", d.nvmBlockWrites)
        .field("flush_dirty", d.flushDirty)
        .field("flush_clean", d.flushClean)
        .emit();
  }
}

void Runtime::powerLoss() {
  hierarchy_.invalidateAll();
  if (telemetry::tracing()) {
    telemetry::TraceEvent("power_loss").field("run", traceRun_).emit();
  }
}

void Runtime::armCrash(std::uint64_t accessIndex) {
  EC_CHECK_MSG(accessIndex > 0, "crash index is 1-based");
  EC_CHECK_MSG(accessIndex > windowAccesses_, "crash point already passed");
  crashAt_ = accessIndex;
}

void Runtime::disarmCrash() { crashAt_ = 0; }

void Runtime::armCaptures(std::vector<std::uint64_t> indices, CaptureHook hook) {
  EC_CHECK_MSG(!indices.empty(), "armCaptures needs at least one index");
  EC_CHECK_MSG(static_cast<bool>(hook), "armCaptures needs a hook");
  EC_CHECK_MSG(indices.front() > windowAccesses_, "capture point already passed");
  EC_CHECK_MSG(std::is_sorted(indices.begin(), indices.end()) &&
                   std::adjacent_find(indices.begin(), indices.end()) == indices.end(),
               "capture indices must be strictly increasing");
  captureAt_ = std::move(indices);
  captureCursor_ = 0;
  captureNext_ = captureAt_.front();
  captureHook_ = std::move(hook);
}

void Runtime::armFault(std::uint64_t accessIndex, FaultHook hook) {
  EC_CHECK_MSG(accessIndex > 0, "fault index is 1-based");
  EC_CHECK_MSG(accessIndex > windowAccesses_, "fault point already passed");
  EC_CHECK_MSG(static_cast<bool>(hook), "armFault needs a hook");
  faultAt_ = accessIndex;
  faultHook_ = std::move(hook);
}

void Runtime::disarmFault() {
  faultAt_ = 0;
  faultHook_ = nullptr;
}

void Runtime::disarmCaptures() {
  captureAt_.clear();
  captureCursor_ = 0;
  captureNext_ = kNoCapture;
  captureHook_ = nullptr;
}

void Runtime::fireCaptures() {
  while (captureCursor_ < captureAt_.size() &&
         windowAccesses_ >= captureAt_[captureCursor_]) {
    CrashEvent at;
    at.accessIndex = windowAccesses_;
    at.activeRegion = activeRegion();
    at.iteration = bookmarkedIteration();
    at.regionPath = regionStack_;
    // Advance before invoking: the hook may throw to abort the run, and a
    // re-entered fireCaptures must not replay this index.
    ++captureCursor_;
    captureNext_ =
        captureCursor_ < captureAt_.size() ? captureAt_[captureCursor_] : kNoCapture;
    captureHook_(at);
  }
}

void Runtime::enableProfile() {
  // Direct-mode runs bypass the hierarchy and record nothing by design, so
  // there is no profile to collect (campaign restarts stay free).
  if (direct_) return;
  hierarchy_.enableAccessProfile();
  nvm_.enableWearProfile();
}

bool Runtime::profiling() const { return hierarchy_.accessProfiling(); }

std::vector<ObjectProfile> Runtime::objectProfiles(std::size_t bins) const {
  std::vector<ObjectProfile> profiles;
  if (!hierarchy_.accessProfiling()) return profiles;
  const std::vector<std::uint64_t>& touches = hierarchy_.accessProfile();
  const std::vector<std::uint64_t>& wear = nvm_.wearProfile();
  const std::uint64_t stride = hierarchy_.accessProfileStride();
  const std::uint64_t blockSize = nvm_.blockSize();

  // Fold a flat per-bucket counter vector onto one object's bucket span,
  // accumulating the total and equal-width spatial bins. Objects are
  // block-aligned, so at the default stride (= block size) the attribution
  // is exact; with a coarser stride a boundary bucket is attributed to the
  // object owning its first byte.
  const auto fold = [bins](const std::vector<std::uint64_t>& counters,
                           std::uint64_t firstBucket, std::uint64_t endBucket,
                           std::uint64_t& total, std::vector<std::uint64_t>& out) {
    if (endBucket <= firstBucket) return;
    const std::uint64_t span = endBucket - firstBucket;
    const std::uint64_t binCount =
        std::max<std::uint64_t>(1, std::min<std::uint64_t>(bins, span));
    out.assign(binCount, 0);
    const std::uint64_t cap = std::min<std::uint64_t>(endBucket, counters.size());
    for (std::uint64_t b = firstBucket; b < cap; ++b) {
      const std::uint64_t count = counters[b];
      if (count == 0) continue;
      total += count;
      out[(b - firstBucket) * binCount / span] += count;
    }
  };

  profiles.reserve(objects_.size());
  for (const DataObjectInfo& object : objects_) {
    ObjectProfile profile;
    profile.id = object.id;
    profile.name = object.name;
    profile.bytes = object.bytes;
    const std::uint64_t end = object.addr + object.bytes;
    fold(touches, object.addr / stride, (end + stride - 1) / stride,
         profile.accesses, profile.accessBins);
    fold(wear, object.addr / blockSize, (end + blockSize - 1) / blockSize,
         profile.nvmWrites, profile.wearBins);
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

}  // namespace easycrash::runtime
