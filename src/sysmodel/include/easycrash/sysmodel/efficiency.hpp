// Large-scale system-efficiency emulation (paper §7, Equations 6-9).
//
// Models a synchronous coordinated checkpoint/restart system over a long
// horizon (10 years, 100k-400k nodes) and quantifies how EasyCrash changes
// efficiency: successful in-place recomputations avoid the rollback cost and
// allow a longer Young-formula checkpoint interval. A discrete-event
// Monte-Carlo simulator cross-checks the closed-form model.
#pragma once

#include <cstdint>

namespace easycrash::sysmodel {

struct SystemParams {
  double mtbfHours = 12.0;     ///< system MTBF (paper: 12h at 100k nodes)
  double tChkSeconds = 320.0;  ///< checkpoint write time (32 / 320 / 3200)
  double tSyncFactor = 0.5;    ///< T_sync = factor * T_chk (paper assumption)
  double horizonYears = 10.0;  ///< Total_Time
  /// EasyCrash recovery: reload non-read-only data from NVM main memory.
  double nvmRecoveryGB = 64.0;      ///< data volume reloaded on an EC restart
  double nvmBandwidthGBps = 106.0;  ///< paper uses DRAM bandwidth here

  [[nodiscard]] double mtbfSeconds() const { return mtbfHours * 3600.0; }
  [[nodiscard]] double horizonSeconds() const {
    return horizonYears * 365.0 * 24.0 * 3600.0;
  }
  [[nodiscard]] double tRecover() const { return tChkSeconds; }  // T_r = T_chk
  [[nodiscard]] double tSync() const { return tSyncFactor * tChkSeconds; }
  [[nodiscard]] double tEcRecover() const {
    return nvmRecoveryGB / nvmBandwidthGBps;
  }

  /// MTBF scaled to a different node count (paper: linear failure-rate
  /// scaling — 12h @ 100k, 6h @ 200k, 3h @ 400k).
  [[nodiscard]] SystemParams scaledToNodes(double nodesRelativeTo100k) const;
};

struct EfficiencyResult {
  double efficiency = 0.0;        ///< useful time / total time
  double checkpointInterval = 0;  ///< Young's T
  double crashes = 0.0;           ///< M over the horizon
  double checkpoints = 0.0;       ///< N over the horizon
};

/// Young's optimal checkpoint interval: T = sqrt(2 * T_chk * MTBF).
[[nodiscard]] double youngInterval(double tChkSeconds, double mtbfSeconds);

/// Closed-form system efficiency without EasyCrash (Equations 6-7).
[[nodiscard]] EfficiencyResult efficiencyWithoutEasyCrash(const SystemParams& params);

/// Closed-form system efficiency with EasyCrash (Equations 8-9):
/// `recomputability` is R_EasyCrash, `runtimeOverhead` is t_s.
[[nodiscard]] EfficiencyResult efficiencyWithEasyCrash(const SystemParams& params,
                                                       double recomputability,
                                                       double runtimeOverhead);

/// The recomputability threshold tau (paper §5.2 / §7): the minimum
/// R_EasyCrash for which EasyCrash beats plain C/R, found by bisection.
/// Returns 1.0 when no R in [0,1] suffices.
[[nodiscard]] double recomputabilityThreshold(const SystemParams& params,
                                              double runtimeOverhead);

/// Discrete-event Monte-Carlo cross-check of the closed-form model.
/// Crashes arrive as a Poisson process with the configured MTBF; EasyCrash
/// restarts succeed independently with probability `recomputability`.
[[nodiscard]] double simulateEfficiency(const SystemParams& params,
                                        double recomputability,
                                        double runtimeOverhead,
                                        std::uint64_t seed = 42,
                                        double horizonScale = 1.0);

}  // namespace easycrash::sysmodel
