#include "easycrash/sysmodel/efficiency.hpp"

#include <cmath>

#include "easycrash/common/check.hpp"
#include "easycrash/common/rng.hpp"

namespace easycrash::sysmodel {

SystemParams SystemParams::scaledToNodes(double nodesRelativeTo100k) const {
  EC_CHECK(nodesRelativeTo100k > 0.0);
  SystemParams scaled = *this;
  scaled.mtbfHours = mtbfHours / nodesRelativeTo100k;
  return scaled;
}

double youngInterval(double tChkSeconds, double mtbfSeconds) {
  EC_CHECK(tChkSeconds > 0.0 && mtbfSeconds > 0.0);
  return std::sqrt(2.0 * tChkSeconds * mtbfSeconds);
}

EfficiencyResult efficiencyWithoutEasyCrash(const SystemParams& params) {
  // Equation 6: Total = N (T + T_chk) + M (T_vain + T_r + T_sync)
  // Equation 7: M = Total / MTBF;  T_vain = T / 2.
  EfficiencyResult result;
  const double total = params.horizonSeconds();
  const double interval = youngInterval(params.tChkSeconds, params.mtbfSeconds());
  const double crashes = total / params.mtbfSeconds();
  const double lostPerCrash = interval / 2.0 + params.tRecover() + params.tSync();
  const double checkpoints =
      (total - crashes * lostPerCrash) / (interval + params.tChkSeconds);
  result.checkpointInterval = interval;
  result.crashes = crashes;
  result.checkpoints = std::max(0.0, checkpoints);
  result.efficiency = std::max(0.0, result.checkpoints * interval / total);
  return result;
}

EfficiencyResult efficiencyWithEasyCrash(const SystemParams& params,
                                         double recomputability,
                                         double runtimeOverhead) {
  EC_CHECK(recomputability >= 0.0 && recomputability < 1.0 + 1e-12);
  recomputability = std::min(recomputability, 1.0 - 1e-9);
  // MTBF_EasyCrash = MTBF / (1 - R): only unrecoverable crashes roll back.
  EfficiencyResult result;
  const double total = params.horizonSeconds();
  const double mtbfEc = params.mtbfSeconds() / (1.0 - recomputability);
  const double interval = youngInterval(params.tChkSeconds, mtbfEc);
  const double crashes = total / params.mtbfSeconds();
  const double rollbacks = crashes * (1.0 - recomputability);   // M'
  const double recomputes = crashes * recomputability;          // M''
  // Equation 8.
  const double lostPerRollback = interval / 2.0 + params.tRecover() + params.tSync();
  const double lostPerRecompute = params.tEcRecover() + params.tSync();
  const double checkpoints = (total - rollbacks * lostPerRollback -
                              recomputes * lostPerRecompute) /
                             (interval + params.tChkSeconds);
  result.checkpointInterval = interval;
  result.crashes = crashes;
  result.checkpoints = std::max(0.0, checkpoints);
  // Useful computation inside each interval is reduced by t_s.
  result.efficiency =
      std::max(0.0, result.checkpoints * interval * (1.0 - runtimeOverhead) / total);
  return result;
}

double recomputabilityThreshold(const SystemParams& params, double runtimeOverhead) {
  const double baseline = efficiencyWithoutEasyCrash(params).efficiency;
  double lo = 0.0, hi = 1.0;
  if (efficiencyWithEasyCrash(params, hi - 1e-9, runtimeOverhead).efficiency <=
      baseline) {
    return 1.0;  // EasyCrash can never win under these parameters
  }
  if (efficiencyWithEasyCrash(params, 0.0, runtimeOverhead).efficiency > baseline) {
    return 0.0;
  }
  for (int iteration = 0; iteration < 60; ++iteration) {
    const double mid = 0.5 * (lo + hi);
    if (efficiencyWithEasyCrash(params, mid, runtimeOverhead).efficiency > baseline) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double simulateEfficiency(const SystemParams& params, double recomputability,
                          double runtimeOverhead, std::uint64_t seed,
                          double horizonScale) {
  Rng rng(seed);
  const double total = params.horizonSeconds() * horizonScale;
  const double mtbf = params.mtbfSeconds();
  const double interval =
      recomputability > 0.0
          ? youngInterval(params.tChkSeconds, mtbf / (1.0 - recomputability))
          : youngInterval(params.tChkSeconds, mtbf);

  const auto nextExp = [&] { return -mtbf * std::log(1.0 - rng.uniform01()); };

  double t = 0.0, useful = 0.0;
  double nextCrash = nextExp();
  while (t < total) {
    double workDone = 0.0;
    while (workDone < interval && t < total) {
      const double remaining = interval - workDone;
      if (nextCrash <= t + remaining) {
        workDone += nextCrash - t;
        t = nextCrash;
        nextCrash = t + nextExp();
        const bool recovered =
            recomputability > 0.0 && rng.uniform01() < recomputability;
        if (recovered) {
          // In-place recomputation: work retained, cheap NVM reload.
          t += params.tEcRecover() + params.tSync();
        } else {
          // Roll back to the last checkpoint: interval work lost.
          workDone = 0.0;
          t += params.tRecover() + params.tSync();
        }
      } else {
        t += remaining;
        workDone = interval;
      }
    }
    if (workDone >= interval) {
      useful += interval;
      t += params.tChkSeconds;  // checkpoint (assumed crash-free, §7)
    }
  }
  return useful * (1.0 - runtimeOverhead) / t;
}

}  // namespace easycrash::sysmodel
