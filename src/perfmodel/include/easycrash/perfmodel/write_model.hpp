// NVM write-count study (paper Figure 9).
//
// Compares the extra NVM writes caused by (a) EasyCrash's selective cache
// flushing and (b) a traditional in-NVM checkpoint that copies data objects
// (including the cache pollution / evictions the copy induces). The paper's
// conservative assumption — the checkpoint happens only once per execution —
// is the default here.
#pragma once

#include <cstdint>
#include <vector>

#include "easycrash/memsim/config.hpp"
#include "easycrash/runtime/app.hpp"
#include "easycrash/runtime/persistence_plan.hpp"

namespace easycrash::perfmodel {

struct WriteCounts {
  std::uint64_t totalNvmWrites = 0;         ///< all block writes into NVM
  std::uint64_t flushInducedWrites = 0;     ///< subset caused by flushes
  std::uint64_t checkpointInducedWrites = 0;  ///< extra vs. a plain run
};

/// Run the application to completion under `plan` and report NVM writes.
[[nodiscard]] WriteCounts measureRunWrites(
    const runtime::AppFactory& factory, const runtime::PersistencePlan& plan,
    const memsim::CacheConfig& cache = memsim::CacheConfig::scaledDefault());

/// Which objects a checkpoint copies.
enum class CheckpointScope {
  CriticalObjects,   ///< the given object list (EasyCrash's critical set)
  AllWritableObjects,  ///< every non-read-only data object
};

/// Run the application with one mid-run checkpoint: each chosen object is
/// read through the caches and copied into a shadow NVM region which is then
/// flushed (the paper's C/R-in-NVM comparison point). Returns total writes;
/// checkpointInducedWrites is the delta against a plain run.
[[nodiscard]] WriteCounts measureCheckpointWrites(
    const runtime::AppFactory& factory, CheckpointScope scope,
    const std::vector<runtime::ObjectId>& criticalObjects = {},
    const memsim::CacheConfig& cache = memsim::CacheConfig::scaledDefault());

}  // namespace easycrash::perfmodel
