// Execution-time model: converts MemEvents counters into modeled time.
//
// The absolute numbers are nominal; everything the paper reports from this
// model (Table 4, Figures 7/8) is a *normalized* execution time — the ratio
// between a run with persistence operations and the same run without — so
// only the relative costs of cache hits, media fills, write-backs and flush
// classes matter.
#pragma once

#include <cstdint>

#include "easycrash/memsim/events.hpp"
#include "easycrash/perfmodel/nvm_profile.hpp"

namespace easycrash::perfmodel {

/// Core-side cost constants (independent of the memory media).
struct CoreCosts {
  double issueNs = 0.5;    ///< per tracked access (pipeline / address gen)
  double l1HitNs = 1.2;
  double l2HitNs = 4.0;
  double l3HitNs = 12.0;
  double flushIssueNs = 20.0;  ///< CLFLUSHOPT issue cost, no write-back needed
};

class TimeModel {
 public:
  explicit TimeModel(NvmProfile profile, CoreCosts costs = CoreCosts{})
      : profile_(profile), costs_(costs) {}

  /// Modeled execution time for a run described by `events`, in nanoseconds.
  ///
  /// - demand fills from the media stall for latency + transfer;
  /// - natural dirty evictions only occupy write bandwidth (posted writes);
  /// - flush-induced write-backs stall for the full persist latency +
  ///   transfer (the paper's persistence path: CLFLUSHOPT + fence);
  /// - clean / non-resident flushes cost only the issue overhead (§2.1: no
  ///   write-back happens).
  [[nodiscard]] double executionTimeNs(const memsim::MemEvents& events) const;

  /// Time attributable to persistence operations alone.
  [[nodiscard]] double persistenceTimeNs(const memsim::MemEvents& events) const;

  [[nodiscard]] const NvmProfile& profile() const { return profile_; }

 private:
  [[nodiscard]] double blockTransferNs(double bandwidthGBps) const {
    return 64.0 / bandwidthGBps;  // 64 bytes at GB/s == ns
  }

  NvmProfile profile_;
  CoreCosts costs_;
};

}  // namespace easycrash::perfmodel
