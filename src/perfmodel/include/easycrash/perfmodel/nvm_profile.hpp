// NVM performance profiles (paper §6, Figures 7 and 8).
//
// The paper studies EasyCrash's overhead on DRAM, on Quartz-emulated NVM
// (4x/8x DRAM latency, 1/6 and 1/8 DRAM bandwidth) and on real Optane DC
// PMM. We model the same design points analytically: a profile fixes the
// media's access latency and bandwidth, and the TimeModel converts simulator
// event counts into execution time under that profile.
#pragma once

#include <string>

namespace easycrash::perfmodel {

struct NvmProfile {
  std::string name;
  double readLatencyNs = 87.0;    ///< media read latency per block fill
  double writeLatencyNs = 87.0;   ///< media write latency on the persist path
  double readBandwidthGBps = 106.0;
  double writeBandwidthGBps = 106.0;

  /// DRAM baseline (the paper's Table 3 machine: 87 ns, 106 GB/s).
  [[nodiscard]] static NvmProfile dram();
  /// Quartz-style latency emulation: multiply DRAM latency.
  [[nodiscard]] static NvmProfile latencyScaled(double factor);
  /// Quartz-style bandwidth emulation: divide DRAM bandwidth.
  [[nodiscard]] static NvmProfile bandwidthScaled(double divisor);
  /// Intel Optane DC PMM (app-direct mode, typical published figures).
  [[nodiscard]] static NvmProfile optaneDcPmm();
};

}  // namespace easycrash::perfmodel
