#include "easycrash/perfmodel/write_model.hpp"

#include <vector>

#include "easycrash/common/check.hpp"
#include "easycrash/runtime/runtime.hpp"

namespace easycrash::perfmodel {

using runtime::Driver;
using runtime::ObjectId;
using runtime::Runtime;

WriteCounts measureRunWrites(const runtime::AppFactory& factory,
                             const runtime::PersistencePlan& plan,
                             const memsim::CacheConfig& cache) {
  Runtime rt(cache);
  rt.setPlan(plan);
  auto app = factory();
  const auto result = Driver::freshRun(*app, rt);
  EC_CHECK_MSG(result.verification.pass, "write study: golden run failed");
  WriteCounts counts;
  counts.totalNvmWrites = rt.events().nvmBlockWrites;
  counts.flushInducedWrites = rt.events().flushInducedNvmWrites;
  return counts;
}

namespace {

/// Copy `objects` into a shadow NVM region through the caches, then flush the
/// shadow: a synchronous in-NVM checkpoint, pollution effects included.
void takeCheckpoint(Runtime& rt, const std::vector<ObjectId>& objects,
                    std::uint64_t shadowBase) {
  const std::uint32_t blockSize = rt.hierarchy().config().blockSize;
  std::vector<std::uint8_t> buffer(blockSize);
  std::uint64_t cursor = shadowBase;
  for (ObjectId id : objects) {
    const auto& info = rt.object(id);
    for (std::uint64_t off = 0; off < info.bytes; off += blockSize) {
      const std::uint64_t chunk = std::min<std::uint64_t>(blockSize, info.bytes - off);
      rt.load(info.addr + off, {buffer.data(), chunk});
      rt.store(cursor, {buffer.data(), chunk});
      cursor += chunk;
    }
  }
  // Persist the checkpoint copy.
  rt.hierarchy().flushRange(shadowBase, cursor - shadowBase,
                            memsim::FlushKind::Clflushopt);
}

}  // namespace

WriteCounts measureCheckpointWrites(const runtime::AppFactory& factory,
                                    CheckpointScope scope,
                                    const std::vector<ObjectId>& criticalObjects,
                                    const memsim::CacheConfig& cache) {
  // Baseline: a plain run with no persistence and no checkpoint.
  const WriteCounts baseline = measureRunWrites(factory, {}, cache);

  Runtime rt(cache);
  auto app = factory();
  app->setup(rt);

  std::vector<ObjectId> objects;
  if (scope == CheckpointScope::CriticalObjects) {
    objects = criticalObjects;
  } else {
    for (const auto& info : rt.objects()) {
      if (!info.readOnly && info.bytes > 0) objects.push_back(info.id);
    }
  }
  std::uint64_t checkpointBytes = 0;
  for (ObjectId id : objects) checkpointBytes += rt.object(id).bytes;
  // Reserve the shadow region after all application objects.
  const ObjectId shadow =
      rt.allocate("__chk_shadow", std::max<std::uint64_t>(checkpointBytes, 1),
                  /*candidate=*/false);
  const std::uint64_t shadowBase = rt.object(shadow).addr;

  app->initialize(rt);
  // Drive the main loop manually so the checkpoint can fire mid-run (at the
  // half-way iteration, once — the paper's conservative assumption).
  const int nominal = app->nominalIterations();
  const int checkpointAt = std::max(1, nominal / 2);
  rt.setCrashWindow(true);
  for (int it = 1; it <= nominal; ++it) {
    rt.bookmarkIteration(it);
    app->iterate(rt, it);
    rt.mainLoopIterationEnd(it);
    const bool done = app->converged(rt, it);
    if (it == checkpointAt) {
      rt.setCrashWindow(false);
      takeCheckpoint(rt, objects, shadowBase);
      rt.setCrashWindow(true);
    }
    if (done) break;
  }
  rt.setCrashWindow(false);

  WriteCounts counts;
  counts.totalNvmWrites = rt.events().nvmBlockWrites;
  counts.flushInducedWrites = rt.events().flushInducedNvmWrites;
  counts.checkpointInducedWrites =
      counts.totalNvmWrites > baseline.totalNvmWrites
          ? counts.totalNvmWrites - baseline.totalNvmWrites
          : 0;
  return counts;
}

}  // namespace easycrash::perfmodel
