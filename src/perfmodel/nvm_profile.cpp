#include "easycrash/perfmodel/nvm_profile.hpp"

#include <sstream>

namespace easycrash::perfmodel {

NvmProfile NvmProfile::dram() {
  return NvmProfile{"dram", 87.0, 87.0, 106.0, 106.0};
}

NvmProfile NvmProfile::latencyScaled(double factor) {
  NvmProfile p = dram();
  std::ostringstream name;
  name << factor << "x-latency";
  p.name = name.str();
  p.readLatencyNs *= factor;
  p.writeLatencyNs *= factor;
  return p;
}

NvmProfile NvmProfile::bandwidthScaled(double divisor) {
  NvmProfile p = dram();
  std::ostringstream name;
  name << "1/" << divisor << "-bandwidth";
  p.name = name.str();
  p.readBandwidthGBps /= divisor;
  p.writeBandwidthGBps /= divisor;
  return p;
}

NvmProfile NvmProfile::optaneDcPmm() {
  // Published app-direct-mode figures: ~300 ns read latency, write latency
  // hidden by the WPQ (~94 ns effective), ~39 GB/s read, ~13 GB/s write.
  return NvmProfile{"optane-dc-pmm", 300.0, 94.0, 39.0, 13.0};
}

}  // namespace easycrash::perfmodel
