#include "easycrash/perfmodel/time_model.hpp"

namespace easycrash::perfmodel {

double TimeModel::executionTimeNs(const memsim::MemEvents& events) const {
  const double accesses = static_cast<double>(events.loads + events.stores);

  double hits = 0.0;
  hits += static_cast<double>(events.hits[0]) * costs_.l1HitNs;
  hits += static_cast<double>(events.hits[1]) * costs_.l2HitNs;
  hits += static_cast<double>(events.hits[2]) * costs_.l3HitNs;

  const double fillNs = profile_.readLatencyNs + blockTransferNs(profile_.readBandwidthGBps);
  const double fills = static_cast<double>(events.nvmBlockReads) * fillNs;

  // Natural (capacity) evictions are posted: they cost write bandwidth only.
  const double naturalWriteBacks =
      static_cast<double>(events.nvmBlockWrites - events.flushInducedNvmWrites);
  const double evictions = naturalWriteBacks * blockTransferNs(profile_.writeBandwidthGBps);

  return accesses * costs_.issueNs + hits + fills + evictions +
         persistenceTimeNs(events);
}

double TimeModel::persistenceTimeNs(const memsim::MemEvents& events) const {
  const double persistWriteNs = profile_.writeLatencyNs +
                                blockTransferNs(profile_.writeBandwidthGBps) +
                                costs_.flushIssueNs;
  return static_cast<double>(events.flushDirty) * persistWriteNs +
         static_cast<double>(events.flushClean + events.flushNonResident) *
             costs_.flushIssueNs;
}

}  // namespace easycrash::perfmodel
