#include "easycrash/telemetry/json.hpp"

#include <cctype>
#include <cstdlib>

namespace easycrash::telemetry::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    skipWs();
    Value v;
    if (!parseValue(v)) {
      if (error) *error = error_ + " at offset " + std::to_string(pos_);
      return std::nullopt;
    }
    skipWs();
    if (pos_ != text_.size()) {
      if (error) *error = "trailing characters at offset " + std::to_string(pos_);
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const char* message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool parseValue(Value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parseObject(out);
      case '[': return parseArray(out);
      case '"':
        out.kind = Value::Kind::String;
        return parseString(out.string);
      case 't':
        out.kind = Value::Kind::Bool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = Value::Kind::Bool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = Value::Kind::Null;
        return literal("null");
      default: return parseNumber(out);
    }
  }

  bool parseObject(Value& out) {
    out.kind = Value::Kind::Object;
    ++pos_;  // '{'
    skipWs();
    if (consume('}')) return true;
    for (;;) {
      skipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected key");
      if (!parseString(key)) return false;
      skipWs();
      if (!consume(':')) return fail("expected ':'");
      skipWs();
      Value v;
      if (!parseValue(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skipWs();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  bool parseArray(Value& out) {
    out.kind = Value::Kind::Array;
    ++pos_;  // '['
    skipWs();
    if (consume(']')) return true;
    for (;;) {
      skipWs();
      Value v;
      if (!parseValue(v)) return false;
      out.array.push_back(std::move(v));
      skipWs();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  bool parseString(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          if (!parseHex4(code)) return false;
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: require the low half.
            if (!consume('\\') || !consume('u')) return fail("lone surrogate");
            unsigned low = 0;
            if (!parseHex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) return fail("bad low surrogate");
            appendUtf8(out, 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00));
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail("lone surrogate");
          } else {
            appendUtf8(out, code);
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseHex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("short \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned>(c - 'A' + 10);
      else return fail("bad \\u escape");
    }
    return true;
  }

  static void appendUtf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  bool parseNumber(Value& out) {
    const std::size_t start = pos_;
    if (consume('-')) { /* sign */ }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return fail("bad number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (consume('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("bad fraction");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("bad exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    out.kind = Value::Kind::Number;
    out.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace easycrash::telemetry::json
