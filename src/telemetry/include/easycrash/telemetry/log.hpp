// Leveled diagnostic logging for the simulator and the bundled app kernels.
//
// Messages go to stderr (never stdout — campaign summaries and CSV own
// stdout) and are mirrored into the trace sink as "log" events when tracing
// is on. The EC_LOG macro builds its message only when the level is
// enabled, so expensive diagnostics (field norms, dumps) cost one level
// check when silent. Initial level comes from $EC_LOG_LEVEL (default: info);
// nvct overrides it with --log-level.
#pragma once

#include <optional>
#include <sstream>
#include <string_view>

namespace easycrash::telemetry {

enum class LogLevel : int { Error = 0, Warn = 1, Info = 2, Debug = 3, Trace = 4 };

void setLogLevel(LogLevel level);
[[nodiscard]] LogLevel logLevel();
/// "error" | "warn" | "info" | "debug" | "trace" (case-insensitive).
[[nodiscard]] std::optional<LogLevel> parseLogLevel(std::string_view name);
[[nodiscard]] const char* toString(LogLevel level);

[[nodiscard]] bool logEnabled(LogLevel level);
void logMessage(LogLevel level, std::string_view message);

}  // namespace easycrash::telemetry

/// EC_LOG(telemetry::LogLevel::Debug, "norm=" << value): stream-style body,
/// evaluated only when the level is enabled.
#define EC_LOG(level, streamExpr)                                    \
  do {                                                               \
    if (::easycrash::telemetry::logEnabled(level)) {                 \
      std::ostringstream ecLogOs_;                                   \
      ecLogOs_ << streamExpr;                                        \
      ::easycrash::telemetry::logMessage(level, ecLogOs_.str());     \
    }                                                                \
  } while (false)

#define EC_LOG_ERROR(streamExpr) EC_LOG(::easycrash::telemetry::LogLevel::Error, streamExpr)
#define EC_LOG_WARN(streamExpr) EC_LOG(::easycrash::telemetry::LogLevel::Warn, streamExpr)
#define EC_LOG_INFO(streamExpr) EC_LOG(::easycrash::telemetry::LogLevel::Info, streamExpr)
#define EC_LOG_DEBUG(streamExpr) EC_LOG(::easycrash::telemetry::LogLevel::Debug, streamExpr)
#define EC_LOG_TRACE(streamExpr) EC_LOG(::easycrash::telemetry::LogLevel::Trace, streamExpr)
