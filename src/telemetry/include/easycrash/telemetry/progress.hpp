// Live single-line progress reporting for long campaigns: done/total, a
// caller-composed tally (e.g. "S1:12 S2:3"), and an ETA from the observed
// rate. Rewrites one stderr line with '\r'; throttled so worker threads can
// call update() after every trial without serializing on terminal I/O.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

namespace easycrash::telemetry {

class ProgressMeter {
 public:
  /// `os == nullptr` disables the meter entirely (update/finish are no-ops).
  ProgressMeter(std::string label, std::uint64_t total, std::ostream* os);
  ~ProgressMeter();

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  void update(std::uint64_t done, const std::string& detail);
  /// Prints the final line (unthrottled) and a trailing newline.
  void finish(const std::string& detail);

  /// Trials already done before this process started working (journal
  /// resume). The ETA rate counts only `done - baseline` against elapsed
  /// time, so a resumed campaign does not look impossibly fast — or, once
  /// the first fresh trials land, wildly pessimistic.
  void setBaseline(std::uint64_t done);

 private:
  void render(std::uint64_t done, const std::string& detail, bool final);

  std::mutex mutex_;
  std::ostream* os_;
  std::string label_;
  std::uint64_t total_;
  std::uint64_t baseline_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point lastRender_;
  std::size_t lastLineLen_ = 0;
  bool finished_ = false;
};

}  // namespace easycrash::telemetry
