// Scoped wall-clock timers feeding registry histograms. Nesting works the
// obvious way: each timer observes its own span, so an outer scope's
// histogram sum always covers its inner scopes'.
#pragma once

#include <chrono>

#include "easycrash/telemetry/metrics.hpp"

namespace easycrash::telemetry {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { hist_.observe(elapsedUs()); }

  [[nodiscard]] double elapsedUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Histogram& hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace easycrash::telemetry
