// RAII span over one named phase of work — the flight recorder's timing
// primitive (docs/OBSERVABILITY.md). Construction emits a `phase_begin`
// trace event; destruction emits `phase_end` (carrying `duration_ns`) and
// feeds the elapsed time into a registry histogram in microseconds.
//
// Used by the campaign for crash-run / post-mortem / restart spans (stamped
// with the trial index so phase latencies join against trial_end rows) and
// by the workflow driver for its coarse experiment phases. Like every other
// instrumentation point, the trace events sit behind telemetry::tracing();
// the histogram observation is one lower_bound plus three relaxed atomics.
#pragma once

#include <cstdint>
#include <string_view>

#include "easycrash/telemetry/metrics.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace easycrash::telemetry {

class PhaseSpan {
 public:
  /// `trial >= 0` stamps both events with the campaign trial index;
  /// negative means no trial context (workflow phases).
  PhaseSpan(std::string_view phase, Histogram& hist, std::int64_t trial = -1)
      : phase_(phase), hist_(hist), trial_(trial), startNs_(nowNs()) {
    if (tracing()) {
      TraceEvent event("phase_begin");
      event.field("phase", phase_);
      if (trial_ >= 0) event.field("trial", trial_);
      event.emit();
    }
  }

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  ~PhaseSpan() {
    const std::uint64_t durationNs = nowNs() - startNs_;
    hist_.observe(static_cast<double>(durationNs) / 1000.0);
    if (tracing()) {
      TraceEvent event("phase_end");
      event.field("phase", phase_);
      if (trial_ >= 0) event.field("trial", trial_);
      event.field("duration_ns", durationNs);
      event.emit();
    }
  }

 private:
  std::string_view phase_;  ///< caller-owned; in practice a string literal
  Histogram& hist_;
  std::int64_t trial_;
  std::uint64_t startNs_;
};

}  // namespace easycrash::telemetry
