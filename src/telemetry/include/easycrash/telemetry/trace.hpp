// Structured JSONL trace sink.
//
// One process-wide sink writes one JSON object per line: crash injections,
// region entry/exit (with per-region MemEvents deltas), flush bursts,
// persist calls, restart/recovery outcomes and workflow phase transitions.
//
// Cost model: the hot-path guard is `telemetry::tracing()` — one relaxed
// atomic load when compiled in, `constexpr false` (dead-code-eliminated
// call sites) when the build defines EASYCRASH_TELEMETRY_DISABLED
// (-DEASYCRASH_TELEMETRY=OFF). Every event-building call site must sit
// behind this guard so a run without --trace-out pays one predictable
// branch per instrumentation point and nothing else.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace easycrash::telemetry {

#ifdef EASYCRASH_TELEMETRY_DISABLED
inline constexpr bool kTraceCompiledIn = false;
#else
inline constexpr bool kTraceCompiledIn = true;
#endif

namespace detail {
inline std::atomic<bool> g_tracingEnabled{false};
}  // namespace detail

/// True when a sink is open and tracing is compiled in. Call sites guard
/// event construction with this.
[[nodiscard]] inline bool tracing() noexcept {
  return kTraceCompiledIn &&
         detail::g_tracingEnabled.load(std::memory_order_relaxed);
}

/// Monotonic nanoseconds since the first telemetry call in this process.
[[nodiscard]] std::uint64_t nowNs() noexcept;

/// Append `s` to `out` with JSON string escaping (quotes, backslash and
/// control characters; the payload is passed through as UTF-8).
void appendJsonEscaped(std::string& out, std::string_view s);

/// Builder for one trace line. Constructing captures the timestamp; fields
/// are serialized immediately into an internal buffer; emit() hands the
/// line to the sink (a no-op when the sink was closed in the meantime).
class TraceEvent {
 public:
  explicit TraceEvent(std::string_view type);

  TraceEvent& field(std::string_view key, std::string_view value);
  TraceEvent& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  TraceEvent& field(std::string_view key, std::uint64_t value);
  TraceEvent& field(std::string_view key, std::int64_t value);
  TraceEvent& field(std::string_view key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  TraceEvent& field(std::string_view key, std::uint32_t value) {
    return field(key, static_cast<std::uint64_t>(value));
  }
  TraceEvent& field(std::string_view key, double value);
  TraceEvent& field(std::string_view key, bool value);

  void emit();

 private:
  std::string line_;  // "{"type":...,"ts_ns":...  — closed by the sink
};

/// The process-wide JSONL sink. Opening a destination enables `tracing()`.
class TraceSink {
 public:
  static TraceSink& instance();

  /// Open `path` for writing (truncates). Throws std::runtime_error if the
  /// file cannot be opened.
  void openFile(const std::string& path);
  /// Attach a non-owning stream (tests). The caller keeps it alive until
  /// close().
  void attachStream(std::ostream* os);
  /// Flush and detach; disables tracing().
  void close();

  /// Set a field appended to every subsequent event (e.g. app=cg, set once
  /// per process by nvct). Value is escaped here.
  void setCommonField(std::string_view key, std::string_view value);
  void clearCommonFields();

  [[nodiscard]] std::uint64_t linesWritten() const noexcept {
    return lines_.load(std::memory_order_relaxed);
  }

  /// Internal: complete `line` with common fields + '}' and write it.
  void write(const std::string& line);

  /// Write already-complete trace lines verbatim (no common fields, no
  /// terminator added). Used by the campaign's fork evaluator to splice
  /// lines a worker child emitted into its own redirected sink back into
  /// the parent's trace file. `text` must be zero or more whole lines.
  void writeRaw(std::string_view text);

  // ---- fork() support ---------------------------------------------------
  // A multi-threaded parent must not fork while another thread holds the
  // sink mutex (the child would inherit it locked, and the inherited stdio
  // buffer would be flushed twice). lockForFork() takes the mutex and
  // flushes the destination; the parent and the child each release it on
  // their side after the fork.

  void lockForFork();
  void unlockAfterFork();
  /// In a freshly forked child: abandon the inherited file handle WITHOUT
  /// flushing (the parent owns those buffered bytes) and point the sink at
  /// `os`. The enabled/disabled state is left as inherited, so a child of a
  /// non-tracing parent keeps emitting nothing.
  void redirectInForkedChild(std::ostream* os);

 private:
  std::mutex mutex_;
  std::unique_ptr<std::ofstream> file_;
  std::ostream* os_ = nullptr;
  std::string commonFields_;  // ","key":"value"... fragment
  std::atomic<std::uint64_t> lines_{0};
};

}  // namespace easycrash::telemetry
