// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms with cheap hot-path updates (relaxed atomics) and JSON export.
//
// Instruments are registered once (mutex-guarded name lookup) and the
// returned references stay valid for the process lifetime, so hot paths hold
// a `Counter&`/`Histogram&` and never touch the registry map again. The
// exported JSON is the machine-readable companion of the campaign summary:
// `memsim.*` counters aggregate the same MemEvents that produce Table 4.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace easycrash::telemetry {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `upperBounds` are inclusive bucket upper edges in
/// ascending order; one implicit +Inf overflow bucket is appended.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upperBounds);

  /// {start, start*factor, ...} of `count` bounds — the usual latency shape.
  [[nodiscard]] static std::vector<double> exponentialBounds(double start,
                                                             double factor,
                                                             int count);

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket i counts observations in (bounds[i-1], bounds[i]]; the last
  /// bucket (index bounds().size()) is the +Inf overflow bucket.
  [[nodiscard]] std::uint64_t bucketCount(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry& instance();

  /// Find-or-create by name. References remain valid forever.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upperBounds` is used only on first registration of `name`.
  Histogram& histogram(const std::string& name, std::vector<double> upperBounds);

  /// One JSON object: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  /// `extraSection`, when non-empty, is a pre-rendered `"key": value` fragment
  /// appended as one more top-level member (the campaign's "profile" section).
  /// std::map iteration keeps the key order deterministic regardless of
  /// registration order.
  void writeJson(std::ostream& os, std::string_view extraSection = {}) const;

  /// Zero every instrument (names stay registered). For tests and for
  /// tools that want per-run snapshots.
  void reset();

  /// fork() support: hold the registry mutex across the fork so a child
  /// never inherits it locked mid-registration. Parent and child each
  /// release their copy after the fork.
  void lockForFork() { mutex_.lock(); }
  void unlockAfterFork() { mutex_.unlock(); }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace easycrash::telemetry
