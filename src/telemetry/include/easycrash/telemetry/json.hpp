// Minimal JSON parser used to validate the telemetry subsystem's own
// output (trace JSONL lines, metrics exports) in trace_lint and the tests.
// Full RFC 8259 value grammar; numbers are held as double.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace easycrash::telemetry::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // preserves order

  [[nodiscard]] bool isObject() const { return kind == Kind::Object; }
  [[nodiscard]] bool isNumber() const { return kind == Kind::Number; }
  [[nodiscard]] bool isString() const { return kind == Kind::String; }

  /// First member with this key, or nullptr.
  [[nodiscard]] const Value* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parse a complete JSON document (trailing whitespace allowed, nothing
/// else). On failure returns nullopt and, if `error` is given, a message
/// with the byte offset.
[[nodiscard]] std::optional<Value> parse(std::string_view text,
                                         std::string* error = nullptr);

}  // namespace easycrash::telemetry::json
