#include "easycrash/telemetry/progress.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace easycrash::telemetry {

namespace {
constexpr auto kThrottle = std::chrono::milliseconds(100);
}

ProgressMeter::ProgressMeter(std::string label, std::uint64_t total,
                             std::ostream* os)
    : os_(os),
      label_(std::move(label)),
      total_(total),
      start_(std::chrono::steady_clock::now()),
      lastRender_(start_ - kThrottle) {}

ProgressMeter::~ProgressMeter() {
  if (os_ != nullptr && !finished_ && lastLineLen_ > 0) *os_ << '\n';
}

void ProgressMeter::setBaseline(std::uint64_t done) {
  std::lock_guard<std::mutex> lock(mutex_);
  baseline_ = done;
}

void ProgressMeter::update(std::uint64_t done, const std::string& detail) {
  if (os_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  const auto now = std::chrono::steady_clock::now();
  if (now - lastRender_ < kThrottle && done < total_) return;
  lastRender_ = now;
  render(done, detail, /*final=*/false);
}

void ProgressMeter::finish(const std::string& detail) {
  if (os_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  render(total_, detail, /*final=*/true);
  finished_ = true;
}

void ProgressMeter::render(std::uint64_t done, const std::string& detail,
                           bool final) {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  std::string line = label_;
  line += "  ";
  line += std::to_string(done);
  line += '/';
  line += std::to_string(total_);
  if (!detail.empty()) {
    line += "  ";
    line += detail;
  }
  char buf[48];
  if (final || done >= total_) {
    std::snprintf(buf, sizeof buf, "  %.1fs", elapsed);
    line += buf;
  } else if (done > baseline_) {
    // Rate from this process's own work only: journal-resumed trials arrived
    // instantly and would otherwise dominate the estimate.
    const double eta = elapsed / static_cast<double>(done - baseline_) *
                       static_cast<double>(total_ - done);
    std::snprintf(buf, sizeof buf, "  eta %.1fs", eta);
    line += buf;
  }
  // Pad with spaces so a shorter line fully overwrites the previous one.
  const std::size_t pad =
      lastLineLen_ > line.size() ? lastLineLen_ - line.size() : 0;
  lastLineLen_ = line.size();
  line.append(pad, ' ');
  *os_ << '\r' << line;
  if (final) *os_ << '\n';
  os_->flush();
}

}  // namespace easycrash::telemetry
