#include "easycrash/telemetry/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <string>

#include "easycrash/telemetry/trace.hpp"

namespace easycrash::telemetry {

namespace {

std::atomic<int>& levelVar() {
  static std::atomic<int> level = [] {
    if (const char* env = std::getenv("EC_LOG_LEVEL")) {
      if (const auto parsed = parseLogLevel(env)) {
        return static_cast<int>(*parsed);
      }
    }
    return static_cast<int>(LogLevel::Info);
  }();
  return level;
}

}  // namespace

void setLogLevel(LogLevel level) {
  levelVar().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel logLevel() {
  return static_cast<LogLevel>(levelVar().load(std::memory_order_relaxed));
}

std::optional<LogLevel> parseLogLevel(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "error") return LogLevel::Error;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "info") return LogLevel::Info;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "trace") return LogLevel::Trace;
  return std::nullopt;
}

const char* toString(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "error";
    case LogLevel::Warn: return "warn";
    case LogLevel::Info: return "info";
    case LogLevel::Debug: return "debug";
    case LogLevel::Trace: return "trace";
  }
  return "?";
}

bool logEnabled(LogLevel level) {
  return static_cast<int>(level) <=
         levelVar().load(std::memory_order_relaxed);
}

void logMessage(LogLevel level, std::string_view message) {
  {
    // One formatted write keeps concurrent campaign workers from
    // interleaving mid-line.
    std::string line;
    line.reserve(message.size() + 24);
    line += "[easycrash ";
    line += toString(level);
    line += "] ";
    line += message;
    line += '\n';
    std::cerr << line;
  }
  if (tracing()) {
    TraceEvent("log").field("level", toString(level)).field("msg", message).emit();
  }
}

}  // namespace easycrash::telemetry
