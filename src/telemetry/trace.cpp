#include "easycrash/telemetry/trace.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace easycrash::telemetry {

namespace {

std::chrono::steady_clock::time_point processStart() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

// Touch the epoch early so timestamps are process-relative even when the
// first event fires late.
const bool kEpochInit = (processStart(), true);

}  // namespace

std::uint64_t nowNs() noexcept {
  (void)kEpochInit;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - processStart())
          .count());
}

void appendJsonEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

TraceEvent::TraceEvent(std::string_view type) {
  line_.reserve(160);
  line_ += "{\"type\":\"";
  appendJsonEscaped(line_, type);
  line_ += "\",\"ts_ns\":";
  line_ += std::to_string(nowNs());
}

TraceEvent& TraceEvent::field(std::string_view key, std::string_view value) {
  line_ += ",\"";
  appendJsonEscaped(line_, key);
  line_ += "\":\"";
  appendJsonEscaped(line_, value);
  line_ += '"';
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::uint64_t value) {
  line_ += ",\"";
  appendJsonEscaped(line_, key);
  line_ += "\":";
  line_ += std::to_string(value);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::int64_t value) {
  line_ += ",\"";
  appendJsonEscaped(line_, key);
  line_ += "\":";
  line_ += std::to_string(value);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  line_ += ",\"";
  appendJsonEscaped(line_, key);
  line_ += "\":";
  line_ += buf;
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, bool value) {
  line_ += ",\"";
  appendJsonEscaped(line_, key);
  line_ += "\":";
  line_ += value ? "true" : "false";
  return *this;
}

void TraceEvent::emit() { TraceSink::instance().write(line_); }

TraceSink& TraceSink::instance() {
  static TraceSink sink;
  return sink;
}

void TraceSink::openFile(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*file) throw std::runtime_error("cannot open trace file " + path);
  std::lock_guard<std::mutex> lock(mutex_);
  file_ = std::move(file);
  os_ = file_.get();
  detail::g_tracingEnabled.store(true, std::memory_order_relaxed);
}

void TraceSink::attachStream(std::ostream* os) {
  std::lock_guard<std::mutex> lock(mutex_);
  file_.reset();
  os_ = os;
  detail::g_tracingEnabled.store(os != nullptr, std::memory_order_relaxed);
}

void TraceSink::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  detail::g_tracingEnabled.store(false, std::memory_order_relaxed);
  if (os_ != nullptr) os_->flush();
  file_.reset();
  os_ = nullptr;
}

void TraceSink::setCommonField(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mutex_);
  commonFields_ += ",\"";
  appendJsonEscaped(commonFields_, key);
  commonFields_ += "\":\"";
  appendJsonEscaped(commonFields_, value);
  commonFields_ += '"';
}

void TraceSink::clearCommonFields() {
  std::lock_guard<std::mutex> lock(mutex_);
  commonFields_.clear();
}

void TraceSink::write(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (os_ == nullptr) return;  // sink closed while the event was being built
  *os_ << line << commonFields_ << "}\n";
  lines_.fetch_add(1, std::memory_order_relaxed);
}

void TraceSink::writeRaw(std::string_view text) {
  if (text.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (os_ == nullptr) return;
  os_->write(text.data(), static_cast<std::streamsize>(text.size()));
  std::uint64_t newlines = 0;
  for (const char c : text) {
    if (c == '\n') ++newlines;
  }
  lines_.fetch_add(newlines, std::memory_order_relaxed);
}

void TraceSink::lockForFork() {
  mutex_.lock();
  if (os_ != nullptr) os_->flush();
}

void TraceSink::unlockAfterFork() { mutex_.unlock(); }

void TraceSink::redirectInForkedChild(std::ostream* os) {
  std::lock_guard<std::mutex> lock(mutex_);
  // release(), not reset(): destroying the inherited ofstream would flush
  // any buffered bytes a second time from the child. The leak is bounded —
  // a worker child never opens another file and exits via _exit().
  (void)file_.release();
  os_ = os;
}

}  // namespace easycrash::telemetry
