#include "easycrash/telemetry/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "easycrash/common/check.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace easycrash::telemetry {

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)) {
  EC_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

std::vector<double> Histogram::exponentialBounds(double start, double factor,
                                                 int count) {
  EC_CHECK(start > 0.0 && factor > 1.0 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double edge = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upperBounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upperBounds));
  return *slot;
}

void MetricsRegistry::writeJson(std::ostream& os,
                                std::string_view extraSection) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key;
  const auto writeKey = [&](const std::string& name) {
    key.clear();
    appendJsonEscaped(key, name);
    os << '"' << key << "\":";
  };

  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n    " : ",\n    ");
    writeKey(name);
    os << c->value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n    " : ",\n    ");
    writeKey(name);
    os << g->value();
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n    " : ",\n    ");
    writeKey(name);
    os << "{\"count\":" << h->count() << ",\"sum\":" << h->sum()
       << ",\"buckets\":[";
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i) os << ',';
      os << "{\"le\":";
      if (i < h->bounds().size()) {
        os << h->bounds()[i];
      } else {
        os << "\"+Inf\"";
      }
      os << ",\"count\":" << h->bucketCount(i) << '}';
    }
    os << "]}";
    first = false;
  }
  os << "\n  }";
  if (!extraSection.empty()) os << ",\n  " << extraSection;
  os << "\n}\n";
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace easycrash::telemetry
