// Spearman's rank correlation with significance testing.
//
// EasyCrash (paper §5.1) selects critical data objects by correlating the
// per-crash-test data-inconsistency rate of each candidate object with the
// recomputation outcome of that test. An object is critical when the
// correlation coefficient R_s is negative (more inconsistency => less
// recomputability) and its p-value is below 0.01.
#pragma once

#include <span>
#include <vector>

namespace easycrash::stats {

/// Result of a Spearman rank-correlation analysis.
struct SpearmanResult {
  double rho = 0.0;      ///< rank correlation coefficient R_s in [-1, 1]
  double pValue = 1.0;   ///< two-sided p-value from the Student-t approximation
  std::size_t n = 0;     ///< number of paired samples
  bool degenerate = false;  ///< true when either input is constant (rho undefined)
};

/// Assign fractional ranks (1-based, ties get the average rank).
[[nodiscard]] std::vector<double> fractionalRanks(std::span<const double> values);

/// Pearson correlation of two equal-length vectors; NaN-free inputs required.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman's rank correlation: Pearson correlation of fractional ranks, with
/// a two-sided p-value from t = rho * sqrt((n-2) / (1 - rho^2)) against the
/// Student-t distribution with n-2 degrees of freedom. Requires x.size() ==
/// y.size(). With n < 3 or a constant input, returns degenerate = true.
[[nodiscard]] SpearmanResult spearman(std::span<const double> x,
                                      std::span<const double> y);

/// Regularized incomplete beta function I_x(a, b) via continued fractions
/// (Lentz's algorithm). Domain: a > 0, b > 0, x in [0, 1].
[[nodiscard]] double regularizedIncompleteBeta(double a, double b, double x);

/// Two-sided p-value of a Student-t statistic with `dof` degrees of freedom.
[[nodiscard]] double studentTTwoSidedP(double t, double dof);

/// Mean of a sample (0 for empty input).
[[nodiscard]] double mean(std::span<const double> values);

/// Unbiased sample standard deviation (0 for n < 2).
[[nodiscard]] double sampleStddev(std::span<const double> values);

}  // namespace easycrash::stats
