#include "easycrash/stats/spearman.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "easycrash/common/check.hpp"

namespace easycrash::stats {

std::vector<double> fractionalRanks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });

  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Tie group [i, j]: average of ranks i+1 .. j+1.
    const double avgRank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avgRank;
    i = j + 1;
  }
  return ranks;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  EC_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double regularizedIncompleteBeta(double a, double b, double x) {
  EC_CHECK(a > 0.0 && b > 0.0);
  EC_CHECK(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;

  // Use the symmetry relation to keep the continued fraction convergent.
  if (x > (a + 1.0) / (a + b + 2.0)) {
    return 1.0 - regularizedIncompleteBeta(b, a, 1.0 - x);
  }

  const double logBeta = std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
  const double front = std::exp(std::log(x) * a + std::log1p(-x) * b - logBeta) / a;

  // Lentz's algorithm for the continued fraction.
  constexpr double kTiny = 1e-30;
  constexpr double kEps = 1e-15;
  double f = 1.0, c = 1.0, d = 0.0;
  for (int i = 0; i <= 300; ++i) {
    const int m = i / 2;
    double numerator;
    if (i == 0) {
      numerator = 1.0;
    } else if (i % 2 == 0) {
      numerator = (m * (b - m) * x) / ((a + 2.0 * m - 1.0) * (a + 2.0 * m));
    } else {
      numerator = -((a + m) * (a + b + m) * x) / ((a + 2.0 * m) * (a + 2.0 * m + 1.0));
    }
    d = 1.0 + numerator * d;
    if (std::abs(d) < kTiny) d = kTiny;
    d = 1.0 / d;
    c = 1.0 + numerator / c;
    if (std::abs(c) < kTiny) c = kTiny;
    const double cd = c * d;
    f *= cd;
    if (std::abs(1.0 - cd) < kEps) break;
  }
  return std::clamp(front * (f - 1.0), 0.0, 1.0);
}

double studentTTwoSidedP(double t, double dof) {
  EC_CHECK(dof > 0.0);
  if (!std::isfinite(t)) return 0.0;
  const double x = dof / (dof + t * t);
  // P(|T| > t) = I_{dof/(dof+t^2)}(dof/2, 1/2)
  return regularizedIncompleteBeta(dof / 2.0, 0.5, x);
}

SpearmanResult spearman(std::span<const double> x, std::span<const double> y) {
  EC_CHECK(x.size() == y.size());
  SpearmanResult result;
  result.n = x.size();
  if (result.n < 3) {
    result.degenerate = true;
    return result;
  }
  const auto constant = [](std::span<const double> v) {
    return std::all_of(v.begin(), v.end(), [&](double e) { return e == v.front(); });
  };
  if (constant(x) || constant(y)) {
    result.degenerate = true;
    return result;
  }
  const std::vector<double> rx = fractionalRanks(x);
  const std::vector<double> ry = fractionalRanks(y);
  result.rho = pearson(rx, ry);

  const double n = static_cast<double>(result.n);
  const double denom = 1.0 - result.rho * result.rho;
  if (denom <= 0.0) {
    result.pValue = 0.0;  // perfect monotone relation
    return result;
  }
  const double t = result.rho * std::sqrt((n - 2.0) / denom);
  result.pValue = studentTTwoSidedP(t, n - 2.0);
  return result;
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double sampleStddev(std::span<const double> values) {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(n - 1));
}

}  // namespace easycrash::stats
