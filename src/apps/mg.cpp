// MG — multi-grid kernel (NPB MG analogue, paper Figure 2).
//
// Solves the Poisson problem  laplace(u) = v  on a 2-D grid with a full
// recursive V-cycle (81 -> 41 -> 21 -> 11 -> 6) per main-loop iteration. As
// in NPB MG, the data objects u and r are hierarchical: each holds every
// grid level concatenated, so persisting "u" persists the whole solution
// hierarchy.
//
// The main loop has four first-level code regions, ordered so that the
// update phase comes last (residual -> norm -> diagnostics -> V-cycle).
// Acceptance verification is NPB-style: the final residual norm must match
// the reference value within a relative epsilon; the reference is obtained
// from a host-side replay that runs the *identical templated kernel*, so a
// restart from a consistent iteration boundary reproduces it bit-for-bit.
//
// Recomputability mechanics: u is only written inside the V-cycle region, so
// after a crash the surviving NVM image of u equals the iteration-boundary
// state exactly when (a) the crash hit one of the read-only regions and (b)
// no stale dirty lines were left behind — which is what persisting u at the
// end of the update region guarantees (the paper's Figure 4 observation that
// one region dominates, and that persisting u matters while r does not: r is
// fully recomputed before use every cycle).
#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <vector>

#include "easycrash/apps/app_base.hpp"
#include "easycrash/apps/registry.hpp"

namespace easycrash::apps {
namespace {

using runtime::RegionScope;
using runtime::Runtime;
using runtime::TrackedArray;
using runtime::TrackedScalar;
using runtime::VerifyOutcome;

constexpr int kMgBaseN = 65;       // finest grid at --scale 1; levels need 2^k+1
constexpr int kMgLevels = 4;       // 65, 33, 17, 9 at scale 1
constexpr int kMgIterations = 10;  // V-cycles (paper: 20)
constexpr double kMgBandEps = 1.0e-3;  // NPB-style two-sided verify epsilon

/// Finest grid edge at `scale`: 64*scale + 1, so every level keeps the
/// 2^k+1 structure the restriction/prolongation stencils rely on.
constexpr int mgEdge(int scale) { return (kMgBaseN - 1) * scale + 1; }

/// All MG numerics, templated over the field type so the tracked run and the
/// host-side reference replay execute the identical floating-point sequence.
/// Field must provide `double get(int)` / `void set(int, double)` plus the
/// bulk mirrors `getRange(int, int, double*)` / `setRange(int, int, const
/// double*)` — the streaming phases (residual, norms, diagnostics, zeroing)
/// move whole rows through them, while the red-black smoother and the
/// stencil transfers keep the scalar accessors.
template <typename Field>
class MgKernel {
 public:
  MgKernel(Field u, Field r, Field v, int n0 = kMgBaseN)
      : u_(u), r_(r), v_(v), n0_(n0), row_(static_cast<std::size_t>(5) * n0) {
    size_[0] = n0_;
    offset_[0] = 0;
    for (int level = 1; level < kMgLevels; ++level) {
      size_[level] = (size_[level - 1] + 1) / 2;
      offset_[level] = offset_[level - 1] + size_[level - 1] * size_[level - 1];
    }
  }

  [[nodiscard]] static constexpr int totalCells(int n0 = kMgBaseN) {
    int total = 0, n = n0;
    for (int level = 0; level < kMgLevels; ++level) {
      total += n * n;
      n = (n + 1) / 2;
    }
    return total;
  }

  /// r_0 = v - L(u_0) on the finest level: three u rows, the v row and the
  /// r row move as bulk ranges; the stencil combines them from stack buffers
  /// in the same per-element order as the scalar loop.
  void fineResidual() {
    const int n = n0_;
    // Row buffers live in one heap allocation (row_): the edge is a runtime
    // value now, and at large --scale rows outgrow any sane stack frame.
    double* um = row_.data();
    double* uc = um + n;
    double* up = uc + n;
    double* vrow = up + n;
    double* rrow = vrow + n;
    for (int j = 1; j < n - 1; ++j) {
      u_.getRange((j - 1) * n, n, um);
      u_.getRange(j * n, n, uc);
      u_.getRange((j + 1) * n, n, up);
      v_.getRange(j * n + 1, n - 2, vrow);
      for (int i = 1; i < n - 1; ++i) {
        const double lap = uc[i - 1] + uc[i + 1] + um[i] + up[i] - 4.0 * uc[i];
        rrow[i - 1] = vrow[i - 1] - lap;
      }
      r_.setRange(j * n + 1, n - 2, rrow);
    }
  }

  [[nodiscard]] double residualNorm() {
    const int n = n0_;
    double ss = 0.0;
    double* rrow = row_.data();
    for (int j = 1; j < n - 1; ++j) {
      r_.getRange(j * n + 1, n - 2, rrow);
      for (int i = 0; i < n - 2; ++i) ss += rrow[i] * rrow[i];
    }
    return std::sqrt(ss / (static_cast<double>(n) * n));
  }

  /// Solution diagnostics: checksum/extrema/profile sweeps over u, v and r
  /// (read-only — this models MG's periodic solution-output phase).
  [[nodiscard]] double diagnostics() {
    const int kCells = n0_ * n0_;
    double a[kDiagChunk], b[kDiagChunk];
    double sum = 0.0, mx = 0.0;
    for (int k = 0; k < kCells; k += kDiagChunk) {
      const int n = std::min(kDiagChunk, kCells - k);
      u_.getRange(k, n, a);
      v_.getRange(k, n, b);
      for (int t = 0; t < n; ++t) {
        sum += a[t] * b[t];
        mx = std::max(mx, std::abs(a[t]));
      }
    }
    double profile = 0.0;
    for (int k = 0; k < kCells; k += kDiagChunk) {
      const int n = std::min(kDiagChunk, kCells - k);
      u_.getRange(k, n, a);
      r_.getRange(k, n, b);
      for (int t = 0; t < n; ++t) profile += std::abs(a[t] - b[t]);
    }
    double moments = 0.0;
    for (int k = 0; k < kCells; k += kDiagChunk) {
      const int n = std::min(kDiagChunk, kCells - k);
      u_.getRange(k, n, a);
      v_.getRange(k, n, b);
      for (int t = 0; t < n; ++t) moments += a[t] * a[t] * b[t];
    }
    return sum + mx + profile + moments;
  }

  /// One full V-cycle: every write to u happens inside this call.
  void vcycle() {
    presmoothFine();
    fineResidual();
    for (int level = 0; level + 1 < kMgLevels; ++level) {
      if (level > 0) {
        zeroLevel(level);
        smoothLevel(level, 2);
      }
      restrictLevel(level);
    }
    zeroLevel(kMgLevels - 1);
    smoothLevel(kMgLevels - 1, 30);  // effectively exact on the 9x9 grid
    for (int level = kMgLevels - 2; level >= 1; --level) {
      prolongateInto(level);
      smoothLevel(level, 2);
    }
    prolongateInto(0);
    smoothLevel(0, 1);
  }

  void presmoothFine() { smoothLevel(0, 2); }

 private:
  [[nodiscard]] double rhsAt(int level, int k) const {
    return level == 0 ? v_.get(k) : r_.get(offset_[level] + k);
  }

  void zeroLevel(int level) {
    const int n = size_[level];
    const double zeros[kDiagChunk] = {};
    for (int k = 0; k < n * n; k += kDiagChunk) {
      u_.setRange(offset_[level] + k, std::min(kDiagChunk, n * n - k), zeros);
    }
  }

  void smoothLevel(int level, int sweeps) {
    const int n = size_[level];
    const int off = offset_[level];
    for (int sweep = 0; sweep < sweeps; ++sweep) {
      for (int color = 0; color < 2; ++color) {
        for (int j = 1; j < n - 1; ++j) {
          for (int i = 1 + (j + color) % 2; i < n - 1; i += 2) {
            const int k = off + j * n + i;
            const double nb =
                u_.get(k - 1) + u_.get(k + 1) + u_.get(k - n) + u_.get(k + n);
            u_.set(k, 0.25 * (nb - rhsAt(level, j * n + i)));
          }
        }
      }
    }
  }

  [[nodiscard]] double defectAt(int level, int j, int i) const {
    const int n = size_[level];
    const int k = offset_[level] + j * n + i;
    if (level == 0) return r_.get(k);
    const double lap = u_.get(k - 1) + u_.get(k + 1) + u_.get(k - n) +
                       u_.get(k + n) - 4.0 * u_.get(k);
    return r_.get(k) - lap;
  }

  void restrictLevel(int level) {
    const int nc = size_[level + 1];
    const int offC = offset_[level + 1];
    for (int j = 1; j < nc - 1; ++j) {
      for (int i = 1; i < nc - 1; ++i) {
        const int fj = 2 * j, fi = 2 * i;
        const double value =
            0.25 * defectAt(level, fj, fi) +
            0.125 * (defectAt(level, fj, fi - 1) + defectAt(level, fj, fi + 1) +
                     defectAt(level, fj - 1, fi) + defectAt(level, fj + 1, fi)) +
            0.0625 *
                (defectAt(level, fj - 1, fi - 1) + defectAt(level, fj - 1, fi + 1) +
                 defectAt(level, fj + 1, fi - 1) + defectAt(level, fj + 1, fi + 1));
        // (2h/h)^2 rescaling of the h^2-absorbed coarse operator.
        r_.set(offC + j * nc + i, 4.0 * value);
      }
    }
    for (int i = 0; i < nc; ++i) {
      r_.set(offC + i, 0.0);
      r_.set(offC + (nc - 1) * nc + i, 0.0);
      r_.set(offC + i * nc, 0.0);
      r_.set(offC + i * nc + nc - 1, 0.0);
    }
  }

  void prolongateInto(int level) {
    const int nf = size_[level], nc = size_[level + 1];
    const int offF = offset_[level], offC = offset_[level + 1];
    for (int j = 1; j < nf - 1; ++j) {
      for (int i = 1; i < nf - 1; ++i) {
        const int ci = i / 2, cj = j / 2;
        const double c00 = u_.get(offC + cj * nc + ci);
        double e;
        if (i % 2 == 0 && j % 2 == 0) {
          e = c00;
        } else if (j % 2 == 0) {
          e = 0.5 * (c00 + u_.get(offC + cj * nc + ci + 1));
        } else if (i % 2 == 0) {
          e = 0.5 * (c00 + u_.get(offC + (cj + 1) * nc + ci));
        } else {
          e = 0.25 * (c00 + u_.get(offC + cj * nc + ci + 1) +
                      u_.get(offC + (cj + 1) * nc + ci) +
                      u_.get(offC + (cj + 1) * nc + ci + 1));
        }
        const int k = offF + j * nf + i;
        u_.set(k, u_.get(k) + e);
      }
    }
  }

  static constexpr int kDiagChunk = 512;  ///< stack-buffer elements per range op

  Field u_, r_, v_;
  int n0_;
  std::vector<double> row_;  ///< five row-sized scratch buffers, concatenated
  int size_[kMgLevels] = {};
  int offset_[kMgLevels] = {};
};

struct TrackedField {
  TrackedArray<double>* a;
  [[nodiscard]] double get(int i) const { return a->get(i); }
  void set(int i, double v) { a->set(i, v); }
  void getRange(int i, int n, double* out) const { a->readRange(i, n, out); }
  void setRange(int i, int n, const double* src) { a->writeRange(i, n, src); }
};

struct HostField {
  std::vector<double>* a;
  [[nodiscard]] double get(int i) const { return (*a)[i]; }
  void set(int i, double v) { (*a)[i] = v; }
  void getRange(int i, int n, double* out) const {
    std::copy_n(a->data() + i, n, out);
  }
  void setRange(int i, int n, const double* src) {
    std::copy_n(src, n, a->data() + i);
  }
};

void fillRhs(std::vector<double>& v, int n) {
  AppLcg lcg(2024);
  v.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n * n; ++i) {
    const int x = i % n, y = i / n;
    const bool boundary = x == 0 || y == 0 || x == n - 1 || y == n - 1;
    const double sx = std::sin(M_PI * x / (n - 1.0));
    const double sy = std::sin(2.0 * M_PI * y / (n - 1.0));
    v[i] = boundary ? 0.0 : sx * sy + 0.05 * (lcg.nextDouble() - 0.5);
  }
}

/// Reference residual norm after the nominal schedule (computed once per
/// process and grid edge; the NPB "verify value" analogue).
double referenceRnorm(int n0) {
  static std::mutex mutex;
  static std::map<int, double> cache;  // keyed by finest edge (--scale)
  std::lock_guard<std::mutex> lock(mutex);
  const auto it = cache.find(n0);
  if (it != cache.end()) return it->second;
  const int total = MgKernel<HostField>::totalCells(n0);
  std::vector<double> u(total, 0.0), r(total, 0.0), v;
  fillRhs(v, n0);
  MgKernel<HostField> kernel{HostField{&u}, HostField{&r}, HostField{&v}, n0};
  for (int iter = 1; iter <= kMgIterations; ++iter) {
    kernel.fineResidual();
    (void)kernel.residualNorm();
    (void)kernel.diagnostics();
    kernel.vcycle();
  }
  // Final residual of the last committed state (matches the tracked app's
  // verify(), which recomputes it after the last V-cycle).
  kernel.fineResidual();
  const double value = kernel.residualNorm();
  cache.emplace(n0, value);
  return value;
}

class MgApp final : public AppBase {
 public:
  /// `scale` multiplies the finest grid edge (64*scale + 1), so the
  /// footprint grows as scale^2 while the level structure and the verify
  /// discipline (reference replay of the identical kernel) are unchanged.
  explicit MgApp(int scale = 1)
      : AppBase("mg", "Structured grids"), n0_(mgEdge(scale)) {}

  void setup(Runtime& rt) override {
    rt.declareRegionCount(4);
    const int total = MgKernel<TrackedField>::totalCells(n0_);
    u_ = TrackedArray<double>(rt, "u", total, /*candidate=*/true);
    r_ = TrackedArray<double>(rt, "r", total, /*candidate=*/true);
    v_ = TrackedArray<double>(rt, "v", n0_ * n0_, /*candidate=*/false,
                              /*readOnly=*/true);
    rnorm_ = TrackedScalar<double>(rt, "rnorm", /*candidate=*/true);
    diag_ = TrackedScalar<double>(rt, "diag", /*candidate=*/true);
  }

  void initialize(Runtime& rt) override {
    (void)rt;
    u_.fill(0.0);
    r_.fill(0.0);
    std::vector<double> v;
    fillRhs(v, n0_);
    v_.writeRange(0, v.size(), v.data());
    rnorm_.set(1.0);
    diag_.set(0.0);
  }

  void iterate(Runtime& rt, int iteration) override {
    (void)iteration;
    MgKernel<TrackedField> kernel{TrackedField{&u_}, TrackedField{&r_},
                                  TrackedField{&v_}, n0_};
    {  // R1: fine residual (reads u/v, writes r).
      RegionScope region(rt, 0);
      kernel.fineResidual();
      region.iterationEnd();
    }
    {  // R2: residual norm reduction.
      RegionScope region(rt, 1);
      rnorm_.set(kernel.residualNorm());
      region.iterationEnd();
    }
    {  // R3: solution diagnostics (streaming read of u and v).
      RegionScope region(rt, 2);
      diag_.set(kernel.diagnostics());
      region.iterationEnd();
    }
    {  // R4: the V-cycle — every write to u happens here.
      RegionScope region(rt, 3);
      kernel.vcycle();
      region.iterationEnd();
    }
  }

  [[nodiscard]] int nominalIterations() const override { return kMgIterations; }

  [[nodiscard]] VerifyOutcome verify(Runtime& rt) override {
    (void)rt;
    // NPB-style verification: the residual norm of the final solution must
    // sit inside a relative band around the reference value.
    MgKernel<TrackedField> kernel{TrackedField{&u_}, TrackedField{&r_},
                                  TrackedField{&v_}, n0_};
    kernel.fineResidual();
    const double rnorm = kernel.residualNorm();
    const double ref = referenceRnorm(n0_);
    VerifyOutcome out;
    out.metric = std::abs(rnorm - ref) / ref;
    out.pass = std::isfinite(out.metric) && out.metric <= kMgBandEps;
    out.detail = "||r|| = " + std::to_string(rnorm) +
                 ", relative deviation from reference = " + std::to_string(out.metric);
    return out;
  }

 private:
  const int n0_;  ///< finest grid edge
  TrackedArray<double> u_, r_, v_;
  TrackedScalar<double> rnorm_, diag_;
};

}  // namespace

runtime::AppFactory makeMg() {
  return [] { return std::make_unique<MgApp>(); };
}

runtime::AppFactory makeMgScaled(int scale) {
  return [scale] { return std::make_unique<MgApp>(scale); };
}

}  // namespace easycrash::apps
