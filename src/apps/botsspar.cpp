// botsspar — blocked sparse LU factorisation (SPEC OMP 2012 botsspar / BOTS
// sparselu analogue).
//
// Left-looking blocked LU: each main-loop iteration finalises one column
// panel, recomputing it from the read-only original matrix and the already
// finalised panels (lu0 / fwd / bdiv / bmod phases = the paper's 4 code
// regions). Left-looking makes an iteration idempotent — a restart rewrites
// the whole in-flight panel — so recomputability hinges on the *finalised*
// panels being consistent in NVM, which is exactly what EasyCrash's
// end-of-iteration flush guarantees. Verification reconstructs sampled
// entries of L*U and compares them against the original matrix.
#include <cmath>
#include <cstdint>
#include <vector>

#include "easycrash/apps/app_base.hpp"
#include "easycrash/apps/registry.hpp"

namespace easycrash::apps {
namespace {

using runtime::AppInterrupt;
using runtime::RegionScope;
using runtime::Runtime;
using runtime::TrackedArray;
using runtime::VerifyOutcome;

class BotssparApp final : public AppBase {
 public:
  static constexpr int kBlocks = 20;  // block matrix is kBlocks x kBlocks
  static constexpr int kBs = 6;       // each block is kBs x kBs doubles
  static constexpr int kDim = kBlocks * kBs;  // 120 x 120 scalar matrix
  static constexpr double kVerifyTol = 1.0e-8;

  BotssparApp() : AppBase("botsspar", "Sparse linear algebra") {}

  void setup(Runtime& rt) override {
    rt.declareRegionCount(4);
    lu_ = TrackedArray<double>(rt, "lu_blocks", kDim * kDim, /*candidate=*/true);
    a_ = TrackedArray<double>(rt, "a_orig", kDim * kDim, /*candidate=*/false, true);
  }

  void initialize(Runtime& rt) override {
    (void)rt;
    AppLcg lcg(8088);
    double ab[kDim];
    for (int r = 0; r < kDim; ++r) {
      for (int c = 0; c < kDim; ++c) {
        // Diagonally dominant matrix with a sparse-ish block texture.
        double value = 0.1 * (lcg.nextDouble() - 0.5);
        if (blockOf(r) == blockOf(c)) value += 0.3 * (lcg.nextDouble() - 0.5);
        if (r == c) value += static_cast<double>(kDim);
        ab[c] = value;
      }
      a_.writeRange(static_cast<std::uint64_t>(r) * kDim, kDim, ab);
    }
    lu_.fill(0.0);
  }

  void iterate(Runtime& rt, int iteration) override {
    const int k = iteration - 1;  // panel index being finalised
    const int c0 = k * kBs;       // first column of the panel
    {  // R1 (bmod/fwd prep): left-looking panel assembly from A and prior
       // panels: panel = A[:, c0:c0+bs] - sum_{j<k} L[:,j] * U[j, panel].
      RegionScope region(rt, 0);
      double buf[kBs];
      for (int r = 0; r < kDim; ++r) {
        a_.readRange(static_cast<std::uint64_t>(r) * kDim + c0, kBs, buf);
        lu_.writeRange(static_cast<std::uint64_t>(r) * kDim + c0, kBs, buf);
        region.iterationEnd();
      }
    }
    {  // R2 (bmod): subtract contributions of finalised panels.
      RegionScope region(rt, 1);
      double ub[kBs], rb[kBs];
      for (int j = 0; j < c0; ++j) {
        // Column j of L is final; U(j, panel) entries are final as well. The
        // update is restructured row-wise so each target row moves as one
        // range load/store; every element still receives its single
        // subtraction for this j, so values are bit-identical.
        lu_.readRange(static_cast<std::uint64_t>(j) * kDim + c0, kBs, ub);
        bool any = false;
        for (int t = 0; t < kBs; ++t) any = any || ub[t] != 0.0;
        if (any) {
          for (int r = j + 1; r < kDim; ++r) {
            const double lrj = lu_.get(r * kDim + j);
            lu_.readRange(static_cast<std::uint64_t>(r) * kDim + c0, kBs, rb);
            for (int t = 0; t < kBs; ++t) {
              if (ub[t] != 0.0) rb[t] -= lrj * ub[t];
            }
            lu_.writeRange(static_cast<std::uint64_t>(r) * kDim + c0, kBs, rb);
          }
        }
        region.iterationEnd();
      }
    }
    {  // R3 (lu0): factorise the diagonal block of the panel in place.
      RegionScope region(rt, 2);
      for (int d = c0; d < c0 + kBs; ++d) {
        const double pivot = lu_.get(d * kDim + d);
        if (!std::isfinite(pivot) || std::abs(pivot) < 1.0e-9) {
          throw AppInterrupt{"botsspar: zero/garbage pivot"};
        }
        for (int r = d + 1; r < c0 + kBs; ++r) {
          const double m = lu_.get(r * kDim + d) / pivot;
          lu_.set(r * kDim + d, m);
          for (int c = d + 1; c < c0 + kBs; ++c) {
            lu_[r * kDim + c] -= m * lu_.get(d * kDim + c);
          }
        }
        region.iterationEnd();
      }
    }
    {  // R4 (bdiv): triangular solve for the sub-diagonal part of the panel.
      RegionScope region(rt, 3);
      // The diagonal block is final after R3: hoist it into one bulk read,
      // then each sub-diagonal row is solved in a single range load/store.
      double diag[kBs * kBs], rb[kBs];
      for (int d = 0; d < kBs; ++d) {
        lu_.readRange(static_cast<std::uint64_t>(c0 + d) * kDim + c0, kBs,
                      diag + d * kBs);
      }
      for (int r = c0 + kBs; r < kDim; ++r) {
        lu_.readRange(static_cast<std::uint64_t>(r) * kDim + c0, kBs, rb);
        for (int d = 0; d < kBs; ++d) {
          const double pivot = diag[d * kBs + d];
          const double m = rb[d] / pivot;
          rb[d] = m;
          for (int c = d + 1; c < kBs; ++c) {
            rb[c] -= m * diag[d * kBs + c];
          }
        }
        lu_.writeRange(static_cast<std::uint64_t>(r) * kDim + c0, kBs, rb);
        region.iterationEnd();
      }
    }
  }

  [[nodiscard]] int nominalIterations() const override { return kBlocks; }

  [[nodiscard]] VerifyOutcome verify(Runtime& rt) override {
    (void)rt;
    // Reconstruct sampled entries of L*U and compare against A.
    AppLcg lcg(90210);
    double worst = 0.0;
    for (int s = 0; s < 400; ++s) {
      const int r = static_cast<int>(lcg.nextBelow(kDim));
      const int c = static_cast<int>(lcg.nextBelow(kDim));
      double sum = 0.0;
      const int kmax = std::min(r, c);
      for (int j = 0; j < kmax; ++j) {
        sum += lu_.peek(r * kDim + j) * lu_.peek(j * kDim + c);
      }
      // L has unit diagonal: add U(r,c) when r <= c, else L(r,c)*U(c,c).
      sum += (r <= c) ? lu_.peek(r * kDim + c)
                      : lu_.peek(r * kDim + c) * lu_.peek(c * kDim + c);
      worst = std::max(worst, std::abs(sum - a_.peek(r * kDim + c)) / kDim);
    }
    VerifyOutcome out;
    out.metric = worst;
    out.pass = std::isfinite(worst) && worst <= kVerifyTol;
    out.detail = "max sampled |LU - A|/n = " + std::to_string(worst);
    return out;
  }

 private:
  [[nodiscard]] static int blockOf(int rc) { return rc / kBs; }

  TrackedArray<double> lu_, a_;
};

}  // namespace

runtime::AppFactory makeBotsspar() {
  return [] { return std::make_unique<BotssparApp>(); };
}

}  // namespace easycrash::apps
