// botsspar — blocked sparse LU factorisation (SPEC OMP 2012 botsspar / BOTS
// sparselu analogue).
//
// Left-looking blocked LU: each main-loop iteration finalises one column
// panel, recomputing it from the read-only original matrix and the already
// finalised panels (lu0 / fwd / bdiv / bmod phases = the paper's 4 code
// regions). Left-looking makes an iteration idempotent — a restart rewrites
// the whole in-flight panel — so recomputability hinges on the *finalised*
// panels being consistent in NVM, which is exactly what EasyCrash's
// end-of-iteration flush guarantees. Verification reconstructs sampled
// entries of L*U and compares them against the original matrix.
#include <cmath>
#include <vector>

#include "easycrash/apps/app_base.hpp"
#include "easycrash/apps/registry.hpp"

namespace easycrash::apps {
namespace {

using runtime::AppInterrupt;
using runtime::RegionScope;
using runtime::Runtime;
using runtime::TrackedArray;
using runtime::VerifyOutcome;

class BotssparApp final : public AppBase {
 public:
  static constexpr int kBlocks = 20;  // block matrix is kBlocks x kBlocks
  static constexpr int kBs = 6;       // each block is kBs x kBs doubles
  static constexpr int kDim = kBlocks * kBs;  // 120 x 120 scalar matrix
  static constexpr double kVerifyTol = 1.0e-8;

  BotssparApp() : AppBase("botsspar", "Sparse linear algebra") {}

  void setup(Runtime& rt) override {
    rt.declareRegionCount(4);
    lu_ = TrackedArray<double>(rt, "lu_blocks", kDim * kDim, /*candidate=*/true);
    a_ = TrackedArray<double>(rt, "a_orig", kDim * kDim, /*candidate=*/false, true);
  }

  void initialize(Runtime& rt) override {
    (void)rt;
    AppLcg lcg(8088);
    for (int r = 0; r < kDim; ++r) {
      for (int c = 0; c < kDim; ++c) {
        // Diagonally dominant matrix with a sparse-ish block texture.
        double value = 0.1 * (lcg.nextDouble() - 0.5);
        if (blockOf(r) == blockOf(c)) value += 0.3 * (lcg.nextDouble() - 0.5);
        if (r == c) value += static_cast<double>(kDim);
        a_.set(r * kDim + c, value);
        lu_.set(r * kDim + c, 0.0);
      }
    }
  }

  void iterate(Runtime& rt, int iteration) override {
    const int k = iteration - 1;  // panel index being finalised
    const int c0 = k * kBs;       // first column of the panel
    {  // R1 (bmod/fwd prep): left-looking panel assembly from A and prior
       // panels: panel = A[:, c0:c0+bs] - sum_{j<k} L[:,j] * U[j, panel].
      RegionScope region(rt, 0);
      for (int r = 0; r < kDim; ++r) {
        for (int c = c0; c < c0 + kBs; ++c) {
          lu_.set(r * kDim + c, a_.get(r * kDim + c));
        }
        region.iterationEnd();
      }
    }
    {  // R2 (bmod): subtract contributions of finalised panels.
      RegionScope region(rt, 1);
      for (int j = 0; j < c0; ++j) {
        // Column j of L is final; U(j, panel) entries are final as well.
        for (int c = c0; c < c0 + kBs; ++c) {
          const double ujc = lu_.get(j * kDim + c);
          if (ujc == 0.0) continue;
          for (int r = j + 1; r < kDim; ++r) {
            lu_[r * kDim + c] -= lu_.get(r * kDim + j) * ujc;
          }
        }
        region.iterationEnd();
      }
    }
    {  // R3 (lu0): factorise the diagonal block of the panel in place.
      RegionScope region(rt, 2);
      for (int d = c0; d < c0 + kBs; ++d) {
        const double pivot = lu_.get(d * kDim + d);
        if (!std::isfinite(pivot) || std::abs(pivot) < 1.0e-9) {
          throw AppInterrupt{"botsspar: zero/garbage pivot"};
        }
        for (int r = d + 1; r < c0 + kBs; ++r) {
          const double m = lu_.get(r * kDim + d) / pivot;
          lu_.set(r * kDim + d, m);
          for (int c = d + 1; c < c0 + kBs; ++c) {
            lu_[r * kDim + c] -= m * lu_.get(d * kDim + c);
          }
        }
        region.iterationEnd();
      }
    }
    {  // R4 (bdiv): triangular solve for the sub-diagonal part of the panel.
      RegionScope region(rt, 3);
      for (int r = c0 + kBs; r < kDim; ++r) {
        for (int d = c0; d < c0 + kBs; ++d) {
          const double pivot = lu_.get(d * kDim + d);
          double m = lu_.get(r * kDim + d) / pivot;
          lu_.set(r * kDim + d, m);
          for (int c = d + 1; c < c0 + kBs; ++c) {
            lu_[r * kDim + c] -= m * lu_.get(d * kDim + c);
          }
        }
        region.iterationEnd();
      }
    }
  }

  [[nodiscard]] int nominalIterations() const override { return kBlocks; }

  [[nodiscard]] VerifyOutcome verify(Runtime& rt) override {
    (void)rt;
    // Reconstruct sampled entries of L*U and compare against A.
    AppLcg lcg(90210);
    double worst = 0.0;
    for (int s = 0; s < 400; ++s) {
      const int r = static_cast<int>(lcg.nextBelow(kDim));
      const int c = static_cast<int>(lcg.nextBelow(kDim));
      double sum = 0.0;
      const int kmax = std::min(r, c);
      for (int j = 0; j < kmax; ++j) {
        sum += lu_.peek(r * kDim + j) * lu_.peek(j * kDim + c);
      }
      // L has unit diagonal: add U(r,c) when r <= c, else L(r,c)*U(c,c).
      sum += (r <= c) ? lu_.peek(r * kDim + c)
                      : lu_.peek(r * kDim + c) * lu_.peek(c * kDim + c);
      worst = std::max(worst, std::abs(sum - a_.peek(r * kDim + c)) / kDim);
    }
    VerifyOutcome out;
    out.metric = worst;
    out.pass = std::isfinite(worst) && worst <= kVerifyTol;
    out.detail = "max sampled |LU - A|/n = " + std::to_string(worst);
    return out;
  }

 private:
  [[nodiscard]] static int blockOf(int rc) { return rc / kBs; }

  TrackedArray<double> lu_, a_;
};

}  // namespace

runtime::AppFactory makeBotsspar() {
  return [] { return std::make_unique<BotssparApp>(); };
}

}  // namespace easycrash::apps
