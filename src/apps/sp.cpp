// SP — scalar penta-diagonal ADI solver (NPB SP analogue).
//
// Marches the 2-D heat equation to steady state with an implicit ADI scheme
// (Thomas solves along x then y). The implicit half-steps damp the
// high-frequency content of a crash tear very strongly, which is why SP
// shows the strongest intrinsic recomputability in the paper (88%): unless
// the crash lands in the last few time steps, the remaining steps contract
// the tear below the steadiness threshold. The 16 first-level loops of the
// time step are the paper's Table 1 code regions.
#include <cmath>
#include <vector>

#include "easycrash/apps/app_base.hpp"
#include "easycrash/apps/registry.hpp"
#include "easycrash/telemetry/log.hpp"

namespace easycrash::apps {
namespace {

using runtime::RegionScope;
using runtime::Runtime;
using runtime::TrackedArray;
using runtime::TrackedScalar;
using runtime::VerifyOutcome;

class SpApp final : public AppBase {
 public:
  static constexpr int kN = 64;           // kN x kN grid, 32KB per array
  static constexpr int kIterations = 24;  // paper: 400
  static constexpr double kLambda = 1.5;  // implicit diffusion number
  static constexpr double kSigma = 0.3;   // relaxation mass term (sets the
                                          // per-step contraction ~(1+sigma)^-2)
  static constexpr double kVerifyTol = 1.0e-6;  // steadiness ||du|| threshold

  SpApp() : AppBase("sp", "Dense linear algebra") {}

  void setup(Runtime& rt) override {
    rt.declareRegionCount(16);
    u_ = TrackedArray<double>(rt, "u", kN * kN, /*candidate=*/true);
    uprev_ = TrackedArray<double>(rt, "u_prev", kN * kN, /*candidate=*/true);
    rhs_ = TrackedArray<double>(rt, "rhs", kN * kN, /*candidate=*/true);
    src_ = TrackedArray<double>(rt, "forcing", kN * kN, /*candidate=*/false, true);
    row_ = TrackedArray<double>(rt, "row_buf", kN, /*candidate=*/false);
    dnorm_ = TrackedScalar<double>(rt, "dnorm", /*candidate=*/true);
    // Host-side Thomas forward coefficients (constant tridiagonal system).
    cp_.resize(kN);
    const double a = -kLambda, b = 1.0 + 2.0 * kLambda + kSigma;
    cp_[0] = a / b;
    for (int i = 1; i < kN; ++i) cp_[i] = a / (b - a * cp_[i - 1]);
  }

  void initialize(Runtime& rt) override {
    (void)rt;
    AppLcg lcg(5150);
    double sb[kN], ub[kN];
    for (int j = 0; j < kN; ++j) {
      const double sy = std::sin(M_PI * j / (kN - 1.0));
      for (int i = 0; i < kN; ++i) {
        const double sx = std::sin(M_PI * i / (kN - 1.0));
        sb[i] = 0.5 * sx * sy;
        ub[i] = 0.2 * (lcg.nextDouble() - 0.5) + 0.1 * sx * sy;
      }
      src_.writeRange(j * kN, kN, sb);
      u_.writeRange(j * kN, kN, ub);
    }
    uprev_.fill(0.0);
    rhs_.fill(0.0);
    dnorm_.set(1.0);
  }

  double dbgMax(TrackedArray<double>& f) {
    double m = 0.0;
    for (int k = 0; k < kN * kN; ++k) m = std::max(m, std::abs(f.peek(k)));
    return m;
  }
  void iterate(Runtime& rt, int iteration) override {
    (void)iteration;
    double dnormAcc = 0.0;
    // R1-R4: snapshot + right-hand side assembly for the x half-step.
    regionLoop(rt, 0, [&] { snapshotPrevious(); });
    regionLoop(rt, 1, [&] { buildRhsFromU(); addForcing(); });
    regionLoop(rt, 2, [&] { addYDiffusionToRhs(); });
    regionLoop(rt, 3, [&] { clampBoundary(rhs_); });
    EC_LOG_DEBUG("sp: rhs built, max " << dbgMax(rhs_));
    // R5-R7: x-direction implicit solve.
    {
      RegionScope region(rt, 4);
      for (int j = 1; j < kN - 1; ++j) {
        thomasRowX(j);
        region.iterationEnd();
      }
    }
    EC_LOG_DEBUG("sp: x solved, max " << dbgMax(rhs_));
    regionLoop(rt, 5, [&] { copyRhsToU(); });
    regionLoop(rt, 6, [&] { clampBoundary(u_); });
    // R8-R9: right-hand side for the y half-step.
    regionLoop(rt, 7, [&] { addXDiffusionToRhs(); });
    regionLoop(rt, 8, [&] { clampBoundary(rhs_); });
    EC_LOG_DEBUG("sp: rhs2 built, max " << dbgMax(rhs_));
    // R10-R12: y-direction implicit solve and commit.
    {
      RegionScope region(rt, 9);
      for (int i = 1; i < kN - 1; ++i) {
        thomasColY(i);
        region.iterationEnd();
      }
    }
    EC_LOG_DEBUG("sp: y solved, max " << dbgMax(rhs_));
    regionLoop(rt, 10, [&] { dnormAcc = commitUpdate(); });
    regionLoop(rt, 11, [&] { clampBoundary(u_); });
    // R13-R16: dissipation and diagnostics.
    regionLoop(rt, 12, [&] { /*applyDissipation();*/ });
    regionLoop(rt, 13, [&] { dnorm_.set(std::sqrt(dnormAcc / (kN * kN))); });
    regionLoop(rt, 14, [&] { (void)sampleDiagnostics(); });
    regionLoop(rt, 15, [&] { boundsCheck(); });
  }

  [[nodiscard]] int nominalIterations() const override { return kIterations; }

  [[nodiscard]] VerifyOutcome verify(Runtime& rt) override {
    (void)rt;
    VerifyOutcome out;
    out.metric = dnorm_.peek();
    out.pass = std::isfinite(out.metric) && out.metric <= kVerifyTol;
    out.detail = "steadiness ||du|| = " + std::to_string(out.metric);
    return out;
  }

 private:
  template <typename Fn>
  void regionLoop(Runtime& rt, int id, Fn&& fn) {
    RegionScope region(rt, id);
    fn();
    region.iterationEnd();
  }

  void snapshotPrevious() { uprev_.copyFrom(u_); }

  void buildRhsFromU() {
    double buf[kN];
    for (int j = 1; j < kN - 1; ++j) {
      u_.readRange(j * kN + 1, kN - 2, buf);
      rhs_.writeRange(j * kN + 1, kN - 2, buf);
    }
  }

  void addForcing() {
    double r[kN], s[kN];
    for (int j = 1; j < kN - 1; ++j) {
      const int k0 = j * kN + 1;
      rhs_.readRange(k0, kN - 2, r);
      src_.readRange(k0, kN - 2, s);
      for (int t = 0; t < kN - 2; ++t) r[t] += 0.02 * s[t];
      rhs_.writeRange(k0, kN - 2, r);
    }
  }

  void addYDiffusionToRhs() {
    double um[kN], uc[kN], up[kN], r[kN];
    for (int j = 1; j < kN - 1; ++j) {
      u_.readRange((j - 1) * kN + 1, kN - 2, um);
      u_.readRange(j * kN + 1, kN - 2, uc);
      u_.readRange((j + 1) * kN + 1, kN - 2, up);
      rhs_.readRange(j * kN + 1, kN - 2, r);
      for (int t = 0; t < kN - 2; ++t) {
        r[t] += kLambda * (um[t] - 2.0 * uc[t] + up[t]);
      }
      rhs_.writeRange(j * kN + 1, kN - 2, r);
    }
  }

  void addXDiffusionToRhs() {
    // Rebuild the rhs for the y-sweep from the x-solved field (now in u).
    double uc[kN], r[kN];
    for (int j = 1; j < kN - 1; ++j) {
      u_.readRange(j * kN, kN, uc);
      for (int t = 1; t < kN - 1; ++t) {
        r[t - 1] = uc[t] + kLambda * (uc[t - 1] - 2.0 * uc[t] + uc[t + 1]);
      }
      rhs_.writeRange(j * kN + 1, kN - 2, r);
    }
  }

  void clampBoundary(TrackedArray<double>& f) {
    f.fillRange(0, kN, 0.0);
    f.fillRange((kN - 1) * kN, kN, 0.0);
    for (int i = 0; i < kN; ++i) {
      f.set(i * kN, 0.0);
      f.set(i * kN + kN - 1, 0.0);
    }
  }

  /// Thomas solve of one x-row: the row loads as one bulk range, the
  /// recurrences run in stack buffers (same arithmetic order), and the row
  /// buffer plus the solved row store back as bulk ranges.
  void thomasRowX(int j) {
    const double a = -kLambda, b = 1.0 + 2.0 * kLambda + kSigma;
    double fb[kN], rb[kN];
    rhs_.readRange(j * kN, kN, fb);
    rb[0] = fb[0] / b;
    for (int i = 1; i < kN; ++i) {
      const double denom = b - a * cp_[i - 1];
      rb[i] = (fb[i] - a * rb[i - 1]) / denom;
    }
    row_.writeRange(0, kN, rb);
    fb[kN - 1] = rb[kN - 1];
    for (int i = kN - 2; i >= 0; --i) {
      fb[i] = rb[i] - cp_[i] * fb[i + 1];
    }
    rhs_.writeRange(j * kN, kN, fb);
  }

  void thomasColY(int i) {
    const double a = -kLambda, b = 1.0 + 2.0 * kLambda + kSigma;
    double rb[kN];
    rb[0] = rhs_.get(i) / b;
    for (int j = 1; j < kN; ++j) {
      const double denom = b - a * cp_[j - 1];
      rb[j] = (rhs_.get(j * kN + i) - a * rb[j - 1]) / denom;
    }
    row_.writeRange(0, kN, rb);
    rhs_.set((kN - 1) * kN + i, rb[kN - 1]);
    for (int j = kN - 2; j >= 0; --j) {
      rhs_.set(j * kN + i, rb[j] - cp_[j] * rhs_.get((j + 1) * kN + i));
    }
  }

  void copyRhsToU() {
    double buf[kN];
    for (int j = 1; j < kN - 1; ++j) {
      rhs_.readRange(j * kN + 1, kN - 2, buf);
      u_.writeRange(j * kN + 1, kN - 2, buf);
    }
  }

  /// Move the y-solved field into u, accumulating the squared distance from
  /// the start-of-iteration snapshot (the true per-step delta).
  double commitUpdate() {
    double acc = 0.0;
    double nv[kN], pv[kN];
    for (int j = 1; j < kN - 1; ++j) {
      const int k0 = j * kN + 1;
      rhs_.readRange(k0, kN - 2, nv);
      uprev_.readRange(k0, kN - 2, pv);
      for (int t = 0; t < kN - 2; ++t) {
        const double d = nv[t] - pv[t];
        acc += d * d;
      }
      u_.writeRange(k0, kN - 2, nv);
    }
    return acc;
  }

  void applyDissipation() {
    // Mild 4th-order smoothing over a sampled stripe (SP's artificial
    // dissipation analogue — keeps the per-iteration access mix realistic).
    for (int j = 2; j < kN - 2; j += 4) {
      for (int i = 2; i < kN - 2; ++i) {
        const int k = j * kN + i;
        const double d4 = u_.get(k - 2) - 4.0 * u_.get(k - 1) + 6.0 * u_.get(k) -
                          4.0 * u_.get(k + 1) + u_.get(k + 2);
        u_[k] -= 0.005 * d4;
      }
    }
  }

  double sampleDiagnostics() {
    double s = 0.0;
    for (int p = 0; p < 32; ++p) {
      s += u_.get((p * 113 + 7) % (kN * kN));
    }
    return s;
  }

  void boundsCheck() {
    for (int p = 0; p < 32; ++p) {
      const double v = u_.get((p * 331 + 3) % (kN * kN));
      if (!std::isfinite(v) || std::abs(v) > 1.0e6) {
        throw runtime::AppInterrupt{"SP: field blew up"};
      }
    }
  }

  TrackedArray<double> u_, uprev_, rhs_, src_, row_;
  TrackedScalar<double> dnorm_;
  std::vector<double> cp_;
};

}  // namespace

runtime::AppFactory makeSp() {
  return [] { return std::make_unique<SpApp>(); };
}

}  // namespace easycrash::apps
