// BT — block-tridiagonal ADI solver (NPB BT analogue).
//
// Marches two weakly-coupled fields of a reaction-diffusion system to steady
// state with an implicit ADI scheme, one block (2x2) per grid point. Like SP
// it converges to an attractor, so crash tears are contracted away by the
// remaining time steps — BT shows strong (though slightly weaker than SP)
// intrinsic recomputability in the paper. Its time step decomposes into 15
// first-level loops, matching the paper's Table 1 region count.
#include <cmath>
#include <vector>

#include "easycrash/apps/app_base.hpp"
#include "easycrash/apps/registry.hpp"

namespace easycrash::apps {
namespace {

using runtime::RegionScope;
using runtime::Runtime;
using runtime::TrackedArray;
using runtime::TrackedScalar;
using runtime::VerifyOutcome;

class BtApp final : public AppBase {
 public:
  static constexpr int kN = 48;           // kN x kN grid, ~18KB per array
  static constexpr int kIterations = 20;  // paper: 200
  static constexpr double kLambda = 1.0;  // implicit diffusion number
  static constexpr double kSigma = 0.22;  // relaxation (weaker than SP)
  static constexpr double kCouple = 0.05;
  static constexpr double kVerifyTol = 2.0e-5;

  BtApp() : AppBase("bt", "Dense linear algebra") {}

  void setup(Runtime& rt) override {
    rt.declareRegionCount(15);
    u1_ = TrackedArray<double>(rt, "u1", kN * kN, /*candidate=*/true);
    u2_ = TrackedArray<double>(rt, "u2", kN * kN, /*candidate=*/true);
    uprev_ = TrackedArray<double>(rt, "u_prev", kN * kN, /*candidate=*/true);
    rhs1_ = TrackedArray<double>(rt, "rhs1", kN * kN, /*candidate=*/true);
    rhs2_ = TrackedArray<double>(rt, "rhs2", kN * kN, /*candidate=*/true);
    src_ = TrackedArray<double>(rt, "forcing", kN * kN, /*candidate=*/false, true);
    row_ = TrackedArray<double>(rt, "row_buf", kN, /*candidate=*/false);
    dnorm_ = TrackedScalar<double>(rt, "dnorm", /*candidate=*/true);
    cp_.resize(kN);
    const double a = -kLambda, b = 1.0 + 2.0 * kLambda + kSigma;
    cp_[0] = a / b;
    for (int i = 1; i < kN; ++i) cp_[i] = a / (b - a * cp_[i - 1]);
  }

  void initialize(Runtime& rt) override {
    (void)rt;
    AppLcg lcg(6061);
    double sb[kN], a1[kN], a2[kN];
    for (int j = 0; j < kN; ++j) {
      const double sy = std::sin(M_PI * j / (kN - 1.0));
      for (int i = 0; i < kN; ++i) {
        const double sx = std::sin(M_PI * i / (kN - 1.0));
        sb[i] = 0.4 * sx * sy;
        a1[i] = 0.15 * (lcg.nextDouble() - 0.5) + 0.1 * sx * sy;
        a2[i] = 0.15 * (lcg.nextDouble() - 0.5);
      }
      src_.writeRange(j * kN, kN, sb);
      u1_.writeRange(j * kN, kN, a1);
      u2_.writeRange(j * kN, kN, a2);
    }
    uprev_.fill(0.0);
    rhs1_.fill(0.0);
    rhs2_.fill(0.0);
    dnorm_.set(1.0);
  }

  void iterate(Runtime& rt, int iteration) override {
    (void)iteration;
    double dnormAcc = 0.0;
    // R1-R5: right-hand side assembly.
    regionLoop(rt, 0, [&] { snapshotPrevious(); });
    regionLoop(rt, 1, [&] { buildRhs(u1_, rhs1_); });
    regionLoop(rt, 2, [&] { buildRhs(u2_, rhs2_); });
    regionLoop(rt, 3, [&] { addCouplingAndForcing(); });
    regionLoop(rt, 4, [&] {
      addYDiffusion(u1_, rhs1_);
      addYDiffusion(u2_, rhs2_);
      clampBoundary(rhs1_);
      clampBoundary(rhs2_);
    });
    // R6-R9: x-direction block solves, one field at a time.
    regionSolveRows(rt, 5, rhs1_);
    regionSolveRows(rt, 6, rhs2_);
    regionLoop(rt, 7, [&] { xCommit(rhs1_, u1_); xCommit(rhs2_, u2_); });
    regionLoop(rt, 8, [&] {
      addXDiffusion(u1_, rhs1_);
      addXDiffusion(u2_, rhs2_);
      clampBoundary(rhs1_);
      clampBoundary(rhs2_);
    });
    // R10-R13: y-direction block solves and commit.
    regionSolveCols(rt, 9, rhs1_);
    regionSolveCols(rt, 10, rhs2_);
    regionLoop(rt, 11, [&] { dnormAcc = commit(); });
    regionLoop(rt, 12, [&] { clampBoundary(u1_); clampBoundary(u2_); });
    // R14-R15: diagnostics.
    regionLoop(rt, 13, [&] { dnorm_.set(std::sqrt(dnormAcc / (2.0 * kN * kN))); });
    regionLoop(rt, 14, [&] { boundsCheck(); });
  }

  [[nodiscard]] int nominalIterations() const override { return kIterations; }

  [[nodiscard]] VerifyOutcome verify(Runtime& rt) override {
    (void)rt;
    VerifyOutcome out;
    out.metric = dnorm_.peek();
    out.pass = std::isfinite(out.metric) && out.metric <= kVerifyTol;
    out.detail = "steadiness ||du|| = " + std::to_string(out.metric);
    return out;
  }

 private:
  template <typename Fn>
  void regionLoop(Runtime& rt, int id, Fn&& fn) {
    RegionScope region(rt, id);
    fn();
    region.iterationEnd();
  }

  void regionSolveRows(Runtime& rt, int id, TrackedArray<double>& f) {
    RegionScope region(rt, id);
    for (int j = 1; j < kN - 1; ++j) {
      thomasRow(f, j);
      region.iterationEnd();
    }
  }

  void regionSolveCols(Runtime& rt, int id, TrackedArray<double>& f) {
    RegionScope region(rt, id);
    for (int i = 1; i < kN - 1; ++i) {
      thomasCol(f, i);
      region.iterationEnd();
    }
  }

  void snapshotPrevious() {
    // Only the primary field feeds the steadiness norm (keeps one snapshot).
    uprev_.copyFrom(u1_);
  }

  void buildRhs(TrackedArray<double>& u, TrackedArray<double>& rhs) {
    double buf[kN];
    for (int j = 1; j < kN - 1; ++j) {
      u.readRange(j * kN + 1, kN - 2, buf);
      rhs.writeRange(j * kN + 1, kN - 2, buf);
    }
  }

  void addCouplingAndForcing() {
    double r1[kN], r2[kN], a1[kN], a2[kN], s[kN];
    for (int j = 1; j < kN - 1; ++j) {
      const int k0 = j * kN + 1;
      rhs1_.readRange(k0, kN - 2, r1);
      rhs2_.readRange(k0, kN - 2, r2);
      u1_.readRange(k0, kN - 2, a1);
      u2_.readRange(k0, kN - 2, a2);
      src_.readRange(k0, kN - 2, s);
      for (int t = 0; t < kN - 2; ++t) {
        r1[t] += kCouple * a2[t] + 0.02 * s[t];
        r2[t] += kCouple * a1[t];
      }
      rhs1_.writeRange(k0, kN - 2, r1);
      rhs2_.writeRange(k0, kN - 2, r2);
    }
  }

  void addYDiffusion(TrackedArray<double>& u, TrackedArray<double>& rhs) {
    double um[kN], uc[kN], up[kN], r[kN];
    for (int j = 1; j < kN - 1; ++j) {
      u.readRange((j - 1) * kN + 1, kN - 2, um);
      u.readRange(j * kN + 1, kN - 2, uc);
      u.readRange((j + 1) * kN + 1, kN - 2, up);
      rhs.readRange(j * kN + 1, kN - 2, r);
      for (int t = 0; t < kN - 2; ++t) {
        r[t] += kLambda * (um[t] - 2.0 * uc[t] + up[t]);
      }
      rhs.writeRange(j * kN + 1, kN - 2, r);
    }
  }

  void addXDiffusion(TrackedArray<double>& u, TrackedArray<double>& rhs) {
    double uc[kN], r[kN];
    for (int j = 1; j < kN - 1; ++j) {
      u.readRange(j * kN, kN, uc);
      for (int t = 1; t < kN - 1; ++t) {
        r[t - 1] = uc[t] + kLambda * (uc[t - 1] - 2.0 * uc[t] + uc[t + 1]);
      }
      rhs.writeRange(j * kN + 1, kN - 2, r);
    }
  }

  void xCommit(TrackedArray<double>& rhs, TrackedArray<double>& u) {
    double buf[kN];
    for (int j = 1; j < kN - 1; ++j) {
      rhs.readRange(j * kN + 1, kN - 2, buf);
      u.writeRange(j * kN + 1, kN - 2, buf);
    }
  }

  double commit() {
    double acc = 0.0;
    double n1[kN], n2[kN], pv[kN];
    for (int j = 1; j < kN - 1; ++j) {
      const int k0 = j * kN + 1;
      rhs1_.readRange(k0, kN - 2, n1);
      rhs2_.readRange(k0, kN - 2, n2);
      uprev_.readRange(k0, kN - 2, pv);
      for (int t = 0; t < kN - 2; ++t) {
        const double d = n1[t] - pv[t];
        acc += 2.0 * d * d;  // both fields weighted into the norm
      }
      u1_.writeRange(k0, kN - 2, n1);
      u2_.writeRange(k0, kN - 2, n2);
    }
    return acc;
  }

  void clampBoundary(TrackedArray<double>& f) {
    f.fillRange(0, kN, 0.0);
    f.fillRange((kN - 1) * kN, kN, 0.0);
    for (int i = 0; i < kN; ++i) {
      f.set(i * kN, 0.0);
      f.set(i * kN + kN - 1, 0.0);
    }
  }

  void thomasRow(TrackedArray<double>& f, int j) {
    const double a = -kLambda, b = 1.0 + 2.0 * kLambda + kSigma;
    double fb[kN], rb[kN];
    f.readRange(j * kN, kN, fb);
    rb[0] = fb[0] / b;
    for (int i = 1; i < kN; ++i) {
      const double denom = b - a * cp_[i - 1];
      rb[i] = (fb[i] - a * rb[i - 1]) / denom;
    }
    row_.writeRange(0, kN, rb);
    fb[kN - 1] = rb[kN - 1];
    for (int i = kN - 2; i >= 0; --i) {
      fb[i] = rb[i] - cp_[i] * fb[i + 1];
    }
    f.writeRange(j * kN, kN, fb);
  }

  void thomasCol(TrackedArray<double>& f, int i) {
    const double a = -kLambda, b = 1.0 + 2.0 * kLambda + kSigma;
    double rb[kN];
    rb[0] = f.get(i) / b;
    for (int j = 1; j < kN; ++j) {
      const double denom = b - a * cp_[j - 1];
      rb[j] = (f.get(j * kN + i) - a * rb[j - 1]) / denom;
    }
    row_.writeRange(0, kN, rb);
    f.set((kN - 1) * kN + i, rb[kN - 1]);
    for (int j = kN - 2; j >= 0; --j) {
      f.set(j * kN + i, rb[j] - cp_[j] * f.get((j + 1) * kN + i));
    }
  }

  void boundsCheck() {
    for (int p = 0; p < 32; ++p) {
      const int k = (p * 409 + 11) % (kN * kN);
      const double v = u1_.get(k) + u2_.get(k);
      if (!std::isfinite(v) || std::abs(v) > 1.0e6) {
        throw runtime::AppInterrupt{"BT: field blew up"};
      }
    }
  }

  TrackedArray<double> u1_, u2_, uprev_, rhs1_, rhs2_, src_, row_;
  TrackedScalar<double> dnorm_;
  std::vector<double> cp_;
};

}  // namespace

runtime::AppFactory makeBt() {
  return [] { return std::make_unique<BtApp>(); };
}

}  // namespace easycrash::apps
