#include "easycrash/apps/registry.hpp"

#include <stdexcept>

namespace easycrash::apps {

const std::vector<BenchmarkEntry>& allBenchmarks() {
  static const std::vector<BenchmarkEntry> benchmarks = {
      {"cg", "Sparse linear algebra", makeCg()},
      {"mg", "Structured grids", makeMg()},
      {"ft", "Spectral method", makeFt()},
      {"is", "Graph traversal (sorting)", makeIs()},
      {"bt", "Dense linear algebra", makeBt()},
      {"lu", "Dense linear algebra", makeLu()},
      {"sp", "Dense linear algebra", makeSp()},
      {"ep", "Monte Carlo", makeEp()},
      {"botsspar", "Sparse linear algebra", makeBotsspar()},
      {"lulesh", "Hydrodynamics modeling", makeLulesh()},
      {"kmeans", "Data mining", makeKmeans()},
  };
  return benchmarks;
}

const BenchmarkEntry& findBenchmark(const std::string& name) {
  for (const auto& entry : allBenchmarks()) {
    if (entry.name == name) return entry;
  }
  throw std::runtime_error("unknown benchmark: " + name);
}

runtime::AppFactory scaledBenchmarkFactory(const std::string& name, int scale) {
  if (scale < 1) throw std::runtime_error("--scale must be >= 1");
  if (scale == 1) return findBenchmark(name).factory;
  if (name == "cg") return makeCgScaled(scale);
  if (name == "mg") return makeMgScaled(scale);
  if (name == "kmeans") return makeKmeansScaled(scale);
  throw std::runtime_error("--scale > 1 is only supported for cg, mg and "
                           "kmeans; '" + name + "' has a fixed problem size");
}

std::vector<std::string> evaluatedBenchmarkNames() {
  std::vector<std::string> names;
  for (const auto& entry : allBenchmarks()) {
    if (entry.name != "ep") names.push_back(entry.name);
  }
  return names;
}

}  // namespace easycrash::apps
