// kmeans — Lloyd's clustering (Rodinia kmeans analogue).
//
// One code region (Table 1): the assign-and-update loop over all points. The
// only state that matters across iterations is the tiny centroid array (the
// paper's 20-byte critical data object): it is so hot that its NVM copy
// after a bare crash is essentially the initial guess, and the restarted run
// must redo the whole convergence — about half the nominal iteration count
// extra on average (Table 1: 18.2 extra of 36), which the paper's strict
// "no extra iterations" recomputability definition counts as failure.
// Persisting the centroids is almost free and repairs exactly this.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "easycrash/apps/app_base.hpp"
#include "easycrash/apps/registry.hpp"

namespace easycrash::apps {
namespace {

using runtime::RegionScope;
using runtime::Runtime;
using runtime::TrackedArray;
using runtime::TrackedScalar;
using runtime::VerifyOutcome;

class KmeansApp final : public AppBase {
 public:
  static constexpr int kBasePoints = 3584;  // at --scale 1
  static constexpr int kDim = 2;
  static constexpr int kClusters = 3;
  static constexpr int kNominalIterations = 36;  // matches the paper's count
  static constexpr double kShiftEps = 2.0e-5;    // convergence on centroid move
  static constexpr double kSseSlack = 1.02;      // verify: SSE within 2% of ref

  /// `scale` multiplies the point count; the cluster geometry (and with it
  /// the centroid dynamics and iteration schedule) is scale-invariant.
  explicit KmeansApp(int scale = 1)
      : AppBase("kmeans", "Data mining"), numPoints_(kBasePoints * scale) {}

  void setup(Runtime& rt) override {
    rt.declareRegionCount(1);
    points_ = TrackedArray<double>(rt, "points", numPoints_ * kDim,
                                   /*candidate=*/false, /*readOnly=*/true);
    centroids_ = TrackedArray<double>(rt, "centroids", kClusters * kDim,
                                      /*candidate=*/true);
    membership_ = TrackedArray<std::int32_t>(rt, "membership", numPoints_,
                                             /*candidate=*/true);
    accum_ = TrackedArray<double>(rt, "accum", kClusters * (kDim + 1),
                                  /*candidate=*/false);
    shift_ = TrackedScalar<double>(rt, "shift", /*candidate=*/true);
  }

  void initialize(Runtime& rt) override {
    (void)rt;
    AppLcg lcg(1234);
    // Three elongated, overlapping clusters: Lloyd's converges slowly, which
    // reproduces the paper's ~36-iteration schedule.
    const double cx[kClusters] = {0.33, 0.5, 0.67};
    const double cy[kClusters] = {0.5, 0.5, 0.5};
    referenceSse_ = 0.0;
    std::vector<double> pts(static_cast<std::size_t>(numPoints_) * kDim);
    for (int i = 0; i < numPoints_; ++i) {
      const int c = i % kClusters;
      const double gx = gaussianish(lcg), gy = gaussianish(lcg);
      pts[i * kDim + 0] = cx[c] + 0.14 * gx;
      pts[i * kDim + 1] = cy[c] + 0.45 * gy;
    }
    points_.writeRange(0, pts.size(), pts.data());
    membership_.fill(0);
    // Deliberately poor initial centroids (all in one corner): the march to
    // the solution takes the nominal schedule.
    double cen[kClusters * kDim];
    for (int c = 0; c < kClusters; ++c) {
      cen[c * kDim + 0] = 0.05 + 0.015 * c;
      cen[c * kDim + 1] = 0.05 + 0.010 * c;
    }
    centroids_.writeRange(0, kClusters * kDim, cen);
    accum_.fill(0.0);
    shift_.set(1.0);
  }

  void iterate(Runtime& rt, int iteration) override {
    (void)iteration;
    RegionScope region(rt, 0);
    for (int i = 0; i < kClusters * (kDim + 1); ++i) accum_.set(i, 0.0);
    double sse = 0.0;
    // Bulk granularity is per POINT, not per chunk: the Table-1 landscape
    // depends on the centroid block staying so hot it is never evicted
    // (leaving its NVM copy at the initial guess, so restarts redo the whole
    // convergence, ~nominal/2 extra iterations). Chunked multi-KB point
    // bursts change the recency interleaving enough that the dirty centroid
    // block gets written back every sweep, and the landscape collapses to
    // ~1 extra iteration — so each point re-reads the centroids and its own
    // coordinates as two small ranges, preserving the per-point block-touch
    // order of the scalar loop it replaces.
    double pt[kDim];
    double cen[kClusters * kDim];
    for (int i = 0; i < numPoints_; ++i) {
      points_.readRange(static_cast<std::uint64_t>(i) * kDim, kDim, pt);
      centroids_.readRange(0, kClusters * kDim, cen);
      double best = 1.0e300;
      int bestC = 0;
      for (int c = 0; c < kClusters; ++c) {
        double d2 = 0.0;
        for (int d = 0; d < kDim; ++d) {
          const double diff = pt[d] - cen[c * kDim + d];
          d2 += diff * diff;
        }
        if (d2 < best) {
          best = d2;
          bestC = c;
        }
      }
      membership_.set(i, bestC);
      for (int d = 0; d < kDim; ++d) {
        accum_[bestC * (kDim + 1) + d] += pt[d];
      }
      accum_[bestC * (kDim + 1) + kDim] += 1.0;
      sse += best;
      region.iterationEnd();
    }
    // Centroid update + movement measurement.
    double shift = 0.0;
    for (int c = 0; c < kClusters; ++c) {
      const double count = accum_.get(c * (kDim + 1) + kDim);
      if (count <= 0.0) continue;
      for (int d = 0; d < kDim; ++d) {
        const double updated = accum_.get(c * (kDim + 1) + d) / count;
        const double diff = updated - centroids_.get(c * kDim + d);
        shift += diff * diff;
        centroids_.set(c * kDim + d, updated);
      }
    }
    shift_.set(std::sqrt(shift));
    lastSse_ = sse;
  }

  [[nodiscard]] int nominalIterations() const override { return kNominalIterations; }

  [[nodiscard]] bool converged(Runtime& rt, int iteration) override {
    (void)rt;
    (void)iteration;
    const double s = shift_.peek();
    return std::isfinite(s) && s <= kShiftEps;
  }

  [[nodiscard]] VerifyOutcome verify(Runtime& rt) override {
    (void)rt;
    // Reference SSE: run Lloyd's to convergence on the host from the same
    // deterministic initialisation (the known-good clustering quality).
    const double ref = referenceSseValue();
    VerifyOutcome out;
    out.metric = lastSse_ / ref;
    out.pass = std::isfinite(lastSse_) && lastSse_ <= ref * kSseSlack &&
               shift_.peek() <= kShiftEps * 10.0;
    out.detail = "SSE ratio vs reference = " + std::to_string(out.metric);
    return out;
  }

 private:
  static double gaussianish(AppLcg& lcg) {
    // Sum of uniforms (Irwin-Hall) as a light-weight normal approximation.
    double s = 0.0;
    for (int t = 0; t < 4; ++t) s += lcg.nextDouble();
    return (s - 2.0) * std::sqrt(3.0);
  }

  /// Host-side replication of the data generation + Lloyd's to convergence.
  [[nodiscard]] double referenceSseValue() const {
    if (referenceSse_ > 0.0) return referenceSse_;
    AppLcg lcg(1234);
    const double cx[kClusters] = {0.33, 0.5, 0.67};
    const double cy[kClusters] = {0.5, 0.5, 0.5};
    std::vector<double> pts(static_cast<std::size_t>(numPoints_) * kDim);
    for (int i = 0; i < numPoints_; ++i) {
      const int c = i % kClusters;
      AppLcg& l = lcg;
      const double gx = gaussianish(l), gy = gaussianish(l);
      pts[i * kDim + 0] = cx[c] + 0.14 * gx;
      pts[i * kDim + 1] = cy[c] + 0.45 * gy;
    }
    std::vector<double> cen{0.05, 0.05, 0.065, 0.06, 0.08, 0.07};
    double sse = 0.0;
    for (int it = 0; it < 4 * kNominalIterations; ++it) {
      std::vector<double> acc(kClusters * (kDim + 1), 0.0);
      sse = 0.0;
      for (int i = 0; i < numPoints_; ++i) {
        double best = 1.0e300;
        int bestC = 0;
        for (int c = 0; c < kClusters; ++c) {
          double d2 = 0.0;
          for (int d = 0; d < kDim; ++d) {
            const double diff = pts[i * kDim + d] - cen[c * kDim + d];
            d2 += diff * diff;
          }
          if (d2 < best) {
            best = d2;
            bestC = c;
          }
        }
        for (int d = 0; d < kDim; ++d) acc[bestC * (kDim + 1) + d] += pts[i * kDim + d];
        acc[bestC * (kDim + 1) + kDim] += 1.0;
        sse += best;
      }
      double shift = 0.0;
      for (int c = 0; c < kClusters; ++c) {
        const double count = acc[c * (kDim + 1) + kDim];
        if (count <= 0.0) continue;
        for (int d = 0; d < kDim; ++d) {
          const double updated = acc[c * (kDim + 1) + d] / count;
          shift += (updated - cen[c * kDim + d]) * (updated - cen[c * kDim + d]);
          cen[c * kDim + d] = updated;
        }
      }
      if (std::sqrt(shift) <= kShiftEps) break;
    }
    referenceSse_ = sse;
    return referenceSse_;
  }

  const int numPoints_;  ///< point count (kBasePoints * scale)
  TrackedArray<double> points_, centroids_, accum_;
  TrackedArray<std::int32_t> membership_;
  TrackedScalar<double> shift_;
  double lastSse_ = 0.0;
  mutable double referenceSse_ = 0.0;
};

}  // namespace

runtime::AppFactory makeKmeans() {
  return [] { return std::make_unique<KmeansApp>(); };
}

runtime::AppFactory makeKmeansScaled(int scale) {
  return [scale] { return std::make_unique<KmeansApp>(scale); };
}

}  // namespace easycrash::apps
