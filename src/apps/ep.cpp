// EP — embarrassingly parallel Monte Carlo (NPB EP analogue).
//
// Generates Gaussian deviates by the Marsaglia polar method and accumulates
// annulus counts q[0..9] plus the running sums sx, sy. Verification compares
// all accumulators exactly against a deterministic host-side replay (the
// analogue of NPB's hard-coded reference values): any lost batch makes the
// outcome wrong forever, so EP's intrinsic recomputability is ~0 and — as the
// paper observes — even EasyCrash cannot help, because the accumulators are
// updated every one of thousands of tiny iterations and flushing them often
// enough would blow the t_s runtime budget (Equation 5 territory).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "easycrash/apps/app_base.hpp"
#include "easycrash/apps/registry.hpp"

namespace easycrash::apps {
namespace {

using runtime::RegionScope;
using runtime::Runtime;
using runtime::TrackedArray;
using runtime::VerifyOutcome;

class EpApp final : public AppBase {
 public:
  static constexpr int kIterations = 4096;  // batches (paper: 65535)
  static constexpr int kPairsPerBatch = 12;
  static constexpr int kBins = 10;
  static constexpr int kScratch = 4096;  // pair scratch buffer (32KB)

  EpApp() : AppBase("ep", "Monte Carlo") {}

  void setup(Runtime& rt) override {
    rt.declareRegionCount(2);
    scratch_ = TrackedArray<double>(rt, "pair_scratch", kScratch, /*candidate=*/true);
    q_ = TrackedArray<double>(rt, "q_bins", kBins, /*candidate=*/true);
    sums_ = TrackedArray<double>(rt, "gauss_sums", 2, /*candidate=*/true);
  }

  void initialize(Runtime& rt) override {
    (void)rt;
    scratch_.fill(0.0);
    q_.fill(0.0);
    sums_.fill(0.0);
  }

  void iterate(Runtime& rt, int iteration) override {
    const int base = (iteration * kPairsPerBatch * 2) % kScratch;
    constexpr int kBatch = 2 * kPairsPerBatch;
    {  // R1: generate this batch's uniform pairs into the scratch ring. The
       //     batch lands as one range store (two when it wraps the ring).
      RegionScope region(rt, 0);
      AppLcg lcg(100000 + iteration);  // stateless: seed derived from iteration
      double buf[kBatch];
      for (int p = 0; p < kPairsPerBatch; ++p) {
        buf[2 * p] = 2.0 * lcg.nextDouble() - 1.0;
        buf[2 * p + 1] = 2.0 * lcg.nextDouble() - 1.0;
      }
      const int first = std::min(kBatch, kScratch - base);
      scratch_.writeRange(base, first, buf);
      if (first < kBatch) scratch_.writeRange(0, kBatch - first, buf + first);
      for (int p = 0; p < kPairsPerBatch; ++p) region.iterationEnd();
    }
    {  // R2: polar transform and accumulation.
      RegionScope region(rt, 1);
      double buf[kBatch];
      const int first = std::min(kBatch, kScratch - base);
      scratch_.readRange(base, first, buf);
      if (first < kBatch) scratch_.readRange(0, kBatch - first, buf + first);
      for (int p = 0; p < kPairsPerBatch; ++p) {
        const double x = buf[2 * p];
        const double y = buf[2 * p + 1];
        const double t = x * x + y * y;
        if (t >= 1.0 || t == 0.0) continue;  // rejection step
        const double f = std::sqrt(-2.0 * std::log(t) / t);
        const double gx = x * f, gy = y * f;
        const double m = std::max(std::abs(gx), std::abs(gy));
        const int bin = std::min(kBins - 1, static_cast<int>(m));
        q_[bin] += 1.0;
        sums_[0] += gx;
        sums_[1] += gy;
        region.iterationEnd();
      }
    }
  }

  [[nodiscard]] int nominalIterations() const override { return kIterations; }

  [[nodiscard]] VerifyOutcome verify(Runtime& rt) override {
    (void)rt;
    // Host-side deterministic replay — the reference values.
    std::vector<double> qRef(kBins, 0.0);
    double sxRef = 0.0, syRef = 0.0;
    for (int iteration = 1; iteration <= kIterations; ++iteration) {
      AppLcg lcg(100000 + iteration);
      for (int p = 0; p < kPairsPerBatch; ++p) {
        const double x = 2.0 * lcg.nextDouble() - 1.0;
        const double y = 2.0 * lcg.nextDouble() - 1.0;
        const double t = x * x + y * y;
        if (t >= 1.0 || t == 0.0) continue;
        const double f = std::sqrt(-2.0 * std::log(t) / t);
        const double gx = x * f, gy = y * f;
        const double m = std::max(std::abs(gx), std::abs(gy));
        qRef[std::min(kBins - 1, static_cast<int>(m))] += 1.0;
        sxRef += gx;
        syRef += gy;
      }
    }
    VerifyOutcome out;
    double worst = std::max(std::abs(sums_.peek(0) - sxRef),
                            std::abs(sums_.peek(1) - syRef));
    for (int b = 0; b < kBins; ++b) {
      worst = std::max(worst, std::abs(q_.peek(b) - qRef[b]));
    }
    out.metric = worst;
    // NPB EP verifies sums to 1e-8 relative; counts must match exactly.
    out.pass = worst <= 1.0e-8 * std::max(1.0, std::abs(sxRef));
    out.detail = "max accumulator error = " + std::to_string(worst);
    return out;
  }

 private:
  TrackedArray<double> scratch_, q_, sums_;
};

}  // namespace

runtime::AppFactory makeEp() {
  return [] { return std::make_unique<EpApp>(); };
}

}  // namespace easycrash::apps
