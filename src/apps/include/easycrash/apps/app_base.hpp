// Shared utilities for instrumented mini-app benchmarks.
//
// Every app re-implements the algorithmic skeleton of its paper counterpart
// (main computation loop, first-level inner-loop code regions, data objects,
// acceptance verification) at a problem size scaled together with the cache
// hierarchy so that footprint >> LLC, the invariant the paper's Section 4.1
// establishes for its benchmark selection.
#pragma once

#include <cstdint>
#include <string>

#include "easycrash/runtime/app.hpp"
#include "easycrash/runtime/tracked.hpp"

namespace easycrash::apps {

/// Deterministic 64-bit LCG used by apps to generate synthetic inputs and
/// per-iteration update streams. Stateless usage (seed derived from the
/// iteration number) keeps restarts reproducible without persisting RNG
/// state.
class AppLcg {
 public:
  explicit constexpr AppLcg(std::uint64_t seed) noexcept
      : state_(seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL) {}

  constexpr std::uint64_t next() noexcept {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 17;
  }

  /// Uniform double in [0, 1).
  double nextDouble() noexcept {
    return static_cast<double>(next() & ((1ULL << 40) - 1)) * 0x1.0p-40;
  }

  /// Uniform integer in [0, bound).
  std::uint64_t nextBelow(std::uint64_t bound) noexcept { return next() % bound; }

 private:
  std::uint64_t state_;
};

/// Convenience base storing AppInfo.
class AppBase : public runtime::IApp {
 public:
  AppBase(std::string name, std::string description)
      : info_{std::move(name), std::move(description)} {}

  [[nodiscard]] const runtime::AppInfo& info() const override { return info_; }

 private:
  runtime::AppInfo info_;
};

}  // namespace easycrash::apps
