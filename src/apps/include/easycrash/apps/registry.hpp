// Registry of the 11 instrumented benchmarks (paper Table 1).
//
// Each entry provides a factory producing a fresh application instance; a
// fresh instance is created for every (re)run of a crash test so that no host
// state leaks between simulated executions.
#pragma once

#include <string>
#include <vector>

#include "easycrash/runtime/app.hpp"

namespace easycrash::apps {

struct BenchmarkEntry {
  std::string name;
  std::string description;  ///< Table 1 "Description"
  runtime::AppFactory factory;
};

/// All benchmarks, in the paper's Table 1 order:
/// cg, mg, ft, is, bt, lu, sp, ep, botsspar, lulesh, kmeans.
[[nodiscard]] const std::vector<BenchmarkEntry>& allBenchmarks();

/// Factory lookup by name; throws std::runtime_error for unknown names.
[[nodiscard]] const BenchmarkEntry& findBenchmark(const std::string& name);

/// The subset evaluated with EasyCrash in the paper's Section 6 (EP is
/// excluded there: its recomputability stays ~0 even with EasyCrash).
[[nodiscard]] std::vector<std::string> evaluatedBenchmarkNames();

// Individual factories (exposed for tests and focused studies).
[[nodiscard]] runtime::AppFactory makeCg();
[[nodiscard]] runtime::AppFactory makeMg();
[[nodiscard]] runtime::AppFactory makeFt();
[[nodiscard]] runtime::AppFactory makeIs();
[[nodiscard]] runtime::AppFactory makeBt();
[[nodiscard]] runtime::AppFactory makeLu();
[[nodiscard]] runtime::AppFactory makeSp();
[[nodiscard]] runtime::AppFactory makeEp();
[[nodiscard]] runtime::AppFactory makeBotsspar();
[[nodiscard]] runtime::AppFactory makeLulesh();
[[nodiscard]] runtime::AppFactory makeKmeans();

// Scaled variants (`nvct --scale`): the factor multiplies the app's problem
// size (grid edge for cg/mg, point count for kmeans); scale 1 is the exact
// default instance. Only these three scale — their verify disciplines are
// size-independent (see EXPERIMENTS.md "Scaled footprints").
[[nodiscard]] runtime::AppFactory makeCgScaled(int scale);
[[nodiscard]] runtime::AppFactory makeMgScaled(int scale);
[[nodiscard]] runtime::AppFactory makeKmeansScaled(int scale);

/// Factory for `name` at `scale`. Scale 1 returns the registry factory for
/// any app; scale > 1 throws std::runtime_error unless the app scales.
[[nodiscard]] runtime::AppFactory scaledBenchmarkFactory(const std::string& name,
                                                         int scale);

}  // namespace easycrash::apps
