// LULESH — Lagrangian shock-hydrodynamics proxy (LLNL LULESH analogue).
//
// A 1-D staggered-grid Lagrangian hydro scheme: nodal positions/velocities
// and element energies/pressures march through force calculation, motion
// update, EOS evaluation and time-step control — the paper's four code
// regions. Acceptance verification uses physics: total (kinetic + internal)
// energy conservation within a tolerance plus a positive-volume check; a
// tangled mesh (negative volume, the classic LULESH abort) raises the
// simulated segfault. Crash tears break energy conservation permanently —
// hydro has no restoring force toward the exact conserved value — but small
// tears stay inside the tolerance, giving LULESH its intermediate intrinsic
// recomputability.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "easycrash/apps/app_base.hpp"
#include "easycrash/apps/registry.hpp"

namespace easycrash::apps {
namespace {

using runtime::AppInterrupt;
using runtime::RegionScope;
using runtime::Runtime;
using runtime::TrackedArray;
using runtime::TrackedScalar;
using runtime::VerifyOutcome;

class LuleshApp final : public AppBase {
 public:
  static constexpr int kElems = 3072;          // elements; nodes = kElems + 1
  static constexpr int kIterations = 30;       // time steps (paper: 3517)
  static constexpr double kDt = 2.0e-5;
  static constexpr double kGamma = 1.4;        // ideal-gas EOS
  static constexpr double kViscosity = 0.10;   // artificial viscosity strength
  static constexpr double kTrajectoryTol = 1.0e-10;  // band vs. reference replay
  static constexpr double kEnergyTol = 1.0e-3;       // physics sanity bound

  LuleshApp() : AppBase("lulesh", "Hydrodynamics modeling") {}

  void setup(Runtime& rt) override {
    rt.declareRegionCount(4);
    x_ = TrackedArray<double>(rt, "node_x", kElems + 1, /*candidate=*/true);
    v_ = TrackedArray<double>(rt, "node_v", kElems + 1, /*candidate=*/true);
    e_ = TrackedArray<double>(rt, "elem_e", kElems, /*candidate=*/true);
    p_ = TrackedArray<double>(rt, "elem_p", kElems, /*candidate=*/true);
    q_ = TrackedArray<double>(rt, "elem_q", kElems, /*candidate=*/true);
    f_ = TrackedArray<double>(rt, "node_f", kElems + 1, /*candidate=*/false);
    mass_ = TrackedArray<double>(rt, "elem_mass", kElems, /*candidate=*/false, true);
    etotal_ = TrackedScalar<double>(rt, "e_total", /*candidate=*/true);
  }

  void initialize(Runtime& rt) override {
    (void)rt;
    e0_ = 0.0;
    AppLcg lcg(6174);
    std::vector<double> xb(kElems + 1), vb(kElems + 1);
    for (int i = 0; i <= kElems; ++i) {
      xb[i] = static_cast<double>(i) / kElems;
      // Acoustic-wave bath: every node moves every step, so a crash tear
      // anywhere in the domain perturbs the energy balance.
      const double phase = 2.0 * M_PI * 3.0 * i / kElems;
      vb[i] = (i == 0 || i == kElems)
                  ? 0.0
                  : 0.08 * std::sin(phase) + 0.02 * (lcg.nextDouble() - 0.5);
    }
    x_.writeRange(0, kElems + 1, xb.data());
    v_.writeRange(0, kElems + 1, vb.data());
    f_.fill(0.0);
    std::vector<double> eb(kElems), pb(kElems), mb(kElems);
    for (int k = 0; k < kElems; ++k) {
      // Sedov-like deposition on top of a warm background.
      const double energy =
          (k < kElems / 64) ? 1.0 : 0.1 + 0.05 * lcg.nextDouble();
      eb[k] = energy;
      mb[k] = 1.0 / kElems;
      const double vol = 1.0 / kElems;
      const double rho = mb[k] / vol;
      pb[k] = (kGamma - 1.0) * rho * energy;
      const double ke =
          0.25 * (1.0 / kElems) * (vb[k] * vb[k] + vb[k + 1] * vb[k + 1]);
      e0_ += energy * mb[k] + ke;
    }
    e_.writeRange(0, kElems, eb.data());
    mass_.writeRange(0, kElems, mb.data());
    p_.writeRange(0, kElems, pb.data());
    q_.fill(0.0);
    etotal_.set(e0_);
  }

  void iterate(Runtime& rt, int iteration) override {
    (void)iteration;
    constexpr std::uint64_t kChunk = TrackedArray<double>::kChunkElems;
    {  // R1: nodal force calculation from pressure + artificial viscosity.
       //     Chunks carry one element of overlap for the k-1 stencil leg.
      RegionScope region(rt, 0);
      double pb[kChunk + 1], qb[kChunk + 1], fb[kChunk];
      for (std::uint64_t i0 = 1; i0 < kElems; i0 += kChunk) {
        const std::uint64_t n = std::min<std::uint64_t>(kChunk, kElems - i0);
        p_.readRange(i0 - 1, n + 1, pb);
        q_.readRange(i0 - 1, n + 1, qb);
        for (std::uint64_t t = 0; t < n; ++t) {
          fb[t] = (pb[t] + qb[t]) - (pb[t + 1] + qb[t + 1]);
        }
        f_.writeRange(i0, n, fb);
      }
      f_.set(0, 0.0);
      f_.set(kElems, 0.0);
      region.iterationEnd();
    }
    {  // R2: velocity and position update (leapfrog).
      RegionScope region(rt, 1);
      double vb[kChunk], xb[kChunk], fb[kChunk];
      for (std::uint64_t i0 = 0; i0 <= kElems; i0 += kChunk) {
        const std::uint64_t n = std::min<std::uint64_t>(kChunk, kElems + 1 - i0);
        v_.readRange(i0, n, vb);
        x_.readRange(i0, n, xb);
        f_.readRange(i0, n, fb);
        for (std::uint64_t t = 0; t < n; ++t) {
          const double nodeMass = 1.0 / kElems;
          vb[t] += kDt * fb[t] / nodeMass;
          xb[t] += kDt * vb[t];
        }
        v_.writeRange(i0, n, vb);
        x_.writeRange(i0, n, xb);
      }
      region.iterationEnd();
    }
    {  // R3: EOS update — volume work and artificial viscosity. The nodal
       //     arrays read n+1 values per chunk for the k+1 stencil leg; a
       //     tangled mesh aborts before the chunk's writes are issued.
      RegionScope region(rt, 2);
      double xb[kChunk + 1], vb[kChunk + 1];
      double pb[kChunk], qb[kChunk], eb[kChunk], mb[kChunk];
      for (std::uint64_t k0 = 0; k0 < kElems; k0 += kChunk) {
        const std::uint64_t n = std::min<std::uint64_t>(kChunk, kElems - k0);
        x_.readRange(k0, n + 1, xb);
        v_.readRange(k0, n + 1, vb);
        p_.readRange(k0, n, pb);
        q_.readRange(k0, n, qb);
        e_.readRange(k0, n, eb);
        mass_.readRange(k0, n, mb);
        for (std::uint64_t t = 0; t < n; ++t) {
          const double vol = xb[t + 1] - xb[t];
          if (vol <= 0.0 || !std::isfinite(vol)) {
            throw AppInterrupt{"LULESH: negative element volume (mesh tangled)"};
          }
          const double dv = kDt * (vb[t + 1] - vb[t]);
          const double work = (pb[t] + qb[t]) * dv;
          eb[t] -= work / mb[t];
          const double rho = mb[t] / vol;
          pb[t] = std::max(0.0, (kGamma - 1.0) * rho * eb[t]);
          const double dvel = vb[t + 1] - vb[t];
          qb[t] = dvel < 0.0 ? kViscosity * rho * dvel * dvel : 0.0;
        }
        e_.writeRange(k0, n, eb);
        p_.writeRange(k0, n, pb);
        q_.writeRange(k0, n, qb);
      }
      region.iterationEnd();
    }
    {  // R4: time-step control diagnostics + running energy total.
      RegionScope region(rt, 3);
      double total = 0.0;
      double vb[kChunk + 1], eb[kChunk], mb[kChunk];
      for (std::uint64_t k0 = 0; k0 < kElems; k0 += kChunk) {
        const std::uint64_t n = std::min<std::uint64_t>(kChunk, kElems - k0);
        v_.readRange(k0, n + 1, vb);
        e_.readRange(k0, n, eb);
        mass_.readRange(k0, n, mb);
        for (std::uint64_t t = 0; t < n; ++t) {
          const double ke = 0.25 * (1.0 / kElems) *
                            (vb[t] * vb[t] + vb[t + 1] * vb[t + 1]);
          total += eb[t] * mb[t] + ke;
        }
      }
      etotal_.set(total);
      region.iterationEnd();
    }
  }

  [[nodiscard]] int nominalIterations() const override { return kIterations; }

  [[nodiscard]] VerifyOutcome verify(Runtime& rt) override {
    (void)rt;
    // Acceptance verification: the final state must match the reference
    // trajectory (host replay of the identical arithmetic) within a tight
    // band, the mesh must be intact, and total energy must be sane.
    const HostState& ref = referenceState();
    double worst = 0.0;
    for (int k = 0; k < kElems; ++k) {
      worst = std::max(worst, std::abs(e_.peek(k) - ref.e[k]));
      worst = std::max(worst, std::abs(x_.peek(k) - ref.x[k]));
      worst = std::max(worst, std::abs(v_.peek(k) - ref.v[k]));
    }
    double total = 0.0;
    for (int k = 0; k < kElems; ++k) {
      const double ke = 0.25 * (1.0 / kElems) *
                        (v_.peek(k) * v_.peek(k) + v_.peek(k + 1) * v_.peek(k + 1));
      total += e_.peek(k) * mass_.peek(k) + ke;
    }
    bool meshOk = true;
    for (int i = 0; i < kElems; ++i) {
      if (x_.peek(i + 1) <= x_.peek(i)) {
        meshOk = false;
        break;
      }
    }
    VerifyOutcome out;
    out.metric = worst;
    const double drift = std::abs(total - e0_) / e0_;
    out.pass = meshOk && std::isfinite(worst) && worst <= kTrajectoryTol &&
               drift <= kEnergyTol;
    out.detail = "max |state - reference| = " + std::to_string(worst) +
                 ", energy drift = " + std::to_string(drift) +
                 (meshOk ? "" : " (mesh tangled)");
    return out;
  }

 private:
  struct HostState {
    std::vector<double> x, v, e, p, q, f;
  };

  static void hostInit(HostState& s) {
    AppLcg lcg(6174);
    s.x.resize(kElems + 1);
    s.v.resize(kElems + 1);
    s.f.assign(kElems + 1, 0.0);
    s.e.resize(kElems);
    s.p.resize(kElems);
    s.q.assign(kElems, 0.0);
    for (int i = 0; i <= kElems; ++i) {
      s.x[i] = static_cast<double>(i) / kElems;
      const double phase = 2.0 * M_PI * 3.0 * i / kElems;
      s.v[i] = (i == 0 || i == kElems)
                   ? 0.0
                   : 0.08 * std::sin(phase) + 0.02 * (lcg.nextDouble() - 0.5);
    }
    for (int k = 0; k < kElems; ++k) {
      const double energy = (k < kElems / 64) ? 1.0 : 0.1 + 0.05 * lcg.nextDouble();
      s.e[k] = energy;
      s.p[k] = (kGamma - 1.0) * (1.0) * energy;  // rho = 1 initially
    }
  }

  /// Host replica of iterate() — identical arithmetic in identical order.
  static void hostIterate(HostState& s) {
    for (int i = 1; i < kElems; ++i) {
      s.f[i] = (s.p[i - 1] + s.q[i - 1]) - (s.p[i] + s.q[i]);
    }
    s.f[0] = 0.0;
    s.f[kElems] = 0.0;
    for (int i = 0; i <= kElems; ++i) {
      const double nodeMass = 1.0 / kElems;
      s.v[i] = s.v[i] + kDt * s.f[i] / nodeMass;
      s.x[i] = s.x[i] + kDt * s.v[i];
    }
    for (int k = 0; k < kElems; ++k) {
      const double vol = s.x[k + 1] - s.x[k];
      const double dv = kDt * (s.v[k + 1] - s.v[k]);
      const double work = (s.p[k] + s.q[k]) * dv;
      const double mass = 1.0 / kElems;
      s.e[k] = s.e[k] - work / mass;
      const double rho = mass / vol;
      s.p[k] = std::max(0.0, (kGamma - 1.0) * rho * s.e[k]);
      const double dvel = s.v[k + 1] - s.v[k];
      s.q[k] = dvel < 0.0 ? kViscosity * rho * dvel * dvel : 0.0;
    }
  }

  [[nodiscard]] static const HostState& referenceState() {
    static const HostState ref = [] {
      HostState s;
      hostInit(s);
      for (int it = 1; it <= kIterations; ++it) hostIterate(s);
      return s;
    }();
    return ref;
  }

  TrackedArray<double> x_, v_, e_, p_, q_, f_, mass_;
  TrackedScalar<double> etotal_;
  double e0_ = 0.0;
};

}  // namespace

runtime::AppFactory makeLulesh() {
  return [] { return std::make_unique<LuleshApp>(); };
}

}  // namespace easycrash::apps
