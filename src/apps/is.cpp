// IS — integer bucket sort (NPB IS analogue).
//
// Maintains a bucket histogram / cursor structure incrementally while a
// stream of key updates arrives each main-loop iteration. The histogram C is
// small and hot (the paper's 4KB critical data object): it lives in the
// cache, so after a crash its NVM copy is generations old — inconsistent
// with the keys — and the incremental maintenance then walks out of bounds,
// the simulated analogue of the segmentation faults the paper reports for IS
// (Table 1: restart "N/A (segfault)"). Persisting C (cheap, 4KB) repairs it.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "easycrash/apps/app_base.hpp"
#include "easycrash/apps/registry.hpp"

namespace easycrash::apps {
namespace {

using runtime::AppInterrupt;
using runtime::RegionScope;
using runtime::Runtime;
using runtime::TrackedArray;
using runtime::TrackedScalar;
using runtime::VerifyOutcome;

class IsApp final : public AppBase {
 public:
  static constexpr int kKeys = 16384;     // 64KB of int32 keys
  static constexpr int kBuckets = 1024;   // 4KB histogram (the critical DO)
  static constexpr int kUpdatesPerIter = 96;
  static constexpr int kIterations = 10;  // paper: 10

  IsApp() : AppBase("is", "Graph traversal (sorting)") {}

  void setup(Runtime& rt) override {
    rt.declareRegionCount(8);
    keys_ = TrackedArray<std::int32_t>(rt, "key_array", kKeys, /*candidate=*/true);
    rank_ = TrackedArray<std::int32_t>(rt, "key_rank", kKeys, /*candidate=*/true);
    hist_ = TrackedArray<std::int32_t>(rt, "bucket_hist", kBuckets, /*candidate=*/true);
    prefix_ = TrackedArray<std::int32_t>(rt, "bucket_prefix", kBuckets + 1,
                                         /*candidate=*/false);
    chk_ = TrackedScalar<double>(rt, "spot_check", /*candidate=*/true);
  }

  void initialize(Runtime& rt) override {
    (void)rt;
    AppLcg lcg(31337);
    hist_.fill(0);
    for (int i = 0; i < kKeys; ++i) {
      const auto key = static_cast<std::int32_t>(lcg.nextBelow(kBuckets));
      keys_.set(i, key);
      hist_[key] += 1;
    }
    prefix_.fill(0);
    computePrefix();
    constexpr std::uint64_t kChunk = TrackedArray<std::int32_t>::kChunkElems;
    std::int32_t kb[kChunk], rb[kChunk];
    for (std::uint64_t i0 = 0; i0 < kKeys; i0 += kChunk) {
      const std::uint64_t n = std::min<std::uint64_t>(kChunk, kKeys - i0);
      keys_.readRange(i0, n, kb);
      for (std::uint64_t t = 0; t < n; ++t) rb[t] = prefix_.get(kb[t]);
      rank_.writeRange(i0, n, rb);
    }
    chk_.set(0.0);
  }

  void iterate(Runtime& rt, int iteration) override {
    AppLcg lcg(9000 + iteration);  // stateless per-iteration update stream
    std::vector<std::int32_t> idx(kUpdatesPerIter), newKey(kUpdatesPerIter);

    {  // R1: generate this iteration's key-update stream.
      RegionScope region(rt, 0);
      for (int u = 0; u < kUpdatesPerIter; ++u) {
        idx[u] = static_cast<std::int32_t>(lcg.nextBelow(kKeys));
        newKey[u] = static_cast<std::int32_t>(lcg.nextBelow(kBuckets));
        region.iterationEnd();
      }
    }
    {  // R2: apply updates to keys and the incremental histogram.
      RegionScope region(rt, 1);
      for (int u = 0; u < kUpdatesPerIter; ++u) {
        const std::int32_t old = keys_.get(idx[u]);
        if (old < 0 || old >= kBuckets) {
          throw AppInterrupt{"IS: corrupted key used as bucket index"};
        }
        hist_[old] -= 1;
        if (hist_.get(old) < 0) {
          throw AppInterrupt{"IS: bucket histogram underflow"};
        }
        hist_[newKey[u]] += 1;
        keys_.set(idx[u], newKey[u]);
        region.iterationEnd();
      }
    }
    {  // R3: bucket prefix sums (key ranking offsets).
      RegionScope region(rt, 2);
      computePrefix();
      region.iterationEnd();
    }
    {  // R4: re-rank the updated keys using the cursor structure.
      RegionScope region(rt, 3);
      for (int u = 0; u < kUpdatesPerIter; ++u) {
        const std::int32_t key = keys_.get(idx[u]);
        const std::int32_t pos = prefix_.get(key);
        if (pos < 0 || pos >= kKeys) {
          throw AppInterrupt{"IS: rank position out of range (segfault)"};
        }
        rank_.set(idx[u], pos);
        prefix_[key] += 1;  // cursor advance within the bucket
        region.iterationEnd();
      }
    }
    {  // R5: total-count invariant check (NPB partial verification).
      RegionScope region(rt, 4);
      std::int64_t total = 0;
      hist_.forEachChunk([&](std::uint64_t, std::span<const std::int32_t> c) {
        for (const std::int32_t v : c) total += v;
      });
      if (total != kKeys) {
        throw AppInterrupt{"IS: histogram total diverged (segfault)"};
      }
      region.iterationEnd();
    }
    {  // R6: sampled bucket bound checks.
      RegionScope region(rt, 5);
      for (int s = 0; s < 64; ++s) {
        const int b = (s * 97 + iteration * 13) % kBuckets;
        const std::int32_t c = hist_.get(b);
        if (c < 0 || c > kKeys) {
          throw AppInterrupt{"IS: bucket count out of range"};
        }
        region.iterationEnd();
      }
    }
    {  // R7: running spot-check accumulator.
      RegionScope region(rt, 6);
      double sum = chk_.get();
      for (int s = 0; s < 128; ++s) {
        const int i = (s * 211 + iteration * 61) % kKeys;
        sum += static_cast<double>(keys_.get(i)) * (s + 1);
      }
      chk_.set(sum);
      region.iterationEnd();
    }
    {  // R8: sampled rank sanity (ranks must stay inside the array).
      RegionScope region(rt, 7);
      for (int s = 0; s < 64; ++s) {
        const int i = (s * 173 + iteration * 29) % kKeys;
        const std::int32_t rk = rank_.get(i);
        if (rk < 0 || rk >= kKeys) {
          throw AppInterrupt{"IS: rank table corrupted"};
        }
        region.iterationEnd();
      }
    }
  }

  [[nodiscard]] int nominalIterations() const override { return kIterations; }

  [[nodiscard]] VerifyOutcome verify(Runtime& rt) override {
    (void)rt;
    // Full verification: the histogram must match a recount of the keys and
    // sampled ranks must be consistent with the bucket layout.
    std::vector<std::int32_t> recount(kBuckets, 0);
    for (int i = 0; i < kKeys; ++i) {
      const std::int32_t key = keys_.peek(i);
      if (key < 0 || key >= kBuckets) {
        return VerifyOutcome{false, 0.0, "corrupted key"};
      }
      ++recount[key];
    }
    int mismatched = 0;
    for (int b = 0; b < kBuckets; ++b) {
      if (recount[b] != hist_.peek(b)) ++mismatched;
    }
    VerifyOutcome out;
    out.metric = static_cast<double>(mismatched);
    out.pass = mismatched == 0 && std::isfinite(chk_.peek());
    out.detail = std::to_string(mismatched) + " bucket(s) inconsistent with keys";
    return out;
  }

 private:
  void computePrefix() {
    constexpr std::uint64_t kChunk = TrackedArray<std::int32_t>::kChunkElems;
    std::int32_t hb[kChunk], pb[kChunk];
    std::int32_t acc = 0;
    for (std::uint64_t b = 0; b < kBuckets; b += kChunk) {
      const std::uint64_t n = std::min<std::uint64_t>(kChunk, kBuckets - b);
      hist_.readRange(b, n, hb);
      for (std::uint64_t t = 0; t < n; ++t) {
        pb[t] = acc;
        acc += hb[t];
      }
      prefix_.writeRange(b, n, pb);
    }
    prefix_.set(kBuckets, acc);
  }

  TrackedArray<std::int32_t> keys_, rank_, hist_, prefix_;
  TrackedScalar<double> chk_;
};

}  // namespace

runtime::AppFactory makeIs() {
  return [] { return std::make_unique<IsApp>(); };
}

}  // namespace easycrash::apps
