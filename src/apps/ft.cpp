// FT — spectral-method kernel (NPB FT analogue).
//
// Time-evolves the heat equation in Fourier space: the spectrum Xf decays
// cumulatively, one multiplicative step per main-loop iteration (R1), is
// transformed to physical space by an in-place unitary inverse FFT (R2, R3),
// and sampled into a per-iteration checksum array plus a running total (R4)
// — NPB's per-iteration checksum verification. Acceptance verification
// recomputes every checksum entry by direct DFT evaluation against the
// analytically-known decayed spectrum, and additionally checks Parseval
// energy.
//
// Recomputability mechanics: Xf is genuine cross-iteration state rewritten
// wholesale every iteration. After a crash, its NVM image mixes modes from
// different generations — modes that then re-evolve with the wrong exponent,
// failing the checksum band. Because the very first region of each iteration
// rewrites Xf, even an end-of-iteration flush leaves a wide tear-exposure
// window, which is why FT remains the weakest benchmark even with EasyCrash
// (the paper picks FT as the lowest-recomputability case in Figure 10).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "easycrash/apps/app_base.hpp"
#include "easycrash/apps/registry.hpp"

namespace easycrash::apps {
namespace {

using runtime::RegionScope;
using runtime::Runtime;
using runtime::TrackedArray;
using runtime::TrackedScalar;
using runtime::VerifyOutcome;

class FtApp final : public AppBase {
 public:
  static constexpr int kN = 4096;  // modes; each array is kN doubles = 32KB
  static constexpr int kLogN = 12;
  static constexpr int kIterations = 10;    // paper: 20
  static constexpr int kSamples = 4;        // checksum positions per iteration
  static constexpr double kChecksumTol = 1.0e-8;
  static constexpr double kEnergyTol = 1.0e-6;

  FtApp() : AppBase("ft", "Spectral method") {}

  void setup(Runtime& rt) override {
    rt.declareRegionCount(4);
    x0Re_ = TrackedArray<double>(rt, "x0_re", kN, /*candidate=*/false, true);
    x0Im_ = TrackedArray<double>(rt, "x0_im", kN, /*candidate=*/false, true);
    xfRe_ = TrackedArray<double>(rt, "xf_re", kN, /*candidate=*/true);
    xfIm_ = TrackedArray<double>(rt, "xf_im", kN, /*candidate=*/true);
    xsRe_ = TrackedArray<double>(rt, "xs_re", kN, /*candidate=*/true);
    xsIm_ = TrackedArray<double>(rt, "xs_im", kN, /*candidate=*/true);
    csum_ = TrackedArray<double>(rt, "chksums", kIterations * kSamples,
                                 /*candidate=*/true);
    csumTotal_ = TrackedScalar<double>(rt, "chksum_total", /*candidate=*/true);
  }

  void initialize(Runtime& rt) override {
    (void)rt;
    AppLcg lcg(4242);
    for (int i = 0; i < kN; ++i) {
      x0Re_.set(i, lcg.nextDouble() - 0.5);
      x0Im_.set(i, lcg.nextDouble() - 0.5);
    }
    xfRe_.copyFrom(x0Re_);
    xfIm_.copyFrom(x0Im_);
    xsRe_.fill(0.0);
    xsIm_.fill(0.0);
    csum_.fill(0.0);
    csumTotal_.set(0.0);
  }

  void iterate(Runtime& rt, int iteration) override {
    (void)iteration;
    constexpr std::uint64_t kChunk = TrackedArray<double>::kChunkElems;
    {  // R1: evolve the spectrum one time step: Xf *= decay (cumulative).
      RegionScope region(rt, 0);
      double re[kChunk], im[kChunk];
      for (std::uint64_t i0 = 0; i0 < kN; i0 += kChunk) {
        const std::uint64_t n = std::min<std::uint64_t>(kChunk, kN - i0);
        xfRe_.readRange(i0, n, re);
        xfIm_.readRange(i0, n, im);
        for (std::uint64_t t = 0; t < n; ++t) {
          const double d = stepDecay(static_cast<int>(i0 + t));
          re[t] *= d;
          im[t] *= d;
        }
        xfRe_.writeRange(i0, n, re);
        xfIm_.writeRange(i0, n, im);
      }
      region.iterationEnd();
    }
    {  // R2: copy the spectrum into the transform buffer, bit-reversed. The
       //     sequential spectrum reads are bulk ranges; the scatter stays
       //     element-wise (its targets are bit-reversed).
      RegionScope region(rt, 1);
      double re[kChunk], im[kChunk];
      for (std::uint64_t i0 = 0; i0 < kN; i0 += kChunk) {
        const std::uint64_t n = std::min<std::uint64_t>(kChunk, kN - i0);
        xfRe_.readRange(i0, n, re);
        xfIm_.readRange(i0, n, im);
        for (std::uint64_t t = 0; t < n; ++t) {
          const int j = bitReverse(static_cast<int>(i0 + t));
          xsRe_.set(j, re[t]);
          xsIm_.set(j, im[t]);
        }
      }
      region.iterationEnd();
    }
    {  // R3: in-place iterative inverse FFT (unitary scaling).
      RegionScope region(rt, 2);
      for (int stage = 1; stage <= kLogN; ++stage) {
        const int m = 1 << stage;
        const double ang = 2.0 * M_PI / m;  // +i sign: inverse transform
        for (int k = 0; k < kN; k += m) {
          for (int j = 0; j < m / 2; ++j) {
            const double wr = std::cos(ang * j), wi = std::sin(ang * j);
            const int a = k + j, b = k + j + m / 2;
            const double bre = xsRe_.get(b), bim = xsIm_.get(b);
            const double tre = wr * bre - wi * bim;
            const double tim = wr * bim + wi * bre;
            const double are = xsRe_.get(a), aim = xsIm_.get(a);
            xsRe_.set(a, are + tre);
            xsIm_.set(a, aim + tim);
            xsRe_.set(b, are - tre);
            xsIm_.set(b, aim - tim);
          }
        }
        region.iterationEnd();
      }
      const double scale = 1.0 / std::sqrt(static_cast<double>(kN));
      double re[kChunk], im[kChunk];
      for (std::uint64_t i0 = 0; i0 < kN; i0 += kChunk) {
        const std::uint64_t n = std::min<std::uint64_t>(kChunk, kN - i0);
        xsRe_.readRange(i0, n, re);
        xsIm_.readRange(i0, n, im);
        for (std::uint64_t t = 0; t < n; ++t) {
          re[t] *= scale;
          im[t] *= scale;
        }
        xsRe_.writeRange(i0, n, re);
        xsIm_.writeRange(i0, n, im);
      }
      region.iterationEnd();
    }
    {  // R4: record this iteration's checksums (NPB per-iteration sums) and
       //     fold them into the running total — a hot scalar whose history
       //     cannot be recomputed after a crash.
      RegionScope region(rt, 3);
      double total = csumTotal_.get();
      for (int s = 0; s < kSamples; ++s) {
        const int q = samplePosition(s);
        const double value = xsRe_.get(q) + xsIm_.get(q);
        csum_.set((iteration - 1) * kSamples + s, value);
        total += value;
      }
      csumTotal_.set(total);
      region.iterationEnd();
    }
  }

  [[nodiscard]] int nominalIterations() const override { return kIterations; }

  [[nodiscard]] VerifyOutcome verify(Runtime& rt) override {
    (void)rt;
    VerifyOutcome out;
    // Reference checksums by direct DFT evaluation (the analogue of NPB's
    // precomputed verification values).
    double worst = 0.0;
    double expectedTotal = 0.0;
    for (int it = 1; it <= kIterations; ++it) {
      for (int s = 0; s < kSamples; ++s) {
        const double expected = referenceChecksum(it, samplePosition(s));
        expectedTotal += expected;
        const double got = csum_.peek((it - 1) * kSamples + s);
        worst = std::max(worst, std::abs(got - expected));
      }
    }
    worst = std::max(worst, std::abs(csumTotal_.peek() - expectedTotal));
    // Parseval: final physical-space energy equals the evolved spectrum's.
    double energy = 0.0, expectedEnergy = 0.0;
    for (int i = 0; i < kN; ++i) {
      const double re = xsRe_.peek(i), im = xsIm_.peek(i);
      energy += re * re + im * im;
      const double d = decayPow(i, kIterations);
      const double r0 = x0Re_.peek(i), i0 = x0Im_.peek(i);
      expectedEnergy += (r0 * r0 + i0 * i0) * d * d;
    }
    const double energyError = std::abs(energy - expectedEnergy) / expectedEnergy;
    out.metric = worst;
    out.pass = std::isfinite(worst) && worst <= kChecksumTol &&
               std::isfinite(energyError) && energyError <= kEnergyTol;
    out.detail = "max checksum error = " + std::to_string(worst) +
                 ", energy error = " + std::to_string(energyError);
    return out;
  }

 private:
  [[nodiscard]] static double stepDecay(int i) {
    const int k = i < kN / 2 ? i : i - kN;  // signed wavenumber
    const double kk = static_cast<double>(k) / (kN / 2);
    return std::exp(-0.15 * kk * kk);
  }

  /// Cumulative decay after `iteration` steps (analytic reference). The
  /// multiplicative accumulation in R1 agrees with this closed form to a few
  /// ulps per step, far below the checksum tolerance.
  [[nodiscard]] static double decayPow(int i, int iteration) {
    const int k = i < kN / 2 ? i : i - kN;
    const double kk = static_cast<double>(k) / (kN / 2);
    return std::exp(-0.15 * kk * kk * iteration);
  }

  [[nodiscard]] static int samplePosition(int s) { return (s * 131 + 17) % kN; }

  [[nodiscard]] static int bitReverse(int x) {
    int r = 0;
    for (int bit = 0; bit < kLogN; ++bit) {
      r = (r << 1) | ((x >> bit) & 1);
    }
    return r;
  }

  /// Direct DFT: Xs[q] = (1/sqrt(N)) sum_k X0[k] decay_k^it e^{+2 pi i kq/N}.
  [[nodiscard]] double referenceChecksum(int iteration, int q) const {
    double re = 0.0, im = 0.0;
    for (int k = 0; k < kN; ++k) {
      const double d = decayPow(k, iteration);
      const double ang = 2.0 * M_PI * static_cast<double>(k) * q / kN;
      const double wr = std::cos(ang), wi = std::sin(ang);
      const double r0 = x0Re_.peek(k) * d, i0 = x0Im_.peek(k) * d;
      re += r0 * wr - i0 * wi;
      im += r0 * wi + i0 * wr;
    }
    const double scale = 1.0 / std::sqrt(static_cast<double>(kN));
    return (re + im) * scale;
  }

  TrackedArray<double> x0Re_, x0Im_, xfRe_, xfIm_, xsRe_, xsIm_, csum_;
  TrackedScalar<double> csumTotal_;
};

}  // namespace

runtime::AppFactory makeFt() {
  return [] { return std::make_unique<FtApp>(); };
}

}  // namespace easycrash::apps
