// LU — SSOR-style directional sweep solver (NPB LU analogue).
//
// Advances two fields of a linear advection system with directional sweeps
// (the data-dependence pattern of LU's lower/upper SSOR triangular sweeps).
// The transport is advection-dominated (CFL ~ 1 upwind), so a crash tear is
// carried around the periodic domain essentially undamped — and verification
// compares the final fields against a bit-exact host-side replay of the
// deterministic trajectory, the analogue of NPB LU's tight reference-value
// epsilon. Consequently LU practically never recomputes after a bare crash
// (paper Table 1: "N/A (the verification fails)"); it needs EasyCrash to
// persist its state at iteration boundaries.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "easycrash/apps/app_base.hpp"
#include "easycrash/apps/registry.hpp"

namespace easycrash::apps {
namespace {

using runtime::RegionScope;
using runtime::Runtime;
using runtime::TrackedArray;
using runtime::TrackedScalar;
using runtime::VerifyOutcome;

class LuApp final : public AppBase {
 public:
  static constexpr int kN = 64;           // kN x kN grid, 32KB per array
  static constexpr int kIterations = 30;  // paper: 250
  static constexpr double kCfl = 0.95;    // upwind advection number
  static constexpr double kVerifyTol = 1.0e-10;  // vs. the replayed trajectory

  LuApp() : AppBase("lu", "Dense linear algebra") {}

  void setup(Runtime& rt) override {
    rt.declareRegionCount(4);
    u_ = TrackedArray<double>(rt, "u", kN * kN, /*candidate=*/true);
    v_ = TrackedArray<double>(rt, "v", kN * kN, /*candidate=*/true);
    src_ = TrackedArray<double>(rt, "forcing", kN * kN, /*candidate=*/false, true);
    diag_ = TrackedScalar<double>(rt, "rsdnm", /*candidate=*/true);
  }

  void initialize(Runtime& rt) override {
    (void)rt;
    hostInit(hostU_, hostV_, hostSrc_);
    u_.writeRange(0, hostU_.size(), hostU_.data());
    v_.writeRange(0, hostV_.size(), hostV_.data());
    src_.writeRange(0, hostSrc_.size(), hostSrc_.data());
    diag_.set(0.0);
  }

  void iterate(Runtime& rt, int iteration) override {
    (void)iteration;
    constexpr std::uint64_t kChunk = TrackedArray<double>::kChunkElems;
    {  // R1: residual-norm diagnostics (reads only; streams over u and v).
      RegionScope region(rt, 0);
      double ss = 0.0;
      double ub[kChunk], vb[kChunk];
      for (std::uint64_t k0 = 0; k0 < kN * kN; k0 += kChunk) {
        const std::uint64_t n = std::min<std::uint64_t>(kChunk, kN * kN - k0);
        u_.readRange(k0, n, ub);
        v_.readRange(k0, n, vb);
        for (std::uint64_t t = 0; t < n; ++t) {
          const double d = ub[t] - vb[t];
          ss += d * d;
        }
      }
      diag_.set(std::sqrt(ss / (kN * kN)));
      region.iterationEnd();
    }
    {  // R2: lower sweep — upwind advection of u in +x (rows left to right).
       //     Each row loads/stores as one bulk range; the carry recurrence
       //     runs in the stack buffer in the identical order.
      RegionScope region(rt, 1);
      double ub[kN], sb[kN];
      for (int j = 0; j < kN; ++j) {
        u_.readRange(j * kN, kN, ub);
        src_.readRange(j * kN, kN, sb);
        double carry = ub[kN - 1];  // periodic wrap value
        for (int i = 0; i < kN; ++i) {
          const double here = ub[i];
          ub[i] = here + kCfl * (carry - here) + 0.001 * sb[i];
          carry = here;
        }
        u_.writeRange(j * kN, kN, ub);
        region.iterationEnd();
      }
    }
    {  // R3: upper sweep — upwind advection of v in +y (columns bottom-up).
      RegionScope region(rt, 2);
      for (int i = 0; i < kN; ++i) {
        double carry = v_.get((kN - 1) * kN + i);
        for (int j = 0; j < kN; ++j) {
          const int k = j * kN + i;
          const double here = v_.get(k);
          v_.set(k, here + kCfl * (carry - here) + 0.001 * src_.get(k));
          carry = here;
        }
        region.iterationEnd();
      }
    }
    {  // R4: weak field coupling.
      RegionScope region(rt, 3);
      double ub[kChunk], vb[kChunk];
      for (std::uint64_t k0 = 0; k0 < kN * kN; k0 += kChunk) {
        const std::uint64_t n = std::min<std::uint64_t>(kChunk, kN * kN - k0);
        u_.readRange(k0, n, ub);
        v_.readRange(k0, n, vb);
        for (std::uint64_t t = 0; t < n; ++t) {
          const double uu = ub[t], vv = vb[t];
          ub[t] = uu + 0.01 * (vv - uu);
          vb[t] = vv + 0.01 * (uu - vv);
        }
        u_.writeRange(k0, n, ub);
        v_.writeRange(k0, n, vb);
      }
      region.iterationEnd();
    }
  }

  [[nodiscard]] int nominalIterations() const override { return kIterations; }

  [[nodiscard]] VerifyOutcome verify(Runtime& rt) override {
    (void)rt;
    // Reference trajectory: a bit-exact host replay of all iterations (the
    // analogue of NPB LU's hard-coded verification values at epsilon 1e-8).
    std::vector<double> ru, rv, rs;
    hostInit(ru, rv, rs);
    for (int it = 1; it <= kIterations; ++it) hostIterate(ru, rv, rs);
    double worst = 0.0;
    for (int k = 0; k < kN * kN; ++k) {
      worst = std::max(worst, std::abs(u_.peek(k) - ru[k]));
      worst = std::max(worst, std::abs(v_.peek(k) - rv[k]));
    }
    VerifyOutcome out;
    out.metric = worst;
    out.pass = std::isfinite(worst) && worst <= kVerifyTol;
    out.detail = "max |u - reference| = " + std::to_string(worst);
    return out;
  }

 private:
  static void hostInit(std::vector<double>& u, std::vector<double>& v,
                       std::vector<double>& s) {
    u.assign(kN * kN, 0.0);
    v.assign(kN * kN, 0.0);
    s.assign(kN * kN, 0.0);
    AppLcg lcg(7337);
    for (int k = 0; k < kN * kN; ++k) {
      u[k] = lcg.nextDouble() - 0.5;
      v[k] = lcg.nextDouble() - 0.5;
      s[k] = std::sin(2.0 * M_PI * (k % kN) / kN);
    }
  }

  /// Host replica of iterate() — must apply the identical arithmetic in the
  /// identical order so the reference trajectory matches bit-for-bit.
  static void hostIterate(std::vector<double>& u, std::vector<double>& v,
                          const std::vector<double>& s) {
    for (int j = 0; j < kN; ++j) {
      double carry = u[j * kN + kN - 1];
      for (int i = 0; i < kN; ++i) {
        const int k = j * kN + i;
        const double here = u[k];
        u[k] = here + kCfl * (carry - here) + 0.001 * s[k];
        carry = here;
      }
    }
    for (int i = 0; i < kN; ++i) {
      double carry = v[(kN - 1) * kN + i];
      for (int j = 0; j < kN; ++j) {
        const int k = j * kN + i;
        const double here = v[k];
        v[k] = here + kCfl * (carry - here) + 0.001 * s[k];
        carry = here;
      }
    }
    for (int k = 0; k < kN * kN; ++k) {
      const double uu = u[k], vv = v[k];
      u[k] = uu + 0.01 * (vv - uu);
      v[k] = vv + 0.01 * (uu - vv);
    }
  }

  TrackedArray<double> u_, v_, src_;
  TrackedScalar<double> diag_;
  std::vector<double> hostU_, hostV_, hostSrc_;
};

}  // namespace

runtime::AppFactory makeLu() {
  return [] { return std::make_unique<LuApp>(); };
}

}  // namespace easycrash::apps
