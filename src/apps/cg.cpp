// CG — conjugate gradient kernel (NPB CG analogue).
//
// Solves A x = b for a sparse SPD matrix (2-D 5-point Laplacian plus a
// diagonal shift) with a periodically-restarted conjugate gradient: every
// kRestartEvery iterations the residual and search direction are recomputed
// exactly from x, which is what gives CG its paper-observed behaviour — a
// crash perturbs the Krylov recurrences, but the next explicit restart
// re-anchors them to x and convergence resumes, typically costing extra
// iterations (Table 1: 9.1 extra on average; response class S2).
//
// Code regions (6, Table 1): R1 explicit residual restart, R2 direction
// update, R3 sparse mat-vec, R4 x update, R5 r update, R6 norm/bookkeeping.
#include <cmath>
#include <vector>

#include "easycrash/apps/app_base.hpp"
#include "easycrash/apps/registry.hpp"

namespace easycrash::apps {
namespace {

using runtime::RegionScope;
using runtime::Runtime;
using runtime::TrackedArray;
using runtime::TrackedScalar;
using runtime::VerifyOutcome;

class CgApp final : public AppBase {
 public:
  static constexpr int kGrid = 40;             // kGrid^2 unknowns
  static constexpr int kRows = kGrid * kGrid;  // 1600
  static constexpr int kRestartEvery = 5;      // explicit CG restart period
  static constexpr int kNominalIterations = 40;
  static constexpr double kConvergeTol = 1.0e-8;  // on ||r||/||b||
  static constexpr double kVerifyTol = 1.0e-6;    // on true ||b-Ax||/||b||

  CgApp() : AppBase("cg", "Sparse linear algebra") {}

  void setup(Runtime& rt) override {
    rt.declareRegionCount(6);
    const int nnz = countNonZeros();
    vals_ = TrackedArray<double>(rt, "a_vals", nnz, /*candidate=*/false, true);
    cols_ = TrackedArray<std::int32_t>(rt, "a_cols", nnz, /*candidate=*/false, true);
    rowPtr_ = TrackedArray<std::int32_t>(rt, "a_rowptr", kRows + 1,
                                         /*candidate=*/false, true);
    b_ = TrackedArray<double>(rt, "b", kRows, /*candidate=*/false, true);
    x_ = TrackedArray<double>(rt, "x", kRows, /*candidate=*/true);
    r_ = TrackedArray<double>(rt, "r", kRows, /*candidate=*/true);
    p_ = TrackedArray<double>(rt, "p", kRows, /*candidate=*/true);
    q_ = TrackedArray<double>(rt, "q", kRows, /*candidate=*/true);
    rho_ = TrackedScalar<double>(rt, "rho", /*candidate=*/true);
    rnorm_ = TrackedScalar<double>(rt, "rnorm", /*candidate=*/true);
  }

  void initialize(Runtime& rt) override {
    (void)rt;
    buildMatrix();
    // b = A * x_exact for a deterministic x_exact, so the system has a known
    // solution and the acceptance verification can use the true residual.
    AppLcg lcg(777);
    std::vector<double> xExact(kRows);
    for (int i = 0; i < kRows; ++i) xExact[i] = lcg.nextDouble() - 0.5;
    bNorm_ = 0.0;
    for (int row = 0; row < kRows; ++row) {
      double sum = 0.0;
      for (int k = rowPtr_.get(row); k < rowPtr_.get(row + 1); ++k) {
        sum += vals_.get(k) * xExact[cols_.get(k)];
      }
      b_.set(row, sum);
      bNorm_ += sum * sum;
    }
    bNorm_ = std::sqrt(bNorm_);
    for (int i = 0; i < kRows; ++i) {
      x_.set(i, 0.0);
      r_.set(i, 0.0);
      p_.set(i, 0.0);
      q_.set(i, 0.0);
    }
    rho_.set(0.0);
    rnorm_.set(1.0);
  }

  void iterate(Runtime& rt, int iteration) override {
    {  // R1: periodic explicit restart r = b - A x; p = r.
      RegionScope region(rt, 0);
      if ((iteration - 1) % kRestartEvery == 0) {
        double rho = 0.0;
        for (int row = 0; row < kRows; ++row) {
          double ax = 0.0;
          for (int k = rowPtr_.get(row); k < rowPtr_.get(row + 1); ++k) {
            ax += vals_.get(k) * x_.get(cols_.get(k));
          }
          const double ri = b_.get(row) - ax;
          r_.set(row, ri);
          p_.set(row, ri);
          rho += ri * ri;
        }
        rho_.set(rho);
        region.iterationEnd();
      }
    }
    {  // R2: direction update p = r + beta p (skipped right after a restart).
      RegionScope region(rt, 1);
      if ((iteration - 1) % kRestartEvery != 0) {
        double rho = 0.0;
        for (int i = 0; i < kRows; ++i) {
          const double ri = r_.get(i);
          rho += ri * ri;
        }
        const double rhoOld = rho_.get();
        const double beta = rhoOld > 0.0 ? rho / rhoOld : 0.0;
        for (int i = 0; i < kRows; ++i) p_.set(i, r_.get(i) + beta * p_.get(i));
        rho_.set(rho);
        region.iterationEnd();
      }
    }
    double pq = 0.0;
    {  // R3: q = A p (the dominant sparse mat-vec).
      RegionScope region(rt, 2);
      for (int row = 0; row < kRows; ++row) {
        double sum = 0.0;
        for (int k = rowPtr_.get(row); k < rowPtr_.get(row + 1); ++k) {
          sum += vals_.get(k) * p_.get(cols_.get(k));
        }
        q_.set(row, sum);
        pq += p_.get(row) * sum;
        region.iterationEnd();
      }
    }
    const double rho = rho_.get();
    const double alpha = (pq != 0.0 && std::isfinite(pq)) ? rho / pq : 0.0;
    {  // R4: x += alpha p.
      RegionScope region(rt, 3);
      for (int i = 0; i < kRows; ++i) x_[i] += alpha * p_.get(i);
      region.iterationEnd();
    }
    {  // R5: r -= alpha q.
      RegionScope region(rt, 4);
      for (int i = 0; i < kRows; ++i) r_[i] -= alpha * q_.get(i);
      region.iterationEnd();
    }
    {  // R6: residual norm bookkeeping.
      RegionScope region(rt, 5);
      double ss = 0.0;
      for (int i = 0; i < kRows; ++i) {
        const double ri = r_.get(i);
        ss += ri * ri;
      }
      rnorm_.set(std::sqrt(ss) / bNorm_);
      region.iterationEnd();
    }
  }

  [[nodiscard]] int nominalIterations() const override { return kNominalIterations; }

  [[nodiscard]] bool converged(Runtime& rt, int iteration) override {
    (void)rt;
    (void)iteration;
    const double rn = rnorm_.peek();
    return std::isfinite(rn) && rn <= kConvergeTol;
  }

  [[nodiscard]] VerifyOutcome verify(Runtime& rt) override {
    (void)rt;
    // True residual against the original system (not the recurrence value).
    double ss = 0.0;
    for (int row = 0; row < kRows; ++row) {
      double ax = 0.0;
      for (int k = rowPtr_.get(row); k < rowPtr_.get(row + 1); ++k) {
        ax += vals_.get(k) * x_.get(cols_.get(k));
      }
      const double d = b_.get(row) - ax;
      ss += d * d;
    }
    VerifyOutcome out;
    out.metric = std::sqrt(ss) / bNorm_;
    out.pass = std::isfinite(out.metric) && out.metric <= kVerifyTol;
    out.detail = "||b-Ax||/||b|| = " + std::to_string(out.metric);
    return out;
  }

 private:
  [[nodiscard]] static int countNonZeros() {
    int nnz = 0;
    for (int j = 0; j < kGrid; ++j) {
      for (int i = 0; i < kGrid; ++i) {
        nnz += 1;  // diagonal
        if (i > 0) ++nnz;
        if (i < kGrid - 1) ++nnz;
        if (j > 0) ++nnz;
        if (j < kGrid - 1) ++nnz;
      }
    }
    return nnz;
  }

  void buildMatrix() {
    // 5-point Laplacian plus small shift: SPD with condition number giving
    // restarted-CG convergence in ~kNominalIterations iterations.
    int k = 0;
    for (int j = 0; j < kGrid; ++j) {
      for (int i = 0; i < kGrid; ++i) {
        const int row = j * kGrid + i;
        rowPtr_.set(row, k);
        const auto put = [&](int col, double v) {
          cols_.set(k, col);
          vals_.set(k, v);
          ++k;
        };
        if (j > 0) put(row - kGrid, -1.0);
        if (i > 0) put(row - 1, -1.0);
        put(row, 4.0 + kShift);
        if (i < kGrid - 1) put(row + 1, -1.0);
        if (j < kGrid - 1) put(row + kGrid, -1.0);
      }
    }
    rowPtr_.set(kRows, k);
  }

  static constexpr double kShift = 1.0;

  TrackedArray<double> vals_, b_, x_, r_, p_, q_;
  TrackedArray<std::int32_t> cols_, rowPtr_;
  TrackedScalar<double> rho_, rnorm_;
  double bNorm_ = 1.0;
};

}  // namespace

runtime::AppFactory makeCg() {
  return [] { return std::make_unique<CgApp>(); };
}

}  // namespace easycrash::apps
