// CG — conjugate gradient kernel (NPB CG analogue).
//
// Solves A x = b for a sparse SPD matrix (2-D 5-point Laplacian plus a
// diagonal shift) with a periodically-restarted conjugate gradient: every
// kRestartEvery iterations the residual and search direction are recomputed
// exactly from x, which is what gives CG its paper-observed behaviour — a
// crash perturbs the Krylov recurrences, but the next explicit restart
// re-anchors them to x and convergence resumes, typically costing extra
// iterations (Table 1: 9.1 extra on average; response class S2).
//
// Code regions (6, Table 1): R1 explicit residual restart, R2 direction
// update, R3 sparse mat-vec, R4 x update, R5 r update, R6 norm/bookkeeping.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "easycrash/apps/app_base.hpp"
#include "easycrash/apps/registry.hpp"

namespace easycrash::apps {
namespace {

using runtime::RegionScope;
using runtime::Runtime;
using runtime::TrackedArray;
using runtime::TrackedScalar;
using runtime::VerifyOutcome;

class CgApp final : public AppBase {
 public:
  static constexpr int kBaseGrid = 40;     // grid_^2 unknowns; 1600 at scale 1
  static constexpr int kRestartEvery = 5;  // explicit CG restart period
  static constexpr int kNominalIterations = 40;
  static constexpr double kConvergeTol = 1.0e-8;  // on ||r||/||b||
  static constexpr double kVerifyTol = 1.0e-6;    // on true ||b-Ax||/||b||

  /// `scale` multiplies the grid edge, so the footprint grows as scale^2.
  /// The diagonal shift bounds the condition number independently of the
  /// grid, so the iteration schedule survives scaling (--scale, EXPERIMENTS.md).
  explicit CgApp(int scale = 1)
      : AppBase("cg", "Sparse linear algebra"),
        grid_(kBaseGrid * scale),
        rows_(grid_ * grid_) {}

  void setup(Runtime& rt) override {
    rt.declareRegionCount(6);
    const int nnz = countNonZeros();
    vals_ = TrackedArray<double>(rt, "a_vals", nnz, /*candidate=*/false, true);
    cols_ = TrackedArray<std::int32_t>(rt, "a_cols", nnz, /*candidate=*/false, true);
    rowPtr_ = TrackedArray<std::int32_t>(rt, "a_rowptr", rows_ + 1,
                                         /*candidate=*/false, true);
    b_ = TrackedArray<double>(rt, "b", rows_, /*candidate=*/false, true);
    x_ = TrackedArray<double>(rt, "x", rows_, /*candidate=*/true);
    r_ = TrackedArray<double>(rt, "r", rows_, /*candidate=*/true);
    p_ = TrackedArray<double>(rt, "p", rows_, /*candidate=*/true);
    q_ = TrackedArray<double>(rt, "q", rows_, /*candidate=*/true);
    rho_ = TrackedScalar<double>(rt, "rho", /*candidate=*/true);
    rnorm_ = TrackedScalar<double>(rt, "rnorm", /*candidate=*/true);
  }

  void initialize(Runtime& rt) override {
    (void)rt;
    buildMatrix();
    // b = A * x_exact for a deterministic x_exact, so the system has a known
    // solution and the acceptance verification can use the true residual.
    AppLcg lcg(777);
    std::vector<double> xExact(rows_);
    for (int i = 0; i < rows_; ++i) xExact[i] = lcg.nextDouble() - 0.5;
    bNorm_ = 0.0;
    for (int row = 0; row < rows_; ++row) {
      double sum = 0.0;
      for (int k = rowPtr_.get(row); k < rowPtr_.get(row + 1); ++k) {
        sum += vals_.get(k) * xExact[cols_.get(k)];
      }
      b_.set(row, sum);
      bNorm_ += sum * sum;
    }
    bNorm_ = std::sqrt(bNorm_);
    x_.fill(0.0);
    r_.fill(0.0);
    p_.fill(0.0);
    q_.fill(0.0);
    rho_.set(0.0);
    rnorm_.set(1.0);
  }

  void iterate(Runtime& rt, int iteration) override {
    constexpr std::uint64_t kChunk = TrackedArray<double>::kChunkElems;
    {  // R1: periodic explicit restart r = b - A x; p = r.
      RegionScope region(rt, 0);
      if ((iteration - 1) % kRestartEvery == 0) {
        double rho = 0.0;
        // Row results accumulate in a chunk buffer and flush as one range
        // store to r and p; the loop itself only reads x/b/matrix data, so
        // deferring the writes cannot feed back into the computation.
        double rbuf[kChunk];
        int chunkStart = 0;
        for (int row = 0; row < rows_; ++row) {
          const double ri = b_.get(row) - rowTimes(x_, row);
          rbuf[row - chunkStart] = ri;
          rho += ri * ri;
          if (row - chunkStart + 1 == static_cast<int>(kChunk) || row == rows_ - 1) {
            const auto n = static_cast<std::uint64_t>(row - chunkStart + 1);
            r_.writeRange(chunkStart, n, rbuf);
            p_.writeRange(chunkStart, n, rbuf);
            chunkStart = row + 1;
          }
        }
        rho_.set(rho);
        region.iterationEnd();
      }
    }
    {  // R2: direction update p = r + beta p (skipped right after a restart).
      RegionScope region(rt, 1);
      if ((iteration - 1) % kRestartEvery != 0) {
        double rho = 0.0;
        r_.forEachChunk([&](std::uint64_t, std::span<const double> c) {
          for (const double ri : c) rho += ri * ri;
        });
        const double rhoOld = rho_.get();
        const double beta = rhoOld > 0.0 ? rho / rhoOld : 0.0;
        double rbuf[kChunk], pbuf[kChunk];
        for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(rows_); i += kChunk) {
          const std::uint64_t n = std::min<std::uint64_t>(kChunk, rows_ - i);
          r_.readRange(i, n, rbuf);
          p_.readRange(i, n, pbuf);
          for (std::uint64_t j = 0; j < n; ++j) pbuf[j] = rbuf[j] + beta * pbuf[j];
          p_.writeRange(i, n, pbuf);
        }
        rho_.set(rho);
        region.iterationEnd();
      }
    }
    double pq = 0.0;
    {  // R3: q = A p (the dominant sparse mat-vec).
      RegionScope region(rt, 2);
      for (int row = 0; row < rows_; ++row) {
        const double sum = rowTimes(p_, row);
        q_.set(row, sum);
        pq += p_.get(row) * sum;
        region.iterationEnd();
      }
    }
    const double rho = rho_.get();
    const double alpha = (pq != 0.0 && std::isfinite(pq)) ? rho / pq : 0.0;
    {  // R4: x += alpha p.
      RegionScope region(rt, 3);
      axpyInto(x_, p_, alpha);
      region.iterationEnd();
    }
    {  // R5: r -= alpha q.
      RegionScope region(rt, 4);
      axpyInto(r_, q_, -alpha);
      region.iterationEnd();
    }
    {  // R6: residual norm bookkeeping.
      RegionScope region(rt, 5);
      double ss = 0.0;
      r_.forEachChunk([&](std::uint64_t, std::span<const double> c) {
        for (const double ri : c) ss += ri * ri;
      });
      rnorm_.set(std::sqrt(ss) / bNorm_);
      region.iterationEnd();
    }
  }

  [[nodiscard]] int nominalIterations() const override { return kNominalIterations; }

  [[nodiscard]] bool converged(Runtime& rt, int iteration) override {
    (void)rt;
    (void)iteration;
    const double rn = rnorm_.peek();
    return std::isfinite(rn) && rn <= kConvergeTol;
  }

  [[nodiscard]] VerifyOutcome verify(Runtime& rt) override {
    (void)rt;
    // True residual against the original system (not the recurrence value).
    double ss = 0.0;
    for (int row = 0; row < rows_; ++row) {
      const double d = b_.get(row) - rowTimes(x_, row);
      ss += d * d;
    }
    VerifyOutcome out;
    out.metric = std::sqrt(ss) / bNorm_;
    out.pass = std::isfinite(out.metric) && out.metric <= kVerifyTol;
    out.detail = "||b-Ax||/||b|| = " + std::to_string(out.metric);
    return out;
  }

 private:
  static constexpr int kMaxRowNnz = 8;  // 5-point stencil: at most 5 per row

  /// One sparse row of A times tracked vector `v`: the row's vals/cols load
  /// as two bulk ranges; the gather from `v` stays element-wise (its indices
  /// are data-dependent). Summation order matches the scalar loop.
  [[nodiscard]] double rowTimes(const TrackedArray<double>& v, int row) {
    const std::int32_t k0 = rowPtr_.get(row);
    const std::int32_t k1 = rowPtr_.get(row + 1);
    double vbuf[kMaxRowNnz];
    std::int32_t cbuf[kMaxRowNnz];
    const auto nnz = static_cast<std::uint64_t>(k1 - k0);
    vals_.readRange(k0, nnz, vbuf);
    cols_.readRange(k0, nnz, cbuf);
    double sum = 0.0;
    for (std::uint64_t k = 0; k < nnz; ++k) sum += vbuf[k] * v.get(cbuf[k]);
    return sum;
  }

  /// dst += alpha * src over the whole vector, chunked through stack buffers.
  void axpyInto(TrackedArray<double>& dst, const TrackedArray<double>& src,
                double alpha) {
    constexpr std::uint64_t kChunk = TrackedArray<double>::kChunkElems;
    double dbuf[kChunk], sbuf[kChunk];
    for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(rows_); i += kChunk) {
      const std::uint64_t n = std::min<std::uint64_t>(kChunk, rows_ - i);
      dst.readRange(i, n, dbuf);
      src.readRange(i, n, sbuf);
      for (std::uint64_t j = 0; j < n; ++j) dbuf[j] += alpha * sbuf[j];
      dst.writeRange(i, n, dbuf);
    }
  }

  [[nodiscard]] int countNonZeros() const {
    int nnz = 0;
    for (int j = 0; j < grid_; ++j) {
      for (int i = 0; i < grid_; ++i) {
        nnz += 1;  // diagonal
        if (i > 0) ++nnz;
        if (i < grid_ - 1) ++nnz;
        if (j > 0) ++nnz;
        if (j < grid_ - 1) ++nnz;
      }
    }
    return nnz;
  }

  void buildMatrix() {
    // 5-point Laplacian plus small shift: SPD with condition number giving
    // restarted-CG convergence in ~kNominalIterations iterations.
    int k = 0;
    for (int j = 0; j < grid_; ++j) {
      for (int i = 0; i < grid_; ++i) {
        const int row = j * grid_ + i;
        rowPtr_.set(row, k);
        const auto put = [&](int col, double v) {
          cols_.set(k, col);
          vals_.set(k, v);
          ++k;
        };
        if (j > 0) put(row - grid_, -1.0);
        if (i > 0) put(row - 1, -1.0);
        put(row, 4.0 + kShift);
        if (i < grid_ - 1) put(row + 1, -1.0);
        if (j < grid_ - 1) put(row + grid_, -1.0);
      }
    }
    rowPtr_.set(rows_, k);
  }

  static constexpr double kShift = 1.0;

  const int grid_;
  const int rows_;
  TrackedArray<double> vals_, b_, x_, r_, p_, q_;
  TrackedArray<std::int32_t> cols_, rowPtr_;
  TrackedScalar<double> rho_, rnorm_;
  double bNorm_ = 1.0;
};

}  // namespace

runtime::AppFactory makeCg() {
  return [] { return std::make_unique<CgApp>(); };
}

runtime::AppFactory makeCgScaled(int scale) {
  return [scale] { return std::make_unique<CgApp>(scale); };
}

}  // namespace easycrash::apps
