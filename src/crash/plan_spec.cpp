#include "easycrash/crash/plan_spec.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace easycrash::crash {

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream is(text);
  while (std::getline(is, part, sep)) parts.push_back(part);
  return parts;
}

runtime::PointId parsePoint(const std::string& text) {
  if (text == "main") return runtime::kMainLoopEnd;
  if (text.size() >= 2 && text[0] == 'R') {
    const int region = std::stoi(text.substr(1));
    if (region >= 1) return region - 1;
  }
  throw std::runtime_error("plan spec: bad persist point '" + text +
                           "' (expected 'main' or 'R<k>')");
}

}  // namespace

runtime::PersistencePlan parsePlanSpec(const std::string& spec,
                                       const runtime::Runtime& rt) {
  runtime::PersistencePlan plan;
  if (spec.empty() || spec == "none") return plan;
  for (const std::string& directiveText : split(spec, ',')) {
    const auto at = directiveText.find('@');
    if (at == std::string::npos) {
      throw std::runtime_error("plan spec: missing '@' in '" + directiveText + "'");
    }
    const std::string objectsText = directiveText.substr(0, at);
    std::string pointText = directiveText.substr(at + 1);

    std::uint32_t everyN = 1;
    if (const auto colon = pointText.find(':'); colon != std::string::npos) {
      everyN = static_cast<std::uint32_t>(std::stoul(pointText.substr(colon + 1)));
      if (everyN == 0) {
        throw std::runtime_error("plan spec: everyN must be >= 1 in '" +
                                 directiveText + "'");
      }
      pointText = pointText.substr(0, colon);
    }
    const runtime::PointId point = parsePoint(pointText);

    runtime::PersistDirective directive;
    directive.everyN = everyN;
    for (const std::string& name : split(objectsText, '+')) {
      if (name == "candidates") {
        for (runtime::ObjectId id : rt.candidateObjects()) {
          directive.objects.push_back(id);
        }
        continue;
      }
      const auto id = rt.findObject(name);
      if (!id) {
        std::string known;
        for (const auto& object : rt.objects()) {
          if (!known.empty()) known += ", ";
          known += object.name;
        }
        throw std::runtime_error("plan spec: unknown data object '" + name +
                                 "' (known: " + known + ")");
      }
      directive.objects.push_back(*id);
    }
    if (directive.objects.empty()) {
      throw std::runtime_error("plan spec: no objects in '" + directiveText + "'");
    }
    plan.points[point] = std::move(directive);
  }
  return plan;
}

std::string formatPlanSpec(const runtime::PersistencePlan& plan,
                           const runtime::Runtime& rt) {
  std::string out;
  for (const auto& [point, directive] : plan.points) {
    if (!out.empty()) out += ',';
    std::string objects;
    for (runtime::ObjectId id : directive.objects) {
      if (!objects.empty()) objects += '+';
      objects += rt.object(id).name;
    }
    out += objects + '@';
    out += point == runtime::kMainLoopEnd ? "main" : "R" + std::to_string(point + 1);
    if (directive.everyN != 1) out += ':' + std::to_string(directive.everyN);
  }
  return out.empty() ? "none" : out;
}

}  // namespace easycrash::crash
