#include "easycrash/crash/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "easycrash/common/check.hpp"

namespace easycrash::crash {

namespace {

Response responseFromString(const std::string& text) {
  if (text == "S1") return Response::S1;
  if (text == "S2") return Response::S2;
  if (text == "S3") return Response::S3;
  if (text == "S4") return Response::S4;
  throw std::runtime_error("unknown response class: " + text);
}

std::vector<std::string> splitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(field);
  return fields;
}

}  // namespace

std::string formatRegionPath(const std::vector<runtime::PointId>& path) {
  if (path.empty()) return "main";
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i) out += '>';
    out += "R" + std::to_string(path[i] + 1);
  }
  return out;
}

void writeCampaignCsv(const CampaignResult& campaign, std::ostream& os) {
  os << "crash_access,iteration,restart_iteration,region,region_path,response,"
        "extra_iterations";
  std::vector<runtime::ObjectId> candidates;
  for (const auto& object : campaign.golden.objects) {
    if (object.candidate) {
      candidates.push_back(object.id);
      os << ",rate_" << object.name;
    }
  }
  os << '\n';
  os << std::setprecision(8);
  for (const auto& test : campaign.tests) {
    os << test.crashAccessIndex << ',' << test.crashIteration << ','
       << test.restartIteration << ',' << test.region << ','
       << formatRegionPath(test.regionPath) << ',' << toString(test.response)
       << ',' << test.extraIterations;
    for (runtime::ObjectId id : candidates) {
      const auto it = test.inconsistentRate.find(id);
      os << ',' << (it == test.inconsistentRate.end() ? 0.0 : it->second);
    }
    os << '\n';
  }
}

void writeCampaignSummary(const CampaignResult& campaign, std::ostream& os) {
  const auto counts = campaign.responseCounts();
  const double total = static_cast<double>(campaign.tests.size());
  os << "campaign summary\n"
     << "  tests:            " << campaign.tests.size() << '\n'
     << "  window accesses:  " << campaign.golden.windowAccesses << '\n'
     << "  golden iterations:" << campaign.golden.finalIteration << '\n'
     << "  footprint:        " << campaign.golden.footprintBytes << " bytes\n";
  // Resilience lines appear only when something went wrong, so the summary
  // of a resumed-then-completed campaign stays byte-identical to the same
  // campaign run uninterrupted.
  if (campaign.interrupted) {
    os << "  INTERRUPTED:      " << campaign.tests.size() + campaign.failures.size()
       << '/' << campaign.plannedTests
       << " trials decided; rates below are partial\n";
  }
  if (!campaign.failures.empty()) {
    int timeouts = 0;
    for (const auto& failure : campaign.failures) timeouts += failure.timeout ? 1 : 0;
    os << "  trial failures:   " << campaign.failures.size() << " (" << timeouts
       << " watchdog timeouts) — excluded from the S1-S4 rates\n";
    for (const auto& failure : campaign.failures) {
      os << "    trial " << failure.trial << " @access " << failure.crashAccessIndex
         << (failure.regionPath.empty() ? "" : " in " + failure.regionPath) << ": "
         << failure.reason << " (" << failure.attempts << " attempts)\n";
    }
  }
  if (total > 0) {
    os << std::fixed << std::setprecision(1);
    os << "  S1 " << 100.0 * counts[0] / total << "%  S2 "
       << 100.0 * counts[1] / total << "%  S3 " << 100.0 * counts[2] / total
       << "%  S4 " << 100.0 * counts[3] / total << "%\n"
       << "  recomputability:  " << 100.0 * campaign.recomputability() << "%\n"
       << "  avg extra iters:  " << std::setprecision(2)
       << campaign.averageExtraIterations() << '\n';
    os << "  per-region c_k:\n" << std::setprecision(1);
    const auto perRegion = campaign.regionRecomputability();
    const auto perRegionCount = campaign.regionTestCounts();
    for (const auto& [region, ck] : perRegion) {
      os << "    "
         << (region == runtime::kMainLoopEnd ? std::string("main")
                                             : "R" + std::to_string(region + 1))
         << ": " << 100.0 * ck << "% (" << perRegionCount.at(region)
         << " crashes)\n";
    }
    os << "  mean inconsistency per candidate:\n" << std::setprecision(2);
    const auto rates = campaign.meanInconsistentRate();
    for (const auto& object : campaign.golden.objects) {
      if (!object.candidate) continue;
      const auto it = rates.find(object.id);
      os << "    " << object.name << ": "
         << 100.0 * (it == rates.end() ? 0.0 : it->second) << "%\n";
    }
  }
}

std::vector<CrashTestRecord> readCampaignCsv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("campaign CSV: missing header");
  }
  const auto header = splitCsvLine(line);
  constexpr std::size_t kFixedColumns = 7;
  if (header.size() < kFixedColumns || header[0] != "crash_access") {
    throw std::runtime_error("campaign CSV: unrecognised header");
  }

  std::vector<CrashTestRecord> records;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto fields = splitCsvLine(line);
    if (fields.size() != header.size()) {
      throw std::runtime_error("campaign CSV: column-count mismatch");
    }
    CrashTestRecord record;
    record.crashAccessIndex = std::stoull(fields[0]);
    record.crashIteration = std::stoi(fields[1]);
    record.restartIteration = std::stoi(fields[2]);
    record.region = std::stoi(fields[3]);
    record.response = responseFromString(fields[5]);
    record.extraIterations = std::stoi(fields[6]);
    for (std::size_t c = kFixedColumns; c < fields.size(); ++c) {
      record.inconsistentRate[static_cast<runtime::ObjectId>(c - kFixedColumns)] =
          std::stod(fields[c]);
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace easycrash::crash
