// Crash-test campaigns (paper §3, §4.1).
//
// A campaign runs N independent crash tests against one application under
// one persistence plan. Each test: (1) run the app and stop it after a
// uniformly-random tracked access inside the main-loop window, (2) perform
// the NVCT post-mortem — per-object inconsistency rates between caches and
// the NVM image, (3) model the power loss, (4) restart: re-initialise, load
// the candidates' surviving NVM bytes (the paper's load_value), resume from
// the bookmarked iteration, cap at 2x the original iteration count, and
// (5) classify the outcome into the paper's four response classes S1-S4.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "easycrash/memsim/config.hpp"
#include "easycrash/memsim/events.hpp"
#include "easycrash/runtime/app.hpp"
#include "easycrash/runtime/persistence_plan.hpp"

namespace easycrash::crash {

/// The paper's four application responses after crash + restart (Figure 3).
enum class Response {
  S1,  ///< successful recomputation, no extra iterations
  S2,  ///< successful recomputation, but extra iterations were needed
  S3,  ///< interruption (segfault analogue)
  S4,  ///< acceptance verification fails (even with 2x iterations)
};

[[nodiscard]] const char* toString(Response response);

/// How the restart snapshot is taken.
enum class SnapshotMode {
  NvmImage,  ///< what actually survives the crash (NVCT methodology)
  Coherent,  ///< force-consistent copy (the paper's physical-machine
             ///< "verified" methodology in Figure 6)
};

struct CampaignConfig {
  std::uint64_t seed = 1;
  int numTests = 200;
  SnapshotMode mode = SnapshotMode::NvmImage;
  runtime::PersistencePlan plan;
  memsim::CacheConfig cache = memsim::CacheConfig::scaledDefault();
  /// Restart iteration cap as a multiple of the original iteration count
  /// (paper: verification fails after 2x the original iterations).
  int maxIterationFactor = 2;
  /// Worker threads for the crash tests. Each test runs on its own simulated
  /// machine, so campaigns are embarrassingly parallel; results are
  /// identical to a single-threaded run (crash points are pre-drawn and
  /// records land by index). 0 = use the hardware concurrency.
  int threads = 1;
  /// App name stamped onto telemetry (trace common field + trial events).
  std::string appLabel;
  /// Render a live progress line on stderr: trials done, S1-S4 tally, ETA.
  bool progress = false;
};

/// Statistics of the golden (crash-free) execution.
struct GoldenStats {
  std::uint64_t windowAccesses = 0;  ///< tracked accesses in the crash window
  int finalIteration = 0;
  memsim::MemEvents events;
  std::uint64_t footprintBytes = 0;
  std::uint64_t candidateBytes = 0;
  std::uint32_t regionCount = 0;
  std::uint64_t persistenceOps = 0;
  double verifyMetric = 0.0;
  std::vector<runtime::DataObjectInfo> objects;
  /// a_k: share of window accesses spent in each region (paper Table 2).
  std::map<runtime::PointId, double> regionTimeShare;
  /// Iteration-end persist points reached per region over the execution.
  std::map<runtime::PointId, std::uint64_t> regionIterationEnds;
};

struct CrashTestRecord {
  std::uint64_t crashAccessIndex = 0;
  runtime::PointId region = runtime::kMainLoopEnd;
  /// Region stack at the crash (outermost first; NVCT's call-path feature).
  std::vector<runtime::PointId> regionPath;
  int crashIteration = 0;
  int restartIteration = 0;
  Response response = Response::S4;
  int extraIterations = 0;
  /// Inconsistency rate per candidate object at the crash instant.
  std::map<runtime::ObjectId, double> inconsistentRate;
  std::string note;
};

struct CampaignResult {
  GoldenStats golden;
  std::vector<CrashTestRecord> tests;

  /// The paper's application recomputability: S1 fraction.
  [[nodiscard]] double recomputability() const;
  /// S1+S2 fraction (successful outcome, performance aside).
  [[nodiscard]] double successWithExtra() const;
  [[nodiscard]] std::array<int, 4> responseCounts() const;
  /// Average extra iterations over S2 tests (Table 1 restart overhead).
  [[nodiscard]] double averageExtraIterations() const;
  /// c_k: per-region recomputability (S1 fraction of crashes in region k).
  [[nodiscard]] std::map<runtime::PointId, double> regionRecomputability() const;
  [[nodiscard]] std::map<runtime::PointId, int> regionTestCounts() const;
  /// Per-candidate mean inconsistency rate across tests.
  [[nodiscard]] std::map<runtime::ObjectId, double> meanInconsistentRate() const;
};

/// Runs campaigns. The factory must produce deterministic app instances: a
/// fresh run always executes the same tracked-access sequence.
class CampaignRunner {
 public:
  CampaignRunner(runtime::AppFactory factory, CampaignConfig config);

  /// Golden run only (fast; used for Table 1 characteristics).
  [[nodiscard]] GoldenStats goldenRun() const;

  /// Full campaign: golden run + numTests crash tests.
  [[nodiscard]] CampaignResult run() const;

 private:
  [[nodiscard]] CrashTestRecord runOneTest(const GoldenStats& golden,
                                           std::uint64_t crashIndex,
                                           std::size_t trial) const;

  runtime::AppFactory factory_;
  CampaignConfig config_;
};

}  // namespace easycrash::crash
