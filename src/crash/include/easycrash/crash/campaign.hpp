// Crash-test campaigns (paper §3, §4.1).
//
// A campaign runs N independent crash tests against one application under
// one persistence plan. Each test: (1) run the app and stop it after a
// uniformly-random tracked access inside the main-loop window, (2) perform
// the NVCT post-mortem — per-object inconsistency rates between caches and
// the NVM image, (3) model the power loss, (4) restart: re-initialise, load
// the candidates' surviving NVM bytes (the paper's load_value), resume from
// the bookmarked iteration, cap at 2x the original iteration count, and
// (5) classify the outcome into the paper's four response classes S1-S4.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "easycrash/memsim/config.hpp"
#include "easycrash/memsim/events.hpp"
#include "easycrash/runtime/app.hpp"
#include "easycrash/runtime/persistence_plan.hpp"

namespace easycrash::memsim {
class RegionMonitor;
}

namespace easycrash::crash {

/// The paper's four application responses after crash + restart (Figure 3).
enum class Response {
  S1,  ///< successful recomputation, no extra iterations
  S2,  ///< successful recomputation, but extra iterations were needed
  S3,  ///< interruption (segfault analogue)
  S4,  ///< acceptance verification fails (even with 2x iterations)
};

[[nodiscard]] const char* toString(Response response);

/// How the restart snapshot is taken.
enum class SnapshotMode {
  NvmImage,  ///< what actually survives the crash (NVCT methodology)
  Coherent,  ///< force-consistent copy (the paper's physical-machine
             ///< "verified" methodology in Figure 6)
};

/// Campaign monitoring mode (docs/INTERNALS.md "Adaptive region monitor").
enum class MonitorMode {
  Full,     ///< every tracked byte pays full value tracking (the default;
            ///< byte-identical to campaigns before the monitor existed)
  Sampled,  ///< the golden run goes direct-mode with a region-sampled
            ///< monitor riding the access stream (no cache simulation), and
            ///< large non-candidates are demoted in the crashing runs —
            ///< values live in NVM, the cache keeps metadata-only residency
            ///< — so only the candidate set pays per-byte value tracking
            ///< while crash indices, rates and outcomes stay bit-identical
            ///< to full tracking (the unlock for large footprints)
};

struct MonitorConfig {
  MonitorMode mode = MonitorMode::Full;
  /// Sample one of every `sampleInterval` logical tracked elements of the
  /// monitored golden run.
  std::uint32_t sampleInterval = 64;
  /// DAMON-style adaptive region bounds/cadence (memsim::RegionMonitor).
  std::uint32_t maxRegionsPerObject = 64;
  std::uint64_t aggregateEvery = 2048;
  /// Objects at or below this size always keep full value tracking: they are
  /// cheap to track and small-object rates are exactly where sampling could
  /// mis-rank (a handful of writes is a large fraction of a small object).
  std::uint64_t smallObjectBytes = 4096;
  /// Keep the golden run fully cache-simulated even in sampled mode. The
  /// monitor observes the access stream, which is routing-independent, so
  /// the sampled summary and the demotion set are identical either way —
  /// but a direct-mode golden reports (near-empty) direct-run MemEvents.
  /// The workflow's Equation-5 time model consumes golden.events, so the
  /// four-step workflow opts in; single campaigns default to the fast
  /// direct-mode golden (that is where the large-footprint win comes from).
  bool trackedGolden = false;
};

/// Per-region sampled stats of one monitored object (pre-pass output).
struct MonitorRegionStats {
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;
  std::uint64_t samples = 0;
  std::uint64_t writes = 0;
};

struct MonitorObjectStats {
  runtime::ObjectId id = 0;
  std::string name;
  std::uint64_t bytes = 0;
  bool candidate = false;
  bool demoted = false;
  std::uint64_t samples = 0;       ///< sampled accesses, setup + window
  std::uint64_t writes = 0;        ///< sampled writes, setup + window
  std::uint64_t windowWrites = 0;  ///< sampled writes inside the crash window
  std::vector<MonitorRegionStats> regions;
};

/// What the sampled monitoring pre-pass concluded: the adaptive region stats
/// per object and the demotion decision they fed. Empty (active == false)
/// under --monitor full. Deterministic for a fixed seed at any --threads and
/// --isolation: the pre-pass is one seeded single-threaded run in the parent.
struct MonitorSummary {
  bool active = false;
  std::uint64_t samples = 0;
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
  std::uint64_t demotedObjects = 0;
  std::uint64_t demotedBytes = 0;
  std::uint64_t trackedObjects = 0;
  std::uint64_t trackedBytes = 0;
  std::vector<MonitorObjectStats> objects;

  [[nodiscard]] std::vector<std::string> demotedNames() const;
};

/// A trial the resilience layer gave up on: every retry either threw or was
/// cancelled by the watchdog. Failed trials are excluded from the S1–S4
/// rates (CampaignResult::tests) but reported here and in the journal, so a
/// campaign sweep never silently loses statistics to a harness bug.
struct TrialFailure {
  std::size_t trial = 0;              ///< campaign test index
  std::uint64_t crashAccessIndex = 0; ///< the trial's pre-drawn crash point
  bool timeout = false;               ///< watchdog deadline, not an exception
  int attempts = 1;                   ///< tries spent (1 + retries)
  std::string reason;                 ///< exception text or "watchdog ..."
  std::string regionPath;             ///< crash-site path if the crash fired
  /// How the trial died. In-process evaluation produces "exception" or
  /// "timeout"; the fork evaluator adds the worker-death kinds "crashed"
  /// (killed by a signal: SIGSEGV, SIGABRT, ...), "killed" (hard SIGKILL:
  /// watchdog deadline or the kernel OOM killer), "oom" (the worker caught
  /// std::bad_alloc) and "protocol" (torn frame / unexpected exit).
  std::string kind = "exception";
};

/// Fault-tolerance knobs for one campaign (docs/ROBUSTNESS.md). Defaults
/// keep the legacy all-or-nothing behaviour: no isolation, no watchdog, no
/// journal; the first trial exception propagates out of run().
/// How trials are evaluated with respect to the host process.
enum class IsolationMode {
  None,  ///< in-process (library default; unit tests, embedding)
  Fork,  ///< pre-forked worker children (nvct default): a trial that
         ///< segfaults, wild-writes, OOMs or hangs kills one worker, which
         ///< is classified, recorded as a TrialFailure and respawned
};

struct ResilienceConfig {
  /// Trap per-trial exceptions/EC_CHECK failures into TrialFailure records
  /// instead of aborting the campaign. Also a prerequisite for the watchdog.
  bool isolate = false;
  /// Process isolation for trial execution (requires `isolate`). Fork mode
  /// produces byte-identical CSV/journal/report output for every trial that
  /// does not die — the same differential bar as sweep/bulk/threads.
  IsolationMode isolation = IsolationMode::None;
  /// Abort the campaign once more than this many trials fail for good
  /// (after retries). Negative = unlimited.
  int maxFailures = -1;
  /// Re-run a failing trial this many times before recording the failure.
  int maxRetries = 1;
  /// Per-trial wall-clock deadline. 0 = derive from the golden run:
  /// max(1s, goldenRunTime * goldenTimeoutMultiple).
  std::uint64_t trialTimeoutMs = 0;
  /// Golden-run multiple used when trialTimeoutMs == 0. 0 disables the
  /// watchdog unless trialTimeoutMs is set explicitly.
  double goldenTimeoutMultiple = 0.0;
  /// Append completed trials to this crash-safe JSONL journal (empty = off).
  std::string journalPath;
  /// Replay this journal before running: already-decided trials are not
  /// re-executed, so an interrupted campaign resumes where it stopped.
  std::string resumePath;
  /// Journal flush cadence (temp-file + rename every N decided trials).
  int journalFlushEvery = 8;
  /// Test hook: request a graceful stop (as SIGINT/SIGTERM would) once this
  /// many new trials have completed. 0 = off.
  int stopAfterTrials = 0;
  /// Exponential backoff between trial retries: attempt k (1-based) sleeps
  /// retryBackoffMs * 2^(k-1) plus a bounded deterministic jitter (seeded
  /// from campaign seed, trial and attempt), capped at retryBackoffMaxMs.
  /// 0 disables the backoff (immediate re-run, the pre-backoff behaviour).
  std::uint64_t retryBackoffMs = 25;
  std::uint64_t retryBackoffMaxMs = 2000;
};

/// Deterministic fault injection (`nvct --inject`): execute a real,
/// process-fatal fault at an exact 1-based tracked-access index of every
/// crashing run, reusing the crash-clock arming machinery. Requires the fork
/// evaluator — the faults are genuine (SIGSEGV, a torn protocol write,
/// allocator exhaustion, a hard hang), so only a worker child may host them.
struct FaultPlan {
  enum class Kind { None, Segv, WildWrite, Oom, Hang };
  Kind kind = Kind::None;
  std::uint64_t accessIndex = 0;

  [[nodiscard]] bool active() const { return kind != Kind::None; }
};

[[nodiscard]] const char* toString(FaultPlan::Kind kind);

/// Scale-out sharding (`nvct --shard i/k`, docs/INTERNALS.md "Sharded
/// campaigns"). A sharded campaign draws the identical golden run, crash
/// points and seeds as the unsharded one, but executes only the trials it
/// owns: trial t belongs to shard t % count. Shards share no state, so k
/// shards on k machines run the campaign ~k× faster; `nvct merge` folds
/// their journals back into artifacts byte-identical to the unsharded run.
struct ShardConfig {
  int index = 0;  ///< this shard's index in [0, count)
  int count = 1;  ///< total shards; 1 = unsharded (the default)

  [[nodiscard]] bool active() const { return count > 1; }
  /// True iff this shard executes trial `t`.
  [[nodiscard]] bool owns(std::size_t t) const {
    return count <= 1 ||
           t % static_cast<std::size_t>(count) == static_cast<std::size_t>(index);
  }
};

struct CampaignConfig {
  std::uint64_t seed = 1;
  int numTests = 200;
  SnapshotMode mode = SnapshotMode::NvmImage;
  runtime::PersistencePlan plan;
  memsim::CacheConfig cache = memsim::CacheConfig::scaledDefault();
  /// Restart iteration cap as a multiple of the original iteration count
  /// (paper: verification fails after 2x the original iterations).
  int maxIterationFactor = 2;
  /// Worker threads for the crash tests. Each test runs on its own simulated
  /// machine, so campaigns are embarrassingly parallel; results are
  /// identical to a single-threaded run (crash points are pre-drawn and
  /// records land by index). 0 = use the hardware concurrency.
  int threads = 1;
  /// Single-sweep trial evaluator: ONE crashing run per campaign captures
  /// every pending crash point read-only (region path, iteration,
  /// inconsistency rates, snapshots) and restarts consume the captures from
  /// a queue, overlapping with the sweep. Off = the per-trial path (one
  /// crashing run per test). Both modes produce byte-identical results for a
  /// fixed seed; the sweep drops the crashing phase from O(N·W/2) to O(W)
  /// tracked accesses.
  bool sweep = true;
  /// Block-granular bulk path for the apps' range accesses. Off lowers every
  /// loadRange/storeRange to the per-element scalar path inside the runtime.
  /// Both settings produce byte-identical campaign results for a fixed seed
  /// (docs/INTERNALS.md "Range access fast path"); off exists as the
  /// differential oracle and for perf comparisons.
  bool bulk = true;
  /// Post-mortem scan fast path: dirty-block index + vectorized compare
  /// kernel inside the runtime's inconsistency/snapshot reads. Off restores
  /// the probe-every-level scalar walk. Both settings produce byte-identical
  /// campaign results (docs/INTERNALS.md "Post-mortem scan"); off exists as
  /// the differential oracle and for perf comparisons.
  bool scan = true;
  /// App name stamped onto telemetry (trace common field + trial events).
  std::string appLabel;
  /// Render a live progress line on stderr: trials done, S1-S4 tally, ETA.
  bool progress = false;
  /// Flight recorder (docs/OBSERVABILITY.md): collect the sampled per-object
  /// access/wear profile on the simulated runs (golden + crashing/sweep;
  /// direct-mode restarts record nothing by design). On by default — the
  /// perf gate measures the recorder's overhead — and compiled out (always
  /// empty) under -DEASYCRASH_TELEMETRY=OFF.
  bool profile = true;
  /// Atomically rewrite a self-contained live status snapshot (JSON) at this
  /// path while the campaign runs, and once more after the drain on
  /// interrupt. Empty = off.
  std::string statusPath;
  /// Status snapshot rewrite interval.
  int statusIntervalMs = 1000;
  /// Access monitoring mode: full value tracking (default) or the
  /// region-sampled pre-pass + demotion routing (see MonitorMode).
  MonitorConfig monitor;
  /// Scale-out sharding: execute only the trials this shard owns (see
  /// ShardConfig). Defaults to unsharded.
  ShardConfig shard;
  /// Fault tolerance: trial isolation, watchdog, journal/resume (see above).
  ResilienceConfig resilience;
  /// Deterministic fault injection into every crashing run (see FaultPlan).
  /// Only legal with resilience.isolation == IsolationMode::Fork.
  FaultPlan inject;
};

/// Statistics of the golden (crash-free) execution.
struct GoldenStats {
  std::uint64_t windowAccesses = 0;  ///< tracked accesses in the crash window
  int finalIteration = 0;
  memsim::MemEvents events;
  std::uint64_t footprintBytes = 0;
  std::uint64_t candidateBytes = 0;
  std::uint32_t regionCount = 0;
  std::uint64_t persistenceOps = 0;
  double verifyMetric = 0.0;
  std::vector<runtime::DataObjectInfo> objects;
  /// a_k: share of window accesses spent in each region (paper Table 2).
  std::map<runtime::PointId, double> regionTimeShare;
  /// Iteration-end persist points reached per region over the execution.
  std::map<runtime::PointId, std::uint64_t> regionIterationEnds;
};

/// Everything a trial needs from its crashing run, detached from the runtime
/// that produced it: the crash-instant context plus the restart inputs. The
/// per-trial path fills one per test; the sweep evaluator fills one per
/// distinct crash index during its single crashing run and shares it
/// (read-only) between every trial that drew that index.
struct SweepCapture {
  std::uint64_t crashAccessIndex = 0;
  runtime::PointId region = runtime::kMainLoopEnd;
  std::vector<runtime::PointId> regionPath;
  int crashIteration = 0;
  int restartIteration = 0;
  std::map<runtime::ObjectId, double> inconsistentRate;
  std::map<runtime::ObjectId, std::vector<std::uint8_t>> snapshots;
};

struct CrashTestRecord {
  std::uint64_t crashAccessIndex = 0;
  runtime::PointId region = runtime::kMainLoopEnd;
  /// Region stack at the crash (outermost first; NVCT's call-path feature).
  std::vector<runtime::PointId> regionPath;
  int crashIteration = 0;
  int restartIteration = 0;
  Response response = Response::S4;
  int extraIterations = 0;
  /// Inconsistency rate per candidate object at the crash instant.
  std::map<runtime::ObjectId, double> inconsistentRate;
  std::string note;
};

/// Aggregated access/wear profile of a campaign's simulated runs (golden +
/// crashing/sweep runs; CampaignConfig::profile). All runs of a campaign see
/// the same object layout, so per-object totals and bins merge element-wise.
struct CampaignProfile {
  std::uint32_t strideBytes = 0;  ///< address range per access-profile counter
  std::uint64_t runs = 0;         ///< simulated runs folded in
  std::vector<runtime::ObjectProfile> objects;
  /// Dynamic accesses attributed to each region, summed over the runs
  /// (region kMainLoopEnd collects accesses outside any region).
  std::map<runtime::PointId, std::uint64_t> regionAccesses;

  [[nodiscard]] bool empty() const { return runs == 0; }
  /// Fold one finished run's profile in (no-op unless `rt` is profiling).
  void accumulate(const runtime::Runtime& rt, std::size_t bins = 16);
  /// Fold another accumulated profile in (layout-checked element-wise merge;
  /// the fork evaluator ships per-run profiles from worker children).
  void merge(const CampaignProfile& other);
};

struct CampaignResult {
  GoldenStats golden;
  /// Completed trials in campaign test-index order. Without failures or an
  /// interruption this holds every planned test, exactly as before the
  /// resilience layer; failed/undone trials are simply absent.
  std::vector<CrashTestRecord> tests;
  /// Trials abandoned after retries (excluded from the S1-S4 rates).
  std::vector<TrialFailure> failures;
  int plannedTests = 0;            ///< numTests this campaign was drawn for
  std::size_t resumedTrials = 0;   ///< trials replayed from --resume
  bool interrupted = false;        ///< stopped early by SIGINT/SIGTERM
  /// Flight-recorder access/wear profile (empty unless CampaignConfig::profile
  /// and telemetry are compiled in).
  CampaignProfile profile;
  /// Sampled-monitoring pre-pass output (active only under sampled mode).
  MonitorSummary monitor;

  /// The paper's application recomputability: S1 fraction.
  [[nodiscard]] double recomputability() const;
  /// S1+S2 fraction (successful outcome, performance aside).
  [[nodiscard]] double successWithExtra() const;
  [[nodiscard]] std::array<int, 4> responseCounts() const;
  /// Average extra iterations over S2 tests (Table 1 restart overhead).
  [[nodiscard]] double averageExtraIterations() const;
  /// c_k: per-region recomputability (S1 fraction of crashes in region k).
  [[nodiscard]] std::map<runtime::PointId, double> regionRecomputability() const;
  [[nodiscard]] std::map<runtime::PointId, int> regionTestCounts() const;
  /// Per-candidate mean inconsistency rate across tests.
  [[nodiscard]] std::map<runtime::ObjectId, double> meanInconsistentRate() const;
};

/// Runs campaigns. The factory must produce deterministic app instances: a
/// fresh run always executes the same tracked-access sequence.
class CampaignRunner {
 public:
  CampaignRunner(runtime::AppFactory factory, CampaignConfig config);

  /// Golden run only (fast; used for Table 1 characteristics).
  [[nodiscard]] GoldenStats goldenRun() const { return goldenRun(nullptr); }

  /// Full campaign: golden run + numTests crash tests.
  [[nodiscard]] CampaignResult run() const;

 private:
  /// Per-trial path: one crashing run to `crashIndex`, then runRestart.
  /// Fills `record` in place so that a mid-trial exception leaves the
  /// partial progress (crash site, region path) readable for the failure
  /// report. `cancel` is the watchdog flag installed on both simulated
  /// machines (nullptr = no watchdog).
  void runOneTest(const GoldenStats& golden, std::uint64_t crashIndex,
                  std::size_t trial, const std::atomic<bool>* cancel,
                  CrashTestRecord& record) const;

  /// Restart + S1–S4 classification from a capture. Shared verbatim by both
  /// evaluator paths — this is what makes sweep and per-trial campaigns
  /// byte-identical.
  void runRestart(const GoldenStats& golden, const SweepCapture& capture,
                  std::size_t trial, const std::atomic<bool>* cancel,
                  CrashTestRecord& record) const;

  /// Enable profiling on a simulated run's runtime (per config_.profile) and
  /// fold its finished profile into profile_. Worker threads call the fold
  /// concurrently, hence the mutex; the hot access paths never touch it.
  void armProfile(runtime::Runtime& rt) const;
  void accumulateProfile(const runtime::Runtime& rt) const;

  /// Report one finished simulated run's events + profile. In the parent
  /// these land in the process metrics registry and profile_; inside a fork
  /// worker they are collected per request and shipped back instead.
  void noteRun(const runtime::Runtime& rt) const;

  /// Parent-side completion bookkeeping of one decided trial: campaign
  /// counters (trials, S1-S4 responses) and the trial_end trace event. Only
  /// the deciding process runs this — fork workers never do, so the parent's
  /// registry stays the single source of truth.
  void commitTrial(std::size_t trial, const CrashTestRecord& record) const;

  /// Arm config_.inject on a crashing run (worker children only; no-op when
  /// no fault plan is set or no child fault context is installed).
  void installFault(runtime::Runtime& rt) const;

  /// Golden run with an optional adaptive region monitor riding the access
  /// stream. With a monitor installed and monitor.trackedGolden unset, the
  /// run goes direct-mode: the monitor observes the same access sequence
  /// either way (sampling is stream-based, not cache-based), so the golden
  /// outputs the campaign depends on — windowAccesses, finalIteration, the
  /// verify metric, region shares — are identical, while the run itself
  /// costs O(accesses) instead of O(accesses x cache simulation). Only
  /// MemEvents and the per-block access/wear profile, which describe the
  /// cache machine, are (near-empty) direct-run values then.
  [[nodiscard]] GoldenStats goldenRun(memsim::RegionMonitor* monitor) const;

  /// Sampled mode only: digest the monitor that rode the golden run into
  /// monitorState_ — per-object region stats, the sampled activity ranking,
  /// and the demotion decisions every crashing run then applies.
  void buildMonitorSummary(const memsim::RegionMonitor& monitor,
                           const GoldenStats& golden) const;

  /// Route the pre-pass demotions onto a crashing run's runtime (no-op under
  /// full monitoring). Must run before the app allocates, so the demoted
  /// objects never enter the cache hierarchy.
  void applyMonitorRouting(runtime::Runtime& rt) const;

  friend struct ForkChildServer;

  runtime::AppFactory factory_;
  CampaignConfig config_;
  mutable std::mutex profileMutex_;
  mutable CampaignProfile profile_;
  mutable MonitorSummary monitorState_;
};

}  // namespace easycrash::crash
