// Textual persistence-plan specifications for the NVCT command-line tool.
//
// Grammar (comma-separated directives):
//   <objects> "@" <point> [ ":" <everyN> ]
//   objects := object name, or "+"-joined names, or "critical*" globs later
//   point   := "main" | "R<k>" (1-based region, as printed by the reports)
//
// Examples:
//   "u@main"            persist u at the end of every main-loop iteration
//   "u+r@R3:2"          persist u and r every 2nd iteration-end of region 3
//   "u@main,hist@R2:4"  two directives
#pragma once

#include <string>

#include "easycrash/runtime/persistence_plan.hpp"
#include "easycrash/runtime/runtime.hpp"

namespace easycrash::crash {

/// Parse `spec` against the objects registered in `rt`. Throws
/// std::runtime_error with a helpful message on unknown names or syntax.
[[nodiscard]] runtime::PersistencePlan parsePlanSpec(const std::string& spec,
                                                     const runtime::Runtime& rt);

/// Render a plan back into the spec syntax (object ids resolved via `rt`).
[[nodiscard]] std::string formatPlanSpec(const runtime::PersistencePlan& plan,
                                         const runtime::Runtime& rt);

}  // namespace easycrash::crash
