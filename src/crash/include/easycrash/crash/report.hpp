// Campaign reporting: serialize crash-test campaigns for post-mortem
// analysis outside the process (NVCT's dump-file role). Two formats:
//
// * CSV — one row per crash test (crash point, region path, per-object
//   inconsistency rates, response class), suitable for pandas/R;
// * a human-readable summary — golden stats, the S1-S4 breakdown, and the
//   per-region / per-object aggregates the EasyCrash workflow consumes.
#pragma once

#include <iosfwd>
#include <string>

#include "easycrash/crash/campaign.hpp"

namespace easycrash::crash {

/// One CSV row per crash test. Object-rate columns are emitted in candidate
/// order with headers `rate_<objectName>`.
void writeCampaignCsv(const CampaignResult& campaign, std::ostream& os);

/// Human-readable post-mortem summary of a campaign.
void writeCampaignSummary(const CampaignResult& campaign, std::ostream& os);

/// Render a region path like "R2>R5" ("main" for the top level).
[[nodiscard]] std::string formatRegionPath(
    const std::vector<runtime::PointId>& path);

/// Parse a campaign CSV produced by writeCampaignCsv back into records
/// (golden stats are not round-tripped; object rates key by column index).
/// Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<CrashTestRecord> readCampaignCsv(std::istream& is);

}  // namespace easycrash::crash
