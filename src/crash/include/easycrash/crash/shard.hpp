// Shard journal merging (`nvct merge`, docs/INTERNALS.md "Sharded
// campaigns").
//
// A campaign sharded `--shard i/k` across k nvct processes leaves k
// self-describing shard journals, each holding only the trials its shard
// owns (trial t belongs to shard t % k). This core folds them back into one
// canonical decided set: validation first (every journal drawn for the same
// campaign — identity fields and recomputed campaign fingerprint must agree,
// shard counts must match, every record must be owned by the shard that
// wrote it), then a last-wins fold keyed by trial index. The fold is
// commutative and idempotent — any journal order, and any mix of complete,
// partial and re-merged journals, produces the identical decided set — so
// the rendered artifacts (compact journal, per-test CSV, flight report) are
// byte-identical to what the unsharded single-machine run writes.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "easycrash/crash/resilience.hpp"

namespace easycrash::crash {

/// The merged view of one campaign's shard journals.
struct ShardMerge {
  /// Canonical unsharded header (shard fields cleared): exactly what the
  /// single-machine run's journal carries on line 1.
  JournalHeader header;
  /// Candidate objects (from the shard headers; empty when merging a single
  /// unsharded journal, which never carried the list).
  std::vector<JournalCandidate> candidates;
  /// Decided set, compacted last-wins by trial index.
  std::map<std::size_t, CrashTestRecord> trials;
  std::map<std::size_t, TrialFailure> failures;
  /// Shard count the inputs declared (1 when merging unsharded journals).
  int shardCount = 1;
  /// Distinct shard indices seen, ascending.
  std::vector<int> shardsSeen;

  /// True iff every planned trial is decided (no undecided tail remains).
  [[nodiscard]] bool complete() const {
    return trials.size() + failures.size() ==
           static_cast<std::size_t>(header.tests);
  }
};

/// Read, validate and fold `paths` (throws std::runtime_error naming the
/// offending journal and field on any mismatch). Partial shard journals are
/// legal inputs — merge never requires completeness — and merging a single
/// unsharded journal is the k=1 identity.
[[nodiscard]] ShardMerge mergeShardJournals(const std::vector<std::string>& paths);

/// The canonical compact journal bytes of the merged decided set: unsharded
/// header + entries in trial order — the exact construction (and therefore
/// the exact bytes) of an unsharded TrialJournal left compacted on close.
[[nodiscard]] std::string renderMergedJournal(const ShardMerge& merge);

/// The per-test CSV of the merged decided set, byte-identical to the
/// unsharded run's --csv-out. Requires the candidate list (rate column
/// names), which only shard journals embed; throws without one.
[[nodiscard]] std::string renderMergedCsv(const ShardMerge& merge);

/// A deterministic metrics projection of the merged decided set (JSON):
/// outcome tallies, failure kinds, per-candidate rate aggregates. A live
/// campaign's --metrics-out snapshots wall-clock histograms and k separate
/// golden/sweep simulations, which can never be byte-identical across
/// process layouts — this projection is a pure function of the decided set,
/// so sharded and unsharded campaigns that decided the same trials project
/// identically (docs/INTERNALS.md "Sharded campaigns").
[[nodiscard]] std::string renderMergedMetrics(const ShardMerge& merge);

/// The merged decided set as a JournalReplay (for renderFlightReport).
[[nodiscard]] JournalReplay toReplay(const ShardMerge& merge);

}  // namespace easycrash::crash
