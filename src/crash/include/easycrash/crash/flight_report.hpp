// Post-run campaign analysis (`nvct report`, docs/OBSERVABILITY.md).
//
// Joins a campaign's journal with (optionally) its JSONL trace and metrics
// snapshot into one deterministic markdown report: the Table-1-style
// per-region outcome breakdown, phase-latency percentiles from the
// phase_end spans, the per-object inconsistency summary, and an ASCII
// access/wear heatmap from the flight recorder's profile section.
//
// Determinism is a contract: the output is byte-identical for identical
// inputs — no timestamps, sorted iteration orders, fixed float formatting.
// Finished journals are canonical (compact-on-close), so two campaigns that
// decided the same trials render byte-identical reports regardless of
// --threads or --sweep.
#pragma once

#include <string>

#include "easycrash/crash/campaign.hpp"
#include "easycrash/crash/resilience.hpp"

namespace easycrash::crash {

struct FlightReportInputs {
  std::string journalPath;  ///< required: the campaign journal
  std::string tracePath;    ///< optional: JSONL trace (phase latencies)
  std::string metricsPath;  ///< optional: metrics snapshot (profile heatmap)
};

/// Render the markdown report. Throws std::runtime_error when the journal
/// cannot be read or an optional input exists but is malformed.
[[nodiscard]] std::string renderFlightReport(const FlightReportInputs& inputs);

/// Render from an already-replayed journal — the entry point `nvct merge`
/// and the multi-journal `nvct report` use, so a merged decided set renders
/// the identical bytes an unsharded journal file would.
[[nodiscard]] std::string renderFlightReport(const JournalReplay& journal,
                                             const std::string& tracePath,
                                             const std::string& metricsPath);

/// The campaign profile as a compact JSON value — the "profile" section
/// nvct splices into --metrics-out (MetricsRegistry::writeJson's
/// extraSection) and renderFlightReport reads back.
[[nodiscard]] std::string campaignProfileJson(const CampaignProfile& profile);

}  // namespace easycrash::crash
