// Fault tolerance for crash-test campaigns (docs/ROBUSTNESS.md).
//
// A tool whose subject is surviving failures should itself survive them:
// this layer keeps a campaign alive through throwing trials (isolation into
// TrialFailure records), runaway trials (watchdog deadlines + cooperative
// cancellation in the tracked-access path), process death (a crash-safe
// JSONL journal of decided trials, replayed by --resume), and operator
// interruption (a SIGINT/SIGTERM stop flag workers drain against).
//
// The journal is written with the same discipline the paper demands of its
// subject applications, in an append-only segment format: the first flush
// writes a compacted base segment (header + every decided entry, test-index
// sorted) via temp-file + fsync + rename, and every later flush appends
// only the newly decided entries (fsynced) — O(batch) per flush instead of
// rewriting the O(decided) whole file. Appended entries land in decision
// order (the sweep evaluator decides trials in crash-index order), so
// readers compact on load: the last record per test index wins, and a torn
// final line from a mid-append crash is tolerated. Closing the journal (and
// resuming into it) rewrites it fully compacted, so finished journals are
// canonical — byte-identical for the same decided trials regardless of
// decision order — and segment files never grow without bound. Legacy
// journals (fully sorted, no "format" header field) parse identically;
// trace_lint --journal checks whichever discipline the header declares.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "easycrash/crash/campaign.hpp"

namespace easycrash::crash {

// ---- Graceful interruption ---------------------------------------------------

/// Install SIGINT/SIGTERM handlers that set the process-wide stop flag.
/// Workers finish the trial they are on, the journal and telemetry sinks
/// flush, and run() returns a partial CampaignResult with interrupted=true.
void installStopSignalHandlers();
/// Set the stop flag programmatically (tests, embedders).
void requestStop() noexcept;
[[nodiscard]] bool stopRequested() noexcept;
/// Signal number that set the flag, or 0 when it was set programmatically.
[[nodiscard]] int stopSignal() noexcept;
/// Reset the flag (tests; a campaign never clears it on its own).
void clearStopFlag() noexcept;

// ---- Watchdog ---------------------------------------------------------------

/// Monitor thread enforcing one wall-clock deadline per worker slot. A
/// worker arms its slot before each trial attempt and installs the returned
/// flag on the trial's runtimes (Runtime::setCancelFlag); the monitor sets
/// the flag once the deadline passes and the next tracked access throws
/// TrialCancelled. Requires EASYCRASH_WATCHDOG=ON (the default) to have any
/// effect — with the poll compiled out, arm/disarm still work but nothing
/// observes the flag.
class Watchdog {
 public:
  Watchdog(std::chrono::milliseconds timeout, int slots);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Reset the slot's flag and start its deadline clock. The reference stays
  /// valid for the watchdog's lifetime. `budgetFactor` scales this arming's
  /// deadline (clamped to >= 1) without changing the base timeout: the
  /// campaign passes each trial's expected work in golden-run units, so a
  /// slow late-crash trial (long crashing run + a restart that may run to
  /// the iteration cap) is not cancelled by a deadline sized for the
  /// average trial. --trial-timeout-ms stays the base unit.
  std::atomic<bool>& arm(int slot, double budgetFactor = 1.0);
  /// Stop the slot's clock. Returns true iff the deadline fired.
  bool disarm(int slot);

  [[nodiscard]] std::chrono::milliseconds timeout() const { return timeout_; }

 private:
  struct Slot {
    std::atomic<bool> cancel{false};
    std::atomic<std::int64_t> deadlineNs{0};  ///< 0 = disarmed
  };

  void monitorLoop();

  std::chrono::milliseconds timeout_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  std::thread monitor_;
};

// ---- Journal ----------------------------------------------------------------

/// One candidate object's identity, embedded in a shard journal's header so
/// `nvct merge` can rebuild the per-test CSV (rate_<name> columns, candidate
/// order) without re-running the application.
struct JournalCandidate {
  runtime::ObjectId id = 0;
  std::string name;

  friend bool operator==(const JournalCandidate& a, const JournalCandidate& b) {
    return a.id == b.id && a.name == b.name;
  }
};

/// First line of every journal: identifies the campaign so --resume can
/// refuse a journal drawn for different work. windowAccesses pins the golden
/// run (and therefore the whole pre-drawn crash-point sequence).
struct JournalHeader {
  std::string app;
  std::uint64_t seed = 0;
  int tests = 0;
  std::string mode;  ///< "nvm" | "coherent"
  std::uint64_t planFingerprint = 0;
  std::uint64_t windowAccesses = 0;
  /// "sampled" when the campaign ran with the region-sampled monitor, empty
  /// for full monitoring. Serialized only when non-empty, so full-mode
  /// journals are byte-identical to journals from before the field existed.
  std::string monitor;
  /// Shard header segment (docs/INTERNALS.md "Sharded campaigns"): the
  /// shard's coordinates, the campaign fingerprint over the identity fields
  /// above (campaignHash; the shard coordinates are deliberately excluded,
  /// so every shard of one campaign — and its unsharded run — hash alike),
  /// and the candidate objects for CSV reconstruction. Serialized only when
  /// shardCount > 1: unsharded journals stay byte-identical to journals from
  /// before sharding existed, which is what makes a merged journal byte-
  /// comparable against an unsharded run's.
  int shardIndex = 0;
  int shardCount = 1;
  std::uint64_t campaignHash = 0;  ///< stamped value; 0 = not stamped
  std::vector<JournalCandidate> candidates;
};

/// FNV-1a campaign fingerprint over the header's identity fields (app, seed,
/// tests, mode, plan fingerprint, window accesses, monitor) — NOT the shard
/// coordinates, so the k shard journals of one campaign and the unsharded
/// journal all agree. `nvct merge` recomputes it and rejects a shard journal
/// whose stamped hash disagrees (a tampered or mis-labelled journal).
[[nodiscard]] std::uint64_t campaignHash(const JournalHeader& header);

/// FNV-1a over the plan's points/frequencies/objects — cheap identity check
/// for the journal header (full plan round-tripping is not needed: any
/// difference changes results, which the header exists to prevent).
[[nodiscard]] std::uint64_t planFingerprint(const runtime::PersistencePlan& plan);

/// Crash-safe writer. Thread-safe; records may arrive in any order (worker
/// interleaving, or the sweep deciding trials in crash-index order) and
/// every decided trial is persisted every `flushEvery` newly decided trials
/// and on close()/destruction. The first flush writes a compacted base
/// segment (test-index sorted, atomic rename); later flushes append only
/// the new entries in decision order; close() leaves the file fully
/// compacted again. Nothing is written until the first flush() — the
/// campaign seeds replayed records first, so resuming into the same path
/// never truncates the journal.
class TrialJournal {
 public:
  TrialJournal(std::string path, const JournalHeader& header, int flushEvery);
  ~TrialJournal();
  TrialJournal(const TrialJournal&) = delete;
  TrialJournal& operator=(const TrialJournal&) = delete;

  void recordTrial(std::size_t trial, const CrashTestRecord& record);
  void recordFailure(const TrialFailure& failure);
  /// Write header + every decided entry via temp-file + fsync + rename.
  void flush();
  void close();

 private:
  void flushLocked();
  /// Rewrite the whole journal compacted (header + entries in test-index
  /// order) via atomic rename. First flush, append-failure repair, and the
  /// close-time canonicalisation all land here.
  void compactLocked();

  std::string path_;
  std::mutex mutex_;
  std::string header_;                          ///< serialized first line
  std::map<std::size_t, std::string> entries_;  ///< serialized, by test index
  std::vector<std::string> pending_;  ///< decided since the last flush, in order
  std::size_t sinceFlush_ = 0;  ///< entries decided since the last write
  bool written_ = false;        ///< the base segment has landed
  bool appended_ = false;       ///< segments appended since the last compaction
  int flushEvery_ = 8;
  bool closed_ = false;
};

/// A parsed journal: the header plus every decided trial, compacted on load
/// — when the appended segments carry several records for one test index,
/// the last one wins. The reader tolerates (and ignores) a trailing partial
/// line from a torn append.
struct JournalReplay {
  JournalHeader header;
  std::map<std::size_t, CrashTestRecord> trials;
  std::map<std::size_t, TrialFailure> failures;
};

/// Parse `path`. Throws std::runtime_error on a missing file or a journal
/// whose prefix is malformed.
[[nodiscard]] JournalReplay readJournal(const std::string& path);

// ---- Record transport --------------------------------------------------------

/// The journal's per-trial text format, exposed as the fork evaluator's
/// result transport: doubles are serialized with %.17g (exact round-trip),
/// so a record that crossed a worker boundary serializes back to the very
/// bytes an in-process record would — the foundation of the fork/none
/// byte-identity guarantee.
[[nodiscard]] std::string serializeTrialRecord(std::size_t trial,
                                               const CrashTestRecord& record);
/// The journal's exact header/failure line formats, exposed so the shard
/// merge core can emit a canonical merged journal byte-identical to what an
/// unsharded TrialJournal leaves behind on close.
[[nodiscard]] std::string serializeJournalHeader(const JournalHeader& header);
[[nodiscard]] std::string serializeFailureRecord(const TrialFailure& failure);
/// Inverse of serializeTrialRecord. Throws std::runtime_error on malformed
/// input (a worker that died mid-write never produces a frame, but a wild
/// write may corrupt one — the campaign maps the throw to a protocol death).
[[nodiscard]] CrashTestRecord parseTrialRecord(const std::string& line,
                                               std::size_t* trial);

// ---- Retry backoff -----------------------------------------------------------

/// Backoff before retry `attempt` (1-based: the sleep after the first failed
/// attempt) of `trial`: ResilienceConfig::retryBackoffMs doubled per attempt
/// plus a deterministic bounded jitter (seeded by campaign seed, trial and
/// attempt — reruns sleep identically), capped at retryBackoffMaxMs. Zero
/// when backoff is disabled.
[[nodiscard]] std::uint64_t retryBackoffMs(const ResilienceConfig& res,
                                           std::uint64_t seed,
                                           std::size_t trial, int attempt);

// ---- Atomic file replacement -------------------------------------------------

/// Replace `path` with `content` atomically: write `<path>.tmp`, fsync,
/// rename. Retries once on a transient I/O failure (EC_LOG_WARN in between)
/// before throwing std::runtime_error, so output files are never silently
/// truncated by a failed in-place write.
void atomicWriteFile(const std::string& path, const std::string& content);

}  // namespace easycrash::crash
