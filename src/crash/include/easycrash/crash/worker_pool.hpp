// Pre-forked worker pool for process-isolated trial execution.
//
// The campaign's fork evaluator (`--isolation fork`) runs every crashing
// run / restart inside a child process so that a misbehaving mini-app — a
// real SIGSEGV, a wild write, allocator exhaustion, an infinite loop — kills
// one worker, not the campaign. Parent and child speak a minimal
// length-prefixed frame protocol over a pair of pipes; bulk payloads
// (object snapshots) cross through a per-slot shared-memory arena mapped
// before the first fork. Any child death is classified from waitpid()
// status into a WorkerDeath the campaign maps onto TrialFailure kinds:
//
//   signal (not SIGKILL)  -> Crashed   (SIGSEGV, SIGABRT, SIGBUS, ...)
//   SIGKILL               -> Killed    (watchdog deadline, kernel OOM killer)
//   _exit(kWorkerOomExit) -> Oom       (worker caught std::bad_alloc)
//   any other exit        -> Protocol  (torn frame, garbage length, early EOF)
//
// Deadlines are enforced by the PARENT: recv() polls in short slices and
// SIGKILLs the child when the deadline passes, so even a hung busy-loop that
// never reaches a cooperative cancellation poll is reclaimed. Workers set
// PR_SET_PDEATHSIG so a SIGKILLed parent leaves no orphans, and ignore
// SIGINT/SIGTERM so an interactive ^C drains through the parent's graceful
// stop path instead of racing it.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace easycrash::crash {

enum class WorkerDeath { None, Crashed, Killed, Oom, Protocol };

[[nodiscard]] const char* toString(WorkerDeath death);

/// Exit status a worker uses to report allocator exhaustion (a caught
/// std::bad_alloc) — the modelled analogue of the kernel OOM killer, which
/// would show up as SIGKILL instead.
inline constexpr int kWorkerOomExit = 77;

class WorkerPool {
 public:
  /// Outcome of one recv(): either a complete frame (`ok`) or a classified
  /// worker death. `timedOut` marks deaths the parent itself inflicted
  /// because the deadline passed.
  struct Reply {
    bool ok = false;
    bool timedOut = false;
    WorkerDeath death = WorkerDeath::None;
    int signal = 0;
    int exitStatus = 0;
    std::string frame;
  };

  /// The child's side of the protocol, handed to the request handler.
  class ChildChannel {
   public:
    /// Send one response frame to the parent.
    void send(const std::string& frame) const;
    /// Block for one frame from the parent (mid-request acknowledgements,
    /// e.g. the sweep capture handshake). False on EOF.
    [[nodiscard]] bool recv(std::string& frame) const;
    [[nodiscard]] std::uint8_t* arena() const { return arena_; }
    [[nodiscard]] std::size_t arenaBytes() const { return arenaBytes_; }
    /// Raw response fd — exists so deliberate fault injection can tear a
    /// frame mid-write (`--inject wild-write`). Normal handlers use send().
    [[nodiscard]] int responseFd() const { return respFd_; }

   private:
    friend class WorkerPool;
    int reqFd_ = -1;
    int respFd_ = -1;
    std::uint8_t* arena_ = nullptr;
    std::size_t arenaBytes_ = 0;
  };

  /// Runs in the CHILD for every request frame. Must communicate results
  /// exclusively through `ch` and must not let exceptions escape: an escaped
  /// std::bad_alloc exits with kWorkerOomExit, anything else with a protocol
  /// error status.
  using Handler = std::function<void(int slot, const std::string& request,
                                     const ChildChannel& ch)>;

  /// Hooks bracketing every fork so the multi-threaded parent never forks
  /// while a thread holds a lock the child would need (trace sink, metrics
  /// registry). `prepare` runs before fork() in the parent; `parent` runs
  /// after fork() in the parent; `child` runs first thing in the child.
  struct ForkHooks {
    std::function<void()> prepare;
    std::function<void()> parent;
    std::function<void(int slot)> child;
  };

  /// Creates the per-slot arenas and pre-forks one worker per slot.
  /// `arenaBytes` is rounded up to whole pages. Throws std::runtime_error if
  /// resources cannot be created; a failed initial fork leaves the slot dead
  /// (ensureWorker() retries later).
  WorkerPool(int workers, std::size_t arenaBytes, Handler handler,
             ForkHooks hooks = {});
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Send one request frame. False when the worker is dead (the caller then
  /// recv()s to pick up the classified death).
  bool send(int slot, const std::string& frame);

  /// Receive one response frame, SIGKILLing the worker if `deadline` (zero =
  /// none) passes first. Exactly one Reply per death: after a death Reply
  /// the slot is dead until ensureWorker().
  Reply recv(int slot, std::chrono::milliseconds deadline);

  /// Fork a replacement if the slot's worker is dead. `respawned` (optional)
  /// reports whether a fork actually happened. False if fork() failed.
  bool ensureWorker(int slot, bool* respawned = nullptr);

  [[nodiscard]] bool alive(int slot) const;
  [[nodiscard]] pid_t pid(int slot) const;
  [[nodiscard]] int workers() const { return static_cast<int>(slots_.size()); }
  [[nodiscard]] int aliveCount() const {
    return aliveCount_.load(std::memory_order_relaxed);
  }
  /// Total forks performed (initial spawns + respawns).
  [[nodiscard]] std::uint64_t spawnCount() const {
    return spawnCount_.load(std::memory_order_relaxed);
  }

  /// SIGKILL and reap one worker / all workers (graceful-stop drain).
  void kill(int slot);
  void killAll();

  [[nodiscard]] std::uint8_t* arena(int slot);
  [[nodiscard]] std::size_t arenaBytes() const { return arenaBytes_; }

 private:
  struct Slot {
    pid_t pid = -1;         // -1 = dead
    int reqWrite = -1;      // parent -> child requests
    int respRead = -1;      // child -> parent responses
    std::uint8_t* arena = nullptr;
  };

  bool spawnLocked(int slot);
  void killLocked(int slot);
  /// Reap a dead/just-killed worker, classify its death into `reply`, and
  /// release the slot's fds.
  void reapLocked(int slot, Reply& reply);
  [[noreturn]] void childMain(int slot, int reqRead, int respWrite);

  Handler handler_;
  ForkHooks hooks_;
  std::size_t arenaBytes_ = 0;
  std::size_t frameLimit_ = 0;
  std::vector<Slot> slots_;
  std::atomic<int> aliveCount_{0};
  std::atomic<std::uint64_t> spawnCount_{0};
  mutable std::mutex mutex_;  // guards slot pid/fd mutation (spawn/reap/kill)
};

}  // namespace easycrash::crash
