// Live campaign status snapshots (flight recorder, docs/OBSERVABILITY.md).
//
// A running campaign periodically samples its shared tallies into a
// CampaignStatus and atomically rewrites one self-contained JSON file
// (temp + fsync + rename, like every other output), so an external watcher —
// a future campaign service, a dashboard, `watch cat` — always reads a
// complete, consistent snapshot and never a torn write. The final snapshot
// after the SIGINT/SIGTERM drain carries done=true plus the interrupted
// flag, so the file also records how the campaign ended.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace easycrash::crash {

/// One snapshot of a campaign in flight. All counts are cumulative since the
/// campaign started (resumed trials included in `decided`/`responses`).
struct CampaignStatus {
  std::string app;
  /// Shard coordinates (serialized as "shard":"i/k"; "0/1" when unsharded).
  /// All remaining totals are shard-local: `plannedTests` is the owned
  /// slice, so decided/tests and the ETA describe this process's work.
  int shardIndex = 0;
  int shardCount = 1;
  int plannedTests = 0;
  std::uint64_t decided = 0;            ///< trials with a record or a failure
  std::uint64_t resumed = 0;            ///< of those, replayed from --resume
  std::array<int, 4> responses{};       ///< S1..S4 tally of completed trials
  std::uint64_t failures = 0;           ///< trials abandoned after retries
  std::uint64_t retries = 0;            ///< retry attempts spent so far
  std::uint64_t timeouts = 0;           ///< watchdog cancellations so far
  std::uint64_t queueDepth = 0;         ///< sweep restart queue depth
  std::uint64_t workers = 0;            ///< live fork-evaluator workers
  std::uint64_t workerDeaths = 0;       ///< worker children lost so far
  double elapsedS = 0.0;
  double trialsPerS = 0.0;              ///< fresh (non-resumed) trial rate
  double etaS = -1.0;                   ///< seconds to completion; -1 unknown
  bool interrupted = false;             ///< a stop was requested
  bool done = false;                    ///< final snapshot (campaign returned)
  std::uint64_t seq = 0;                ///< snapshot sequence number
};

/// One-line JSON encoding ({"type":"campaign_status",...}\n). Deterministic
/// for a fixed status value: fixed field order, %.3f floats.
[[nodiscard]] std::string serializeStatus(const CampaignStatus& status);

/// Background snapshot writer: every `interval` it calls `sampler` and
/// atomically rewrites `path`. writeFinal() stops the thread and writes one
/// last snapshot with done=true; the destructor stops the thread without a
/// final write (the error-unwind path keeps the last periodic snapshot).
class StatusWriter {
 public:
  using Sampler = std::function<CampaignStatus()>;

  StatusWriter(std::string path, std::chrono::milliseconds interval,
               Sampler sampler);
  ~StatusWriter();

  StatusWriter(const StatusWriter&) = delete;
  StatusWriter& operator=(const StatusWriter&) = delete;

  void writeFinal(bool interrupted);

 private:
  void loop();
  void stopThread();
  void writeSnapshot(CampaignStatus status);

  std::string path_;
  std::chrono::milliseconds interval_;
  Sampler sampler_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  std::uint64_t seq_ = 0;
  std::thread thread_;
};

}  // namespace easycrash::crash
