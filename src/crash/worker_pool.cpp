#include "easycrash/crash/worker_pool.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "easycrash/common/check.hpp"
#include "easycrash/telemetry/log.hpp"

namespace easycrash::crash {

namespace {

constexpr int kHandlerEscapeExit = 70;  ///< handler let an exception escape

void storeLe32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t loadLe32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

bool writeAll(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking exact read (the child side; the parent has no deadline to honor
/// for it). False on EOF or error.
bool readAllBlocking(int fd, void* data, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool readFrameBlocking(int fd, std::string& out, std::size_t limit) {
  std::uint8_t lenBuf[4];
  if (!readAllBlocking(fd, lenBuf, sizeof lenBuf)) return false;
  const std::uint32_t len = loadLe32(lenBuf);
  if (len > limit) return false;
  out.resize(len);
  return len == 0 || readAllBlocking(fd, out.data(), len);
}

bool writeFrame(int fd, const std::string& frame) {
  std::uint8_t lenBuf[4];
  storeLe32(lenBuf, static_cast<std::uint32_t>(frame.size()));
  return writeAll(fd, lenBuf, sizeof lenBuf) &&
         (frame.empty() || writeAll(fd, frame.data(), frame.size()));
}

enum class IoResult { Ok, Eof, Timeout, Error };

/// Exact read in the parent: polls in short slices so a deadline is honored
/// even while the worker dribbles (or stops dribbling) bytes.
IoResult readExact(
    int fd, void* data, std::size_t len,
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (len > 0) {
    int waitMs = 100;
    if (deadline) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                                 *deadline - std::chrono::steady_clock::now())
                                 .count();
      if (remaining <= 0) return IoResult::Timeout;
      waitMs = static_cast<int>(std::min<long long>(100, remaining));
    }
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, waitMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return IoResult::Error;
    }
    if (rc == 0) continue;  // slice elapsed; the loop re-checks the deadline
    const ssize_t n = ::read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoResult::Error;
    }
    if (n == 0) return IoResult::Eof;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return IoResult::Ok;
}

std::size_t roundUpToPage(std::size_t bytes) {
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return (bytes + page - 1) / page * page;
}

}  // namespace

const char* toString(WorkerDeath death) {
  switch (death) {
    case WorkerDeath::None: return "none";
    case WorkerDeath::Crashed: return "crashed";
    case WorkerDeath::Killed: return "killed";
    case WorkerDeath::Oom: return "oom";
    case WorkerDeath::Protocol: return "protocol";
  }
  return "unknown";
}

void WorkerPool::ChildChannel::send(const std::string& frame) const {
  // A failed write means the parent is gone; PR_SET_PDEATHSIG reclaims the
  // child momentarily, so there is nothing useful to do here.
  (void)writeFrame(respFd_, frame);
}

bool WorkerPool::ChildChannel::recv(std::string& frame) const {
  return readFrameBlocking(reqFd_, frame, arenaBytes_ + (std::size_t{16} << 20));
}

WorkerPool::WorkerPool(int workers, std::size_t arenaBytes, Handler handler,
                       ForkHooks hooks)
    : handler_(std::move(handler)), hooks_(std::move(hooks)) {
  EC_CHECK_MSG(workers > 0, "worker pool needs at least one worker");
  EC_CHECK_MSG(static_cast<bool>(handler_), "worker pool needs a handler");
  arenaBytes_ = roundUpToPage(std::max<std::size_t>(arenaBytes, 1));
  frameLimit_ = arenaBytes_ + (std::size_t{16} << 20);
  // A worker dying mid-read must surface as EPIPE on our next write, not as
  // a process-fatal SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  slots_.resize(static_cast<std::size_t>(workers));
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    void* mem = ::mmap(nullptr, arenaBytes_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) {
      const int err = errno;
      for (std::size_t j = 0; j < i; ++j) {
        ::munmap(slots_[j].arena, arenaBytes_);
        slots_[j].arena = nullptr;
      }
      throw std::runtime_error(std::string("worker arena mmap failed: ") +
                               std::strerror(err));
    }
    slots_[i].arena = static_cast<std::uint8_t*>(mem);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (int i = 0; i < workers; ++i) {
    if (!spawnLocked(i)) {
      EC_LOG_WARN("worker " << i << " failed to spawn; will retry on demand");
    }
  }
}

WorkerPool::~WorkerPool() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Close the request pipes: idle workers see EOF and _exit(0).
  for (Slot& s : slots_) {
    if (s.reqWrite >= 0) {
      ::close(s.reqWrite);
      s.reqWrite = -1;
    }
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (Slot& s : slots_) {
    if (s.pid <= 0) continue;
    bool killed = false;
    for (;;) {
      int status = 0;
      const pid_t rc = ::waitpid(s.pid, &status, killed ? 0 : WNOHANG);
      if (rc == s.pid) break;
      if (rc < 0 && errno == EINTR) continue;
      if (rc < 0) break;  // already reaped elsewhere / no such child
      // rc == 0: still running. A worker stuck mid-request (a hung handler
      // abandoned at interrupt) never sees the EOF, so escalate to SIGKILL
      // once the grace period passes — interrupted runs must leave no
      // orphans.
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(s.pid, SIGKILL);
        killed = true;
        continue;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    s.pid = -1;
    aliveCount_.fetch_sub(1, std::memory_order_relaxed);
    if (s.respRead >= 0) {
      ::close(s.respRead);
      s.respRead = -1;
    }
  }
  for (Slot& s : slots_) {
    if (s.arena != nullptr) {
      ::munmap(s.arena, arenaBytes_);
      s.arena = nullptr;
    }
  }
}

bool WorkerPool::spawnLocked(int slot) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (s.pid > 0) return true;
  int req[2] = {-1, -1};
  int resp[2] = {-1, -1};
  if (::pipe(req) != 0) return false;
  if (::pipe(resp) != 0) {
    ::close(req[0]);
    ::close(req[1]);
    return false;
  }
  if (hooks_.prepare) hooks_.prepare();
  const pid_t parentPid = ::getpid();
  const pid_t pid = ::fork();
  if (pid < 0) {
    if (hooks_.parent) hooks_.parent();
    ::close(req[0]);
    ::close(req[1]);
    ::close(resp[0]);
    ::close(resp[1]);
    return false;
  }
  if (pid == 0) {
    // ---- child ----
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() != parentPid) ::_exit(0);  // parent died before prctl
    // ^C and graceful shutdown are the parent's decisions: it drains
    // in-flight trials, then reaps us (EOF or SIGKILL).
    ::signal(SIGINT, SIG_IGN);
    ::signal(SIGTERM, SIG_IGN);
    if (hooks_.child) hooks_.child(slot);
    ::close(req[1]);
    ::close(resp[0]);
    // Drop every other slot's parent-side pipe ends: a sibling holding a
    // write end open would defeat EOF detection when that slot's worker
    // dies.
    for (const Slot& other : slots_) {
      if (other.reqWrite >= 0) ::close(other.reqWrite);
      if (other.respRead >= 0) ::close(other.respRead);
    }
    childMain(slot, req[0], resp[1]);
  }
  // ---- parent ----
  if (hooks_.parent) hooks_.parent();
  ::close(req[0]);
  ::close(resp[1]);
  s.pid = pid;
  s.reqWrite = req[1];
  s.respRead = resp[0];
  aliveCount_.fetch_add(1, std::memory_order_relaxed);
  spawnCount_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void WorkerPool::childMain(int slot, int reqRead, int respWrite) {
  ChildChannel ch;
  ch.reqFd_ = reqRead;
  ch.respFd_ = respWrite;
  ch.arena_ = slots_[static_cast<std::size_t>(slot)].arena;
  ch.arenaBytes_ = arenaBytes_;
  for (;;) {
    std::string request;
    if (!readFrameBlocking(reqRead, request, frameLimit_)) {
      ::_exit(0);  // clean shutdown: parent closed the request pipe
    }
    try {
      handler_(slot, request, ch);
    } catch (const std::bad_alloc&) {
      ::_exit(kWorkerOomExit);
    } catch (...) {
      // The handler contract is to report failures through the protocol;
      // an escaped exception is a harness bug surfaced as a protocol death.
      ::_exit(kHandlerEscapeExit);
    }
  }
}

bool WorkerPool::send(int slot, const std::string& frame) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (s.pid <= 0 || s.reqWrite < 0) return false;
  if (frame.size() > frameLimit_) return false;
  return writeFrame(s.reqWrite, frame);
}

WorkerPool::Reply WorkerPool::recv(int slot, std::chrono::milliseconds deadline) {
  Reply reply;
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (s.pid <= 0) {
    reply.death = WorkerDeath::Protocol;
    return reply;
  }
  std::optional<std::chrono::steady_clock::time_point> deadlineTp;
  if (deadline.count() > 0) {
    deadlineTp = std::chrono::steady_clock::now() + deadline;
  }
  std::uint8_t lenBuf[4];
  IoResult r = readExact(s.respRead, lenBuf, sizeof lenBuf, deadlineTp);
  if (r == IoResult::Ok) {
    const std::uint32_t len = loadLe32(lenBuf);
    if (len > frameLimit_) {
      // Garbage length prefix (e.g. a wild write tore the stream): the
      // worker is alive but the stream is unrecoverable.
      std::lock_guard<std::mutex> lock(mutex_);
      killLocked(slot);
      reapLocked(slot, reply);
      reply.death = WorkerDeath::Protocol;
      return reply;
    }
    reply.frame.resize(len);
    r = len == 0 ? IoResult::Ok
                 : readExact(s.respRead, reply.frame.data(), len, deadlineTp);
    if (r == IoResult::Ok) {
      reply.ok = true;
      return reply;
    }
    reply.frame.clear();
  }
  if (r == IoResult::Timeout) {
    // Deadline enforcement is a hard SIGKILL: even a worker hung in an
    // infinite loop that never reaches a cooperative poll is reclaimed.
    std::lock_guard<std::mutex> lock(mutex_);
    killLocked(slot);
    reapLocked(slot, reply);
    reply.timedOut = true;
    return reply;
  }
  // Eof or read error: the worker died (or tore the stream mid-frame).
  std::lock_guard<std::mutex> lock(mutex_);
  reapLocked(slot, reply);
  if (reply.death == WorkerDeath::None) reply.death = WorkerDeath::Protocol;
  return reply;
}

bool WorkerPool::ensureWorker(int slot, bool* respawned) {
  std::lock_guard<std::mutex> lock(mutex_);
  const bool wasDead = slots_[static_cast<std::size_t>(slot)].pid <= 0;
  const bool ok = spawnLocked(slot);
  if (respawned != nullptr) *respawned = wasDead && ok;
  return ok;
}

bool WorkerPool::alive(int slot) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_[static_cast<std::size_t>(slot)].pid > 0;
}

pid_t WorkerPool::pid(int slot) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_[static_cast<std::size_t>(slot)].pid;
}

void WorkerPool::kill(int slot) {
  Reply discard;
  std::lock_guard<std::mutex> lock(mutex_);
  killLocked(slot);
  reapLocked(slot, discard);
}

void WorkerPool::killAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (int i = 0; i < workers(); ++i) killLocked(i);
  for (int i = 0; i < workers(); ++i) {
    Reply discard;
    reapLocked(i, discard);
  }
}

std::uint8_t* WorkerPool::arena(int slot) {
  return slots_[static_cast<std::size_t>(slot)].arena;
}

void WorkerPool::killLocked(int slot) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (s.pid > 0) ::kill(s.pid, SIGKILL);
}

void WorkerPool::reapLocked(int slot, Reply& reply) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (s.pid <= 0) return;
  int status = 0;
  pid_t rc;
  do {
    rc = ::waitpid(s.pid, &status, 0);
  } while (rc < 0 && errno == EINTR);
  if (rc == s.pid) {
    if (WIFSIGNALED(status)) {
      reply.signal = WTERMSIG(status);
      reply.death =
          reply.signal == SIGKILL ? WorkerDeath::Killed : WorkerDeath::Crashed;
    } else if (WIFEXITED(status)) {
      reply.exitStatus = WEXITSTATUS(status);
      reply.death = reply.exitStatus == kWorkerOomExit ? WorkerDeath::Oom
                                                       : WorkerDeath::Protocol;
    } else {
      reply.death = WorkerDeath::Protocol;
    }
  } else {
    reply.death = WorkerDeath::Protocol;
  }
  if (s.reqWrite >= 0) {
    ::close(s.reqWrite);
    s.reqWrite = -1;
  }
  if (s.respRead >= 0) {
    ::close(s.respRead);
    s.respRead = -1;
  }
  s.pid = -1;
  aliveCount_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace easycrash::crash
