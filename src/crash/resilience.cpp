#include "easycrash/crash/resilience.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "easycrash/common/check.hpp"
#include "easycrash/common/rng.hpp"
#include "easycrash/telemetry/json.hpp"
#include "easycrash/telemetry/log.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace easycrash::crash {

namespace json = telemetry::json;

// ---- Graceful interruption ---------------------------------------------------

namespace {

std::atomic<bool> g_stopRequested{false};
std::atomic<int> g_stopSignal{0};

extern "C" void stopSignalHandler(int sig) {
  // Only async-signal-safe work: set lock-free flags; workers notice at the
  // next trial boundary (or tracked access, via the campaign's stop check).
  g_stopSignal.store(sig, std::memory_order_relaxed);
  g_stopRequested.store(true, std::memory_order_relaxed);
}

}  // namespace

void installStopSignalHandlers() {
  std::signal(SIGINT, stopSignalHandler);
  std::signal(SIGTERM, stopSignalHandler);
}

void requestStop() noexcept { g_stopRequested.store(true, std::memory_order_relaxed); }

bool stopRequested() noexcept {
  return g_stopRequested.load(std::memory_order_relaxed);
}

int stopSignal() noexcept { return g_stopSignal.load(std::memory_order_relaxed); }

void clearStopFlag() noexcept {
  g_stopRequested.store(false, std::memory_order_relaxed);
  g_stopSignal.store(0, std::memory_order_relaxed);
}

// ---- Watchdog ---------------------------------------------------------------

namespace {

std::int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Watchdog::Watchdog(std::chrono::milliseconds timeout, int slots)
    : timeout_(timeout) {
  EC_CHECK(timeout.count() > 0);
  EC_CHECK(slots > 0);
  slots_.reserve(static_cast<std::size_t>(slots));
  for (int s = 0; s < slots; ++s) slots_.push_back(std::make_unique<Slot>());
  monitor_ = std::thread([this] { monitorLoop(); });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  monitor_.join();
}

std::atomic<bool>& Watchdog::arm(int slot, double budgetFactor) {
  Slot& s = *slots_[static_cast<std::size_t>(slot)];
  const double factor = std::max(1.0, budgetFactor);
  const auto budgetNs = static_cast<std::int64_t>(
      static_cast<double>(timeout_.count()) * 1'000'000.0 * factor);
  s.cancel.store(false, std::memory_order_relaxed);
  s.deadlineNs.store(steadyNowNs() + budgetNs, std::memory_order_release);
  return s.cancel;
}

bool Watchdog::disarm(int slot) {
  Slot& s = *slots_[static_cast<std::size_t>(slot)];
  s.deadlineNs.store(0, std::memory_order_relaxed);
  return s.cancel.load(std::memory_order_relaxed);
}

void Watchdog::monitorLoop() {
  const auto period = std::clamp<std::chrono::milliseconds>(
      timeout_ / 4, std::chrono::milliseconds(2), std::chrono::milliseconds(50));
  std::unique_lock<std::mutex> lock(mutex_);
  while (!shutdown_) {
    cv_.wait_for(lock, period);
    if (shutdown_) return;
    const std::int64_t now = steadyNowNs();
    for (auto& slot : slots_) {
      const std::int64_t deadline = slot->deadlineNs.load(std::memory_order_acquire);
      if (deadline != 0 && now > deadline) {
        slot->cancel.store(true, std::memory_order_relaxed);
        slot->deadlineNs.store(0, std::memory_order_relaxed);  // fire once
      }
    }
  }
}

// ---- Atomic file replacement -------------------------------------------------

namespace {

/// One write-temp-fsync-rename attempt; returns an error description or "".
std::string tryWriteOnce(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return "open " + tmp + ": " + std::strerror(errno);
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::string("write ") + tmp + ": " + std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return err;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::string("fsync ") + tmp + ": " + std::strerror(errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return err;
  }
  if (::close(fd) != 0) return "close " + tmp + ": " + std::strerror(errno);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err =
        "rename " + tmp + " -> " + path + ": " + std::strerror(errno);
    ::unlink(tmp.c_str());
    return err;
  }
  return {};
}

}  // namespace

namespace {

/// One append-fsync attempt onto an existing file; returns an error
/// description or "". A failure can leave a torn final line — callers
/// recover by rewriting the whole file atomically, and readers tolerate the
/// torn tail in the meantime.
std::string tryAppendOnce(const std::string& path, const std::string& content) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) return "open " + path + ": " + std::strerror(errno);
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::string("write ") + path + ": " + std::strerror(errno);
      ::close(fd);
      return err;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::string("fsync ") + path + ": " + std::strerror(errno);
    ::close(fd);
    return err;
  }
  if (::close(fd) != 0) return "close " + path + ": " + std::strerror(errno);
  return {};
}

}  // namespace

void atomicWriteFile(const std::string& path, const std::string& content) {
  std::string err = tryWriteOnce(path, content);
  if (err.empty()) return;
  EC_LOG_WARN("atomic write of " << path << " failed (" << err << "), retrying once");
  err = tryWriteOnce(path, content);
  if (!err.empty()) {
    throw std::runtime_error("atomic write of " + path + " failed twice: " + err);
  }
}

// ---- Journal serialization ---------------------------------------------------

namespace {

/// Shortest representation that strtod parses back to the same double.
void appendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void appendQuoted(std::string& out, std::string_view s) {
  out += '"';
  telemetry::appendJsonEscaped(out, s);
  out += '"';
}

Response responseFromString(const std::string& text) {
  if (text == "S1") return Response::S1;
  if (text == "S2") return Response::S2;
  if (text == "S3") return Response::S3;
  if (text == "S4") return Response::S4;
  throw std::runtime_error("journal: unknown response class '" + text + "'");
}

std::string serializeHeader(const JournalHeader& h) {
  std::string line = "{\"type\":\"campaign_header\",\"app\":";
  appendQuoted(line, h.app);
  line += ",\"seed\":" + std::to_string(h.seed);
  line += ",\"tests\":" + std::to_string(h.tests);
  line += ",\"mode\":";
  appendQuoted(line, h.mode);
  // Quoted: the fingerprint is a full 64-bit hash and must not round-trip
  // through the JSON reader's double representation (2^53 mantissa).
  line += ",\"plan_fingerprint\":\"" + std::to_string(h.planFingerprint) + '"';
  line += ",\"window_accesses\":" + std::to_string(h.windowAccesses);
  // Only sampled campaigns stamp the monitor mode: full-mode journals stay
  // byte-identical to journals written before the field existed.
  if (!h.monitor.empty()) {
    line += ",\"monitor\":";
    appendQuoted(line, h.monitor);
  }
  // Shard header segment, only when sharded: unsharded journals keep the
  // exact legacy bytes, so a merged journal (whose header is unsharded) is
  // byte-comparable against a single-machine run's journal.
  if (h.shardCount > 1) {
    line += ",\"shard\":" + std::to_string(h.shardIndex);
    line += ",\"shards\":" + std::to_string(h.shardCount);
    // Quoted for the same 2^53-mantissa reason as plan_fingerprint.
    line += ",\"campaign_hash\":\"" + std::to_string(h.campaignHash) + '"';
    line += ",\"objects\":[";
    bool first = true;
    for (const JournalCandidate& candidate : h.candidates) {
      if (!first) line += ',';
      first = false;
      line += "{\"id\":" + std::to_string(candidate.id) + ",\"name\":";
      appendQuoted(line, candidate.name);
      line += '}';
    }
    line += ']';
  }
  // Declares the append-only segment discipline: records after the base
  // segment may repeat or reorder test indices (last one wins on load).
  // Legacy journals lack the field and stay strictly index-sorted.
  line += ",\"format\":\"segments\"";
  line += "}\n";
  return line;
}

std::string serializeTrial(std::size_t trial, const CrashTestRecord& r) {
  std::string line = "{\"type\":\"trial\",\"trial\":" + std::to_string(trial);
  line += ",\"crash_access\":" + std::to_string(r.crashAccessIndex);
  line += ",\"region\":" + std::to_string(r.region);
  line += ",\"region_path\":[";
  for (std::size_t i = 0; i < r.regionPath.size(); ++i) {
    if (i) line += ',';
    line += std::to_string(r.regionPath[i]);
  }
  line += "],\"crash_iteration\":" + std::to_string(r.crashIteration);
  line += ",\"restart_iteration\":" + std::to_string(r.restartIteration);
  line += ",\"response\":";
  appendQuoted(line, toString(r.response));
  line += ",\"extra_iterations\":" + std::to_string(r.extraIterations);
  line += ",\"rates\":{";
  bool first = true;
  for (const auto& [id, rate] : r.inconsistentRate) {
    if (!first) line += ',';
    first = false;
    line += '"' + std::to_string(id) + "\":";
    appendDouble(line, rate);
  }
  line += "},\"note\":";
  appendQuoted(line, r.note);
  line += "}\n";
  return line;
}

std::string serializeFailure(const TrialFailure& f) {
  std::string line =
      "{\"type\":\"trial_failure\",\"trial\":" + std::to_string(f.trial);
  line += ",\"crash_access\":" + std::to_string(f.crashAccessIndex);
  line += ",\"timeout\":";
  line += f.timeout ? "true" : "false";
  line += ",\"kind\":";
  appendQuoted(line, f.kind);
  line += ",\"attempts\":" + std::to_string(f.attempts);
  line += ",\"reason\":";
  appendQuoted(line, f.reason);
  line += ",\"region_path\":";
  appendQuoted(line, f.regionPath);
  line += "}\n";
  return line;
}

// -- parsing helpers; all throw with the journal line context ----------------

const json::Value& member(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) {
    throw std::runtime_error(std::string("journal: missing field \"") + key + '"');
  }
  return *v;
}

double num(const json::Value& obj, const char* key) {
  const json::Value& v = member(obj, key);
  if (!v.isNumber()) {
    throw std::runtime_error(std::string("journal: field \"") + key +
                             "\" is not a number");
  }
  return v.number;
}

std::string str(const json::Value& obj, const char* key) {
  const json::Value& v = member(obj, key);
  if (!v.isString()) {
    throw std::runtime_error(std::string("journal: field \"") + key +
                             "\" is not a string");
  }
  return v.string;
}

CrashTestRecord parseTrial(const json::Value& obj, std::size_t* trial) {
  *trial = static_cast<std::size_t>(num(obj, "trial"));
  CrashTestRecord r;
  r.crashAccessIndex = static_cast<std::uint64_t>(num(obj, "crash_access"));
  r.region = static_cast<runtime::PointId>(num(obj, "region"));
  const json::Value& path = member(obj, "region_path");
  if (path.kind != json::Value::Kind::Array) {
    throw std::runtime_error("journal: \"region_path\" is not an array");
  }
  for (const auto& p : path.array) {
    if (!p.isNumber()) throw std::runtime_error("journal: bad region_path entry");
    r.regionPath.push_back(static_cast<runtime::PointId>(p.number));
  }
  r.crashIteration = static_cast<int>(num(obj, "crash_iteration"));
  r.restartIteration = static_cast<int>(num(obj, "restart_iteration"));
  r.response = responseFromString(str(obj, "response"));
  r.extraIterations = static_cast<int>(num(obj, "extra_iterations"));
  const json::Value& rates = member(obj, "rates");
  if (!rates.isObject()) throw std::runtime_error("journal: \"rates\" is not an object");
  for (const auto& [key, value] : rates.object) {
    if (!value.isNumber()) throw std::runtime_error("journal: bad rate for " + key);
    r.inconsistentRate[static_cast<runtime::ObjectId>(std::stoul(key))] = value.number;
  }
  r.note = str(obj, "note");
  return r;
}

TrialFailure parseFailure(const json::Value& obj) {
  TrialFailure f;
  f.trial = static_cast<std::size_t>(num(obj, "trial"));
  f.crashAccessIndex = static_cast<std::uint64_t>(num(obj, "crash_access"));
  const json::Value& timeout = member(obj, "timeout");
  if (timeout.kind != json::Value::Kind::Bool) {
    throw std::runtime_error("journal: \"timeout\" is not a bool");
  }
  f.timeout = timeout.boolean;
  // "kind" arrived with the fork evaluator; legacy journals only knew the
  // in-process failure modes, recoverable from the timeout flag.
  const json::Value* kind = obj.find("kind");
  if (kind != nullptr) {
    if (!kind->isString()) {
      throw std::runtime_error("journal: \"kind\" is not a string");
    }
    f.kind = kind->string;
  } else {
    f.kind = f.timeout ? "timeout" : "exception";
  }
  f.attempts = static_cast<int>(num(obj, "attempts"));
  f.reason = str(obj, "reason");
  f.regionPath = str(obj, "region_path");
  return f;
}

}  // namespace

std::string serializeTrialRecord(std::size_t trial, const CrashTestRecord& record) {
  return serializeTrial(trial, record);
}

std::string serializeJournalHeader(const JournalHeader& header) {
  return serializeHeader(header);
}

std::string serializeFailureRecord(const TrialFailure& failure) {
  return serializeFailure(failure);
}

std::uint64_t campaignHash(const JournalHeader& header) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mixByte = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  const auto mix = [&mixByte](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      mixByte(static_cast<std::uint8_t>((v >> (byte * 8)) & 0xff));
    }
  };
  const auto mixString = [&](const std::string& s) {
    mix(s.size());
    for (const char c : s) mixByte(static_cast<std::uint8_t>(c));
  };
  // Identity fields only — never the shard coordinates or the candidate
  // list, so all k shards of one campaign (and its unsharded run) agree.
  mixString(header.app);
  mix(header.seed);
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(header.tests)));
  mixString(header.mode);
  mix(header.planFingerprint);
  mix(header.windowAccesses);
  mixString(header.monitor);
  return h;
}

CrashTestRecord parseTrialRecord(const std::string& line, std::size_t* trial) {
  std::string error;
  const auto value = json::parse(line, &error);
  if (!value || !value->isObject()) {
    throw std::runtime_error("trial record: " +
                             (error.empty() ? "not an object" : error));
  }
  if (str(*value, "type") != "trial") {
    throw std::runtime_error("trial record: wrong type");
  }
  return parseTrial(*value, trial);
}

std::uint64_t retryBackoffMs(const ResilienceConfig& res, std::uint64_t seed,
                             std::size_t trial, int attempt) {
  if (res.retryBackoffMs == 0 || attempt < 1) return 0;
  const std::uint64_t cap =
      std::max<std::uint64_t>(res.retryBackoffMaxMs, res.retryBackoffMs);
  // base * 2^(attempt-1), saturating well before a uint64 overflow.
  const int shift = std::min(attempt - 1, 32);
  std::uint64_t backoff = res.retryBackoffMs << shift;
  if (backoff > cap || (backoff >> shift) != res.retryBackoffMs) backoff = cap;
  // Bounded jitter in [0, backoff/2], drawn from a stream keyed by (seed,
  // trial, attempt) so reruns and resumes sleep identically.
  Rng rng(seed ^ (0x9e3779b97f4a7c15ull * (trial + 1)) ^
                  (0xbf58476d1ce4e5b9ull * static_cast<std::uint64_t>(attempt)));
  const std::uint64_t jitter = rng.below(backoff / 2 + 1);
  return std::min(backoff + jitter, cap);
}

std::uint64_t planFingerprint(const runtime::PersistencePlan& plan) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(plan.flushKind));
  for (const auto& [point, directive] : plan.points) {
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(point)));
    mix(directive.everyN);
    mix(directive.atRegionEnd ? 1 : 0);
    for (const auto id : directive.objects) mix(id);
  }
  return h;
}

// ---- TrialJournal -----------------------------------------------------------

TrialJournal::TrialJournal(std::string path, const JournalHeader& header,
                           int flushEvery)
    : path_(std::move(path)),
      header_(serializeHeader(header)),
      flushEvery_(std::max(1, flushEvery)) {
  // Nothing is written yet: when resuming into the same path, the campaign
  // first re-feeds the replayed records, then flushes — the on-disk journal
  // is never cut back to a bare header in between.
}

TrialJournal::~TrialJournal() {
  try {
    close();
  } catch (const std::exception& e) {
    EC_LOG_ERROR("journal final flush failed: " << e.what());
  }
}

void TrialJournal::recordTrial(std::size_t trial, const CrashTestRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  std::string line = serializeTrial(trial, record);
  if (written_) pending_.push_back(line);
  entries_[trial] = std::move(line);
  if (++sinceFlush_ >= static_cast<std::size_t>(flushEvery_)) flushLocked();
}

void TrialJournal::recordFailure(const TrialFailure& failure) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  std::string line = serializeFailure(failure);
  if (written_) pending_.push_back(line);
  entries_[failure.trial] = std::move(line);
  if (++sinceFlush_ >= static_cast<std::size_t>(flushEvery_)) flushLocked();
}

void TrialJournal::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  flushLocked();
}

void TrialJournal::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  flushLocked();
  // A closed journal is always left fully compacted: the appended segments
  // are a mid-flight durability format, and this one O(decided) rewrite
  // makes the final file canonical — campaigns that decide the same trials
  // leave byte-identical journals regardless of decision order (the
  // sweep/threads differential fixtures compare them raw).
  if (appended_) {
    compactLocked();
    appended_ = false;
  }
  closed_ = true;
}

void TrialJournal::compactLocked() {
  // Header + every decided entry, sorted by test index, swapped in
  // atomically. Doubles as the repair path when an append fails part-way
  // (the rename replaces any torn tail).
  std::string content = header_;
  for (const auto& [trial, line] : entries_) content += line;
  atomicWriteFile(path_, content);
}

void TrialJournal::flushLocked() {
  if (sinceFlush_ == 0 && written_) return;  // nothing new since the last write
  if (!written_) {
    compactLocked();
  } else {
    // Append-only segment: just the entries decided since the last flush,
    // O(batch) instead of rewriting the O(decided) whole file. They land in
    // decision order — readers compact on load (last record per index wins).
    std::string batch;
    for (const auto& line : pending_) batch += line;
    if (!batch.empty()) {
      const std::string err = tryAppendOnce(path_, batch);
      if (!err.empty()) {
        EC_LOG_WARN("journal append to " << path_ << " failed (" << err
                                         << "), rewriting the compacted journal");
        compactLocked();
      } else {
        appended_ = true;
      }
    }
  }
  pending_.clear();
  sinceFlush_ = 0;
  written_ = true;
}

// ---- readJournal ------------------------------------------------------------

JournalReplay readJournal(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open journal " + path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  const std::string content = buffer.str();

  JournalReplay replay;
  bool sawHeader = false;
  std::size_t lineNo = 0;
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    const bool torn = nl == std::string::npos;
    const std::string line = content.substr(pos, torn ? std::string::npos : nl - pos);
    pos = torn ? content.size() : nl + 1;
    ++lineNo;
    if (line.empty()) continue;
    std::string error;
    const auto value = json::parse(line, &error);
    if (!value || !value->isObject()) {
      // The writer only renames complete files, but tolerate a torn final
      // line anyway (e.g. a journal produced by some future appending
      // writer, or a copy truncated in flight).
      if (torn) break;
      throw std::runtime_error("journal " + path + ':' + std::to_string(lineNo) +
                               ": " + (error.empty() ? "not an object" : error));
    }
    const std::string type = str(*value, "type");
    if (lineNo == 1) {
      if (type != "campaign_header") {
        throw std::runtime_error("journal " + path + ": first line is not a header");
      }
      replay.header.app = str(*value, "app");
      replay.header.seed = static_cast<std::uint64_t>(num(*value, "seed"));
      replay.header.tests = static_cast<int>(num(*value, "tests"));
      replay.header.mode = str(*value, "mode");
      replay.header.planFingerprint =
          std::stoull(str(*value, "plan_fingerprint"));
      replay.header.windowAccesses =
          static_cast<std::uint64_t>(num(*value, "window_accesses"));
      // Absent in full-mode and legacy journals (see serializeHeader).
      const json::Value* monitor = value->find("monitor");
      if (monitor != nullptr) {
        if (!monitor->isString()) {
          throw std::runtime_error("journal: \"monitor\" is not a string");
        }
        replay.header.monitor = monitor->string;
      }
      // Shard header segment — absent in unsharded journals.
      const json::Value* shards = value->find("shards");
      if (shards != nullptr) {
        if (!shards->isNumber() || shards->number < 2) {
          throw std::runtime_error("journal: \"shards\" must be >= 2");
        }
        replay.header.shardCount = static_cast<int>(shards->number);
        replay.header.shardIndex = static_cast<int>(num(*value, "shard"));
        if (replay.header.shardIndex < 0 ||
            replay.header.shardIndex >= replay.header.shardCount) {
          throw std::runtime_error("journal: \"shard\" outside [0, shards)");
        }
        try {
          replay.header.campaignHash = std::stoull(str(*value, "campaign_hash"));
        } catch (const std::exception&) {
          throw std::runtime_error(
              "journal: \"campaign_hash\" is not a 64-bit decimal");
        }
        const json::Value& objects = member(*value, "objects");
        if (objects.kind != json::Value::Kind::Array) {
          throw std::runtime_error("journal: \"objects\" is not an array");
        }
        for (const auto& object : objects.array) {
          if (!object.isObject()) {
            throw std::runtime_error("journal: bad \"objects\" entry");
          }
          JournalCandidate candidate;
          candidate.id = static_cast<runtime::ObjectId>(num(object, "id"));
          candidate.name = str(object, "name");
          replay.header.candidates.push_back(std::move(candidate));
        }
      }
      sawHeader = true;
      continue;
    }
    if (type == "trial") {
      std::size_t trial = 0;
      CrashTestRecord record = parseTrial(*value, &trial);
      // Compact on load: appended segments may carry several records for
      // one index (e.g. a re-decided trial after a resume); the last wins.
      replay.trials.insert_or_assign(trial, std::move(record));
    } else if (type == "trial_failure") {
      TrialFailure failure = parseFailure(*value);
      replay.failures.insert_or_assign(failure.trial, std::move(failure));
    }
    // Unknown types are skipped: the journal is allowed to grow new record
    // kinds without invalidating older readers.
  }
  if (!sawHeader) throw std::runtime_error("journal " + path + ": empty");
  return replay;
}

}  // namespace easycrash::crash
