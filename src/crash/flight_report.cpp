#include "easycrash/crash/flight_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "easycrash/crash/report.hpp"
#include "easycrash/crash/resilience.hpp"
#include "easycrash/telemetry/json.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace easycrash::crash {

namespace {

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

std::string regionLabel(runtime::PointId region) {
  if (region == runtime::kMainLoopEnd) return "main";
  std::string label = "R";
  label += std::to_string(region);
  return label;
}

/// Nearest-rank percentile of an ascending-sorted sample.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// Spatial bins -> fixed ASCII ramp. '.' is zero; non-zero counts scale
/// linearly into the remaining eight glyphs against the row maximum, so the
/// shape (not the magnitude) of the distribution is what the eye compares.
std::string heatmap(const std::vector<double>& bins) {
  static constexpr char kRamp[] = ".:-=+*#%@";
  double max = 0.0;
  for (const double v : bins) max = std::max(max, v);
  std::string out;
  out.reserve(bins.size());
  for (const double v : bins) {
    if (v <= 0.0 || max <= 0.0) {
      out += kRamp[0];
    } else {
      const auto idx = 1 + static_cast<std::size_t>(v / max * 7.0);
      out += kRamp[std::min<std::size_t>(8, idx)];
    }
  }
  return out;
}

std::string readWholeFile(const std::string& path, const char* what) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(std::string("cannot open ") + what + ": " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Per-object profile row parsed back out of the metrics "profile" section.
struct ProfileRow {
  std::uint32_t id = 0;
  std::string name;
  std::uint64_t bytes = 0;
  std::uint64_t accesses = 0;
  std::uint64_t nvmWrites = 0;
  std::vector<double> accessBins;
  std::vector<double> wearBins;
};

struct ParsedProfile {
  std::uint64_t strideBytes = 0;
  std::uint64_t runs = 0;
  std::vector<ProfileRow> objects;
  std::map<runtime::PointId, std::uint64_t> regionAccesses;
};

std::vector<double> numberArray(const telemetry::json::Value* v) {
  std::vector<double> out;
  if (v == nullptr) return out;
  for (const auto& entry : v->array) {
    if (entry.isNumber()) out.push_back(entry.number);
  }
  return out;
}

std::optional<ParsedProfile> parseProfileSection(const std::string& metricsPath) {
  const std::string text = readWholeFile(metricsPath, "metrics snapshot");
  std::string error;
  const auto doc = telemetry::json::parse(text, &error);
  if (!doc || !doc->isObject()) {
    throw std::runtime_error("malformed metrics snapshot " + metricsPath +
                             (error.empty() ? "" : ": " + error));
  }
  const auto* profile = doc->find("profile");
  if (profile == nullptr || !profile->isObject()) return std::nullopt;
  ParsedProfile out;
  if (const auto* stride = profile->find("stride_bytes"); stride && stride->isNumber()) {
    out.strideBytes = static_cast<std::uint64_t>(stride->number);
  }
  if (const auto* runs = profile->find("runs"); runs && runs->isNumber()) {
    out.runs = static_cast<std::uint64_t>(runs->number);
  }
  if (const auto* objects = profile->find("objects")) {
    for (const auto& object : objects->array) {
      if (!object.isObject()) continue;
      ProfileRow row;
      if (const auto* id = object.find("id"); id && id->isNumber()) {
        row.id = static_cast<std::uint32_t>(id->number);
      }
      if (const auto* name = object.find("name"); name && name->isString()) {
        row.name = name->string;
      }
      if (const auto* bytes = object.find("bytes"); bytes && bytes->isNumber()) {
        row.bytes = static_cast<std::uint64_t>(bytes->number);
      }
      if (const auto* a = object.find("accesses"); a && a->isNumber()) {
        row.accesses = static_cast<std::uint64_t>(a->number);
      }
      if (const auto* w = object.find("nvm_writes"); w && w->isNumber()) {
        row.nvmWrites = static_cast<std::uint64_t>(w->number);
      }
      row.accessBins = numberArray(object.find("access_bins"));
      row.wearBins = numberArray(object.find("wear_bins"));
      out.objects.push_back(std::move(row));
    }
  }
  if (const auto* regions = profile->find("regions")) {
    for (const auto& region : regions->array) {
      if (!region.isObject()) continue;
      const auto* id = region.find("region");
      const auto* accesses = region.find("accesses");
      if (id != nullptr && id->isNumber() && accesses != nullptr &&
          accesses->isNumber()) {
        out.regionAccesses[static_cast<runtime::PointId>(id->number)] =
            static_cast<std::uint64_t>(accesses->number);
      }
    }
  }
  return out;
}

/// phase -> ascending duration_ns samples from the trace's phase_end events.
std::map<std::string, std::vector<double>> parsePhaseDurations(
    const std::string& tracePath) {
  const std::string text = readWholeFile(tracePath, "trace");
  std::map<std::string, std::vector<double>> phases;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    const auto value = telemetry::json::parse(line);
    if (!value || !value->isObject()) continue;
    const auto* type = value->find("type");
    if (type == nullptr || !type->isString() || type->string != "phase_end") continue;
    const auto* phase = value->find("phase");
    const auto* duration = value->find("duration_ns");
    if (phase == nullptr || !phase->isString() || duration == nullptr ||
        !duration->isNumber()) {
      continue;
    }
    phases[phase->string].push_back(duration->number);
  }
  for (auto& [phase, durations] : phases) {
    std::sort(durations.begin(), durations.end());
  }
  return phases;
}

}  // namespace

std::string campaignProfileJson(const CampaignProfile& profile) {
  std::string out = "{\"stride_bytes\":";
  out += std::to_string(profile.strideBytes);
  out += ",\"runs\":";
  out += std::to_string(profile.runs);
  out += ",\"objects\":[";
  bool first = true;
  for (const runtime::ObjectProfile& object : profile.objects) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":";
    out += std::to_string(object.id);
    out += ",\"name\":\"";
    telemetry::appendJsonEscaped(out, object.name);
    out += "\",\"bytes\":";
    out += std::to_string(object.bytes);
    out += ",\"accesses\":";
    out += std::to_string(object.accesses);
    out += ",\"nvm_writes\":";
    out += std::to_string(object.nvmWrites);
    out += ",\"access_bins\":[";
    for (std::size_t b = 0; b < object.accessBins.size(); ++b) {
      if (b) out += ',';
      out += std::to_string(object.accessBins[b]);
    }
    out += "],\"wear_bins\":[";
    for (std::size_t b = 0; b < object.wearBins.size(); ++b) {
      if (b) out += ',';
      out += std::to_string(object.wearBins[b]);
    }
    out += "]}";
  }
  out += "],\"regions\":[";
  first = true;
  for (const auto& [region, accesses] : profile.regionAccesses) {
    if (!first) out += ',';
    first = false;
    out += "{\"region\":";
    out += std::to_string(region);
    out += ",\"accesses\":";
    out += std::to_string(accesses);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string renderFlightReport(const FlightReportInputs& inputs) {
  return renderFlightReport(readJournal(inputs.journalPath), inputs.tracePath,
                            inputs.metricsPath);
}

std::string renderFlightReport(const JournalReplay& journal,
                               const std::string& tracePath,
                               const std::string& metricsPath) {
  const FlightReportInputs inputs{"", tracePath, metricsPath};

  std::ostringstream md;
  md << "# nvct campaign report\n\n";

  // --- Campaign identity (all from the journal header) --------------------
  md << "## Campaign\n\n";
  md << "- app: `" << journal.header.app << "`\n";
  md << "- seed: " << journal.header.seed << "\n";
  md << "- planned tests: " << journal.header.tests << "\n";
  md << "- snapshot mode: " << journal.header.mode << "\n";
  char fingerprint[32];
  std::snprintf(fingerprint, sizeof fingerprint, "%016llx",
                static_cast<unsigned long long>(journal.header.planFingerprint));
  md << "- plan fingerprint: `" << fingerprint << "`\n";
  md << "- golden window accesses: " << journal.header.windowAccesses << "\n";
  md << "- decided trials: " << journal.trials.size() << "\n";
  md << "- failed trials: " << journal.failures.size() << "\n\n";

  // --- S1-S4 outcome summary ----------------------------------------------
  std::array<int, 4> counts{};
  long long extraIterations = 0;
  int s2Tests = 0;
  for (const auto& [trial, record] : journal.trials) {
    counts[static_cast<std::size_t>(record.response)] += 1;
    if (record.response == Response::S2) {
      extraIterations += record.extraIterations;
      ++s2Tests;
    }
  }
  const double decided = static_cast<double>(journal.trials.size());
  md << "## Outcomes\n\n";
  md << "| response | trials | share |\n|---|---:|---:|\n";
  for (int s = 0; s < 4; ++s) {
    const int count = counts[static_cast<std::size_t>(s)];
    md << "| S" << (s + 1) << " | " << count << " | "
       << fmt("%.1f%%", decided > 0 ? 100.0 * count / decided : 0.0) << " |\n";
  }
  md << "\n";
  md << "- recomputability (S1 share): "
     << fmt("%.4f", decided > 0 ? counts[0] / decided : 0.0) << "\n";
  md << "- success incl. extra iterations (S1+S2): "
     << fmt("%.4f", decided > 0 ? (counts[0] + counts[1]) / decided : 0.0) << "\n";
  md << "- average extra iterations over S2: "
     << fmt("%.2f", s2Tests > 0 ? static_cast<double>(extraIterations) / s2Tests : 0.0)
     << "\n\n";

  // --- Per-region breakdown (Table 1 style) -------------------------------
  struct RegionStats {
    int trials = 0;
    std::array<int, 4> counts{};
    long long extraIterations = 0;
  };
  std::map<std::string, RegionStats> regions;  // keyed by formatted path
  for (const auto& [trial, record] : journal.trials) {
    RegionStats& stats = regions[formatRegionPath(record.regionPath)];
    stats.trials += 1;
    stats.counts[static_cast<std::size_t>(record.response)] += 1;
    if (record.response == Response::S2) {
      stats.extraIterations += record.extraIterations;
    }
  }
  md << "## Per-region outcomes\n\n";
  md << "| region | trials | S1 | S2 | S3 | S4 | recomputability | avg extra iters |\n";
  md << "|---|---:|---:|---:|---:|---:|---:|---:|\n";
  for (const auto& [region, stats] : regions) {
    md << "| `" << region << "` | " << stats.trials;
    for (int s = 0; s < 4; ++s) md << " | " << stats.counts[static_cast<std::size_t>(s)];
    md << " | "
       << fmt("%.4f", static_cast<double>(stats.counts[0]) / stats.trials) << " | "
       << fmt("%.2f", stats.counts[1] > 0
                          ? static_cast<double>(stats.extraIterations) / stats.counts[1]
                          : 0.0)
       << " |\n";
  }
  md << "\n";

  // --- Per-object inconsistency rates -------------------------------------
  std::optional<ParsedProfile> profile;
  if (!inputs.metricsPath.empty()) profile = parseProfileSection(inputs.metricsPath);
  const auto objectName = [&](runtime::ObjectId id) {
    if (profile) {
      for (const ProfileRow& row : profile->objects) {
        if (row.id == id) return row.name;
      }
    }
    return "obj" + std::to_string(id);
  };

  struct RateStats {
    double sum = 0.0;
    double max = 0.0;
    int samples = 0;
  };
  std::map<runtime::ObjectId, RateStats> rates;
  for (const auto& [trial, record] : journal.trials) {
    for (const auto& [id, rate] : record.inconsistentRate) {
      RateStats& stats = rates[id];
      stats.sum += rate;
      stats.max = std::max(stats.max, rate);
      stats.samples += 1;
    }
  }
  md << "## Inconsistency rates\n\n";
  if (rates.empty()) {
    md << "No per-object rates recorded in the journal.\n\n";
  } else {
    md << "| object | samples | mean rate | max rate |\n|---|---:|---:|---:|\n";
    for (const auto& [id, stats] : rates) {
      md << "| `" << objectName(id) << "` | " << stats.samples << " | "
         << fmt("%.4f", stats.sum / stats.samples) << " | "
         << fmt("%.4f", stats.max) << " |\n";
    }
    md << "\n";
  }

  // --- Phase latencies (trace only) ---------------------------------------
  if (!inputs.tracePath.empty()) {
    const auto phases = parsePhaseDurations(inputs.tracePath);
    md << "## Phase latencies\n\n";
    if (phases.empty()) {
      md << "No phase_end events in the trace.\n\n";
    } else {
      md << "| phase | spans | p50 ms | p90 ms | p99 ms | max ms |\n";
      md << "|---|---:|---:|---:|---:|---:|\n";
      for (const auto& [phase, durations] : phases) {
        constexpr double kMs = 1e6;
        md << "| `" << phase << "` | " << durations.size() << " | "
           << fmt("%.3f", percentile(durations, 50.0) / kMs) << " | "
           << fmt("%.3f", percentile(durations, 90.0) / kMs) << " | "
           << fmt("%.3f", percentile(durations, 99.0) / kMs) << " | "
           << fmt("%.3f", durations.back() / kMs) << " |\n";
      }
      md << "\n";
    }
  }

  // --- Access/wear heatmap (metrics profile only) --------------------------
  if (profile) {
    md << "## Access/wear profile\n\n";
    md << "Sampled block touches per " << profile->strideBytes
       << "-byte stride over " << profile->runs
       << " simulated runs; each heatmap cell is one equal-width spatial bin "
          "of the object, scaled to its row maximum (`.` = cold, `@` = "
          "hottest).\n\n";
    md << "| object | bytes | touches | nvm writes | access | wear |\n";
    md << "|---|---:|---:|---:|---|---|\n";
    for (const ProfileRow& row : profile->objects) {
      md << "| `" << row.name << "` | " << row.bytes << " | " << row.accesses
         << " | " << row.nvmWrites << " | `" << heatmap(row.accessBins)
         << "` | `" << heatmap(row.wearBins) << "` |\n";
    }
    md << "\n";
    if (!profile->regionAccesses.empty()) {
      std::uint64_t totalAccesses = 0;
      for (const auto& [region, accesses] : profile->regionAccesses) {
        totalAccesses += accesses;
      }
      md << "### Region access shares\n\n";
      md << "| region | accesses | share |\n|---|---:|---:|\n";
      for (const auto& [region, accesses] : profile->regionAccesses) {
        md << "| `" << regionLabel(region) << "` | " << accesses << " | "
           << fmt("%.1f%%", totalAccesses > 0
                                ? 100.0 * static_cast<double>(accesses) /
                                      static_cast<double>(totalAccesses)
                                : 0.0)
           << " |\n";
      }
      md << "\n";
    }
  }

  // --- Failures -------------------------------------------------------------
  if (!journal.failures.empty()) {
    md << "## Failed trials\n\n";
    md << "| trial | crash access | timeout | attempts | region | reason |\n";
    md << "|---:|---:|---|---:|---|---|\n";
    for (const auto& [trial, failure] : journal.failures) {
      md << "| " << trial << " | " << failure.crashAccessIndex << " | "
         << (failure.timeout ? "yes" : "no") << " | " << failure.attempts
         << " | `" << (failure.regionPath.empty() ? "?" : failure.regionPath)
         << "` | " << failure.reason << " |\n";
    }
    md << "\n";
  }

  return md.str();
}

}  // namespace easycrash::crash
