#include "easycrash/crash/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "easycrash/common/check.hpp"
#include "easycrash/common/rng.hpp"
#include "easycrash/crash/report.hpp"
#include "easycrash/crash/resilience.hpp"
#include "easycrash/crash/status.hpp"
#include "easycrash/runtime/runtime.hpp"
#include "easycrash/telemetry/log.hpp"
#include "easycrash/telemetry/metrics.hpp"
#include "easycrash/telemetry/phase_span.hpp"
#include "easycrash/telemetry/progress.hpp"
#include "easycrash/telemetry/timer.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace easycrash::crash {

using runtime::CrashEvent;
using runtime::Driver;
using runtime::Runtime;

namespace {

/// Mirrors of the MemEvents counters, accumulated over every run a campaign
/// simulates (golden + each trial's crashing and restart runs). These are
/// the `memsim.*` counters in --metrics-out; their names match the
/// MemEvents fields so a metrics snapshot correlates 1:1 with Table 4.
struct CampaignMetrics {
  telemetry::Counter& loads;
  telemetry::Counter& stores;
  telemetry::Counter& nvmBlockReads;
  telemetry::Counter& nvmBlockWrites;
  telemetry::Counter& flushDirty;
  telemetry::Counter& flushClean;
  telemetry::Counter& flushNonResident;
  telemetry::Counter& flushInducedNvmWrites;
  telemetry::Counter& rangeLoads;
  telemetry::Counter& rangeStores;
  telemetry::Counter& rangeSplitBlocks;
  telemetry::Counter& rangeAccesses;
  telemetry::Counter& trials;
  std::array<telemetry::Counter*, 4> responses;
  telemetry::Histogram& trialUs;
  telemetry::Counter& trialFailures;
  telemetry::Counter& trialRetries;
  telemetry::Counter& trialTimeouts;
  telemetry::Counter& resumedTrials;
  telemetry::Counter& sweepRuns;
  telemetry::Counter& sweepCaptures;
  telemetry::Counter& sweepFallbacks;
  /// Flight-recorder phase latencies (telemetry::PhaseSpan): the crashing
  /// run up to the armed crash, the S1–S4 post-mortem capture, the restart.
  telemetry::Histogram& crashRunUs;
  telemetry::Histogram& postmortemUs;
  telemetry::Histogram& restartUs;
  /// Live depth of the sweep's restart hand-off queue.
  telemetry::Gauge& sweepQueueDepth;

  static CampaignMetrics& get() {
    auto& reg = telemetry::MetricsRegistry::instance();
    static CampaignMetrics m{
        reg.counter("memsim.loads"),
        reg.counter("memsim.stores"),
        reg.counter("memsim.nvmBlockReads"),
        reg.counter("memsim.nvmBlockWrites"),
        reg.counter("memsim.flushDirty"),
        reg.counter("memsim.flushClean"),
        reg.counter("memsim.flushNonResident"),
        reg.counter("memsim.flushInducedNvmWrites"),
        reg.counter("memsim.range_loads"),
        reg.counter("memsim.range_stores"),
        reg.counter("memsim.range_split_blocks"),
        reg.counter("campaign.range_accesses"),
        reg.counter("campaign.trials"),
        {&reg.counter("campaign.responses.s1"), &reg.counter("campaign.responses.s2"),
         &reg.counter("campaign.responses.s3"), &reg.counter("campaign.responses.s4")},
        reg.histogram("campaign.trial_us",
                      telemetry::Histogram::exponentialBounds(100.0, 4.0, 12)),
        reg.counter("campaign.trial_failures"),
        reg.counter("campaign.trial_retries"),
        reg.counter("campaign.trial_timeouts"),
        reg.counter("campaign.resumed_trials"),
        reg.counter("campaign.sweep_runs"),
        reg.counter("campaign.sweep_captures"),
        reg.counter("campaign.sweep_fallbacks"),
        reg.histogram("campaign.crash_run_us",
                      telemetry::Histogram::exponentialBounds(50.0, 4.0, 12)),
        reg.histogram("campaign.postmortem_us",
                      telemetry::Histogram::exponentialBounds(10.0, 4.0, 12)),
        reg.histogram("campaign.restart_us",
                      telemetry::Histogram::exponentialBounds(50.0, 4.0, 12)),
        reg.gauge("campaign.sweep_queue_depth")};
    return m;
  }

  void recordRun(const memsim::MemEvents& ev) {
    loads.add(ev.loads);
    stores.add(ev.stores);
    nvmBlockReads.add(ev.nvmBlockReads);
    nvmBlockWrites.add(ev.nvmBlockWrites);
    flushDirty.add(ev.flushDirty);
    flushClean.add(ev.flushClean);
    flushNonResident.add(ev.flushNonResident);
    flushInducedNvmWrites.add(ev.flushInducedNvmWrites);
    // Diagnostics of the bulk fast path (call counts, not logical accesses):
    // zero when --bulk off, so they never feed equivalence comparisons.
    rangeLoads.add(ev.rangeLoads);
    rangeStores.add(ev.rangeStores);
    rangeSplitBlocks.add(ev.rangeSplitBlocks);
    rangeAccesses.add(ev.rangeLoads + ev.rangeStores);
  }
};

/// One queued restart: a trial index plus its (possibly shared, when several
/// trials drew the same crash point) read-only capture.
struct PendingRestart {
  std::size_t trial = 0;
  std::shared_ptr<const SweepCapture> capture;
};

/// Thrown by the sweep's capture hook to end the crashing run early: a stop
/// was requested, or the restart pipeline went away (abort/budget).
struct SweepAbort {};

/// Bounded hand-off between the sweep producer (the single crashing run) and
/// the restart workers. push() blocks while full — that backpressure bounds
/// how many object snapshots are alive at once — and returns false once the
/// queue is aborted. pop() blocks for an entry and drains what was already
/// queued after close(); abort() drops everything and wakes both sides.
class RestartQueue {
 public:
  explicit RestartQueue(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool push(PendingRestart entry) {
    std::unique_lock<std::mutex> lock(mutex_);
    spaceCv_.wait(lock, [&] { return entries_.size() < capacity_ || aborted_; });
    if (aborted_) return false;
    entries_.push_back(std::move(entry));
    CampaignMetrics::get().sweepQueueDepth.set(static_cast<double>(entries_.size()));
    entryCv_.notify_one();
    return true;
  }

  [[nodiscard]] std::optional<PendingRestart> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    entryCv_.wait(lock, [&] { return !entries_.empty() || closed_ || aborted_; });
    if (aborted_ || entries_.empty()) return std::nullopt;
    PendingRestart entry = std::move(entries_.front());
    entries_.pop_front();
    CampaignMetrics::get().sweepQueueDepth.set(static_cast<double>(entries_.size()));
    spaceCv_.notify_one();
    return entry;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    entryCv_.notify_all();
  }

  void abort() {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
    entries_.clear();
    CampaignMetrics::get().sweepQueueDepth.set(0.0);
    entryCv_.notify_all();
    spaceCv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable entryCv_;
  std::condition_variable spaceCv_;
  std::deque<PendingRestart> entries_;
  const std::size_t capacity_;
  bool closed_ = false;
  bool aborted_ = false;
};

std::string responseTally(const std::array<int, 4>& counts) {
  std::string out;
  for (int s = 0; s < 4; ++s) {
    if (s) out += ' ';
    out += 'S';
    out += static_cast<char>('1' + s);
    out += ':';
    out += std::to_string(counts[s]);
  }
  return out;
}

}  // namespace

const char* toString(Response response) {
  switch (response) {
    case Response::S1: return "S1";
    case Response::S2: return "S2";
    case Response::S3: return "S3";
    case Response::S4: return "S4";
  }
  return "?";
}

double CampaignResult::recomputability() const {
  if (tests.empty()) return 0.0;
  const auto counts = responseCounts();
  return static_cast<double>(counts[0]) / static_cast<double>(tests.size());
}

double CampaignResult::successWithExtra() const {
  if (tests.empty()) return 0.0;
  const auto counts = responseCounts();
  return static_cast<double>(counts[0] + counts[1]) /
         static_cast<double>(tests.size());
}

std::array<int, 4> CampaignResult::responseCounts() const {
  std::array<int, 4> counts{};
  for (const auto& t : tests) counts[static_cast<int>(t.response)] += 1;
  return counts;
}

double CampaignResult::averageExtraIterations() const {
  int n = 0;
  long long total = 0;
  for (const auto& t : tests) {
    if (t.response == Response::S2) {
      total += t.extraIterations;
      ++n;
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(total) / n;
}

std::map<runtime::PointId, double> CampaignResult::regionRecomputability() const {
  std::map<runtime::PointId, int> s1, all;
  for (const auto& t : tests) {
    all[t.region] += 1;
    if (t.response == Response::S1) s1[t.region] += 1;
  }
  std::map<runtime::PointId, double> out;
  for (const auto& [region, n] : all) {
    out[region] = static_cast<double>(s1[region]) / static_cast<double>(n);
  }
  return out;
}

std::map<runtime::PointId, int> CampaignResult::regionTestCounts() const {
  std::map<runtime::PointId, int> all;
  for (const auto& t : tests) all[t.region] += 1;
  return all;
}

std::map<runtime::ObjectId, double> CampaignResult::meanInconsistentRate() const {
  std::map<runtime::ObjectId, double> sum;
  for (const auto& t : tests) {
    for (const auto& [id, rate] : t.inconsistentRate) sum[id] += rate;
  }
  for (auto& [id, total] : sum) total /= static_cast<double>(tests.size());
  return sum;
}

void CampaignProfile::accumulate(const runtime::Runtime& rt, std::size_t bins) {
  if (!rt.profiling()) return;
  auto runProfiles = rt.objectProfiles(bins);
  if (objects.empty()) {
    strideBytes = rt.hierarchy().accessProfileStride();
    objects = std::move(runProfiles);
  } else {
    // Every run of a campaign instantiates the same app, so the object
    // layout — and therefore the bin shapes — is identical run to run.
    EC_CHECK_MSG(runProfiles.size() == objects.size(),
                 "profile object layout diverged between runs");
    for (std::size_t i = 0; i < objects.size(); ++i) {
      runtime::ObjectProfile& total = objects[i];
      const runtime::ObjectProfile& run = runProfiles[i];
      EC_CHECK(total.id == run.id &&
               total.accessBins.size() == run.accessBins.size() &&
               total.wearBins.size() == run.wearBins.size());
      total.accesses += run.accesses;
      total.nvmWrites += run.nvmWrites;
      for (std::size_t b = 0; b < run.accessBins.size(); ++b) {
        total.accessBins[b] += run.accessBins[b];
      }
      for (std::size_t b = 0; b < run.wearBins.size(); ++b) {
        total.wearBins[b] += run.wearBins[b];
      }
    }
  }
  for (const auto& [region, accesses] : rt.regionAccesses()) {
    regionAccesses[region] += accesses;
  }
  ++runs;
}

CampaignRunner::CampaignRunner(runtime::AppFactory factory, CampaignConfig config)
    : factory_(std::move(factory)), config_(std::move(config)) {
  EC_CHECK(config_.numTests >= 0);
  EC_CHECK(config_.maxIterationFactor >= 1);
}

void CampaignRunner::armProfile(Runtime& rt) const {
  if (config_.profile) rt.enableProfile();
}

void CampaignRunner::accumulateProfile(const Runtime& rt) const {
  if (!config_.profile || !rt.profiling()) return;
  std::lock_guard<std::mutex> lock(profileMutex_);
  profile_.accumulate(rt);
}

GoldenStats CampaignRunner::goldenRun() const {
  Runtime rt(config_.cache);
  rt.setBulk(config_.bulk);
  rt.setPlan(config_.plan);
  rt.setTraceRun("golden");
  armProfile(rt);
  auto app = factory_();
  const auto result = Driver::freshRun(*app, rt);
  CampaignMetrics::get().recordRun(rt.events());
  accumulateProfile(rt);
  EC_CHECK_MSG(!result.interrupted, "golden run interrupted: " + result.interruptReason);
  EC_CHECK_MSG(result.verification.pass,
               "golden run failed its own acceptance verification (" +
                   app->info().name + "): " + result.verification.detail);

  GoldenStats golden;
  golden.windowAccesses = rt.windowAccesses();
  golden.finalIteration = result.finalIteration;
  golden.events = rt.events();
  golden.footprintBytes = rt.footprintBytes();
  golden.regionCount = rt.regionCount();
  golden.persistenceOps = rt.persistenceOps();
  golden.verifyMetric = result.verification.metric;
  golden.objects = rt.objects();
  for (const auto& object : golden.objects) {
    if (object.candidate) golden.candidateBytes += object.bytes;
  }
  for (const auto& [region, accesses] : rt.regionAccesses()) {
    golden.regionTimeShare[region] =
        static_cast<double>(accesses) / static_cast<double>(golden.windowAccesses);
  }
  golden.regionIterationEnds = rt.regionIterationEnds();
  return golden;
}

namespace {

/// Throws unless the resumed journal was drawn for exactly this campaign.
void checkHeaderMatches(const JournalHeader& journal, const JournalHeader& ours,
                        const std::string& path) {
  const auto mismatch = [&path](const std::string& what) {
    throw std::runtime_error("--resume " + path + ": journal " + what +
                             " does not match this campaign");
  };
  if (journal.app != ours.app) mismatch("app (" + journal.app + ")");
  if (journal.seed != ours.seed) mismatch("seed");
  if (journal.tests != ours.tests) mismatch("test count");
  if (journal.mode != ours.mode) mismatch("snapshot mode");
  if (journal.planFingerprint != ours.planFingerprint) mismatch("persistence plan");
  if (journal.windowAccesses != ours.windowAccesses) mismatch("golden crash window");
}

}  // namespace

CampaignResult CampaignRunner::run() const {
  const ResilienceConfig& res = config_.resilience;
  if (telemetry::tracing()) {
    telemetry::TraceEvent("campaign_begin")
        .field("tests", config_.numTests)
        .field("seed", config_.seed)
        .field("mode", config_.mode == SnapshotMode::NvmImage ? "nvm" : "coherent")
        .field("plan_points", static_cast<std::uint64_t>(config_.plan.points.size()))
        .emit();
  }

  // Parse any resume journal before spending time on the golden run, so a
  // bad path/file fails fast.
  std::optional<JournalReplay> replay;
  if (!res.resumePath.empty()) replay = readJournal(res.resumePath);

  {
    // A runner can be reused; each run() aggregates its own profile.
    std::lock_guard<std::mutex> lock(profileMutex_);
    profile_ = CampaignProfile{};
  }

  CampaignResult result;
  result.plannedTests = config_.numTests;
  const auto goldenStart = std::chrono::steady_clock::now();
  result.golden = goldenRun();
  const auto goldenMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - goldenStart)
                            .count();
  EC_CHECK_MSG(result.golden.windowAccesses > 0, "empty crash window");

  // Pre-draw every crash point so the campaign is identical regardless of
  // the number of worker threads — and so a resumed campaign re-draws the
  // exact sequence and only executes the trials the journal is missing.
  Rng rng(config_.seed);
  std::vector<std::uint64_t> crashIndices(static_cast<std::size_t>(config_.numTests));
  for (auto& index : crashIndices) {
    index = rng.between(1, result.golden.windowAccesses);
  }
  const std::size_t n = crashIndices.size();

  JournalHeader header;
  header.app = config_.appLabel;
  header.seed = config_.seed;
  header.tests = config_.numTests;
  header.mode = config_.mode == SnapshotMode::NvmImage ? "nvm" : "coherent";
  header.planFingerprint = planFingerprint(config_.plan);
  header.windowAccesses = result.golden.windowAccesses;

  // Per-index decision slots. A trial is decided once it has a record or a
  // failure; interruption simply leaves the rest unset.
  std::vector<std::optional<CrashTestRecord>> records(n);
  std::vector<std::optional<TrialFailure>> failures(n);

  std::size_t resumedTrials = 0;
  std::size_t resumedFailures = 0;
  if (replay) {
    checkHeaderMatches(replay->header, header, res.resumePath);
    for (auto& [trial, record] : replay->trials) {
      if (trial >= n) {
        throw std::runtime_error("--resume " + res.resumePath +
                                 ": trial index out of range");
      }
      EC_CHECK_MSG(record.crashAccessIndex == crashIndices[trial],
                   "resumed journal crash point diverges from the re-drawn "
                   "sequence — journal does not belong to this campaign");
      records[trial] = std::move(record);
      ++resumedTrials;
    }
    for (auto& [trial, failure] : replay->failures) {
      if (trial >= n) {
        throw std::runtime_error("--resume " + res.resumePath +
                                 ": failure index out of range");
      }
      failures[trial] = std::move(failure);
      ++resumedFailures;
    }
    CampaignMetrics::get().resumedTrials.add(resumedTrials);
    EC_LOG_INFO("resumed " << resumedTrials << " trials and " << resumedFailures
                           << " failures from " << res.resumePath);
    if (telemetry::tracing()) {
      telemetry::TraceEvent("campaign_resumed")
          .field("journal", res.resumePath)
          .field("trials", static_cast<std::uint64_t>(resumedTrials))
          .field("failures", static_cast<std::uint64_t>(resumedFailures))
          .emit();
    }
  }

  std::optional<TrialJournal> journal;
  if (!res.journalPath.empty()) {
    journal.emplace(res.journalPath, header, res.journalFlushEvery);
    for (std::size_t t = 0; t < n; ++t) {
      if (records[t]) journal->recordTrial(t, *records[t]);
      else if (failures[t]) journal->recordFailure(*failures[t]);
    }
    journal->flush();  // always leave a resumable file behind, even header-only
  }

  telemetry::ProgressMeter meter(
      (config_.appLabel.empty() ? "campaign" : config_.appLabel) + " trials",
      n, config_.progress ? &std::cerr : nullptr);
  std::mutex tallyMutex;
  std::array<int, 4> tally{};
  std::size_t done = 0;
  for (const auto& record : records) {
    if (record) tally[static_cast<int>(record->response)] += 1;
  }
  done = resumedTrials + resumedFailures;
  // The ETA rate must count only trials this process actually ran: resumed
  // trials landed instantly and would otherwise skew the estimate.
  meter.setBaseline(done);
  if (config_.progress && done > 0) meter.update(done, responseTally(tally));
  // Called for every newly decided trial (completion or permanent failure).
  // Progress is throttled to percentage-point or >=100 ms boundaries: with
  // small trials at high --threads, having every decided trial format a
  // tally string and serialise on the meter is measurable overhead.
  std::size_t lastPercent = n == 0 ? 0 : done * 100 / n;
  auto lastEmit = std::chrono::steady_clock::now();
  const auto recordDecided = [&](const CrashTestRecord* record) {
    std::array<int, 4> counts{};
    std::size_t doneNow = 0;
    bool emit = false;
    {
      std::lock_guard<std::mutex> lock(tallyMutex);
      if (record != nullptr) tally[static_cast<int>(record->response)] += 1;
      doneNow = ++done;
      if (config_.progress) {
        const std::size_t percent = n == 0 ? 100 : doneNow * 100 / n;
        const auto now = std::chrono::steady_clock::now();
        if (doneNow == n || percent != lastPercent ||
            now - lastEmit >= std::chrono::milliseconds(100)) {
          lastPercent = percent;
          lastEmit = now;
          counts = tally;
          emit = true;
        }
      }
    }
    if (emit) meter.update(doneNow, responseTally(counts));
  };

  int threads = config_.threads == 0
                    ? static_cast<int>(std::thread::hardware_concurrency())
                    : config_.threads;
  threads = std::max(1, std::min<int>(threads, std::max(1, config_.numTests)));

  // Distinct crash index -> undecided trials that drew it, ascending: the
  // sweep's capture plan. Duplicate indices (several trials drawing the same
  // crash point) share one capture. Decided (resumed) trials never re-enter.
  std::map<std::uint64_t, std::vector<std::size_t>> sweepPlan;
  if (config_.sweep) {
    for (std::size_t t = 0; t < n; ++t) {
      if (!records[t] && !failures[t]) sweepPlan[crashIndices[t]].push_back(t);
    }
  }
  const bool sweepActive = !sweepPlan.empty();

  // Watchdog deadline base: explicit --trial-timeout-ms wins; otherwise a
  // golden run multiple. The base is the budget for ONE golden run's worth
  // of work; each arming scales it by the trial's expected work (see
  // wholeTrialBudget/restartBudget below), so the deadline tracks what the
  // trial actually owes instead of assuming the worst case for every draw.
  std::optional<Watchdog> watchdog;
  std::uint64_t timeoutMs = 0;
  if (res.isolate && (res.trialTimeoutMs > 0 || res.goldenTimeoutMultiple > 0)) {
    if (!runtime::kWatchdogCompiledIn) {
      EC_LOG_WARN(
          "trial watchdog requested but the cancellation poll is compiled out "
          "(EASYCRASH_WATCHDOG=OFF); deadlines are disabled");
    } else {
      timeoutMs = res.trialTimeoutMs > 0
                      ? res.trialTimeoutMs
                      : std::max<std::uint64_t>(
                            1000, static_cast<std::uint64_t>(
                                      static_cast<double>(goldenMs) *
                                      res.goldenTimeoutMultiple));
      // One slot per restart worker plus, under the sweep, a slot for the
      // producer's crashing run (re-armed at every capture, suspended while
      // parked on restart backpressure).
      watchdog.emplace(std::chrono::milliseconds(timeoutMs),
                       threads + (sweepActive ? 1 : 0));
    }
  }

  std::atomic<int> failureCount{static_cast<int>(resumedFailures)};
  std::atomic<std::uint64_t> retryCount{0};
  std::atomic<std::uint64_t> timeoutCount{0};
  std::atomic<bool> budgetExceeded{false};
  std::atomic<int> newlyCompleted{0};
  std::atomic<std::size_t> next{0};
  // Without isolation an exception must abort the campaign, but letting it
  // escape a pool thread would terminate the process: the first one is
  // parked here and rethrown on the calling thread after the join.
  std::atomic<bool> workersAbort{false};
  std::exception_ptr firstError;
  std::mutex errorMutex;
  const auto parkError = [&] {
    {
      std::lock_guard<std::mutex> lock(errorMutex);
      if (!firstError) firstError = std::current_exception();
    }
    workersAbort.store(true);
  };

  // Sweep-claimed trials: flagged by the producer just before the capture is
  // queued (the queue mutex publishes the write), so the per-trial fallback
  // loop never re-runs a trial the restart pipeline already owns.
  std::vector<char> claimed(sweepActive ? n : 0, 0);

  // Live status snapshots (docs/OBSERVABILITY.md): a background thread
  // samples the campaign's shared tallies on an interval and atomically
  // rewrites the snapshot file; run() writes one final done/interrupted
  // snapshot after the drain, so a SIGINT'd campaign leaves the truth behind.
  const auto campaignStart = std::chrono::steady_clock::now();
  const std::size_t resumedDone = resumedTrials + resumedFailures;
  std::optional<StatusWriter> status;
  if (!config_.statusPath.empty()) {
    status.emplace(
        config_.statusPath,
        std::chrono::milliseconds(std::max(1, config_.statusIntervalMs)),
        [&, resumedDone] {
          CampaignStatus s;
          s.app = config_.appLabel;
          s.plannedTests = static_cast<int>(n);
          {
            std::lock_guard<std::mutex> lock(tallyMutex);
            s.decided = done;
            s.responses = tally;
          }
          s.resumed = resumedDone;
          s.failures = static_cast<std::uint64_t>(std::max(0, failureCount.load()));
          s.retries = retryCount.load();
          s.timeouts = timeoutCount.load();
          s.queueDepth = static_cast<std::uint64_t>(
              std::max(0.0, CampaignMetrics::get().sweepQueueDepth.value()));
          s.elapsedS = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - campaignStart)
                           .count();
          const std::uint64_t fresh =
              s.decided > s.resumed ? s.decided - s.resumed : 0;
          if (s.elapsedS > 0.0 && fresh > 0) {
            s.trialsPerS = static_cast<double>(fresh) / s.elapsedS;
            if (n >= s.decided) {
              s.etaS = static_cast<double>(n - s.decided) / s.trialsPerS;
            }
          }
          s.interrupted = stopRequested();
          return s;
        });
  }

  // Per-trial watchdog budget in base-timeout units (--trial-timeout-ms or
  // the golden multiple stays the base). A whole trial simulates the crashing
  // run up to its crash index (crashIndex/windowAccesses of a golden run)
  // plus a restart that may legitimately run to the iteration cap; a
  // sweep-fed restart only owes the post-bookmark iterations. Without this
  // scaling a slow late-crash trial times out under a deadline that is ample
  // for the average draw.
  const auto wholeTrialBudget = [&](std::uint64_t crashIndex) {
    return static_cast<double>(crashIndex) /
               static_cast<double>(result.golden.windowAccesses) +
           static_cast<double>(config_.maxIterationFactor);
  };
  const auto restartBudget = [&](const SweepCapture& capture) {
    const int cap = result.golden.finalIteration * config_.maxIterationFactor;
    return static_cast<double>(cap - capture.restartIteration) /
           static_cast<double>(std::max(1, result.golden.finalIteration));
  };

  // Decides trial t on worker slot w by running `attempt` — the whole trial
  // on the per-trial path, just the restart when a sweep capture supplies
  // the crashing half — honouring isolation, the watchdog (armed with the
  // trial's deadline budget) and the retry budget. Exceptions propagate only
  // when isolation is off (the legacy all-or-nothing behaviour).
  const auto decideTrial = [&](std::size_t t, int w, double budget, auto&& attempt) {
    if (!res.isolate) {
      CrashTestRecord record;
      attempt(nullptr, record);
      records[t] = std::move(record);
    } else {
      const int maxAttempts = 1 + std::max(0, res.maxRetries);
      TrialFailure failure;
      failure.trial = t;
      failure.crashAccessIndex = crashIndices[t];
      bool completed = false;
      for (int att = 1; att <= maxAttempts && !completed; ++att) {
        failure.attempts = att;
        std::atomic<bool>* cancel = watchdog ? &watchdog->arm(w, budget) : nullptr;
        CrashTestRecord record;
        try {
          attempt(cancel, record);
          completed = true;
          records[t] = std::move(record);
        } catch (const runtime::TrialCancelled&) {
          failure.timeout = true;
          failure.reason = "watchdog: trial exceeded its " +
                           std::to_string(timeoutMs) + " ms deadline";
          failure.regionPath = formatRegionPath(record.regionPath);
          CampaignMetrics::get().trialTimeouts.add();
          timeoutCount.fetch_add(1);
        } catch (const std::exception& e) {
          failure.timeout = false;
          failure.reason = e.what();
          failure.regionPath = formatRegionPath(record.regionPath);
        }
        if (watchdog) watchdog->disarm(w);
        if (!completed && att < maxAttempts) {
          CampaignMetrics::get().trialRetries.add();
          retryCount.fetch_add(1);
          EC_LOG_DEBUG("trial " << t << " attempt " << att
                                << " failed (" << failure.reason << "), retrying");
        }
      }
      if (!completed) {
        CampaignMetrics::get().trialFailures.add();
        EC_LOG_WARN("trial " << t << " abandoned after " << failure.attempts
                             << " attempt(s): " << failure.reason);
        if (telemetry::tracing()) {
          telemetry::TraceEvent("trial_failed")
              .field("trial", static_cast<std::uint64_t>(t))
              .field("crash_access", failure.crashAccessIndex)
              .field("timeout", failure.timeout)
              .field("attempts", failure.attempts)
              .field("reason", failure.reason)
              .emit();
        }
        failures[t] = failure;
        if (journal) journal->recordFailure(failure);
        const int count = failureCount.fetch_add(1) + 1;
        if (res.maxFailures >= 0 && count > res.maxFailures) {
          budgetExceeded.store(true);
        }
        recordDecided(nullptr);
        return;
      }
    }
    if (journal) journal->recordTrial(t, *records[t]);
    recordDecided(&*records[t]);
    const int completedNow = newlyCompleted.fetch_add(1) + 1;
    if (res.stopAfterTrials > 0 && completedNow >= res.stopAfterTrials) {
      requestStop();
    }
  };

  const auto runTrial = [&](std::size_t t, int w) {
    decideTrial(t, w, wholeTrialBudget(crashIndices[t]),
                [&](const std::atomic<bool>* cancel, CrashTestRecord& record) {
                  runOneTest(result.golden, crashIndices[t], t, cancel, record);
                });
  };

  // Per-trial claim loop: the whole campaign without the sweep, the fallback
  // for whatever the sweep could not capture with it.
  const auto worker = [&](int w) {
    for (;;) {
      if (stopRequested() || budgetExceeded.load() || workersAbort.load()) return;
      const std::size_t t = next.fetch_add(1);
      if (t >= n) return;
      if (records[t] || failures[t]) continue;  // replayed from the journal
      if (!claimed.empty() && claimed[t] != 0) continue;  // owned by the sweep
      runTrial(t, w);
    }
  };

  // --- Single-sweep evaluator -------------------------------------------
  // ONE crashing run visits every pending crash point in ascending order and
  // captures it read-only; a real CrashEvent armed at the last index ends
  // the run without simulating the tail. Restarts are consumed concurrently
  // by the worker pool, overlapping with the sweep itself.
  const auto runSweep = [&](RestartQueue& queue, int slot) {
    const std::size_t plannedPoints = sweepPlan.size();
    std::size_t capturedPoints = 0;
    bool completedAll = false;
    CampaignMetrics::get().sweepRuns.add();
    Runtime rt(config_.cache);
    rt.setBulk(config_.bulk);
    rt.setPlan(config_.plan);
    rt.setTraceRun("sweep");
    armProfile(rt);
    if (watchdog) rt.setCancelFlag(&watchdog->arm(slot));
    try {
      // One span covers the whole sweep crashing run (no single trial to
      // stamp); per-capture post-mortems get their own spans inside the hook.
      telemetry::PhaseSpan crashSpan("crash_run", CampaignMetrics::get().crashRunUs);
      auto app = factory_();
      app->setup(rt);
      app->initialize(rt);
      std::vector<std::uint64_t> indices;
      indices.reserve(plannedPoints);
      for (const auto& [index, trials] : sweepPlan) indices.push_back(index);
      auto pending = sweepPlan.cbegin();
      rt.armCrash(indices.back());
      rt.armCaptures(std::move(indices), [&](const CrashEvent& at) {
        EC_CHECK(pending != sweepPlan.cend());
        const std::uint64_t index = pending->first;
        const std::vector<std::size_t>& trials = pending->second;
        ++pending;
        auto capture = std::make_shared<SweepCapture>();
        // The trial records the pre-drawn index it was armed for, exactly as
        // the per-trial path does, while the context fields come from the
        // access that crossed it — identical to what CrashEvent would carry.
        capture->crashAccessIndex = index;
        capture->region = at.activeRegion;
        capture->regionPath = at.regionPath;
        capture->crashIteration = at.iteration;
        {
          // The post-mortem of the first trial sharing this capture; queue
          // backpressure below is deliberately outside the span.
          telemetry::PhaseSpan postmortemSpan(
              "postmortem", CampaignMetrics::get().postmortemUs,
              static_cast<std::int64_t>(trials.front()));
          for (const auto& object : rt.objects()) {
            if (!object.candidate) continue;
            capture->inconsistentRate[object.id] = rt.inconsistentRate(object.id);
            capture->snapshots[object.id] = config_.mode == SnapshotMode::NvmImage
                                                ? rt.dumpObjectNvm(object.id)
                                                : rt.dumpObjectCurrent(object.id);
          }
          capture->restartIteration = config_.mode == SnapshotMode::NvmImage
                                          ? rt.bookmarkedIterationNvm()
                                          : at.iteration;
        }
        ++capturedPoints;
        CampaignMetrics::get().sweepCaptures.add();
        if (telemetry::tracing()) {
          telemetry::TraceEvent("sweep_capture")
              .field("run", rt.traceRun())
              .field("crash_access", index)
              .field("region", at.activeRegion)
              .field("iteration", at.iteration)
              .field("trials", static_cast<std::uint64_t>(trials.size()))
              .emit();
        }
        for (const std::size_t t : trials) {
          claimed[t] = 1;
          // Waiting on a full queue is restart backpressure, not a hung
          // simulation: suspend the sweep's deadline while parked.
          if (watchdog) watchdog->disarm(slot);
          const bool queued = queue.push({t, capture});
          if (watchdog) watchdog->arm(slot);
          if (!queued) throw SweepAbort{};
        }
        if (stopRequested()) throw SweepAbort{};
      });
      const auto run = Driver::run(*app, rt, 1, result.golden.finalIteration);
      (void)run;
      EC_CHECK_MSG(false, "armed crash did not fire — app is non-deterministic");
    } catch (const CrashEvent&) {
      // The arranged end of the sweep: the last pending index was captured
      // on this very access, then the crash fired.
      completedAll = capturedPoints == plannedPoints;
    } catch (const SweepAbort&) {
      // Stop requested or the restart pipeline went away; not an error.
    } catch (const runtime::TrialCancelled&) {
      EC_LOG_WARN("sweep run cancelled by the watchdog after " << capturedPoints
                  << "/" << plannedPoints << " capture(s); uncaptured trials "
                  "fall back to the per-trial path");
    } catch (const std::exception& e) {
      EC_LOG_WARN("sweep run failed (" << e.what() << ") after " << capturedPoints
                  << "/" << plannedPoints << " capture(s); uncaptured trials "
                  "fall back to the per-trial path");
    } catch (...) {
      EC_LOG_WARN("sweep run failed after " << capturedPoints << "/"
                  << plannedPoints << " capture(s); uncaptured trials fall "
                  "back to the per-trial path");
    }
    if (watchdog) watchdog->disarm(slot);
    rt.powerLoss();
    CampaignMetrics::get().recordRun(rt.events());
    accumulateProfile(rt);
    if (!completedAll) {
      CampaignMetrics::get().sweepFallbacks.add(plannedPoints - capturedPoints);
    }
    if (telemetry::tracing()) {
      telemetry::TraceEvent("sweep_end")
          .field("run", rt.traceRun())
          .field("captures", static_cast<std::uint64_t>(capturedPoints))
          .field("planned", static_cast<std::uint64_t>(plannedPoints))
          .field("completed", completedAll)
          .emit();
    }
  };

  // Restart worker: drain the capture queue, then fall back to the per-trial
  // loop for anything the sweep missed. A stop request abandons the queued
  // captures (the queue is deep — draining it would decide most of the
  // campaign after the operator asked it to stop); in-flight restarts finish
  // and are journaled, exactly like the per-trial path.
  const auto sweepWorker = [&](RestartQueue& queue, int w) {
    try {
      for (;;) {
        if (stopRequested() || budgetExceeded.load() || workersAbort.load()) {
          queue.abort();
          return;
        }
        auto entry = queue.pop();
        if (!entry) break;
        decideTrial(entry->trial, w, restartBudget(*entry->capture),
                    [&](const std::atomic<bool>* cancel, CrashTestRecord& record) {
                      telemetry::ScopedTimer trialTimer(CampaignMetrics::get().trialUs);
                      runRestart(result.golden, *entry->capture, entry->trial, cancel,
                                 record);
                    });
      }
      worker(w);
    } catch (...) {
      parkError();
      queue.abort();
    }
  };

  if (sweepActive) {
    // Queue depth is the pipeline's overlap window: deep enough that the
    // sweep outruns the restart drain and the producer joins the pool for
    // most of the campaign, while backpressure bounds live snapshot memory
    // (~64 MB of candidate bytes) for large apps. Never below the
    // double-buffer floor that keeps every worker fed.
    std::size_t captureBytes = 0;
    {
      Runtime probe;
      auto app = factory_();
      app->setup(probe);
      for (const auto& object : probe.objects()) {
        if (object.candidate) captureBytes += object.bytes;
      }
    }
    constexpr std::size_t kSnapshotBudgetBytes = std::size_t{64} << 20;
    const std::size_t capacity =
        std::max(static_cast<std::size_t>(std::max(2, 2 * threads)),
                 kSnapshotBudgetBytes / std::max<std::size_t>(1, captureBytes));
    RestartQueue queue(capacity);
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back(sweepWorker, std::ref(queue), w);
    }
    runSweep(queue, threads);  // the calling thread is the producer
    queue.close();
    // The producer has nothing left to feed: join the restart pool on the
    // sweep's watchdog slot instead of idling in join() as the legacy
    // path's calling thread does.
    sweepWorker(queue, threads);
    for (auto& thread : pool) thread.join();
  } else if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back([&, w] {
        try {
          worker(w);
        } catch (...) {
          parkError();
        }
      });
    }
    for (auto& thread : pool) thread.join();
  }

  if (journal) journal->close();

  if (firstError) std::rethrow_exception(firstError);

  if (budgetExceeded.load()) {
    throw std::runtime_error(
        "campaign aborted: " + std::to_string(failureCount.load()) +
        " trial failures exceeded the budget of " + std::to_string(res.maxFailures) +
        (res.journalPath.empty() ? "" : " — journal kept at " + res.journalPath));
  }

  std::size_t undecided = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (!records[t] && !failures[t]) ++undecided;
  }
  result.interrupted = undecided > 0;
  if (result.interrupted) {
    EC_LOG_WARN("campaign interrupted: " << (n - undecided) << "/" << n
                                         << " trials decided"
                                         << (stopSignal() != 0
                                                 ? " (signal " +
                                                       std::to_string(stopSignal()) + ")"
                                                 : ""));
    if (telemetry::tracing()) {
      telemetry::TraceEvent("campaign_interrupted")
          .field("decided", static_cast<std::uint64_t>(n - undecided))
          .field("remaining", static_cast<std::uint64_t>(undecided))
          .field("signal", stopSignal())
          .emit();
    }
  }

  result.resumedTrials = resumedTrials;
  for (std::size_t t = 0; t < n; ++t) {
    if (records[t]) {
      result.tests.push_back(std::move(*records[t]));
    } else if (failures[t]) {
      result.failures.push_back(std::move(*failures[t]));
    }
  }

  {
    std::lock_guard<std::mutex> lock(profileMutex_);
    result.profile = std::move(profile_);
    profile_ = CampaignProfile{};
  }

  if (status) status->writeFinal(result.interrupted);

  if (config_.progress && !result.interrupted) meter.finish(responseTally(tally));
  if (telemetry::tracing()) {
    const auto counts = result.responseCounts();
    telemetry::TraceEvent("campaign_end")
        .field("tests", static_cast<std::uint64_t>(result.tests.size()))
        .field("s1", counts[0])
        .field("s2", counts[1])
        .field("s3", counts[2])
        .field("s4", counts[3])
        .field("recomputability", result.recomputability())
        .field("failures", static_cast<std::uint64_t>(result.failures.size()))
        .field("interrupted", result.interrupted)
        .emit();
  }
  return result;
}

void CampaignRunner::runOneTest(const GoldenStats& golden, std::uint64_t crashIndex,
                                std::size_t trial, const std::atomic<bool>* cancel,
                                CrashTestRecord& record) const {
  telemetry::ScopedTimer trialTimer(CampaignMetrics::get().trialUs);
  record = CrashTestRecord{};
  record.crashAccessIndex = crashIndex;

  // --- Crashing run -----------------------------------------------------
  Runtime rt(config_.cache);
  rt.setBulk(config_.bulk);
  rt.setPlan(config_.plan);
  rt.setCancelFlag(cancel);
  rt.setTraceRun("crash:" + std::to_string(trial));
  armProfile(rt);
  auto app = factory_();
  app->setup(rt);
  app->initialize(rt);
  rt.armCrash(crashIndex);

  SweepCapture capture;
  capture.crashAccessIndex = crashIndex;
  try {
    // The span ends when the armed CrashEvent unwinds out of the try block,
    // so phase_end marks the crash instant.
    telemetry::PhaseSpan crashSpan("crash_run", CampaignMetrics::get().crashRunUs,
                                   static_cast<std::int64_t>(trial));
    const auto run = Driver::run(*app, rt, 1, golden.finalIteration);
    // Determinism guarantees the armed crash fires; reaching here is a bug
    // in the app (non-deterministic access sequence).
    (void)run;
    EC_CHECK_MSG(false, "armed crash did not fire — app is non-deterministic");
  } catch (const CrashEvent& crash) {
    telemetry::PhaseSpan postmortemSpan("postmortem",
                                        CampaignMetrics::get().postmortemUs,
                                        static_cast<std::int64_t>(trial));
    capture.region = crash.activeRegion;
    capture.regionPath = crash.regionPath;
    capture.crashIteration = crash.iteration;
    // NVCT post-mortem: inconsistency rates before the caches are dropped.
    for (const auto& object : rt.objects()) {
      if (!object.candidate) continue;
      capture.inconsistentRate[object.id] = rt.inconsistentRate(object.id);
      capture.snapshots[object.id] = config_.mode == SnapshotMode::NvmImage
                                         ? rt.dumpObjectNvm(object.id)
                                         : rt.dumpObjectCurrent(object.id);
    }
    capture.restartIteration = config_.mode == SnapshotMode::NvmImage
                                   ? rt.bookmarkedIterationNvm()
                                   : crash.iteration;
    rt.powerLoss();
  } catch (...) {
    // The armed crash never fired — the app (or the watchdog) threw mid-run,
    // so there is no CrashEvent to read the crash site from. Take it from
    // the runtime's throw-site snapshot (the live stack is already unwound)
    // so the failure report still names where the run died.
    const auto& path = rt.throwRegionPath();
    record.region = path.empty() ? rt.activeRegion() : path.back();
    record.regionPath = path;
    throw;
  }
  CampaignMetrics::get().recordRun(rt.events());
  accumulateProfile(rt);

  runRestart(golden, capture, trial, cancel, record);
}

void CampaignRunner::runRestart(const GoldenStats& golden, const SweepCapture& capture,
                                std::size_t trial, const std::atomic<bool>* cancel,
                                CrashTestRecord& record) const {
  record = CrashTestRecord{};
  record.crashAccessIndex = capture.crashAccessIndex;
  record.region = capture.region;
  record.regionPath = capture.regionPath;
  record.crashIteration = capture.crashIteration;
  record.restartIteration = capture.restartIteration;
  record.inconsistentRate = capture.inconsistentRate;

  telemetry::PhaseSpan restartSpan("restart", CampaignMetrics::get().restartUs,
                                   static_cast<std::int64_t>(trial));
  Runtime restartRt(config_.cache);
  // Restarts run in direct-access mode: their outcome (S1-S4, extra
  // iterations) depends only on computed values, which direct mode preserves
  // bit-for-bit, and the paper's restarts execute natively anyway — only the
  // crashing run's cache-vs-NVM divergence needs the hierarchy simulated.
  restartRt.setDirect(true);
  restartRt.setBulk(config_.bulk);
  restartRt.setPlan(config_.plan);
  restartRt.setCancelFlag(cancel);
  restartRt.setTraceRun("restart:" + std::to_string(trial));
  auto restartApp = factory_();
  restartApp->setup(restartRt);
  restartApp->initialize(restartRt);
  for (const auto& [id, bytes] : capture.snapshots) {
    restartRt.restoreObject(id, bytes);
  }

  const int cap = golden.finalIteration * config_.maxIterationFactor;
  const auto rerun =
      Driver::run(*restartApp, restartRt, record.restartIteration, cap);
  CampaignMetrics::get().recordRun(restartRt.events());

  if (rerun.interrupted) {
    record.response = Response::S3;
    record.note = rerun.interruptReason;
  } else if (!rerun.verification.pass) {
    record.response = Response::S4;
    record.note = rerun.verification.detail;
  } else {
    record.extraIterations = rerun.finalIteration - golden.finalIteration;
    if (record.extraIterations <= 0) {
      record.extraIterations = 0;
      record.response = Response::S1;
    } else {
      record.response = Response::S2;
    }
    record.note = rerun.verification.detail;
  }

  CampaignMetrics::get().trials.add();
  CampaignMetrics::get().responses[static_cast<int>(record.response)]->add();
  if (telemetry::tracing()) {
    // The per-trial outcome record: crash location + restart result. This is
    // the JSONL row an external analysis joins with the CSV on `trial`.
    telemetry::TraceEvent("trial_end")
        .field("trial", static_cast<std::uint64_t>(trial))
        .field("crash_access", record.crashAccessIndex)
        .field("region", record.region)
        .field("crash_iteration", record.crashIteration)
        .field("restart_iteration", record.restartIteration)
        .field("response", toString(record.response))
        .field("extra_iterations", record.extraIterations)
        .emit();
  }
}

}  // namespace easycrash::crash
