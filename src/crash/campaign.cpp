#include "easycrash/crash/campaign.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <new>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "easycrash/common/check.hpp"
#include "easycrash/common/rng.hpp"
#include "easycrash/memsim/region_monitor.hpp"
#include "easycrash/crash/report.hpp"
#include "easycrash/crash/resilience.hpp"
#include "easycrash/crash/status.hpp"
#include "easycrash/crash/worker_pool.hpp"
#include "easycrash/runtime/runtime.hpp"
#include "easycrash/telemetry/log.hpp"
#include "easycrash/telemetry/metrics.hpp"
#include "easycrash/telemetry/phase_span.hpp"
#include "easycrash/telemetry/progress.hpp"
#include "easycrash/telemetry/timer.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace easycrash::crash {

using runtime::CrashEvent;
using runtime::Driver;
using runtime::Runtime;

namespace {

/// Mirrors of the MemEvents counters, accumulated over every run a campaign
/// simulates (golden + each trial's crashing and restart runs). These are
/// the `memsim.*` counters in --metrics-out; their names match the
/// MemEvents fields so a metrics snapshot correlates 1:1 with Table 4.
struct CampaignMetrics {
  telemetry::Counter& loads;
  telemetry::Counter& stores;
  telemetry::Counter& nvmBlockReads;
  telemetry::Counter& nvmBlockWrites;
  telemetry::Counter& flushDirty;
  telemetry::Counter& flushClean;
  telemetry::Counter& flushNonResident;
  telemetry::Counter& flushInducedNvmWrites;
  telemetry::Counter& rangeLoads;
  telemetry::Counter& rangeStores;
  telemetry::Counter& rangeSplitBlocks;
  telemetry::Counter& rangeAccesses;
  telemetry::Counter& postmortemBlocksSkipped;
  telemetry::Counter& postmortemBlocksCompared;
  telemetry::Counter& postmortemBytesCompared;
  /// Adaptive region monitor (sampled mode only; all zero under --monitor
  /// full, so they never feed equivalence comparisons).
  telemetry::Counter& regionSamples;
  telemetry::Counter& regionSplits;
  telemetry::Counter& regionMerges;
  telemetry::Counter& monitorRuns;
  telemetry::Counter& monitorDemotedObjects;
  telemetry::Counter& monitorDemotedBytes;
  telemetry::Counter& monitorTrackedObjects;
  telemetry::Counter& trials;
  std::array<telemetry::Counter*, 4> responses;
  telemetry::Histogram& trialUs;
  telemetry::Counter& trialFailures;
  telemetry::Counter& trialRetries;
  telemetry::Counter& trialTimeouts;
  telemetry::Counter& resumedTrials;
  /// Sharded campaigns (--shard i/k): trials this shard owns out of the
  /// campaign's planned N. Zero when unsharded, so it never feeds
  /// equivalence comparisons.
  telemetry::Counter& shardOwnedTrials;
  telemetry::Counter& sweepRuns;
  telemetry::Counter& sweepCaptures;
  telemetry::Counter& sweepFallbacks;
  /// Fork evaluator: worker forks (initial + respawns), deaths the campaign
  /// consumed (split kill vs crash/oom/protocol), and respawns alone.
  telemetry::Counter& workerSpawns;
  telemetry::Counter& workerCrashes;
  telemetry::Counter& workerKills;
  telemetry::Counter& workerRespawns;
  /// Backoff slept between trial retries (resilience.retryBackoffMs).
  telemetry::Histogram& retryBackoff;
  /// Flight-recorder phase latencies (telemetry::PhaseSpan): the crashing
  /// run up to the armed crash, the S1–S4 post-mortem capture, the restart.
  telemetry::Histogram& crashRunUs;
  telemetry::Histogram& postmortemUs;
  telemetry::Histogram& restartUs;
  /// Live depth of the sweep's restart hand-off queue.
  telemetry::Gauge& sweepQueueDepth;

  static CampaignMetrics& get() {
    auto& reg = telemetry::MetricsRegistry::instance();
    static CampaignMetrics m{
        reg.counter("memsim.loads"),
        reg.counter("memsim.stores"),
        reg.counter("memsim.nvmBlockReads"),
        reg.counter("memsim.nvmBlockWrites"),
        reg.counter("memsim.flushDirty"),
        reg.counter("memsim.flushClean"),
        reg.counter("memsim.flushNonResident"),
        reg.counter("memsim.flushInducedNvmWrites"),
        reg.counter("memsim.range_loads"),
        reg.counter("memsim.range_stores"),
        reg.counter("memsim.range_split_blocks"),
        reg.counter("campaign.range_accesses"),
        reg.counter("memsim.postmortem_blocks_skipped"),
        reg.counter("memsim.postmortem_blocks_compared"),
        reg.counter("memsim.postmortem_bytes_compared"),
        reg.counter("memsim.region_samples"),
        reg.counter("memsim.region_splits"),
        reg.counter("memsim.region_merges"),
        reg.counter("campaign.monitor_runs"),
        reg.counter("campaign.monitor_demoted_objects"),
        reg.counter("campaign.monitor_demoted_bytes"),
        reg.counter("campaign.monitor_tracked_objects"),
        reg.counter("campaign.trials"),
        {&reg.counter("campaign.responses.s1"), &reg.counter("campaign.responses.s2"),
         &reg.counter("campaign.responses.s3"), &reg.counter("campaign.responses.s4")},
        reg.histogram("campaign.trial_us",
                      telemetry::Histogram::exponentialBounds(100.0, 4.0, 12)),
        reg.counter("campaign.trial_failures"),
        reg.counter("campaign.trial_retries"),
        reg.counter("campaign.trial_timeouts"),
        reg.counter("campaign.resumed_trials"),
        reg.counter("campaign.shard_owned_trials"),
        reg.counter("campaign.sweep_runs"),
        reg.counter("campaign.sweep_captures"),
        reg.counter("campaign.sweep_fallbacks"),
        reg.counter("campaign.worker_spawns"),
        reg.counter("campaign.worker_crashes"),
        reg.counter("campaign.worker_kills"),
        reg.counter("campaign.worker_respawns"),
        reg.histogram("campaign.retry_backoff_ms",
                      telemetry::Histogram::exponentialBounds(1.0, 2.0, 12)),
        reg.histogram("campaign.crash_run_us",
                      telemetry::Histogram::exponentialBounds(50.0, 4.0, 12)),
        reg.histogram("campaign.postmortem_us",
                      telemetry::Histogram::exponentialBounds(10.0, 4.0, 12)),
        reg.histogram("campaign.restart_us",
                      telemetry::Histogram::exponentialBounds(50.0, 4.0, 12)),
        reg.gauge("campaign.sweep_queue_depth")};
    return m;
  }

  void recordRun(const memsim::MemEvents& ev) {
    loads.add(ev.loads);
    stores.add(ev.stores);
    nvmBlockReads.add(ev.nvmBlockReads);
    nvmBlockWrites.add(ev.nvmBlockWrites);
    flushDirty.add(ev.flushDirty);
    flushClean.add(ev.flushClean);
    flushNonResident.add(ev.flushNonResident);
    flushInducedNvmWrites.add(ev.flushInducedNvmWrites);
    // Diagnostics of the bulk fast path (call counts, not logical accesses):
    // zero when --bulk off, so they never feed equivalence comparisons.
    rangeLoads.add(ev.rangeLoads);
    rangeStores.add(ev.rangeStores);
    rangeSplitBlocks.add(ev.rangeSplitBlocks);
    rangeAccesses.add(ev.rangeLoads + ev.rangeStores);
    // Diagnostics of the post-mortem scan fast path: zero when --scan off,
    // so they never feed equivalence comparisons either.
    postmortemBlocksSkipped.add(ev.postmortemBlocksSkipped);
    postmortemBlocksCompared.add(ev.postmortemBlocksCompared);
    postmortemBytesCompared.add(ev.postmortemBytesCompared);
  }
};

/// One queued restart: a trial index plus its (possibly shared, when several
/// trials drew the same crash point) read-only capture.
struct PendingRestart {
  std::size_t trial = 0;
  std::shared_ptr<const SweepCapture> capture;
};

/// Thrown by the sweep's capture hook to end the crashing run early: a stop
/// was requested, or the restart pipeline went away (abort/budget).
struct SweepAbort {};

/// Bounded hand-off between the sweep producer (the single crashing run) and
/// the restart workers. push() blocks while full — that backpressure bounds
/// how many object snapshots are alive at once — and returns false once the
/// queue is aborted. pop() blocks for an entry and drains what was already
/// queued after close(); abort() drops everything and wakes both sides.
class RestartQueue {
 public:
  explicit RestartQueue(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool push(PendingRestart entry) {
    std::unique_lock<std::mutex> lock(mutex_);
    spaceCv_.wait(lock, [&] { return entries_.size() < capacity_ || aborted_; });
    if (aborted_) return false;
    entries_.push_back(std::move(entry));
    CampaignMetrics::get().sweepQueueDepth.set(static_cast<double>(entries_.size()));
    entryCv_.notify_one();
    return true;
  }

  [[nodiscard]] std::optional<PendingRestart> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    entryCv_.wait(lock, [&] { return !entries_.empty() || closed_ || aborted_; });
    if (aborted_ || entries_.empty()) return std::nullopt;
    PendingRestart entry = std::move(entries_.front());
    entries_.pop_front();
    CampaignMetrics::get().sweepQueueDepth.set(static_cast<double>(entries_.size()));
    spaceCv_.notify_one();
    return entry;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    entryCv_.notify_all();
  }

  void abort() {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
    entries_.clear();
    CampaignMetrics::get().sweepQueueDepth.set(0.0);
    entryCv_.notify_all();
    spaceCv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable entryCv_;
  std::condition_variable spaceCv_;
  std::deque<PendingRestart> entries_;
  const std::size_t capacity_;
  bool closed_ = false;
  bool aborted_ = false;
};

// ---- Fork evaluator wire protocol ------------------------------------------
//
// Requests (parent -> worker):  'T' whole trial {trial, crashIndex}
//                               'R' restart only {trial, capture}
//                               'S' sweep {n, n x (index, trialCount)}
//                               'A' ack of one streamed sweep capture
// Responses (worker -> parent): 'r' trial/restart result
//                               'c' one streamed sweep capture (await 'A')
//                               'e' sweep end
// Integers are little-endian; snapshot payloads ride the slot's shared
// arena when they fit (the common case — the arena is sized off the app's
// candidate bytes) and fall back to inline frame bytes when they don't.

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    buf_.append(s);
  }
  void raw(const void* data, std::size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over one received frame. Every overrun throws — the
/// campaign maps a malformed frame to a protocol worker death.
class WireReader {
 public:
  explicit WireReader(const std::string& buf) : buf_(buf) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(buf_[pos_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[pos_++])) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(buf_[pos_++])) << (8 * i);
    }
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint64_t len = u64();
    need(len);
    std::string out(buf_.data() + pos_, static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return out;
  }
  void raw(void* out, std::size_t len) {
    need(len);
    std::memcpy(out, buf_.data() + pos_, len);
    pos_ += len;
  }

 private:
  void need(std::uint64_t n) const {
    if (n > buf_.size() - pos_) {
      throw std::runtime_error("wire: truncated frame");
    }
  }

  const std::string& buf_;
  std::size_t pos_ = 0;
};

void addEvents(memsim::MemEvents& total, const memsim::MemEvents& run) {
  total.loads += run.loads;
  total.stores += run.stores;
  for (std::size_t i = 0; i < memsim::kMaxLevels; ++i) {
    total.hits[i] += run.hits[i];
    total.misses[i] += run.misses[i];
  }
  total.nvmBlockReads += run.nvmBlockReads;
  total.nvmBlockWrites += run.nvmBlockWrites;
  total.flushDirty += run.flushDirty;
  total.flushClean += run.flushClean;
  total.flushNonResident += run.flushNonResident;
  total.flushInducedNvmWrites += run.flushInducedNvmWrites;
  total.rangeLoads += run.rangeLoads;
  total.rangeStores += run.rangeStores;
  total.rangeSplitBlocks += run.rangeSplitBlocks;
  total.postmortemBlocksSkipped += run.postmortemBlocksSkipped;
  total.postmortemBlocksCompared += run.postmortemBlocksCompared;
  total.postmortemBytesCompared += run.postmortemBytesCompared;
}

void encodeEvents(WireWriter& w, const memsim::MemEvents& ev) {
  w.u64(ev.loads);
  w.u64(ev.stores);
  for (std::size_t i = 0; i < memsim::kMaxLevels; ++i) w.u64(ev.hits[i]);
  for (std::size_t i = 0; i < memsim::kMaxLevels; ++i) w.u64(ev.misses[i]);
  w.u64(ev.nvmBlockReads);
  w.u64(ev.nvmBlockWrites);
  w.u64(ev.flushDirty);
  w.u64(ev.flushClean);
  w.u64(ev.flushNonResident);
  w.u64(ev.flushInducedNvmWrites);
  w.u64(ev.rangeLoads);
  w.u64(ev.rangeStores);
  w.u64(ev.rangeSplitBlocks);
  w.u64(ev.postmortemBlocksSkipped);
  w.u64(ev.postmortemBlocksCompared);
  w.u64(ev.postmortemBytesCompared);
}

memsim::MemEvents decodeEvents(WireReader& r) {
  memsim::MemEvents ev;
  ev.loads = r.u64();
  ev.stores = r.u64();
  for (std::size_t i = 0; i < memsim::kMaxLevels; ++i) ev.hits[i] = r.u64();
  for (std::size_t i = 0; i < memsim::kMaxLevels; ++i) ev.misses[i] = r.u64();
  ev.nvmBlockReads = r.u64();
  ev.nvmBlockWrites = r.u64();
  ev.flushDirty = r.u64();
  ev.flushClean = r.u64();
  ev.flushNonResident = r.u64();
  ev.flushInducedNvmWrites = r.u64();
  ev.rangeLoads = r.u64();
  ev.rangeStores = r.u64();
  ev.rangeSplitBlocks = r.u64();
  ev.postmortemBlocksSkipped = r.u64();
  ev.postmortemBlocksCompared = r.u64();
  ev.postmortemBytesCompared = r.u64();
  return ev;
}

void encodeProfile(WireWriter& w, const CampaignProfile& p) {
  w.u32(p.strideBytes);
  w.u64(p.runs);
  w.u64(p.objects.size());
  for (const runtime::ObjectProfile& o : p.objects) {
    w.u32(o.id);
    w.str(o.name);
    w.u64(o.bytes);
    w.u64(o.accesses);
    w.u64(o.nvmWrites);
    w.u64(o.accessBins.size());
    for (const std::uint64_t b : o.accessBins) w.u64(b);
    w.u64(o.wearBins.size());
    for (const std::uint64_t b : o.wearBins) w.u64(b);
  }
  w.u64(p.regionAccesses.size());
  for (const auto& [region, accesses] : p.regionAccesses) {
    w.u32(static_cast<std::uint32_t>(region));
    w.u64(accesses);
  }
}

CampaignProfile decodeProfile(WireReader& r) {
  CampaignProfile p;
  p.strideBytes = r.u32();
  p.runs = r.u64();
  const std::uint64_t nObjects = r.u64();
  p.objects.resize(static_cast<std::size_t>(nObjects));
  for (runtime::ObjectProfile& o : p.objects) {
    o.id = r.u32();
    o.name = r.str();
    o.bytes = r.u64();
    o.accesses = r.u64();
    o.nvmWrites = r.u64();
    o.accessBins.resize(static_cast<std::size_t>(r.u64()));
    for (std::uint64_t& b : o.accessBins) b = r.u64();
    o.wearBins.resize(static_cast<std::size_t>(r.u64()));
    for (std::uint64_t& b : o.wearBins) b = r.u64();
  }
  const std::uint64_t nRegions = r.u64();
  for (std::uint64_t i = 0; i < nRegions; ++i) {
    const auto region =
        static_cast<runtime::PointId>(static_cast<std::int32_t>(r.u32()));
    p.regionAccesses[region] = r.u64();
  }
  return p;
}

/// Crash "black box": the first page-independent bytes of every slot's
/// arena. A worker about to execute an injected fault records where it is
/// dying (fault kind, access index, formatted region path) and publishes
/// with a release-fenced magic write; after the death the parent reads it
/// back so the TrialFailure names the real crash site — the same region-path
/// feature in-process failures get from throwRegionPath().
struct BlackBox {
  std::uint64_t magic = 0;  ///< written last
  std::uint64_t accessIndex = 0;
  char kind[16] = {};
  char regionPath[224] = {};
};
constexpr std::uint64_t kBlackBoxMagic = 0x4e56435442420001ull;
constexpr std::size_t kBlackBoxBytes = 256;
static_assert(sizeof(BlackBox) <= kBlackBoxBytes, "black box must fit its slot");

void encodeCapture(WireWriter& w, const SweepCapture& c, std::uint8_t* arena,
                   std::size_t arenaBytes) {
  w.u64(c.crashAccessIndex);
  w.u32(static_cast<std::uint32_t>(c.region));
  w.u64(c.regionPath.size());
  for (const runtime::PointId p : c.regionPath) {
    w.u32(static_cast<std::uint32_t>(p));
  }
  w.i64(c.crashIteration);
  w.i64(c.restartIteration);
  w.u64(c.inconsistentRate.size());
  for (const auto& [id, rate] : c.inconsistentRate) {
    w.u32(id);
    w.f64(rate);
  }
  std::size_t total = 0;
  for (const auto& [id, bytes] : c.snapshots) total += bytes.size();
  const bool inArena =
      arena != nullptr && arenaBytes >= kBlackBoxBytes &&
      total <= arenaBytes - kBlackBoxBytes;
  w.u8(inArena ? 1 : 0);
  w.u64(c.snapshots.size());
  std::size_t offset = kBlackBoxBytes;
  for (const auto& [id, bytes] : c.snapshots) {
    w.u32(id);
    w.u64(bytes.size());
    if (bytes.empty()) continue;
    if (inArena) {
      std::memcpy(arena + offset, bytes.data(), bytes.size());
      offset += bytes.size();
    } else {
      w.raw(bytes.data(), bytes.size());
    }
  }
}

SweepCapture decodeCapture(WireReader& r, const std::uint8_t* arena,
                           std::size_t arenaBytes) {
  SweepCapture c;
  c.crashAccessIndex = r.u64();
  c.region = static_cast<runtime::PointId>(static_cast<std::int32_t>(r.u32()));
  const std::uint64_t pathLen = r.u64();
  c.regionPath.resize(static_cast<std::size_t>(pathLen));
  for (runtime::PointId& p : c.regionPath) {
    p = static_cast<runtime::PointId>(static_cast<std::int32_t>(r.u32()));
  }
  c.crashIteration = static_cast<int>(r.i64());
  c.restartIteration = static_cast<int>(r.i64());
  const std::uint64_t nRates = r.u64();
  for (std::uint64_t i = 0; i < nRates; ++i) {
    const runtime::ObjectId id = r.u32();
    c.inconsistentRate[id] = r.f64();
  }
  const bool inArena = r.u8() != 0;
  const std::uint64_t nSnaps = r.u64();
  std::size_t offset = kBlackBoxBytes;
  for (std::uint64_t i = 0; i < nSnaps; ++i) {
    const runtime::ObjectId id = r.u32();
    const std::uint64_t size = r.u64();
    std::vector<std::uint8_t>& bytes = c.snapshots[id];
    if (inArena) {
      if (arena == nullptr || size > arenaBytes || offset > arenaBytes - size) {
        throw std::runtime_error("wire: capture overruns the arena");
      }
      bytes.assign(arena + offset, arena + offset + size);
      offset += static_cast<std::size_t>(size);
    } else {
      bytes.resize(static_cast<std::size_t>(size));
      if (!bytes.empty()) r.raw(bytes.data(), bytes.size());
    }
  }
  return c;
}

// ---- Fork-worker child state -----------------------------------------------

/// Per-request run collector inside a worker child: noteRun() lands events
/// and profile increments here instead of the (discarded) child metrics
/// registry, and the response frame ships them to the parent.
struct ChildRunCollector {
  memsim::MemEvents events;
  CampaignProfile profile;
  /// runtime.crash_injections value at request start: the child registry is
  /// discarded, so each reply ships the per-request delta for the parent to
  /// re-add — keeping the counter identical to an in-process run.
  std::uint64_t crashInjectionsBase = 0;

  [[nodiscard]] std::uint64_t crashInjectionsDelta() const {
    return telemetry::MetricsRegistry::instance()
               .counter("runtime.crash_injections")
               .value() -
           crashInjectionsBase;
  }
};
ChildRunCollector* g_childRunCollector = nullptr;

/// Installed in a worker child while a crashing run may host an injected
/// fault: where to write the black box and which fd a wild write tears.
struct ChildFaultContext {
  FaultPlan plan;
  std::uint8_t* blackBox = nullptr;
  int responseFd = -1;
};
ChildFaultContext* g_childFault = nullptr;

/// The forked child's trace buffer: TraceSink is redirected here right after
/// the fork, and each response frame ships-and-clears the accumulated lines
/// for the parent to splice into the real trace via writeRaw().
std::ostringstream* g_childTraceBuf = nullptr;

std::string takeChildTrace() {
  if (g_childTraceBuf == nullptr) return {};
  std::string out = g_childTraceBuf->str();
  g_childTraceBuf->str("");
  return out;
}

/// Execute one injected fault for real. Segv and hang never return; a wild
/// write tears the response stream then exits; OOM throws the bad_alloc the
/// worker main loop converts to kWorkerOomExit.
void executeFault(FaultPlan::Kind kind, int responseFd) {
  switch (kind) {
    case FaultPlan::Kind::Segv: {
      // The volatile address keeps the bogus pointer out of constant
      // propagation, so -Werror=array-bounds accepts the deliberate wild
      // store (GCC 12 rejects a literal reinterpret_cast'ed address).
      volatile std::uintptr_t target = 8;
      *reinterpret_cast<volatile int*>(target) = 42;  // SIGSEGV
      std::abort();    // unreachable belt-and-braces (still a Crashed death)
    }
    case FaultPlan::Kind::WildWrite: {
      // A garbage length prefix (~2 GiB) followed by a torn tail: the parent
      // rejects the length and classifies a protocol death.
      const unsigned char junk[] = {0xff, 0xff, 0xff, 0x7f, 0xde, 0xad};
      (void)!::write(responseFd, junk, sizeof junk);
      ::_exit(2);
    }
    case FaultPlan::Kind::Oom: {
      // nothrow + explicit throw, not throwing operator new: GCC's libasan
      // hard-aborts a failed throwing new even with allocator_may_return_null,
      // while the nothrow form returns null under both plain and ASan builds.
      void* p = ::operator new(std::size_t{1} << 62, std::nothrow);
      if (p == nullptr) throw std::bad_alloc();
      ::operator delete(p);  // unreachable on any real machine
      throw std::bad_alloc();
    }
    case FaultPlan::Kind::Hang: {
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    case FaultPlan::Kind::None: break;
  }
}

// ---- Parent-side death accounting ------------------------------------------

/// A worker death (or child-reported error) unwinding one trial attempt in
/// the parent. Deliberately NOT std::exception-derived: decideTrial's
/// catch(std::exception) must not swallow it into kind "exception".
struct ChildFailure {
  std::string kind = "protocol";
  bool timeout = false;
  std::string reason;
  std::string regionPath;
};

/// Map one classified worker death onto the TrialFailure the retry loop
/// records, folding in the black box when the worker published one.
ChildFailure classifyDeath(const WorkerPool::Reply& reply,
                           std::uint64_t timeoutMs, const std::uint8_t* arena) {
  ChildFailure f;
  f.kind = toString(reply.death);
  f.timeout = reply.timedOut;
  if (reply.timedOut) {
    f.reason = "watchdog: trial exceeded its " + std::to_string(timeoutMs) +
               " ms deadline";
  } else {
    switch (reply.death) {
      case WorkerDeath::Crashed:
        f.reason = "worker killed by signal " + std::to_string(reply.signal);
        break;
      case WorkerDeath::Killed:
        f.reason = "worker killed (SIGKILL)";
        break;
      case WorkerDeath::Oom:
        f.reason = "worker out of memory (std::bad_alloc)";
        break;
      default:
        f.reason = "worker protocol error (exit status " +
                   std::to_string(reply.exitStatus) + ")";
        break;
    }
  }
  const auto* bb = reinterpret_cast<const BlackBox*>(arena);
  if (bb != nullptr && bb->magic == kBlackBoxMagic) {
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::string kind(bb->kind, strnlen(bb->kind, sizeof bb->kind));
    f.regionPath.assign(bb->regionPath,
                        strnlen(bb->regionPath, sizeof bb->regionPath));
    f.reason += "; fault '" + kind + "' injected at access " +
                std::to_string(bb->accessIndex);
  }
  return f;
}

std::string responseTally(const std::array<int, 4>& counts) {
  std::string out;
  for (int s = 0; s < 4; ++s) {
    if (s) out += ' ';
    out += 'S';
    out += static_cast<char>('1' + s);
    out += ':';
    out += std::to_string(counts[s]);
  }
  return out;
}

}  // namespace

const char* toString(Response response) {
  switch (response) {
    case Response::S1: return "S1";
    case Response::S2: return "S2";
    case Response::S3: return "S3";
    case Response::S4: return "S4";
  }
  return "?";
}

const char* toString(FaultPlan::Kind kind) {
  switch (kind) {
    case FaultPlan::Kind::None: return "none";
    case FaultPlan::Kind::Segv: return "segv";
    case FaultPlan::Kind::WildWrite: return "wild-write";
    case FaultPlan::Kind::Oom: return "oom";
    case FaultPlan::Kind::Hang: return "hang";
  }
  return "?";
}

std::vector<std::string> MonitorSummary::demotedNames() const {
  std::vector<std::string> names;
  for (const auto& object : objects) {
    if (object.demoted) names.push_back(object.name);
  }
  return names;
}

double CampaignResult::recomputability() const {
  if (tests.empty()) return 0.0;
  const auto counts = responseCounts();
  return static_cast<double>(counts[0]) / static_cast<double>(tests.size());
}

double CampaignResult::successWithExtra() const {
  if (tests.empty()) return 0.0;
  const auto counts = responseCounts();
  return static_cast<double>(counts[0] + counts[1]) /
         static_cast<double>(tests.size());
}

std::array<int, 4> CampaignResult::responseCounts() const {
  std::array<int, 4> counts{};
  for (const auto& t : tests) counts[static_cast<int>(t.response)] += 1;
  return counts;
}

double CampaignResult::averageExtraIterations() const {
  int n = 0;
  long long total = 0;
  for (const auto& t : tests) {
    if (t.response == Response::S2) {
      total += t.extraIterations;
      ++n;
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(total) / n;
}

std::map<runtime::PointId, double> CampaignResult::regionRecomputability() const {
  std::map<runtime::PointId, int> s1, all;
  for (const auto& t : tests) {
    all[t.region] += 1;
    if (t.response == Response::S1) s1[t.region] += 1;
  }
  std::map<runtime::PointId, double> out;
  for (const auto& [region, n] : all) {
    out[region] = static_cast<double>(s1[region]) / static_cast<double>(n);
  }
  return out;
}

std::map<runtime::PointId, int> CampaignResult::regionTestCounts() const {
  std::map<runtime::PointId, int> all;
  for (const auto& t : tests) all[t.region] += 1;
  return all;
}

std::map<runtime::ObjectId, double> CampaignResult::meanInconsistentRate() const {
  std::map<runtime::ObjectId, double> sum;
  for (const auto& t : tests) {
    for (const auto& [id, rate] : t.inconsistentRate) sum[id] += rate;
  }
  for (auto& [id, total] : sum) total /= static_cast<double>(tests.size());
  return sum;
}

void CampaignProfile::accumulate(const runtime::Runtime& rt, std::size_t bins) {
  if (!rt.profiling()) return;
  CampaignProfile run;
  run.strideBytes = rt.hierarchy().accessProfileStride();
  run.objects = rt.objectProfiles(bins);
  for (const auto& [region, accesses] : rt.regionAccesses()) {
    run.regionAccesses[region] = accesses;
  }
  run.runs = 1;
  merge(run);
}

void CampaignProfile::merge(const CampaignProfile& other) {
  if (other.runs == 0) return;
  if (runs == 0) {
    *this = other;
    return;
  }
  // Every run of a campaign instantiates the same app, so the object
  // layout — and therefore the bin shapes — is identical run to run.
  EC_CHECK_MSG(other.objects.size() == objects.size(),
               "profile object layout diverged between runs");
  for (std::size_t i = 0; i < objects.size(); ++i) {
    runtime::ObjectProfile& total = objects[i];
    const runtime::ObjectProfile& run = other.objects[i];
    EC_CHECK(total.id == run.id &&
             total.accessBins.size() == run.accessBins.size() &&
             total.wearBins.size() == run.wearBins.size());
    total.accesses += run.accesses;
    total.nvmWrites += run.nvmWrites;
    for (std::size_t b = 0; b < run.accessBins.size(); ++b) {
      total.accessBins[b] += run.accessBins[b];
    }
    for (std::size_t b = 0; b < run.wearBins.size(); ++b) {
      total.wearBins[b] += run.wearBins[b];
    }
  }
  for (const auto& [region, accesses] : other.regionAccesses) {
    regionAccesses[region] += accesses;
  }
  runs += other.runs;
}

CampaignRunner::CampaignRunner(runtime::AppFactory factory, CampaignConfig config)
    : factory_(std::move(factory)), config_(std::move(config)) {
  EC_CHECK(config_.numTests >= 0);
  EC_CHECK(config_.maxIterationFactor >= 1);
  EC_CHECK_MSG(config_.resilience.isolation != IsolationMode::Fork ||
                   config_.resilience.isolate,
               "fork isolation requires trial isolation (resilience.isolate)");
  EC_CHECK_MSG(!config_.inject.active() ||
                   config_.resilience.isolation == IsolationMode::Fork,
               "fault injection requires the fork evaluator "
               "(resilience.isolation == Fork)");
  EC_CHECK_MSG(!config_.inject.active() || config_.inject.accessIndex > 0,
               "fault injection needs a 1-based tracked-access index");
}

void CampaignRunner::armProfile(Runtime& rt) const {
  if (config_.profile) rt.enableProfile();
}

void CampaignRunner::accumulateProfile(const Runtime& rt) const {
  if (!config_.profile || !rt.profiling()) return;
  std::lock_guard<std::mutex> lock(profileMutex_);
  profile_.accumulate(rt);
}

void CampaignRunner::noteRun(const Runtime& rt) const {
  if (g_childRunCollector != nullptr) {
    addEvents(g_childRunCollector->events, rt.events());
    if (config_.profile) g_childRunCollector->profile.accumulate(rt);
    return;
  }
  CampaignMetrics::get().recordRun(rt.events());
  accumulateProfile(rt);
}

void CampaignRunner::commitTrial(std::size_t trial,
                                 const CrashTestRecord& record) const {
  CampaignMetrics::get().trials.add();
  CampaignMetrics::get().responses[static_cast<int>(record.response)]->add();
  if (telemetry::tracing()) {
    // The per-trial outcome record: crash location + restart result. This is
    // the JSONL row an external analysis joins with the CSV on `trial`.
    telemetry::TraceEvent("trial_end")
        .field("trial", static_cast<std::uint64_t>(trial))
        .field("crash_access", record.crashAccessIndex)
        .field("region", record.region)
        .field("crash_iteration", record.crashIteration)
        .field("restart_iteration", record.restartIteration)
        .field("response", toString(record.response))
        .field("extra_iterations", record.extraIterations)
        .emit();
  }
}

void CampaignRunner::installFault(Runtime& rt) const {
  if (!config_.inject.active() || g_childFault == nullptr) return;
  ChildFaultContext* ctx = g_childFault;
  Runtime* rtp = &rt;
  rt.armFault(config_.inject.accessIndex, [ctx, rtp] {
    auto* bb = reinterpret_cast<BlackBox*>(ctx->blackBox);
    if (bb != nullptr) {
      bb->accessIndex = ctx->plan.accessIndex;
      std::snprintf(bb->kind, sizeof bb->kind, "%s", toString(ctx->plan.kind));
      const std::string path = formatRegionPath(rtp->regionPath());
      std::snprintf(bb->regionPath, sizeof bb->regionPath, "%s", path.c_str());
      std::atomic_thread_fence(std::memory_order_release);
      bb->magic = kBlackBoxMagic;
    }
    executeFault(ctx->plan.kind, ctx->responseFd);
  });
}

GoldenStats CampaignRunner::goldenRun(memsim::RegionMonitor* monitor) const {
  Runtime rt(config_.cache);
  // Sampled monitoring folds the golden run and the monitoring pre-pass into
  // ONE direct-mode run: the monitor samples the access stream, which is
  // identical whether or not the cache hierarchy simulates it, and every
  // golden output the campaign depends on (windowAccesses and with it the
  // pre-drawn crash sequence, finalIteration, verify metric, region shares)
  // is a function of the access stream and the architectural values — both
  // routing-independent. Skipping the cache simulation here is the bulk of
  // the sampled mode's large-footprint win.
  if (monitor != nullptr && !config_.monitor.trackedGolden) rt.setDirect(true);
  rt.setBulk(config_.bulk);
  rt.setScan(config_.scan);
  rt.setPlan(config_.plan);
  rt.setTraceRun("golden");
  // Installed before setup so the apps' setup-phase writes are sampled too —
  // a candidate written only during setup must not look dead.
  if (monitor != nullptr) rt.setMonitor(monitor);
  armProfile(rt);
  auto app = factory_();
  const auto result = Driver::freshRun(*app, rt);
  rt.setMonitor(nullptr);
  CampaignMetrics::get().recordRun(rt.events());
  accumulateProfile(rt);
  EC_CHECK_MSG(!result.interrupted, "golden run interrupted: " + result.interruptReason);
  EC_CHECK_MSG(result.verification.pass,
               "golden run failed its own acceptance verification (" +
                   app->info().name + "): " + result.verification.detail);

  GoldenStats golden;
  golden.windowAccesses = rt.windowAccesses();
  golden.finalIteration = result.finalIteration;
  golden.events = rt.events();
  golden.footprintBytes = rt.footprintBytes();
  golden.regionCount = rt.regionCount();
  golden.persistenceOps = rt.persistenceOps();
  golden.verifyMetric = result.verification.metric;
  golden.objects = rt.objects();
  for (const auto& object : golden.objects) {
    if (object.candidate) golden.candidateBytes += object.bytes;
  }
  for (const auto& [region, accesses] : rt.regionAccesses()) {
    golden.regionTimeShare[region] =
        static_cast<double>(accesses) / static_cast<double>(golden.windowAccesses);
  }
  golden.regionIterationEnds = rt.regionIterationEnds();
  return golden;
}

void CampaignRunner::buildMonitorSummary(const memsim::RegionMonitor& monitor,
                                         const GoldenStats& golden) const {
  // Objects flushed by the persistence plan keep full tracking regardless of
  // their sampled activity: demoting them would change what the plan's
  // flush ops write to NVM.
  std::vector<runtime::ObjectId> planObjects;
  for (const auto& [point, directive] : config_.plan.points) {
    planObjects.insert(planObjects.end(), directive.objects.begin(),
                       directive.objects.end());
  }

  MonitorSummary summary;
  summary.active = true;
  summary.samples = monitor.totalSamples();
  summary.splits = monitor.totalSplits();
  summary.merges = monitor.totalMerges();
  const auto& monitored = monitor.objects();
  const auto& objects = golden.objects;
  EC_CHECK_MSG(monitored.size() == objects.size(),
               "region monitor lost track of the object set");
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const runtime::DataObjectInfo& info = objects[i];
    const memsim::MonitoredObject& mon = monitored[i];
    EC_CHECK(mon.id == info.id);
    MonitorObjectStats stats;
    stats.id = info.id;
    stats.name = info.name;
    stats.bytes = info.bytes;
    stats.candidate = info.candidate;
    stats.samples = mon.samples;
    stats.writes = mon.writes;
    stats.windowWrites = mon.windowWrites;
    for (const auto& region : mon.regions) {
      stats.regions.push_back(
          {region.base, region.bytes, region.samples, region.writes});
    }
    // Demotion policy: large non-candidates leave full value tracking.
    // Candidates never demote — their crash-time inconsistency rates are
    // the Spearman selection's input, and with demoted blocks keeping
    // metadata-only residency (Runtime::setDemotedNames) the tracked
    // candidates then behave bit-identically to full mode. Small objects
    // stay too (cheap, and region stats on them carry little signal), as
    // do plan-flushed objects (their flush ops must keep writing real
    // payload back to NVM).
    const bool inPlan = std::find(planObjects.begin(), planObjects.end(),
                                  info.id) != planObjects.end();
    stats.demoted =
        info.bytes > config_.monitor.smallObjectBytes && !inPlan && !info.candidate;
    if (stats.demoted) {
      ++summary.demotedObjects;
      summary.demotedBytes += info.bytes;
    } else {
      ++summary.trackedObjects;
      summary.trackedBytes += info.bytes;
    }
    summary.objects.push_back(std::move(stats));
  }
  monitorState_ = std::move(summary);

  auto& metrics = CampaignMetrics::get();
  metrics.monitorRuns.add();
  metrics.regionSamples.add(monitorState_.samples);
  metrics.regionSplits.add(monitorState_.splits);
  metrics.regionMerges.add(monitorState_.merges);
  metrics.monitorDemotedObjects.add(monitorState_.demotedObjects);
  metrics.monitorDemotedBytes.add(monitorState_.demotedBytes);
  metrics.monitorTrackedObjects.add(monitorState_.trackedObjects);

  if (telemetry::tracing()) {
    for (const auto& stats : monitorState_.objects) {
      telemetry::TraceEvent("region_snapshot")
          .field("run", "golden")
          .field("object", stats.name)
          .field("bytes", stats.bytes)
          .field("regions", static_cast<std::uint64_t>(stats.regions.size()))
          .field("samples", stats.samples)
          .field("writes", stats.writes)
          .field("window_writes", stats.windowWrites)
          .field("demoted", stats.demoted)
          .emit();
    }
  }
  EC_LOG_INFO("region monitor: " << monitorState_.samples << " samples, "
                                 << monitorState_.demotedObjects
                                 << " objects demoted ("
                                 << monitorState_.demotedBytes << " bytes)");
}

void CampaignRunner::applyMonitorRouting(Runtime& rt) const {
  if (!monitorState_.active) return;
  rt.setDemotedNames(monitorState_.demotedNames());
}

namespace {

/// Throws unless the resumed journal was drawn for exactly this campaign.
void checkHeaderMatches(const JournalHeader& journal, const JournalHeader& ours,
                        const std::string& path) {
  const auto mismatch = [&path](const std::string& what) {
    throw std::runtime_error("--resume " + path + ": journal " + what +
                             " does not match this campaign");
  };
  if (journal.app != ours.app) mismatch("app (" + journal.app + ")");
  if (journal.seed != ours.seed) mismatch("seed");
  if (journal.tests != ours.tests) mismatch("test count");
  if (journal.mode != ours.mode) mismatch("snapshot mode");
  if (journal.planFingerprint != ours.planFingerprint) mismatch("persistence plan");
  if (journal.windowAccesses != ours.windowAccesses) mismatch("golden crash window");
  if (journal.monitor != ours.monitor) mismatch("monitor mode");
  // A shard journal resumes only under the same --shard i/k; a merged (or
  // legacy) journal is unsharded on both sides and passes trivially.
  if (journal.shardCount != ours.shardCount || journal.shardIndex != ours.shardIndex) {
    mismatch("shard (" + std::to_string(journal.shardIndex) + "/" +
             std::to_string(journal.shardCount) + ")");
  }
}

}  // namespace

/// The worker child's request loop body (one call per request frame). Runs
/// the same runOneTest/runRestart the in-process evaluator runs — byte-for-
/// byte the same simulation — and ships the result (or the failure), the
/// run's MemEvents, the profile increment and the buffered trace lines back
/// through the pipe protocol. Lives outside the anonymous namespace so
/// CampaignRunner can befriend it into its private evaluator internals.
struct ForkChildServer {
  const CampaignRunner& runner;
  const GoldenStats& golden;

  void serve(int slot, const std::string& request,
             const WorkerPool::ChildChannel& ch) const {
    (void)slot;
    WireReader req(request);
    const std::uint8_t op = req.u8();
    ChildRunCollector collector;
    collector.crashInjectionsBase = telemetry::MetricsRegistry::instance()
                                        .counter("runtime.crash_injections")
                                        .value();
    g_childRunCollector = &collector;
    static ChildFaultContext faultCtx;
    faultCtx.plan = runner.config_.inject;
    faultCtx.blackBox = ch.arena();
    faultCtx.responseFd = ch.responseFd();
    g_childFault = runner.config_.inject.active() ? &faultCtx : nullptr;
    try {
      switch (op) {
        case 'T': {
          const std::uint64_t trial = req.u64();
          const std::uint64_t crashIndex = req.u64();
          runDecided(ch, collector, trial, [&](CrashTestRecord& record) {
            runner.runOneTest(golden, crashIndex,
                              static_cast<std::size_t>(trial), nullptr, record);
          });
          break;
        }
        case 'R': {
          const std::uint64_t trial = req.u64();
          const SweepCapture capture =
              decodeCapture(req, ch.arena(), ch.arenaBytes());
          runDecided(ch, collector, trial, [&](CrashTestRecord& record) {
            runner.runRestart(golden, capture, static_cast<std::size_t>(trial),
                              nullptr, record);
          });
          break;
        }
        case 'S':
          runSweepChild(req, ch, collector);
          break;
        default:
          throw std::runtime_error("fork worker: unknown request op");
      }
    } catch (...) {
      g_childRunCollector = nullptr;
      throw;  // escapes to childMain: bad_alloc -> OOM exit, rest -> protocol
    }
    g_childRunCollector = nullptr;
  }

 private:
  /// Run one attempt (whole trial or restart), then ship an 'r' frame:
  /// status 0 carries the serialized record, status 1 the exception text and
  /// formatted crash-site path. Both carry trace/events/profile — a failed
  /// attempt still simulated runs the parent must account, exactly as the
  /// in-process evaluator records them before its exception propagates.
  template <typename Attempt>
  void runDecided(const WorkerPool::ChildChannel& ch,
                  ChildRunCollector& collector, std::uint64_t trial,
                  Attempt&& attempt) const {
    CrashTestRecord record;
    std::uint8_t status = 0;
    std::string errReason;
    std::string errPath;
    try {
      attempt(record);
    } catch (const std::bad_alloc&) {
      throw;  // childMain -> _exit(kWorkerOomExit)
    } catch (const std::exception& e) {
      status = 1;
      errReason = e.what();
      errPath = formatRegionPath(record.regionPath);
    }
    WireWriter resp;
    resp.u8('r');
    resp.u8(status);
    resp.str(takeChildTrace());
    encodeEvents(resp, collector.events);
    resp.u64(collector.crashInjectionsDelta());
    if (collector.profile.runs > 0) {
      resp.u8(1);
      encodeProfile(resp, collector.profile);
    } else {
      resp.u8(0);
    }
    if (status == 0) {
      resp.str(serializeTrialRecord(static_cast<std::size_t>(trial), record));
    } else {
      resp.str(errReason);
      resp.str(errPath);
    }
    ch.send(resp.take());
  }

  /// The sweep crashing run, child side: capture every requested index in
  /// ascending order, stream each as a 'c' frame and wait for the parent's
  /// 'A' ack (that handshake IS the restart-queue backpressure), then ship
  /// the 'e' summary.
  void runSweepChild(WireReader& req, const WorkerPool::ChildChannel& ch,
                     ChildRunCollector& collector) const {
    const std::uint64_t count = req.u64();
    std::vector<std::uint64_t> indices(static_cast<std::size_t>(count));
    std::vector<std::uint64_t> trialCounts(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      indices[i] = req.u64();
      trialCounts[i] = req.u64();
    }
    std::size_t captured = 0;
    bool completedAll = false;
    const CampaignConfig& config = runner.config_;
    Runtime rt(config.cache);
    rt.setBulk(config.bulk);
    rt.setScan(config.scan);
    rt.setPlan(config.plan);
    runner.applyMonitorRouting(rt);
    rt.setTraceRun("sweep");
    runner.armProfile(rt);
    try {
      telemetry::PhaseSpan crashSpan("crash_run",
                                     CampaignMetrics::get().crashRunUs);
      auto app = runner.factory_();
      app->setup(rt);
      app->initialize(rt);
      rt.armCrash(indices.back());
      runner.installFault(rt);
      std::vector<std::uint64_t> armIndices = indices;
      rt.armCaptures(std::move(armIndices), [&](const CrashEvent& at) {
        const std::uint64_t index = indices[captured];
        SweepCapture capture;
        capture.crashAccessIndex = index;
        capture.region = at.activeRegion;
        capture.regionPath = at.regionPath;
        capture.crashIteration = at.iteration;
        {
          telemetry::PhaseSpan postmortemSpan(
              "postmortem", CampaignMetrics::get().postmortemUs);
          for (const auto& object : rt.objects()) {
            if (!object.candidate) continue;
            capture.inconsistentRate[object.id] = rt.inconsistentRate(object.id);
            capture.snapshots[object.id] = config.mode == SnapshotMode::NvmImage
                                               ? rt.dumpObjectNvm(object.id)
                                               : rt.dumpObjectCurrent(object.id);
          }
          capture.restartIteration = config.mode == SnapshotMode::NvmImage
                                         ? rt.bookmarkedIterationNvm()
                                         : at.iteration;
        }
        if (telemetry::tracing()) {
          telemetry::TraceEvent("sweep_capture")
              .field("run", rt.traceRun())
              .field("crash_access", index)
              .field("region", at.activeRegion)
              .field("iteration", at.iteration)
              .field("trials", trialCounts[captured])
              .emit();
        }
        ++captured;
        WireWriter frame;
        frame.u8('c');
        frame.u64(index);
        encodeCapture(frame, capture, ch.arena(), ch.arenaBytes());
        ch.send(frame.take());
        std::string ack;
        if (!ch.recv(ack) || ack.empty() || ack[0] != 'A') throw SweepAbort{};
      });
      const auto run = Driver::run(*app, rt, 1, golden.finalIteration);
      (void)run;
      EC_CHECK_MSG(false, "armed crash did not fire — app is non-deterministic");
    } catch (const CrashEvent&) {
      completedAll = captured == indices.size();
    } catch (const SweepAbort&) {
      // Parent withdrew the ack (stop/abort); ship what we have.
    } catch (const std::bad_alloc&) {
      throw;
    } catch (const std::exception&) {
      // The parent's fallback path covers the uncaptured tail.
    }
    rt.powerLoss();
    runner.noteRun(rt);
    WireWriter resp;
    resp.u8('e');
    resp.u8(completedAll ? 1 : 0);
    resp.u64(captured);
    resp.str(takeChildTrace());
    encodeEvents(resp, collector.events);
    resp.u64(collector.crashInjectionsDelta());
    if (collector.profile.runs > 0) {
      resp.u8(1);
      encodeProfile(resp, collector.profile);
    } else {
      resp.u8(0);
    }
    ch.send(resp.take());
  }
};

CampaignResult CampaignRunner::run() const {
  const ResilienceConfig& res = config_.resilience;
  EC_CHECK_MSG(config_.shard.count >= 1 && config_.shard.index >= 0 &&
                   config_.shard.index < config_.shard.count,
               "shard index outside [0, count)");
  if (telemetry::tracing()) {
    telemetry::TraceEvent event("campaign_begin");
    event.field("tests", config_.numTests)
        .field("seed", config_.seed)
        .field("mode", config_.mode == SnapshotMode::NvmImage ? "nvm" : "coherent")
        .field("plan_points", static_cast<std::uint64_t>(config_.plan.points.size()));
    if (config_.shard.active()) {
      event.field("shard", config_.shard.index).field("shards", config_.shard.count);
    }
    event.emit();
  }

  // Parse any resume journal before spending time on the golden run, so a
  // bad path/file fails fast.
  std::optional<JournalReplay> replay;
  if (!res.resumePath.empty()) replay = readJournal(res.resumePath);

  {
    // A runner can be reused; each run() aggregates its own profile.
    std::lock_guard<std::mutex> lock(profileMutex_);
    profile_ = CampaignProfile{};
  }

  CampaignResult result;
  result.plannedTests = config_.numTests;
  monitorState_ = MonitorSummary{};

  // Sampled monitoring: the adaptive region monitor rides the golden run in
  // the parent, before any crash index is drawn or worker forked — summary
  // and demotion set are identical at any --threads and --isolation. The
  // monitor samples the access stream, so windowAccesses — and with it the
  // whole pre-drawn crash sequence — is identical to a full-monitoring
  // campaign even when the golden run goes direct (monitor.trackedGolden
  // unset): the stream does not depend on the cache simulation.
  std::optional<memsim::RegionMonitor> monitor;
  if (config_.monitor.mode == MonitorMode::Sampled) {
    memsim::RegionMonitorConfig monitorConfig;
    monitorConfig.seed = config_.seed;
    monitorConfig.sampleInterval = config_.monitor.sampleInterval;
    monitorConfig.maxRegionsPerObject = config_.monitor.maxRegionsPerObject;
    monitorConfig.aggregateEvery = config_.monitor.aggregateEvery;
    monitor.emplace(monitorConfig);
  }

  const auto goldenStart = std::chrono::steady_clock::now();
  result.golden = goldenRun(monitor ? &*monitor : nullptr);
  const auto goldenMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - goldenStart)
                            .count();
  EC_CHECK_MSG(result.golden.windowAccesses > 0, "empty crash window");

  if (monitor) buildMonitorSummary(*monitor, result.golden);
  result.monitor = monitorState_;

  // Pre-draw every crash point so the campaign is identical regardless of
  // the number of worker threads — and so a resumed campaign re-draws the
  // exact sequence and only executes the trials the journal is missing.
  Rng rng(config_.seed);
  std::vector<std::uint64_t> crashIndices(static_cast<std::size_t>(config_.numTests));
  for (auto& index : crashIndices) {
    index = rng.between(1, result.golden.windowAccesses);
  }
  const std::size_t n = crashIndices.size();

  // Sharding (--shard i/k): everything above — golden run, monitor pre-pass,
  // the full pre-drawn crash sequence — is identical on every shard; only
  // the trial execution below is partitioned. Trial t belongs to shard
  // t % k, so the slices are disjoint and their union is the unsharded set.
  const ShardConfig& shard = config_.shard;
  const auto owned = [&shard](std::size_t t) { return shard.owns(t); };
  std::size_t ownedCount = n;
  if (shard.active()) {
    ownedCount = 0;
    for (std::size_t t = 0; t < n; ++t) {
      if (owned(t)) ++ownedCount;
    }
    CampaignMetrics::get().shardOwnedTrials.add(ownedCount);
    EC_LOG_INFO("shard " << shard.index << "/" << shard.count << " owns "
                         << ownedCount << " of " << n << " trials");
  }

  JournalHeader header;
  header.app = config_.appLabel;
  header.seed = config_.seed;
  header.tests = config_.numTests;
  header.mode = config_.mode == SnapshotMode::NvmImage ? "nvm" : "coherent";
  header.planFingerprint = planFingerprint(config_.plan);
  header.windowAccesses = result.golden.windowAccesses;
  header.monitor = monitorState_.active ? "sampled" : "";
  if (shard.active()) {
    // Self-describing shard journal: coordinates, the campaign fingerprint
    // over the identity fields, and the candidate list `nvct merge` needs to
    // rebuild the CSV without re-running the app. Unsharded headers carry
    // none of this (byte-identical to pre-sharding journals).
    header.shardIndex = shard.index;
    header.shardCount = shard.count;
    header.campaignHash = campaignHash(header);
    for (const auto& object : result.golden.objects) {
      if (object.candidate) {
        header.candidates.push_back(JournalCandidate{object.id, object.name});
      }
    }
  }

  // Per-index decision slots. A trial is decided once it has a record or a
  // failure; interruption simply leaves the rest unset.
  std::vector<std::optional<CrashTestRecord>> records(n);
  std::vector<std::optional<TrialFailure>> failures(n);

  std::size_t resumedTrials = 0;
  std::size_t resumedFailures = 0;
  if (replay) {
    checkHeaderMatches(replay->header, header, res.resumePath);
    for (auto& [trial, record] : replay->trials) {
      if (trial >= n) {
        throw std::runtime_error("--resume " + res.resumePath +
                                 ": trial index out of range");
      }
      EC_CHECK_MSG(record.crashAccessIndex == crashIndices[trial],
                   "resumed journal crash point diverges from the re-drawn "
                   "sequence — journal does not belong to this campaign");
      records[trial] = std::move(record);
      ++resumedTrials;
    }
    for (auto& [trial, failure] : replay->failures) {
      if (trial >= n) {
        throw std::runtime_error("--resume " + res.resumePath +
                                 ": failure index out of range");
      }
      failures[trial] = std::move(failure);
      ++resumedFailures;
    }
    CampaignMetrics::get().resumedTrials.add(resumedTrials);
    EC_LOG_INFO("resumed " << resumedTrials << " trials and " << resumedFailures
                           << " failures from " << res.resumePath);
    if (telemetry::tracing()) {
      telemetry::TraceEvent("campaign_resumed")
          .field("journal", res.resumePath)
          .field("trials", static_cast<std::uint64_t>(resumedTrials))
          .field("failures", static_cast<std::uint64_t>(resumedFailures))
          .emit();
    }
  }

  std::optional<TrialJournal> journal;
  if (!res.journalPath.empty()) {
    journal.emplace(res.journalPath, header, res.journalFlushEvery);
    for (std::size_t t = 0; t < n; ++t) {
      if (records[t]) journal->recordTrial(t, *records[t]);
      else if (failures[t]) journal->recordFailure(*failures[t]);
    }
    journal->flush();  // always leave a resumable file behind, even header-only
  }

  // Progress, percentage and ETA all count the shard-local slice: a shard
  // that owns N/k trials is "done" at N/k decided, and its ETA reflects its
  // own remaining work, not the fleet's.
  telemetry::ProgressMeter meter(
      (config_.appLabel.empty() ? "campaign" : config_.appLabel) + " trials",
      ownedCount, config_.progress ? &std::cerr : nullptr);
  std::mutex tallyMutex;
  std::array<int, 4> tally{};
  std::size_t done = 0;
  for (const auto& record : records) {
    if (record) tally[static_cast<int>(record->response)] += 1;
  }
  done = resumedTrials + resumedFailures;
  // The ETA rate must count only trials this process actually ran: resumed
  // trials landed instantly and would otherwise skew the estimate.
  meter.setBaseline(done);
  if (config_.progress && done > 0) meter.update(done, responseTally(tally));
  // Called for every newly decided trial (completion or permanent failure).
  // Progress is throttled to percentage-point or >=100 ms boundaries: with
  // small trials at high --threads, having every decided trial format a
  // tally string and serialise on the meter is measurable overhead.
  std::size_t lastPercent = ownedCount == 0 ? 0 : done * 100 / ownedCount;
  auto lastEmit = std::chrono::steady_clock::now();
  const auto recordDecided = [&](const CrashTestRecord* record) {
    std::array<int, 4> counts{};
    std::size_t doneNow = 0;
    bool emit = false;
    {
      std::lock_guard<std::mutex> lock(tallyMutex);
      if (record != nullptr) tally[static_cast<int>(record->response)] += 1;
      doneNow = ++done;
      if (config_.progress) {
        const std::size_t percent = ownedCount == 0 ? 100 : doneNow * 100 / ownedCount;
        const auto now = std::chrono::steady_clock::now();
        if (doneNow == ownedCount || percent != lastPercent ||
            now - lastEmit >= std::chrono::milliseconds(100)) {
          lastPercent = percent;
          lastEmit = now;
          counts = tally;
          emit = true;
        }
      }
    }
    if (emit) meter.update(doneNow, responseTally(counts));
  };

  int threads = config_.threads == 0
                    ? static_cast<int>(std::thread::hardware_concurrency())
                    : config_.threads;
  threads = std::max(1, std::min<int>(threads, std::max(1, config_.numTests)));

  // Distinct crash index -> undecided trials that drew it, ascending: the
  // sweep's capture plan. Duplicate indices (several trials drawing the same
  // crash point) share one capture. Decided (resumed) trials never re-enter.
  std::map<std::uint64_t, std::vector<std::size_t>> sweepPlan;
  if (config_.sweep) {
    // Sharded: the sweep captures only the crash points this shard's owned
    // trials drew. Duplicate indices whose trials straddle shards are
    // captured independently on each shard — the capture is deterministic,
    // so the decided records still merge byte-identically.
    for (std::size_t t = 0; t < n; ++t) {
      if (!owned(t)) continue;
      if (!records[t] && !failures[t]) sweepPlan[crashIndices[t]].push_back(t);
    }
  }
  const bool sweepActive = !sweepPlan.empty();

  // Process isolation: the fork evaluator runs every crashing run / restart
  // in a pre-forked worker child; any child death is classified into a
  // TrialFailure kind instead of taking the campaign down.
  const bool forkIsolation =
      res.isolation == IsolationMode::Fork && res.isolate && n > 0;

  // Watchdog deadline base: explicit --trial-timeout-ms wins; otherwise a
  // golden run multiple. The base is the budget for ONE golden run's worth
  // of work; each arming scales it by the trial's expected work (see
  // wholeTrialBudget/restartBudget below), so the deadline tracks what the
  // trial actually owes instead of assuming the worst case for every draw.
  // Under fork isolation the deadline is enforced by the parent with a hard
  // SIGKILL of the child (WorkerPool::recv), so no cooperative watchdog —
  // or compiled-in cancellation poll — is needed: even a hung busy loop
  // that never reaches a poll is reclaimed.
  std::optional<Watchdog> watchdog;
  std::uint64_t timeoutMs = 0;
  if (res.isolate && (res.trialTimeoutMs > 0 || res.goldenTimeoutMultiple > 0)) {
    if (!forkIsolation && !runtime::kWatchdogCompiledIn) {
      EC_LOG_WARN(
          "trial watchdog requested but the cancellation poll is compiled out "
          "(EASYCRASH_WATCHDOG=OFF); deadlines are disabled");
    } else {
      // Under sampled monitoring the golden run is direct-mode and several
      // times cheaper than the tracked crashing runs the deadline must
      // cover; scale the base so --timeout-golden-multiple keeps its
      // tracked-golden meaning.
      const double timeoutBaseMs =
          static_cast<double>(goldenMs) *
          (monitor && !config_.monitor.trackedGolden ? 10.0 : 1.0);
      timeoutMs = res.trialTimeoutMs > 0
                      ? res.trialTimeoutMs
                      : std::max<std::uint64_t>(
                            1000, static_cast<std::uint64_t>(
                                      timeoutBaseMs * res.goldenTimeoutMultiple));
      // One slot per restart worker plus, under the sweep, a slot for the
      // producer's crashing run (re-armed at every capture, suspended while
      // parked on restart backpressure).
      if (!forkIsolation) {
        watchdog.emplace(std::chrono::milliseconds(timeoutMs),
                         threads + (sweepActive ? 1 : 0));
      }
    }
  }

  std::atomic<int> failureCount{static_cast<int>(resumedFailures)};
  std::atomic<std::uint64_t> retryCount{0};
  std::atomic<std::uint64_t> timeoutCount{0};
  std::atomic<bool> budgetExceeded{false};
  std::atomic<int> newlyCompleted{0};
  std::atomic<std::size_t> next{0};
  // Without isolation an exception must abort the campaign, but letting it
  // escape a pool thread would terminate the process: the first one is
  // parked here and rethrown on the calling thread after the join.
  std::atomic<bool> workersAbort{false};
  std::exception_ptr firstError;
  std::mutex errorMutex;
  const auto parkError = [&] {
    {
      std::lock_guard<std::mutex> lock(errorMutex);
      if (!firstError) firstError = std::current_exception();
    }
    workersAbort.store(true);
  };

  // Sweep-claimed trials: flagged by the producer just before the capture is
  // queued (the queue mutex publishes the write), so the per-trial fallback
  // loop never re-runs a trial the restart pipeline already owns.
  std::vector<char> claimed(sweepActive ? n : 0, 0);

  // Candidate bytes of one capture (probed on an un-simulated setup): sizes
  // the sweep queue's backpressure window and the fork workers' snapshot
  // arenas.
  std::size_t captureBytes = 0;
  if (forkIsolation || sweepActive) {
    Runtime probe;
    auto app = factory_();
    app->setup(probe);
    for (const auto& object : probe.objects()) {
      if (object.candidate) captureBytes += object.bytes;
    }
  }

  // --- Fork evaluator: pre-forked worker pool ---------------------------
  // One slot per restart worker plus, under the sweep, one for the producer's
  // crashing run. Forked AFTER the golden run and the sweep plan so children
  // inherit every immutable input by memory (config, plan, golden stats) —
  // respawned workers fork from the same immutable state, so a replacement
  // child is indistinguishable from the original. Declared before the status
  // writer: the sampler dereferences the pool, so the pool must outlive it.
  std::atomic<std::uint64_t> workerDeaths{0};
  ForkChildServer childServer{*this, result.golden};
  std::unique_ptr<WorkerPool> pool;
  if (forkIsolation) {
    const std::size_t arenaBytes =
        kBlackBoxBytes + captureBytes + captureBytes / 8 + 4096;
    WorkerPool::ForkHooks hooks;
    // Never fork while another campaign thread holds the trace or metrics
    // lock: the child would inherit a locked mutex it can never unlock.
    hooks.prepare = [] {
      telemetry::TraceSink::instance().lockForFork();
      telemetry::MetricsRegistry::instance().lockForFork();
    };
    hooks.parent = [] {
      telemetry::MetricsRegistry::instance().unlockAfterFork();
      telemetry::TraceSink::instance().unlockAfterFork();
    };
    hooks.child = [](int) {
      telemetry::MetricsRegistry::instance().unlockAfterFork();
      telemetry::TraceSink::instance().unlockAfterFork();
      // Reroute trace lines into a buffer the response frames ship to the
      // parent; the parent's stream (and its buffered bytes) stay its own.
      g_childTraceBuf = new std::ostringstream();
      telemetry::TraceSink::instance().redirectInForkedChild(g_childTraceBuf);
    };
    pool = std::make_unique<WorkerPool>(
        threads + (sweepActive ? 1 : 0), arenaBytes,
        [&childServer](int slot, const std::string& request,
                       const WorkerPool::ChildChannel& ch) {
          childServer.serve(slot, request, ch);
        },
        hooks);
    CampaignMetrics::get().workerSpawns.add(pool->spawnCount());
  }

  // Live status snapshots (docs/OBSERVABILITY.md): a background thread
  // samples the campaign's shared tallies on an interval and atomically
  // rewrites the snapshot file; run() writes one final done/interrupted
  // snapshot after the drain, so a SIGINT'd campaign leaves the truth behind.
  const auto campaignStart = std::chrono::steady_clock::now();
  const std::size_t resumedDone = resumedTrials + resumedFailures;
  std::optional<StatusWriter> status;
  if (!config_.statusPath.empty()) {
    status.emplace(
        config_.statusPath,
        std::chrono::milliseconds(std::max(1, config_.statusIntervalMs)),
        [&, resumedDone] {
          CampaignStatus s;
          s.app = config_.appLabel;
          // Shard-local totals: `tests` is this shard's owned slice, so
          // decided/tests and the ETA describe THIS process's work — a
          // fleet watcher sums the slices (they partition [0, N)).
          s.plannedTests = static_cast<int>(ownedCount);
          s.shardIndex = shard.index;
          s.shardCount = shard.count;
          {
            std::lock_guard<std::mutex> lock(tallyMutex);
            s.decided = done;
            s.responses = tally;
          }
          s.resumed = resumedDone;
          s.failures = static_cast<std::uint64_t>(std::max(0, failureCount.load()));
          s.retries = retryCount.load();
          s.timeouts = timeoutCount.load();
          s.queueDepth = static_cast<std::uint64_t>(
              std::max(0.0, CampaignMetrics::get().sweepQueueDepth.value()));
          if (pool) {
            s.workers = static_cast<std::uint64_t>(std::max(0, pool->aliveCount()));
          }
          s.workerDeaths = workerDeaths.load();
          s.elapsedS = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - campaignStart)
                           .count();
          const std::uint64_t fresh =
              s.decided > s.resumed ? s.decided - s.resumed : 0;
          if (s.elapsedS > 0.0 && fresh > 0) {
            s.trialsPerS = static_cast<double>(fresh) / s.elapsedS;
            if (ownedCount >= s.decided) {
              s.etaS = static_cast<double>(ownedCount - s.decided) / s.trialsPerS;
            }
          }
          s.interrupted = stopRequested();
          return s;
        });
  }

  // Per-trial watchdog budget in base-timeout units (--trial-timeout-ms or
  // the golden multiple stays the base). A whole trial simulates the crashing
  // run up to its crash index (crashIndex/windowAccesses of a golden run)
  // plus a restart that may legitimately run to the iteration cap; a
  // sweep-fed restart only owes the post-bookmark iterations. Without this
  // scaling a slow late-crash trial times out under a deadline that is ample
  // for the average draw.
  const auto wholeTrialBudget = [&](std::uint64_t crashIndex) {
    return static_cast<double>(crashIndex) /
               static_cast<double>(result.golden.windowAccesses) +
           static_cast<double>(config_.maxIterationFactor);
  };
  const auto restartBudget = [&](const SweepCapture& capture) {
    const int cap = result.golden.finalIteration * config_.maxIterationFactor;
    return static_cast<double>(cap - capture.restartIteration) /
           static_cast<double>(std::max(1, result.golden.finalIteration));
  };

  // --- Fork evaluator, parent side --------------------------------------

  // Scale the base deadline by the trial's work budget, exactly as the
  // in-process watchdog arms it. Zero = no deadline.
  const auto forkDeadline = [&](double budget) {
    if (timeoutMs == 0) return std::chrono::milliseconds(0);
    const double ms = static_cast<double>(timeoutMs) * std::max(1.0, budget);
    return std::chrono::milliseconds(static_cast<std::int64_t>(ms) + 1);
  };

  // Account one consumed worker death: counters, live status, worker_exit
  // trace (slot, pid, classification) for the flight recorder.
  const auto noteWorkerDeath = [&](int slot, pid_t pid,
                                   const WorkerPool::Reply& reply) {
    workerDeaths.fetch_add(1);
    if (reply.timedOut || reply.death == WorkerDeath::Killed) {
      CampaignMetrics::get().workerKills.add();
    } else {
      CampaignMetrics::get().workerCrashes.add();
    }
    if (telemetry::tracing()) {
      telemetry::TraceEvent("worker_exit")
          .field("slot", slot)
          .field("pid", static_cast<std::int64_t>(pid))
          .field("death", toString(reply.death))
          .field("signal", reply.signal)
          .field("exit_code", reply.exitStatus)
          .field("timeout", reply.timedOut)
          .emit();
    }
  };

  // Deliberate parent-side kill (stop/abort drain, desynchronized stream):
  // consume the death like any other so the books stay balanced.
  const auto killWorker = [&](int slot) {
    if (!pool->alive(slot)) return;
    const pid_t pid = pool->pid(slot);
    pool->kill(slot);
    WorkerPool::Reply reply;
    reply.death = WorkerDeath::Killed;
    reply.signal = SIGKILL;
    noteWorkerDeath(slot, pid, reply);
  };

  // One request/response round-trip on the slot's worker. Throws
  // ChildFailure (mapped onto the retry/failure machinery by decideTrial)
  // on any classified death; a dead slot is respawned at the START of the
  // attempt, so the attempt that follows a death always gets a live worker.
  const auto forkRoundTrip = [&](int w, const std::string& request,
                                 double budget) -> std::string {
    bool respawned = false;
    if (!pool->ensureWorker(w, &respawned)) {
      throw ChildFailure{"protocol", false, "worker fork failed", ""};
    }
    if (respawned) {
      CampaignMetrics::get().workerSpawns.add();
      CampaignMetrics::get().workerRespawns.add();
      if (telemetry::tracing()) {
        telemetry::TraceEvent("worker_respawn")
            .field("slot", w)
            .field("pid", static_cast<std::int64_t>(pool->pid(w)))
            .emit();
      }
    }
    // Clear the black box so a stale fault report can never be attributed
    // to this attempt's death.
    reinterpret_cast<BlackBox*>(pool->arena(w))->magic = 0;
    const pid_t pid = pool->pid(w);
    (void)pool->send(w, request);  // a dead worker surfaces in recv()
    WorkerPool::Reply reply = pool->recv(w, forkDeadline(budget));
    if (!reply.ok) {
      noteWorkerDeath(w, pid, reply);
      throw classifyDeath(reply, timeoutMs, pool->arena(w));
    }
    return std::move(reply.frame);
  };

  // Decode one 'r' result frame: splice the child's trace, account its
  // simulated runs, then either yield the record or rethrow the child's
  // exception as an attempt failure. A frame that does not decode is a
  // protocol death — the stream may be desynchronized, so the worker is
  // killed and the next attempt starts fresh.
  const auto parseTrialReply = [&](int w, const std::string& frame,
                                   std::size_t t, CrashTestRecord& record) {
    try {
      WireReader r(frame);
      if (r.u8() != 'r') throw std::runtime_error("unexpected reply tag");
      const std::uint8_t status = r.u8();
      const std::string trace = r.str();
      if (!trace.empty()) telemetry::TraceSink::instance().writeRaw(trace);
      CampaignMetrics::get().recordRun(decodeEvents(r));
      const std::uint64_t crashed = r.u64();
      if (crashed > 0) {
        telemetry::MetricsRegistry::instance()
            .counter("runtime.crash_injections")
            .add(crashed);
      }
      if (r.u8() != 0) {
        const CampaignProfile shipped = decodeProfile(r);
        std::lock_guard<std::mutex> lock(profileMutex_);
        profile_.merge(shipped);
      }
      if (status == 0) {
        std::string line = r.str();
        if (!line.empty() && line.back() == '\n') line.pop_back();
        std::size_t trialFromWire = 0;
        record = parseTrialRecord(line, &trialFromWire);
        EC_CHECK_MSG(trialFromWire == t, "fork: reply names the wrong trial");
        return;
      }
      std::string reason = r.str();
      std::string regionPath = r.str();
      throw ChildFailure{"exception", false, std::move(reason),
                         std::move(regionPath)};
    } catch (const ChildFailure&) {
      throw;
    } catch (const std::exception& e) {
      killWorker(w);
      throw ChildFailure{"protocol", false,
                         std::string("worker reply malformed: ") + e.what(), ""};
    }
  };

  const auto forkTrialAttempt = [&](std::size_t t, int w, double budget,
                                    CrashTestRecord& record) {
    telemetry::ScopedTimer trialTimer(CampaignMetrics::get().trialUs);
    WireWriter req;
    req.u8('T');
    req.u64(t);
    req.u64(crashIndices[t]);
    parseTrialReply(w, forkRoundTrip(w, req.take(), budget), t, record);
  };

  const auto forkRestartAttempt = [&](std::size_t t, int w,
                                      const SweepCapture& capture, double budget,
                                      CrashTestRecord& record) {
    telemetry::ScopedTimer trialTimer(CampaignMetrics::get().trialUs);
    WireWriter req;
    req.u8('R');
    req.u64(t);
    encodeCapture(req, capture, pool->arena(w), pool->arenaBytes());
    parseTrialReply(w, forkRoundTrip(w, req.take(), budget), t, record);
  };

  // Decides trial t on worker slot w by running `attempt` — the whole trial
  // on the per-trial path, just the restart when a sweep capture supplies
  // the crashing half — honouring isolation, the watchdog (armed with the
  // trial's deadline budget) and the retry budget. Exceptions propagate only
  // when isolation is off (the legacy all-or-nothing behaviour).
  const auto decideTrial = [&](std::size_t t, int w, double budget, auto&& attempt) {
    if (!res.isolate) {
      CrashTestRecord record;
      attempt(nullptr, record);
      records[t] = std::move(record);
    } else {
      const int maxAttempts = 1 + std::max(0, res.maxRetries);
      TrialFailure failure;
      failure.trial = t;
      failure.crashAccessIndex = crashIndices[t];
      bool completed = false;
      for (int att = 1; att <= maxAttempts && !completed; ++att) {
        failure.attempts = att;
        std::atomic<bool>* cancel = watchdog ? &watchdog->arm(w, budget) : nullptr;
        CrashTestRecord record;
        try {
          attempt(cancel, record);
          completed = true;
          records[t] = std::move(record);
        } catch (const runtime::TrialCancelled&) {
          failure.kind = "timeout";
          failure.timeout = true;
          failure.reason = "watchdog: trial exceeded its " +
                           std::to_string(timeoutMs) + " ms deadline";
          failure.regionPath = formatRegionPath(record.regionPath);
          CampaignMetrics::get().trialTimeouts.add();
          timeoutCount.fetch_add(1);
        } catch (const ChildFailure& cf) {
          failure.kind = cf.kind;
          failure.timeout = cf.timeout;
          failure.reason = cf.reason;
          failure.regionPath = cf.regionPath;
          if (cf.timeout) {
            CampaignMetrics::get().trialTimeouts.add();
            timeoutCount.fetch_add(1);
          }
        } catch (const std::exception& e) {
          failure.kind = "exception";
          failure.timeout = false;
          failure.reason = e.what();
          failure.regionPath = formatRegionPath(record.regionPath);
        }
        if (watchdog) watchdog->disarm(w);
        if (!completed && att < maxAttempts) {
          CampaignMetrics::get().trialRetries.add();
          retryCount.fetch_add(1);
          EC_LOG_DEBUG("trial " << t << " attempt " << att
                                << " failed (" << failure.reason << "), retrying");
          const std::uint64_t backoff = retryBackoffMs(res, config_.seed, t, att);
          if (backoff > 0) {
            CampaignMetrics::get().retryBackoff.observe(
                static_cast<double>(backoff));
            std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
          }
        }
      }
      if (!completed) {
        CampaignMetrics::get().trialFailures.add();
        EC_LOG_WARN("trial " << t << " abandoned after " << failure.attempts
                             << " attempt(s): " << failure.reason);
        if (telemetry::tracing()) {
          telemetry::TraceEvent("trial_failed")
              .field("trial", static_cast<std::uint64_t>(t))
              .field("crash_access", failure.crashAccessIndex)
              .field("kind", failure.kind)
              .field("timeout", failure.timeout)
              .field("attempts", failure.attempts)
              .field("reason", failure.reason)
              .emit();
        }
        failures[t] = failure;
        if (journal) journal->recordFailure(failure);
        const int count = failureCount.fetch_add(1) + 1;
        if (res.maxFailures >= 0 && count > res.maxFailures) {
          budgetExceeded.store(true);
        }
        recordDecided(nullptr);
        return;
      }
    }
    commitTrial(t, *records[t]);
    if (journal) journal->recordTrial(t, *records[t]);
    recordDecided(&*records[t]);
    const int completedNow = newlyCompleted.fetch_add(1) + 1;
    if (res.stopAfterTrials > 0 && completedNow >= res.stopAfterTrials) {
      requestStop();
    }
  };

  const auto runTrial = [&](std::size_t t, int w) {
    const double budget = wholeTrialBudget(crashIndices[t]);
    if (forkIsolation) {
      decideTrial(t, w, budget,
                  [&](const std::atomic<bool>*, CrashTestRecord& record) {
                    forkTrialAttempt(t, w, budget, record);
                  });
      return;
    }
    decideTrial(t, w, budget,
                [&](const std::atomic<bool>* cancel, CrashTestRecord& record) {
                  runOneTest(result.golden, crashIndices[t], t, cancel, record);
                });
  };

  // Per-trial claim loop: the whole campaign without the sweep, the fallback
  // for whatever the sweep could not capture with it.
  const auto worker = [&](int w) {
    for (;;) {
      if (stopRequested() || budgetExceeded.load() || workersAbort.load()) return;
      const std::size_t t = next.fetch_add(1);
      if (t >= n) return;
      if (!owned(t)) continue;  // another shard's trial (--shard i/k)
      if (records[t] || failures[t]) continue;  // replayed from the journal
      if (!claimed.empty() && claimed[t] != 0) continue;  // owned by the sweep
      runTrial(t, w);
    }
  };

  // --- Single-sweep evaluator -------------------------------------------
  // ONE crashing run visits every pending crash point in ascending order and
  // captures it read-only; a real CrashEvent armed at the last index ends
  // the run without simulating the tail. Restarts are consumed concurrently
  // by the worker pool, overlapping with the sweep itself.
  const auto runSweep = [&](RestartQueue& queue, int slot) {
    const std::size_t plannedPoints = sweepPlan.size();
    std::size_t capturedPoints = 0;
    bool completedAll = false;
    CampaignMetrics::get().sweepRuns.add();
    Runtime rt(config_.cache);
    rt.setBulk(config_.bulk);
    rt.setScan(config_.scan);
    rt.setPlan(config_.plan);
    applyMonitorRouting(rt);
    rt.setTraceRun("sweep");
    armProfile(rt);
    if (watchdog) rt.setCancelFlag(&watchdog->arm(slot));
    try {
      // One span covers the whole sweep crashing run (no single trial to
      // stamp); per-capture post-mortems get their own spans inside the hook.
      telemetry::PhaseSpan crashSpan("crash_run", CampaignMetrics::get().crashRunUs);
      auto app = factory_();
      app->setup(rt);
      app->initialize(rt);
      std::vector<std::uint64_t> indices;
      indices.reserve(plannedPoints);
      for (const auto& [index, trials] : sweepPlan) indices.push_back(index);
      auto pending = sweepPlan.cbegin();
      rt.armCrash(indices.back());
      rt.armCaptures(std::move(indices), [&](const CrashEvent& at) {
        EC_CHECK(pending != sweepPlan.cend());
        const std::uint64_t index = pending->first;
        const std::vector<std::size_t>& trials = pending->second;
        ++pending;
        auto capture = std::make_shared<SweepCapture>();
        // The trial records the pre-drawn index it was armed for, exactly as
        // the per-trial path does, while the context fields come from the
        // access that crossed it — identical to what CrashEvent would carry.
        capture->crashAccessIndex = index;
        capture->region = at.activeRegion;
        capture->regionPath = at.regionPath;
        capture->crashIteration = at.iteration;
        {
          // The post-mortem of the first trial sharing this capture; queue
          // backpressure below is deliberately outside the span.
          telemetry::PhaseSpan postmortemSpan(
              "postmortem", CampaignMetrics::get().postmortemUs,
              static_cast<std::int64_t>(trials.front()));
          for (const auto& object : rt.objects()) {
            if (!object.candidate) continue;
            capture->inconsistentRate[object.id] = rt.inconsistentRate(object.id);
            capture->snapshots[object.id] = config_.mode == SnapshotMode::NvmImage
                                                ? rt.dumpObjectNvm(object.id)
                                                : rt.dumpObjectCurrent(object.id);
          }
          capture->restartIteration = config_.mode == SnapshotMode::NvmImage
                                          ? rt.bookmarkedIterationNvm()
                                          : at.iteration;
        }
        ++capturedPoints;
        CampaignMetrics::get().sweepCaptures.add();
        if (telemetry::tracing()) {
          telemetry::TraceEvent("sweep_capture")
              .field("run", rt.traceRun())
              .field("crash_access", index)
              .field("region", at.activeRegion)
              .field("iteration", at.iteration)
              .field("trials", static_cast<std::uint64_t>(trials.size()))
              .emit();
        }
        for (const std::size_t t : trials) {
          claimed[t] = 1;
          // Waiting on a full queue is restart backpressure, not a hung
          // simulation: suspend the sweep's deadline while parked.
          if (watchdog) watchdog->disarm(slot);
          const bool queued = queue.push({t, capture});
          if (watchdog) watchdog->arm(slot);
          if (!queued) throw SweepAbort{};
        }
        if (stopRequested()) throw SweepAbort{};
      });
      const auto run = Driver::run(*app, rt, 1, result.golden.finalIteration);
      (void)run;
      EC_CHECK_MSG(false, "armed crash did not fire — app is non-deterministic");
    } catch (const CrashEvent&) {
      // The arranged end of the sweep: the last pending index was captured
      // on this very access, then the crash fired.
      completedAll = capturedPoints == plannedPoints;
    } catch (const SweepAbort&) {
      // Stop requested or the restart pipeline went away; not an error.
    } catch (const runtime::TrialCancelled&) {
      EC_LOG_WARN("sweep run cancelled by the watchdog after " << capturedPoints
                  << "/" << plannedPoints << " capture(s); uncaptured trials "
                  "fall back to the per-trial path");
    } catch (const std::exception& e) {
      EC_LOG_WARN("sweep run failed (" << e.what() << ") after " << capturedPoints
                  << "/" << plannedPoints << " capture(s); uncaptured trials "
                  "fall back to the per-trial path");
    } catch (...) {
      EC_LOG_WARN("sweep run failed after " << capturedPoints << "/"
                  << plannedPoints << " capture(s); uncaptured trials fall "
                  "back to the per-trial path");
    }
    if (watchdog) watchdog->disarm(slot);
    rt.powerLoss();
    CampaignMetrics::get().recordRun(rt.events());
    accumulateProfile(rt);
    if (!completedAll) {
      CampaignMetrics::get().sweepFallbacks.add(plannedPoints - capturedPoints);
    }
    if (telemetry::tracing()) {
      telemetry::TraceEvent("sweep_end")
          .field("run", rt.traceRun())
          .field("captures", static_cast<std::uint64_t>(capturedPoints))
          .field("planned", static_cast<std::uint64_t>(plannedPoints))
          .field("completed", completedAll)
          .emit();
    }
  };

  // The sweep crashing run, fork side: the run itself executes inside a
  // worker child (ForkChildServer::runSweepChild) and streams each capture
  // back as a 'c' frame; the parent decodes it out of the shared arena,
  // queues the restarts, and acks — the ack handshake IS the restart-queue
  // backpressure the in-process sweep gets from queue.push(). Any worker
  // death mid-sweep falls back to the per-trial path for the uncaptured
  // tail, exactly like an in-process sweep failure.
  const auto forkSweep = [&](RestartQueue& queue, int slot) {
    const std::size_t plannedPoints = sweepPlan.size();
    std::size_t capturedPoints = 0;
    bool completedAll = false;
    CampaignMetrics::get().sweepRuns.add();
    try {
      bool respawned = false;
      if (!pool->ensureWorker(slot, &respawned)) {
        throw ChildFailure{"protocol", false, "worker fork failed", ""};
      }
      if (respawned) {
        CampaignMetrics::get().workerSpawns.add();
        CampaignMetrics::get().workerRespawns.add();
      }
      reinterpret_cast<BlackBox*>(pool->arena(slot))->magic = 0;
      const pid_t pid = pool->pid(slot);
      WireWriter req;
      req.u8('S');
      req.u64(static_cast<std::uint64_t>(sweepPlan.size()));
      for (const auto& [index, trials] : sweepPlan) {
        req.u64(index);
        req.u64(static_cast<std::uint64_t>(trials.size()));
      }
      (void)pool->send(slot, req.take());
      auto pendingEntry = sweepPlan.cbegin();
      for (;;) {
        WorkerPool::Reply reply = pool->recv(slot, forkDeadline(1.0));
        if (!reply.ok) {
          noteWorkerDeath(slot, pid, reply);
          const ChildFailure cf = classifyDeath(reply, timeoutMs, pool->arena(slot));
          EC_LOG_WARN("sweep worker died (" << cf.reason << ") after "
                      << capturedPoints << "/" << plannedPoints
                      << " capture(s); uncaptured trials fall back to the "
                      "per-trial path");
          break;
        }
        WireReader r(reply.frame);
        const std::uint8_t tag = r.u8();
        if (tag == 'c') {
          const std::uint64_t index = r.u64();
          auto capture = std::make_shared<SweepCapture>(
              decodeCapture(r, pool->arena(slot), pool->arenaBytes()));
          EC_CHECK_MSG(pendingEntry != sweepPlan.cend() &&
                           pendingEntry->first == index,
                       "fork sweep: capture out of order");
          const std::vector<std::size_t>& trials = pendingEntry->second;
          ++pendingEntry;
          ++capturedPoints;
          CampaignMetrics::get().sweepCaptures.add();
          bool keepGoing =
              !stopRequested() && !budgetExceeded.load() && !workersAbort.load();
          if (keepGoing) {
            for (const std::size_t t : trials) {
              claimed[t] = 1;
              if (!queue.push({t, capture})) {
                keepGoing = false;
                break;
              }
            }
          }
          // A non-'A' ack tells the child to wind down; it still ships its
          // 'e' summary so the crashing run's events are accounted.
          (void)pool->send(slot, std::string(keepGoing ? "A" : "X"));
        } else if (tag == 'e') {
          completedAll = r.u8() != 0;
          (void)r.u64();  // child's capture count; we counted the 'c' frames
          const std::string trace = r.str();
          if (!trace.empty()) telemetry::TraceSink::instance().writeRaw(trace);
          CampaignMetrics::get().recordRun(decodeEvents(r));
          const std::uint64_t crashed = r.u64();
          if (crashed > 0) {
            telemetry::MetricsRegistry::instance()
                .counter("runtime.crash_injections")
                .add(crashed);
          }
          if (r.u8() != 0) {
            const CampaignProfile shipped = decodeProfile(r);
            std::lock_guard<std::mutex> lock(profileMutex_);
            profile_.merge(shipped);
          }
          break;
        } else {
          throw std::runtime_error("fork sweep: unexpected frame tag");
        }
      }
    } catch (const ChildFailure& cf) {
      EC_LOG_WARN("sweep worker unavailable (" << cf.reason << "); trials fall "
                  "back to the per-trial path");
    } catch (const std::exception& e) {
      killWorker(slot);
      EC_LOG_WARN("fork sweep failed (" << e.what() << ") after "
                  << capturedPoints << "/" << plannedPoints
                  << " capture(s); uncaptured trials fall back to the "
                  "per-trial path");
    }
    if (!completedAll) {
      CampaignMetrics::get().sweepFallbacks.add(plannedPoints - capturedPoints);
    }
    if (telemetry::tracing()) {
      telemetry::TraceEvent("sweep_end")
          .field("run", "sweep")
          .field("captures", static_cast<std::uint64_t>(capturedPoints))
          .field("planned", static_cast<std::uint64_t>(plannedPoints))
          .field("completed", completedAll)
          .emit();
    }
  };

  // Restart worker: drain the capture queue, then fall back to the per-trial
  // loop for anything the sweep missed. A stop request abandons the queued
  // captures (the queue is deep — draining it would decide most of the
  // campaign after the operator asked it to stop); in-flight restarts finish
  // and are journaled, exactly like the per-trial path.
  const auto sweepWorker = [&](RestartQueue& queue, int w) {
    try {
      for (;;) {
        if (stopRequested() || budgetExceeded.load() || workersAbort.load()) {
          queue.abort();
          return;
        }
        auto entry = queue.pop();
        if (!entry) break;
        const double budget = restartBudget(*entry->capture);
        if (forkIsolation) {
          decideTrial(entry->trial, w, budget,
                      [&](const std::atomic<bool>*, CrashTestRecord& record) {
                        forkRestartAttempt(entry->trial, w, *entry->capture,
                                           budget, record);
                      });
          continue;
        }
        decideTrial(entry->trial, w, budget,
                    [&](const std::atomic<bool>* cancel, CrashTestRecord& record) {
                      telemetry::ScopedTimer trialTimer(CampaignMetrics::get().trialUs);
                      runRestart(result.golden, *entry->capture, entry->trial, cancel,
                                 record);
                    });
      }
      worker(w);
    } catch (...) {
      parkError();
      queue.abort();
    }
  };

  if (sweepActive) {
    // Queue depth is the pipeline's overlap window: deep enough that the
    // sweep outruns the restart drain and the producer joins the pool for
    // most of the campaign, while backpressure bounds live snapshot memory
    // (~64 MB of candidate bytes) for large apps. Never below the
    // double-buffer floor that keeps every worker fed.
    constexpr std::size_t kSnapshotBudgetBytes = std::size_t{64} << 20;
    const std::size_t capacity =
        std::max(static_cast<std::size_t>(std::max(2, 2 * threads)),
                 kSnapshotBudgetBytes / std::max<std::size_t>(1, captureBytes));
    RestartQueue queue(capacity);
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back(sweepWorker, std::ref(queue), w);
    }
    // The calling thread is the producer.
    if (forkIsolation) {
      forkSweep(queue, threads);
    } else {
      runSweep(queue, threads);
    }
    queue.close();
    // The producer has nothing left to feed: join the restart pool on the
    // sweep's watchdog slot instead of idling in join() as the legacy
    // path's calling thread does.
    sweepWorker(queue, threads);
    for (auto& thread : pool) thread.join();
  } else if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back([&, w] {
        try {
          worker(w);
        } catch (...) {
          parkError();
        }
      });
    }
    for (auto& thread : pool) thread.join();
  }

  if (journal) journal->close();

  if (firstError) std::rethrow_exception(firstError);

  if (budgetExceeded.load()) {
    throw std::runtime_error(
        "campaign aborted: " + std::to_string(failureCount.load()) +
        " trial failures exceeded the budget of " + std::to_string(res.maxFailures) +
        (res.journalPath.empty() ? "" : " — journal kept at " + res.journalPath));
  }

  // Only the owned slice owes a decision: an unowned trial left undecided is
  // another shard's work, not an interruption of this one.
  std::size_t undecided = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (owned(t) && !records[t] && !failures[t]) ++undecided;
  }
  result.interrupted = undecided > 0;
  if (result.interrupted) {
    EC_LOG_WARN("campaign interrupted: " << (ownedCount - undecided) << "/"
                                         << ownedCount << " trials decided"
                                         << (stopSignal() != 0
                                                 ? " (signal " +
                                                       std::to_string(stopSignal()) + ")"
                                                 : ""));
    if (telemetry::tracing()) {
      telemetry::TraceEvent("campaign_interrupted")
          .field("decided", static_cast<std::uint64_t>(ownedCount - undecided))
          .field("remaining", static_cast<std::uint64_t>(undecided))
          .field("signal", stopSignal())
          .emit();
    }
  }

  result.resumedTrials = resumedTrials;
  for (std::size_t t = 0; t < n; ++t) {
    if (records[t]) {
      result.tests.push_back(std::move(*records[t]));
    } else if (failures[t]) {
      result.failures.push_back(std::move(*failures[t]));
    }
  }

  {
    std::lock_guard<std::mutex> lock(profileMutex_);
    result.profile = std::move(profile_);
    profile_ = CampaignProfile{};
  }

  if (status) status->writeFinal(result.interrupted);

  if (config_.progress && !result.interrupted) meter.finish(responseTally(tally));
  if (telemetry::tracing()) {
    const auto counts = result.responseCounts();
    telemetry::TraceEvent("campaign_end")
        .field("tests", static_cast<std::uint64_t>(result.tests.size()))
        .field("s1", counts[0])
        .field("s2", counts[1])
        .field("s3", counts[2])
        .field("s4", counts[3])
        .field("recomputability", result.recomputability())
        .field("failures", static_cast<std::uint64_t>(result.failures.size()))
        .field("interrupted", result.interrupted)
        .emit();
  }
  return result;
}

void CampaignRunner::runOneTest(const GoldenStats& golden, std::uint64_t crashIndex,
                                std::size_t trial, const std::atomic<bool>* cancel,
                                CrashTestRecord& record) const {
  telemetry::ScopedTimer trialTimer(CampaignMetrics::get().trialUs);
  record = CrashTestRecord{};
  record.crashAccessIndex = crashIndex;

  // --- Crashing run -----------------------------------------------------
  Runtime rt(config_.cache);
  rt.setBulk(config_.bulk);
  rt.setScan(config_.scan);
  rt.setPlan(config_.plan);
  applyMonitorRouting(rt);
  rt.setCancelFlag(cancel);
  rt.setTraceRun("crash:" + std::to_string(trial));
  armProfile(rt);
  auto app = factory_();
  app->setup(rt);
  app->initialize(rt);
  rt.armCrash(crashIndex);
  installFault(rt);

  SweepCapture capture;
  capture.crashAccessIndex = crashIndex;
  try {
    // The span ends when the armed CrashEvent unwinds out of the try block,
    // so phase_end marks the crash instant.
    telemetry::PhaseSpan crashSpan("crash_run", CampaignMetrics::get().crashRunUs,
                                   static_cast<std::int64_t>(trial));
    const auto run = Driver::run(*app, rt, 1, golden.finalIteration);
    // Determinism guarantees the armed crash fires; reaching here is a bug
    // in the app (non-deterministic access sequence).
    (void)run;
    EC_CHECK_MSG(false, "armed crash did not fire — app is non-deterministic");
  } catch (const CrashEvent& crash) {
    telemetry::PhaseSpan postmortemSpan("postmortem",
                                        CampaignMetrics::get().postmortemUs,
                                        static_cast<std::int64_t>(trial));
    capture.region = crash.activeRegion;
    capture.regionPath = crash.regionPath;
    capture.crashIteration = crash.iteration;
    // NVCT post-mortem: inconsistency rates before the caches are dropped.
    for (const auto& object : rt.objects()) {
      if (!object.candidate) continue;
      capture.inconsistentRate[object.id] = rt.inconsistentRate(object.id);
      capture.snapshots[object.id] = config_.mode == SnapshotMode::NvmImage
                                         ? rt.dumpObjectNvm(object.id)
                                         : rt.dumpObjectCurrent(object.id);
    }
    capture.restartIteration = config_.mode == SnapshotMode::NvmImage
                                   ? rt.bookmarkedIterationNvm()
                                   : crash.iteration;
    rt.powerLoss();
  } catch (...) {
    // The armed crash never fired — the app (or the watchdog) threw mid-run,
    // so there is no CrashEvent to read the crash site from. Take it from
    // the runtime's throw-site snapshot (the live stack is already unwound)
    // so the failure report still names where the run died.
    const auto& path = rt.throwRegionPath();
    record.region = path.empty() ? rt.activeRegion() : path.back();
    record.regionPath = path;
    throw;
  }
  noteRun(rt);

  runRestart(golden, capture, trial, cancel, record);
}

void CampaignRunner::runRestart(const GoldenStats& golden, const SweepCapture& capture,
                                std::size_t trial, const std::atomic<bool>* cancel,
                                CrashTestRecord& record) const {
  record = CrashTestRecord{};
  record.crashAccessIndex = capture.crashAccessIndex;
  record.region = capture.region;
  record.regionPath = capture.regionPath;
  record.crashIteration = capture.crashIteration;
  record.restartIteration = capture.restartIteration;
  record.inconsistentRate = capture.inconsistentRate;

  telemetry::PhaseSpan restartSpan("restart", CampaignMetrics::get().restartUs,
                                   static_cast<std::int64_t>(trial));
  Runtime restartRt(config_.cache);
  // Restarts run in direct-access mode: their outcome (S1-S4, extra
  // iterations) depends only on computed values, which direct mode preserves
  // bit-for-bit, and the paper's restarts execute natively anyway — only the
  // crashing run's cache-vs-NVM divergence needs the hierarchy simulated.
  restartRt.setDirect(true);
  restartRt.setBulk(config_.bulk);
  restartRt.setScan(config_.scan);
  restartRt.setPlan(config_.plan);
  restartRt.setCancelFlag(cancel);
  restartRt.setTraceRun("restart:" + std::to_string(trial));
  auto restartApp = factory_();
  restartApp->setup(restartRt);
  restartApp->initialize(restartRt);
  for (const auto& [id, bytes] : capture.snapshots) {
    restartRt.restoreObject(id, bytes);
  }

  const int cap = golden.finalIteration * config_.maxIterationFactor;
  const auto rerun =
      Driver::run(*restartApp, restartRt, record.restartIteration, cap);
  noteRun(restartRt);

  if (rerun.interrupted) {
    record.response = Response::S3;
    record.note = rerun.interruptReason;
  } else if (!rerun.verification.pass) {
    record.response = Response::S4;
    record.note = rerun.verification.detail;
  } else {
    record.extraIterations = rerun.finalIteration - golden.finalIteration;
    if (record.extraIterations <= 0) {
      record.extraIterations = 0;
      record.response = Response::S1;
    } else {
      record.response = Response::S2;
    }
    record.note = rerun.verification.detail;
  }
  // The trials/responses tallies and the trial_end trace are committed by
  // the parent (commitTrial) once the decision is final, so a forked
  // attempt's accounting lands campaign-side regardless of which process
  // simulated it.
}

}  // namespace easycrash::crash
