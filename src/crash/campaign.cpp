#include "easycrash/crash/campaign.hpp"

#include <atomic>
#include <iostream>
#include <mutex>
#include <thread>
#include <utility>

#include "easycrash/common/check.hpp"
#include "easycrash/common/rng.hpp"
#include "easycrash/runtime/runtime.hpp"
#include "easycrash/telemetry/metrics.hpp"
#include "easycrash/telemetry/progress.hpp"
#include "easycrash/telemetry/timer.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace easycrash::crash {

using runtime::CrashEvent;
using runtime::Driver;
using runtime::Runtime;

namespace {

/// Mirrors of the MemEvents counters, accumulated over every run a campaign
/// simulates (golden + each trial's crashing and restart runs). These are
/// the `memsim.*` counters in --metrics-out; their names match the
/// MemEvents fields so a metrics snapshot correlates 1:1 with Table 4.
struct CampaignMetrics {
  telemetry::Counter& loads;
  telemetry::Counter& stores;
  telemetry::Counter& nvmBlockReads;
  telemetry::Counter& nvmBlockWrites;
  telemetry::Counter& flushDirty;
  telemetry::Counter& flushClean;
  telemetry::Counter& flushNonResident;
  telemetry::Counter& flushInducedNvmWrites;
  telemetry::Counter& trials;
  std::array<telemetry::Counter*, 4> responses;
  telemetry::Histogram& trialUs;

  static CampaignMetrics& get() {
    auto& reg = telemetry::MetricsRegistry::instance();
    static CampaignMetrics m{
        reg.counter("memsim.loads"),
        reg.counter("memsim.stores"),
        reg.counter("memsim.nvmBlockReads"),
        reg.counter("memsim.nvmBlockWrites"),
        reg.counter("memsim.flushDirty"),
        reg.counter("memsim.flushClean"),
        reg.counter("memsim.flushNonResident"),
        reg.counter("memsim.flushInducedNvmWrites"),
        reg.counter("campaign.trials"),
        {&reg.counter("campaign.responses.s1"), &reg.counter("campaign.responses.s2"),
         &reg.counter("campaign.responses.s3"), &reg.counter("campaign.responses.s4")},
        reg.histogram("campaign.trial_us",
                      telemetry::Histogram::exponentialBounds(100.0, 4.0, 12))};
    return m;
  }

  void recordRun(const memsim::MemEvents& ev) {
    loads.add(ev.loads);
    stores.add(ev.stores);
    nvmBlockReads.add(ev.nvmBlockReads);
    nvmBlockWrites.add(ev.nvmBlockWrites);
    flushDirty.add(ev.flushDirty);
    flushClean.add(ev.flushClean);
    flushNonResident.add(ev.flushNonResident);
    flushInducedNvmWrites.add(ev.flushInducedNvmWrites);
  }
};

std::string responseTally(const std::array<int, 4>& counts) {
  std::string out;
  for (int s = 0; s < 4; ++s) {
    if (s) out += ' ';
    out += 'S';
    out += static_cast<char>('1' + s);
    out += ':';
    out += std::to_string(counts[s]);
  }
  return out;
}

}  // namespace

const char* toString(Response response) {
  switch (response) {
    case Response::S1: return "S1";
    case Response::S2: return "S2";
    case Response::S3: return "S3";
    case Response::S4: return "S4";
  }
  return "?";
}

double CampaignResult::recomputability() const {
  if (tests.empty()) return 0.0;
  const auto counts = responseCounts();
  return static_cast<double>(counts[0]) / static_cast<double>(tests.size());
}

double CampaignResult::successWithExtra() const {
  if (tests.empty()) return 0.0;
  const auto counts = responseCounts();
  return static_cast<double>(counts[0] + counts[1]) /
         static_cast<double>(tests.size());
}

std::array<int, 4> CampaignResult::responseCounts() const {
  std::array<int, 4> counts{};
  for (const auto& t : tests) counts[static_cast<int>(t.response)] += 1;
  return counts;
}

double CampaignResult::averageExtraIterations() const {
  int n = 0;
  long long total = 0;
  for (const auto& t : tests) {
    if (t.response == Response::S2) {
      total += t.extraIterations;
      ++n;
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(total) / n;
}

std::map<runtime::PointId, double> CampaignResult::regionRecomputability() const {
  std::map<runtime::PointId, int> s1, all;
  for (const auto& t : tests) {
    all[t.region] += 1;
    if (t.response == Response::S1) s1[t.region] += 1;
  }
  std::map<runtime::PointId, double> out;
  for (const auto& [region, n] : all) {
    out[region] = static_cast<double>(s1[region]) / static_cast<double>(n);
  }
  return out;
}

std::map<runtime::PointId, int> CampaignResult::regionTestCounts() const {
  std::map<runtime::PointId, int> all;
  for (const auto& t : tests) all[t.region] += 1;
  return all;
}

std::map<runtime::ObjectId, double> CampaignResult::meanInconsistentRate() const {
  std::map<runtime::ObjectId, double> sum;
  for (const auto& t : tests) {
    for (const auto& [id, rate] : t.inconsistentRate) sum[id] += rate;
  }
  for (auto& [id, total] : sum) total /= static_cast<double>(tests.size());
  return sum;
}

CampaignRunner::CampaignRunner(runtime::AppFactory factory, CampaignConfig config)
    : factory_(std::move(factory)), config_(std::move(config)) {
  EC_CHECK(config_.numTests >= 0);
  EC_CHECK(config_.maxIterationFactor >= 1);
}

GoldenStats CampaignRunner::goldenRun() const {
  Runtime rt(config_.cache);
  rt.setPlan(config_.plan);
  rt.setTraceRun("golden");
  auto app = factory_();
  const auto result = Driver::freshRun(*app, rt);
  CampaignMetrics::get().recordRun(rt.events());
  EC_CHECK_MSG(!result.interrupted, "golden run interrupted: " + result.interruptReason);
  EC_CHECK_MSG(result.verification.pass,
               "golden run failed its own acceptance verification (" +
                   app->info().name + "): " + result.verification.detail);

  GoldenStats golden;
  golden.windowAccesses = rt.windowAccesses();
  golden.finalIteration = result.finalIteration;
  golden.events = rt.events();
  golden.footprintBytes = rt.footprintBytes();
  golden.regionCount = rt.regionCount();
  golden.persistenceOps = rt.persistenceOps();
  golden.verifyMetric = result.verification.metric;
  golden.objects = rt.objects();
  for (const auto& object : golden.objects) {
    if (object.candidate) golden.candidateBytes += object.bytes;
  }
  for (const auto& [region, accesses] : rt.regionAccesses()) {
    golden.regionTimeShare[region] =
        static_cast<double>(accesses) / static_cast<double>(golden.windowAccesses);
  }
  golden.regionIterationEnds = rt.regionIterationEnds();
  return golden;
}

CampaignResult CampaignRunner::run() const {
  if (telemetry::tracing()) {
    telemetry::TraceEvent("campaign_begin")
        .field("tests", config_.numTests)
        .field("seed", config_.seed)
        .field("mode", config_.mode == SnapshotMode::NvmImage ? "nvm" : "coherent")
        .field("plan_points", static_cast<std::uint64_t>(config_.plan.points.size()))
        .emit();
  }

  CampaignResult result;
  result.golden = goldenRun();
  EC_CHECK_MSG(result.golden.windowAccesses > 0, "empty crash window");

  // Pre-draw every crash point so the campaign is identical regardless of
  // the number of worker threads.
  Rng rng(config_.seed);
  std::vector<std::uint64_t> crashIndices(static_cast<std::size_t>(config_.numTests));
  for (auto& index : crashIndices) {
    index = rng.between(1, result.golden.windowAccesses);
  }

  result.tests.resize(crashIndices.size());
  telemetry::ProgressMeter meter(
      (config_.appLabel.empty() ? "campaign" : config_.appLabel) + " trials",
      crashIndices.size(), config_.progress ? &std::cerr : nullptr);
  std::mutex tallyMutex;
  std::array<int, 4> tally{};
  std::size_t done = 0;
  const auto recordOutcome = [&](const CrashTestRecord& record) {
    std::array<int, 4> counts;
    std::size_t doneNow;
    {
      std::lock_guard<std::mutex> lock(tallyMutex);
      tally[static_cast<int>(record.response)] += 1;
      counts = tally;
      doneNow = ++done;
    }
    if (config_.progress) meter.update(doneNow, responseTally(counts));
  };

  int threads = config_.threads == 0
                    ? static_cast<int>(std::thread::hardware_concurrency())
                    : config_.threads;
  threads = std::max(1, std::min<int>(threads, config_.numTests));
  if (threads <= 1) {
    for (std::size_t t = 0; t < crashIndices.size(); ++t) {
      result.tests[t] = runOneTest(result.golden, crashIndices[t], t);
      recordOutcome(result.tests[t]);
    }
  } else {
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      for (;;) {
        const std::size_t t = next.fetch_add(1);
        if (t >= crashIndices.size()) return;
        result.tests[t] = runOneTest(result.golden, crashIndices[t], t);
        recordOutcome(result.tests[t]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }

  if (config_.progress) meter.finish(responseTally(tally));
  if (telemetry::tracing()) {
    const auto counts = result.responseCounts();
    telemetry::TraceEvent("campaign_end")
        .field("tests", static_cast<std::uint64_t>(result.tests.size()))
        .field("s1", counts[0])
        .field("s2", counts[1])
        .field("s3", counts[2])
        .field("s4", counts[3])
        .field("recomputability", result.recomputability())
        .emit();
  }
  return result;
}

CrashTestRecord CampaignRunner::runOneTest(const GoldenStats& golden,
                                           std::uint64_t crashIndex,
                                           std::size_t trial) const {
  telemetry::ScopedTimer trialTimer(CampaignMetrics::get().trialUs);
  CrashTestRecord record;
  record.crashAccessIndex = crashIndex;

  // --- Crashing run -----------------------------------------------------
  Runtime rt(config_.cache);
  rt.setPlan(config_.plan);
  rt.setTraceRun("crash:" + std::to_string(trial));
  auto app = factory_();
  app->setup(rt);
  app->initialize(rt);
  rt.armCrash(crashIndex);

  std::map<runtime::ObjectId, std::vector<std::uint8_t>> snapshots;
  try {
    const auto run = Driver::run(*app, rt, 1, golden.finalIteration);
    // Determinism guarantees the armed crash fires; reaching here is a bug
    // in the app (non-deterministic access sequence).
    (void)run;
    EC_CHECK_MSG(false, "armed crash did not fire — app is non-deterministic");
  } catch (const CrashEvent& crash) {
    record.region = crash.activeRegion;
    record.regionPath = crash.regionPath;
    record.crashIteration = crash.iteration;
    // NVCT post-mortem: inconsistency rates before the caches are dropped.
    for (const auto& object : rt.objects()) {
      if (object.candidate) {
        record.inconsistentRate[object.id] = rt.inconsistentRate(object.id);
      }
    }
    record.restartIteration = config_.mode == SnapshotMode::NvmImage
                                  ? rt.bookmarkedIterationNvm()
                                  : crash.iteration;
    for (const auto& object : rt.objects()) {
      if (object.candidate) {
        snapshots[object.id] = config_.mode == SnapshotMode::NvmImage
                                   ? rt.dumpObjectNvm(object.id)
                                   : rt.dumpObjectCurrent(object.id);
      }
    }
    rt.powerLoss();
  }
  CampaignMetrics::get().recordRun(rt.events());

  // --- Restart ------------------------------------------------------------
  Runtime restartRt(config_.cache);
  restartRt.setPlan(config_.plan);
  restartRt.setTraceRun("restart:" + std::to_string(trial));
  auto restartApp = factory_();
  restartApp->setup(restartRt);
  restartApp->initialize(restartRt);
  for (const auto& [id, bytes] : snapshots) {
    restartRt.restoreObject(id, bytes);
  }

  const int cap = golden.finalIteration * config_.maxIterationFactor;
  const auto rerun =
      Driver::run(*restartApp, restartRt, record.restartIteration, cap);
  CampaignMetrics::get().recordRun(restartRt.events());

  if (rerun.interrupted) {
    record.response = Response::S3;
    record.note = rerun.interruptReason;
  } else if (!rerun.verification.pass) {
    record.response = Response::S4;
    record.note = rerun.verification.detail;
  } else {
    record.extraIterations = rerun.finalIteration - golden.finalIteration;
    if (record.extraIterations <= 0) {
      record.extraIterations = 0;
      record.response = Response::S1;
    } else {
      record.response = Response::S2;
    }
    record.note = rerun.verification.detail;
  }

  CampaignMetrics::get().trials.add();
  CampaignMetrics::get().responses[static_cast<int>(record.response)]->add();
  if (telemetry::tracing()) {
    // The per-trial outcome record: crash location + restart result. This is
    // the JSONL row an external analysis joins with the CSV on `trial`.
    telemetry::TraceEvent("trial_end")
        .field("trial", static_cast<std::uint64_t>(trial))
        .field("crash_access", record.crashAccessIndex)
        .field("region", record.region)
        .field("crash_iteration", record.crashIteration)
        .field("restart_iteration", record.restartIteration)
        .field("response", toString(record.response))
        .field("extra_iterations", record.extraIterations)
        .emit();
  }
  return record;
}

}  // namespace easycrash::crash
