#include "easycrash/crash/status.hpp"

#include <cstdio>
#include <utility>

#include "easycrash/crash/resilience.hpp"
#include "easycrash/telemetry/log.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace easycrash::crash {

namespace {

void appendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

}  // namespace

std::string serializeStatus(const CampaignStatus& status) {
  std::string line = "{\"type\":\"campaign_status\",\"app\":\"";
  telemetry::appendJsonEscaped(line, status.app);
  line += "\",\"shard\":\"";
  line += std::to_string(status.shardIndex);
  line += '/';
  line += std::to_string(status.shardCount);
  line += "\",\"tests\":";
  line += std::to_string(status.plannedTests);
  line += ",\"decided\":";
  line += std::to_string(status.decided);
  line += ",\"resumed\":";
  line += std::to_string(status.resumed);
  for (int s = 0; s < 4; ++s) {
    line += ",\"s";
    line += static_cast<char>('1' + s);
    line += "\":";
    line += std::to_string(status.responses[static_cast<std::size_t>(s)]);
  }
  line += ",\"failures\":";
  line += std::to_string(status.failures);
  line += ",\"retries\":";
  line += std::to_string(status.retries);
  line += ",\"timeouts\":";
  line += std::to_string(status.timeouts);
  line += ",\"queue_depth\":";
  line += std::to_string(status.queueDepth);
  line += ",\"workers\":";
  line += std::to_string(status.workers);
  line += ",\"worker_deaths\":";
  line += std::to_string(status.workerDeaths);
  line += ",\"elapsed_s\":";
  appendDouble(line, status.elapsedS);
  line += ",\"trials_per_s\":";
  appendDouble(line, status.trialsPerS);
  line += ",\"eta_s\":";
  appendDouble(line, status.etaS);
  line += ",\"interrupted\":";
  line += status.interrupted ? "true" : "false";
  line += ",\"done\":";
  line += status.done ? "true" : "false";
  line += ",\"seq\":";
  line += std::to_string(status.seq);
  line += "}\n";
  return line;
}

StatusWriter::StatusWriter(std::string path, std::chrono::milliseconds interval,
                           Sampler sampler)
    : path_(std::move(path)),
      interval_(interval),
      sampler_(std::move(sampler)) {
  thread_ = std::thread([this] { loop(); });
}

StatusWriter::~StatusWriter() { stopThread(); }

void StatusWriter::stopThread() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StatusWriter::writeFinal(bool interrupted) {
  stopThread();
  CampaignStatus status = sampler_();
  status.interrupted = interrupted;
  status.done = true;
  writeSnapshot(std::move(status));
}

void StatusWriter::loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (cv_.wait_for(lock, interval_, [&] { return shutdown_; })) return;
    }
    writeSnapshot(sampler_());
  }
}

void StatusWriter::writeSnapshot(CampaignStatus status) {
  status.seq = ++seq_;
  try {
    atomicWriteFile(path_, serializeStatus(status));
  } catch (const std::exception& e) {
    // A failing status write must never take the campaign down.
    EC_LOG_WARN("status snapshot write failed: " << e.what());
  }
}

}  // namespace easycrash::crash
