#include "easycrash/crash/shard.hpp"

#include <array>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "easycrash/crash/report.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace easycrash::crash {

namespace {

void appendExactDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

/// Loud rejection: every validation failure names the offending journal and
/// what disagreed, so a mis-addressed shard on a 10-machine fan-out is a
/// one-line diagnosis, not a silently corrupted merge.
[[noreturn]] void reject(const std::string& path, const std::string& what) {
  throw std::runtime_error("nvct merge: " + path + ": " + what);
}

void checkIdentityMatches(const JournalHeader& h, const JournalHeader& ref,
                          const std::string& path, const std::string& refPath) {
  const auto mismatch = [&](const std::string& field) {
    reject(path, field + " does not match " + refPath +
                     " — journals were drawn for different campaigns");
  };
  if (h.app != ref.app) mismatch("app (" + h.app + " vs " + ref.app + ")");
  if (h.seed != ref.seed) mismatch("seed");
  if (h.tests != ref.tests) mismatch("test count");
  if (h.mode != ref.mode) mismatch("snapshot mode");
  if (h.planFingerprint != ref.planFingerprint) mismatch("persistence plan");
  if (h.windowAccesses != ref.windowAccesses) mismatch("golden crash window");
  if (h.monitor != ref.monitor) mismatch("monitor mode");
}

}  // namespace

ShardMerge mergeShardJournals(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    throw std::runtime_error("nvct merge: no journals given");
  }

  ShardMerge merge;
  std::string refPath;
  std::map<int, bool> seen;
  for (const std::string& path : paths) {
    JournalReplay replay = readJournal(path);
    const JournalHeader& h = replay.header;

    // Config-hash check first: a shard journal whose stamped fingerprint
    // disagrees with its own identity fields was tampered with or
    // mis-assembled, and the per-field comparison below would mis-blame the
    // other journal.
    if (h.shardCount > 1 && h.campaignHash != campaignHash(h)) {
      reject(path, "campaign fingerprint (config hash) does not match the "
                   "journal's own identity fields");
    }

    if (refPath.empty()) {
      refPath = path;
      merge.header = h;
      // The merged header is the unsharded one: exactly what the
      // single-machine run's journal carries.
      merge.header.shardIndex = 0;
      merge.header.shardCount = 1;
      merge.header.campaignHash = 0;
      merge.header.candidates.clear();
      merge.shardCount = h.shardCount;
      merge.candidates = h.candidates;
    } else {
      checkIdentityMatches(h, merge.header, path, refPath);
      if (h.shardCount != merge.shardCount) {
        reject(path, "shard count " + std::to_string(h.shardCount) +
                         " does not match " + refPath + " (" +
                         std::to_string(merge.shardCount) +
                         ") — unsharded and sharded journals cannot be mixed");
      }
      if (h.shardCount > 1 && !(h.candidates == merge.candidates)) {
        reject(path, "candidate object list does not match " + refPath);
      }
    }
    if (!seen[h.shardIndex]) {
      seen[h.shardIndex] = true;
      merge.shardsSeen.push_back(h.shardIndex);
    }

    // Ownership: a shard journal may only decide the trials the partition
    // function assigns it (trial t belongs to shard t % k). This both
    // enforces disjointness — making the last-wins fold order-independent —
    // and catches a journal copied under the wrong shard's name.
    const auto checkOwned = [&](std::size_t trial) {
      if (trial >= static_cast<std::size_t>(merge.header.tests)) {
        reject(path, "trial " + std::to_string(trial) +
                         " beyond the header's planned tests");
      }
      if (h.shardCount > 1 &&
          trial % static_cast<std::size_t>(h.shardCount) !=
              static_cast<std::size_t>(h.shardIndex)) {
        reject(path, "trial " + std::to_string(trial) + " is not owned by shard " +
                         std::to_string(h.shardIndex) + "/" +
                         std::to_string(h.shardCount) +
                         " — journal does not belong to this shard");
      }
    };
    for (auto& [trial, record] : replay.trials) {
      checkOwned(trial);
      merge.trials.insert_or_assign(trial, std::move(record));
    }
    for (auto& [trial, failure] : replay.failures) {
      checkOwned(trial);
      merge.failures.insert_or_assign(trial, std::move(failure));
    }
  }
  return merge;
}

std::string renderMergedJournal(const ShardMerge& merge) {
  // Header + every decided entry in trial order: the identical construction
  // to TrialJournal::compactLocked, so the merged journal is byte-for-byte
  // what an unsharded run leaves behind on close.
  std::string content = serializeJournalHeader(merge.header);
  auto trial = merge.trials.cbegin();
  auto failure = merge.failures.cbegin();
  while (trial != merge.trials.cend() || failure != merge.failures.cend()) {
    if (failure == merge.failures.cend() ||
        (trial != merge.trials.cend() && trial->first < failure->first)) {
      content += serializeTrialRecord(trial->first, trial->second);
      ++trial;
    } else {
      content += serializeFailureRecord(failure->second);
      ++failure;
    }
  }
  return content;
}

std::string renderMergedCsv(const ShardMerge& merge) {
  if (merge.candidates.empty()) {
    throw std::runtime_error(
        "nvct merge: cannot rebuild the CSV — the journals carry no candidate "
        "object list (only shard journals embed one)");
  }
  // Rebuild just enough of a CampaignResult for writeCampaignCsv: the
  // candidate columns and the decided trials in index order. Reusing the
  // writer (not reimplementing it) is what guarantees byte-identity with
  // the unsharded run's --csv-out.
  CampaignResult result;
  for (const JournalCandidate& candidate : merge.candidates) {
    runtime::DataObjectInfo object;
    object.id = candidate.id;
    object.name = candidate.name;
    object.candidate = true;
    result.golden.objects.push_back(std::move(object));
  }
  for (const auto& [trial, record] : merge.trials) result.tests.push_back(record);
  std::ostringstream os;
  writeCampaignCsv(result, os);
  return os.str();
}

std::string renderMergedMetrics(const ShardMerge& merge) {
  // A pure function of the identity header and the decided set — never of
  // the shard layout, wall clock, or the k separate simulations that
  // produced it — so any shard split (including k=1) that decided the same
  // trials projects byte-identical JSON.
  std::string out = "{\n  \"type\": \"campaign_merge_metrics\",\n  \"app\": \"";
  telemetry::appendJsonEscaped(out, merge.header.app);
  out += "\",\n  \"seed\": " + std::to_string(merge.header.seed);
  out += ",\n  \"tests\": " + std::to_string(merge.header.tests);
  out += ",\n  \"mode\": \"";
  telemetry::appendJsonEscaped(out, merge.header.mode);
  out += "\",\n  \"plan_fingerprint\": \"" +
         std::to_string(merge.header.planFingerprint) + '"';
  out += ",\n  \"window_accesses\": " + std::to_string(merge.header.windowAccesses);
  out += ",\n  \"decided\": " +
         std::to_string(merge.trials.size() + merge.failures.size());
  out += ",\n  \"complete\": ";
  out += merge.complete() ? "true" : "false";

  std::array<std::uint64_t, 4> responses{};
  std::uint64_t extraIterations = 0;
  for (const auto& [trial, record] : merge.trials) {
    responses[static_cast<std::size_t>(record.response)] += 1;
    if (record.response == Response::S2) {
      extraIterations += static_cast<std::uint64_t>(record.extraIterations);
    }
  }
  out += ",\n  \"responses\": {";
  for (int s = 0; s < 4; ++s) {
    if (s) out += ", ";
    out += "\"s";
    out += static_cast<char>('1' + s);
    out += "\": " + std::to_string(responses[static_cast<std::size_t>(s)]);
  }
  out += "},\n  \"extra_iterations\": " + std::to_string(extraIterations);

  std::map<std::string, std::uint64_t> failureKinds;
  for (const auto& [trial, failure] : merge.failures) ++failureKinds[failure.kind];
  out += ",\n  \"failures\": " + std::to_string(merge.failures.size());
  out += ",\n  \"failure_kinds\": {";
  bool first = true;
  for (const auto& [kind, count] : failureKinds) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    telemetry::appendJsonEscaped(out, kind);
    out += "\": " + std::to_string(count);
  }
  out += '}';

  // Per-candidate rate aggregates, keyed by object id (names are a shard-
  // header extra an unsharded journal never carried; leaving them out keeps
  // the projection identical whichever journal kind it was derived from).
  struct RateStats {
    double sum = 0.0;
    double max = 0.0;
    std::uint64_t samples = 0;
  };
  std::map<runtime::ObjectId, RateStats> rates;
  for (const auto& [trial, record] : merge.trials) {
    for (const auto& [id, rate] : record.inconsistentRate) {
      RateStats& stats = rates[id];
      stats.sum += rate;
      if (rate > stats.max) stats.max = rate;
      stats.samples += 1;
    }
  }
  out += ",\n  \"rates\": [";
  first = true;
  for (const auto& [id, stats] : rates) {
    if (!first) out += ", ";
    first = false;
    out += "{\"id\": " + std::to_string(id);
    out += ", \"samples\": " + std::to_string(stats.samples);
    out += ", \"mean\": ";
    appendExactDouble(out, stats.sum / static_cast<double>(stats.samples));
    out += ", \"max\": ";
    appendExactDouble(out, stats.max);
    out += '}';
  }
  out += "]\n}\n";
  return out;
}

JournalReplay toReplay(const ShardMerge& merge) {
  JournalReplay replay;
  replay.header = merge.header;
  replay.trials = merge.trials;
  replay.failures = merge.failures;
  return replay;
}

}  // namespace easycrash::crash
