#include "easycrash/memsim/multicore.hpp"

#include <algorithm>
#include <cstring>

#include "easycrash/common/check.hpp"
#include "easycrash/memsim/scan.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace easycrash::memsim {

void MulticoreConfig::validate() const {
  EC_CHECK_MSG(cores >= 1, "at least one core");
  EC_CHECK_MSG(blockSize > 0 && (blockSize & (blockSize - 1)) == 0,
               "block size must be a power of two");
  EC_CHECK_MSG(sharedLlc.sizeBytes >= privateCache.sizeBytes,
               "inclusive LLC must be at least as large as a private cache");
}

MulticoreSystem::MulticoreSystem(MulticoreConfig config, NvmStore& nvm)
    : config_(config), nvm_(nvm), llc_(config.sharedLlc, config.blockSize) {
  config_.validate();
  EC_CHECK(nvm_.blockSize() == config_.blockSize);
  private_.reserve(static_cast<std::size_t>(config_.cores));
  for (int c = 0; c < config_.cores; ++c) {
    private_.emplace_back(config_.privateCache, config_.blockSize);
  }
  events_.resize(static_cast<std::size_t>(config_.cores));
  // Mask ids are freshest-first: a dirty private copy (the Modified owner)
  // is newer than a dirty LLC copy, so privates take the low bits.
  for (std::size_t i = 0; i < private_.size(); ++i) {
    private_[i].attachDirtyIndex(&dirtyIndex_, static_cast<std::uint32_t>(i));
  }
  llc_.attachDirtyIndex(&dirtyIndex_, static_cast<std::uint32_t>(private_.size()));
  fillScratch_.resize(config_.blockSize);
  scanImage_.resize(config_.blockSize);
}

void MulticoreSystem::privateVictimToLlc(int core, const CacheLevel::Evicted& victim) {
  (void)core;
  const auto llcLine = llc_.find(victim.blockAddr);
  EC_CHECK_MSG(llcLine.has_value(), "inclusivity violated: private victim not in LLC");
  if (victim.dirty) {
    auto dst = llc_.data(*llcLine);
    std::copy(victim.data.begin(), victim.data.end(), dst.begin());
    llc_.setDirty(*llcLine, true);
  }
}

void MulticoreSystem::llcVictim(CacheLevel::Evicted& victim) {
  // Back-invalidate every core; at most one holds a Modified (fresher) copy.
  for (auto& cache : private_) {
    if (cache.find(victim.blockAddr)) {
      cache.extractInto(victim.blockAddr, mergeScratch_);
      if (mergeScratch_.dirty) {
        std::swap(victim.data, mergeScratch_.data);
        victim.dirty = true;
      }
    }
  }
  if (victim.dirty) {
    nvm_.writeBlock(victim.blockAddr, victim.data);
    events_[0].nvmBlockWrites += 1;  // LLC write-backs accounted globally
  }
}

std::uint32_t MulticoreSystem::acquire(int core, std::uint64_t blockAddr,
                                       bool forWrite) {
  EC_CHECK(core >= 0 && core < cores());
  CacheLevel& mine = private_[static_cast<std::size_t>(core)];
  CoherenceEvents& ev = events_[static_cast<std::size_t>(core)];

  if (const auto line = mine.find(blockAddr)) {
    ev.privateHits += 1;
    mine.touch(*line);
    if (forWrite && !mine.dirty(*line)) {
      // S -> M upgrade: invalidate every other copy.
      for (int peer = 0; peer < cores(); ++peer) {
        if (peer == core) continue;
        if (private_[static_cast<std::size_t>(peer)].find(blockAddr)) {
          private_[static_cast<std::size_t>(peer)].invalidate(blockAddr);
          ev.invalidationsSent += 1;
        }
      }
      mine.setDirty(*line, true);
    }
    return *line;
  }
  ev.privateMisses += 1;

  // Snoop: a peer holding a Modified copy must surrender the fresh data.
  for (int peer = 0; peer < cores(); ++peer) {
    if (peer == core) continue;
    CacheLevel& theirs = private_[static_cast<std::size_t>(peer)];
    const auto line = theirs.find(blockAddr);
    if (!line) continue;
    if (theirs.dirty(*line)) {
      const auto llcLine = llc_.find(blockAddr);
      EC_CHECK_MSG(llcLine.has_value(), "inclusivity violated during snoop");
      auto dst = llc_.data(*llcLine);
      const auto src = theirs.data(*line);
      std::copy(src.begin(), src.end(), dst.begin());
      llc_.setDirty(*llcLine, true);
      theirs.setDirty(*line, false);  // M -> S downgrade
      ev.ownershipTransfers += 1;
    }
    if (forWrite) {
      theirs.invalidate(blockAddr);
      ev.invalidationsSent += 1;
    }
  }

  // Fetch the block into the LLC if absent.
  if (const auto llcLine = llc_.find(blockAddr)) {
    ev.llcHits += 1;
    llc_.touch(*llcLine);
    const auto src = llc_.data(*llcLine);
    std::copy(src.begin(), src.end(), fillScratch_.begin());
  } else {
    ev.llcMisses += 1;
    ev.nvmBlockReads += 1;
    nvm_.read(blockAddr, fillScratch_);
    const auto inserted = llc_.insert(blockAddr, evictScratch_);
    if (inserted.evicted) llcVictim(evictScratch_);
    auto dst = llc_.data(inserted.line);
    std::copy(fillScratch_.begin(), fillScratch_.end(), dst.begin());
  }

  // Install in the requesting core's private cache.
  const auto installed = mine.insert(blockAddr, evictScratch_);
  if (installed.evicted) privateVictimToLlc(core, evictScratch_);
  auto dst = mine.data(installed.line);
  std::copy(fillScratch_.begin(), fillScratch_.end(), dst.begin());
  if (forWrite) mine.setDirty(installed.line, true);
  return installed.line;
}

void MulticoreSystem::load(int core, std::uint64_t addr,
                           std::span<std::uint8_t> dst) {
  std::uint64_t offset = 0;
  while (offset < dst.size()) {
    const std::uint64_t a = addr + offset;
    const std::uint64_t base = blockBase(a);
    const std::uint64_t inBlock = a - base;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(config_.blockSize - inBlock, dst.size() - offset);
    const auto line = acquire(core, base, /*forWrite=*/false);
    const auto src = private_[static_cast<std::size_t>(core)].data(line);
    std::memcpy(dst.data() + offset, src.data() + inBlock, chunk);
    events_[static_cast<std::size_t>(core)].loads += 1;
    offset += chunk;
  }
}

void MulticoreSystem::store(int core, std::uint64_t addr,
                            std::span<const std::uint8_t> src) {
  std::uint64_t offset = 0;
  while (offset < src.size()) {
    const std::uint64_t a = addr + offset;
    const std::uint64_t base = blockBase(a);
    const std::uint64_t inBlock = a - base;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(config_.blockSize - inBlock, src.size() - offset);
    const auto line = acquire(core, base, /*forWrite=*/true);
    auto dst = private_[static_cast<std::size_t>(core)].data(line);
    std::memcpy(dst.data() + inBlock, src.data() + offset, chunk);
    events_[static_cast<std::size_t>(core)].stores += 1;
    offset += chunk;
  }
}

void MulticoreSystem::loadRange(int core, std::uint64_t addr,
                                std::span<std::uint8_t> dst,
                                std::uint32_t elemSize) {
  EC_CHECK(elemSize > 0);
  CoherenceEvents& ev = events_[static_cast<std::size_t>(core)];
  std::uint64_t offset = 0;
  while (offset < dst.size()) {
    const std::uint64_t a = addr + offset;
    const std::uint64_t base = blockBase(a);
    const std::uint64_t inBlock = a - base;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(config_.blockSize - inBlock, dst.size() - offset);
    const std::uint64_t touches =
        (offset + chunk - 1) / elemSize - offset / elemSize + 1;
    const auto line = acquire(core, base, /*forWrite=*/false);
    ev.privateHits += touches - 1;
    ev.loads += touches;
    const auto src = private_[static_cast<std::size_t>(core)].data(line);
    std::memcpy(dst.data() + offset, src.data() + inBlock, chunk);
    offset += chunk;
  }
}

void MulticoreSystem::storeRange(int core, std::uint64_t addr,
                                 std::span<const std::uint8_t> src,
                                 std::uint32_t elemSize) {
  EC_CHECK(elemSize > 0);
  CoherenceEvents& ev = events_[static_cast<std::size_t>(core)];
  std::uint64_t offset = 0;
  while (offset < src.size()) {
    const std::uint64_t a = addr + offset;
    const std::uint64_t base = blockBase(a);
    const std::uint64_t inBlock = a - base;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(config_.blockSize - inBlock, src.size() - offset);
    const std::uint64_t touches =
        (offset + chunk - 1) / elemSize - offset / elemSize + 1;
    const auto line = acquire(core, base, /*forWrite=*/true);
    ev.privateHits += touches - 1;
    ev.stores += touches;
    auto dst = private_[static_cast<std::size_t>(core)].data(line);
    std::memcpy(dst.data() + inBlock, src.data() + offset, chunk);
    offset += chunk;
  }
}

std::span<const std::uint8_t> MulticoreSystem::dirtyBlockData(
    std::uint64_t blockAddr) const {
  const DirtyBlockIndex::Owner own = dirtyIndex_.owner(blockAddr);
  const CacheLevel& cache =
      own.level < private_.size() ? private_[own.level] : llc_;
  std::uint32_t line = own.line;
  if (!own.lineKnown) {
    const auto probed = cache.find(blockAddr);
    EC_DCHECK_MSG(probed.has_value(), "dirty-indexed block not resident");
    line = *probed;
  }
  EC_DCHECK_MSG(cache.valid(line) && cache.dirty(line) &&
                    cache.blockAddr(line) == blockAddr,
                "dirty-index owner record out of sync");
  return cache.data(line);
}

void MulticoreSystem::freshestBlock(std::uint64_t blockAddr,
                                    std::span<std::uint8_t> out) const {
  for (const auto& cache : private_) {
    if (const auto line = cache.find(blockAddr)) {
      if (cache.dirty(*line)) {
        const auto src = cache.data(*line);
        std::copy(src.begin(), src.end(), out.begin());
        return;
      }
    }
  }
  if (const auto line = llc_.find(blockAddr)) {
    const auto src = llc_.data(*line);
    std::copy(src.begin(), src.end(), out.begin());
    return;
  }
  nvm_.read(blockAddr, out);
}

void MulticoreSystem::flushBlock(std::uint64_t addr, FlushKind kind) {
  const std::uint64_t base = blockBase(addr);
  CoherenceEvents& ev = events_[0];

  bool resident = llc_.find(base).has_value();
  bool dirtyAnywhere = false;
  if (const auto line = llc_.find(base)) dirtyAnywhere = llc_.dirty(*line);
  for (const auto& cache : private_) {
    if (const auto line = cache.find(base)) {
      resident = true;
      dirtyAnywhere = dirtyAnywhere || cache.dirty(*line);
    }
  }

  if (!resident) {
    ev.flushNonResident += 1;
    return;
  }
  if (dirtyAnywhere) {
    std::span<std::uint8_t> fresh(fillScratch_);
    freshestBlock(base, fresh);
    nvm_.writeBlock(base, fresh);
    ev.nvmBlockWrites += 1;
    ev.flushDirty += 1;
    // All copies become clean and identical to NVM.
    for (auto& cache : private_) {
      if (const auto line = cache.find(base)) {
        auto dst = cache.data(*line);
        std::copy(fresh.begin(), fresh.end(), dst.begin());
        cache.setDirty(*line, false);
      }
    }
    if (const auto line = llc_.find(base)) {
      auto dst = llc_.data(*line);
      std::copy(fresh.begin(), fresh.end(), dst.begin());
      llc_.setDirty(*line, false);
    }
  } else {
    ev.flushClean += 1;
  }

  if (kind != FlushKind::Clwb) {
    for (auto& cache : private_) cache.invalidate(base);
    llc_.invalidate(base);
  }
}

void MulticoreSystem::flushRange(std::uint64_t addr, std::uint64_t size,
                                 FlushKind kind) {
  if (size == 0) return;
  const std::uint64_t first = blockBase(addr);
  const std::uint64_t last = blockBase(addr + size - 1);
  for (std::uint64_t b = first; b <= last; b += config_.blockSize) {
    flushBlock(b, kind);
  }
}

void MulticoreSystem::peek(std::uint64_t addr, std::span<std::uint8_t> dst) const {
  if (!scanFast_) {
    peekScalar(addr, dst);
    return;
  }
  if (dst.empty()) return;
  // Blocks dirty nowhere match NVM (MESI: a clean copy was filled from NVM
  // or written back to it), so runs of non-indexed blocks are served with
  // one bulk NVM read each; only indexed blocks resolve the freshest copy.
  const std::uint64_t end = addr + dst.size();
  std::uint64_t runStart = addr;
  const std::uint64_t first = blockBase(addr);
  const std::uint64_t last = blockBase(end - 1);
  for (std::uint64_t base = first; base <= last; base += config_.blockSize) {
    if (!dirtyIndex_.contains(base)) continue;
    const std::uint64_t lo = std::max(base, addr);
    const std::uint64_t hi = std::min(base + config_.blockSize, end);
    if (lo > runStart) {
      nvm_.read(runStart, {dst.data() + (runStart - addr), lo - runStart});
    }
    const auto src = dirtyBlockData(base);
    std::memcpy(dst.data() + (lo - addr), src.data() + (lo - base), hi - lo);
    runStart = hi;
  }
  if (runStart < end) {
    nvm_.read(runStart, {dst.data() + (runStart - addr), end - runStart});
  }
}

void MulticoreSystem::peekScalar(std::uint64_t addr,
                                 std::span<std::uint8_t> dst) const {
  std::uint64_t offset = 0;
  std::vector<std::uint8_t> block(config_.blockSize);
  while (offset < dst.size()) {
    const std::uint64_t a = addr + offset;
    const std::uint64_t base = blockBase(a);
    const std::uint64_t inBlock = a - base;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(config_.blockSize - inBlock, dst.size() - offset);
    freshestBlock(base, block);
    std::memcpy(dst.data() + offset, block.data() + inBlock, chunk);
    offset += chunk;
  }
}

std::uint64_t MulticoreSystem::inconsistentBytes(std::uint64_t addr,
                                                 std::uint64_t size) const {
  if (size == 0) return 0;
  if (!scanFast_) return inconsistentBytesScalar(addr, size);
  const std::uint64_t first = blockBase(addr);
  const std::uint64_t last = blockBase(addr + size - 1);
  const std::uint64_t blocks = (last - first) / config_.blockSize + 1;
  std::uint64_t count = 0;
  std::uint64_t compared = 0;
  std::uint64_t bytesCompared = 0;
  dirtyIndex_.forEachIn(first, last, [&](std::uint64_t base) {
    // The index owner record IS the freshest copy (the Modified owner, or
    // the LLC when no private copy is dirty — a clean private copy equals
    // the LLC's by MESI), so no freshestBlock() scratch copy and no
    // probe-every-cache walk.
    const auto fresh = dirtyBlockData(base);
    const std::uint8_t* image = nvm_.blockView(base).data();
    if (image == nullptr) {
      nvm_.read(base, scanImage_);
      image = scanImage_.data();
    }
    const std::uint64_t lo = std::max(base, addr);
    const std::uint64_t hi = std::min(base + config_.blockSize, addr + size);
    count += scan::countDiffBytes(fresh.data() + (lo - base),
                                  image + (lo - base), hi - lo);
    ++compared;
    bytesCompared += hi - lo;
  });
  if (telemetry::tracing()) {
    telemetry::TraceEvent("postmortem_scan")
        .field("addr", addr)
        .field("bytes", size)
        .field("blocks", blocks)
        .field("blocks_compared", compared)
        .field("blocks_skipped", blocks - compared)
        .field("bytes_compared", bytesCompared)
        .field("diff", count)
        .field("kernel", scan::kernelName(scan::activeKernel()))
        .emit();
  }
  return count;
}

std::uint64_t MulticoreSystem::inconsistentBytesScalar(std::uint64_t addr,
                                                       std::uint64_t size) const {
  if (size == 0) return 0;
  std::uint64_t count = 0;
  std::vector<std::uint8_t> fresh(config_.blockSize), image(config_.blockSize);
  const std::uint64_t first = blockBase(addr);
  const std::uint64_t last = blockBase(addr + size - 1);
  for (std::uint64_t base = first; base <= last; base += config_.blockSize) {
    bool dirtyAnywhere = false;
    if (const auto line = llc_.find(base)) dirtyAnywhere = llc_.dirty(*line);
    for (const auto& cache : private_) {
      if (const auto line = cache.find(base)) {
        dirtyAnywhere = dirtyAnywhere || cache.dirty(*line);
      }
    }
    if (!dirtyAnywhere) continue;
    freshestBlock(base, fresh);
    nvm_.read(base, image);
    const std::uint64_t lo = std::max(base, addr);
    const std::uint64_t hi = std::min(base + config_.blockSize, addr + size);
    for (std::uint64_t b = lo; b < hi; ++b) {
      if (fresh[b - base] != image[b - base]) ++count;
    }
  }
  return count;
}

void MulticoreSystem::invalidateAll() {
  for (auto& cache : private_) cache.invalidateAll();
  llc_.invalidateAll();
}

void MulticoreSystem::drainAll() {
  // Private dirt into the LLC first, then the LLC into NVM. The walk only
  // flips dirty bits, so it can iterate lines in place (no block list), and
  // the incremental dirty counters skip clean caches entirely.
  for (auto& cache : private_) {
    if (cache.dirtyLines() == 0) continue;
    for (std::uint32_t line = 0; line < cache.lineCount(); ++line) {
      if (!cache.valid(line) || !cache.dirty(line)) continue;
      const auto llcLine = llc_.find(cache.blockAddr(line));
      EC_CHECK_MSG(llcLine.has_value(), "inclusivity violated during drain");
      const auto src = cache.data(line);
      auto dst = llc_.data(*llcLine);
      std::copy(src.begin(), src.end(), dst.begin());
      llc_.setDirty(*llcLine, true);
      cache.setDirty(line, false);
    }
  }
  if (llc_.dirtyLines() == 0) return;
  for (std::uint32_t line = 0; line < llc_.lineCount(); ++line) {
    if (!llc_.valid(line) || !llc_.dirty(line)) continue;
    nvm_.writeBlock(llc_.blockAddr(line), llc_.data(line));
    events_[0].nvmBlockWrites += 1;
    llc_.setDirty(line, false);
  }
}

const CoherenceEvents& MulticoreSystem::coreEvents(int core) const {
  EC_CHECK(core >= 0 && core < cores());
  return events_[static_cast<std::size_t>(core)];
}

CoherenceEvents MulticoreSystem::totalEvents() const {
  CoherenceEvents total;
  for (const auto& ev : events_) {
    total.loads += ev.loads;
    total.stores += ev.stores;
    total.privateHits += ev.privateHits;
    total.privateMisses += ev.privateMisses;
    total.llcHits += ev.llcHits;
    total.llcMisses += ev.llcMisses;
    total.invalidationsSent += ev.invalidationsSent;
    total.ownershipTransfers += ev.ownershipTransfers;
    total.nvmBlockWrites += ev.nvmBlockWrites;
    total.nvmBlockReads += ev.nvmBlockReads;
    total.flushDirty += ev.flushDirty;
    total.flushClean += ev.flushClean;
    total.flushNonResident += ev.flushNonResident;
  }
  return total;
}

void MulticoreSystem::checkInvariants() const {
  std::vector<std::uint8_t> image(config_.blockSize);
  for (int core = 0; core < cores(); ++core) {
    private_[static_cast<std::size_t>(core)].forEachValid(
        [&](std::uint64_t blockAddr, bool dirty, std::span<const std::uint8_t> data) {
          // Inclusive LLC.
          const auto llcLine = llc_.find(blockAddr);
          EC_CHECK_MSG(llcLine.has_value(), "private block missing from LLC");
          // Single-writer: no other core may hold this block dirty.
          if (dirty) {
            for (int peer = 0; peer < cores(); ++peer) {
              if (peer == core) continue;
              const auto& theirs = private_[static_cast<std::size_t>(peer)];
              if (const auto line = theirs.find(blockAddr)) {
                EC_CHECK_MSG(!theirs.dirty(*line),
                             "two Modified copies of the same block");
              }
            }
          } else {
            // Shared copies mirror the LLC.
            const auto llcData = llc_.data(*llcLine);
            EC_CHECK_MSG(std::equal(data.begin(), data.end(), llcData.begin()),
                         "clean private copy differs from the LLC");
          }
        });
  }
}

}  // namespace easycrash::memsim
