#include "easycrash/memsim/config.hpp"

#include "easycrash/common/check.hpp"

namespace easycrash::memsim {

CacheConfig CacheConfig::xeonGold6126() {
  CacheConfig c;
  c.name = "xeon-gold-6126";
  c.blockSize = 64;
  c.levels = {
      CacheGeometry{32ULL * 1024, 8},            // L1D 32KB, 8-way
      CacheGeometry{1024ULL * 1024, 16},         // L2 1MB, 16-way (paper: 12-way;
                                                 // rounded so lines divide into sets)
      CacheGeometry{19ULL * 1024 * 1024 + 256 * 1024, 11},  // L3 19.25MB, 11-way
  };
  c.validate();
  return c;
}

CacheConfig CacheConfig::scaledDefault() {
  CacheConfig c;
  c.name = "scaled-default";
  c.blockSize = 64;
  c.levels = {
      CacheGeometry{2ULL * 1024, 8},    // L1 2KB
      CacheGeometry{16ULL * 1024, 8},   // L2 16KB
      CacheGeometry{64ULL * 1024, 16},  // L3 64KB
  };
  c.validate();
  return c;
}

CacheConfig CacheConfig::tiny() {
  CacheConfig c;
  c.name = "tiny";
  c.blockSize = 64;
  c.levels = {
      CacheGeometry{256, 2},
      CacheGeometry{512, 2},
      CacheGeometry{1024, 4},
  };
  c.validate();
  return c;
}

std::uint64_t CacheConfig::setsAt(std::size_t level) const {
  EC_CHECK(level < levels.size());
  const CacheGeometry& g = levels[level];
  return g.sizeBytes / blockSize / g.associativity;
}

std::uint64_t CacheConfig::llcBytes() const {
  EC_CHECK(!levels.empty());
  return levels.back().sizeBytes;
}

void CacheConfig::validate() const {
  EC_CHECK_MSG(blockSize > 0 && (blockSize & (blockSize - 1)) == 0,
               "block size must be a power of two");
  EC_CHECK_MSG(!levels.empty(), "at least one cache level required");
  std::uint64_t previousSize = 0;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const CacheGeometry& g = levels[i];
    EC_CHECK_MSG(g.sizeBytes >= blockSize, "level smaller than one block");
    const std::uint64_t lines = g.sizeBytes / blockSize;
    EC_CHECK_MSG(lines * blockSize == g.sizeBytes,
                 "level size must be a multiple of the block size");
    EC_CHECK_MSG(lines % g.associativity == 0,
                 "lines must divide evenly into sets");
    EC_CHECK_MSG(g.sizeBytes > previousSize,
                 "inclusive hierarchy requires strictly growing levels");
    previousSize = g.sizeBytes;
  }
}

const char* toString(FlushKind kind) {
  switch (kind) {
    case FlushKind::Clflush: return "clflush";
    case FlushKind::Clflushopt: return "clflushopt";
    case FlushKind::Clwb: return "clwb";
  }
  return "unknown";
}

}  // namespace easycrash::memsim
