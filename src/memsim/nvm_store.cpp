#include "easycrash/memsim/nvm_store.hpp"

#include <algorithm>
#include <cstring>

#include "easycrash/common/check.hpp"

namespace easycrash::memsim {

NvmStore::NvmStore(std::uint32_t blockSize) : blockSize_(blockSize) {
  EC_CHECK(blockSize_ > 0 && (blockSize_ & (blockSize_ - 1)) == 0);
}

void NvmStore::ensure(std::uint64_t endAddr) const {
  if (endAddr > image_.size()) {
    // Round capacity growth to 1MiB chunks to amortise resizes.
    constexpr std::uint64_t kChunk = 1ULL << 20;
    const std::uint64_t target = (endAddr + kChunk - 1) / kChunk * kChunk;
    image_.resize(target, 0);
  }
}

void NvmStore::read(std::uint64_t addr, std::span<std::uint8_t> dst) const {
  ensure(addr + dst.size());
  std::memcpy(dst.data(), image_.data() + addr, dst.size());
}

void NvmStore::writeBlock(std::uint64_t addr, std::span<const std::uint8_t> src) {
  EC_CHECK_MSG(addr % blockSize_ == 0, "block write must be block-aligned");
  EC_CHECK(src.size() == blockSize_);
  ensure(addr + blockSize_);
  std::memcpy(image_.data() + addr, src.data(), blockSize_);
  ++blockWrites_;
}

void NvmStore::poke(std::uint64_t addr, std::span<const std::uint8_t> src) {
  ensure(addr + src.size());
  std::memcpy(image_.data() + addr, src.data(), src.size());
}

void NvmStore::restoreImage(std::vector<std::uint8_t> image) {
  image_ = std::move(image);
}

}  // namespace easycrash::memsim
