#include "easycrash/memsim/nvm_store.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "easycrash/common/check.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace easycrash::memsim {

NvmStore::NvmStore(std::uint32_t blockSize) : blockSize_(blockSize) {
  EC_CHECK(blockSize_ > 0 && (blockSize_ & (blockSize_ - 1)) == 0);
}

void NvmStore::ensure(std::uint64_t endAddr) {
  // Round capacity growth to 1MiB chunks to amortise resizes.
  constexpr std::uint64_t kChunk = 1ULL << 20;
  EC_CHECK_MSG(endAddr <= std::numeric_limits<std::uint64_t>::max() - kChunk,
               "NvmStore address range overflows");
  if (endAddr > image_.size()) {
    const std::uint64_t target = (endAddr + kChunk - 1) / kChunk * kChunk;
    image_.resize(target, 0);
  }
}

void NvmStore::readSlow(std::uint64_t addr, std::span<std::uint8_t> dst) const {
  if (dst.empty()) return;
  EC_CHECK_MSG(addr + dst.size() > addr, "NvmStore read range overflows");
  // Reads never materialise backing storage: bytes beyond the written image
  // are served as zeros, so scanning a large never-written object does not
  // balloon the store (reads of unbacked NVM are architecturally zero).
  const std::uint64_t backed =
      addr < image_.size()
          ? std::min<std::uint64_t>(dst.size(), image_.size() - addr)
          : 0;
  if (backed > 0) std::memcpy(dst.data(), image_.data() + addr, backed);
  if (backed < dst.size()) std::memset(dst.data() + backed, 0, dst.size() - backed);
}

void NvmStore::writeBlock(std::uint64_t addr, std::span<const std::uint8_t> src) {
  EC_CHECK_MSG(addr % blockSize_ == 0, "block write must be block-aligned");
  EC_CHECK(src.size() == blockSize_);
  ensure(addr + blockSize_);
  std::memcpy(image_.data() + addr, src.data(), blockSize_);
  ++blockWrites_;
  if constexpr (telemetry::kTraceCompiledIn) {
    if (wearEnabled_) {
      const std::size_t block = static_cast<std::size_t>(addr / blockSize_);
      if (block >= wearProfile_.size()) wearProfile_.resize(block + 1, 0);
      ++wearProfile_[block];
    }
  }
}

void NvmStore::enableWearProfile() {
  if constexpr (telemetry::kTraceCompiledIn) wearEnabled_ = true;
}

void NvmStore::pokeSlow(std::uint64_t addr, std::span<const std::uint8_t> src) {
  if (src.empty()) return;
  EC_CHECK_MSG(addr + src.size() > addr, "NvmStore poke range overflows");
  ensure(addr + src.size());
  std::memcpy(image_.data() + addr, src.data(), src.size());
}

void NvmStore::restoreImage(std::vector<std::uint8_t> image) {
  image_ = std::move(image);
}

}  // namespace easycrash::memsim
