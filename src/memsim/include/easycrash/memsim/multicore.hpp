// Multi-core coherent memory system: per-core private caches kept coherent
// with a MESI protocol over a shared, inclusive last-level cache, backed by
// the NVM store.
//
// NVCT simulates a *coherent* cache hierarchy because the paper also runs
// the benchmarks multi-threaded (§4.1; the conclusions match the
// single-thread results it reports). This module provides that substrate:
// value-tracking lines with MESI states, snooping invalidations and
// ownership transfers, per-core event counters, and the same crash/flush
// semantics as the single-core hierarchy — a flush or a crash interacts
// with every cached copy, wherever it lives.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "easycrash/memsim/cache_level.hpp"
#include "easycrash/memsim/config.hpp"
#include "easycrash/memsim/dirty_index.hpp"
#include "easycrash/memsim/events.hpp"
#include "easycrash/memsim/nvm_store.hpp"

namespace easycrash::memsim {

struct MulticoreConfig {
  int cores = 4;
  CacheGeometry privateCache{8ULL * 1024, 8};  ///< per-core L1
  CacheGeometry sharedLlc{64ULL * 1024, 16};   ///< shared inclusive LLC
  std::uint32_t blockSize = 64;

  void validate() const;
};

/// Per-core and coherence-specific counters.
struct CoherenceEvents {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t privateHits = 0;
  std::uint64_t privateMisses = 0;
  std::uint64_t llcHits = 0;
  std::uint64_t llcMisses = 0;
  std::uint64_t invalidationsSent = 0;     ///< write upgrades invalidating peers
  std::uint64_t ownershipTransfers = 0;    ///< dirty data moved between cores
  std::uint64_t nvmBlockWrites = 0;
  std::uint64_t nvmBlockReads = 0;
  std::uint64_t flushDirty = 0;
  std::uint64_t flushClean = 0;
  std::uint64_t flushNonResident = 0;
};

class MulticoreSystem {
 public:
  MulticoreSystem(MulticoreConfig config, NvmStore& nvm);

  MulticoreSystem(const MulticoreSystem&) = delete;
  MulticoreSystem& operator=(const MulticoreSystem&) = delete;

  /// Load/store issued by one core. MESI: a store invalidates every other
  /// core's copy; a load of another core's Modified line transfers the data.
  void load(int core, std::uint64_t addr, std::span<std::uint8_t> dst);
  void store(int core, std::uint64_t addr, std::span<const std::uint8_t> src);

  /// Bulk range access (the multicore mirror of CacheHierarchy::loadRange/
  /// storeRange): one coherence acquire per block touched, with the
  /// per-element counters reconstructed so CoherenceEvents are identical to
  /// issuing the same range as ascending element-wise accesses of width
  /// `elemSize` — each block's first element pays the acquire, the rest are
  /// private hits.
  void loadRange(int core, std::uint64_t addr, std::span<std::uint8_t> dst,
                 std::uint32_t elemSize);
  void storeRange(int core, std::uint64_t addr, std::span<const std::uint8_t> src,
                  std::uint32_t elemSize);

  /// Flush the block wherever it is cached (any core, the LLC): write the
  /// freshest copy to NVM; Clwb keeps copies resident, others invalidate.
  void flushBlock(std::uint64_t addr, FlushKind kind);
  void flushRange(std::uint64_t addr, std::uint64_t size, FlushKind kind);

  /// Architecturally-current value: the owning core's copy, else LLC/NVM.
  /// With the scan fast path on, runs of blocks dirty nowhere are served
  /// straight from NVM in bulk reads.
  void peek(std::uint64_t addr, std::span<std::uint8_t> dst) const;

  /// Bytes in [addr, addr+size) whose freshest cached value differs from
  /// the NVM image (same definition as the single-core hierarchy). The fast
  /// path iterates the shared dirty-block index and compares with the
  /// vectorized scan kernel; setScanFastPath(false) restores the
  /// probe-every-cache byte loop.
  [[nodiscard]] std::uint64_t inconsistentBytes(std::uint64_t addr,
                                                std::uint64_t size) const;

  /// Post-mortem scan fast-path control — same contract as
  /// CacheHierarchy::setScanFastPath: both settings are bit-identical, off
  /// is the differential oracle.
  void setScanFastPath(bool on) noexcept { scanFast_ = on; }
  [[nodiscard]] bool scanFastPath() const noexcept { return scanFast_; }

  /// Dirty-anywhere block set shared by every private cache and the LLC.
  [[nodiscard]] const DirtyBlockIndex& dirtyIndex() const { return dirtyIndex_; }

  /// Power loss: every cache on every core is gone.
  void invalidateAll();
  /// Write back all dirty state (checkpoint semantics).
  void drainAll();

  [[nodiscard]] const CoherenceEvents& coreEvents(int core) const;
  [[nodiscard]] CoherenceEvents totalEvents() const;
  [[nodiscard]] int cores() const { return static_cast<int>(private_.size()); }

  /// Coherence invariant check: at most one Modified copy per block; Shared
  /// copies identical; every private line present in the inclusive LLC.
  void checkInvariants() const;

 private:
  struct Lookup {
    int core = -1;              // core holding the line, -1 if none
    std::uint32_t line = 0;
  };

  [[nodiscard]] std::uint64_t blockBase(std::uint64_t addr) const {
    return addr & ~static_cast<std::uint64_t>(config_.blockSize - 1);
  }

  /// Make `blockAddr` usable by `core` (exclusive if `forWrite`); returns
  /// the private-cache line index.
  std::uint32_t acquire(int core, std::uint64_t blockAddr, bool forWrite);

  /// Handle a victim evicted from a private cache: merge into the LLC.
  void privateVictimToLlc(int core, const CacheLevel::Evicted& victim);
  /// Handle a victim evicted from the LLC: back-invalidate all cores, merge
  /// the freshest dirty data, write to NVM if dirty.
  void llcVictim(CacheLevel::Evicted& victim);

  /// Freshest data for a block: Modified owner's copy > LLC > NVM.
  void freshestBlock(std::uint64_t blockAddr, std::span<std::uint8_t> out) const;

  /// Freshest copy of a dirty-indexed block, served from the index's owner
  /// record: zero probes when the line hint is live, one single-cache probe
  /// otherwise. Only valid while dirtyIndex_.contains(blockAddr).
  [[nodiscard]] std::span<const std::uint8_t> dirtyBlockData(
      std::uint64_t blockAddr) const;

  /// Pre-index scalar references behind setScanFastPath(false).
  void peekScalar(std::uint64_t addr, std::span<std::uint8_t> dst) const;
  [[nodiscard]] std::uint64_t inconsistentBytesScalar(std::uint64_t addr,
                                                      std::uint64_t size) const;

  MulticoreConfig config_;
  NvmStore& nvm_;
  std::vector<CacheLevel> private_;  // one per core
  CacheLevel llc_;
  std::vector<CoherenceEvents> events_;

  // Dirty-anywhere block set shared by every private cache and the LLC
  // (attachDirtyIndex in the constructor); its per-block mask absorbs a
  // block dirty in a private cache and the LLC at once. scanFast_ gates the
  // index + vectorized-kernel paths of peek/inconsistentBytes; the scan
  // scratch block is mutable for the const observation paths (same
  // precedent as the CacheLevel MRU cache) and only serves blocks the NVM
  // image does not fully back.
  DirtyBlockIndex dirtyIndex_;
  bool scanFast_ = true;
  mutable std::vector<std::uint8_t> scanImage_;

  // Reusable scratch buffers for the miss/evict/snoop flow (same rationale
  // as CacheHierarchy: steady-state coherence traffic allocates nothing).
  CacheLevel::Evicted evictScratch_;
  CacheLevel::Evicted mergeScratch_;
  std::vector<std::uint8_t> fillScratch_;
};

}  // namespace easycrash::memsim
