// Cache hierarchy geometry.
//
// The paper simulates the Xeon Gold 6126 hierarchy (L1 32KB/8-way, L2 1MB/
// 12-way, L3 19.25MB/11-way, 64B blocks, write-back, write-allocate, LRU).
// Campaigns in this repository default to a proportionally scaled geometry so
// that thousands of crash tests complete quickly while preserving the paper's
// key invariant: application footprint is much larger than the last level
// cache (Section 4.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace easycrash::memsim {

/// Geometry of one cache level.
struct CacheGeometry {
  std::uint64_t sizeBytes = 0;
  std::uint32_t associativity = 1;
};

/// Full hierarchy configuration, ordered L1 first.
struct CacheConfig {
  std::string name = "custom";
  std::uint32_t blockSize = 64;
  std::vector<CacheGeometry> levels;

  /// The paper's hierarchy (Section 4.1): Xeon Gold 6126.
  [[nodiscard]] static CacheConfig xeonGold6126();
  /// Scaled-down hierarchy for fast campaigns: L1 2KB/8, L2 16KB/8, L3 64KB/16.
  [[nodiscard]] static CacheConfig scaledDefault();
  /// Minimal hierarchy for unit tests: L1 256B/2, L2 512B/2, L3 1KB/4.
  [[nodiscard]] static CacheConfig tiny();

  /// Number of sets at a level (validates geometry divisibility).
  [[nodiscard]] std::uint64_t setsAt(std::size_t level) const;
  /// Size of the last level cache in bytes.
  [[nodiscard]] std::uint64_t llcBytes() const;
  /// Throws std::logic_error when the geometry is inconsistent.
  void validate() const;
};

/// Cache flush instruction semantics (paper §2.1).
enum class FlushKind {
  Clflush,     ///< write back if dirty, then invalidate (serialising on HW)
  Clflushopt,  ///< write back if dirty, then invalidate (optimised ordering)
  Clwb,        ///< write back if dirty, keep the line resident and clean
};

[[nodiscard]] const char* toString(FlushKind kind);

}  // namespace easycrash::memsim
