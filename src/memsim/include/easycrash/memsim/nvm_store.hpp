// NVM backing store: a byte-addressable value image plus write accounting.
//
// This models app-direct-mode persistent memory (paper §2.3): bytes written
// here survive a crash; bytes still sitting dirty in the cache hierarchy do
// not. The store grows on demand so allocation order does not matter.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace easycrash::memsim {

class NvmStore {
 public:
  explicit NvmStore(std::uint32_t blockSize = 64);

  [[nodiscard]] std::uint32_t blockSize() const { return blockSize_; }

  /// Read `dst.size()` bytes starting at `addr` (zero-filled if never
  /// written). Reads never grow the materialised image: unbacked bytes are
  /// served as zeros without allocating backing storage. Inline fast path:
  /// direct-mode runs (golden under sampled monitoring, restarts, demoted
  /// accesses) issue one of these per tracked element, so the fully-backed
  /// common case must stay a bounds check + memcpy.
  void read(std::uint64_t addr, std::span<std::uint8_t> dst) const {
    if (addr <= image_.size() && dst.size() <= image_.size() - addr) [[likely]] {
      std::memcpy(dst.data(), image_.data() + addr, dst.size());
      return;
    }
    readSlow(addr, dst);
  }

  /// Zero-copy view of one block of the materialised image, or an empty
  /// span when the block is not fully backed (its bytes then read as zeros
  /// via read()). The post-mortem scan compares cached blocks against this
  /// view in place instead of copying every block through a scratch buffer;
  /// the pointer is invalidated by any write that grows the image.
  [[nodiscard]] std::span<const std::uint8_t> blockView(std::uint64_t addr) const {
    if (addr + blockSize_ <= image_.size()) return {image_.data() + addr, blockSize_};
    return {};
  }

  /// Write one full cache block at block-aligned `addr`, counting the write.
  void writeBlock(std::uint64_t addr, std::span<const std::uint8_t> src);

  /// Direct (uncounted) write used for initial images and test setup. This is
  /// NOT a modelled NVM write; campaigns use it to materialise initial state.
  /// Same inline fast path rationale as read(): direct-mode and demoted
  /// stores land here once per tracked element.
  void poke(std::uint64_t addr, std::span<const std::uint8_t> src) {
    if (addr <= image_.size() && src.size() <= image_.size() - addr) [[likely]] {
      std::memcpy(image_.data() + addr, src.data(), src.size());
      return;
    }
    pokeSlow(addr, src);
  }

  /// Number of modelled block writes into NVM so far.
  [[nodiscard]] std::uint64_t blockWrites() const { return blockWrites_; }

  /// Enable per-block wear accounting: every modelled block write also bumps
  /// a per-block counter (flight recorder, docs/OBSERVABILITY.md). Off by
  /// default and compiled out entirely under -DEASYCRASH_TELEMETRY=OFF, so
  /// writeBlock() carries no extra cost unless a campaign asks for it.
  void enableWearProfile();
  [[nodiscard]] bool wearProfiling() const { return wearEnabled_; }

  /// Block-write counts indexed by block number (addr / blockSize). Empty
  /// when profiling is off; sized to the highest profiled block + 1.
  [[nodiscard]] const std::vector<std::uint64_t>& wearProfile() const {
    return wearProfile_;
  }

  /// Size of the materialised image in bytes.
  [[nodiscard]] std::uint64_t imageBytes() const { return image_.size(); }

  /// Snapshot/restore the full value image (campaigns restore pristine state
  /// between crash tests without re-running initialisation).
  [[nodiscard]] std::vector<std::uint8_t> snapshotImage() const { return image_; }
  void restoreImage(std::vector<std::uint8_t> image);

  void resetCounters() { blockWrites_ = 0; }

 private:
  void ensure(std::uint64_t endAddr);
  void readSlow(std::uint64_t addr, std::span<std::uint8_t> dst) const;
  void pokeSlow(std::uint64_t addr, std::span<const std::uint8_t> src);

  std::uint32_t blockSize_;
  std::vector<std::uint8_t> image_;
  std::uint64_t blockWrites_ = 0;
  bool wearEnabled_ = false;
  std::vector<std::uint64_t> wearProfile_;
};

}  // namespace easycrash::memsim
