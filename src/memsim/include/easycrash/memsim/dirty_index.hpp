// Dirty-block index: a compact per-hierarchy summary of the blocks that hold
// a dirty copy in at least one cache level.
//
// The post-mortem pass (inconsistentBytes / peek) only needs to look at
// blocks that can possibly diverge from the NVM image, and the hierarchy's
// invariant says that is exactly the dirty-anywhere set: a block whose
// copies are all clean (or absent) matches NVM byte-for-byte. Probing every
// level for every block of every candidate object rediscovers that set the
// slow way; this index maintains it incrementally at the three places a
// line's dirty membership can change (CacheLevel::setDirty transitions,
// noteRemoved on eviction/extraction/invalidation, and invalidateAll), so a
// scan touches only the blocks that matter.
//
// A block may hold dirty copies in several levels at once (L1 re-dirtied
// after its dirt was merged into L2), so membership is a per-block bitmask
// of the attached levels holding a dirty copy — one line per block per
// level, so a bit is exact. The mask also tells the scan WHERE the freshest
// copy lives without probing every level: a clean copy can only sit closer
// to the CPU than the lowest dirty bit, and it was filled from (and is
// frozen equal to) that dirty copy, so reading the lowest dirty level is
// equivalent to reading the lowest resident level. add() additionally
// caches the line index for the lowest dirty level, letting the common case
// skip the set-associative probe entirely. Range iteration is served from a
// sorted key cache rebuilt lazily — mutations are O(1) amortised during the
// simulated run, and the one sort is paid at the first scan after the run
// stops.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "easycrash/common/check.hpp"

namespace easycrash::memsim {

class DirtyBlockIndex {
 public:
  /// Where a block's freshest dirty copy lives. `line` is only meaningful
  /// when `lineKnown`; otherwise the caller re-probes `level` (the hint is
  /// dropped when the lowest dirty copy migrates down a level, e.g. an L1
  /// eviction merging into an already-dirty L2 line).
  struct Owner {
    std::uint32_t level = 0;
    std::uint32_t line = 0;
    bool lineKnown = false;
  };

  /// Level `level` now holds a dirty copy of `blockAddr` in slot `line`.
  void add(std::uint64_t blockAddr, std::uint32_t level, std::uint32_t line) {
    EC_DCHECK_MSG(level < 64, "dirty index tracks at most 64 levels");
    Entry& e = entries_[blockAddr];
    EC_DCHECK_MSG((e.mask >> level & 1) == 0, "level already holds a dirty copy");
    if (e.mask == 0) {
      sortedStale_ = true;
      e.line = line;
      e.lineKnown = true;
    } else if (level < lowestLevel(e.mask)) {
      e.line = line;
      e.lineKnown = true;
    }
    e.mask |= 1ULL << level;
  }

  /// Level `level`'s dirty copy of `blockAddr` went away (cleaned, merged or
  /// dropped).
  void remove(std::uint64_t blockAddr, std::uint32_t level) {
    const auto it = entries_.find(blockAddr);
    EC_DCHECK_MSG(it != entries_.end(), "dirty index remove of untracked block");
    Entry& e = it->second;
    EC_DCHECK_MSG((e.mask >> level & 1) != 0, "level holds no dirty copy");
    const bool wasLowest = lowestLevel(e.mask) == level;
    e.mask &= ~(1ULL << level);
    if (e.mask == 0) {
      entries_.erase(it);
      sortedStale_ = true;
    } else if (wasLowest) {
      e.lineKnown = false;  // hint referred to the removed level
    }
  }

  void clear() {
    entries_.clear();
    sorted_.clear();
    sortedStale_ = false;
  }

  /// Does any level hold a dirty copy of `blockAddr`?
  [[nodiscard]] bool contains(std::uint64_t blockAddr) const {
    return entries_.find(blockAddr) != entries_.end();
  }

  /// Lowest-level dirty copy of `blockAddr` — the freshest value the block
  /// can have. Must only be called for tracked blocks (contains()).
  [[nodiscard]] Owner owner(std::uint64_t blockAddr) const {
    const auto it = entries_.find(blockAddr);
    EC_DCHECK_MSG(it != entries_.end(), "owner() of untracked block");
    const Entry& e = it->second;
    return {lowestLevel(e.mask), e.line, e.lineKnown};
  }

  /// Number of distinct dirty blocks.
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Visit every dirty block base in [first, last] in ascending address
  /// order. `first`/`last` are inclusive block bases, matching the scalar
  /// scan's `for (base = first; base <= last; ...)` loop bounds.
  template <typename Fn>
  void forEachIn(std::uint64_t first, std::uint64_t last, Fn&& fn) const {
    refreshSorted();
    const auto begin = std::lower_bound(sorted_.begin(), sorted_.end(), first);
    for (auto it = begin; it != sorted_.end() && *it <= last; ++it) fn(*it);
  }

 private:
  struct Entry {
    std::uint64_t mask = 0;  // bit l set: attached level l holds a dirty copy
    std::uint32_t line = 0;  // slot at lowestLevel(mask), valid iff lineKnown
    bool lineKnown = false;
  };

  [[nodiscard]] static std::uint32_t lowestLevel(std::uint64_t mask) {
    return static_cast<std::uint32_t>(std::countr_zero(mask));
  }

  void refreshSorted() const {
    if (!sortedStale_) return;
    sorted_.clear();
    sorted_.reserve(entries_.size());
    for (const auto& [addr, entry] : entries_) sorted_.push_back(addr);
    std::sort(sorted_.begin(), sorted_.end());
    sortedStale_ = false;
  }

  std::unordered_map<std::uint64_t, Entry> entries_;
  // Sorted key cache backing forEachIn; mutable so the const observation
  // paths (peek/inconsistentBytes) can rebuild it lazily after mutations.
  mutable std::vector<std::uint64_t> sorted_;
  mutable bool sortedStale_ = false;
};

}  // namespace easycrash::memsim
