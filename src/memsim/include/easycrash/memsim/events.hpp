// Event counters exposed by the memory-system simulation.
//
// Everything the performance and write-count models (perfmodel/) consume is
// derived from these counters, so they are the single source of truth for
// Table 4 and Figures 7, 8 and 9.
#pragma once

#include <array>
#include <cstdint>

#include "easycrash/common/check.hpp"

namespace easycrash::memsim {

constexpr std::size_t kMaxLevels = 4;

/// Monotonic counters for one CacheHierarchy.
struct MemEvents {
  std::uint64_t loads = 0;   ///< load micro-accesses (one per block touched)
  std::uint64_t stores = 0;  ///< store micro-accesses

  std::array<std::uint64_t, kMaxLevels> hits{};    ///< per-level hits
  std::array<std::uint64_t, kMaxLevels> misses{};  ///< per-level misses

  std::uint64_t nvmBlockReads = 0;   ///< block fills from NVM (LLC misses)
  std::uint64_t nvmBlockWrites = 0;  ///< dirty block write-backs into NVM

  std::uint64_t flushDirty = 0;        ///< flushes that wrote a dirty block back
  std::uint64_t flushClean = 0;        ///< flushes of resident-but-clean blocks
  std::uint64_t flushNonResident = 0;  ///< flushes of blocks not in any cache

  /// NVM writes caused specifically by flush instructions (subset of
  /// nvmBlockWrites); the remainder are natural LLC evictions.
  std::uint64_t flushInducedNvmWrites = 0;

  /// Diagnostics for the range fast path: bulk loadRange/storeRange calls
  /// and the block segments they were split into. These count *calls*, not
  /// logical accesses — the logical accesses land in loads/stores exactly as
  /// the element-wise path would record them, so every semantic counter
  /// above stays byte-identical across bulk on/off.
  std::uint64_t rangeLoads = 0;
  std::uint64_t rangeStores = 0;
  std::uint64_t rangeSplitBlocks = 0;

  /// Diagnostics for the post-mortem scan fast path (inconsistentBytes with
  /// the dirty-block index on): blocks skipped because no level held them
  /// dirty, blocks handed to the compare kernel, and the bytes it compared.
  /// Like the range counters these describe *how* the answer was computed,
  /// not the answer itself — they are zero with setScanFastPath(false) and
  /// excluded from the bit-identity equivalence contract.
  std::uint64_t postmortemBlocksSkipped = 0;
  std::uint64_t postmortemBlocksCompared = 0;
  std::uint64_t postmortemBytesCompared = 0;

  [[nodiscard]] std::uint64_t totalFlushes() const {
    return flushDirty + flushClean + flushNonResident;
  }

  /// Counter-wise difference against an earlier snapshot of the same
  /// hierarchy. Counters are monotonic, so every term must be >= its
  /// `earlier` counterpart; a violation means the snapshot came from a
  /// different (or reset) hierarchy and would silently underflow.
  [[nodiscard]] MemEvents delta(const MemEvents& earlier) const {
    EC_DCHECK_MSG(loads >= earlier.loads, "MemEvents::delta: loads not monotonic");
    EC_DCHECK_MSG(stores >= earlier.stores, "MemEvents::delta: stores not monotonic");
    for (std::size_t i = 0; i < kMaxLevels; ++i) {
      EC_DCHECK_MSG(hits[i] >= earlier.hits[i], "MemEvents::delta: hits not monotonic");
      EC_DCHECK_MSG(misses[i] >= earlier.misses[i],
                    "MemEvents::delta: misses not monotonic");
    }
    EC_DCHECK_MSG(nvmBlockReads >= earlier.nvmBlockReads,
                  "MemEvents::delta: nvmBlockReads not monotonic");
    EC_DCHECK_MSG(nvmBlockWrites >= earlier.nvmBlockWrites,
                  "MemEvents::delta: nvmBlockWrites not monotonic");
    EC_DCHECK_MSG(flushDirty >= earlier.flushDirty,
                  "MemEvents::delta: flushDirty not monotonic");
    EC_DCHECK_MSG(flushClean >= earlier.flushClean,
                  "MemEvents::delta: flushClean not monotonic");
    EC_DCHECK_MSG(flushNonResident >= earlier.flushNonResident,
                  "MemEvents::delta: flushNonResident not monotonic");
    EC_DCHECK_MSG(flushInducedNvmWrites >= earlier.flushInducedNvmWrites,
                  "MemEvents::delta: flushInducedNvmWrites not monotonic");
    EC_DCHECK_MSG(rangeLoads >= earlier.rangeLoads,
                  "MemEvents::delta: rangeLoads not monotonic");
    EC_DCHECK_MSG(rangeStores >= earlier.rangeStores,
                  "MemEvents::delta: rangeStores not monotonic");
    EC_DCHECK_MSG(rangeSplitBlocks >= earlier.rangeSplitBlocks,
                  "MemEvents::delta: rangeSplitBlocks not monotonic");
    EC_DCHECK_MSG(postmortemBlocksSkipped >= earlier.postmortemBlocksSkipped,
                  "MemEvents::delta: postmortemBlocksSkipped not monotonic");
    EC_DCHECK_MSG(postmortemBlocksCompared >= earlier.postmortemBlocksCompared,
                  "MemEvents::delta: postmortemBlocksCompared not monotonic");
    EC_DCHECK_MSG(postmortemBytesCompared >= earlier.postmortemBytesCompared,
                  "MemEvents::delta: postmortemBytesCompared not monotonic");
    MemEvents d;
    d.loads = loads - earlier.loads;
    d.stores = stores - earlier.stores;
    for (std::size_t i = 0; i < kMaxLevels; ++i) {
      d.hits[i] = hits[i] - earlier.hits[i];
      d.misses[i] = misses[i] - earlier.misses[i];
    }
    d.nvmBlockReads = nvmBlockReads - earlier.nvmBlockReads;
    d.nvmBlockWrites = nvmBlockWrites - earlier.nvmBlockWrites;
    d.flushDirty = flushDirty - earlier.flushDirty;
    d.flushClean = flushClean - earlier.flushClean;
    d.flushNonResident = flushNonResident - earlier.flushNonResident;
    d.flushInducedNvmWrites = flushInducedNvmWrites - earlier.flushInducedNvmWrites;
    d.rangeLoads = rangeLoads - earlier.rangeLoads;
    d.rangeStores = rangeStores - earlier.rangeStores;
    d.rangeSplitBlocks = rangeSplitBlocks - earlier.rangeSplitBlocks;
    d.postmortemBlocksSkipped = postmortemBlocksSkipped - earlier.postmortemBlocksSkipped;
    d.postmortemBlocksCompared = postmortemBlocksCompared - earlier.postmortemBlocksCompared;
    d.postmortemBytesCompared = postmortemBytesCompared - earlier.postmortemBytesCompared;
    return d;
  }
};

}  // namespace easycrash::memsim
