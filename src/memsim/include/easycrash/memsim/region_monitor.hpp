// Adaptive region-sampled access monitoring (docs/INTERNALS.md "Adaptive
// region monitor").
//
// DAMON-style access statistics at region granularity: every tracked data
// object starts as one region; a region whose sampled access counts diverge
// across its two halves is split, and adjacent regions whose sampled access
// densities converge are merged back, bounded by a per-object region cap.
// Accounting is sampled, not exhaustive — one of every `sampleInterval`
// logical tracked elements is attributed to its region — so the per-access
// cost is a counter decrement in the common case and the total state is
// O(regions), independent of the object sizes.
//
// Determinism: the sampler is a pure countdown over the logical element
// order (the same order the crash clock counts), with its phase derived from
// the seed. The element order is invariant across bulk/scalar access paths
// and chunk sizes, so a monitored run produces bit-identical region stats
// regardless of --bulk, --threads or --isolation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace easycrash::memsim {

struct RegionMonitorConfig {
  /// Seeds the sampling phase (where inside the first interval the first
  /// sample lands). Campaigns pass their campaign seed.
  std::uint64_t seed = 1;
  /// Sample one of every `sampleInterval` logical tracked elements.
  std::uint32_t sampleInterval = 64;
  /// Region-count bounds per object (DAMON's min/max region knobs).
  std::uint32_t minRegionsPerObject = 1;
  std::uint32_t maxRegionsPerObject = 64;
  /// Run a split/merge aggregation pass every this many recorded samples.
  std::uint64_t aggregateEvery = 2048;
  /// Never split a region below this size, and never split one that has
  /// fewer than `minSplitSamples` samples (too little signal).
  std::uint64_t minRegionBytes = 256;
  std::uint64_t minSplitSamples = 32;
  /// Split when |leftHalf - rightHalf| / samples exceeds this.
  double splitImbalance = 0.2;
  /// Merge two adjacent regions when their sample densities differ by at
  /// most this fraction of the denser one.
  double mergeTolerance = 0.25;
};

/// One region of a monitored object: a [base, base+bytes) slice with sampled
/// access/write counts and the left-half count the split decision reads.
struct MonitorRegion {
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;
  std::uint64_t samples = 0;
  std::uint64_t writes = 0;
  std::uint64_t leftSamples = 0;  ///< samples landing in [base, base+bytes/2)
};

struct MonitoredObject {
  std::uint32_t id = 0;
  std::string name;
  std::uint64_t addr = 0;
  std::uint64_t bytes = 0;
  std::uint64_t samples = 0;        ///< all sampled accesses (setup + window)
  std::uint64_t writes = 0;         ///< all sampled writes
  std::uint64_t windowSamples = 0;  ///< sampled accesses inside the crash window
  std::uint64_t windowWrites = 0;
  std::vector<MonitorRegion> regions;  ///< ascending by base, covers the object
};

class RegionMonitor {
 public:
  explicit RegionMonitor(RegionMonitorConfig config);

  /// Register an object (ascending base addresses; the runtime attaches every
  /// tracked allocation). One region spanning the object to start with.
  void attach(std::uint32_t id, std::string name, std::uint64_t addr,
              std::uint64_t bytes);

  /// Mirror of the runtime's crash-window flag: samples inside the window
  /// are additionally counted in the per-object window totals.
  void setWindow(bool active) noexcept { window_ = active; }

  /// Hot path: `n` logical elements of `elemSize` bytes starting at `addr`
  /// (n == 1 for scalar accesses). The common case is one decrement.
  void onRange(std::uint64_t addr, std::uint32_t elemSize, std::uint64_t n,
               bool write) {
    if (n < untilNext_) {
      untilNext_ -= n;
      return;
    }
    onRangeSlow(addr, elemSize, n, write);
  }

  [[nodiscard]] const std::vector<MonitoredObject>& objects() const {
    return objects_;
  }
  [[nodiscard]] std::uint64_t totalSamples() const { return samples_; }
  [[nodiscard]] std::uint64_t totalSplits() const { return splits_; }
  [[nodiscard]] std::uint64_t totalMerges() const { return merges_; }
  [[nodiscard]] std::uint64_t regionCount() const;

 private:
  void onRangeSlow(std::uint64_t addr, std::uint32_t elemSize, std::uint64_t n,
                   bool write);
  void recordSample(std::uint64_t addr, bool write);
  void aggregate();
  [[nodiscard]] MonitoredObject* objectAt(std::uint64_t addr);

  RegionMonitorConfig config_;
  std::vector<MonitoredObject> objects_;  ///< ascending by addr
  std::uint64_t untilNext_ = 1;  ///< logical elements until the next sample
  std::uint64_t samples_ = 0;
  std::uint64_t splits_ = 0;
  std::uint64_t merges_ = 0;
  std::uint64_t sinceAggregate_ = 0;
  std::size_t lastObject_ = 0;  ///< last-hit cache for the address lookup
  bool window_ = false;
};

}  // namespace easycrash::memsim
