// Multi-level inclusive write-back cache hierarchy with value tracking,
// backed by an NvmStore. This is the execution substrate every instrumented
// application runs on: all loads/stores of tracked data objects route through
// access(), flush instructions route through flushBlock()/flushRange(), and a
// crash is modelled by invalidateAll() — everything not written back to the
// NvmStore is lost, exactly as on app-direct-mode persistent memory.
//
// The access path is the inner loop of every crash campaign, so it is built
// to be allocation-free in steady state: block fills and victim hand-offs go
// through scratch buffers owned by the hierarchy, single-block accesses skip
// the chunking loop, and block/set arithmetic is shift/mask (see
// docs/INTERNALS.md "Simulator performance").
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "easycrash/memsim/cache_level.hpp"
#include "easycrash/memsim/config.hpp"
#include "easycrash/memsim/dirty_index.hpp"
#include "easycrash/memsim/events.hpp"
#include "easycrash/memsim/nvm_store.hpp"

namespace easycrash::memsim {

class CacheHierarchy {
 public:
  CacheHierarchy(CacheConfig config, NvmStore& nvm);

  CacheHierarchy(const CacheHierarchy&) = delete;
  CacheHierarchy& operator=(const CacheHierarchy&) = delete;

  /// Load `dst.size()` bytes from `addr` through the cache hierarchy.
  /// The header-level fast path covers the dominant case — a single-block
  /// access hitting L1's most-recently-used line — without leaving the
  /// caller's translation unit; everything else goes out of line.
  void load(std::uint64_t addr, std::span<std::uint8_t> dst) {
    const std::uint64_t inBlock = addr & blockMask_;
    if (!dst.empty() && inBlock + dst.size() <= config_.blockSize) {
      const std::int64_t line = levels_[0].mruLineOf(addr - inBlock);
      if (line >= 0) {
        const auto l1 = static_cast<std::uint32_t>(line);
        ++events_.hits[0];
        levels_[0].touch(l1);
        std::memcpy(dst.data(), levels_[0].data(l1).data() + inBlock, dst.size());
        ++events_.loads;
        return;
      }
    }
    loadSlow(addr, dst);
  }
  /// Store `src.size()` bytes at `addr` through the cache hierarchy.
  void store(std::uint64_t addr, std::span<const std::uint8_t> src) {
    const std::uint64_t inBlock = addr & blockMask_;
    if (!src.empty() && inBlock + src.size() <= config_.blockSize) {
      const std::int64_t line = levels_[0].mruLineOf(addr - inBlock);
      if (line >= 0) {
        const auto l1 = static_cast<std::uint32_t>(line);
        ++events_.hits[0];
        levels_[0].touch(l1);
        std::memcpy(levels_[0].data(l1).data() + inBlock, src.data(), src.size());
        levels_[0].setDirty(l1, true);
        ++events_.stores;
        return;
      }
    }
    storeSlow(addr, src);
  }

  /// Bulk range access: move [addr, addr+dst.size()) in one call, splitting
  /// at block boundaries and touching each block's tags/MRU/dirty state once
  /// with a single memcpy per block. `elemSize` is the logical element width
  /// the range is composed of; counters are byte-identical to issuing the
  /// same range as ascending element-wise load()/store() calls of that width
  /// (each block's first element pays the probe, the rest are L1 hits, and
  /// an element straddling two blocks counts one micro-access in each —
  /// exactly what the scalar chunk loop records). Only rangeLoads/rangeStores/
  /// rangeSplitBlocks, which are diagnostics excluded from equivalence, tell
  /// the two paths apart.
  void loadRange(std::uint64_t addr, std::span<std::uint8_t> dst,
                 std::uint32_t elemSize);
  void storeRange(std::uint64_t addr, std::span<const std::uint8_t> src,
                  std::uint32_t elemSize);

  /// Metadata-only access for [addr, addr+size): every overlapping block is
  /// made resident and LRU-touched exactly as load()/store() would, but no
  /// payload bytes move and nothing is marked dirty. This is the demoted-
  /// object path of the sampled monitoring mode: demoted blocks keep their
  /// real cache occupancy — so the tracked objects sharing their sets see
  /// bit-identical hits, misses and evictions — while their values live in
  /// NVM only (the runtime routes demoted loads/stores straight there).
  /// Demoted lines are never dirty, so no write-back can clobber the
  /// direct-written NVM image. Note the per-block granularity: repeated
  /// touches of one block and per-element touches are metadata-equivalent,
  /// which is what keeps --bulk on/off agreement in sampled mode.
  void touchRange(std::uint64_t addr, std::uint64_t size);

  /// Apply a flush instruction to the block containing `addr`.
  void flushBlock(std::uint64_t addr, FlushKind kind);
  /// Flush every block overlapping [addr, addr+size) — the paper's
  /// cache_block_flush() over a whole data object (§2.1: all blocks are
  /// flushed even when not resident, because hardware cannot tell).
  void flushRange(std::uint64_t addr, std::uint64_t size, FlushKind kind);

  /// Read the architecturally-current value (freshest cached copy, falling
  /// back to NVM) without perturbing cache state or counters. With the scan
  /// fast path on, clean runs of blocks are served straight from NVM in bulk
  /// reads (a clean block's copies match NVM by invariant) and only
  /// dirty-indexed blocks pay a cache probe.
  void peek(std::uint64_t addr, std::span<std::uint8_t> dst) const;

  /// Bytes in [addr, addr+size) whose cached value differs from the NVM
  /// image — the paper's per-object inconsistency measure (§3). The fast
  /// path iterates the dirty-block index (only dirty-anywhere blocks can
  /// diverge) and counts differing bytes with the vectorized scan kernel;
  /// setScanFastPath(false) restores the probe-every-level byte loop, the
  /// differential oracle.
  [[nodiscard]] std::uint64_t inconsistentBytes(std::uint64_t addr,
                                                std::uint64_t size) const;

  /// Post-mortem scan fast-path control (dirty-block index + vectorized
  /// compare in inconsistentBytes/peek). Both settings return bit-identical
  /// results; off exists as the differential oracle and for perf comparison.
  void setScanFastPath(bool on) noexcept { scanFast_ = on; }
  [[nodiscard]] bool scanFastPath() const noexcept { return scanFast_; }

  /// The incrementally-maintained dirty-anywhere block set (tests assert it
  /// against a forEachValid walk of the levels).
  [[nodiscard]] const DirtyBlockIndex& dirtyIndex() const { return dirtyIndex_; }

  /// Write every dirty block back to NVM (counted as modelled writes); lines
  /// stay resident and clean. Used by the coherent-snapshot ("verified")
  /// crash mode and by checkpoint modelling.
  void drainAll();

  /// Power loss: drop all cache contents without write-back.
  void invalidateAll();

  [[nodiscard]] const MemEvents& events() const { return events_; }
  void resetEvents() { events_ = MemEvents{}; }

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] NvmStore& nvm() { return nvm_; }
  [[nodiscard]] std::size_t levelCount() const { return levels_.size(); }
  [[nodiscard]] const CacheLevel& level(std::size_t i) const { return levels_[i]; }

  /// Internal consistency check (inclusivity + data coherence of clean
  /// copies). Intended for tests; throws std::logic_error on violation.
  void checkInvariants() const;

  /// Enable the sampled access profile: per-stride touch counters fed only by
  /// the out-of-line access paths (ensureInL1), so the header-level L1-MRU
  /// fast path above gains no branch. A "touch" is a block-granular access
  /// that left the fast path — L1 non-MRU hits, misses, and one per block
  /// segment of a range access — a cheap, stable sample of the true access
  /// distribution (flight recorder, docs/OBSERVABILITY.md). `strideBytes` is
  /// rounded up to a power of two and floored at the block size; 0 means one
  /// counter per block. Compiled out under -DEASYCRASH_TELEMETRY=OFF.
  void enableAccessProfile(std::uint32_t strideBytes = 0);
  [[nodiscard]] bool accessProfiling() const { return profileShift_ != 0; }
  /// Bytes of address range covered by one profile counter.
  [[nodiscard]] std::uint32_t accessProfileStride() const {
    return profileShift_ != 0 ? (1u << profileShift_) : 0;
  }
  /// Sampled touch counts indexed by addr >> log2(stride); empty when
  /// profiling is off, sized to the highest profiled stride + 1.
  [[nodiscard]] const std::vector<std::uint64_t>& accessProfile() const {
    return accessProfile_;
  }

 private:
  [[nodiscard]] std::uint64_t blockBase(std::uint64_t addr) const {
    return addr & ~blockMask_;
  }

  /// Out-of-line halves of load()/store(): multi-block accesses and
  /// single-block accesses that miss the L1 MRU entry.
  void loadSlow(std::uint64_t addr, std::span<std::uint8_t> dst);
  void storeSlow(std::uint64_t addr, std::span<const std::uint8_t> src);

  /// Make `blockAddr` resident in L1; returns the L1 line index.
  std::uint32_t ensureInL1(std::uint64_t blockAddr);
  /// Miss path of ensureInL1 (kept out of line so the L1-hit fast path stays
  /// small enough to inline into load()/store()).
  std::uint32_t fillToL1(std::uint64_t blockAddr);

  /// Insert a block at `level` with the given data, handling the eviction;
  /// returns the filled line index.
  std::uint32_t insertAt(std::size_t level, std::uint64_t blockAddr,
                         std::span<const std::uint8_t> data);

  /// Process a victim displaced from `level` (held in a scratch buffer):
  /// merge fresher upper-level copies, then write back downwards (or to NVM
  /// from the LLC).
  void handleEviction(std::size_t level, CacheLevel::Evicted& victim);

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// Lowest level (closest to the CPU) holding the block, or npos.
  [[nodiscard]] std::size_t lowestResidentLevel(std::uint64_t blockAddr) const;

  /// Level and line of the freshest resident copy, found with one probe per
  /// level (level == kNone when the block is not cached anywhere).
  struct Resident {
    std::size_t level = kNone;
    std::uint32_t line = 0;
  };
  [[nodiscard]] Resident lowestResident(std::uint64_t blockAddr) const;

  /// Freshest copy of a dirty-indexed block, served from the index's owner
  /// record: zero probes when the line hint is live, one single-level probe
  /// otherwise. Only valid while dirtyIndex_.contains(blockAddr).
  [[nodiscard]] std::span<const std::uint8_t> dirtyBlockData(
      std::uint64_t blockAddr) const;

  /// Pre-index scalar references behind setScanFastPath(false): probe every
  /// level for every block.
  void peekScalar(std::uint64_t addr, std::span<std::uint8_t> dst) const;
  [[nodiscard]] std::uint64_t inconsistentBytesScalar(std::uint64_t addr,
                                                      std::uint64_t size) const;

  CacheConfig config_;
  std::uint64_t blockMask_ = 0;  ///< blockSize - 1 (blockSize is power of two)
  NvmStore& nvm_;
  std::vector<CacheLevel> levels_;
  // Mutable so the const observation paths (peek/inconsistentBytes) can
  // record their postmortem_* diagnostics — the same precedent as the
  // CacheLevel MRU cache in find().
  mutable MemEvents events_;

  // Dirty-anywhere block set, maintained by the levels (attachDirtyIndex)
  // and consumed by the post-mortem scan. scanFast_ gates the index +
  // vectorized-kernel paths of peek/inconsistentBytes.
  DirtyBlockIndex dirtyIndex_;
  bool scanFast_ = true;
  // Scratch NVM block for the scan (replaces a per-call allocation); mutable
  // for the const observation paths, which are single-threaded per runtime.
  mutable std::vector<std::uint8_t> scanScratch_;

  // Sampled access profile (enableAccessProfile). profileShift_ == 0 means
  // off; the slow path then skips one well-predicted branch and nothing else.
  std::uint32_t profileShift_ = 0;
  std::vector<std::uint64_t> accessProfile_;

  // Reusable scratch state for the miss/evict flow: one in-flight victim,
  // one buffer for upper-level merges, one block-sized fill buffer. At most
  // one of each is live at a time (insertions never recurse), so a single
  // set suffices and steady-state misses allocate nothing.
  CacheLevel::Evicted evictScratch_;
  CacheLevel::Evicted mergeScratch_;
  std::vector<std::uint8_t> fillScratch_;
};

}  // namespace easycrash::memsim
