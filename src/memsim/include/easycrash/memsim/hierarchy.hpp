// Multi-level inclusive write-back cache hierarchy with value tracking,
// backed by an NvmStore. This is the execution substrate every instrumented
// application runs on: all loads/stores of tracked data objects route through
// access(), flush instructions route through flushBlock()/flushRange(), and a
// crash is modelled by invalidateAll() — everything not written back to the
// NvmStore is lost, exactly as on app-direct-mode persistent memory.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "easycrash/memsim/cache_level.hpp"
#include "easycrash/memsim/config.hpp"
#include "easycrash/memsim/events.hpp"
#include "easycrash/memsim/nvm_store.hpp"

namespace easycrash::memsim {

class CacheHierarchy {
 public:
  CacheHierarchy(CacheConfig config, NvmStore& nvm);

  CacheHierarchy(const CacheHierarchy&) = delete;
  CacheHierarchy& operator=(const CacheHierarchy&) = delete;

  /// Load `dst.size()` bytes from `addr` through the cache hierarchy.
  void load(std::uint64_t addr, std::span<std::uint8_t> dst);
  /// Store `src.size()` bytes at `addr` through the cache hierarchy.
  void store(std::uint64_t addr, std::span<const std::uint8_t> src);

  /// Apply a flush instruction to the block containing `addr`.
  void flushBlock(std::uint64_t addr, FlushKind kind);
  /// Flush every block overlapping [addr, addr+size) — the paper's
  /// cache_block_flush() over a whole data object (§2.1: all blocks are
  /// flushed even when not resident, because hardware cannot tell).
  void flushRange(std::uint64_t addr, std::uint64_t size, FlushKind kind);

  /// Read the architecturally-current value (freshest cached copy, falling
  /// back to NVM) without perturbing cache state or counters.
  void peek(std::uint64_t addr, std::span<std::uint8_t> dst) const;

  /// Bytes in [addr, addr+size) whose cached value differs from the NVM
  /// image — the paper's per-object inconsistency measure (§3).
  [[nodiscard]] std::uint64_t inconsistentBytes(std::uint64_t addr,
                                                std::uint64_t size) const;

  /// Write every dirty block back to NVM (counted as modelled writes); lines
  /// stay resident and clean. Used by the coherent-snapshot ("verified")
  /// crash mode and by checkpoint modelling.
  void drainAll();

  /// Power loss: drop all cache contents without write-back.
  void invalidateAll();

  [[nodiscard]] const MemEvents& events() const { return events_; }
  void resetEvents() { events_ = MemEvents{}; }

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] NvmStore& nvm() { return nvm_; }
  [[nodiscard]] std::size_t levelCount() const { return levels_.size(); }
  [[nodiscard]] const CacheLevel& level(std::size_t i) const { return levels_[i]; }

  /// Internal consistency check (inclusivity + data coherence of clean
  /// copies). Intended for tests; throws std::logic_error on violation.
  void checkInvariants() const;

 private:
  [[nodiscard]] std::uint64_t blockBase(std::uint64_t addr) const {
    return addr - addr % config_.blockSize;
  }

  /// Make `blockAddr` resident in L1; returns the L1 line index.
  std::uint32_t ensureInL1(std::uint64_t blockAddr);

  /// Insert a block at `level` with the given data, handling the eviction.
  void insertAt(std::size_t level, std::uint64_t blockAddr,
                std::span<const std::uint8_t> data);

  /// Process a victim displaced from `level`: merge fresher upper-level
  /// copies, then write back downwards (or to NVM from the LLC).
  void handleEviction(std::size_t level, CacheLevel::Evicted victim);

  /// Lowest level (closest to the CPU) holding the block, or npos.
  [[nodiscard]] std::size_t lowestResidentLevel(std::uint64_t blockAddr) const;

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  CacheConfig config_;
  NvmStore& nvm_;
  std::vector<CacheLevel> levels_;
  MemEvents events_;
};

}  // namespace easycrash::memsim
