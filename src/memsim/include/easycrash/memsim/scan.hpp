// Vectorized byte-compare kernel for the post-mortem consistency scan.
//
// countDiffBytes(a, b, n) answers "how many bytes differ between these two
// buffers" — the inner operation of inconsistentBytes, executed once per
// dirty block per candidate object per capture. The kernel runs a memcmp
// prefilter first (most dirty blocks differ in zero bytes only when a flush
// raced the crash, but whole-block equality is common enough that libc's
// optimised compare pays for itself), then counts differing bytes with an
// AVX2 compare+movemask loop where the CPU supports it, falling back to a
// portable word-at-a-time XOR + byte-nonzero popcount everywhere else.
//
// Dispatch is resolved once per process from CPUID, overridable two ways:
//  - the EASYCRASH_SCAN_KERNEL environment variable ("avx2", "portable" or
//    "auto"), which is how CI pins the sanitize job's forced-scalar leg and
//    the byte-identity fixtures cross the two implementations;
//  - forceKernel()/resetKernel(), the in-process hook the differential tests
//    use to run both paths side by side.
// Both implementations are exposed directly (countDiffBytesPortable /
// countDiffBytesAvx2) so tests can compare them against each other and
// against a naive byte loop without touching process state.
#pragma once

#include <cstddef>
#include <cstdint>

namespace easycrash::memsim::scan {

enum class Kernel {
  Portable,  ///< word-at-a-time uint64 XOR + popcount (always available)
  Avx2,      ///< 32-byte compare + movemask (x86 with AVX2 only)
};

/// The kernel countDiffBytes dispatches to right now (env override, then
/// forceKernel, then CPUID).
[[nodiscard]] Kernel activeKernel() noexcept;
[[nodiscard]] const char* kernelName(Kernel kernel) noexcept;
/// Is the AVX2 implementation executable on this CPU?
[[nodiscard]] bool avx2Available() noexcept;

/// Pin dispatch to one kernel (test hook; forcing Avx2 on a CPU without it
/// is ignored). resetKernel() restores env/CPUID resolution.
void forceKernel(Kernel kernel) noexcept;
void resetKernel() noexcept;

/// Number of byte positions where a[i] != b[i], i in [0, n).
[[nodiscard]] std::uint64_t countDiffBytes(const std::uint8_t* a,
                                           const std::uint8_t* b,
                                           std::size_t n) noexcept;

/// The two implementations, callable directly (no prefilter, no dispatch).
[[nodiscard]] std::uint64_t countDiffBytesPortable(const std::uint8_t* a,
                                                   const std::uint8_t* b,
                                                   std::size_t n) noexcept;
[[nodiscard]] std::uint64_t countDiffBytesAvx2(const std::uint8_t* a,
                                               const std::uint8_t* b,
                                               std::size_t n) noexcept;

}  // namespace easycrash::memsim::scan
