// One set-associative, write-back cache level with value-tracking lines.
//
// Unlike a purely statistical cache model, every line carries the actual data
// bytes of its block. That is what lets the simulator answer the question at
// the core of the paper: after an arbitrary crash, which bytes of which data
// objects differ between the (lost) caches and the (surviving) NVM image?
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "easycrash/memsim/config.hpp"

namespace easycrash::memsim {

class CacheLevel {
 public:
  CacheLevel(const CacheGeometry& geometry, std::uint32_t blockSize);

  /// A block displaced by an insertion.
  struct Evicted {
    std::uint64_t blockAddr = 0;
    bool dirty = false;
    std::vector<std::uint8_t> data;
  };

  /// Line index of `blockAddr` if resident.
  [[nodiscard]] std::optional<std::uint32_t> find(std::uint64_t blockAddr) const;

  /// Insert `blockAddr` (must not be resident); returns the victim, if any.
  /// The new line is marked most-recently-used and clean; its data is
  /// zero-initialised — the caller fills it.
  std::optional<Evicted> insert(std::uint64_t blockAddr);

  /// Remove a resident block without write-back; returns its state.
  Evicted extract(std::uint64_t blockAddr);

  /// Drop a block if resident (no write-back, state discarded).
  void invalidate(std::uint64_t blockAddr);
  /// Drop everything (simulates power loss).
  void invalidateAll();

  [[nodiscard]] std::span<std::uint8_t> data(std::uint32_t line);
  [[nodiscard]] std::span<const std::uint8_t> data(std::uint32_t line) const;
  [[nodiscard]] bool dirty(std::uint32_t line) const;
  void setDirty(std::uint32_t line, bool value);
  [[nodiscard]] std::uint64_t blockAddr(std::uint32_t line) const;

  /// Mark `line` most-recently-used within its set.
  void touch(std::uint32_t line);

  /// Visit every valid line: fn(blockAddr, dirty, data).
  void forEachValid(
      const std::function<void(std::uint64_t, bool, std::span<const std::uint8_t>)>& fn)
      const;

  [[nodiscard]] std::uint64_t sets() const { return sets_; }
  [[nodiscard]] std::uint32_t associativity() const { return assoc_; }
  [[nodiscard]] std::uint64_t validLines() const;
  [[nodiscard]] std::uint64_t dirtyLines() const;

 private:
  struct Line {
    std::uint64_t blockAddr = 0;
    std::uint64_t lastUse = 0;
    bool valid = false;
    bool dirty = false;
  };

  [[nodiscard]] std::uint64_t setOf(std::uint64_t blockAddr) const;
  [[nodiscard]] std::uint32_t lineIndex(std::uint64_t set, std::uint32_t way) const;

  std::uint32_t blockSize_;
  std::uint64_t sets_;
  std::uint32_t assoc_;
  std::uint64_t tick_ = 0;
  std::vector<Line> lines_;
  std::vector<std::uint8_t> storage_;
};

}  // namespace easycrash::memsim
