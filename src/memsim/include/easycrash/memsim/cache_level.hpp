// One set-associative, write-back cache level with value-tracking lines.
//
// Unlike a purely statistical cache model, every line carries the actual data
// bytes of its block. That is what lets the simulator answer the question at
// the core of the paper: after an arbitrary crash, which bytes of which data
// objects differ between the (lost) caches and the (surviving) NVM image?
//
// Hot-path design (docs/INTERNALS.md "Simulator performance"):
//  - set selection uses a shift + mask when the set count is a power of two
//    (a predictable-branch modulo fallback covers geometries like the Xeon
//    Gold 6126 L3, whose 11-way layout yields a non-power-of-two set count);
//  - find() keeps a one-entry MRU cache of (blockAddr, line) so the common
//    case — consecutive accesses inside the same 64B block — skips the
//    associative probe entirely;
//  - insert()/extractInto() copy victim state into caller-owned scratch
//    buffers and return line indices, so the miss/evict flow performs no heap
//    allocation and no probe-after-mutation double lookups;
//  - valid/dirty line counts are maintained incrementally, so validLines() /
//    dirtyLines() and the drain path never scan the full line array.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "easycrash/common/check.hpp"
#include "easycrash/memsim/config.hpp"
#include "easycrash/memsim/dirty_index.hpp"

namespace easycrash::memsim {

class CacheLevel {
 public:
  CacheLevel(const CacheGeometry& geometry, std::uint32_t blockSize);

  /// A block displaced by an insertion (or removed by extraction). When used
  /// with the scratch-buffer APIs the `data` vector's capacity is reused
  /// across calls, so steady-state eviction traffic allocates nothing.
  struct Evicted {
    std::uint64_t blockAddr = 0;
    bool dirty = false;
    std::vector<std::uint8_t> data;
  };

  /// Result of a hot-path insertion: the line now holding the new block and
  /// whether a valid victim was displaced into the caller's scratch buffer.
  struct InsertResult {
    std::uint32_t line = 0;
    bool evicted = false;
  };

  /// Line index of `blockAddr` if resident.
  [[nodiscard]] std::optional<std::uint32_t> find(std::uint64_t blockAddr) const;

  /// MRU-only probe: the line index when `blockAddr` is the level's most
  /// recently used block, -1 otherwise (which says nothing about residency).
  /// This is the inlined first half of find(); the hierarchy's header-level
  /// load/store fast paths use it to keep an L1 MRU hit free of any
  /// out-of-line call.
  [[nodiscard]] std::int64_t mruLineOf(std::uint64_t blockAddr) const {
    return (mruValid_ && mruBlock_ == blockAddr) ? static_cast<std::int64_t>(mruLine_)
                                                 : -1;
  }

  /// Insert `blockAddr` (must not be resident); the victim's state, if any,
  /// is copied into `victim` (reusing its buffer). Returns the filled line,
  /// marked most-recently-used and clean. The line's data bytes are NOT
  /// zeroed — every caller overwrites the full block immediately after.
  InsertResult insert(std::uint64_t blockAddr, Evicted& victim);

  /// Allocating convenience wrapper around the scratch-buffer insert(): the
  /// new line's data is zero-initialised, and the victim (if any) is
  /// returned by value.
  std::optional<Evicted> insert(std::uint64_t blockAddr);

  /// Remove a resident block without write-back, copying its state into
  /// `out` (reusing its buffer).
  void extractInto(std::uint64_t blockAddr, Evicted& out);

  /// Allocating convenience wrapper around extractInto().
  Evicted extract(std::uint64_t blockAddr);

  /// Drop a block if resident (no write-back, state discarded).
  void invalidate(std::uint64_t blockAddr);
  /// Drop a line by index (no write-back); the line must be valid.
  void invalidateLine(std::uint32_t line);
  /// Drop everything (simulates power loss).
  void invalidateAll();

  [[nodiscard]] std::span<std::uint8_t> data(std::uint32_t line) {
    return {storage_.data() + static_cast<std::size_t>(line) * blockSize_, blockSize_};
  }
  [[nodiscard]] std::span<const std::uint8_t> data(std::uint32_t line) const {
    return {storage_.data() + static_cast<std::size_t>(line) * blockSize_, blockSize_};
  }
  [[nodiscard]] bool valid(std::uint32_t line) const { return lines_[line].valid; }
  [[nodiscard]] bool dirty(std::uint32_t line) const { return lines_[line].dirty; }
  void setDirty(std::uint32_t line, bool value) {
    Line& l = lines_[line];
    EC_DCHECK_MSG(l.valid, "setDirty on an invalid line");
    if (l.dirty != value) {
      if (value) {
        ++dirtyCount_;
        if (dirtyIndex_ != nullptr) dirtyIndex_->add(l.blockAddr, levelId_, line);
      } else {
        --dirtyCount_;
        if (dirtyIndex_ != nullptr) dirtyIndex_->remove(l.blockAddr, levelId_);
      }
      l.dirty = value;
    }
  }
  [[nodiscard]] std::uint64_t blockAddr(std::uint32_t line) const {
    return lines_[line].blockAddr;
  }

  /// Mark `line` most-recently-used within its set.
  void touch(std::uint32_t line) { lines_[line].lastUse = ++tick_; }

  /// Visit every valid line: fn(blockAddr, dirty, data).
  template <typename Fn>
  void forEachValid(Fn&& fn) const {
    for (std::uint32_t i = 0; i < lines_.size(); ++i) {
      if (lines_[i].valid) fn(lines_[i].blockAddr, lines_[i].dirty, data(i));
    }
  }

  [[nodiscard]] std::uint64_t sets() const { return sets_; }
  [[nodiscard]] std::uint32_t associativity() const { return assoc_; }
  [[nodiscard]] std::uint32_t lineCount() const {
    return static_cast<std::uint32_t>(lines_.size());
  }
  [[nodiscard]] std::uint64_t validLines() const { return validCount_; }
  [[nodiscard]] std::uint64_t dirtyLines() const { return dirtyCount_; }

  /// Attach the owning hierarchy's dirty-block index: every dirty-membership
  /// transition of a line in this level (setDirty flip, removal of a dirty
  /// line, invalidateAll) is mirrored into it, so the post-mortem scan can
  /// enumerate dirty-anywhere blocks without probing the levels. All levels
  /// of one hierarchy share one index; `levelId` is this level's bit in the
  /// per-block dirty mask and must be unique within the hierarchy, ordered
  /// freshest-first (L1 = 0, or per-core caches before a shared LLC). The
  /// index must outlive this level (or a later attach of nullptr).
  void attachDirtyIndex(DirtyBlockIndex* index, std::uint32_t levelId) {
    dirtyIndex_ = index;
    levelId_ = levelId;
  }

 private:
  struct Line {
    std::uint64_t blockAddr = 0;
    std::uint64_t lastUse = 0;
    bool valid = false;
    bool dirty = false;
  };

  [[nodiscard]] std::uint64_t setOf(std::uint64_t blockAddr) const {
    const std::uint64_t block = blockAddr >> blockShift_;
    return setsPow2_ ? (block & setMask_) : (block % sets_);
  }
  [[nodiscard]] std::uint32_t lineIndex(std::uint64_t set, std::uint32_t way) const {
    return static_cast<std::uint32_t>(set * assoc_ + way);
  }
  void noteRemoved(const Line& line);

  std::uint32_t blockSize_;
  std::uint32_t blockShift_ = 0;  ///< log2(blockSize_)
  std::uint64_t sets_;
  std::uint64_t setMask_ = 0;  ///< sets_ - 1 when sets_ is a power of two
  bool setsPow2_ = false;
  std::uint32_t assoc_;
  std::uint64_t tick_ = 0;
  std::uint64_t validCount_ = 0;
  std::uint64_t dirtyCount_ = 0;
  std::vector<Line> lines_;
  std::vector<std::uint8_t> storage_;
  DirtyBlockIndex* dirtyIndex_ = nullptr;  ///< shared per-hierarchy, may be null
  std::uint32_t levelId_ = 0;              ///< this level's bit in the dirty mask

  // One-entry MRU cache consulted by find() before the associative probe.
  // Invalidation rules: cleared whenever the cached block leaves this level
  // (extract/invalidate/invalidateAll) and redirected on insert (the new
  // line is by definition the most recently used).
  mutable std::uint64_t mruBlock_ = 0;
  mutable std::uint32_t mruLine_ = 0;
  mutable bool mruValid_ = false;
};

}  // namespace easycrash::memsim
