#include "easycrash/memsim/hierarchy.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "easycrash/common/check.hpp"
#include "easycrash/memsim/scan.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace easycrash::memsim {

CacheHierarchy::CacheHierarchy(CacheConfig config, NvmStore& nvm)
    : config_(std::move(config)), nvm_(nvm) {
  config_.validate();
  EC_CHECK(nvm_.blockSize() == config_.blockSize);
  EC_CHECK_MSG(config_.levels.size() <= kMaxLevels, "too many cache levels");
  blockMask_ = config_.blockSize - 1;
  levels_.reserve(config_.levels.size());
  for (const CacheGeometry& g : config_.levels) levels_.emplace_back(g, config_.blockSize);
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    levels_[i].attachDirtyIndex(&dirtyIndex_, static_cast<std::uint32_t>(i));
  }
  fillScratch_.resize(config_.blockSize);
  scanScratch_.resize(config_.blockSize);
}

std::size_t CacheHierarchy::lowestResidentLevel(std::uint64_t blockAddr) const {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].find(blockAddr)) return i;
  }
  return kNone;
}

CacheHierarchy::Resident CacheHierarchy::lowestResident(
    std::uint64_t blockAddr) const {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (const auto line = levels_[i].find(blockAddr)) return {i, *line};
  }
  return {};
}

std::span<const std::uint8_t> CacheHierarchy::dirtyBlockData(
    std::uint64_t blockAddr) const {
  const DirtyBlockIndex::Owner own = dirtyIndex_.owner(blockAddr);
  const CacheLevel& level = levels_[own.level];
  std::uint32_t line = own.line;
  if (!own.lineKnown) {
    const auto probed = level.find(blockAddr);
    EC_DCHECK_MSG(probed.has_value(), "dirty-indexed block not resident");
    line = *probed;
  }
  EC_DCHECK_MSG(level.valid(line) && level.dirty(line) &&
                    level.blockAddr(line) == blockAddr,
                "dirty-index owner record out of sync");
  return level.data(line);
}

void CacheHierarchy::handleEviction(std::size_t level, CacheLevel::Evicted& victim) {
  // Inclusive hierarchy: a victim evicted from `level` may have fresher
  // copies above; merge them and back-invalidate (upper copies cannot outlive
  // the lower one). Iterate upper levels farthest-from-CPU first so that the
  // freshest copy — the one closest to the CPU — is applied last and wins
  // when several levels hold dirty data.
  for (std::size_t upper = level; upper-- > 0;) {
    if (levels_[upper].find(victim.blockAddr)) {
      levels_[upper].extractInto(victim.blockAddr, mergeScratch_);
      if (mergeScratch_.dirty) {
        std::swap(victim.data, mergeScratch_.data);
        victim.dirty = true;
      }
    }
  }

  if (level + 1 < levels_.size()) {
    // Write back into the next level, where the block must still be resident.
    const auto below = levels_[level + 1].find(victim.blockAddr);
    EC_CHECK_MSG(below.has_value(), "inclusivity violated: victim absent below");
    if (victim.dirty) {
      auto dst = levels_[level + 1].data(*below);
      std::copy(victim.data.begin(), victim.data.end(), dst.begin());
      levels_[level + 1].setDirty(*below, true);
    }
  } else if (victim.dirty) {
    nvm_.writeBlock(victim.blockAddr, victim.data);
    ++events_.nvmBlockWrites;
  }
}

std::uint32_t CacheHierarchy::insertAt(std::size_t level, std::uint64_t blockAddr,
                                       std::span<const std::uint8_t> data) {
  const auto result = levels_[level].insert(blockAddr, evictScratch_);
  if (result.evicted) handleEviction(level, evictScratch_);
  auto dst = levels_[level].data(result.line);
  std::copy(data.begin(), data.end(), dst.begin());
  return result.line;
}

std::uint32_t CacheHierarchy::ensureInL1(std::uint64_t blockAddr) {
  if constexpr (telemetry::kTraceCompiledIn) {
    if (profileShift_ != 0) {
      const std::size_t bucket = static_cast<std::size_t>(blockAddr >> profileShift_);
      if (bucket >= accessProfile_.size()) accessProfile_.resize(bucket + 1, 0);
      ++accessProfile_[bucket];
    }
  }
  if (const auto l1 = levels_[0].find(blockAddr)) {
    ++events_.hits[0];
    levels_[0].touch(*l1);
    return *l1;
  }
  return fillToL1(blockAddr);
}

void CacheHierarchy::enableAccessProfile(std::uint32_t strideBytes) {
  if constexpr (telemetry::kTraceCompiledIn) {
    const std::uint32_t stride = std::max(strideBytes, config_.blockSize);
    std::uint32_t shift = 0;
    while ((1u << shift) < stride) ++shift;  // round up to a power of two
    profileShift_ = shift;
  }
}

std::uint32_t CacheHierarchy::fillToL1(std::uint64_t blockAddr) {
  ++events_.misses[0];

  // Find the block below L1, filling missing levels top-down from the level
  // (or NVM) that has it.
  std::size_t source = levels_.size();  // levels_.size() == NVM
  for (std::size_t i = 1; i < levels_.size(); ++i) {
    if (const auto line = levels_[i].find(blockAddr)) {
      ++events_.hits[i];
      levels_[i].touch(*line);
      const auto src = levels_[i].data(*line);
      std::copy(src.begin(), src.end(), fillScratch_.begin());
      source = i;
      break;
    }
    ++events_.misses[i];
  }
  if (source == levels_.size()) {
    nvm_.read(blockAddr, fillScratch_);
    ++events_.nvmBlockReads;
  }

  // Fill every level above the source (inclusive hierarchy), bottom-up so a
  // lower-level eviction can still back-invalidate consistently.
  std::uint32_t l1Line = 0;
  for (std::size_t i = source; i-- > 0;) {
    l1Line = insertAt(i, blockAddr, fillScratch_);
  }
  return l1Line;
}

void CacheHierarchy::loadSlow(std::uint64_t addr, std::span<std::uint8_t> dst) {
  // Fast path: the whole access falls inside one block (every scalar
  // loadValue of an aligned element) — one probe, one memcpy.
  const std::uint64_t inBlock = addr & blockMask_;
  if (!dst.empty() && inBlock + dst.size() <= config_.blockSize) {
    const std::uint32_t line = ensureInL1(addr - inBlock);
    std::memcpy(dst.data(), levels_[0].data(line).data() + inBlock, dst.size());
    ++events_.loads;
    return;
  }
  std::uint64_t offset = 0;
  while (offset < dst.size()) {
    const std::uint64_t a = addr + offset;
    const std::uint64_t base = blockBase(a);
    const std::uint64_t off = a - base;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(config_.blockSize - off, dst.size() - offset);
    const std::uint32_t line = ensureInL1(base);
    const auto src = levels_[0].data(line);
    std::memcpy(dst.data() + offset, src.data() + off, chunk);
    ++events_.loads;
    offset += chunk;
  }
}

void CacheHierarchy::storeSlow(std::uint64_t addr, std::span<const std::uint8_t> src) {
  // Fast path mirroring load(): single-block stores skip the chunking loop.
  const std::uint64_t inBlock = addr & blockMask_;
  if (!src.empty() && inBlock + src.size() <= config_.blockSize) {
    const std::uint32_t line = ensureInL1(addr - inBlock);
    std::memcpy(levels_[0].data(line).data() + inBlock, src.data(), src.size());
    levels_[0].setDirty(line, true);
    ++events_.stores;
    return;
  }
  std::uint64_t offset = 0;
  while (offset < src.size()) {
    const std::uint64_t a = addr + offset;
    const std::uint64_t base = blockBase(a);
    const std::uint64_t off = a - base;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(config_.blockSize - off, src.size() - offset);
    const std::uint32_t line = ensureInL1(base);
    auto dst = levels_[0].data(line);
    std::memcpy(dst.data() + off, src.data() + offset, chunk);
    levels_[0].setDirty(line, true);
    ++events_.stores;
    offset += chunk;
  }
}

void CacheHierarchy::loadRange(std::uint64_t addr, std::span<std::uint8_t> dst,
                               std::uint32_t elemSize) {
  EC_CHECK(elemSize > 0);
  if (dst.empty()) return;
  ++events_.rangeLoads;
  std::uint64_t offset = 0;
  while (offset < dst.size()) {
    const std::uint64_t a = addr + offset;
    const std::uint64_t base = blockBase(a);
    const std::uint64_t off = a - base;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(config_.blockSize - off, dst.size() - offset);
    // Logical elements overlapping this block segment (a straddling element
    // belongs to both of its blocks, as the scalar chunk loop counts it).
    const std::uint64_t touches =
        (offset + chunk - 1) / elemSize - offset / elemSize + 1;
    const std::uint32_t line = ensureInL1(base);
    events_.hits[0] += touches - 1;
    events_.loads += touches;
    ++events_.rangeSplitBlocks;
    std::memcpy(dst.data() + offset, levels_[0].data(line).data() + off, chunk);
    offset += chunk;
  }
}

void CacheHierarchy::storeRange(std::uint64_t addr,
                                std::span<const std::uint8_t> src,
                                std::uint32_t elemSize) {
  EC_CHECK(elemSize > 0);
  if (src.empty()) return;
  ++events_.rangeStores;
  std::uint64_t offset = 0;
  while (offset < src.size()) {
    const std::uint64_t a = addr + offset;
    const std::uint64_t base = blockBase(a);
    const std::uint64_t off = a - base;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(config_.blockSize - off, src.size() - offset);
    const std::uint64_t touches =
        (offset + chunk - 1) / elemSize - offset / elemSize + 1;
    const std::uint32_t line = ensureInL1(base);
    events_.hits[0] += touches - 1;
    events_.stores += touches;
    ++events_.rangeSplitBlocks;
    std::memcpy(levels_[0].data(line).data() + off, src.data() + offset, chunk);
    levels_[0].setDirty(line, true);
    offset += chunk;
  }
}

void CacheHierarchy::touchRange(std::uint64_t addr, std::uint64_t size) {
  if (size == 0) return;
  const std::uint64_t first = blockBase(addr);
  const std::uint64_t last = blockBase(addr + size - 1);
  for (std::uint64_t b = first; b <= last; b += config_.blockSize) {
    (void)ensureInL1(b);
  }
}

void CacheHierarchy::flushBlock(std::uint64_t addr, FlushKind kind) {
  const std::uint64_t base = blockBase(addr);

  // One probe per level; every later step reuses the cached line indices.
  std::array<std::int64_t, kMaxLevels> lineAt;
  std::size_t lowest = kNone;
  bool dirtyAnywhere = false;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const auto line = levels_[i].find(base);
    lineAt[i] = line ? static_cast<std::int64_t>(*line) : -1;
    if (line) {
      if (lowest == kNone) lowest = i;
      dirtyAnywhere = dirtyAnywhere || levels_[i].dirty(*line);
    }
  }
  if (lowest == kNone) {
    ++events_.flushNonResident;
    return;
  }

  if (dirtyAnywhere) {
    const auto freshest =
        levels_[lowest].data(static_cast<std::uint32_t>(lineAt[lowest]));
    nvm_.writeBlock(base, freshest);
    ++events_.nvmBlockWrites;
    ++events_.flushInducedNvmWrites;
    ++events_.flushDirty;
    // All copies become clean and identical to NVM.
    for (std::size_t i = lowest; i < levels_.size(); ++i) {
      if (lineAt[i] < 0) continue;
      const auto l = static_cast<std::uint32_t>(lineAt[i]);
      auto dst = levels_[i].data(l);
      std::copy(freshest.begin(), freshest.end(), dst.begin());
      levels_[i].setDirty(l, false);
    }
  } else {
    ++events_.flushClean;
  }

  if (kind != FlushKind::Clwb) {
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      if (lineAt[i] >= 0) {
        levels_[i].invalidateLine(static_cast<std::uint32_t>(lineAt[i]));
      }
    }
  }
}

void CacheHierarchy::flushRange(std::uint64_t addr, std::uint64_t size,
                                FlushKind kind) {
  if (size == 0) return;
  const bool trace = telemetry::tracing();
  const MemEvents before = trace ? events_ : MemEvents{};
  const std::uint64_t first = blockBase(addr);
  const std::uint64_t last = blockBase(addr + size - 1);
  for (std::uint64_t b = first; b <= last; b += config_.blockSize) {
    flushBlock(b, kind);
  }
  if (trace) {
    const MemEvents d = events_.delta(before);
    telemetry::TraceEvent("flush_burst")
        .field("addr", addr)
        .field("bytes", size)
        .field("blocks", (last - first) / config_.blockSize + 1)
        .field("dirty", d.flushDirty)
        .field("clean", d.flushClean)
        .field("non_resident", d.flushNonResident)
        .field("nvm_writes", d.nvmBlockWrites)
        .emit();
  }
}

void CacheHierarchy::peek(std::uint64_t addr, std::span<std::uint8_t> dst) const {
  if (!scanFast_) {
    peekScalar(addr, dst);
    return;
  }
  if (dst.empty()) return;
  // Only dirty-indexed blocks can hold a value diverging from NVM (a clean
  // copy equals the level below it, down to NVM — the coherence invariant
  // checkInvariants() asserts), so runs of non-indexed blocks are served
  // with one bulk NVM read each and only indexed blocks pay cache probes.
  const std::uint64_t end = addr + dst.size();
  std::uint64_t runStart = addr;  // start of the pending NVM run
  const std::uint64_t first = blockBase(addr);
  const std::uint64_t last = blockBase(end - 1);
  for (std::uint64_t base = first; base <= last; base += config_.blockSize) {
    if (!dirtyIndex_.contains(base)) continue;
    const std::uint64_t lo = std::max(base, addr);
    const std::uint64_t hi = std::min(base + config_.blockSize, end);
    if (lo > runStart) {
      nvm_.read(runStart, {dst.data() + (runStart - addr), lo - runStart});
    }
    const auto src = dirtyBlockData(base);
    std::memcpy(dst.data() + (lo - addr), src.data() + (lo - base), hi - lo);
    runStart = hi;
  }
  if (runStart < end) {
    nvm_.read(runStart, {dst.data() + (runStart - addr), end - runStart});
  }
}

void CacheHierarchy::peekScalar(std::uint64_t addr,
                                std::span<std::uint8_t> dst) const {
  std::uint64_t offset = 0;
  while (offset < dst.size()) {
    const std::uint64_t a = addr + offset;
    const std::uint64_t base = blockBase(a);
    const std::uint64_t inBlock = a - base;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(config_.blockSize - inBlock, dst.size() - offset);
    const Resident res = lowestResident(base);
    if (res.level == kNone) {
      nvm_.read(a, {dst.data() + offset, chunk});
    } else {
      const auto src = levels_[res.level].data(res.line);
      std::memcpy(dst.data() + offset, src.data() + inBlock, chunk);
    }
    offset += chunk;
  }
}

std::uint64_t CacheHierarchy::inconsistentBytes(std::uint64_t addr,
                                                std::uint64_t size) const {
  if (size == 0) return 0;
  if (!scanFast_) return inconsistentBytesScalar(addr, size);
  const std::uint64_t first = blockBase(addr);
  const std::uint64_t last = blockBase(addr + size - 1);
  const std::uint64_t blocks = (last - first) / config_.blockSize + 1;
  std::uint64_t count = 0;
  std::uint64_t compared = 0;
  std::uint64_t bytesCompared = 0;
  dirtyIndex_.forEachIn(first, last, [&](std::uint64_t base) {
    const auto cached = dirtyBlockData(base);
    // Compare against the NVM image in place; the scratch copy only serves
    // blocks the image does not fully back (those bytes read as zeros).
    const std::uint8_t* image = nvm_.blockView(base).data();
    if (image == nullptr) {
      nvm_.read(base, scanScratch_);
      image = scanScratch_.data();
    }
    // Only count bytes inside [addr, addr+size).
    const std::uint64_t lo = std::max(base, addr);
    const std::uint64_t hi = std::min(base + config_.blockSize, addr + size);
    count += scan::countDiffBytes(cached.data() + (lo - base),
                                  image + (lo - base), hi - lo);
    ++compared;
    bytesCompared += hi - lo;
  });
  events_.postmortemBlocksCompared += compared;
  events_.postmortemBlocksSkipped += blocks - compared;
  events_.postmortemBytesCompared += bytesCompared;
  if (telemetry::tracing()) {
    telemetry::TraceEvent("postmortem_scan")
        .field("addr", addr)
        .field("bytes", size)
        .field("blocks", blocks)
        .field("blocks_compared", compared)
        .field("blocks_skipped", blocks - compared)
        .field("bytes_compared", bytesCompared)
        .field("diff", count)
        .field("kernel", scan::kernelName(scan::activeKernel()))
        .emit();
  }
  return count;
}

std::uint64_t CacheHierarchy::inconsistentBytesScalar(std::uint64_t addr,
                                                      std::uint64_t size) const {
  if (size == 0) return 0;
  std::uint64_t count = 0;
  std::vector<std::uint8_t> nvmBlock(config_.blockSize);
  const std::uint64_t first = blockBase(addr);
  const std::uint64_t last = blockBase(addr + size - 1);
  for (std::uint64_t base = first; base <= last; base += config_.blockSize) {
    bool dirtyAnywhere = false;
    std::size_t lowest = kNone;
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      if (const auto line = levels_[i].find(base)) {
        if (lowest == kNone) lowest = i;
        dirtyAnywhere = dirtyAnywhere || levels_[i].dirty(*line);
      }
    }
    if (!dirtyAnywhere) continue;  // clean or absent copies match NVM

    const auto line = levels_[lowest].find(base);
    const auto cached = levels_[lowest].data(*line);
    nvm_.read(base, nvmBlock);

    // Only count bytes inside [addr, addr+size).
    const std::uint64_t lo = std::max(base, addr);
    const std::uint64_t hi = std::min(base + config_.blockSize, addr + size);
    for (std::uint64_t b = lo; b < hi; ++b) {
      const std::uint64_t i = b - base;
      if (cached[i] != nvmBlock[i]) ++count;
    }
  }
  return count;
}

void CacheHierarchy::drainAll() {
  // Propagate dirty data downward level by level, then write LLC dirt to
  // NVM. The incremental dirty counter lets a clean level be skipped without
  // scanning it, and the per-line walk needs no temporary block list: the
  // walk only flips dirty bits, never moves lines.
  for (std::size_t i = 0; i + 1 < levels_.size(); ++i) {
    CacheLevel& upper = levels_[i];
    CacheLevel& lower = levels_[i + 1];
    if (upper.dirtyLines() == 0) continue;
    for (std::uint32_t line = 0; line < upper.lineCount(); ++line) {
      if (!upper.valid(line) || !upper.dirty(line)) continue;
      const std::uint64_t blockAddr = upper.blockAddr(line);
      const auto loLine = lower.find(blockAddr);
      EC_CHECK_MSG(loLine.has_value(), "inclusivity violated during drain");
      const auto src = upper.data(line);
      auto dst = lower.data(*loLine);
      std::copy(src.begin(), src.end(), dst.begin());
      lower.setDirty(*loLine, true);
      upper.setDirty(line, false);
    }
  }
  CacheLevel& llc = levels_.back();
  if (llc.dirtyLines() == 0) return;
  for (std::uint32_t line = 0; line < llc.lineCount(); ++line) {
    if (!llc.valid(line) || !llc.dirty(line)) continue;
    nvm_.writeBlock(llc.blockAddr(line), llc.data(line));
    ++events_.nvmBlockWrites;
    llc.setDirty(line, false);
  }
}

void CacheHierarchy::invalidateAll() {
  for (auto& level : levels_) level.invalidateAll();
}

void CacheHierarchy::checkInvariants() const {
  for (std::size_t i = 0; i + 1 < levels_.size(); ++i) {
    levels_[i].forEachValid([&](std::uint64_t blockAddr, bool dirty,
                                std::span<const std::uint8_t> data) {
      const auto below = levels_[i + 1].find(blockAddr);
      EC_CHECK_MSG(below.has_value(), "inclusivity: block missing from lower level");
      if (!dirty) {
        const auto lowerData = levels_[i + 1].data(*below);
        EC_CHECK_MSG(std::equal(data.begin(), data.end(), lowerData.begin()),
                     "clean upper copy differs from lower level");
      }
    });
  }
  // Clean LLC lines must match the NVM image.
  std::vector<std::uint8_t> nvmBlock(config_.blockSize);
  levels_.back().forEachValid([&](std::uint64_t blockAddr, bool dirty,
                                  std::span<const std::uint8_t> data) {
    bool dirtyAbove = false;
    for (std::size_t i = 0; i + 1 < levels_.size(); ++i) {
      if (const auto line = levels_[i].find(blockAddr)) {
        dirtyAbove = dirtyAbove || levels_[i].dirty(*line);
      }
    }
    if (!dirty && !dirtyAbove) {
      nvm_.read(blockAddr, nvmBlock);
      EC_CHECK_MSG(std::equal(data.begin(), data.end(), nvmBlock.begin()),
                   "clean LLC copy differs from NVM image");
    }
  });
}

}  // namespace easycrash::memsim
