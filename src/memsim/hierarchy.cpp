#include "easycrash/memsim/hierarchy.hpp"

#include <algorithm>
#include <cstring>

#include "easycrash/common/check.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace easycrash::memsim {

CacheHierarchy::CacheHierarchy(CacheConfig config, NvmStore& nvm)
    : config_(std::move(config)), nvm_(nvm) {
  config_.validate();
  EC_CHECK(nvm_.blockSize() == config_.blockSize);
  EC_CHECK_MSG(config_.levels.size() <= kMaxLevels, "too many cache levels");
  levels_.reserve(config_.levels.size());
  for (const CacheGeometry& g : config_.levels) levels_.emplace_back(g, config_.blockSize);
}

std::size_t CacheHierarchy::lowestResidentLevel(std::uint64_t blockAddr) const {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].find(blockAddr)) return i;
  }
  return kNone;
}

void CacheHierarchy::handleEviction(std::size_t level, CacheLevel::Evicted victim) {
  // Inclusive hierarchy: a victim evicted from `level` may have fresher
  // copies above; merge them and back-invalidate (upper copies cannot outlive
  // the lower one). Iterate upper levels farthest-from-CPU first so that the
  // freshest copy — the one closest to the CPU — is applied last and wins
  // when several levels hold dirty data.
  for (std::size_t upper = level; upper-- > 0;) {
    if (levels_[upper].find(victim.blockAddr)) {
      CacheLevel::Evicted fresher = levels_[upper].extract(victim.blockAddr);
      if (fresher.dirty) {
        victim.data = std::move(fresher.data);
        victim.dirty = true;
      }
    }
  }

  if (level + 1 < levels_.size()) {
    // Write back into the next level, where the block must still be resident.
    const auto below = levels_[level + 1].find(victim.blockAddr);
    EC_CHECK_MSG(below.has_value(), "inclusivity violated: victim absent below");
    if (victim.dirty) {
      auto dst = levels_[level + 1].data(*below);
      std::copy(victim.data.begin(), victim.data.end(), dst.begin());
      levels_[level + 1].setDirty(*below, true);
    }
  } else if (victim.dirty) {
    nvm_.writeBlock(victim.blockAddr, victim.data);
    ++events_.nvmBlockWrites;
  }
}

void CacheHierarchy::insertAt(std::size_t level, std::uint64_t blockAddr,
                              std::span<const std::uint8_t> data) {
  auto victim = levels_[level].insert(blockAddr);
  if (victim) handleEviction(level, std::move(*victim));
  const auto line = levels_[level].find(blockAddr);
  auto dst = levels_[level].data(*line);
  std::copy(data.begin(), data.end(), dst.begin());
}

std::uint32_t CacheHierarchy::ensureInL1(std::uint64_t blockAddr) {
  if (const auto l1 = levels_[0].find(blockAddr)) {
    ++events_.hits[0];
    levels_[0].touch(*l1);
    return *l1;
  }
  ++events_.misses[0];

  // Find the block below L1, filling missing levels top-down from the level
  // (or NVM) that has it.
  std::vector<std::uint8_t> block(config_.blockSize);
  std::size_t source = levels_.size();  // levels_.size() == NVM
  for (std::size_t i = 1; i < levels_.size(); ++i) {
    if (const auto line = levels_[i].find(blockAddr)) {
      ++events_.hits[i];
      levels_[i].touch(*line);
      const auto src = levels_[i].data(*line);
      std::copy(src.begin(), src.end(), block.begin());
      source = i;
      break;
    }
    ++events_.misses[i];
  }
  if (source == levels_.size()) {
    nvm_.read(blockAddr, block);
    ++events_.nvmBlockReads;
  }

  // Fill every level above the source (inclusive hierarchy), bottom-up so a
  // lower-level eviction can still back-invalidate consistently.
  for (std::size_t i = source; i-- > 0;) {
    insertAt(i, blockAddr, block);
  }
  const auto l1 = levels_[0].find(blockAddr);
  EC_CHECK(l1.has_value());
  return *l1;
}

void CacheHierarchy::load(std::uint64_t addr, std::span<std::uint8_t> dst) {
  std::uint64_t offset = 0;
  while (offset < dst.size()) {
    const std::uint64_t a = addr + offset;
    const std::uint64_t base = blockBase(a);
    const std::uint64_t inBlock = a - base;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(config_.blockSize - inBlock, dst.size() - offset);
    const std::uint32_t line = ensureInL1(base);
    const auto src = levels_[0].data(line);
    std::memcpy(dst.data() + offset, src.data() + inBlock, chunk);
    ++events_.loads;
    offset += chunk;
  }
}

void CacheHierarchy::store(std::uint64_t addr, std::span<const std::uint8_t> src) {
  std::uint64_t offset = 0;
  while (offset < src.size()) {
    const std::uint64_t a = addr + offset;
    const std::uint64_t base = blockBase(a);
    const std::uint64_t inBlock = a - base;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(config_.blockSize - inBlock, src.size() - offset);
    const std::uint32_t line = ensureInL1(base);
    auto dst = levels_[0].data(line);
    std::memcpy(dst.data() + inBlock, src.data() + offset, chunk);
    levels_[0].setDirty(line, true);
    ++events_.stores;
    offset += chunk;
  }
}

void CacheHierarchy::flushBlock(std::uint64_t addr, FlushKind kind) {
  const std::uint64_t base = blockBase(addr);
  const std::size_t lowest = lowestResidentLevel(base);
  if (lowest == kNone) {
    ++events_.flushNonResident;
    return;
  }

  bool dirtyAnywhere = false;
  for (std::size_t i = lowest; i < levels_.size(); ++i) {
    if (const auto line = levels_[i].find(base)) {
      dirtyAnywhere = dirtyAnywhere || levels_[i].dirty(*line);
    }
  }

  if (dirtyAnywhere) {
    const auto line = levels_[lowest].find(base);
    const auto freshest = levels_[lowest].data(*line);
    nvm_.writeBlock(base, freshest);
    ++events_.nvmBlockWrites;
    ++events_.flushInducedNvmWrites;
    ++events_.flushDirty;
    // All copies become clean and identical to NVM.
    for (std::size_t i = lowest; i < levels_.size(); ++i) {
      if (const auto l = levels_[i].find(base)) {
        auto dst = levels_[i].data(*l);
        std::copy(freshest.begin(), freshest.end(), dst.begin());
        levels_[i].setDirty(*l, false);
      }
    }
  } else {
    ++events_.flushClean;
  }

  if (kind != FlushKind::Clwb) {
    for (auto& level : levels_) level.invalidate(base);
  }
}

void CacheHierarchy::flushRange(std::uint64_t addr, std::uint64_t size,
                                FlushKind kind) {
  if (size == 0) return;
  const bool trace = telemetry::tracing();
  const MemEvents before = trace ? events_ : MemEvents{};
  const std::uint64_t first = blockBase(addr);
  const std::uint64_t last = blockBase(addr + size - 1);
  for (std::uint64_t b = first; b <= last; b += config_.blockSize) {
    flushBlock(b, kind);
  }
  if (trace) {
    const MemEvents d = events_.delta(before);
    telemetry::TraceEvent("flush_burst")
        .field("addr", addr)
        .field("bytes", size)
        .field("blocks", (last - first) / config_.blockSize + 1)
        .field("dirty", d.flushDirty)
        .field("clean", d.flushClean)
        .field("non_resident", d.flushNonResident)
        .field("nvm_writes", d.nvmBlockWrites)
        .emit();
  }
}

void CacheHierarchy::peek(std::uint64_t addr, std::span<std::uint8_t> dst) const {
  std::uint64_t offset = 0;
  while (offset < dst.size()) {
    const std::uint64_t a = addr + offset;
    const std::uint64_t base = blockBase(a);
    const std::uint64_t inBlock = a - base;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(config_.blockSize - inBlock, dst.size() - offset);
    const std::size_t lowest = lowestResidentLevel(base);
    if (lowest == kNone) {
      nvm_.read(a, {dst.data() + offset, chunk});
    } else {
      const auto line = levels_[lowest].find(base);
      const auto src = levels_[lowest].data(*line);
      std::memcpy(dst.data() + offset, src.data() + inBlock, chunk);
    }
    offset += chunk;
  }
}

std::uint64_t CacheHierarchy::inconsistentBytes(std::uint64_t addr,
                                                std::uint64_t size) const {
  if (size == 0) return 0;
  std::uint64_t count = 0;
  std::vector<std::uint8_t> nvmBlock(config_.blockSize);
  const std::uint64_t first = blockBase(addr);
  const std::uint64_t last = blockBase(addr + size - 1);
  for (std::uint64_t base = first; base <= last; base += config_.blockSize) {
    bool dirtyAnywhere = false;
    std::size_t lowest = kNone;
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      if (const auto line = levels_[i].find(base)) {
        if (lowest == kNone) lowest = i;
        dirtyAnywhere = dirtyAnywhere || levels_[i].dirty(*line);
      }
    }
    if (!dirtyAnywhere) continue;  // clean or absent copies match NVM

    const auto line = levels_[lowest].find(base);
    const auto cached = levels_[lowest].data(*line);
    nvm_.read(base, nvmBlock);

    // Only count bytes inside [addr, addr+size).
    const std::uint64_t lo = std::max(base, addr);
    const std::uint64_t hi = std::min(base + config_.blockSize, addr + size);
    for (std::uint64_t b = lo; b < hi; ++b) {
      const std::uint64_t i = b - base;
      if (cached[i] != nvmBlock[i]) ++count;
    }
  }
  return count;
}

void CacheHierarchy::drainAll() {
  // Propagate dirty data downward level by level, then write LLC dirt to NVM.
  for (std::size_t i = 0; i + 1 < levels_.size(); ++i) {
    CacheLevel& upper = levels_[i];
    CacheLevel& lower = levels_[i + 1];
    std::vector<std::uint64_t> dirtyBlocks;
    upper.forEachValid([&](std::uint64_t blockAddr, bool dirty, auto) {
      if (dirty) dirtyBlocks.push_back(blockAddr);
    });
    for (std::uint64_t blockAddr : dirtyBlocks) {
      const auto upLine = upper.find(blockAddr);
      const auto loLine = lower.find(blockAddr);
      EC_CHECK_MSG(loLine.has_value(), "inclusivity violated during drain");
      const auto src = upper.data(*upLine);
      auto dst = lower.data(*loLine);
      std::copy(src.begin(), src.end(), dst.begin());
      lower.setDirty(*loLine, true);
      upper.setDirty(*upLine, false);
    }
  }
  CacheLevel& llc = levels_.back();
  std::vector<std::uint64_t> dirtyBlocks;
  llc.forEachValid([&](std::uint64_t blockAddr, bool dirty, auto) {
    if (dirty) dirtyBlocks.push_back(blockAddr);
  });
  for (std::uint64_t blockAddr : dirtyBlocks) {
    const auto line = llc.find(blockAddr);
    nvm_.writeBlock(blockAddr, llc.data(*line));
    ++events_.nvmBlockWrites;
    llc.setDirty(*line, false);
  }
}

void CacheHierarchy::invalidateAll() {
  for (auto& level : levels_) level.invalidateAll();
}

void CacheHierarchy::checkInvariants() const {
  for (std::size_t i = 0; i + 1 < levels_.size(); ++i) {
    levels_[i].forEachValid([&](std::uint64_t blockAddr, bool dirty,
                                std::span<const std::uint8_t> data) {
      const auto below = levels_[i + 1].find(blockAddr);
      EC_CHECK_MSG(below.has_value(), "inclusivity: block missing from lower level");
      if (!dirty) {
        const auto lowerData = levels_[i + 1].data(*below);
        EC_CHECK_MSG(std::equal(data.begin(), data.end(), lowerData.begin()),
                     "clean upper copy differs from lower level");
      }
    });
  }
  // Clean LLC lines must match the NVM image.
  std::vector<std::uint8_t> nvmBlock(config_.blockSize);
  levels_.back().forEachValid([&](std::uint64_t blockAddr, bool dirty,
                                  std::span<const std::uint8_t> data) {
    bool dirtyAbove = false;
    for (std::size_t i = 0; i + 1 < levels_.size(); ++i) {
      if (const auto line = levels_[i].find(blockAddr)) {
        dirtyAbove = dirtyAbove || levels_[i].dirty(*line);
      }
    }
    if (!dirty && !dirtyAbove) {
      nvm_.read(blockAddr, nvmBlock);
      EC_CHECK_MSG(std::equal(data.begin(), data.end(), nvmBlock.begin()),
                   "clean LLC copy differs from NVM image");
    }
  });
}

}  // namespace easycrash::memsim
