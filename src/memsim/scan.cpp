#include "easycrash/memsim/scan.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define EASYCRASH_SCAN_HAS_AVX2 1
#include <immintrin.h>
#else
#define EASYCRASH_SCAN_HAS_AVX2 0
#endif

namespace easycrash::memsim::scan {

namespace {

/// -1 = resolve from env/CPUID, otherwise a forced Kernel value.
std::atomic<int> g_forced{-1};

[[nodiscard]] Kernel resolveKernel() noexcept {
  if (const char* env = std::getenv("EASYCRASH_SCAN_KERNEL")) {
    if (std::strcmp(env, "portable") == 0) return Kernel::Portable;
    if (std::strcmp(env, "avx2") == 0 && avx2Available()) return Kernel::Avx2;
    // "auto", an unexecutable request or an unknown value all fall through
    // to CPUID resolution.
  }
  return avx2Available() ? Kernel::Avx2 : Kernel::Portable;
}

}  // namespace

bool avx2Available() noexcept {
#if EASYCRASH_SCAN_HAS_AVX2
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Kernel activeKernel() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Kernel>(forced);
  static const Kernel resolved = resolveKernel();
  return resolved;
}

const char* kernelName(Kernel kernel) noexcept {
  return kernel == Kernel::Avx2 ? "avx2" : "portable";
}

void forceKernel(Kernel kernel) noexcept {
  if (kernel == Kernel::Avx2 && !avx2Available()) return;
  g_forced.store(static_cast<int>(kernel), std::memory_order_relaxed);
}

void resetKernel() noexcept { g_forced.store(-1, std::memory_order_relaxed); }

std::uint64_t countDiffBytesPortable(const std::uint8_t* a, const std::uint8_t* b,
                                     std::size_t n) noexcept {
  std::uint64_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t wa;
    std::uint64_t wb;
    std::memcpy(&wa, a + i, 8);
    std::memcpy(&wb, b + i, 8);
    std::uint64_t x = wa ^ wb;
    // Fold each byte's bits into its bit 0, then popcount the byte-nonzero
    // mask: cross-byte contamination from the shifts lands only in bits the
    // final mask discards.
    x |= x >> 1;
    x |= x >> 2;
    x |= x >> 4;
    count += static_cast<std::uint64_t>(
        std::popcount(x & 0x0101010101010101ULL));
  }
  for (; i < n; ++i) count += a[i] != b[i] ? 1 : 0;
  return count;
}

#if EASYCRASH_SCAN_HAS_AVX2
__attribute__((target("avx2"))) std::uint64_t countDiffBytesAvx2(
    const std::uint8_t* a, const std::uint8_t* b, std::size_t n) noexcept {
  std::uint64_t equal = 0;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const int mask = _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb));
    equal += static_cast<std::uint64_t>(
        std::popcount(static_cast<std::uint32_t>(mask)));
  }
  std::uint64_t count = i - equal;
  count += countDiffBytesPortable(a + i, b + i, n - i);
  return count;
}
#else
std::uint64_t countDiffBytesAvx2(const std::uint8_t* a, const std::uint8_t* b,
                                 std::size_t n) noexcept {
  return countDiffBytesPortable(a, b, n);
}
#endif

std::uint64_t countDiffBytes(const std::uint8_t* a, const std::uint8_t* b,
                             std::size_t n) noexcept {
  if (n == 0 || std::memcmp(a, b, n) == 0) return 0;
  return activeKernel() == Kernel::Avx2 ? countDiffBytesAvx2(a, b, n)
                                        : countDiffBytesPortable(a, b, n);
}

}  // namespace easycrash::memsim::scan
