#include "easycrash/memsim/region_monitor.hpp"

#include <algorithm>
#include <cmath>

#include "easycrash/common/check.hpp"

namespace easycrash::memsim {

RegionMonitor::RegionMonitor(RegionMonitorConfig config) : config_(config) {
  EC_CHECK_MSG(config_.sampleInterval > 0, "region monitor: zero sample interval");
  EC_CHECK_MSG(config_.minRegionsPerObject >= 1,
               "region monitor: minRegionsPerObject must be >= 1");
  EC_CHECK_MSG(config_.maxRegionsPerObject >= config_.minRegionsPerObject,
               "region monitor: region bounds inverted");
  EC_CHECK_MSG(config_.aggregateEvery > 0, "region monitor: zero aggregate cadence");
  // Seed-deterministic sampling phase: where inside the first interval the
  // first sample lands (splitmix64 finalizer mix so nearby seeds diverge).
  std::uint64_t z = config_.seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  untilNext_ = 1 + (z ^ (z >> 31)) % config_.sampleInterval;
}

void RegionMonitor::attach(std::uint32_t id, std::string name, std::uint64_t addr,
                           std::uint64_t bytes) {
  EC_CHECK_MSG(bytes > 0, "region monitor: empty object");
  EC_CHECK_MSG(objects_.empty() ||
                   addr >= objects_.back().addr + objects_.back().bytes,
               "region monitor: objects must attach in ascending address order");
  MonitoredObject object;
  object.id = id;
  object.name = std::move(name);
  object.addr = addr;
  object.bytes = bytes;
  MonitorRegion region;
  region.base = addr;
  region.bytes = bytes;
  object.regions.push_back(region);
  objects_.push_back(std::move(object));
}

std::uint64_t RegionMonitor::regionCount() const {
  std::uint64_t count = 0;
  for (const auto& object : objects_) {
    count += object.regions.size();
  }
  return count;
}

MonitoredObject* RegionMonitor::objectAt(std::uint64_t addr) {
  if (lastObject_ < objects_.size()) {
    MonitoredObject& hit = objects_[lastObject_];
    if (addr >= hit.addr && addr < hit.addr + hit.bytes) return &hit;
  }
  // First object whose base is beyond addr, then step back one.
  const auto it = std::upper_bound(
      objects_.begin(), objects_.end(), addr,
      [](std::uint64_t a, const MonitoredObject& o) { return a < o.addr; });
  if (it == objects_.begin()) return nullptr;
  MonitoredObject& object = *(it - 1);
  if (addr >= object.addr + object.bytes) return nullptr;  // alignment gap
  lastObject_ = static_cast<std::size_t>(&object - objects_.data());
  return &object;
}

void RegionMonitor::recordSample(std::uint64_t addr, bool write) {
  ++samples_;
  ++sinceAggregate_;
  MonitoredObject* object = objectAt(addr);
  if (object == nullptr) return;
  ++object->samples;
  if (write) ++object->writes;
  if (window_) {
    ++object->windowSamples;
    if (write) ++object->windowWrites;
  }
  // Regions partition the object in ascending base order: first region whose
  // base is beyond addr, step back one.
  auto& regions = object->regions;
  auto it = std::upper_bound(
      regions.begin(), regions.end(), addr,
      [](std::uint64_t a, const MonitorRegion& r) { return a < r.base; });
  MonitorRegion& region = *(it - 1);
  ++region.samples;
  if (write) ++region.writes;
  if (addr < region.base + region.bytes / 2) ++region.leftSamples;
}

void RegionMonitor::onRangeSlow(std::uint64_t addr, std::uint32_t elemSize,
                                std::uint64_t n, bool write) {
  // Sample the logical elements at countdown positions within the chunk:
  // exactly the elements the element-wise path would have sampled.
  std::uint64_t pos = untilNext_ - 1;
  while (pos < n) {
    recordSample(addr + pos * elemSize, write);
    pos += config_.sampleInterval;
  }
  untilNext_ = pos - n + 1;
  if (sinceAggregate_ >= config_.aggregateEvery) {
    sinceAggregate_ = 0;
    aggregate();
  }
}

void RegionMonitor::aggregate() {
  for (auto& object : objects_) {
    auto& regions = object.regions;
    // Split pass: a region whose sampled accesses diverge across its halves
    // is split at the midpoint; the children inherit the observed half
    // counts and restart with a neutral left/right balance.
    for (std::size_t i = 0;
         i < regions.size() && regions.size() < config_.maxRegionsPerObject;
         ++i) {
      const MonitorRegion r = regions[i];
      if (r.bytes < 2 * config_.minRegionBytes) continue;
      if (r.samples < config_.minSplitSamples) continue;
      const std::uint64_t right = r.samples - r.leftSamples;
      const std::uint64_t diff =
          r.leftSamples > right ? r.leftSamples - right : right - r.leftSamples;
      if (static_cast<double>(diff) <=
          config_.splitImbalance * static_cast<double>(r.samples)) {
        continue;
      }
      MonitorRegion left;
      left.base = r.base;
      left.bytes = r.bytes / 2;
      left.samples = r.leftSamples;
      left.writes = r.samples == 0 ? 0 : r.writes * r.leftSamples / r.samples;
      left.leftSamples = left.samples / 2;
      MonitorRegion rightRegion;
      rightRegion.base = r.base + left.bytes;
      rightRegion.bytes = r.bytes - left.bytes;
      rightRegion.samples = right;
      rightRegion.writes = r.writes - left.writes;
      rightRegion.leftSamples = rightRegion.samples / 2;
      regions[i] = left;
      regions.insert(regions.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                     rightRegion);
      ++splits_;
      ++i;  // past both children
    }
    // Merge pass: adjacent regions whose sample densities converged fold
    // back into one, down to the minimum region count.
    for (std::size_t i = 0;
         i + 1 < regions.size() && regions.size() > config_.minRegionsPerObject;) {
      const MonitorRegion& a = regions[i];
      const MonitorRegion& b = regions[i + 1];
      const double da =
          static_cast<double>(a.samples) / static_cast<double>(a.bytes);
      const double db =
          static_cast<double>(b.samples) / static_cast<double>(b.bytes);
      const double hi = std::max(da, db);
      if (hi > 0.0 && std::abs(da - db) > config_.mergeTolerance * hi) {
        ++i;
        continue;
      }
      MonitorRegion merged;
      merged.base = a.base;
      merged.bytes = a.bytes + b.bytes;
      merged.samples = a.samples + b.samples;
      merged.writes = a.writes + b.writes;
      // Neutral balance: the halves of the merged region re-accumulate from
      // here, so a genuinely skewed merge re-splits on real signal only.
      merged.leftSamples = merged.samples / 2;
      regions[i] = merged;
      regions.erase(regions.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      ++merges_;
    }
  }
}

}  // namespace easycrash::memsim
