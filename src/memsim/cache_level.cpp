#include "easycrash/memsim/cache_level.hpp"

#include <cstring>
#include <limits>

#include "easycrash/common/check.hpp"

namespace easycrash::memsim {

namespace {

[[nodiscard]] constexpr bool isPowerOfTwo(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

[[nodiscard]] std::uint32_t log2Exact(std::uint64_t v) {
  std::uint32_t shift = 0;
  while ((1ULL << shift) < v) ++shift;
  return shift;
}

}  // namespace

CacheLevel::CacheLevel(const CacheGeometry& geometry, std::uint32_t blockSize)
    : blockSize_(blockSize), assoc_(geometry.associativity) {
  EC_CHECK(geometry.sizeBytes > 0);
  EC_CHECK(assoc_ > 0);
  EC_CHECK_MSG(isPowerOfTwo(blockSize_), "block size must be a power of two");
  blockShift_ = log2Exact(blockSize_);
  const std::uint64_t numLines = geometry.sizeBytes / blockSize_;
  EC_CHECK_MSG(numLines * blockSize_ == geometry.sizeBytes,
               "cache size must be a multiple of the block size");
  EC_CHECK_MSG(numLines % assoc_ == 0, "lines must divide evenly into sets");
  EC_CHECK_MSG(numLines <= std::numeric_limits<std::uint32_t>::max(),
               "line count must fit a 32-bit index");
  sets_ = numLines / assoc_;
  setsPow2_ = isPowerOfTwo(sets_);
  setMask_ = setsPow2_ ? sets_ - 1 : 0;
  lines_.resize(numLines);
  storage_.resize(numLines * blockSize_, 0);
}

std::optional<std::uint32_t> CacheLevel::find(std::uint64_t blockAddr) const {
  if (mruValid_ && mruBlock_ == blockAddr) return mruLine_;
  const std::uint64_t set = setOf(blockAddr);
  const std::uint32_t base = lineIndex(set, 0);
  for (std::uint32_t way = 0; way < assoc_; ++way) {
    const Line& line = lines_[base + way];
    if (line.valid && line.blockAddr == blockAddr) {
      mruBlock_ = blockAddr;
      mruLine_ = base + way;
      mruValid_ = true;
      return base + way;
    }
  }
  return std::nullopt;
}

void CacheLevel::noteRemoved(const Line& line) {
  --validCount_;
  if (line.dirty) {
    --dirtyCount_;
    if (dirtyIndex_ != nullptr) dirtyIndex_->remove(line.blockAddr, levelId_);
  }
  if (mruValid_ && mruBlock_ == line.blockAddr) mruValid_ = false;
}

CacheLevel::InsertResult CacheLevel::insert(std::uint64_t blockAddr,
                                            Evicted& victim) {
  EC_DCHECK_MSG(!find(blockAddr).has_value(), "block already resident");
  const std::uint64_t set = setOf(blockAddr);
  const std::uint32_t base = lineIndex(set, 0);

  // Prefer an invalid way; otherwise evict LRU.
  std::uint32_t victimWay = 0;
  std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
  bool foundInvalid = false;
  for (std::uint32_t way = 0; way < assoc_; ++way) {
    const Line& line = lines_[base + way];
    if (!line.valid) {
      victimWay = way;
      foundInvalid = true;
      break;
    }
    if (line.lastUse < oldest) {
      oldest = line.lastUse;
      victimWay = way;
    }
  }

  const std::uint32_t idx = base + victimWay;
  Line& line = lines_[idx];
  InsertResult result{idx, !foundInvalid};
  if (result.evicted) {
    victim.blockAddr = line.blockAddr;
    victim.dirty = line.dirty;
    const auto src = data(idx);
    victim.data.assign(src.begin(), src.end());
    noteRemoved(line);
  }

  line.blockAddr = blockAddr;
  line.valid = true;
  line.dirty = false;
  line.lastUse = ++tick_;
  ++validCount_;
  mruBlock_ = blockAddr;
  mruLine_ = idx;
  mruValid_ = true;
  return result;
}

std::optional<CacheLevel::Evicted> CacheLevel::insert(std::uint64_t blockAddr) {
  EC_CHECK_MSG(!find(blockAddr).has_value(), "block already resident");
  Evicted victim;
  const InsertResult result = insert(blockAddr, victim);
  // The hot-path insert leaves stale bytes for the caller to overwrite; this
  // wrapper preserves the historical zero-initialised contract.
  std::memset(storage_.data() + static_cast<std::size_t>(result.line) * blockSize_,
              0, blockSize_);
  if (!result.evicted) return std::nullopt;
  return victim;
}

void CacheLevel::extractInto(std::uint64_t blockAddr, Evicted& out) {
  const auto idx = find(blockAddr);
  EC_CHECK_MSG(idx.has_value(), "extract of non-resident block");
  Line& line = lines_[*idx];
  out.blockAddr = line.blockAddr;
  out.dirty = line.dirty;
  const auto src = data(*idx);
  out.data.assign(src.begin(), src.end());
  noteRemoved(line);
  line.valid = false;
  line.dirty = false;
}

CacheLevel::Evicted CacheLevel::extract(std::uint64_t blockAddr) {
  Evicted out;
  extractInto(blockAddr, out);
  return out;
}

void CacheLevel::invalidate(std::uint64_t blockAddr) {
  if (const auto idx = find(blockAddr)) {
    invalidateLine(*idx);
  }
}

void CacheLevel::invalidateLine(std::uint32_t line) {
  Line& l = lines_[line];
  EC_DCHECK_MSG(l.valid, "invalidateLine of an invalid line");
  noteRemoved(l);
  l.valid = false;
  l.dirty = false;
}

void CacheLevel::invalidateAll() {
  if (dirtyIndex_ != nullptr && dirtyCount_ > 0) {
    for (const Line& line : lines_) {
      if (line.valid && line.dirty) dirtyIndex_->remove(line.blockAddr, levelId_);
    }
  }
  for (Line& line : lines_) {
    line.valid = false;
    line.dirty = false;
  }
  validCount_ = 0;
  dirtyCount_ = 0;
  mruValid_ = false;
}

}  // namespace easycrash::memsim
