#include "easycrash/memsim/cache_level.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "easycrash/common/check.hpp"

namespace easycrash::memsim {

CacheLevel::CacheLevel(const CacheGeometry& geometry, std::uint32_t blockSize)
    : blockSize_(blockSize), assoc_(geometry.associativity) {
  EC_CHECK(geometry.sizeBytes > 0);
  EC_CHECK(assoc_ > 0);
  const std::uint64_t numLines = geometry.sizeBytes / blockSize_;
  EC_CHECK_MSG(numLines * blockSize_ == geometry.sizeBytes,
               "cache size must be a multiple of the block size");
  EC_CHECK_MSG(numLines % assoc_ == 0, "lines must divide evenly into sets");
  sets_ = numLines / assoc_;
  lines_.resize(numLines);
  storage_.resize(numLines * blockSize_, 0);
}

std::uint64_t CacheLevel::setOf(std::uint64_t blockAddr) const {
  return (blockAddr / blockSize_) % sets_;
}

std::uint32_t CacheLevel::lineIndex(std::uint64_t set, std::uint32_t way) const {
  return static_cast<std::uint32_t>(set * assoc_ + way);
}

std::optional<std::uint32_t> CacheLevel::find(std::uint64_t blockAddr) const {
  const std::uint64_t set = setOf(blockAddr);
  for (std::uint32_t way = 0; way < assoc_; ++way) {
    const Line& line = lines_[lineIndex(set, way)];
    if (line.valid && line.blockAddr == blockAddr) return lineIndex(set, way);
  }
  return std::nullopt;
}

std::optional<CacheLevel::Evicted> CacheLevel::insert(std::uint64_t blockAddr) {
  EC_CHECK_MSG(!find(blockAddr).has_value(), "block already resident");
  const std::uint64_t set = setOf(blockAddr);

  // Prefer an invalid way; otherwise evict LRU.
  std::uint32_t victimWay = 0;
  std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
  bool foundInvalid = false;
  for (std::uint32_t way = 0; way < assoc_; ++way) {
    const Line& line = lines_[lineIndex(set, way)];
    if (!line.valid) {
      victimWay = way;
      foundInvalid = true;
      break;
    }
    if (line.lastUse < oldest) {
      oldest = line.lastUse;
      victimWay = way;
    }
  }

  const std::uint32_t idx = lineIndex(set, victimWay);
  Line& line = lines_[idx];
  std::optional<Evicted> evicted;
  if (!foundInvalid) {
    Evicted ev;
    ev.blockAddr = line.blockAddr;
    ev.dirty = line.dirty;
    const auto src = data(idx);
    ev.data.assign(src.begin(), src.end());
    evicted = std::move(ev);
  }

  line.blockAddr = blockAddr;
  line.valid = true;
  line.dirty = false;
  line.lastUse = ++tick_;
  std::memset(storage_.data() + static_cast<std::size_t>(idx) * blockSize_, 0,
              blockSize_);
  return evicted;
}

CacheLevel::Evicted CacheLevel::extract(std::uint64_t blockAddr) {
  const auto idx = find(blockAddr);
  EC_CHECK_MSG(idx.has_value(), "extract of non-resident block");
  Line& line = lines_[*idx];
  Evicted ev;
  ev.blockAddr = line.blockAddr;
  ev.dirty = line.dirty;
  const auto src = data(*idx);
  ev.data.assign(src.begin(), src.end());
  line.valid = false;
  line.dirty = false;
  return ev;
}

void CacheLevel::invalidate(std::uint64_t blockAddr) {
  if (const auto idx = find(blockAddr)) {
    lines_[*idx].valid = false;
    lines_[*idx].dirty = false;
  }
}

void CacheLevel::invalidateAll() {
  for (Line& line : lines_) {
    line.valid = false;
    line.dirty = false;
  }
}

std::span<std::uint8_t> CacheLevel::data(std::uint32_t line) {
  return {storage_.data() + static_cast<std::size_t>(line) * blockSize_, blockSize_};
}

std::span<const std::uint8_t> CacheLevel::data(std::uint32_t line) const {
  return {storage_.data() + static_cast<std::size_t>(line) * blockSize_, blockSize_};
}

bool CacheLevel::dirty(std::uint32_t line) const { return lines_[line].dirty; }

void CacheLevel::setDirty(std::uint32_t line, bool value) {
  lines_[line].dirty = value;
}

std::uint64_t CacheLevel::blockAddr(std::uint32_t line) const {
  return lines_[line].blockAddr;
}

void CacheLevel::touch(std::uint32_t line) { lines_[line].lastUse = ++tick_; }

void CacheLevel::forEachValid(
    const std::function<void(std::uint64_t, bool, std::span<const std::uint8_t>)>& fn)
    const {
  for (std::uint32_t i = 0; i < lines_.size(); ++i) {
    if (lines_[i].valid) fn(lines_[i].blockAddr, lines_[i].dirty, data(i));
  }
}

std::uint64_t CacheLevel::validLines() const {
  return static_cast<std::uint64_t>(
      std::count_if(lines_.begin(), lines_.end(), [](const Line& l) { return l.valid; }));
}

std::uint64_t CacheLevel::dirtyLines() const {
  return static_cast<std::uint64_t>(std::count_if(
      lines_.begin(), lines_.end(), [](const Line& l) { return l.valid && l.dirty; }));
}

}  // namespace easycrash::memsim
