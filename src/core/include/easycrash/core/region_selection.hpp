// Critical-code-region selection (paper §5.2).
//
// Formulation: pick persist points (regions or the main-loop end) and flush
// frequencies so that the total estimated runtime overhead stays below t_s
// (Equation 3) while application recomputability is maximised; EasyCrash is
// worth enabling only when the predicted Y' exceeds the system-efficiency
// threshold tau (Equation 4). Recomputability under a reduced frequency x
// follows the paper's linear interpolation (Equation 5), and the choice
// problem is the paper's 0/1 (here: multi-choice) knapsack, solved by
// dynamic programming on a discretised weight grid.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "easycrash/runtime/persistence_plan.hpp"

namespace easycrash::core {

struct RegionSelectionConfig {
  double ts = 0.35;  ///< runtime-overhead budget (the paper uses 3% at Class-C
                     ///< scale; scaled-down problems compress work-per-persist
                     ///< roughly tenfold, see DESIGN.md — benches sweep this
                     ///< knob, bench_ablation_ts quantifies the sensitivity)
  double tau = 0.0;  ///< recomputability threshold from the system model
  std::vector<std::uint32_t> frequencies = {1, 2, 4, 8, 16, 32, 64};
  double weightResolution = 1.0e-4;  ///< knapsack weight grid (0.01%)
};

/// Per-persist-point model inputs, all derived from two crash campaigns and
/// the golden run (paper §5.2 "How to use the algorithm").
struct RegionModelInput {
  runtime::PointId point = runtime::kMainLoopEnd;
  double timeShare = 0.0;           ///< a_k
  double baseRecomputability = 0;   ///< c_k (campaign without persistence)
  double maxRecomputability = 0;    ///< c_k^max (campaign persisting everywhere)
  std::uint64_t iterationEnds = 0;  ///< loop iterations per execution
};

struct RegionChoice {
  runtime::PointId point = runtime::kMainLoopEnd;
  std::uint32_t everyN = 1;
  double costFraction = 0.0;   ///< l_k at this frequency
  double predictedCk = 0.0;    ///< c_k^x from Equation 5
  double gain = 0.0;           ///< a_k * (c_k^x - c_k)
};

struct RegionSelectionResult {
  std::vector<RegionChoice> chosen;
  double baseY = 0.0;       ///< Equation 1 over the inputs
  double predictedY = 0.0;  ///< Equation 2 with the chosen plan
  double totalCostFraction = 0.0;
  bool meetsTau = false;    ///< Equation 4
};

/// Solve the selection problem. `flushOncePerExecNs(point)` must give the
/// estimated cost of one persistence operation at that point, and
/// `baseExecNs` the golden execution time, both under the same time model.
[[nodiscard]] RegionSelectionResult selectRegions(
    const std::vector<RegionModelInput>& inputs,
    const std::map<runtime::PointId, double>& flushOnceNs, double baseExecNs,
    const RegionSelectionConfig& config);

/// Estimate c_k^max from a measurement at reduced frequency x by inverting
/// Equation 5 (clamped to [measured, 1]).
[[nodiscard]] double extrapolateMaxRecomputability(double cBase, double cMeasured,
                                                   std::uint32_t measuredEveryN);

}  // namespace easycrash::core
