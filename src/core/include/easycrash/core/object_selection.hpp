// Critical-data-object selection (paper §5.1).
//
// For each candidate data object, correlate its per-crash-test inconsistency
// rate with the recomputation outcome using Spearman's rank correlation. An
// object is critical when the correlation is negative (more inconsistency
// hurts) and statistically significant (p < 0.01).
//
// Degenerate cases the paper does not spell out are handled conservatively:
// when every test has the same outcome (e.g., recomputability ~0 apps) or an
// object's inconsistency rate is constant, correlation is undefined — such
// objects are selected whenever their mean inconsistency is substantial and
// the application is not already recomputing reliably.
#pragma once

#include <string>
#include <vector>

#include "easycrash/crash/campaign.hpp"

namespace easycrash::core {

struct ObjectSelectionCriteria {
  /// Significance cut-off. The paper uses 0.01 with 1000-2000-test
  /// campaigns; the default here is loosened to match this repository's
  /// smaller default campaigns (pass 0.01 with --tests >= 1000).
  double pValueThreshold = 0.05;
  /// Fallback for degenerate correlations: select when the object's mean
  /// inconsistency rate is at least this and recomputability is below
  /// `reliableRecomputability`.
  double fallbackRateThreshold = 0.02;
  double reliableRecomputability = 0.95;
  /// Below this recomputability the outcome vector carries almost no
  /// information (e.g. LU/EP-like apps with ~0 successes): fall back to the
  /// mean-inconsistency rule for every candidate.
  double lowOutcomeThreshold = 0.05;
  /// Objects whose inconsistency rate barely varies across crash tests give
  /// Spearman nothing to rank; below this standard deviation the magnitude
  /// fallback applies (kmeans' centroids are the canonical case).
  double rateVarianceFloor = 0.05;
};

struct ObjectCorrelation {
  runtime::ObjectId id = 0;
  std::string name;
  double rho = 0.0;
  double pValue = 1.0;
  bool degenerate = false;
  double meanInconsistentRate = 0.0;
  bool selected = false;
};

struct ObjectSelectionResult {
  std::vector<ObjectCorrelation> correlations;  ///< one per candidate
  std::vector<runtime::ObjectId> critical;      ///< the selected subset
  std::uint64_t criticalBytes = 0;
  std::uint64_t candidateBytes = 0;
};

/// Step 2 of the EasyCrash workflow: analyse a no-persistence campaign.
[[nodiscard]] ObjectSelectionResult selectCriticalObjects(
    const crash::CampaignResult& campaign,
    const ObjectSelectionCriteria& criteria = {});

}  // namespace easycrash::core
