// The EasyCrash workflow (paper §5.3):
//
//   Step 1  Run a crash-test campaign without persistence, collecting
//           per-object inconsistency rates and recomputation outcomes.
//   Step 2  Select critical data objects by Spearman correlation.
//   Step 3  Run a second campaign that persists the critical objects at
//           every persist point (bounded frequency, Equation-5 extrapolated
//           to c_k^max), then solve the knapsack for regions/frequencies.
//   Step 4  Production: run with the selected plan (validated here with a
//           third campaign when requested).
#pragma once

#include <cstdint>
#include <optional>

#include "easycrash/core/object_selection.hpp"
#include "easycrash/core/region_selection.hpp"
#include "easycrash/crash/campaign.hpp"

namespace easycrash::core {

struct WorkflowConfig {
  int testsPerCampaign = 150;
  std::uint64_t seed = 1;
  memsim::CacheConfig cache = memsim::CacheConfig::scaledDefault();
  ObjectSelectionCriteria objectCriteria;
  RegionSelectionConfig regionConfig;
  /// Bound on flushes per region activation in the step-3 campaign (keeps
  /// simulation cost sane; Equation 5 extrapolates back to c^max).
  int maxFlushesPerActivation = 2;
  /// Run a final validation campaign under the chosen plan (step 4).
  bool validateFinal = true;
  /// Monitoring mode applied to every campaign the workflow runs (sampled:
  /// region-sampled pre-pass + demotion routing for large footprints).
  crash::MonitorConfig monitor;
  /// Fault tolerance applied to every campaign the workflow runs. The
  /// journal/resume paths are used as a base: each campaign phase appends
  /// its own suffix (`<path>.baseline`, `.everywhere`, `.validation`), and
  /// resume skips phases whose journal file does not exist yet.
  crash::ResilienceConfig resilience;
};

struct WorkflowResult {
  crash::CampaignResult baseline;          ///< step 1
  ObjectSelectionResult objects;           ///< step 2
  runtime::PersistencePlan everywherePlan;  ///< step 3 campaign's plan
  crash::CampaignResult everywhere;        ///< step 3 measurement campaign
  RegionSelectionResult regions;           ///< step 3 decision
  runtime::PersistencePlan plan;           ///< the production plan
  std::optional<crash::CampaignResult> validation;  ///< step 4
  /// A stop request (SIGINT/SIGTERM) landed mid-pipeline: later phases were
  /// skipped and the populated results may themselves be partial.
  bool interrupted = false;

  [[nodiscard]] double baselineRecomputability() const {
    return baseline.recomputability();
  }
  [[nodiscard]] double finalRecomputability() const {
    return validation ? validation->recomputability() : regions.predictedY;
  }
};

/// Execute the full workflow for one application.
[[nodiscard]] WorkflowResult runEasyCrashWorkflow(const runtime::AppFactory& factory,
                                                  const WorkflowConfig& config = {});

/// Build the step-3 "persist everywhere" plan for an application: the given
/// objects at every region and the main-loop end, with per-region frequency
/// bounded to `maxFlushesPerActivation` flushes per activation.
[[nodiscard]] runtime::PersistencePlan buildEverywherePlan(
    const crash::GoldenStats& golden, const std::vector<runtime::ObjectId>& objects,
    int maxFlushesPerActivation);

}  // namespace easycrash::core
