#include "easycrash/core/workflow.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "easycrash/common/check.hpp"
#include "easycrash/crash/resilience.hpp"
#include "easycrash/perfmodel/time_model.hpp"
#include "easycrash/telemetry/metrics.hpp"
#include "easycrash/telemetry/phase_span.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace easycrash::core {

using crash::CampaignConfig;
using crash::CampaignRunner;
using runtime::kMainLoopEnd;
using runtime::PersistDirective;
using runtime::PersistencePlan;
using runtime::PointId;

namespace {

/// One workflow step as a telemetry::PhaseSpan over the workflow.phase_us
/// histogram, so a trace shows where the four-step pipeline (paper §5.3)
/// spends its time.
class PhaseSpan : public telemetry::PhaseSpan {
 public:
  explicit PhaseSpan(const char* name)
      : telemetry::PhaseSpan(
            name, telemetry::MetricsRegistry::instance().histogram(
                      "workflow.phase_us",
                      telemetry::Histogram::exponentialBounds(100.0, 4.0, 14))) {}
};

/// The workflow-level resilience config specialised for one campaign phase:
/// journal/resume base paths get a per-phase suffix, and resume is only
/// attempted when the phase's journal already exists (earlier interruptions
/// never journal later phases).
crash::ResilienceConfig phaseResilience(const crash::ResilienceConfig& base,
                                        const char* phase) {
  crash::ResilienceConfig out = base;
  if (!out.journalPath.empty()) out.journalPath += std::string(".") + phase;
  if (!out.resumePath.empty()) {
    out.resumePath += std::string(".") + phase;
    if (!std::ifstream(out.resumePath).good()) out.resumePath.clear();
  }
  return out;
}

}  // namespace

PersistencePlan buildEverywherePlan(const crash::GoldenStats& golden,
                                    const std::vector<runtime::ObjectId>& objects,
                                    int maxFlushesPerActivation) {
  EC_CHECK(maxFlushesPerActivation >= 1);
  PersistencePlan plan;
  const auto mainIters = static_cast<double>(
      golden.regionIterationEnds.count(kMainLoopEnd)
          ? golden.regionIterationEnds.at(kMainLoopEnd)
          : 1);
  for (const auto& [point, ends] : golden.regionIterationEnds) {
    PersistDirective directive;
    directive.objects = objects;
    if (point == kMainLoopEnd) {
      directive.everyN = 1;
    } else {
      const double perActivation = static_cast<double>(ends) / std::max(1.0, mainIters);
      directive.everyN = static_cast<std::uint32_t>(std::max(
          1.0, std::ceil(perActivation / maxFlushesPerActivation)));
    }
    plan.points[point] = std::move(directive);
  }
  return plan;
}

WorkflowResult runEasyCrashWorkflow(const runtime::AppFactory& factory,
                                    const WorkflowConfig& config) {
  WorkflowResult result;

  // ---- Step 1: baseline campaign (no persistence). ------------------------
  CampaignConfig base;
  base.numTests = config.testsPerCampaign;
  base.seed = config.seed;
  base.cache = config.cache;
  base.monitor = config.monitor;
  // The Equation-5 time model below consumes golden MemEvents from the
  // baseline and persist-everywhere campaigns, so even under sampled
  // monitoring the workflow keeps its golden runs fully cache-simulated.
  // Crashing runs still benefit from the demotion routing.
  base.monitor.trackedGolden = true;
  base.resilience = config.resilience;
  {
    PhaseSpan phase("baseline_campaign");
    CampaignConfig baseline = base;
    baseline.resilience = phaseResilience(config.resilience, "baseline");
    result.baseline = CampaignRunner(factory, baseline).run();
  }
  if (result.baseline.interrupted || crash::stopRequested()) {
    result.interrupted = true;
    return result;
  }

  // ---- Step 2: critical data objects. --------------------------------------
  {
    PhaseSpan phase("object_selection");
    result.objects = selectCriticalObjects(result.baseline, config.objectCriteria);
  }
  if (result.objects.critical.empty()) {
    // Nothing worth persisting: production plan stays empty (the paper's
    // "EasyCrash cannot bring benefit" case, e.g. EP).
    return result;
  }

  // ---- Step 3: campaign persisting everywhere, then the knapsack. ----------
  result.everywherePlan = buildEverywherePlan(
      result.baseline.golden, result.objects.critical, config.maxFlushesPerActivation);
  CampaignConfig everywhere = base;
  everywhere.seed = config.seed + 1;
  everywhere.plan = result.everywherePlan;
  everywhere.resilience = phaseResilience(config.resilience, "everywhere");
  {
    PhaseSpan phase("everywhere_campaign");
    result.everywhere = CampaignRunner(factory, everywhere).run();
  }
  if (result.everywhere.interrupted || crash::stopRequested()) {
    result.interrupted = true;
    return result;
  }

  // Model inputs: a_k and c_k from the baseline, c_k^max extrapolated from
  // the persist-everywhere campaign via Equation 5.
  const auto cBase = result.baseline.regionRecomputability();
  const auto cMeasured = result.everywhere.regionRecomputability();
  std::vector<RegionModelInput> inputs;
  for (const auto& [point, share] : result.baseline.golden.regionTimeShare) {
    RegionModelInput input;
    input.point = point;
    input.timeShare = share;
    input.baseRecomputability = cBase.count(point) ? cBase.at(point) : 0.0;
    const double measured = cMeasured.count(point)
                                ? cMeasured.at(point)
                                : result.everywhere.recomputability();
    const auto planIt = result.everywherePlan.points.find(point);
    const std::uint32_t usedEveryN =
        planIt != result.everywherePlan.points.end() ? planIt->second.everyN : 1;
    input.maxRecomputability = extrapolateMaxRecomputability(
        input.baseRecomputability, measured, usedEveryN);
    input.iterationEnds = result.baseline.golden.regionIterationEnds.count(point)
                              ? result.baseline.golden.regionIterationEnds.at(point)
                              : 0;
    if (input.iterationEnds > 0) inputs.push_back(input);
  }
  // The main-loop end is also a persist point even when all accesses are
  // attributed to inner regions.
  if (result.baseline.golden.regionTimeShare.count(kMainLoopEnd) == 0 &&
      result.baseline.golden.regionIterationEnds.count(kMainLoopEnd)) {
    RegionModelInput input;
    input.point = kMainLoopEnd;
    input.timeShare = 0.0;
    input.baseRecomputability = result.baseline.recomputability();
    const double measured = result.everywhere.recomputability();
    input.maxRecomputability = std::clamp(measured, input.baseRecomputability, 1.0);
    input.iterationEnds = result.baseline.golden.regionIterationEnds.at(kMainLoopEnd);
    inputs.push_back(input);
  }

  // Flush-cost estimate per persistence operation at each point, measured
  // from the persist-everywhere campaign's actual flush mix (dirty vs. clean
  // vs. non-resident) under the DRAM time model.
  const perfmodel::TimeModel model(perfmodel::NvmProfile::dram());
  const double baseExecNs = model.executionTimeNs(result.baseline.golden.events);
  const double persistNs = model.persistenceTimeNs(result.everywhere.golden.events);
  const double opsTotal =
      std::max<std::uint64_t>(1, result.everywhere.golden.persistenceOps);
  const double flushOnce = persistNs / static_cast<double>(opsTotal);
  std::map<PointId, double> flushOnceNs;
  for (const auto& input : inputs) flushOnceNs[input.point] = flushOnce;

  {
    PhaseSpan phase("region_selection");
    result.regions = selectRegions(inputs, flushOnceNs, baseExecNs, config.regionConfig);
  }

  // ---- Production plan. -----------------------------------------------------
  for (const auto& choice : result.regions.chosen) {
    PersistDirective directive;
    directive.objects = result.objects.critical;
    directive.everyN = choice.everyN;
    result.plan.points[choice.point] = std::move(directive);
  }

  // The paper's Equation-4 gate: when the predicted recomputability cannot
  // clear tau, EasyCrash is not enabled for this application.
  if (!result.regions.meetsTau) {
    result.plan = PersistencePlan{};
    return result;
  }

  // ---- Step 4: validation campaign under the production plan. ---------------
  if (config.validateFinal && !result.plan.empty()) {
    PhaseSpan phase("validation_campaign");
    CampaignConfig validation = base;
    validation.seed = config.seed + 2;
    validation.plan = result.plan;
    validation.resilience = phaseResilience(config.resilience, "validation");
    result.validation = CampaignRunner(factory, validation).run();
    result.interrupted = result.validation->interrupted;
  }
  return result;
}

}  // namespace easycrash::core
