#include "easycrash/core/object_selection.hpp"

#include <cmath>

#include "easycrash/common/check.hpp"
#include "easycrash/stats/spearman.hpp"

namespace easycrash::core {

ObjectSelectionResult selectCriticalObjects(const crash::CampaignResult& campaign,
                                            const ObjectSelectionCriteria& criteria) {
  EC_CHECK_MSG(!campaign.tests.empty(), "object selection needs crash tests");
  ObjectSelectionResult result;
  const double recomputability = campaign.recomputability();

  // Outcome vector shared by all objects: 1 = successful recomputation (S1).
  std::vector<double> outcome;
  outcome.reserve(campaign.tests.size());
  for (const auto& test : campaign.tests) {
    outcome.push_back(test.response == crash::Response::S1 ? 1.0 : 0.0);
  }

  for (const auto& object : campaign.golden.objects) {
    if (!object.candidate) continue;
    result.candidateBytes += object.bytes;

    std::vector<double> rates;
    rates.reserve(campaign.tests.size());
    double meanRate = 0.0;
    for (const auto& test : campaign.tests) {
      const auto it = test.inconsistentRate.find(object.id);
      const double rate = it == test.inconsistentRate.end() ? 0.0 : it->second;
      rates.push_back(rate);
      meanRate += rate;
    }
    meanRate /= static_cast<double>(campaign.tests.size());

    ObjectCorrelation corr;
    corr.id = object.id;
    corr.name = object.name;
    corr.meanInconsistentRate = meanRate;

    const auto spearman = stats::spearman(rates, outcome);
    corr.rho = spearman.rho;
    corr.pValue = spearman.pValue;
    corr.degenerate = spearman.degenerate;

    const bool outcomeUninformative =
        recomputability <= criteria.lowOutcomeThreshold;
    // A near-constant inconsistency rate carries no rank information even
    // when it is large (e.g. kmeans' centroids are ~fully inconsistent at
    // every crash): when the correlation itself is inconclusive, fall back
    // to the magnitude rule for such objects. A significant negative
    // correlation always wins.
    const bool rateUninformative =
        stats::sampleStddev(rates) < criteria.rateVarianceFloor;
    const bool significantlyCritical =
        !corr.degenerate && corr.rho < 0.0 &&
        corr.pValue < criteria.pValueThreshold;
    const bool fallbackApplies =
        corr.degenerate || outcomeUninformative || rateUninformative;
    if (significantlyCritical) {
      corr.selected = true;
    } else if (fallbackApplies) {
      corr.selected = meanRate >= criteria.fallbackRateThreshold &&
                      recomputability < criteria.reliableRecomputability;
    } else {
      corr.selected = false;
    }
    if (corr.selected) {
      result.critical.push_back(object.id);
      result.criticalBytes += object.bytes;
    }
    result.correlations.push_back(corr);
  }
  return result;
}

}  // namespace easycrash::core
