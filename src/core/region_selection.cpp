#include "easycrash/core/region_selection.hpp"

#include <algorithm>
#include <cmath>

#include "easycrash/common/check.hpp"

namespace easycrash::core {

double extrapolateMaxRecomputability(double cBase, double cMeasured,
                                     std::uint32_t measuredEveryN) {
  // Equation 5: c^x = (c^max - c) / x + c  =>  c^max = c + x (c^x - c).
  const double extrapolated =
      cBase + static_cast<double>(measuredEveryN) * (cMeasured - cBase);
  return std::clamp(extrapolated, cMeasured, 1.0);
}

RegionSelectionResult selectRegions(
    const std::vector<RegionModelInput>& inputs,
    const std::map<runtime::PointId, double>& flushOnceNs, double baseExecNs,
    const RegionSelectionConfig& config) {
  EC_CHECK(baseExecNs > 0.0);
  EC_CHECK(config.ts > 0.0);
  EC_CHECK(!config.frequencies.empty());

  RegionSelectionResult result;
  for (const auto& input : inputs) {
    result.baseY += input.timeShare * input.baseRecomputability;
  }

  // Build the variant groups (one group per persist point; at most one
  // frequency may be chosen per group).
  struct Variant {
    RegionChoice choice;
    int weight = 0;  // discretised cost
  };
  const int capacity =
      static_cast<int>(std::ceil(config.ts / config.weightResolution));
  std::vector<std::vector<Variant>> groups;
  for (const auto& input : inputs) {
    const auto costIt = flushOnceNs.find(input.point);
    if (costIt == flushOnceNs.end() || input.iterationEnds == 0) continue;
    std::vector<Variant> group;
    for (std::uint32_t x : config.frequencies) {
      const double flushes =
          static_cast<double>(input.iterationEnds) / static_cast<double>(x);
      const double costFraction = flushes * costIt->second / baseExecNs;
      if (costFraction > config.ts) continue;  // Equation 3 per variant
      const double cx = (input.maxRecomputability - input.baseRecomputability) /
                            static_cast<double>(x) +
                        input.baseRecomputability;
      Variant v;
      v.choice.point = input.point;
      v.choice.everyN = x;
      v.choice.costFraction = costFraction;
      v.choice.predictedCk = cx;
      v.choice.gain = std::max(0.0, input.timeShare *
                                        (cx - input.baseRecomputability));
      v.weight = std::max(
          1, static_cast<int>(std::ceil(costFraction / config.weightResolution)));
      if (v.weight <= capacity) group.push_back(v);
    }
    if (!group.empty()) groups.push_back(std::move(group));
  }

  // Multi-choice knapsack DP: dp[w] = best total gain with weight <= w.
  constexpr double kNegative = -1.0;
  std::vector<double> dp(static_cast<std::size_t>(capacity) + 1, 0.0);
  // take[g][w] = index of the variant chosen for group g at weight w, or -1.
  std::vector<std::vector<int>> take(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    std::vector<double> next = dp;
    take[g].assign(static_cast<std::size_t>(capacity) + 1, -1);
    for (int w = 0; w <= capacity; ++w) {
      for (std::size_t v = 0; v < groups[g].size(); ++v) {
        const Variant& variant = groups[g][v];
        if (variant.weight > w) continue;
        const double candidate = dp[w - variant.weight] + variant.choice.gain;
        if (candidate > next[w] + 1e-15) {
          next[w] = candidate;
          take[g][w] = static_cast<int>(v);
        }
      }
    }
    // dp stays monotone in w by induction (taking nothing carries dp[w]
    // forward), so no explicit monotonicity fix is needed.
    dp = std::move(next);
    (void)kNegative;
  }

  // Backtrack the choices.
  {
    int w = capacity;
    for (std::size_t g = groups.size(); g-- > 0;) {
      const int v = take[g][w];
      if (v >= 0) {
        result.chosen.push_back(groups[g][static_cast<std::size_t>(v)].choice);
        w -= groups[g][static_cast<std::size_t>(v)].weight;
      }
    }
    std::reverse(result.chosen.begin(), result.chosen.end());
  }

  result.predictedY = result.baseY;
  for (const auto& choice : result.chosen) {
    result.predictedY += choice.gain;
    result.totalCostFraction += choice.costFraction;
  }
  result.meetsTau = result.predictedY > config.tau;
  return result;
}

}  // namespace easycrash::core
