// Deterministic pseudo-random number generation for crash-test campaigns.
//
// All randomness in the repository flows through Rng so that every campaign,
// crash point, and workload is reproducible from a single master seed. The
// generator is xoshiro256**, seeded through splitmix64 (the recommended
// seeding procedure from the xoshiro authors).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace easycrash {

/// splitmix64 step; used to expand a single 64-bit seed into generator state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x243f6a8885a308d3ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Derive an independent child generator (for per-test streams).
  [[nodiscard]] Rng fork() noexcept { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace easycrash
