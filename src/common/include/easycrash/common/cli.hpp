// Minimal command-line option parsing for bench and example binaries.
//
// Supports "--name value" and "--name=value" forms plus boolean flags.
// Unknown options raise an error listing the registered options, so every
// bench binary gets a usable --help for free.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace easycrash {

class CliParser {
 public:
  explicit CliParser(std::string description);

  /// Register an option with a default value and help text.
  void addString(const std::string& name, std::string defaultValue, std::string help);
  void addInt(const std::string& name, std::int64_t defaultValue, std::string help);
  void addDouble(const std::string& name, double defaultValue, std::string help);
  void addFlag(const std::string& name, std::string help);
  /// Repeatable option: every occurrence appends to the value list.
  void addStringList(const std::string& name, std::string help);

  /// Parse argv. Returns false (after printing usage) if --help was given.
  /// Throws std::runtime_error on unknown options or malformed values.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] const std::string& getString(const std::string& name) const;
  [[nodiscard]] std::int64_t getInt(const std::string& name) const;
  [[nodiscard]] double getDouble(const std::string& name) const;
  [[nodiscard]] bool getFlag(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& getStringList(
      const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { String, Int, Double, Flag, List };
  struct Option {
    Kind kind;
    std::string value;  // textual form; flags use "0"/"1"
    std::string defaultValue;
    std::string help;
    std::vector<std::string> values;  // Kind::List only
  };
  const Option& find(const std::string& name, Kind kind) const;

  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace easycrash
