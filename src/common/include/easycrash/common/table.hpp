// Plain-text table printer used by the bench binaries to print paper tables
// and figure data series in aligned, human-readable form, plus CSV export.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace easycrash {

/// A simple column-aligned table. Cells are strings; helpers format numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Start a new row. Subsequent cell() calls append to it.
  Table& row();
  Table& cell(std::string value);
  Table& cell(double value, int precision = 3);
  Table& cell(long long value);
  Table& cell(unsigned long long value);
  Table& cellPercent(double fraction, int precision = 1);

  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }

  /// Render with unicode-free ASCII rules, aligned columns.
  void print(std::ostream& os, const std::string& title = "") const;
  /// Render as CSV (RFC-4180-ish; quotes cells containing commas).
  void printCsv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a byte count as a human-readable string ("3.4GB", "264MB", "80B").
[[nodiscard]] std::string formatBytes(std::uint64_t bytes);

/// Format a double with fixed precision.
[[nodiscard]] std::string formatDouble(double value, int precision = 3);

}  // namespace easycrash
