// Lightweight precondition / invariant checking.
//
// EC_CHECK is always on (simulator correctness depends on it); failures throw
// std::logic_error so crash-test campaigns can distinguish simulator bugs from
// simulated application failures (which use their own exception types).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace easycrash {

[[noreturn]] inline void checkFailed(const char* expr, const char* file, int line,
                                     const std::string& message) {
  std::ostringstream os;
  os << "EC_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw std::logic_error(os.str());
}

}  // namespace easycrash

#define EC_CHECK(expr)                                                   \
  do {                                                                   \
    if (!(expr)) ::easycrash::checkFailed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define EC_CHECK_MSG(expr, msg)                                             \
  do {                                                                      \
    if (!(expr)) ::easycrash::checkFailed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

// Debug-only variants for checks on hot paths (e.g. counter monotonicity in
// MemEvents::delta): active in Debug builds, compiled out under NDEBUG.
#ifndef NDEBUG
#define EC_DCHECK(expr) EC_CHECK(expr)
#define EC_DCHECK_MSG(expr, msg) EC_CHECK_MSG(expr, msg)
#else
#define EC_DCHECK(expr) static_cast<void>(0)
#define EC_DCHECK_MSG(expr, msg) static_cast<void>(0)
#endif
