#include "easycrash/common/cli.hpp"

#include <iostream>
#include <sstream>
#include <stdexcept>

#include "easycrash/common/check.hpp"

namespace easycrash {

CliParser::CliParser(std::string description) : description_(std::move(description)) {}

void CliParser::addString(const std::string& name, std::string defaultValue,
                          std::string help) {
  EC_CHECK(!options_.contains(name));
  options_[name] = Option{Kind::String, defaultValue, defaultValue, std::move(help)};
  order_.push_back(name);
}

void CliParser::addInt(const std::string& name, std::int64_t defaultValue,
                       std::string help) {
  EC_CHECK(!options_.contains(name));
  const std::string text = std::to_string(defaultValue);
  options_[name] = Option{Kind::Int, text, text, std::move(help)};
  order_.push_back(name);
}

void CliParser::addDouble(const std::string& name, double defaultValue,
                          std::string help) {
  EC_CHECK(!options_.contains(name));
  std::ostringstream os;
  os << defaultValue;
  options_[name] = Option{Kind::Double, os.str(), os.str(), std::move(help)};
  order_.push_back(name);
}

void CliParser::addFlag(const std::string& name, std::string help) {
  EC_CHECK(!options_.contains(name));
  options_[name] = Option{Kind::Flag, "0", "0", std::move(help)};
  order_.push_back(name);
}

void CliParser::addStringList(const std::string& name, std::string help) {
  EC_CHECK(!options_.contains(name));
  options_[name] = Option{Kind::List, "", "", std::move(help), {}};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::runtime_error("unexpected positional argument: " + arg + "\n" + usage());
    }
    arg = arg.substr(2);
    std::string value;
    bool hasValue = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      hasValue = true;
    }
    auto it = options_.find(arg);
    if (it == options_.end()) {
      throw std::runtime_error("unknown option --" + arg + "\n" + usage());
    }
    Option& opt = it->second;
    if (opt.kind == Kind::Flag) {
      opt.value = hasValue ? value : "1";
      continue;
    }
    if (!hasValue) {
      if (i + 1 >= argc) throw std::runtime_error("missing value for --" + arg);
      value = argv[++i];
    }
    if (opt.kind == Kind::List) {
      opt.values.push_back(value);
      continue;
    }
    opt.value = value;
  }
  return true;
}

const CliParser::Option& CliParser::find(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  EC_CHECK_MSG(it != options_.end(), "option not registered: " + name);
  EC_CHECK_MSG(it->second.kind == kind, "option kind mismatch: " + name);
  return it->second;
}

const std::string& CliParser::getString(const std::string& name) const {
  return find(name, Kind::String).value;
}

std::int64_t CliParser::getInt(const std::string& name) const {
  return std::stoll(find(name, Kind::Int).value);
}

double CliParser::getDouble(const std::string& name) const {
  return std::stod(find(name, Kind::Double).value);
}

bool CliParser::getFlag(const std::string& name) const {
  const std::string& v = find(name, Kind::Flag).value;
  return v == "1" || v == "true" || v == "yes";
}

const std::vector<std::string>& CliParser::getStringList(
    const std::string& name) const {
  return find(name, Kind::List).values;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    if (opt.kind != Kind::Flag) os << " <value>";
    os << "\n      " << opt.help;
    if (opt.kind == Kind::List) {
      os << " (repeatable)";
    } else if (opt.kind != Kind::Flag) {
      os << " (default: " << opt.defaultValue << ")";
    }
    os << '\n';
  }
  os << "  --help\n      Show this message\n";
  return os.str();
}

}  // namespace easycrash
