#include "easycrash/common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "easycrash/common/check.hpp"

namespace easycrash {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  EC_CHECK(!header_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  EC_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  EC_CHECK_MSG(rows_.back().size() < header_.size(), "too many cells in row");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(formatDouble(value, precision));
}

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

Table& Table::cell(unsigned long long value) { return cell(std::to_string(value)); }

Table& Table::cellPercent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return cell(os.str());
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  const auto rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << "| " << std::left << std::setw(static_cast<int>(widths[c])) << v << ' ';
    }
    os << "|\n";
  };

  if (!title.empty()) os << title << '\n';
  rule();
  line(header_);
  rule();
  for (const auto& r : rows_) line(r);
  rule();
}

void Table::printCsv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      const std::string& v = cells[c];
      if (v.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : v) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << v;
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string formatBytes(std::uint64_t bytes) {
  constexpr std::uint64_t kKiB = 1024, kMiB = kKiB * 1024, kGiB = kMiB * 1024;
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  if (bytes >= kGiB) {
    os << static_cast<double>(bytes) / static_cast<double>(kGiB) << "GB";
  } else if (bytes >= kMiB) {
    os << static_cast<double>(bytes) / static_cast<double>(kMiB) << "MB";
  } else if (bytes >= kKiB) {
    os << static_cast<double>(bytes) / static_cast<double>(kKiB) << "KB";
  } else {
    os << bytes << 'B';
    return os.str();
  }
  return os.str();
}

std::string formatDouble(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace easycrash
