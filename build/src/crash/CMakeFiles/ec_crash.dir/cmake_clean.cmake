file(REMOVE_RECURSE
  "CMakeFiles/ec_crash.dir/campaign.cpp.o"
  "CMakeFiles/ec_crash.dir/campaign.cpp.o.d"
  "CMakeFiles/ec_crash.dir/plan_spec.cpp.o"
  "CMakeFiles/ec_crash.dir/plan_spec.cpp.o.d"
  "CMakeFiles/ec_crash.dir/report.cpp.o"
  "CMakeFiles/ec_crash.dir/report.cpp.o.d"
  "libec_crash.a"
  "libec_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
