
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crash/campaign.cpp" "src/crash/CMakeFiles/ec_crash.dir/campaign.cpp.o" "gcc" "src/crash/CMakeFiles/ec_crash.dir/campaign.cpp.o.d"
  "/root/repo/src/crash/plan_spec.cpp" "src/crash/CMakeFiles/ec_crash.dir/plan_spec.cpp.o" "gcc" "src/crash/CMakeFiles/ec_crash.dir/plan_spec.cpp.o.d"
  "/root/repo/src/crash/report.cpp" "src/crash/CMakeFiles/ec_crash.dir/report.cpp.o" "gcc" "src/crash/CMakeFiles/ec_crash.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ec_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/ec_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
