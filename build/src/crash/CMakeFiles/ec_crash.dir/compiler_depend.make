# Empty compiler generated dependencies file for ec_crash.
# This may be replaced when dependencies are built.
