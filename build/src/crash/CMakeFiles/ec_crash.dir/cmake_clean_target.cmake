file(REMOVE_RECURSE
  "libec_crash.a"
)
