file(REMOVE_RECURSE
  "libec_runtime.a"
)
