# Empty compiler generated dependencies file for ec_runtime.
# This may be replaced when dependencies are built.
