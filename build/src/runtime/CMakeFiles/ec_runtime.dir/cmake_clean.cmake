file(REMOVE_RECURSE
  "CMakeFiles/ec_runtime.dir/driver.cpp.o"
  "CMakeFiles/ec_runtime.dir/driver.cpp.o.d"
  "CMakeFiles/ec_runtime.dir/runtime.cpp.o"
  "CMakeFiles/ec_runtime.dir/runtime.cpp.o.d"
  "libec_runtime.a"
  "libec_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
