# Empty dependencies file for ec_runtime.
# This may be replaced when dependencies are built.
