file(REMOVE_RECURSE
  "libec_common.a"
)
