file(REMOVE_RECURSE
  "CMakeFiles/ec_common.dir/cli.cpp.o"
  "CMakeFiles/ec_common.dir/cli.cpp.o.d"
  "CMakeFiles/ec_common.dir/table.cpp.o"
  "CMakeFiles/ec_common.dir/table.cpp.o.d"
  "libec_common.a"
  "libec_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
