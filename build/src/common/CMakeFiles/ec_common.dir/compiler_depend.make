# Empty compiler generated dependencies file for ec_common.
# This may be replaced when dependencies are built.
