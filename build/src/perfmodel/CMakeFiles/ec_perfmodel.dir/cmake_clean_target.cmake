file(REMOVE_RECURSE
  "libec_perfmodel.a"
)
