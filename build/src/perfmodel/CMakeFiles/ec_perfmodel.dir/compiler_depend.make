# Empty compiler generated dependencies file for ec_perfmodel.
# This may be replaced when dependencies are built.
