file(REMOVE_RECURSE
  "CMakeFiles/ec_perfmodel.dir/nvm_profile.cpp.o"
  "CMakeFiles/ec_perfmodel.dir/nvm_profile.cpp.o.d"
  "CMakeFiles/ec_perfmodel.dir/time_model.cpp.o"
  "CMakeFiles/ec_perfmodel.dir/time_model.cpp.o.d"
  "CMakeFiles/ec_perfmodel.dir/write_model.cpp.o"
  "CMakeFiles/ec_perfmodel.dir/write_model.cpp.o.d"
  "libec_perfmodel.a"
  "libec_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
