
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/nvm_profile.cpp" "src/perfmodel/CMakeFiles/ec_perfmodel.dir/nvm_profile.cpp.o" "gcc" "src/perfmodel/CMakeFiles/ec_perfmodel.dir/nvm_profile.cpp.o.d"
  "/root/repo/src/perfmodel/time_model.cpp" "src/perfmodel/CMakeFiles/ec_perfmodel.dir/time_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/ec_perfmodel.dir/time_model.cpp.o.d"
  "/root/repo/src/perfmodel/write_model.cpp" "src/perfmodel/CMakeFiles/ec_perfmodel.dir/write_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/ec_perfmodel.dir/write_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/ec_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ec_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
