
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/object_selection.cpp" "src/core/CMakeFiles/ec_core.dir/object_selection.cpp.o" "gcc" "src/core/CMakeFiles/ec_core.dir/object_selection.cpp.o.d"
  "/root/repo/src/core/region_selection.cpp" "src/core/CMakeFiles/ec_core.dir/region_selection.cpp.o" "gcc" "src/core/CMakeFiles/ec_core.dir/region_selection.cpp.o.d"
  "/root/repo/src/core/workflow.cpp" "src/core/CMakeFiles/ec_core.dir/workflow.cpp.o" "gcc" "src/core/CMakeFiles/ec_core.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ec_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/crash/CMakeFiles/ec_crash.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/ec_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ec_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/ec_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
