file(REMOVE_RECURSE
  "CMakeFiles/ec_core.dir/object_selection.cpp.o"
  "CMakeFiles/ec_core.dir/object_selection.cpp.o.d"
  "CMakeFiles/ec_core.dir/region_selection.cpp.o"
  "CMakeFiles/ec_core.dir/region_selection.cpp.o.d"
  "CMakeFiles/ec_core.dir/workflow.cpp.o"
  "CMakeFiles/ec_core.dir/workflow.cpp.o.d"
  "libec_core.a"
  "libec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
