file(REMOVE_RECURSE
  "libec_stats.a"
)
