# Empty dependencies file for ec_sysmodel.
# This may be replaced when dependencies are built.
