file(REMOVE_RECURSE
  "CMakeFiles/ec_sysmodel.dir/efficiency.cpp.o"
  "CMakeFiles/ec_sysmodel.dir/efficiency.cpp.o.d"
  "libec_sysmodel.a"
  "libec_sysmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_sysmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
