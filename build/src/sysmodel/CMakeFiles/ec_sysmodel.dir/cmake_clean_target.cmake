file(REMOVE_RECURSE
  "libec_sysmodel.a"
)
