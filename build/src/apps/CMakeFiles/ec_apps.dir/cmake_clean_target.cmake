file(REMOVE_RECURSE
  "libec_apps.a"
)
