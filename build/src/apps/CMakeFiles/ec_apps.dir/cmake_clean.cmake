file(REMOVE_RECURSE
  "CMakeFiles/ec_apps.dir/botsspar.cpp.o"
  "CMakeFiles/ec_apps.dir/botsspar.cpp.o.d"
  "CMakeFiles/ec_apps.dir/bt.cpp.o"
  "CMakeFiles/ec_apps.dir/bt.cpp.o.d"
  "CMakeFiles/ec_apps.dir/cg.cpp.o"
  "CMakeFiles/ec_apps.dir/cg.cpp.o.d"
  "CMakeFiles/ec_apps.dir/ep.cpp.o"
  "CMakeFiles/ec_apps.dir/ep.cpp.o.d"
  "CMakeFiles/ec_apps.dir/ft.cpp.o"
  "CMakeFiles/ec_apps.dir/ft.cpp.o.d"
  "CMakeFiles/ec_apps.dir/is.cpp.o"
  "CMakeFiles/ec_apps.dir/is.cpp.o.d"
  "CMakeFiles/ec_apps.dir/kmeans.cpp.o"
  "CMakeFiles/ec_apps.dir/kmeans.cpp.o.d"
  "CMakeFiles/ec_apps.dir/lu_app.cpp.o"
  "CMakeFiles/ec_apps.dir/lu_app.cpp.o.d"
  "CMakeFiles/ec_apps.dir/lulesh.cpp.o"
  "CMakeFiles/ec_apps.dir/lulesh.cpp.o.d"
  "CMakeFiles/ec_apps.dir/mg.cpp.o"
  "CMakeFiles/ec_apps.dir/mg.cpp.o.d"
  "CMakeFiles/ec_apps.dir/registry.cpp.o"
  "CMakeFiles/ec_apps.dir/registry.cpp.o.d"
  "CMakeFiles/ec_apps.dir/sp.cpp.o"
  "CMakeFiles/ec_apps.dir/sp.cpp.o.d"
  "libec_apps.a"
  "libec_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
