# Empty compiler generated dependencies file for ec_apps.
# This may be replaced when dependencies are built.
