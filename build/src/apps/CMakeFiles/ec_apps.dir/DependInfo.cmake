
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/botsspar.cpp" "src/apps/CMakeFiles/ec_apps.dir/botsspar.cpp.o" "gcc" "src/apps/CMakeFiles/ec_apps.dir/botsspar.cpp.o.d"
  "/root/repo/src/apps/bt.cpp" "src/apps/CMakeFiles/ec_apps.dir/bt.cpp.o" "gcc" "src/apps/CMakeFiles/ec_apps.dir/bt.cpp.o.d"
  "/root/repo/src/apps/cg.cpp" "src/apps/CMakeFiles/ec_apps.dir/cg.cpp.o" "gcc" "src/apps/CMakeFiles/ec_apps.dir/cg.cpp.o.d"
  "/root/repo/src/apps/ep.cpp" "src/apps/CMakeFiles/ec_apps.dir/ep.cpp.o" "gcc" "src/apps/CMakeFiles/ec_apps.dir/ep.cpp.o.d"
  "/root/repo/src/apps/ft.cpp" "src/apps/CMakeFiles/ec_apps.dir/ft.cpp.o" "gcc" "src/apps/CMakeFiles/ec_apps.dir/ft.cpp.o.d"
  "/root/repo/src/apps/is.cpp" "src/apps/CMakeFiles/ec_apps.dir/is.cpp.o" "gcc" "src/apps/CMakeFiles/ec_apps.dir/is.cpp.o.d"
  "/root/repo/src/apps/kmeans.cpp" "src/apps/CMakeFiles/ec_apps.dir/kmeans.cpp.o" "gcc" "src/apps/CMakeFiles/ec_apps.dir/kmeans.cpp.o.d"
  "/root/repo/src/apps/lu_app.cpp" "src/apps/CMakeFiles/ec_apps.dir/lu_app.cpp.o" "gcc" "src/apps/CMakeFiles/ec_apps.dir/lu_app.cpp.o.d"
  "/root/repo/src/apps/lulesh.cpp" "src/apps/CMakeFiles/ec_apps.dir/lulesh.cpp.o" "gcc" "src/apps/CMakeFiles/ec_apps.dir/lulesh.cpp.o.d"
  "/root/repo/src/apps/mg.cpp" "src/apps/CMakeFiles/ec_apps.dir/mg.cpp.o" "gcc" "src/apps/CMakeFiles/ec_apps.dir/mg.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/ec_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/ec_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/sp.cpp" "src/apps/CMakeFiles/ec_apps.dir/sp.cpp.o" "gcc" "src/apps/CMakeFiles/ec_apps.dir/sp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ec_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/ec_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
