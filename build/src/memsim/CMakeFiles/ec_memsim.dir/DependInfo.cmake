
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/cache_level.cpp" "src/memsim/CMakeFiles/ec_memsim.dir/cache_level.cpp.o" "gcc" "src/memsim/CMakeFiles/ec_memsim.dir/cache_level.cpp.o.d"
  "/root/repo/src/memsim/config.cpp" "src/memsim/CMakeFiles/ec_memsim.dir/config.cpp.o" "gcc" "src/memsim/CMakeFiles/ec_memsim.dir/config.cpp.o.d"
  "/root/repo/src/memsim/hierarchy.cpp" "src/memsim/CMakeFiles/ec_memsim.dir/hierarchy.cpp.o" "gcc" "src/memsim/CMakeFiles/ec_memsim.dir/hierarchy.cpp.o.d"
  "/root/repo/src/memsim/multicore.cpp" "src/memsim/CMakeFiles/ec_memsim.dir/multicore.cpp.o" "gcc" "src/memsim/CMakeFiles/ec_memsim.dir/multicore.cpp.o.d"
  "/root/repo/src/memsim/nvm_store.cpp" "src/memsim/CMakeFiles/ec_memsim.dir/nvm_store.cpp.o" "gcc" "src/memsim/CMakeFiles/ec_memsim.dir/nvm_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
