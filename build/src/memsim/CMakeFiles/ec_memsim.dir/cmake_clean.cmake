file(REMOVE_RECURSE
  "CMakeFiles/ec_memsim.dir/cache_level.cpp.o"
  "CMakeFiles/ec_memsim.dir/cache_level.cpp.o.d"
  "CMakeFiles/ec_memsim.dir/config.cpp.o"
  "CMakeFiles/ec_memsim.dir/config.cpp.o.d"
  "CMakeFiles/ec_memsim.dir/hierarchy.cpp.o"
  "CMakeFiles/ec_memsim.dir/hierarchy.cpp.o.d"
  "CMakeFiles/ec_memsim.dir/multicore.cpp.o"
  "CMakeFiles/ec_memsim.dir/multicore.cpp.o.d"
  "CMakeFiles/ec_memsim.dir/nvm_store.cpp.o"
  "CMakeFiles/ec_memsim.dir/nvm_store.cpp.o.d"
  "libec_memsim.a"
  "libec_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
