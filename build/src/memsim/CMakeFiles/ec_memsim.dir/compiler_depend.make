# Empty compiler generated dependencies file for ec_memsim.
# This may be replaced when dependencies are built.
