file(REMOVE_RECURSE
  "libec_memsim.a"
)
