file(REMOVE_RECURSE
  "CMakeFiles/efficiency_planner.dir/efficiency_planner.cpp.o"
  "CMakeFiles/efficiency_planner.dir/efficiency_planner.cpp.o.d"
  "efficiency_planner"
  "efficiency_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efficiency_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
