# Empty compiler generated dependencies file for efficiency_planner.
# This may be replaced when dependencies are built.
