file(REMOVE_RECURSE
  "CMakeFiles/mg_workflow.dir/mg_workflow.cpp.o"
  "CMakeFiles/mg_workflow.dir/mg_workflow.cpp.o.d"
  "mg_workflow"
  "mg_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
