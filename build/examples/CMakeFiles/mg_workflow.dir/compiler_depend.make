# Empty compiler generated dependencies file for mg_workflow.
# This may be replaced when dependencies are built.
