# Empty compiler generated dependencies file for nvct.
# This may be replaced when dependencies are built.
