file(REMOVE_RECURSE
  "CMakeFiles/nvct.dir/nvct.cpp.o"
  "CMakeFiles/nvct.dir/nvct.cpp.o.d"
  "nvct"
  "nvct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
