# Empty dependencies file for bench_fig8_optane.
# This may be replaced when dependencies are built.
