
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_optane.cpp" "bench/CMakeFiles/bench_fig8_optane.dir/bench_fig8_optane.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8_optane.dir/bench_fig8_optane.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ec_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/ec_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ec_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ec_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/crash/CMakeFiles/ec_crash.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/ec_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sysmodel/CMakeFiles/ec_sysmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
