file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_optane.dir/bench_fig8_optane.cpp.o"
  "CMakeFiles/bench_fig8_optane.dir/bench_fig8_optane.cpp.o.d"
  "bench_fig8_optane"
  "bench_fig8_optane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_optane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
