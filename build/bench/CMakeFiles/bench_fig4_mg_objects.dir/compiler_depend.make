# Empty compiler generated dependencies file for bench_fig4_mg_objects.
# This may be replaced when dependencies are built.
