file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_mg_objects.dir/bench_fig4_mg_objects.cpp.o"
  "CMakeFiles/bench_fig4_mg_objects.dir/bench_fig4_mg_objects.cpp.o.d"
  "bench_fig4_mg_objects"
  "bench_fig4_mg_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_mg_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
