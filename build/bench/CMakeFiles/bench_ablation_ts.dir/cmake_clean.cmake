file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ts.dir/bench_ablation_ts.cpp.o"
  "CMakeFiles/bench_ablation_ts.dir/bench_ablation_ts.cpp.o.d"
  "bench_ablation_ts"
  "bench_ablation_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
