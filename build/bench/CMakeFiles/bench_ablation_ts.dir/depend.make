# Empty dependencies file for bench_ablation_ts.
# This may be replaced when dependencies are built.
