file(REMOVE_RECURSE
  "CMakeFiles/bench_tau_threshold.dir/bench_tau_threshold.cpp.o"
  "CMakeFiles/bench_tau_threshold.dir/bench_tau_threshold.cpp.o.d"
  "bench_tau_threshold"
  "bench_tau_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tau_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
