# Empty compiler generated dependencies file for bench_tau_threshold.
# This may be replaced when dependencies are built.
