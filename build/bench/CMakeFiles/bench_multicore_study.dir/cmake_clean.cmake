file(REMOVE_RECURSE
  "CMakeFiles/bench_multicore_study.dir/bench_multicore_study.cpp.o"
  "CMakeFiles/bench_multicore_study.dir/bench_multicore_study.cpp.o.d"
  "bench_multicore_study"
  "bench_multicore_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multicore_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
