# Empty dependencies file for bench_multicore_study.
# This may be replaced when dependencies are built.
