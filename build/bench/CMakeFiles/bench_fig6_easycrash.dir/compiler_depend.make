# Empty compiler generated dependencies file for bench_fig6_easycrash.
# This may be replaced when dependencies are built.
