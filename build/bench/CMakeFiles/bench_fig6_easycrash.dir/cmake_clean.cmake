file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_easycrash.dir/bench_fig6_easycrash.cpp.o"
  "CMakeFiles/bench_fig6_easycrash.dir/bench_fig6_easycrash.cpp.o.d"
  "bench_fig6_easycrash"
  "bench_fig6_easycrash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_easycrash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
