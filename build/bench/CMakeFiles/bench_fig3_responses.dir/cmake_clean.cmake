file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_responses.dir/bench_fig3_responses.cpp.o"
  "CMakeFiles/bench_fig3_responses.dir/bench_fig3_responses.cpp.o.d"
  "bench_fig3_responses"
  "bench_fig3_responses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_responses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
