file(REMOVE_RECURSE
  "CMakeFiles/bench_memsim_micro.dir/bench_memsim_micro.cpp.o"
  "CMakeFiles/bench_memsim_micro.dir/bench_memsim_micro.cpp.o.d"
  "bench_memsim_micro"
  "bench_memsim_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memsim_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
