# Empty compiler generated dependencies file for bench_memsim_micro.
# This may be replaced when dependencies are built.
