
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/ec_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/ec_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/campaign_test.cpp" "tests/CMakeFiles/ec_tests.dir/campaign_test.cpp.o" "gcc" "tests/CMakeFiles/ec_tests.dir/campaign_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/ec_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/ec_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/ec_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/ec_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/ec_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/ec_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/memsim_extra_test.cpp" "tests/CMakeFiles/ec_tests.dir/memsim_extra_test.cpp.o" "gcc" "tests/CMakeFiles/ec_tests.dir/memsim_extra_test.cpp.o.d"
  "/root/repo/tests/memsim_test.cpp" "tests/CMakeFiles/ec_tests.dir/memsim_test.cpp.o" "gcc" "tests/CMakeFiles/ec_tests.dir/memsim_test.cpp.o.d"
  "/root/repo/tests/multicore_test.cpp" "tests/CMakeFiles/ec_tests.dir/multicore_test.cpp.o" "gcc" "tests/CMakeFiles/ec_tests.dir/multicore_test.cpp.o.d"
  "/root/repo/tests/perfmodel_test.cpp" "tests/CMakeFiles/ec_tests.dir/perfmodel_test.cpp.o" "gcc" "tests/CMakeFiles/ec_tests.dir/perfmodel_test.cpp.o.d"
  "/root/repo/tests/plan_spec_test.cpp" "tests/CMakeFiles/ec_tests.dir/plan_spec_test.cpp.o" "gcc" "tests/CMakeFiles/ec_tests.dir/plan_spec_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "tests/CMakeFiles/ec_tests.dir/report_test.cpp.o" "gcc" "tests/CMakeFiles/ec_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/ec_tests.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/ec_tests.dir/runtime_test.cpp.o.d"
  "/root/repo/tests/shapes_test.cpp" "tests/CMakeFiles/ec_tests.dir/shapes_test.cpp.o" "gcc" "tests/CMakeFiles/ec_tests.dir/shapes_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/ec_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/ec_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/sysmodel_test.cpp" "tests/CMakeFiles/ec_tests.dir/sysmodel_test.cpp.o" "gcc" "tests/CMakeFiles/ec_tests.dir/sysmodel_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ec_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/ec_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ec_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ec_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/crash/CMakeFiles/ec_crash.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/ec_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/sysmodel/CMakeFiles/ec_sysmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
