# Empty dependencies file for ec_tests.
# This may be replaced when dependencies are built.
