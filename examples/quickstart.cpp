// Quickstart: instrument a tiny application with the EasyCrash runtime, run
// a crash test by hand, and watch what survives in NVM.
//
// Build & run:   ./build/examples/quickstart
//
// The walk-through mirrors the paper's Figure 2: allocate tracked data
// objects, run a main loop with persist points, crash it at a random access,
// inspect inconsistency, and restart from the surviving NVM bytes.
#include <iostream>

#include "easycrash/runtime/runtime.hpp"
#include "easycrash/runtime/tracked.hpp"

namespace rt = easycrash::runtime;

namespace {

/// A miniature iterative kernel: repeatedly smooth a vector toward zero.
struct TinyApp {
  static constexpr int kCells = 1024;
  static constexpr int kIterations = 8;

  rt::TrackedArray<double> u;

  explicit TinyApp(rt::Runtime& runtime)
      : u(runtime, "u", kCells, /*candidate=*/true) {
    for (int i = 0; i < kCells; ++i) u.set(i, (i % 17) * 0.1);
    u.persist();  // make the initial state durable before computing
  }

  void iterate(rt::Runtime& runtime, int iteration) {
    runtime.bookmarkIteration(iteration);  // paper footnote 3
    for (int i = 1; i < kCells - 1; ++i) {
      u.set(i, 0.25 * (u.get(i - 1) + 2.0 * u.get(i) + u.get(i + 1)) * 0.99);
    }
    // Persist u at the end of the iteration (the paper's Figure 2a).
    u.persist();
  }
};

}  // namespace

int main() {
  // --- A run that crashes -------------------------------------------------
  easycrash::runtime::Runtime runtime;
  TinyApp app(runtime);
  runtime.setCrashWindow(true);
  runtime.armCrash(3000);  // crash at the 3000th tracked access

  int crashedIteration = 0;
  try {
    for (int it = 1; it <= TinyApp::kIterations; ++it) app.iterate(runtime, it);
    std::cout << "no crash fired (unexpected)\n";
  } catch (const rt::CrashEvent& crash) {
    crashedIteration = crash.iteration;
    std::cout << "crashed at access " << crash.accessIndex << " in iteration "
              << crash.iteration << '\n';
    std::cout << "inconsistency of u at the crash instant: "
              << 100.0 * runtime.inconsistentRate(app.u.id()) << "% of bytes\n";
  }

  // Power loss: everything in the caches is gone.
  const auto survivingU = runtime.dumpObjectNvm(app.u.id());
  const int survivingIteration = runtime.bookmarkedIterationNvm();
  runtime.powerLoss();
  std::cout << "NVM bookmark says: resume from iteration " << survivingIteration
            << '\n';

  // --- Restart on a fresh machine ------------------------------------------
  easycrash::runtime::Runtime restart;
  TinyApp app2(restart);                       // re-initialisation
  restart.restoreObject(app2.u.id(), survivingU);  // paper's load_value
  restart.setCrashWindow(true);
  for (int it = survivingIteration; it <= TinyApp::kIterations; ++it) {
    app2.iterate(restart, it);
  }
  restart.setCrashWindow(false);

  double checksum = 0.0;
  for (int i = 0; i < TinyApp::kCells; ++i) checksum += app2.u.peek(i);
  std::cout << "restarted from iteration " << survivingIteration << " (crash was in "
            << crashedIteration << "), final checksum = " << checksum << '\n';
  std::cout << "done — see examples/mg_workflow.cpp for the full EasyCrash "
               "decision pipeline\n";
  return 0;
}
