// Capacity-planning example: should your HPC system enable EasyCrash?
//
// Implements the decision procedure of the paper's §8 "Determining how/when
// to use EasyCrash": given the system MTBF, checkpoint cost and a measured
// (or estimated) application recomputability, compute the threshold tau and
// the efficiency gain.
//
// Build & run:   ./build/examples/efficiency_planner --mtbf 12 --tchk 320 --r 0.8
#include <iostream>

#include "easycrash/common/cli.hpp"
#include "easycrash/common/table.hpp"
#include "easycrash/sysmodel/efficiency.hpp"

namespace ec = easycrash;
using ec::sysmodel::SystemParams;

int main(int argc, char** argv) {
  ec::CliParser cli("EasyCrash deployment planner");
  cli.addDouble("mtbf", 12.0, "system mean time between failures, hours");
  cli.addDouble("tchk", 320.0, "checkpoint write time, seconds");
  cli.addDouble("r", 0.82, "application recomputability with EasyCrash");
  cli.addDouble("ts", 0.02, "EasyCrash runtime overhead");
  cli.addDouble("data-gb", 64.0, "data reloaded from NVM on an EC restart, GB");
  if (!cli.parse(argc, argv)) return 0;

  SystemParams params;
  params.mtbfHours = cli.getDouble("mtbf");
  params.tChkSeconds = cli.getDouble("tchk");
  params.nvmRecoveryGB = cli.getDouble("data-gb");
  const double r = cli.getDouble("r");
  const double ts = cli.getDouble("ts");

  const auto without = ec::sysmodel::efficiencyWithoutEasyCrash(params);
  const auto with = ec::sysmodel::efficiencyWithEasyCrash(params, r, ts);
  const double tau = ec::sysmodel::recomputabilityThreshold(params, ts);
  const double mc = ec::sysmodel::simulateEfficiency(params, r, ts, 7, 0.2);

  ec::Table table({"quantity", "value"});
  table.row().cell("checkpoint interval w/o EC (Young)").cell(
      ec::formatDouble(without.checkpointInterval, 0) + " s");
  table.row().cell("checkpoint interval w/ EC").cell(
      ec::formatDouble(with.checkpointInterval, 0) + " s");
  table.row().cell("efficiency w/o EasyCrash").cellPercent(without.efficiency);
  table.row().cell("efficiency w/ EasyCrash").cellPercent(with.efficiency);
  table.row().cell("Monte-Carlo cross-check").cellPercent(mc);
  table.row().cell("recomputability threshold tau").cellPercent(tau);
  table.print(std::cout, "EasyCrash deployment planner");

  if (r > tau) {
    std::cout << "verdict: ENABLE EasyCrash (R = " << ec::formatDouble(100 * r, 1)
              << "% clears tau = " << ec::formatDouble(100 * tau, 1) << "%)\n";
  } else {
    std::cout << "verdict: keep plain C/R (R = " << ec::formatDouble(100 * r, 1)
              << "% is below tau = " << ec::formatDouble(100 * tau, 1) << "%)\n";
  }
  return 0;
}
