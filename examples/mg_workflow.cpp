// The full EasyCrash workflow on the MG benchmark (the paper's running
// example): baseline crash campaign, Spearman object selection, region
// selection via the Equation 1-5 model + knapsack, and a validated plan.
//
// Build & run:   ./build/examples/mg_workflow [--tests N]
#include <iostream>

#include "easycrash/apps/registry.hpp"
#include "easycrash/common/cli.hpp"
#include "easycrash/common/table.hpp"
#include "easycrash/core/workflow.hpp"

namespace ec = easycrash;

int main(int argc, char** argv) {
  ec::CliParser cli("EasyCrash workflow walk-through on MG");
  cli.addInt("tests", 80, "crash tests per campaign");
  cli.addString("app", "mg", "benchmark to analyse");
  if (!cli.parse(argc, argv)) return 0;

  const auto& entry = ec::apps::findBenchmark(cli.getString("app"));
  ec::core::WorkflowConfig config;
  config.testsPerCampaign = static_cast<int>(cli.getInt("tests"));

  std::cout << "=== Step 1: baseline crash-test campaign (" << entry.name
            << ", " << config.testsPerCampaign << " tests) ===\n";
  const auto workflow = ec::core::runEasyCrashWorkflow(entry.factory, config);
  const auto counts = workflow.baseline.responseCounts();
  std::cout << "responses S1/S2/S3/S4: " << counts[0] << '/' << counts[1] << '/'
            << counts[2] << '/' << counts[3] << "  => recomputability "
            << ec::formatDouble(100 * workflow.baselineRecomputability(), 1)
            << "%\n\n";

  std::cout << "=== Step 2: critical data objects (Spearman, p < 0.01) ===\n";
  ec::Table objects({"object", "rho", "p-value", "mean inconsistency", "critical?"});
  for (const auto& c : workflow.objects.correlations) {
    objects.row()
        .cell(c.name)
        .cell(c.degenerate ? std::string("n/a") : ec::formatDouble(c.rho, 3))
        .cell(c.degenerate ? std::string("n/a") : ec::formatDouble(c.pValue, 6))
        .cellPercent(c.meanInconsistentRate)
        .cell(c.selected ? "yes" : "no");
  }
  objects.print(std::cout);
  std::cout << '\n';

  std::cout << "=== Step 3: code regions (model + knapsack) ===\n";
  ec::Table regions({"persist point", "every N", "cost l_k", "predicted c_k^x",
                     "gain a_k*(c^x - c)"});
  for (const auto& choice : workflow.regions.chosen) {
    regions.row()
        .cell(choice.point == ec::runtime::kMainLoopEnd
                  ? std::string("main-loop end")
                  : "R" + std::to_string(choice.point + 1))
        .cell(static_cast<long long>(choice.everyN))
        .cellPercent(choice.costFraction)
        .cellPercent(choice.predictedCk)
        .cellPercent(choice.gain);
  }
  regions.print(std::cout);
  std::cout << "predicted Y' = "
            << ec::formatDouble(100 * workflow.regions.predictedY, 1)
            << "% (base Y = " << ec::formatDouble(100 * workflow.regions.baseY, 1)
            << "%), meets tau: " << (workflow.regions.meetsTau ? "yes" : "no")
            << "\n\n";

  std::cout << "=== Step 4: production plan validation ===\n";
  if (workflow.validation) {
    std::cout << "measured recomputability under the plan: "
              << ec::formatDouble(100 * workflow.validation->recomputability(), 1)
              << "% (was "
              << ec::formatDouble(100 * workflow.baselineRecomputability(), 1)
              << "% without EasyCrash)\n";
  } else {
    std::cout << "EasyCrash disabled for this app (Equation-4 gate)\n";
  }
  return 0;
}
