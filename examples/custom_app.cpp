// Bring-your-own-application example: implement the IApp interface for a
// custom kernel (here: Jacobi heat diffusion with a physics acceptance
// check), then point the standard crash-campaign machinery at it.
//
// Build & run:   ./build/examples/custom_app [--tests N]
#include <cmath>
#include <iostream>
#include <memory>

#include "easycrash/common/cli.hpp"
#include "easycrash/common/table.hpp"
#include "easycrash/crash/campaign.hpp"
#include "easycrash/runtime/app.hpp"
#include "easycrash/runtime/tracked.hpp"

namespace ec = easycrash;
using ec::runtime::RegionScope;
using ec::runtime::Runtime;
using ec::runtime::TrackedArray;
using ec::runtime::VerifyOutcome;

namespace {

/// 1-D Jacobi diffusion toward a fixed boundary profile. Acceptance
/// verification: monotone profile between the boundary values (a physics
/// invariant of the heat equation) plus near-steadiness.
class HeatApp final : public ec::runtime::IApp {
 public:
  static constexpr int kCells = 16384;  // footprint >> LLC (paper §4.1)
  static constexpr int kIterations = 20;

  [[nodiscard]] const ec::runtime::AppInfo& info() const override { return info_; }

  void setup(Runtime& rt) override {
    rt.declareRegionCount(2);
    t_ = TrackedArray<double>(rt, "temperature", kCells, /*candidate=*/true);
    tNew_ = TrackedArray<double>(rt, "temperature_next", kCells, /*candidate=*/true);
  }

  void initialize(Runtime& rt) override {
    (void)rt;
    for (int i = 0; i < kCells; ++i) {
      t_.set(i, i < kCells / 2 ? 1.0 : 0.0);  // hot left half, cold right half
      tNew_.set(i, 0.0);
    }
    t_.set(0, 1.0);
    t_.set(kCells - 1, 0.0);
  }

  void iterate(Runtime& rt, int iteration) override {
    (void)iteration;
    {  // R1: apply boundary conditions, then the Jacobi sweep.
      RegionScope region(rt, 0);
      t_.set(0, 1.0);
      t_.set(kCells - 1, 0.0);
      for (int i = 1; i < kCells - 1; ++i) {
        tNew_.set(i, t_.get(i) + 0.4 * (t_.get(i - 1) - 2.0 * t_.get(i) +
                                        t_.get(i + 1)));
      }
      region.iterationEnd();
    }
    {  // R2: commit.
      RegionScope region(rt, 1);
      for (int i = 1; i < kCells - 1; ++i) t_.set(i, tNew_.get(i));
      region.iterationEnd();
    }
  }

  [[nodiscard]] int nominalIterations() const override { return kIterations; }

  [[nodiscard]] VerifyOutcome verify(Runtime& rt) override {
    (void)rt;
    // Physics invariants: values inside [0,1] and a monotone profile away
    // from the initial step position.
    VerifyOutcome out;
    double worst = 0.0;
    bool bounded = true;
    for (int i = 0; i < kCells - 1; ++i) {
      const double a = t_.peek(i);
      bounded = bounded && a >= -1e-9 && a <= 1.0 + 1e-9;
      const double rise = t_.peek(i + 1) - a;
      worst = std::max(worst, rise);  // temperature must not increase rightward
    }
    out.metric = worst;
    out.pass = bounded && worst <= 2e-5;
    out.detail = "max uphill step = " + std::to_string(worst);
    return out;
  }

 private:
  ec::runtime::AppInfo info_{"heat", "custom Jacobi diffusion example"};
  TrackedArray<double> t_, tNew_;
};

}  // namespace

int main(int argc, char** argv) {
  ec::CliParser cli("Crash-test campaign for a custom application");
  cli.addInt("tests", 60, "number of crash tests");
  if (!cli.parse(argc, argv)) return 0;

  ec::crash::CampaignConfig config;
  config.numTests = static_cast<int>(cli.getInt("tests"));
  const ec::crash::CampaignRunner runner(
      [] { return std::make_unique<HeatApp>(); }, config);
  const auto campaign = runner.run();

  const auto counts = campaign.responseCounts();
  ec::Table table({"metric", "value"});
  table.row().cell("S1 (clean recomputation)").cell(
      static_cast<long long>(counts[0]));
  table.row().cell("S2 (extra iterations)").cell(static_cast<long long>(counts[1]));
  table.row().cell("S3 (interruption)").cell(static_cast<long long>(counts[2]));
  table.row().cell("S4 (verification fails)").cell(static_cast<long long>(counts[3]));
  table.row().cell("recomputability").cell(
      ec::formatDouble(100 * campaign.recomputability(), 1) + "%");
  table.print(std::cout, "Custom heat app under crash testing");
  return 0;
}
