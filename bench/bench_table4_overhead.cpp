// Table 4 — normalized execution time: the cost of one persistence
// operation, the number of persistence operations, and the normalized
// execution time with EasyCrash, without EasyCrash's selection (persisting
// all candidates every main-loop iteration) and when chasing the best
// recomputability (persisting critical objects at every persist point).
#include <iostream>

#include "bench_common.hpp"
#include "easycrash/perfmodel/time_model.hpp"

namespace ec = easycrash;
using ec::bench::addCampaignOptions;
using ec::bench::printResult;
using ec::bench::workflowConfig;

int main(int argc, char** argv) {
  ec::CliParser cli("Table 4: normalized execution time of persistence");
  addCampaignOptions(cli, /*defaultTests=*/20);
  if (!cli.parse(argc, argv)) return 0;

  const ec::perfmodel::TimeModel model(ec::perfmodel::NvmProfile::dram());

  ec::Table table({"Benchmark", "Persist once", "#persist ops", "Norm. time (EC)",
                   "Norm. time (persist all, no selection)",
                   "Norm. time (best recomputability)"});
  double sumEc = 0.0, sumAll = 0.0, sumBest = 0.0;
  int count = 0;
  for (const auto& entry : ec::bench::selectedApps(cli)) {
    if (entry.name == "ep" && cli.getString("apps") == "all") continue;
    auto config = workflowConfig(cli);
    config.validateFinal = false;  // only plans are needed here
    const auto workflow = ec::core::runEasyCrashWorkflow(entry.factory, config);

    const auto goldenWith = [&](const ec::runtime::PersistencePlan& plan) {
      ec::crash::CampaignConfig c;
      c.numTests = 0;
      c.plan = plan;
      return ec::crash::CampaignRunner(entry.factory, c).goldenRun();
    };

    const auto baseline = goldenWith({});
    const double baseNs = model.executionTimeNs(baseline.events);

    std::vector<ec::runtime::ObjectId> allCandidates;
    for (const auto& object : baseline.objects) {
      if (object.candidate) allCandidates.push_back(object.id);
    }

    const auto ecGolden = goldenWith(workflow.plan);
    const auto allGolden =
        goldenWith(ec::runtime::PersistencePlan::atMainLoopEnd(allCandidates));
    const auto bestGolden = goldenWith(workflow.everywherePlan);

    const double ecNs = model.executionTimeNs(ecGolden.events);
    const double allNs = model.executionTimeNs(allGolden.events);
    const double bestNs = model.executionTimeNs(bestGolden.events);
    const double persistOnceUs =
        ecGolden.persistenceOps > 0
            ? model.persistenceTimeNs(ecGolden.events) /
                  static_cast<double>(ecGolden.persistenceOps) / 1000.0
            : 0.0;

    table.row()
        .cell(entry.name)
        .cell(ec::formatDouble(persistOnceUs, 1) + " us")
        .cell(static_cast<long long>(ecGolden.persistenceOps))
        .cell(ecNs / baseNs, 3)
        .cell(allNs / baseNs, 3)
        .cell(bestNs / baseNs, 3);
    sumEc += ecNs / baseNs;
    sumAll += allNs / baseNs;
    sumBest += bestNs / baseNs;
    ++count;
  }
  if (count > 0) {
    table.row()
        .cell("average")
        .cell("")
        .cell("")
        .cell(sumEc / count, 3)
        .cell(sumAll / count, 3)
        .cell(sumBest / count, 3);
  }
  printResult(cli, table, "Table 4: normalized execution time (DRAM time model)");
  return 0;
}
