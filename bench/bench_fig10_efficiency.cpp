// Figure 10 — system efficiency with and without EasyCrash at MTBF = 12 h
// for checkpoint costs T_chk in {32, 320, 3200} seconds, shown for the
// benchmark with the lowest recomputability (FT), the highest (SP), and the
// all-benchmark average.
//
// By default the R_EasyCrash values come from the command line (pre-set to
// this repository's measured results; see EXPERIMENTS.md). Pass --measure to
// re-derive them live from full EasyCrash workflows.
#include <iostream>

#include "bench_common.hpp"
#include "easycrash/sysmodel/efficiency.hpp"

namespace ec = easycrash;
using ec::bench::addCampaignOptions;
using ec::bench::printResult;
using ec::sysmodel::SystemParams;

int main(int argc, char** argv) {
  ec::CliParser cli("Figure 10: system efficiency with and without EasyCrash");
  addCampaignOptions(cli, /*defaultTests=*/60);
  cli.addDouble("r-low", 0.03, "R_EasyCrash of the lowest benchmark (FT)");
  cli.addDouble("r-high", 0.93, "R_EasyCrash of the highest benchmark (SP)");
  cli.addDouble("r-avg", 0.58, "average R_EasyCrash over all benchmarks");
  cli.addDouble("overhead", 0.02, "EasyCrash runtime overhead t_s in production");
  cli.addFlag("measure", "re-measure the R values with live workflows (slow)");
  if (!cli.parse(argc, argv)) return 0;

  double rLow = cli.getDouble("r-low");
  double rHigh = cli.getDouble("r-high");
  double rAvg = cli.getDouble("r-avg");
  if (cli.getFlag("measure")) {
    double sum = 0.0;
    int count = 0;
    for (const auto& entry : ec::bench::selectedApps(cli)) {
      if (entry.name == "ep") continue;
      auto config = ec::bench::workflowConfig(cli);
      const auto workflow = ec::core::runEasyCrashWorkflow(entry.factory, config);
      const double r = workflow.finalRecomputability();
      if (entry.name == "ft") rLow = r;
      if (entry.name == "sp") rHigh = r;
      sum += r;
      ++count;
      std::cout << "measured R(" << entry.name << ") = " << r << '\n';
    }
    if (count > 0) rAvg = sum / count;
  }

  const double overhead = cli.getDouble("overhead");
  ec::Table table({"T_chk", "FT w/o EC", "FT w/ EC", "SP w/o EC", "SP w/ EC",
                   "Avg w/o EC", "Avg w/ EC", "Avg improvement"});
  for (double tChk : {32.0, 320.0, 3200.0}) {
    SystemParams params;
    params.tChkSeconds = tChk;
    const double without = ec::sysmodel::efficiencyWithoutEasyCrash(params).efficiency;
    const double ftWith =
        ec::sysmodel::efficiencyWithEasyCrash(params, rLow, overhead).efficiency;
    const double spWith =
        ec::sysmodel::efficiencyWithEasyCrash(params, rHigh, overhead).efficiency;
    const double avgWith =
        ec::sysmodel::efficiencyWithEasyCrash(params, rAvg, overhead).efficiency;
    table.row()
        .cell(ec::formatDouble(tChk, 0) + " s")
        .cellPercent(without)
        .cellPercent(ftWith)
        .cellPercent(without)
        .cellPercent(spWith)
        .cellPercent(without)
        .cellPercent(avgWith)
        .cellPercent(avgWith - without);
  }
  printResult(cli, table, "Figure 10: system efficiency (MTBF = 12 h)");
  return 0;
}
