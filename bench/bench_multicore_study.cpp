// Multi-threaded crash study (paper §4.1: "We use both single thread and
// multiple threads to run each benchmark ... the conclusions we draw from
// the results of multiple threads are the same as those of single thread").
//
// A domain-decomposed Jacobi kernel runs on the MESI multi-core system with
// a deterministic round-robin schedule; crashes are injected at uniformly
// random access indices as in the single-core campaigns. The study reports
// recomputability with and without end-of-iteration flushing, plus the
// coherence traffic — demonstrating that the selective-persistence
// conclusion carries over to coherent multi-core execution.
#include <cmath>
#include <cstring>
#include <iostream>
#include <vector>

#include "easycrash/common/cli.hpp"
#include "easycrash/common/rng.hpp"
#include "easycrash/common/table.hpp"
#include "easycrash/memsim/multicore.hpp"

namespace ec = easycrash;
namespace ms = easycrash::memsim;

namespace {

constexpr int kCells = 8192;       // 64KB of doubles, > shared LLC
constexpr int kIterations = 12;
constexpr std::uint64_t kUBase = 0;
constexpr std::uint64_t kUNextBase = kCells * 8;
constexpr std::uint64_t kIterAddr = 2ULL * kCells * 8;
constexpr std::uint64_t kSharedSumAddr = kIterAddr + 64;

struct CrashAt {
  std::uint64_t index = 0;  // 0 = never
};

/// Thrown when the access budget hits the armed crash point.
struct McCrash {};

class ParallelJacobi {
 public:
  ParallelJacobi(ms::MulticoreSystem& sys, int threads)
      : sys_(sys), threads_(threads) {}

  void initialize() {
    for (int i = 0; i < kCells; ++i) {
      const double v = (i % 2 == 0) ? 1.0 : 0.0;
      storeUntracked(kUBase + 8ULL * i, v);
      storeUntracked(kUNextBase + 8ULL * i, 0.0);
    }
    storeUntracked(kSharedSumAddr, 0.0);
  }

  /// Run iterations [from..kIterations]; throws McCrash at the armed access.
  void run(int from, CrashAt crash) {
    crash_ = crash;
    for (int it = from; it <= kIterations; ++it) {
      bookmark(it);
      // Deterministic round-robin over threads, chunk by chunk — an
      // interleaving a fork-join OpenMP loop could legally produce.
      const int chunk = kCells / threads_;
      for (int t = 0; t < threads_; ++t) {
        const int lo = std::max(1, t * chunk);
        const int hi = std::min(kCells - 1, (t + 1) * chunk);
        for (int i = lo; i < hi; ++i) {
          const double v = 0.5 * load(t, kUBase + 8ULL * (i - 1)) * 0.5 +
                           0.25 * load(t, kUBase + 8ULL * i) +
                           0.25 * load(t, kUBase + 8ULL * (i + 1));
          store(t, kUNextBase + 8ULL * i, v);
        }
      }
      for (int t = 0; t < threads_; ++t) {
        const int lo = std::max(1, t * chunk);
        const int hi = std::min(kCells - 1, (t + 1) * chunk);
        for (int i = lo; i < hi; ++i) {
          store(t, kUBase + 8ULL * i, load(t, kUNextBase + 8ULL * i));
        }
      }
      // Shared reduction: every thread folds a sample of its chunk into one
      // shared accumulator — the classic MESI ping-pong pattern.
      for (int t = 0; t < threads_; ++t) {
        const int lo = std::max(1, t * chunk);
        double partial = 0.0;
        for (int s = 0; s < 16; ++s) {
          partial += load(t, kUBase + 8ULL * (lo + s));
        }
        const double sum = load(t, kSharedSumAddr) + partial;
        store(t, kSharedSumAddr, sum);
      }
      if (flushEveryIteration) {
        sys_.flushRange(kUBase, kCells * 8, ms::FlushKind::Clflushopt);
      }
    }
  }

  [[nodiscard]] std::uint64_t accessCount() const { return accesses_; }

  /// Max-norm distance of the surviving/current field from a host replay.
  [[nodiscard]] double deviationFromReference(int iterations) const {
    std::vector<double> ref(kCells), next(kCells, 0.0);
    for (int i = 0; i < kCells; ++i) ref[i] = (i % 2 == 0) ? 1.0 : 0.0;
    for (int it = 1; it <= iterations; ++it) {
      for (int i = 1; i < kCells - 1; ++i) {
        next[i] = 0.5 * ref[i - 1] * 0.5 + 0.25 * ref[i] + 0.25 * ref[i + 1];
      }
      for (int i = 1; i < kCells - 1; ++i) ref[i] = next[i];
    }
    double worst = 0.0;
    for (int i = 0; i < kCells; ++i) {
      double v = 0.0;
      sys_.peek(kUBase + 8ULL * i, {reinterpret_cast<std::uint8_t*>(&v), 8});
      worst = std::max(worst, std::abs(v - ref[i]));
    }
    return worst;
  }

  [[nodiscard]] int survivingIteration() const {
    std::uint8_t buffer[4];
    // Read straight from the runner's NVM-backed bookmark via peek after a
    // power loss (all caches invalid, so peek == NVM).
    int v = 0;
    sys_.peek(kIterAddr, {buffer, 4});
    std::memcpy(&v, buffer, 4);
    return v;
  }

  bool flushEveryIteration = false;

 private:
  void bookmark(int iteration) {
    storeUntracked(kIterAddr, iteration);
    sys_.flushBlock(kIterAddr, ms::FlushKind::Clwb);
  }

  template <typename T>
  void storeUntracked(std::uint64_t addr, const T& v) {
    sys_.store(0, addr, {reinterpret_cast<const std::uint8_t*>(&v), sizeof(T)});
  }

  double load(int core, std::uint64_t addr) {
    tick();
    double v = 0.0;
    sys_.load(core, addr, {reinterpret_cast<std::uint8_t*>(&v), 8});
    return v;
  }
  void store(int core, std::uint64_t addr, double v) {
    tick();
    sys_.store(core, addr, {reinterpret_cast<const std::uint8_t*>(&v), 8});
  }
  void tick() {
    ++accesses_;
    if (crash_.index != 0 && accesses_ >= crash_.index) {
      crash_.index = 0;
      throw McCrash{};
    }
  }

  ms::MulticoreSystem& sys_;
  int threads_;
  std::uint64_t accesses_ = 0;
  CrashAt crash_;
};

ms::MulticoreConfig studyConfig(int cores) {
  ms::MulticoreConfig config;
  config.cores = cores;
  config.privateCache = ms::CacheGeometry{2ULL * 1024, 8};
  config.sharedLlc = ms::CacheGeometry{32ULL * 1024, 16};
  return config;
}

struct StudyResult {
  double recomputability = 0.0;
  std::uint64_t invalidations = 0;
  std::uint64_t ownershipTransfers = 0;
};

StudyResult runStudy(int threads, bool flush, int tests, std::uint64_t seed,
                     double tolerance) {
  // Golden run for the access count.
  ms::NvmStore goldenNvm(64);
  ms::MulticoreSystem goldenSys(studyConfig(threads), goldenNvm);
  ParallelJacobi golden(goldenSys, threads);
  golden.flushEveryIteration = flush;
  golden.initialize();
  golden.run(1, {});
  const std::uint64_t window = golden.accessCount();

  StudyResult result;
  const auto totals = goldenSys.totalEvents();
  result.invalidations = totals.invalidationsSent;
  result.ownershipTransfers = totals.ownershipTransfers;

  ec::Rng rng(seed);
  int successes = 0;
  for (int t = 0; t < tests; ++t) {
    ms::NvmStore nvm(64);
    ms::MulticoreSystem sys(studyConfig(threads), nvm);
    ParallelJacobi app(sys, threads);
    app.flushEveryIteration = flush;
    app.initialize();
    bool crashed = false;
    try {
      app.run(1, {rng.between(1, window)});
    } catch (const McCrash&) {
      crashed = true;
    }
    if (!crashed) continue;  // should not happen
    sys.invalidateAll();  // power loss
    const int resume = app.survivingIteration();
    try {
      app.run(std::max(1, resume), {});
    } catch (const McCrash&) {
      continue;
    }
    if (app.deviationFromReference(kIterations) <= tolerance) ++successes;
  }
  result.recomputability = static_cast<double>(successes) / tests;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  ec::CliParser cli("Multi-core crash study on the MESI coherent hierarchy");
  cli.addInt("tests", 40, "crash tests per configuration");
  cli.addInt("seed", 1, "master seed");
  cli.addDouble("tolerance", 1e-9, "acceptance tolerance vs. the reference");
  cli.addFlag("csv", "emit CSV");
  if (!cli.parse(argc, argv)) return 0;
  const int tests = static_cast<int>(cli.getInt("tests"));
  const auto seed = static_cast<std::uint64_t>(cli.getInt("seed"));
  const double tol = cli.getDouble("tolerance");

  ec::Table table({"threads", "persistence", "recomputability", "invalidations",
                   "ownership transfers"});
  for (int threads : {1, 2, 4}) {
    for (bool flush : {false, true}) {
      const auto result = runStudy(threads, flush, tests, seed, tol);
      table.row()
          .cell(static_cast<long long>(threads))
          .cell(flush ? "flush u each iteration" : "none")
          .cellPercent(result.recomputability)
          .cell(static_cast<unsigned long long>(result.invalidations))
          .cell(static_cast<unsigned long long>(result.ownershipTransfers));
    }
  }
  if (cli.getFlag("csv")) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout,
                "Multi-core crash study: the selective-persistence conclusion "
                "holds under MESI coherence");
  }
  return 0;
}
