// Table 1 — benchmark information for crash experiments.
//
// Reproduces: description, number of code regions, read/write ratio, memory
// footprint, candidate and critical data-object sizes, average extra
// iterations needed to restart (the paper's restart overhead, with the
// segfault / verification-failure N/A cases), and the nominal iteration
// count of the original execution.
#include <iostream>

#include "bench_common.hpp"
#include "easycrash/core/object_selection.hpp"

namespace ec = easycrash;
using ec::bench::addCampaignOptions;
using ec::bench::campaignConfig;
using ec::bench::printResult;
using ec::bench::selectedApps;

int main(int argc, char** argv) {
  ec::CliParser cli("Table 1: benchmark characteristics for crash experiments");
  addCampaignOptions(cli, /*defaultTests=*/60);
  if (!cli.parse(argc, argv)) return 0;

  ec::Table table({"Benchmark", "Description", "#regions", "R/W", "Footprint",
                   "Candidate DO", "Critical DO", "Extra iter. to restart",
                   "Total iter."});

  for (const auto& entry : selectedApps(cli)) {
    const ec::crash::CampaignRunner runner(entry.factory, campaignConfig(cli));
    const auto campaign = runner.run();
    const auto selection = ec::core::selectCriticalObjects(campaign);
    const auto counts = campaign.responseCounts();

    // Restart-overhead column semantics follow the paper: segfault-dominated
    // apps are "N/A (segfault)", never-verifying apps are "N/A (the
    // verification fails)", otherwise the mean extra iterations of S2 runs.
    std::string restartOverhead;
    const int total = static_cast<int>(campaign.tests.size());
    if (counts[2] > total / 2) {
      restartOverhead = "N/A (segfault)";
    } else if (counts[0] + counts[1] == 0) {
      restartOverhead = "N/A (the verification fails)";
    } else if (counts[1] == 0) {
      restartOverhead = "0";
    } else {
      restartOverhead = ec::formatDouble(campaign.averageExtraIterations(), 1);
    }

    table.row()
        .cell(entry.name)
        .cell(entry.description)
        .cell(static_cast<long long>(campaign.golden.regionCount))
        .cell(static_cast<double>(campaign.golden.events.loads) /
                  static_cast<double>(campaign.golden.events.stores),
              1)
        .cell(ec::formatBytes(campaign.golden.footprintBytes))
        .cell(ec::formatBytes(selection.candidateBytes))
        .cell(ec::formatBytes(selection.criticalBytes))
        .cell(restartOverhead)
        .cell(static_cast<long long>(campaign.golden.finalIteration));
  }
  printResult(cli, table, "Table 1: benchmark information (scaled problems)");
  return 0;
}
