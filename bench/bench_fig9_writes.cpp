// Figure 9 — normalized number of NVM writes: the extra writes EasyCrash's
// selective flushing adds, versus a traditional checkpoint-into-NVM that
// copies (a) the critical objects or (b) all writable objects once per
// execution (the paper's conservative single-checkpoint assumption).
// Values are normalized by the total NVM writes of a plain run.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "easycrash/perfmodel/write_model.hpp"

namespace ec = easycrash;
using ec::bench::addCampaignOptions;
using ec::bench::printResult;
using ec::bench::workflowConfig;
using ec::perfmodel::CheckpointScope;

int main(int argc, char** argv) {
  ec::CliParser cli("Figure 9: normalized number of NVM writes");
  addCampaignOptions(cli, /*defaultTests=*/20);
  if (!cli.parse(argc, argv)) return 0;

  ec::Table table({"Benchmark", "EasyCrash extra writes", "C/R critical DOs",
                   "C/R all DOs", "EC reduction vs C/R(all)"});
  double sumEc = 0.0, sumCrCritical = 0.0, sumCrAll = 0.0, sumReduction = 0.0;
  int count = 0;
  for (const auto& entry : ec::bench::selectedApps(cli)) {
    if (entry.name == "ep" && cli.getString("apps") == "all") continue;
    auto config = workflowConfig(cli);
    config.validateFinal = false;
    const auto workflow = ec::core::runEasyCrashWorkflow(entry.factory, config);

    const auto baseline = ec::perfmodel::measureRunWrites(entry.factory, {});
    const auto withEc = ec::perfmodel::measureRunWrites(entry.factory, workflow.plan);
    const auto crCritical = ec::perfmodel::measureCheckpointWrites(
        entry.factory, CheckpointScope::CriticalObjects, workflow.objects.critical);
    const auto crAll = ec::perfmodel::measureCheckpointWrites(
        entry.factory, CheckpointScope::AllWritableObjects);

    const double base = static_cast<double>(baseline.totalNvmWrites);
    // Signed: flushing with CLFLUSHOPT invalidates lines and can *reduce*
    // natural write-backs, so the EC run may write less than the baseline.
    const double ecExtra = (static_cast<double>(withEc.totalNvmWrites) -
                            static_cast<double>(baseline.totalNvmWrites)) /
                           base;
    const double crCriticalExtra =
        static_cast<double>(crCritical.checkpointInducedWrites) / base;
    const double crAllExtra =
        static_cast<double>(crAll.checkpointInducedWrites) / base;
    const double reduction =
        crAllExtra > 0.0 ? 1.0 - std::max(0.0, ecExtra) / crAllExtra : 0.0;

    table.row()
        .cell(entry.name)
        .cellPercent(ecExtra)
        .cellPercent(crCriticalExtra)
        .cellPercent(crAllExtra)
        .cellPercent(reduction);
    sumEc += ecExtra;
    sumCrCritical += crCriticalExtra;
    sumCrAll += crAllExtra;
    sumReduction += reduction;
    ++count;
  }
  if (count > 0) {
    table.row()
        .cell("average")
        .cellPercent(sumEc / count)
        .cellPercent(sumCrCritical / count)
        .cellPercent(sumCrAll / count)
        .cellPercent(sumReduction / count);
  }
  printResult(cli, table,
              "Figure 9: extra NVM writes, normalized by a plain run's writes");
  return 0;
}
