// Shared plumbing for the table/figure bench binaries: a standard CLI
// (test counts, seed, app filter, CSV output), app iteration, and common
// plan constructions.
#pragma once

#include <fstream>
#include <functional>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "easycrash/apps/registry.hpp"
#include "easycrash/common/cli.hpp"
#include "easycrash/common/table.hpp"
#include "easycrash/core/workflow.hpp"
#include "easycrash/crash/campaign.hpp"
#include "easycrash/telemetry/metrics.hpp"

namespace easycrash::bench {

/// Standard options shared by every campaign-driven bench binary.
inline void addCampaignOptions(CliParser& cli, int defaultTests = 120) {
  cli.addInt("tests", defaultTests, "crash tests per campaign");
  cli.addInt("seed", 1, "master seed");
  cli.addString("apps", "all", "comma-separated benchmark filter or 'all'");
  cli.addFlag("csv", "emit CSV instead of an aligned table");
  cli.addDouble("ts", 0.35,
                "runtime-overhead budget t_s (paper: 0.03 at Class-C scale; the"
                " scaled-down problems compress work-per-persist ~10x, see"
                " DESIGN.md and bench_ablation_ts)");
  cli.addString("metrics-out", "",
                "also write the final telemetry metrics snapshot (JSON) — "
                "counter provenance for the BENCH_*.json entry");
}

/// Dump the metrics registry next to the bench result when --metrics-out was
/// given, so every recorded figure carries the MemEvents counter totals that
/// produced it.
inline void maybeWriteMetrics(const CliParser& cli) {
  const std::string path = cli.getString("metrics-out");
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path);
  telemetry::MetricsRegistry::instance().writeJson(os);
  std::cerr << "metrics snapshot written to " << path << '\n';
}

[[nodiscard]] inline std::vector<apps::BenchmarkEntry> selectedApps(
    const CliParser& cli) {
  const std::string filter = cli.getString("apps");
  std::vector<apps::BenchmarkEntry> out;
  for (const auto& entry : apps::allBenchmarks()) {
    if (filter == "all" || filter.find(entry.name) != std::string::npos) {
      out.push_back(entry);
    }
  }
  return out;
}

[[nodiscard]] inline crash::CampaignConfig campaignConfig(const CliParser& cli) {
  crash::CampaignConfig config;
  config.numTests = static_cast<int>(cli.getInt("tests"));
  config.seed = static_cast<std::uint64_t>(cli.getInt("seed"));
  return config;
}

[[nodiscard]] inline core::WorkflowConfig workflowConfig(const CliParser& cli) {
  core::WorkflowConfig config;
  config.testsPerCampaign = static_cast<int>(cli.getInt("tests"));
  config.seed = static_cast<std::uint64_t>(cli.getInt("seed"));
  config.regionConfig.ts = cli.getDouble("ts");
  return config;
}

inline void printResult(const CliParser& cli, const Table& table,
                        const std::string& title) {
  if (cli.getFlag("csv")) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout, title);
  }
  maybeWriteMetrics(cli);
}

/// Plan that persists `objects` once per activation of every region (the
/// paper's Figure 4(b) style "persist at region Rk" configuration uses a
/// single-region variant of this).
[[nodiscard]] inline runtime::PersistencePlan atRegionEndPlan(
    const crash::GoldenStats& golden, runtime::PointId region,
    std::vector<runtime::ObjectId> objects) {
  runtime::PersistencePlan plan;
  runtime::PersistDirective directive;
  directive.objects = std::move(objects);
  const auto endsIt = golden.regionIterationEnds.find(region);
  const auto mainIt = golden.regionIterationEnds.find(runtime::kMainLoopEnd);
  const double mainIters =
      mainIt != golden.regionIterationEnds.end() ? double(mainIt->second) : 1.0;
  const double ends =
      endsIt != golden.regionIterationEnds.end() ? double(endsIt->second) : 1.0;
  directive.everyN = static_cast<std::uint32_t>(
      std::max(1.0, ends / std::max(1.0, mainIters)));
  plan.points[region] = std::move(directive);
  return plan;
}

}  // namespace easycrash::bench
