// Ablation — sensitivity of the region-selection outcome to the runtime
// overhead budget t_s (the paper studies t_s in {2%, 3%, 5%}; our scaled
// problems compress work-per-persist, so the sweep covers a wider range —
// see DESIGN.md). For each budget: the chosen plan's predicted cost, the
// predicted recomputability, and the measured recomputability.
#include <iostream>

#include "bench_common.hpp"

namespace ec = easycrash;
using ec::bench::addCampaignOptions;
using ec::bench::printResult;

int main(int argc, char** argv) {
  ec::CliParser cli("Ablation: t_s budget sensitivity");
  addCampaignOptions(cli, /*defaultTests=*/15);
  if (!cli.parse(argc, argv)) return 0;

  ec::Table table({"Benchmark", "t_s", "plan cost", "predicted Y'", "measured R",
                   "#points chosen"});
  for (const auto& entry : ec::bench::selectedApps(cli)) {
    if (entry.name == "ep" && cli.getString("apps") == "all") continue;
    for (double ts : {0.03, 0.12, 0.35}) {
      auto config = ec::bench::workflowConfig(cli);
      config.regionConfig.ts = ts;
      const auto workflow = ec::core::runEasyCrashWorkflow(entry.factory, config);
      table.row()
          .cell(entry.name)
          .cellPercent(ts)
          .cellPercent(workflow.regions.totalCostFraction)
          .cellPercent(workflow.regions.predictedY)
          .cellPercent(workflow.validation ? workflow.validation->recomputability()
                                           : workflow.baselineRecomputability())
          .cell(static_cast<long long>(workflow.regions.chosen.size()));
    }
  }
  printResult(cli, table, "Ablation: t_s sensitivity of region selection");
  return 0;
}
