// Figure 4 — MG's recomputability when (a) persisting different data
// objects at the end of each main-loop iteration, and (b) persisting u at
// the end of different code regions.
//
// The paper's observations 2 and 3: the choice of object matters (u helps,
// r and the loop index barely do), and the choice of region matters (one
// region dominates: the one right after u's last write of the cycle).
#include <iostream>

#include "bench_common.hpp"
#include "easycrash/common/check.hpp"
#include "easycrash/runtime/runtime.hpp"

namespace ec = easycrash;
using ec::bench::addCampaignOptions;
using ec::bench::campaignConfig;
using ec::bench::printResult;

namespace {

double recomputabilityUnderPlan(const ec::runtime::AppFactory& factory,
                                const ec::crash::CampaignConfig& base,
                                ec::runtime::PersistencePlan plan) {
  ec::crash::CampaignConfig config = base;
  config.plan = std::move(plan);
  return ec::crash::CampaignRunner(factory, config).run().recomputability();
}

}  // namespace

int main(int argc, char** argv) {
  ec::CliParser cli("Figure 4: MG recomputability by persisted object / region");
  addCampaignOptions(cli, /*defaultTests=*/50);
  if (!cli.parse(argc, argv)) return 0;

  const auto& mg = ec::apps::findBenchmark("mg");
  const auto base = campaignConfig(cli);

  // Discover MG's object ids from a setup-only runtime.
  ec::runtime::Runtime rt(base.cache);
  auto probe = mg.factory();
  probe->setup(rt);
  const auto uId = rt.findObject("u");
  const auto rId = rt.findObject("r");
  EC_CHECK(uId && rId);

  // (a) persist one object at the end of each main-loop iteration.
  ec::Table objectTable({"Persisted object", "Recomputability"});
  objectTable.row().cell("none").cellPercent(
      recomputabilityUnderPlan(mg.factory, base, {}));
  // The loop index is always persisted by the runtime (paper footnote 3), so
  // "index" is the same configuration as "none" plus an explicit row.
  objectTable.row().cell("index (always persisted)").cellPercent(
      recomputabilityUnderPlan(mg.factory, base, {}));
  objectTable.row().cell("u").cellPercent(recomputabilityUnderPlan(
      mg.factory, base, ec::runtime::PersistencePlan::atMainLoopEnd({*uId})));
  objectTable.row().cell("r").cellPercent(recomputabilityUnderPlan(
      mg.factory, base, ec::runtime::PersistencePlan::atMainLoopEnd({*rId})));
  printResult(cli, objectTable,
              "Figure 4(a): MG recomputability persisting different objects");

  // (b) persist u at the end of each code region, one region at a time.
  const auto golden = ec::crash::CampaignRunner(mg.factory, base).goldenRun();
  ec::Table regionTable({"Persist u at", "Recomputability"});
  for (std::uint32_t region = 0; region < golden.regionCount; ++region) {
    const auto plan = ec::bench::atRegionEndPlan(
        golden, static_cast<ec::runtime::PointId>(region), {*uId});
    regionTable.row()
        .cell("R" + std::to_string(region + 1))
        .cellPercent(recomputabilityUnderPlan(mg.factory, base, plan));
  }
  regionTable.row().cell("main-loop end").cellPercent(recomputabilityUnderPlan(
      mg.factory, base, ec::runtime::PersistencePlan::atMainLoopEnd({*uId})));
  printResult(cli, regionTable,
              "Figure 4(b): MG recomputability persisting u at each region");
  return 0;
}
