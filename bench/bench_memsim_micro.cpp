// Microbenchmarks of the memory-system simulator itself (google-benchmark):
// hit/miss paths, the three flush-instruction classes (§2.1: flushing clean
// or non-resident blocks is much cheaper than flushing dirty ones), the
// post-crash inconsistency scan, and end-to-end app-iteration throughput.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "easycrash/apps/registry.hpp"
#include "easycrash/common/rng.hpp"
#include "easycrash/crash/campaign.hpp"
#include "easycrash/crash/shard.hpp"
#include "easycrash/memsim/hierarchy.hpp"
#include "easycrash/memsim/region_monitor.hpp"
#include "easycrash/runtime/runtime.hpp"
#include "easycrash/runtime/tracked.hpp"

namespace ms = easycrash::memsim;

namespace {

struct Sim {
  Sim() : nvm(64), cache(ms::CacheConfig::scaledDefault(), nvm) {}
  ms::NvmStore nvm;
  ms::CacheHierarchy cache;
};

void BM_L1HitLoad(benchmark::State& state) {
  Sim s;
  std::uint64_t v = 0;
  s.cache.store(0, {reinterpret_cast<const std::uint8_t*>(&v), 8});
  for (auto _ : state) {
    s.cache.load(0, {reinterpret_cast<std::uint8_t*>(&v), 8});
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_L1HitLoad);

void BM_StreamingStoreMiss(benchmark::State& state) {
  Sim s;
  std::uint64_t addr = 0;
  const std::uint64_t v = 42;
  for (auto _ : state) {
    s.cache.store(addr, {reinterpret_cast<const std::uint8_t*>(&v), 8});
    addr += 64;  // always a fresh block: miss + fill + eventual eviction
  }
}
BENCHMARK(BM_StreamingStoreMiss);

void BM_FlushDirtyBlock(benchmark::State& state) {
  Sim s;
  const std::uint64_t v = 7;
  for (auto _ : state) {
    s.cache.store(0, {reinterpret_cast<const std::uint8_t*>(&v), 8});
    s.cache.flushBlock(0, ms::FlushKind::Clwb);
  }
}
BENCHMARK(BM_FlushDirtyBlock);

void BM_FlushCleanBlock(benchmark::State& state) {
  Sim s;
  const std::uint64_t v = 7;
  s.cache.store(0, {reinterpret_cast<const std::uint8_t*>(&v), 8});
  s.cache.flushBlock(0, ms::FlushKind::Clwb);
  for (auto _ : state) {
    s.cache.flushBlock(0, ms::FlushKind::Clwb);
  }
}
BENCHMARK(BM_FlushCleanBlock);

void BM_FlushNonResident(benchmark::State& state) {
  Sim s;
  for (auto _ : state) {
    s.cache.flushBlock(1 << 20, ms::FlushKind::Clflushopt);
  }
}
BENCHMARK(BM_FlushNonResident);

void BM_InconsistencyScan64KB(benchmark::State& state) {
  Sim s;
  easycrash::Rng rng(1);
  for (int i = 0; i < 8192; ++i) {
    const std::uint64_t v = rng();
    s.cache.store(i * 8ULL, {reinterpret_cast<const std::uint8_t*>(&v), 8});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.cache.inconsistentBytes(0, 64 * 1024));
  }
}
BENCHMARK(BM_InconsistencyScan64KB);

// The post-mortem scan fast path (dirty-block index + vectorized compare)
// against the probe-every-level scalar walk it replaces. Arg0 is the percent
// of the 64 KiB footprint re-dirtied after a full drain (0 = clean: the scan
// is pure skip work; 5 = sparse: a handful of compares; 60 = dense: the
// compare kernel dominates); Arg1 flips setScanFastPath. Both settings
// return the same count — the ratio between the two legs at fixed density
// is the mechanical overhead the index + kernel remove.
void BM_Postmortem(benchmark::State& state) {
  Sim s;
  easycrash::Rng rng(3);
  constexpr std::uint64_t kBytes = 64 * 1024;
  constexpr std::uint64_t kBlocks = kBytes / 64;
  // Materialise the footprint, then drain so every block starts clean and
  // NVM-identical; re-dirty the requested fraction of blocks.
  for (std::uint64_t b = 0; b < kBlocks; ++b) {
    const std::uint64_t v = rng();
    s.cache.store(b * 64, {reinterpret_cast<const std::uint8_t*>(&v), 8});
  }
  s.cache.drainAll();
  const auto densityPct = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t b = 0; b < kBlocks; ++b) {
    if (rng.below(100) < densityPct) {
      const std::uint64_t v = rng();
      s.cache.store(b * 64, {reinterpret_cast<const std::uint8_t*>(&v), 8});
    }
  }
  s.cache.setScanFastPath(state.range(1) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.cache.inconsistentBytes(0, kBytes));
  }
  state.SetLabel(std::string(state.range(1) ? "indexed" : "scalar") + "/" +
                 (densityPct == 0 ? "clean" : densityPct <= 5 ? "sparse" : "dense"));
  state.counters["dirty_blocks"] = static_cast<double>(s.cache.dirtyIndex().size());
}
BENCHMARK(BM_Postmortem)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({60, 0})
    ->Args({60, 1});

// The block-granular range fast path against the element-wise scalar loop
// it replaces (Runtime::setBulk(false) lowers the same TrackedArray calls to
// per-element accesses — byte-identical observables, so the ratio between
// the two arg-0 values is pure mechanical overhead removed). Arg1 is the
// element count: 128 doubles (1 KB) sweep an L1-resident array, where the
// per-element tag/MRU/dirty work the fast path collapses is the whole cost;
// 64 Ki doubles (512 KiB) stream 8× the LLC, where both paths pay the same
// per-block miss+evict machinery and converge on the fill bandwidth.
void BM_RangeAccess(benchmark::State& state) {
  easycrash::runtime::Runtime rt;
  rt.setBulk(state.range(0) != 0);
  const auto kElems = static_cast<std::uint64_t>(state.range(1));
  easycrash::runtime::TrackedArray<double> a(rt, "a", kElems, true);
  std::vector<double> buf(kElems, 1.5);
  for (auto _ : state) {
    a.writeRange(0, kElems, buf.data());
    a.readRange(0, kElems, buf.data());
    benchmark::DoNotOptimize(buf[0]);
  }
  state.SetLabel(std::string(state.range(0) ? "bulk" : "elementwise") +
                 (kElems * sizeof(double) <= 2048 ? "/resident" : "/streaming"));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * kElems);
}
BENCHMARK(BM_RangeAccess)
    ->Args({0, 128})
    ->Args({1, 128})
    ->Args({0, 1 << 16})
    ->Args({1, 1 << 16})
    ->Unit(benchmark::kMicrosecond);

void BM_AppIteration(benchmark::State& state) {
  const auto& entry = easycrash::apps::allBenchmarks()[static_cast<std::size_t>(
      state.range(0))];
  easycrash::runtime::Runtime rt;
  auto app = entry.factory();
  app->setup(rt);
  app->initialize(rt);
  int iteration = 1;
  for (auto _ : state) {
    try {
      app->iterate(rt, iteration);
    } catch (const easycrash::runtime::AppInterrupt&) {
      // Physics apps eventually leave their stable regime when iterated far
      // beyond the nominal schedule; reset and keep measuring.
      app->initialize(rt);
      iteration = 0;
    }
    iteration = iteration % app->nominalIterations() + 1;
  }
  state.SetLabel(entry.name);
}
BENCHMARK(BM_AppIteration)->DenseRange(0, 10)->Unit(benchmark::kMillisecond);

// End-to-end campaign-trial throughput: one full fixed-seed campaign (golden
// run + 4 crash tests, single-threaded) against the SP benchmark. This is
// the number that bounds real campaign wall-clock, so it is the headline
// entry in the checked-in perf baseline (scripts/bench_baseline.py).
// Deterministic simulation counts from a campaign result, exported as user
// counters. The perf gate (scripts/bench_baseline.py) byte-compares these
// against the baseline's: the simulator's work must not silently change
// shape under a perf PR, and the profile sampler must keep seeing every
// block touch. Zero when telemetry is compiled out (the bench gate runs on
// the telemetry-ON leg).
void setCampaignCounters(benchmark::State& state,
                         const easycrash::crash::CampaignResult& result) {
  state.counters["golden_accesses"] = static_cast<double>(
      result.golden.events.loads + result.golden.events.stores);
  state.counters["golden_nvm_writes"] =
      static_cast<double>(result.golden.events.nvmBlockWrites);
  std::uint64_t samples = 0;
  for (const auto& object : result.profile.objects) {
    samples += object.accesses;
  }
  state.counters["profile_samples"] = static_cast<double>(samples);
}

void BM_CampaignTrialThroughput(benchmark::State& state) {
  const auto& entry = easycrash::apps::findBenchmark("sp");
  easycrash::crash::CampaignConfig config;
  config.seed = 1;
  config.numTests = 4;
  config.threads = 1;
  config.appLabel = entry.name;
  easycrash::crash::CampaignResult last;
  for (auto _ : state) {
    last = easycrash::crash::CampaignRunner(entry.factory, config).run();
    benchmark::DoNotOptimize(last.tests.size());
  }
  state.SetItemsProcessed(state.iterations() * config.numTests);
  setCampaignCounters(state, last);
}
BENCHMARK(BM_CampaignTrialThroughput)->Unit(benchmark::kMillisecond);

// Trial-count scaling of the two campaign evaluators. The per-trial path
// replays the crashing run once per test, so its crashing phase costs
// O(N·W/2) tracked accesses; the sweep captures every pending crash point
// in ONE crashing run (O(W)) and pipelines the restarts behind it. Run at
// N=25 and N=100 for both modes: the off/on ratio at fixed N is the sweep
// speedup, and the on-mode growth from 25 to 100 shows the crashing phase
// no longer dominating. Arg0 = trial count, Arg1 = sweep on/off.
void BM_CampaignNScaling(benchmark::State& state) {
  const auto& entry = easycrash::apps::findBenchmark("sp");
  easycrash::crash::CampaignConfig config;
  config.seed = 7;
  config.numTests = static_cast<int>(state.range(0));
  config.threads = 1;
  config.sweep = state.range(1) != 0;
  config.appLabel = entry.name;
  easycrash::crash::CampaignResult last;
  for (auto _ : state) {
    last = easycrash::crash::CampaignRunner(entry.factory, config).run();
    benchmark::DoNotOptimize(last.tests.size());
  }
  state.SetLabel(config.sweep ? "sweep" : "per-trial");
  state.SetItemsProcessed(state.iterations() * config.numTests);
  setCampaignCounters(state, last);
}
BENCHMARK(BM_CampaignNScaling)
    ->Args({25, 0})
    ->Args({25, 1})
    ->Args({100, 0})
    ->Args({100, 1})
    ->Unit(benchmark::kMillisecond);

// Sharded campaign execution (docs/INTERNALS.md "Sharded campaigns"). One
// shard's end-to-end critical path at k=1/2/4: shard 0's campaign — the
// golden run every shard repeats plus its N/k owned trials — then the
// `nvct merge` fold of all k shard journals into the canonical compact
// journal. With k machines running their shards concurrently, this per-
// shard time IS the campaign wall-clock, so the k=1/k ratio is the fan-out
// speedup (bounded below 1/k by the replicated golden run and the merge).
// The k shard journals are produced once outside the timed loop; merge
// time is also broken out as merge_ms — it grows with decided trials, not
// with the simulation, so it stays a rounding error next to the campaign.
void BM_ShardedCampaign(benchmark::State& state) {
  namespace cr = easycrash::crash;
  const int shards = static_cast<int>(state.range(0));
  const auto& entry = easycrash::apps::findBenchmark("is");
  const int tests = 1536;
  const auto configFor = [&](int index) {
    cr::CampaignConfig config;
    config.seed = 1;
    config.numTests = tests;
    config.threads = 1;
    config.appLabel = entry.name;
    config.shard.index = index;
    config.shard.count = shards;
    return config;
  };
  const std::string dir = std::filesystem::temp_directory_path().string();
  std::vector<std::string> paths;
  for (int i = 0; i < shards; ++i) {
    std::string path = dir + "/bench_shard_" + std::to_string(shards) + "_" +
                       std::to_string(i) + ".jsonl";
    std::remove(path.c_str());
    auto config = configFor(i);
    config.resilience.journalPath = path;
    (void)cr::CampaignRunner(entry.factory, config).run();
    paths.push_back(std::move(path));
  }
  cr::CampaignResult last;
  double mergeMs = 0.0;
  for (auto _ : state) {
    last = cr::CampaignRunner(entry.factory, configFor(0)).run();
    const auto mergeStart = std::chrono::steady_clock::now();
    const auto merge = cr::mergeShardJournals(paths);
    const std::string journal = cr::renderMergedJournal(merge);
    benchmark::DoNotOptimize(journal.size());
    mergeMs += std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - mergeStart)
                   .count();
  }
  for (const auto& path : paths) std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations() * tests);
  state.counters["merge_ms"] =
      mergeMs / static_cast<double>(state.iterations());
  setCampaignCounters(state, last);
}
BENCHMARK(BM_ShardedCampaign)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Monitoring overhead on a large footprint: what one golden-run access costs
// under full value tracking (arg 0: every load simulated through the cache
// hierarchy, with the footprint far beyond the LLC so the stream pays real
// capacity misses) versus under the adaptive region monitor riding a
// direct-mode runtime (arg 1: the sampled campaigns' golden path — one NVM
// memcpy plus one countdown decrement per access). Arg 2 is the direct-mode
// run with no monitor at all: the raw access floor both modes share. The
// monitoring OVERHEAD ratio is (arg0 - arg2) / (arg1 - arg2); the
// checked-in baseline records all three legs and docs/INTERNALS.md quotes
// the ratio.
void BM_RegionMonitor(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  easycrash::runtime::Runtime rt;
  ms::RegionMonitorConfig monitorConfig;
  monitorConfig.seed = 7;
  ms::RegionMonitor monitor(monitorConfig);
  if (mode != 0) rt.setDirect(true);
  if (mode == 1) rt.setMonitor(&monitor);
  constexpr std::uint64_t kBytes = 64ull << 20;  // far beyond the scaled LLC
  constexpr std::uint64_t kElems = kBytes / sizeof(double);
  const auto id = rt.allocate("big", kBytes, /*candidate=*/false);
  const std::uint64_t base = rt.object(id).addr;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rt.loadValue<double>(base + (i & (kElems - 1)) * sizeof(double)));
    ++i;
  }
  state.SetLabel(mode == 0   ? "full-tracking"
                 : mode == 1 ? "sampled-monitor"
                             : "direct-baseline");
  state.SetItemsProcessed(state.iterations());
  state.counters["monitor_samples"] =
      static_cast<double>(monitor.totalSamples());
}
BENCHMARK(BM_RegionMonitor)->Arg(0)->Arg(1)->Arg(2);

// The large-footprint unlock, end to end. Arg 0: a fully-tracked golden run
// of CG at 16x its bundled problem size — the fixed cost EVERY full-mode
// campaign pays before its first trial, and the reason large footprints
// were out of reach. Arg 1: the same golden run as sampled campaigns
// execute it — direct-mode with the adaptive region monitor riding the
// stream. Same windowAccesses, finalIteration and verify metric either
// way; only the cache simulation is skipped. The recorded arg0/arg1 gap is
// the evidence behind the nvct_monitor_large_footprint fixture's timeout.
void BM_LargeFootprintGolden(benchmark::State& state) {
  const bool sampled = state.range(0) != 0;
  easycrash::crash::CampaignConfig config;
  config.seed = 7;
  config.appLabel = "cg@s16";
  config.monitor.mode = sampled ? easycrash::crash::MonitorMode::Sampled
                                : easycrash::crash::MonitorMode::Full;
  const auto factory = easycrash::apps::scaledBenchmarkFactory("cg", 16);
  // Exactly the golden run a campaign performs in each mode (the monitor
  // itself adds ~0.3 ns/access on top of the direct leg per
  // BM_RegionMonitor, so the tracked-vs-direct contrast is the story).
  std::uint64_t window = 0;
  for (auto _ : state) {
    easycrash::runtime::Runtime rt(config.cache);
    if (sampled) rt.setDirect(true);
    auto app = factory();
    const auto result = easycrash::runtime::Driver::freshRun(*app, rt);
    benchmark::DoNotOptimize(result.finalIteration);
    window = rt.windowAccesses();
  }
  state.SetLabel(sampled ? "direct-golden" : "tracked-golden");
  state.counters["window_accesses"] = static_cast<double>(window);
}
BENCHMARK(BM_LargeFootprintGolden)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// A complete sampled-mode campaign at the same 16x footprint: golden +
// monitor summary + 2 crash tests. This is the configuration the
// nvct_monitor_large_footprint fixture runs under a ctest timeout; the
// recorded wall-clock documents that it completes in a fraction of what
// the full-mode fixed cost alone (BM_LargeFootprintGolden/0 plus a tracked
// crashing run) would need.
void BM_LargeFootprintCampaign(benchmark::State& state) {
  easycrash::crash::CampaignConfig config;
  config.seed = 7;
  config.numTests = 2;
  config.threads = 1;
  config.appLabel = "cg@s16";
  config.monitor.mode = easycrash::crash::MonitorMode::Sampled;
  const auto factory = easycrash::apps::scaledBenchmarkFactory("cg", 16);
  easycrash::crash::CampaignResult last;
  for (auto _ : state) {
    last = easycrash::crash::CampaignRunner(factory, config).run();
    benchmark::DoNotOptimize(last.tests.size());
  }
  state.SetItemsProcessed(state.iterations() * config.numTests);
  state.counters["golden_accesses"] = static_cast<double>(
      last.golden.events.loads + last.golden.events.stores);
  state.counters["demoted_bytes"] =
      static_cast<double>(last.monitor.demotedBytes);
}
BENCHMARK(BM_LargeFootprintCampaign)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
