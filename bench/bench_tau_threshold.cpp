// Section 7 "Determination of recomputability threshold tau": the minimum
// R_EasyCrash for which EasyCrash beats plain checkpoint/restart, across
// system MTBF and checkpoint-cost design points, plus a Monte-Carlo
// cross-check of the closed-form efficiency model.
#include <iostream>

#include "easycrash/common/cli.hpp"
#include "easycrash/common/table.hpp"
#include "easycrash/sysmodel/efficiency.hpp"

namespace ec = easycrash;
using ec::sysmodel::SystemParams;

int main(int argc, char** argv) {
  ec::CliParser cli("tau thresholds + Monte-Carlo cross-check of the model");
  cli.addDouble("overhead", 0.02, "EasyCrash runtime overhead t_s");
  cli.addFlag("csv", "emit CSV");
  if (!cli.parse(argc, argv)) return 0;
  const double overhead = cli.getDouble("overhead");

  ec::Table table({"MTBF", "T_chk", "tau", "eff w/o EC", "eff w/ EC (R=0.82)",
                   "MC w/ EC (R=0.82)"});
  for (double mtbf : {3.0, 6.0, 12.0, 24.0}) {
    for (double tChk : {32.0, 320.0, 3200.0}) {
      SystemParams params;
      params.mtbfHours = mtbf;
      params.tChkSeconds = tChk;
      const double tau = ec::sysmodel::recomputabilityThreshold(params, overhead);
      const double without =
          ec::sysmodel::efficiencyWithoutEasyCrash(params).efficiency;
      const double with =
          ec::sysmodel::efficiencyWithEasyCrash(params, 0.82, overhead).efficiency;
      const double mc =
          ec::sysmodel::simulateEfficiency(params, 0.82, overhead, 42, 0.1);
      table.row()
          .cell(ec::formatDouble(mtbf, 0) + " h")
          .cell(ec::formatDouble(tChk, 0) + " s")
          .cellPercent(tau)
          .cellPercent(without)
          .cellPercent(with)
          .cellPercent(mc);
    }
  }
  if (cli.getFlag("csv")) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout, "Recomputability threshold tau and model cross-check");
  }
  return 0;
}
