// Figure 5 — verification of the critical-data-object selection: application
// recomputability when persisting (1) no objects, (2) the Spearman-selected
// critical objects, (3) all candidate objects — the last two should be close
// (the paper reports < 3% difference), while both beat (1).
#include <iostream>

#include "bench_common.hpp"
#include "easycrash/core/object_selection.hpp"

namespace ec = easycrash;
using ec::bench::addCampaignOptions;
using ec::bench::campaignConfig;
using ec::bench::printResult;
using ec::bench::selectedApps;

int main(int argc, char** argv) {
  ec::CliParser cli("Figure 5: selection verification (none / selected / all)");
  addCampaignOptions(cli, /*defaultTests=*/40);
  if (!cli.parse(argc, argv)) return 0;

  ec::Table table({"Benchmark", "No DO persisted", "Selected DOs", "All candidate DOs",
                   "|selected - all|"});
  for (const auto& entry : selectedApps(cli)) {
    const auto base = campaignConfig(cli);
    const auto baseline = ec::crash::CampaignRunner(entry.factory, base).run();
    const auto selection = ec::core::selectCriticalObjects(baseline);

    std::vector<ec::runtime::ObjectId> allCandidates;
    for (const auto& object : baseline.golden.objects) {
      if (object.candidate) allCandidates.push_back(object.id);
    }

    const auto withPlan = [&](std::vector<ec::runtime::ObjectId> objects) {
      ec::crash::CampaignConfig config = base;
      config.seed = base.seed + 7;
      config.plan = ec::runtime::PersistencePlan::atMainLoopEnd(std::move(objects));
      return ec::crash::CampaignRunner(entry.factory, config).run().recomputability();
    };

    const double none = baseline.recomputability();
    const double selected =
        selection.critical.empty() ? none : withPlan(selection.critical);
    const double all = allCandidates.empty() ? none : withPlan(allCandidates);
    table.row()
        .cell(entry.name)
        .cellPercent(none)
        .cellPercent(selected)
        .cellPercent(all)
        .cellPercent(std::abs(selected - all));
  }
  printResult(cli, table, "Figure 5: recomputability under three persistence strategies");
  return 0;
}
