// Calibration harness (development tool, also a useful smoke check):
// per benchmark, print the golden-run characteristics and — optionally — a
// quick crash campaign without any persistence, so app constants can be
// tuned against the paper's Table 1 / Figure 3 shapes.
#include <chrono>
#include <iostream>

#include "easycrash/apps/registry.hpp"
#include "easycrash/common/cli.hpp"
#include "easycrash/common/table.hpp"
#include "easycrash/crash/campaign.hpp"

namespace ec = easycrash;

int main(int argc, char** argv) {
  ec::CliParser cli("Golden-run calibration and quick crash campaign");
  cli.addString("app", "all", "benchmark name or 'all'");
  cli.addInt("tests", 0, "crash tests per app (0 = golden run only)");
  cli.addInt("seed", 1, "campaign master seed");
  if (!cli.parse(argc, argv)) return 0;

  ec::Table table({"app", "iters", "window-acc", "R/W", "footprint", "cand-bytes",
                   "regions", "verify-metric", "golden-ms", "S1", "S2", "S3", "S4",
                   "recomp", "avg-extra"});

  for (const auto& entry : ec::apps::allBenchmarks()) {
    if (cli.getString("app") != "all" && cli.getString("app") != entry.name) continue;
    ec::crash::CampaignConfig config;
    config.numTests = static_cast<int>(cli.getInt("tests"));
    config.seed = static_cast<std::uint64_t>(cli.getInt("seed"));
    ec::crash::CampaignRunner runner(entry.factory, config);

    const auto start = std::chrono::steady_clock::now();
    try {
      if (config.numTests == 0) {
        const auto golden = runner.goldenRun();
        const auto ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        table.row()
            .cell(entry.name)
            .cell(static_cast<long long>(golden.finalIteration))
            .cell(static_cast<unsigned long long>(golden.windowAccesses))
            .cell(static_cast<double>(golden.events.loads) /
                      static_cast<double>(golden.events.stores),
                  2)
            .cell(ec::formatBytes(golden.footprintBytes))
            .cell(ec::formatBytes(golden.candidateBytes))
            .cell(static_cast<long long>(golden.regionCount))
            .cell(golden.verifyMetric, 10)
            .cell(ms, 1)
            .cell("-").cell("-").cell("-").cell("-").cell("-").cell("-");
      } else {
        const auto result = runner.run();
        const auto ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        const auto counts = result.responseCounts();
        table.row()
            .cell(entry.name)
            .cell(static_cast<long long>(result.golden.finalIteration))
            .cell(static_cast<unsigned long long>(result.golden.windowAccesses))
            .cell(static_cast<double>(result.golden.events.loads) /
                      static_cast<double>(result.golden.events.stores),
                  2)
            .cell(ec::formatBytes(result.golden.footprintBytes))
            .cell(ec::formatBytes(result.golden.candidateBytes))
            .cell(static_cast<long long>(result.golden.regionCount))
            .cell(result.golden.verifyMetric, 10)
            .cell(ms, 1)
            .cell(static_cast<long long>(counts[0]))
            .cell(static_cast<long long>(counts[1]))
            .cell(static_cast<long long>(counts[2]))
            .cell(static_cast<long long>(counts[3]))
            .cellPercent(result.recomputability())
            .cell(result.averageExtraIterations(), 1);
      }
    } catch (const std::exception& e) {
      table.row().cell(entry.name).cell(std::string("ERROR: ") + e.what());
    }
  }
  table.print(std::cout, "Calibration (no persistence plan)");
  return 0;
}
