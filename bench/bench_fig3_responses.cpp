// Figure 3 — application responses after crash and restart, without any
// EasyCrash persistence: S1 (success, no extra iterations), S2 (success with
// extra iterations), S3 (interruption) and S4 (verification fails).
#include <iostream>

#include "bench_common.hpp"

namespace ec = easycrash;
using ec::bench::addCampaignOptions;
using ec::bench::campaignConfig;
using ec::bench::printResult;
using ec::bench::selectedApps;

int main(int argc, char** argv) {
  ec::CliParser cli("Figure 3: application responses after crash and restart");
  addCampaignOptions(cli, /*defaultTests=*/60);
  if (!cli.parse(argc, argv)) return 0;

  ec::Table table({"Benchmark", "S1 (success)", "S2 (extra iters)",
                   "S3 (interruption)", "S4 (verify fails)", "tests"});
  double s1Sum = 0.0;
  int appCount = 0;
  for (const auto& entry : selectedApps(cli)) {
    const ec::crash::CampaignRunner runner(entry.factory, campaignConfig(cli));
    const auto campaign = runner.run();
    const auto counts = campaign.responseCounts();
    const double total = static_cast<double>(campaign.tests.size());
    table.row()
        .cell(entry.name)
        .cellPercent(counts[0] / total)
        .cellPercent(counts[1] / total)
        .cellPercent(counts[2] / total)
        .cellPercent(counts[3] / total)
        .cell(static_cast<long long>(campaign.tests.size()));
    s1Sum += counts[0] / total;
    ++appCount;
  }
  if (appCount > 0) {
    table.row().cell("average").cellPercent(s1Sum / appCount).cell("").cell("").cell(
        "").cell("");
  }
  printResult(cli, table,
              "Figure 3: responses after crash+restart (no persistence)");
  return 0;
}
