// Figure 11 — system efficiency for CG with and without EasyCrash as the
// system scales from 100,000 to 200,000 and 400,000 nodes (MTBF 12 h -> 6 h
// -> 3 h), for T_chk = 32 s and T_chk = 3200 s.
#include <iostream>

#include "bench_common.hpp"
#include "easycrash/sysmodel/efficiency.hpp"

namespace ec = easycrash;
using ec::bench::addCampaignOptions;
using ec::bench::printResult;
using ec::sysmodel::SystemParams;

int main(int argc, char** argv) {
  ec::CliParser cli("Figure 11: system-efficiency scaling for CG");
  addCampaignOptions(cli, /*defaultTests=*/60);
  cli.addDouble("r-cg", 0.43, "R_EasyCrash of CG (see EXPERIMENTS.md)");
  cli.addDouble("overhead", 0.02, "EasyCrash runtime overhead t_s in production");
  cli.addFlag("measure", "re-measure R(CG) with a live workflow");
  if (!cli.parse(argc, argv)) return 0;

  double rCg = cli.getDouble("r-cg");
  if (cli.getFlag("measure")) {
    auto config = ec::bench::workflowConfig(cli);
    const auto workflow = ec::core::runEasyCrashWorkflow(
        ec::apps::findBenchmark("cg").factory, config);
    rCg = workflow.finalRecomputability();
    std::cout << "measured R(cg) = " << rCg << '\n';
  }

  const double overhead = cli.getDouble("overhead");
  ec::Table table({"Nodes", "MTBF", "T_chk=32s w/o EC", "T_chk=32s w/ EC",
                   "T_chk=3200s w/o EC", "T_chk=3200s w/ EC"});
  for (double scale : {1.0, 2.0, 4.0}) {
    SystemParams base;
    const SystemParams scaled = base.scaledToNodes(scale);
    auto& row = table.row()
                    .cell(ec::formatDouble(scale * 100000, 0))
                    .cell(ec::formatDouble(scaled.mtbfHours, 1) + " h");
    for (double tChk : {32.0, 3200.0}) {
      SystemParams params = scaled;
      params.tChkSeconds = tChk;
      row.cellPercent(ec::sysmodel::efficiencyWithoutEasyCrash(params).efficiency);
      row.cellPercent(
          ec::sysmodel::efficiencyWithEasyCrash(params, rCg, overhead).efficiency);
    }
  }
  printResult(cli, table, "Figure 11: CG system efficiency vs. system scale");
  return 0;
}
