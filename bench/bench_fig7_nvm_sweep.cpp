// Figure 7 — normalized execution time with and without EasyCrash under
// Quartz-style NVM emulation: 4x and 8x DRAM latency, 1/6 and 1/8 DRAM
// bandwidth. "Without EasyCrash" persists all candidate objects at every
// main-loop iteration (no selection), as in the paper.
#include <iostream>

#include "bench_common.hpp"
#include "easycrash/perfmodel/time_model.hpp"

namespace ec = easycrash;
using ec::bench::addCampaignOptions;
using ec::bench::printResult;
using ec::bench::workflowConfig;
using ec::perfmodel::NvmProfile;
using ec::perfmodel::TimeModel;

int main(int argc, char** argv) {
  ec::CliParser cli("Figure 7: normalized time under NVM latency/bandwidth emulation");
  addCampaignOptions(cli, /*defaultTests=*/20);
  if (!cli.parse(argc, argv)) return 0;

  const std::vector<NvmProfile> profiles = {
      NvmProfile::latencyScaled(4.0), NvmProfile::latencyScaled(8.0),
      NvmProfile::bandwidthScaled(6.0), NvmProfile::bandwidthScaled(8.0)};

  std::vector<std::string> header{"Benchmark"};
  for (const auto& p : profiles) {
    header.push_back("EC @ " + p.name);
    header.push_back("no-EC @ " + p.name);
  }
  ec::Table table(header);
  std::vector<double> sums(profiles.size() * 2, 0.0);
  int count = 0;

  for (const auto& entry : ec::bench::selectedApps(cli)) {
    if (entry.name == "ep" && cli.getString("apps") == "all") continue;
    auto config = workflowConfig(cli);
    config.validateFinal = false;
    const auto workflow = ec::core::runEasyCrashWorkflow(entry.factory, config);

    const auto goldenWith = [&](const ec::runtime::PersistencePlan& plan) {
      ec::crash::CampaignConfig c;
      c.numTests = 0;
      c.plan = plan;
      return ec::crash::CampaignRunner(entry.factory, c).goldenRun();
    };
    const auto baseline = goldenWith({});
    std::vector<ec::runtime::ObjectId> allCandidates;
    for (const auto& object : baseline.objects) {
      if (object.candidate) allCandidates.push_back(object.id);
    }
    const auto ecGolden = goldenWith(workflow.plan);
    const auto allGolden =
        goldenWith(ec::runtime::PersistencePlan::atMainLoopEnd(allCandidates));

    auto& row = table.row().cell(entry.name);
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      const TimeModel model(profiles[i]);
      const double base = model.executionTimeNs(baseline.events);
      const double withEc = model.executionTimeNs(ecGolden.events) / base;
      const double withoutEc = model.executionTimeNs(allGolden.events) / base;
      row.cell(withEc, 3).cell(withoutEc, 3);
      sums[2 * i] += withEc;
      sums[2 * i + 1] += withoutEc;
    }
    ++count;
  }
  if (count > 0) {
    auto& row = table.row().cell("average");
    for (double s : sums) row.cell(s / count, 3);
  }
  printResult(cli, table, "Figure 7: normalized execution time under NVM emulation");
  return 0;
}
