// Figure 8 — normalized execution time with and without EasyCrash on Intel
// Optane DC PMM (app-direct mode, modeled by its published latency and
// bandwidth characteristics).
#include <iostream>

#include "bench_common.hpp"
#include "easycrash/perfmodel/time_model.hpp"

namespace ec = easycrash;
using ec::bench::addCampaignOptions;
using ec::bench::printResult;
using ec::bench::workflowConfig;

int main(int argc, char** argv) {
  ec::CliParser cli("Figure 8: normalized time on Optane DC PMM");
  addCampaignOptions(cli, /*defaultTests=*/20);
  if (!cli.parse(argc, argv)) return 0;

  const ec::perfmodel::TimeModel model(ec::perfmodel::NvmProfile::optaneDcPmm());
  ec::Table table({"Benchmark", "Norm. time (EC)", "Norm. time (no EC, persist all)"});
  double sumEc = 0.0, sumAll = 0.0;
  int count = 0;
  for (const auto& entry : ec::bench::selectedApps(cli)) {
    if (entry.name == "ep" && cli.getString("apps") == "all") continue;
    auto config = workflowConfig(cli);
    config.validateFinal = false;
    const auto workflow = ec::core::runEasyCrashWorkflow(entry.factory, config);

    const auto goldenWith = [&](const ec::runtime::PersistencePlan& plan) {
      ec::crash::CampaignConfig c;
      c.numTests = 0;
      c.plan = plan;
      return ec::crash::CampaignRunner(entry.factory, c).goldenRun();
    };
    const auto baseline = goldenWith({});
    std::vector<ec::runtime::ObjectId> allCandidates;
    for (const auto& object : baseline.objects) {
      if (object.candidate) allCandidates.push_back(object.id);
    }
    const double base = model.executionTimeNs(baseline.events);
    const double withEc =
        model.executionTimeNs(goldenWith(workflow.plan).events) / base;
    const double withoutEc =
        model.executionTimeNs(
            goldenWith(ec::runtime::PersistencePlan::atMainLoopEnd(allCandidates))
                .events) /
        base;
    table.row().cell(entry.name).cell(withEc, 3).cell(withoutEc, 3);
    sumEc += withEc;
    sumAll += withoutEc;
    ++count;
  }
  if (count > 0) {
    table.row().cell("average").cell(sumEc / count, 3).cell(sumAll / count, 3);
  }
  printResult(cli, table, "Figure 8: normalized execution time on Optane DC PMM");
  return 0;
}
