// Figure 6 — application recomputability with different methods:
//   without EasyCrash, + selecting data objects (persist critical objects at
//   the main-loop end), + selecting code regions (the full workflow plan),
//   the best achievable (persist critical objects at every persist point),
//   and the physical-machine "verified" methodology (coherent snapshots).
//
// EP is excluded, as in the paper (§6: its recomputability stays ~0 and the
// Equation-4 gate rejects EasyCrash for it) — run with --apps ep to see it.
#include <iostream>

#include "bench_common.hpp"

namespace ec = easycrash;
using ec::bench::addCampaignOptions;
using ec::bench::printResult;
using ec::bench::workflowConfig;

int main(int argc, char** argv) {
  ec::CliParser cli("Figure 6: recomputability with different methods");
  addCampaignOptions(cli, /*defaultTests=*/40);
  if (!cli.parse(argc, argv)) return 0;

  ec::Table table({"Benchmark", "w/o EC", "+select DOs", "+select regions (EC)",
                   "best", "verified (VFY)"});
  double sumBase = 0.0, sumFinal = 0.0;
  int failToSuccess = 0, failTotal = 0, count = 0;

  for (const auto& entry : ec::bench::selectedApps(cli)) {
    if (entry.name == "ep" && cli.getString("apps") == "all") continue;
    auto config = workflowConfig(cli);
    const auto workflow = ec::core::runEasyCrashWorkflow(entry.factory, config);

    const double base = workflow.baselineRecomputability();

    // "+ selecting data objects": persist the critical set at the main-loop
    // end every iteration (the configuration of Figure 5's middle bar).
    double afterObjects = base;
    if (!workflow.objects.critical.empty()) {
      ec::crash::CampaignConfig c;
      c.numTests = config.testsPerCampaign;
      c.seed = config.seed + 11;
      c.plan = ec::runtime::PersistencePlan::atMainLoopEnd(workflow.objects.critical);
      afterObjects =
          ec::crash::CampaignRunner(entry.factory, c).run().recomputability();
    }

    const double final = workflow.validation
                             ? workflow.validation->recomputability()
                             : base;
    // "Best achievable": the best measured configuration. Persisting
    // everywhere is not guaranteed to win (flushing one of several coupled
    // objects mid-iteration can hurt — see EXPERIMENTS.md), so take the max.
    double best = std::max(base, final);
    best = std::max(best, afterObjects);
    if (!workflow.objects.critical.empty()) {
      best = std::max(best, workflow.everywhere.recomputability());
    }

    // Verified: re-run the final plan with coherent snapshots (the paper's
    // physical-machine check; expected close to, and above, the EC value).
    double verified = final;
    if (!workflow.plan.empty()) {
      ec::crash::CampaignConfig c;
      c.numTests = config.testsPerCampaign;
      c.seed = config.seed + 13;
      c.plan = workflow.plan;
      c.mode = ec::crash::SnapshotMode::Coherent;
      verified = ec::crash::CampaignRunner(entry.factory, c).run().recomputability();
    }

    table.row()
        .cell(entry.name)
        .cellPercent(base)
        .cellPercent(afterObjects)
        .cellPercent(final)
        .cellPercent(best)
        .cellPercent(verified);
    sumBase += base;
    sumFinal += final;
    ++count;
    // "transforms X% of crashes that cannot correctly recompute".
    failTotal += static_cast<int>((1.0 - base) * 1000);
    failToSuccess += static_cast<int>(std::max(0.0, final - base) * 1000);
  }
  if (count > 0) {
    table.row()
        .cell("average")
        .cellPercent(sumBase / count)
        .cell("")
        .cellPercent(sumFinal / count)
        .cell("")
        .cell("");
  }
  printResult(cli, table, "Figure 6: application recomputability with different methods");
  if (failTotal > 0) {
    std::cout << "EasyCrash transforms "
              << ec::formatDouble(100.0 * failToSuccess / failTotal, 1)
              << "% of previously-failing crashes into correct recomputation\n";
  }
  return 0;
}
