// Ablation — cache-scale sensitivity: intrinsic recomputability under the
// default scaled hierarchy vs. a half-size and a double-size LLC. The
// paper's Section 4.1 invariant (footprint >> LLC) implies recomputability
// is driven by the *ratio* of dirty cache state to object size; this bench
// quantifies how sensitive the crash-test results are to that ratio.
#include <iostream>

#include "bench_common.hpp"

namespace ec = easycrash;
using ec::bench::addCampaignOptions;
using ec::bench::printResult;

namespace {

ec::memsim::CacheConfig scaledLlc(double factor) {
  auto config = ec::memsim::CacheConfig::scaledDefault();
  auto& llc = config.levels.back();
  llc.sizeBytes = static_cast<std::uint64_t>(llc.sizeBytes * factor);
  config.name = "llc-x" + ec::formatDouble(factor, 2);
  config.validate();
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  ec::CliParser cli("Ablation: LLC-size sensitivity of intrinsic recomputability");
  addCampaignOptions(cli, /*defaultTests=*/30);
  if (!cli.parse(argc, argv)) return 0;

  ec::Table table(
      {"Benchmark", "LLC x0.5", "LLC x1 (default)", "LLC x2"});
  for (const auto& entry : ec::bench::selectedApps(cli)) {
    auto& row = table.row().cell(entry.name);
    for (double factor : {0.5, 1.0, 2.0}) {
      ec::crash::CampaignConfig config = ec::bench::campaignConfig(cli);
      config.cache = scaledLlc(factor);
      const auto campaign = ec::crash::CampaignRunner(entry.factory, config).run();
      row.cellPercent(campaign.recomputability());
    }
  }
  printResult(cli, table, "Ablation: intrinsic recomputability vs. LLC size");
  return 0;
}
