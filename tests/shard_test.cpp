// Tests for sharded campaign execution and `nvct merge` (docs/INTERNALS.md
// "Sharded campaigns"): the trial partition is exact, every shard draws the
// same campaign, and merging the shard journals reproduces the unsharded
// run's journal/CSV byte-for-byte — in any merge order, idempotently, and
// across sweep/thread settings. Mismatched campaigns are rejected loudly.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "easycrash/crash/campaign.hpp"
#include "easycrash/crash/report.hpp"
#include "easycrash/crash/resilience.hpp"
#include "easycrash/crash/shard.hpp"
#include "easycrash/crash/status.hpp"
#include "easycrash/runtime/runtime.hpp"
#include "easycrash/runtime/tracked.hpp"

namespace rt = easycrash::runtime;
namespace cr = easycrash::crash;
namespace ms = easycrash::memsim;

namespace {

/// Minimal two-region accumulator app (campaign_test's ProbeApp shape):
/// enough structure for S1-S4 outcomes without being slow.
class ShardProbeApp final : public rt::IApp {
 public:
  [[nodiscard]] const rt::AppInfo& info() const override { return info_; }

  void setup(rt::Runtime& runtime) override {
    runtime.declareRegionCount(2);
    data_ = rt::TrackedArray<std::int64_t>(runtime, "data", kCells, true);
    sum_ = rt::TrackedScalar<std::int64_t>(runtime, "sum", true);
  }

  void initialize(rt::Runtime& runtime) override {
    (void)runtime;
    for (int i = 0; i < kCells; ++i) data_.set(i, 0);
    sum_.set(0);
  }

  void iterate(rt::Runtime& runtime, int iteration) override {
    (void)iteration;
    {
      rt::RegionScope region(runtime, 0);
      for (int i = 0; i < kCells; ++i) data_.set(i, data_.get(i) + 1);
      region.iterationEnd();
    }
    {
      rt::RegionScope region(runtime, 1);
      std::int64_t total = 0;
      for (int i = 0; i < kCells; ++i) total += data_.get(i);
      sum_.set(total);
      region.iterationEnd();
    }
  }

  [[nodiscard]] int nominalIterations() const override { return kIterations; }

  [[nodiscard]] bool converged(rt::Runtime& runtime, int iteration) override {
    (void)runtime;
    return iteration >= kIterations;
  }

  [[nodiscard]] rt::VerifyOutcome verify(rt::Runtime& runtime) override {
    (void)runtime;
    rt::VerifyOutcome out;
    std::int64_t total = 0;
    for (int i = 0; i < kCells; ++i) total += data_.peek(i);
    out.metric = static_cast<double>(total);
    out.pass = total == static_cast<std::int64_t>(kIterations) * kCells;
    return out;
  }

 private:
  static constexpr int kCells = 256;
  static constexpr int kIterations = 6;
  rt::AppInfo info_{"shard-probe", "sharding test app"};
  rt::TrackedArray<std::int64_t> data_;
  rt::TrackedScalar<std::int64_t> sum_;
};

rt::AppFactory probeFactory() {
  return [] { return std::make_unique<ShardProbeApp>(); };
}

cr::CampaignConfig tinyConfig(int tests) {
  cr::CampaignConfig config;
  config.numTests = tests;
  config.cache = ms::CacheConfig::tiny();
  return config;
}

std::string tempPath(const char* name) { return testing::TempDir() + name; }

std::string readFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is) << "cannot open " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Run one shard (or the unsharded campaign when count == 1) of the probe
/// campaign, journaling to `path`. Returns the in-process result.
cr::CampaignResult runShard(const std::string& path, int tests, int index,
                            int count, bool sweep = true, int threads = 1) {
  std::remove(path.c_str());
  auto config = tinyConfig(tests);
  config.sweep = sweep;
  config.threads = threads;
  config.shard.index = index;
  config.shard.count = count;
  config.resilience.isolate = true;
  config.resilience.journalPath = path;
  return cr::CampaignRunner(probeFactory(), config).run();
}

struct StopFlagGuard {
  StopFlagGuard() { cr::clearStopFlag(); }
  ~StopFlagGuard() { cr::clearStopFlag(); }
};

}  // namespace

// ---- Partition function -----------------------------------------------------

TEST(ShardTest, PartitionAssignsEveryTrialToExactlyOneShard) {
  for (const int count : {1, 2, 3, 4, 7}) {
    for (std::size_t t = 0; t < 100; ++t) {
      int owners = 0;
      for (int index = 0; index < count; ++index) {
        cr::ShardConfig shard;
        shard.index = index;
        shard.count = count;
        if (shard.owns(t)) ++owners;
      }
      EXPECT_EQ(owners, 1) << "trial " << t << " with k=" << count;
    }
  }
}

TEST(ShardTest, UnshardedConfigOwnsEverything) {
  const cr::ShardConfig shard;  // defaults: 0/1
  EXPECT_FALSE(shard.active());
  for (std::size_t t = 0; t < 50; ++t) EXPECT_TRUE(shard.owns(t));
}

TEST(ShardTest, CampaignHashIgnoresShardCoordinates) {
  cr::JournalHeader a;
  a.app = "probe";
  a.seed = 7;
  a.tests = 40;
  a.planFingerprint = 1234;
  a.windowAccesses = 9999;
  cr::JournalHeader b = a;
  b.shardIndex = 2;
  b.shardCount = 4;
  EXPECT_EQ(cr::campaignHash(a), cr::campaignHash(b));
  b.seed = 8;
  EXPECT_NE(cr::campaignHash(a), cr::campaignHash(b));
}

// ---- Byte-identity ----------------------------------------------------------

TEST(ShardTest, MergedShardJournalsMatchUnshardedRunByteForByte) {
  const std::string ref = tempPath("shard_ref.jsonl");
  const auto fresh = runShard(ref, 30, 0, 1);
  const std::string refBytes = readFile(ref);

  // The partition must hold whichever evaluator/thread mix each shard used.
  struct Mix {
    bool sweep;
    int threads;
  };
  const Mix mixes[] = {{true, 1}, {false, 2}};
  for (const auto& mix : mixes) {
    std::vector<std::string> paths;
    for (int index = 0; index < 2; ++index) {
      const std::string path =
          tempPath(("shard_half" + std::to_string(index) + ".jsonl").c_str());
      const auto part = runShard(path, 30, index, 2, mix.sweep, mix.threads);
      EXPECT_EQ(part.tests.size(), 15u);
      paths.push_back(path);
    }
    const auto merge = cr::mergeShardJournals(paths);
    EXPECT_TRUE(merge.complete());
    EXPECT_EQ(merge.shardsSeen.size(), 2u);
    EXPECT_EQ(cr::renderMergedJournal(merge), refBytes)
        << "sweep=" << mix.sweep << " threads=" << mix.threads;

    std::ostringstream csv;
    cr::writeCampaignCsv(fresh, csv);
    EXPECT_EQ(cr::renderMergedCsv(merge), csv.str());
    for (const auto& path : paths) std::remove(path.c_str());
  }
  std::remove(ref.c_str());
}

TEST(ShardTest, MergeIsCommutativeAndIdempotent) {
  std::vector<std::string> paths;
  for (int index = 0; index < 3; ++index) {
    const std::string path =
        tempPath(("shard_ci" + std::to_string(index) + ".jsonl").c_str());
    runShard(path, 21, index, 3);
    paths.push_back(path);
  }
  const std::string forward =
      cr::renderMergedJournal(cr::mergeShardJournals(paths));
  const std::string reversed = cr::renderMergedJournal(
      cr::mergeShardJournals({paths[2], paths[0], paths[1]}));
  EXPECT_EQ(forward, reversed);

  // Feeding a journal twice changes nothing (last-wins over a disjoint set).
  const std::string doubled = cr::renderMergedJournal(
      cr::mergeShardJournals({paths[0], paths[1], paths[1], paths[2]}));
  EXPECT_EQ(forward, doubled);

  // Merging the merged (now unsharded) journal is the k=1 identity.
  const std::string mergedPath = tempPath("shard_ci_merged.jsonl");
  cr::atomicWriteFile(mergedPath, forward);
  const auto again = cr::mergeShardJournals({mergedPath});
  EXPECT_EQ(cr::renderMergedJournal(again), forward);
  EXPECT_EQ(again.shardCount, 1);

  // The deterministic metrics projection is also layout-independent: the
  // k=3 merge and the k=1 re-merge project byte-identical JSON.
  EXPECT_EQ(cr::renderMergedMetrics(cr::mergeShardJournals(paths)),
            cr::renderMergedMetrics(again));

  for (const auto& path : paths) std::remove(path.c_str());
  std::remove(mergedPath.c_str());
}

// ---- Rejection --------------------------------------------------------------

TEST(ShardTest, MergeRejectsJournalsFromDifferentCampaigns) {
  const std::string a = tempPath("shard_seed1.jsonl");
  const std::string b = tempPath("shard_seed2.jsonl");
  runShard(a, 20, 0, 2);
  {
    std::remove(b.c_str());
    auto config = tinyConfig(20);
    config.seed = 99;  // different campaign
    config.shard.index = 1;
    config.shard.count = 2;
    config.resilience.isolate = true;
    config.resilience.journalPath = b;
    (void)cr::CampaignRunner(probeFactory(), config).run();
  }
  EXPECT_THROW(
      {
        try {
          (void)cr::mergeShardJournals({a, b});
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("seed"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(ShardTest, MergeRejectsTamperedCampaignFingerprint) {
  const std::string path = tempPath("shard_tamper.jsonl");
  runShard(path, 20, 0, 2);
  std::string bytes = readFile(path);
  const auto pos = bytes.find("\"campaign_hash\":\"");
  ASSERT_NE(pos, std::string::npos);
  // Flip the last fingerprint digit downward: a different value with the
  // same digit count, so it still parses as a 64-bit decimal and reaches
  // the fingerprint recomputation.
  const auto digit = bytes.find('"', pos + std::string("\"campaign_hash\":\"").size()) - 1;
  bytes[digit] = bytes[digit] == '0' ? '5' : static_cast<char>(bytes[digit] - 1);
  cr::atomicWriteFile(path, bytes);
  EXPECT_THROW(
      {
        try {
          (void)cr::mergeShardJournals({path});
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
  std::remove(path.c_str());
}

TEST(ShardTest, MergeRejectsForeignTrialsAndMixedShardCounts) {
  const std::string s0 = tempPath("shard_mix0.jsonl");
  const std::string s1 = tempPath("shard_mix1.jsonl");
  const std::string unsharded = tempPath("shard_mix_ref.jsonl");
  runShard(s0, 20, 0, 2);
  runShard(s1, 20, 1, 2);
  runShard(unsharded, 20, 0, 1);

  // A sharded and an unsharded journal never merge.
  EXPECT_THROW((void)cr::mergeShardJournals({s0, unsharded}), std::runtime_error);

  // Relabel shard 1's journal as shard 0: its trials (odd indices) are not
  // owned by shard 0, so the ownership check fires. The campaign fingerprint
  // deliberately ignores shard coordinates — this is exactly the mis-copied
  // journal it cannot catch, and the ownership check must.
  std::string bytes = readFile(s1);
  const auto pos = bytes.find("\"shard\":1");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos + std::string("\"shard\":").size()] = '0';
  cr::atomicWriteFile(s1, bytes);
  EXPECT_THROW(
      {
        try {
          (void)cr::mergeShardJournals({s0, s1});
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("not owned"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);

  std::remove(s0.c_str());
  std::remove(s1.c_str());
  std::remove(unsharded.c_str());
}

// ---- Cross-shard resume -----------------------------------------------------

TEST(ShardTest, InterruptedShardResumesAndMergesByteIdentical) {
  StopFlagGuard guard;
  const std::string ref = tempPath("shard_resume_ref.jsonl");
  const std::string s0 = tempPath("shard_resume0.jsonl");
  const std::string s1 = tempPath("shard_resume1.jsonl");
  runShard(ref, 30, 0, 1);
  runShard(s1, 30, 1, 2);

  // Interrupt shard 0 mid-flight; the partial journal must merge (decided
  // counts only), then the resumed shard must complete the identical bytes.
  std::remove(s0.c_str());
  auto config = tinyConfig(30);
  config.shard.index = 0;
  config.shard.count = 2;
  config.resilience.isolate = true;
  config.resilience.journalPath = s0;
  config.resilience.journalFlushEvery = 2;
  config.resilience.stopAfterTrials = 5;
  const auto partial = cr::CampaignRunner(probeFactory(), config).run();
  EXPECT_TRUE(partial.interrupted);
  EXPECT_LT(partial.tests.size(), 15u);

  const auto partialMerge = cr::mergeShardJournals({s0, s1});
  EXPECT_FALSE(partialMerge.complete());
  EXPECT_LT(partialMerge.trials.size() + partialMerge.failures.size(), 30u);

  cr::clearStopFlag();
  config.resilience.stopAfterTrials = 0;
  config.resilience.resumePath = s0;
  const auto resumed = cr::CampaignRunner(probeFactory(), config).run();
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.tests.size(), 15u);

  const auto merge = cr::mergeShardJournals({s0, s1});
  EXPECT_TRUE(merge.complete());
  EXPECT_EQ(cr::renderMergedJournal(merge), readFile(ref));

  std::remove(ref.c_str());
  std::remove(s0.c_str());
  std::remove(s1.c_str());
}

// ---- Status -----------------------------------------------------------------

TEST(ShardTest, StatusSnapshotCarriesShardCoordinates) {
  cr::CampaignStatus status;
  status.app = "probe";
  EXPECT_NE(cr::serializeStatus(status).find("\"shard\":\"0/1\""),
            std::string::npos);
  status.shardIndex = 2;
  status.shardCount = 4;
  EXPECT_NE(cr::serializeStatus(status).find("\"shard\":\"2/4\""),
            std::string::npos);
}
