// Telemetry subsystem: registry semantics under concurrency, JSONL sink
// escaping/well-formedness, scoped-timer nesting, log-level filtering, and
// the MemEvents::delta monotonicity debug assertion.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "easycrash/crash/campaign.hpp"
#include "easycrash/memsim/events.hpp"
#include "easycrash/runtime/runtime.hpp"
#include "easycrash/runtime/tracked.hpp"
#include "easycrash/telemetry/json.hpp"
#include "easycrash/telemetry/log.hpp"
#include "easycrash/telemetry/metrics.hpp"
#include "easycrash/telemetry/progress.hpp"
#include "easycrash/telemetry/timer.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace easycrash {
namespace {

namespace tel = telemetry;

/// Minimal deterministic app for campaign-level telemetry tests: one region,
/// one tracked array, exact-sum verification.
class TinyApp final : public runtime::IApp {
 public:
  static constexpr int kCells = 64;
  static constexpr int kIterations = 4;

  [[nodiscard]] const runtime::AppInfo& info() const override { return info_; }

  void setup(runtime::Runtime& rt) override {
    rt.declareRegionCount(1);
    data_ = runtime::TrackedArray<std::int64_t>(rt, "data", kCells, true);
  }

  void initialize(runtime::Runtime& rt) override {
    (void)rt;
    for (int i = 0; i < kCells; ++i) data_.set(i, i);
  }

  void iterate(runtime::Runtime& rt, int iteration) override {
    (void)iteration;
    runtime::RegionScope region(rt, 0);
    for (int i = 0; i < kCells; ++i) data_.set(i, data_.get(i) + 1);
    region.iterationEnd();
  }

  [[nodiscard]] int nominalIterations() const override { return kIterations; }

  [[nodiscard]] runtime::VerifyOutcome verify(runtime::Runtime& rt) override {
    (void)rt;
    runtime::VerifyOutcome out;
    out.pass = true;
    for (int i = 0; i < kCells; ++i) {
      out.pass = out.pass && data_.peek(i) >= i;
    }
    out.metric = static_cast<double>(data_.peek(0));
    return out;
  }

 private:
  runtime::AppInfo info_{"tiny", "telemetry test app"};
  runtime::TrackedArray<std::int64_t> data_;
};

runtime::AppFactory tinyFactory() {
  return [] { return std::make_unique<TinyApp>(); };
}

TEST(Metrics, CounterConcurrentIncrementsAreExact) {
  tel::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 100000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.add();
    });
  }
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(Metrics, HistogramBucketSemantics) {
  tel::Histogram hist({1.0, 10.0, 100.0});
  hist.observe(0.5);    // <= 1        -> bucket 0
  hist.observe(1.0);    // boundary is inclusive -> bucket 0
  hist.observe(5.0);    // (1, 10]     -> bucket 1
  hist.observe(100.0);  // (10, 100]   -> bucket 2
  hist.observe(1e6);    // overflow    -> +Inf bucket
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
  EXPECT_EQ(hist.bucketCount(0), 2u);
  EXPECT_EQ(hist.bucketCount(1), 1u);
  EXPECT_EQ(hist.bucketCount(2), 1u);
  EXPECT_EQ(hist.bucketCount(3), 1u);
}

TEST(Metrics, HistogramConcurrentObservationsAreExact) {
  tel::Histogram hist(tel::Histogram::exponentialBounds(1.0, 2.0, 8));
  constexpr int kThreads = 4;
  constexpr int kObsPerThread = 50000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&hist, t] {
      for (int i = 0; i < kObsPerThread; ++i) {
        hist.observe(static_cast<double>((t + i) % 300));
      }
    });
  }
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kObsPerThread);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= hist.bounds().size(); ++i) {
    total += hist.bucketCount(i);
  }
  EXPECT_EQ(total, hist.count());
}

TEST(Metrics, HistogramConcurrentSumStaysExactForIntegerValues) {
  // fetch_add on the sum is exact as long as every observation is an
  // integer-valued double and the running total stays within 2^53 — the
  // regime the phase-timing histograms live in (whole microseconds).
  tel::Histogram hist(tel::Histogram::exponentialBounds(1.0, 4.0, 6));
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&hist] {
      for (int i = 0; i < kObsPerThread; ++i) {
        hist.observe(static_cast<double>(i % 1000));
      }
    });
  }
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kObsPerThread);
  // Each thread contributes 20 full cycles of sum(0..999) = 499500.
  const double expected = static_cast<double>(kThreads) * 20 * 499500.0;
  EXPECT_DOUBLE_EQ(hist.sum(), expected);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= hist.bounds().size(); ++i) {
    total += hist.bucketCount(i);
  }
  EXPECT_EQ(total, hist.count());
}

TEST(Metrics, WriteJsonKeyOrderIsRegistrationOrderIndependent) {
  // Two registries, same instruments registered in opposite orders, must
  // export byte-identical JSON — the determinism `nvct report` and the CI
  // byte-diff depend on.
  tel::MetricsRegistry forward;
  forward.counter("a.first").add(1);
  forward.counter("b.second").add(2);
  forward.gauge("g.low").set(0.5);
  forward.gauge("g.high").set(1.5);
  forward.histogram("h.x", {1.0, 2.0}).observe(1.5);

  tel::MetricsRegistry reverse;
  reverse.histogram("h.x", {1.0, 2.0}).observe(1.5);
  reverse.gauge("g.high").set(1.5);
  reverse.gauge("g.low").set(0.5);
  reverse.counter("b.second").add(2);
  reverse.counter("a.first").add(1);

  std::ostringstream a;
  std::ostringstream b;
  forward.writeJson(a);
  reverse.writeJson(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Metrics, WriteJsonSplicesExtraSection) {
  tel::MetricsRegistry registry;
  registry.counter("c").add(7);
  std::ostringstream os;
  registry.writeJson(os, "\"profile\": {\"runs\": 2}");
  std::string error;
  const auto doc = tel::json::parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error << " in: " << os.str();
  const auto* profile = doc->find("profile");
  ASSERT_NE(profile, nullptr);
  ASSERT_TRUE(profile->isObject());
  EXPECT_DOUBLE_EQ(profile->find("runs")->number, 2.0);
  EXPECT_DOUBLE_EQ(doc->find("counters")->find("c")->number, 7.0);
}

TEST(Metrics, RegistryReturnsStableInstrumentsAndExportsJson) {
  auto& registry = tel::MetricsRegistry::instance();
  tel::Counter& a = registry.counter("test.registry.counter");
  tel::Counter& b = registry.counter("test.registry.counter");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(42);
  registry.gauge("test.registry.gauge").set(2.5);
  auto& hist = registry.histogram("test.registry.hist", {1.0, 2.0});
  hist.reset();
  hist.observe(1.5);

  std::ostringstream os;
  registry.writeJson(os);
  std::string error;
  const auto doc = tel::json::parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const auto* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const auto* counter = counters->find("test.registry.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->number, 42.0);
  const auto* gauges = doc->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("test.registry.gauge")->number, 2.5);
  const auto* hists = doc->find("histograms");
  ASSERT_NE(hists, nullptr);
  const auto* h = hists->find("test.registry.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("count")->number, 1.0);
  const auto* buckets = h->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->array.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(buckets->array.back().find("le")->string, "+Inf");
}

class TraceSinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tel::TraceSink::instance().clearCommonFields();
    tel::TraceSink::instance().attachStream(&buffer_);
  }
  void TearDown() override { tel::TraceSink::instance().close(); }

  /// Parse every JSONL line written so far; fails the test on a bad line.
  std::vector<tel::json::Value> lines() {
    std::vector<tel::json::Value> out;
    std::istringstream is(buffer_.str());
    std::string line;
    while (std::getline(is, line)) {
      std::string error;
      auto value = tel::json::parse(line, &error);
      EXPECT_TRUE(value.has_value()) << error << " in line: " << line;
      if (value) out.push_back(std::move(*value));
    }
    return out;
  }

  std::ostringstream buffer_;
};

TEST_F(TraceSinkTest, EnablesAndDisablesTracing) {
  if (!tel::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  EXPECT_TRUE(tel::tracing());
  tel::TraceSink::instance().close();
  EXPECT_FALSE(tel::tracing());
}

TEST_F(TraceSinkTest, EventsAreWellFormedJsonl) {
  tel::TraceEvent("alpha").field("k", std::uint64_t{7}).emit();
  tel::TraceEvent("beta").field("pi", 3.25).field("flag", true).emit();
  const auto parsed = lines();
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].find("type")->string, "alpha");
  EXPECT_DOUBLE_EQ(parsed[0].find("k")->number, 7.0);
  EXPECT_GE(parsed[0].find("ts_ns")->number, 0.0);
  EXPECT_DOUBLE_EQ(parsed[1].find("pi")->number, 3.25);
  EXPECT_TRUE(parsed[1].find("flag")->boolean);
  // Timestamps are monotonic across events.
  EXPECT_LE(parsed[0].find("ts_ns")->number, parsed[1].find("ts_ns")->number);
}

TEST_F(TraceSinkTest, EscapesHostileStrings) {
  const std::string hostile = "quote\" back\\slash \n\r\t ctrl\x01 unicode\xc3\xa9";
  tel::TraceEvent("nasty").field("payload", hostile).field("\"key\n\"", "v").emit();
  const auto parsed = lines();
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].find("payload")->string, hostile);  // exact round-trip
  EXPECT_EQ(parsed[0].find("\"key\n\"")->string, "v");
}

TEST_F(TraceSinkTest, CommonFieldsAppearOnEveryEvent) {
  tel::TraceSink::instance().setCommonField("app", "cg");
  tel::TraceEvent("one").emit();
  tel::TraceEvent("two").field("x", 1).emit();
  const auto parsed = lines();
  ASSERT_EQ(parsed.size(), 2u);
  for (const auto& event : parsed) {
    ASSERT_NE(event.find("app"), nullptr);
    EXPECT_EQ(event.find("app")->string, "cg");
  }
}

TEST_F(TraceSinkTest, ConcurrentEmitsStayLineAtomic) {
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 500;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        tel::TraceEvent("spam").field("thread", t).field("i", i).emit();
      }
    });
  }
  for (auto& thread : pool) thread.join();
  const auto parsed = lines();  // every line must still parse
  EXPECT_EQ(parsed.size(), static_cast<std::size_t>(kThreads) * kEventsPerThread);
}

TEST(ScopedTimer, NestedTimersObserveContainedSpans) {
  tel::Histogram outer({1e9});
  tel::Histogram inner({1e9});
  {
    tel::ScopedTimer outerTimer(outer);
    {
      tel::ScopedTimer innerTimer(inner);
      // Make the inner span measurable.
      volatile double sink = 0.0;
      for (int i = 0; i < 10000; ++i) sink = sink + i;
    }
    EXPECT_EQ(inner.count(), 1u);  // inner observed before outer closes
    EXPECT_EQ(outer.count(), 0u);
  }
  EXPECT_EQ(outer.count(), 1u);
  // The outer span contains the inner one.
  EXPECT_GE(outer.sum(), inner.sum());
}

TEST(Log, LevelFilteringAndParsing) {
  const auto saved = tel::logLevel();
  tel::setLogLevel(tel::LogLevel::Warn);
  EXPECT_TRUE(tel::logEnabled(tel::LogLevel::Error));
  EXPECT_TRUE(tel::logEnabled(tel::LogLevel::Warn));
  EXPECT_FALSE(tel::logEnabled(tel::LogLevel::Info));
  EXPECT_FALSE(tel::logEnabled(tel::LogLevel::Debug));
  EXPECT_EQ(tel::parseLogLevel("DEBUG"), tel::LogLevel::Debug);
  EXPECT_EQ(tel::parseLogLevel("warning"), tel::LogLevel::Warn);
  EXPECT_FALSE(tel::parseLogLevel("shout").has_value());
  tel::setLogLevel(saved);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_FALSE(tel::json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(tel::json::parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(tel::json::parse("{} trailing").has_value());
  EXPECT_FALSE(tel::json::parse("\"unterminated").has_value());
  EXPECT_FALSE(tel::json::parse("01").has_value());
  EXPECT_TRUE(tel::json::parse("{\"u\":\"\\u00e9\",\"n\":-1.5e3}").has_value());
}

TEST(MemEventsDelta, DebugAssertsMonotonicity) {
  memsim::MemEvents later;
  later.nvmBlockWrites = 5;
  memsim::MemEvents earlier;
  earlier.nvmBlockWrites = 9;  // "earlier" snapshot ahead of "later": a reset
#ifndef NDEBUG
  EXPECT_THROW((void)later.delta(earlier), std::logic_error);
#else
  // Release builds compile the check out; the subtraction still wraps, which
  // is exactly why the debug assertion exists.
  (void)later.delta(earlier);
#endif
  // The well-ordered direction always works.
  const auto d = earlier.delta(later);
  EXPECT_EQ(d.nvmBlockWrites, 4u);
}

TEST(Progress, RendersTallyAndFinishes) {
  std::ostringstream os;
  tel::ProgressMeter meter("unit", 3, &os);
  meter.update(1, "S1:1");
  meter.update(3, "S1:2 S3:1");
  meter.finish("S1:2 S3:1");
  const std::string out = os.str();
  EXPECT_NE(out.find("unit"), std::string::npos);
  EXPECT_NE(out.find("3/3"), std::string::npos);
  EXPECT_NE(out.find("S1:2 S3:1"), std::string::npos);
  EXPECT_EQ(out.back(), '\n');

  // A null stream disables the meter entirely.
  tel::ProgressMeter off("off", 3, nullptr);
  off.update(1, "x");
  off.finish("x");
}

// The acceptance-level contract: the memsim.* registry counters are an exact
// mirror of the MemEvents totals accumulated by the campaign's simulated runs.
TEST(CampaignTelemetry, GoldenRunCountersEqualMemEventsExactly) {
  auto& reg = tel::MetricsRegistry::instance();
  reg.reset();

  crash::CampaignConfig config;
  config.numTests = 1;
  config.cache = memsim::CacheConfig::tiny();
  config.appLabel = "tiny";
  const crash::CampaignRunner runner(tinyFactory(), config);
  const auto golden = runner.goldenRun();

  EXPECT_EQ(reg.counter("memsim.loads").value(), golden.events.loads);
  EXPECT_EQ(reg.counter("memsim.stores").value(), golden.events.stores);
  EXPECT_EQ(reg.counter("memsim.nvmBlockReads").value(),
            golden.events.nvmBlockReads);
  EXPECT_EQ(reg.counter("memsim.nvmBlockWrites").value(),
            golden.events.nvmBlockWrites);
  EXPECT_EQ(reg.counter("memsim.flushDirty").value(), golden.events.flushDirty);
  EXPECT_EQ(reg.counter("memsim.flushClean").value(), golden.events.flushClean);
  EXPECT_EQ(reg.counter("memsim.flushNonResident").value(),
            golden.events.flushNonResident);
  EXPECT_EQ(reg.counter("memsim.flushInducedNvmWrites").value(),
            golden.events.flushInducedNvmWrites);
}

TEST(CampaignTelemetry, FullCampaignRecordsTrialsAndTraceEvents) {
  auto& reg = tel::MetricsRegistry::instance();
  reg.reset();

  std::ostringstream trace;
  auto& sink = tel::TraceSink::instance();
  sink.clearCommonFields();
  sink.setCommonField("app", "tiny");
  sink.attachStream(&trace);

  crash::CampaignConfig config;
  config.numTests = 3;
  config.cache = memsim::CacheConfig::tiny();
  config.appLabel = "tiny";
  const auto campaign = crash::CampaignRunner(tinyFactory(), config).run();
  sink.close();

  EXPECT_EQ(reg.counter("campaign.trials").value(), 3u);
  // Every trial runs at least a crashing run; counters strictly exceed the
  // golden totals alone.
  EXPECT_GT(reg.counter("memsim.loads").value(), campaign.golden.events.loads);
  EXPECT_GE(reg.counter("memsim.nvmBlockWrites").value(),
            campaign.golden.events.nvmBlockWrites);
  const std::uint64_t responses = reg.counter("campaign.responses.s1").value() +
                                  reg.counter("campaign.responses.s2").value() +
                                  reg.counter("campaign.responses.s3").value() +
                                  reg.counter("campaign.responses.s4").value();
  EXPECT_EQ(responses, 3u);

  // The trace carries the campaign lifecycle with the app tag on every line
  // (only when tracing is compiled in; the metrics above work either way).
  if (!tel::kTraceCompiledIn) return;
  std::istringstream lines(trace.str());
  std::string line;
  std::size_t total = 0;
  std::size_t trialEnds = 0;
  bool sawBegin = false;
  bool sawEnd = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::string error;
    const auto value = tel::json::parse(line, &error);
    ASSERT_TRUE(value) << error << " in: " << line;
    ASSERT_TRUE(value->isObject());
    const auto* app = value->find("app");
    ASSERT_NE(app, nullptr) << line;
    EXPECT_EQ(app->string, "tiny");
    const auto* type = value->find("type");
    ASSERT_NE(type, nullptr);
    if (type->string == "trial_end") ++trialEnds;
    if (type->string == "campaign_begin") sawBegin = true;
    if (type->string == "campaign_end") sawEnd = true;
    ++total;
  }
  EXPECT_GT(total, 0u);
  EXPECT_EQ(trialEnds, 3u);
  EXPECT_TRUE(sawBegin);
  EXPECT_TRUE(sawEnd);
}

}  // namespace
}  // namespace easycrash
