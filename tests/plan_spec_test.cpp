// Tests for the NVCT plan-spec parser and formatter.
#include <memory>

#include <gtest/gtest.h>

#include "easycrash/apps/registry.hpp"
#include "easycrash/crash/plan_spec.hpp"
#include "easycrash/runtime/runtime.hpp"

namespace cr = easycrash::crash;
namespace rt = easycrash::runtime;

namespace {

struct MgProbe {
  MgProbe() {
    app = easycrash::apps::findBenchmark("mg").factory();
    app->setup(runtime);
  }
  rt::Runtime runtime;
  std::unique_ptr<rt::IApp> app;
};

}  // namespace

TEST(PlanSpec, EmptyAndNoneGiveEmptyPlan) {
  MgProbe probe;
  EXPECT_TRUE(cr::parsePlanSpec("", probe.runtime).empty());
  EXPECT_TRUE(cr::parsePlanSpec("none", probe.runtime).empty());
}

TEST(PlanSpec, MainLoopDirective) {
  MgProbe probe;
  const auto plan = cr::parsePlanSpec("u@main", probe.runtime);
  ASSERT_EQ(plan.points.size(), 1u);
  const auto& directive = plan.points.at(rt::kMainLoopEnd);
  ASSERT_EQ(directive.objects.size(), 1u);
  EXPECT_EQ(probe.runtime.object(directive.objects[0]).name, "u");
  EXPECT_EQ(directive.everyN, 1u);
}

TEST(PlanSpec, RegionWithFrequency) {
  MgProbe probe;
  const auto plan = cr::parsePlanSpec("u+r@R3:4", probe.runtime);
  const auto& directive = plan.points.at(2);  // R3 is 1-based
  ASSERT_EQ(directive.objects.size(), 2u);
  EXPECT_EQ(directive.everyN, 4u);
}

TEST(PlanSpec, MultipleDirectives) {
  MgProbe probe;
  const auto plan = cr::parsePlanSpec("u@main,r@R1:2", probe.runtime);
  EXPECT_EQ(plan.points.size(), 2u);
  EXPECT_TRUE(plan.points.count(rt::kMainLoopEnd));
  EXPECT_TRUE(plan.points.count(0));
}

TEST(PlanSpec, CandidatesKeywordExpands) {
  MgProbe probe;
  const auto plan = cr::parsePlanSpec("candidates@main", probe.runtime);
  EXPECT_EQ(plan.points.at(rt::kMainLoopEnd).objects.size(),
            probe.runtime.candidateObjects().size());
}

TEST(PlanSpec, UnknownObjectListsKnownNames) {
  MgProbe probe;
  try {
    (void)cr::parsePlanSpec("bogus@main", probe.runtime);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("u"), std::string::npos);
  }
}

TEST(PlanSpec, SyntaxErrorsThrow) {
  MgProbe probe;
  EXPECT_THROW((void)cr::parsePlanSpec("u", probe.runtime), std::runtime_error);
  EXPECT_THROW((void)cr::parsePlanSpec("u@R0", probe.runtime), std::runtime_error);
  EXPECT_THROW((void)cr::parsePlanSpec("u@elsewhere", probe.runtime),
               std::runtime_error);
  EXPECT_THROW((void)cr::parsePlanSpec("u@main:0", probe.runtime),
               std::runtime_error);
  EXPECT_THROW((void)cr::parsePlanSpec("@main", probe.runtime), std::runtime_error);
}

TEST(PlanSpec, RoundTripsThroughFormat) {
  MgProbe probe;
  const std::string spec = "u@main,u+r@R3:4";
  const auto plan = cr::parsePlanSpec(spec, probe.runtime);
  const std::string formatted = cr::formatPlanSpec(plan, probe.runtime);
  const auto reparsed = cr::parsePlanSpec(formatted, probe.runtime);
  ASSERT_EQ(reparsed.points.size(), plan.points.size());
  for (const auto& [point, directive] : plan.points) {
    const auto& other = reparsed.points.at(point);
    EXPECT_EQ(other.objects, directive.objects);
    EXPECT_EQ(other.everyN, directive.everyN);
  }
}

TEST(PlanSpec, FormatEmptyPlan) {
  MgProbe probe;
  EXPECT_EQ(cr::formatPlanSpec({}, probe.runtime), "none");
}
