// Campaign flight recorder: per-object access/wear profiles, phase-span
// trace events, live status snapshots, the ETA baseline fix, and the
// deterministic `nvct report` renderer (docs/OBSERVABILITY.md).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "easycrash/crash/campaign.hpp"
#include "easycrash/crash/flight_report.hpp"
#include "easycrash/crash/status.hpp"
#include "easycrash/memsim/config.hpp"
#include "easycrash/runtime/runtime.hpp"
#include "easycrash/runtime/tracked.hpp"
#include "easycrash/telemetry/json.hpp"
#include "easycrash/telemetry/metrics.hpp"
#include "easycrash/telemetry/phase_span.hpp"
#include "easycrash/telemetry/progress.hpp"
#include "easycrash/telemetry/trace.hpp"

namespace easycrash {
namespace {

namespace tel = telemetry;

std::string tempPath(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

/// Same shape as the telemetry test's TinyApp: one region, one tracked
/// array, enough cells to spill the tiny cache so NVM wear accumulates.
class RecorderApp final : public runtime::IApp {
 public:
  static constexpr int kCells = 256;
  static constexpr int kIterations = 4;

  [[nodiscard]] const runtime::AppInfo& info() const override { return info_; }

  void setup(runtime::Runtime& rt) override {
    rt.declareRegionCount(1);
    data_ = runtime::TrackedArray<std::int64_t>(rt, "data", kCells, true);
  }

  void initialize(runtime::Runtime& rt) override {
    (void)rt;
    for (int i = 0; i < kCells; ++i) data_.set(i, i);
  }

  void iterate(runtime::Runtime& rt, int iteration) override {
    (void)iteration;
    runtime::RegionScope region(rt, 0);
    for (int i = 0; i < kCells; ++i) data_.set(i, data_.get(i) + 1);
    region.iterationEnd();
  }

  [[nodiscard]] int nominalIterations() const override { return kIterations; }

  [[nodiscard]] runtime::VerifyOutcome verify(runtime::Runtime& rt) override {
    (void)rt;
    runtime::VerifyOutcome out;
    out.pass = true;
    for (int i = 0; i < kCells; ++i) {
      out.pass = out.pass && data_.peek(i) >= i;
    }
    out.metric = static_cast<double>(data_.peek(0));
    return out;
  }

 private:
  runtime::AppInfo info_{"recorder", "flight recorder test app"};
  runtime::TrackedArray<std::int64_t> data_;
};

runtime::AppFactory recorderFactory() {
  return [] { return std::make_unique<RecorderApp>(); };
}

std::uint64_t sumOf(const std::vector<std::uint64_t>& bins) {
  return std::accumulate(bins.begin(), bins.end(), std::uint64_t{0});
}

TEST(AccessProfile, ObjectBinsFoldExactlyToTotals) {
  runtime::Runtime rt(memsim::CacheConfig::tiny());
  rt.enableProfile();
  EXPECT_EQ(rt.profiling(), tel::kTraceCompiledIn);

  RecorderApp app;
  app.setup(rt);
  app.initialize(rt);
  for (int i = 0; i < RecorderApp::kIterations; ++i) app.iterate(rt, i);

  const auto profiles = rt.objectProfiles(4);
  if (!tel::kTraceCompiledIn) {
    // The recorder compiles out: no profiling, no profiles.
    EXPECT_TRUE(profiles.empty());
    return;
  }
  ASSERT_FALSE(profiles.empty());
  bool sawAccesses = false;
  bool sawWear = false;
  for (const auto& profile : profiles) {
    // The spatial bins are a partition of the object's counters: they must
    // sum back to the exported totals exactly.
    EXPECT_EQ(sumOf(profile.accessBins), profile.accesses) << profile.name;
    EXPECT_EQ(sumOf(profile.wearBins), profile.nvmWrites) << profile.name;
    EXPECT_LE(profile.accessBins.size(), 4u);
    sawAccesses = sawAccesses || profile.accesses > 0;
    sawWear = sawWear || profile.nvmWrites > 0;
  }
  EXPECT_TRUE(sawAccesses);
  // 256 int64 cells spill the tiny cache, so evictions wrote NVM blocks.
  EXPECT_TRUE(sawWear);
}

TEST(AccessProfile, CampaignAccumulatesAcrossRuns) {
  crash::CampaignConfig config;
  config.numTests = 2;
  config.cache = memsim::CacheConfig::tiny();
  config.appLabel = "recorder";
  const auto campaign = crash::CampaignRunner(recorderFactory(), config).run();

  if (!tel::kTraceCompiledIn) {
    EXPECT_TRUE(campaign.profile.empty());
    return;
  }
  ASSERT_FALSE(campaign.profile.empty());
  // Golden run + at least one crashing run.
  EXPECT_GE(campaign.profile.runs, 2u);
  ASSERT_FALSE(campaign.profile.objects.empty());
  std::uint64_t accesses = 0;
  for (const auto& object : campaign.profile.objects) {
    accesses += object.accesses;
    EXPECT_EQ(sumOf(object.accessBins), object.accesses) << object.name;
    EXPECT_EQ(sumOf(object.wearBins), object.nvmWrites) << object.name;
  }
  EXPECT_GT(accesses, 0u);
  EXPECT_FALSE(campaign.profile.regionAccesses.empty());

  // The JSON encoding is parseable and carries the same totals.
  std::string error;
  const auto doc =
      tel::json::parse(crash::campaignProfileJson(campaign.profile), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const auto* objects = doc->find("objects");
  ASSERT_NE(objects, nullptr);
  EXPECT_EQ(objects->array.size(), campaign.profile.objects.size());

  // Profiling off ⇒ no profile, even with telemetry compiled in.
  config.profile = false;
  const auto bare = crash::CampaignRunner(recorderFactory(), config).run();
  EXPECT_TRUE(bare.profile.empty());
}

TEST(PhaseSpan, EmitsPairedEventsAndObservesDuration) {
  if (!tel::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  std::ostringstream buffer;
  auto& sink = tel::TraceSink::instance();
  sink.clearCommonFields();
  sink.attachStream(&buffer);
  tel::Histogram hist({1e9});
  {
    tel::PhaseSpan span("unit_phase", hist, /*trial=*/7);
  }
  sink.close();

  EXPECT_EQ(hist.count(), 1u);
  std::istringstream is(buffer.str());
  std::string line;
  std::vector<tel::json::Value> events;
  while (std::getline(is, line)) {
    std::string error;
    auto value = tel::json::parse(line, &error);
    ASSERT_TRUE(value.has_value()) << error << " in: " << line;
    events.push_back(std::move(*value));
  }
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].find("type")->string, "phase_begin");
  EXPECT_EQ(events[0].find("phase")->string, "unit_phase");
  EXPECT_DOUBLE_EQ(events[0].find("trial")->number, 7.0);
  EXPECT_EQ(events[1].find("type")->string, "phase_end");
  EXPECT_EQ(events[1].find("phase")->string, "unit_phase");
  EXPECT_GE(events[1].find("duration_ns")->number, 0.0);
}

TEST(Status, SerializeStatusRoundTrips) {
  crash::CampaignStatus status;
  status.app = "mg \"quoted\"";
  status.plannedTests = 100;
  status.decided = 42;
  status.resumed = 10;
  status.responses = {20, 5, 3, 12};
  status.failures = 2;
  status.retries = 4;
  status.timeouts = 1;
  status.queueDepth = 3;
  status.elapsedS = 12.5;
  status.trialsPerS = 2.56;
  status.etaS = 22.656;
  status.interrupted = true;
  status.seq = 9;

  std::string error;
  const auto doc = tel::json::parse(crash::serializeStatus(status), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("type")->string, "campaign_status");
  EXPECT_EQ(doc->find("app")->string, "mg \"quoted\"");
  EXPECT_DOUBLE_EQ(doc->find("tests")->number, 100.0);
  EXPECT_DOUBLE_EQ(doc->find("decided")->number, 42.0);
  EXPECT_DOUBLE_EQ(doc->find("resumed")->number, 10.0);
  EXPECT_DOUBLE_EQ(doc->find("s1")->number, 20.0);
  EXPECT_DOUBLE_EQ(doc->find("s4")->number, 12.0);
  EXPECT_DOUBLE_EQ(doc->find("failures")->number, 2.0);
  EXPECT_DOUBLE_EQ(doc->find("queue_depth")->number, 3.0);
  EXPECT_DOUBLE_EQ(doc->find("eta_s")->number, 22.656);
  EXPECT_TRUE(doc->find("interrupted")->boolean);
  EXPECT_FALSE(doc->find("done")->boolean);
  EXPECT_DOUBLE_EQ(doc->find("seq")->number, 9.0);
}

TEST(Status, WriterProducesFinalSnapshot) {
  const std::string path = tempPath("flight_status.json");
  crash::CampaignStatus sample;
  sample.app = "unit";
  sample.plannedTests = 5;
  sample.decided = 5;
  sample.responses = {5, 0, 0, 0};
  {
    crash::StatusWriter writer(path, std::chrono::milliseconds(10),
                               [&sample] { return sample; });
    writer.writeFinal(/*interrupted=*/false);
  }
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buffer;
  buffer << is.rdbuf();
  std::string error;
  const auto doc = tel::json::parse(buffer.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_TRUE(doc->find("done")->boolean);
  EXPECT_FALSE(doc->find("interrupted")->boolean);
  EXPECT_GE(doc->find("seq")->number, 1.0);
  std::remove(path.c_str());
}

TEST(Progress, EtaIgnoresResumedBaseline) {
  std::ostringstream os;
  tel::ProgressMeter meter("resume", 100, &os);
  meter.setBaseline(50);
  meter.update(50, "");  // all resumed — no rate basis yet, so no ETA
  EXPECT_EQ(os.str().find("eta"), std::string::npos);
  meter.finish("");

  std::ostringstream fresh;
  tel::ProgressMeter freshMeter("fresh", 100, &fresh);
  freshMeter.update(50, "");  // same count, no baseline — ETA renders
  EXPECT_NE(fresh.str().find("eta"), std::string::npos);
  freshMeter.finish("");
}

TEST(FlightReport, RendersDeterministicallyFromJournal) {
  const std::string journal = tempPath("flight_report_journal.jsonl");
  const std::string metrics = tempPath("flight_report_metrics.json");

  tel::MetricsRegistry::instance().reset();
  crash::CampaignConfig config;
  config.numTests = 3;
  config.cache = memsim::CacheConfig::tiny();
  config.appLabel = "recorder";
  config.resilience.journalPath = journal;
  const auto campaign = crash::CampaignRunner(recorderFactory(), config).run();
  {
    std::ostringstream os;
    std::string profileSection;
    if (!campaign.profile.empty()) {
      profileSection =
          "\"profile\": " + crash::campaignProfileJson(campaign.profile);
    }
    tel::MetricsRegistry::instance().writeJson(os, profileSection);
    std::ofstream out(metrics);
    out << os.str();
  }

  crash::FlightReportInputs inputs;
  inputs.journalPath = journal;
  inputs.metricsPath = metrics;
  const std::string once = crash::renderFlightReport(inputs);
  const std::string twice = crash::renderFlightReport(inputs);
  EXPECT_EQ(once, twice);
  EXPECT_NE(once.find("# nvct campaign report"), std::string::npos);
  EXPECT_NE(once.find("## Outcomes"), std::string::npos);
  EXPECT_NE(once.find("decided trials: 3"), std::string::npos);
  if (tel::kTraceCompiledIn) {
    // The metrics profile section feeds the heatmap.
    EXPECT_NE(once.find("## Access/wear profile"), std::string::npos);
    EXPECT_NE(once.find("`data`"), std::string::npos);
  }

  // The journal alone renders too (no optional inputs).
  crash::FlightReportInputs bare;
  bare.journalPath = journal;
  const std::string minimal = crash::renderFlightReport(bare);
  EXPECT_NE(minimal.find("## Outcomes"), std::string::npos);
  EXPECT_EQ(minimal.find("## Phase latencies"), std::string::npos);

  std::remove(journal.c_str());
  std::remove(metrics.c_str());
}

TEST(FlightReport, MissingJournalThrows) {
  crash::FlightReportInputs inputs;
  inputs.journalPath = tempPath("flight_report_nonexistent.jsonl");
  EXPECT_THROW((void)crash::renderFlightReport(inputs), std::runtime_error);
}

}  // namespace
}  // namespace easycrash
