// Tests for the adaptive region monitor (docs/INTERNALS.md "Adaptive region
// monitor"), in three layers:
//
// * unit: split/merge mechanics, region-count bounds, and the sampling
//   countdown's invariance across bulk/scalar/chunked access feeds;
// * campaign: the sampled pre-pass summary is seed-deterministic at any
//   --threads / --isolation, and full mode records no monitor state;
// * selection: the Spearman critical-object set computed from a sampled
//   campaign matches the full-tracking set on every bundled benchmark.
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "easycrash/apps/registry.hpp"
#include "easycrash/core/object_selection.hpp"
#include "easycrash/crash/campaign.hpp"
#include "easycrash/memsim/region_monitor.hpp"

namespace ec = easycrash;
namespace ms = easycrash::memsim;
namespace cr = easycrash::crash;

namespace {

/// Structural invariants every monitored object must keep: regions partition
/// [addr, addr+bytes) in ascending order and region counters sum to the
/// object counters.
void expectRegionInvariants(const ms::MonitoredObject& object,
                            const ms::RegionMonitorConfig& config) {
  ASSERT_FALSE(object.regions.empty());
  EXPECT_LE(object.regions.size(), config.maxRegionsPerObject);
  std::uint64_t next = object.addr;
  std::uint64_t samples = 0;
  std::uint64_t writes = 0;
  for (const auto& region : object.regions) {
    EXPECT_EQ(region.base, next);
    EXPECT_GT(region.bytes, 0u);
    next = region.base + region.bytes;
    samples += region.samples;
    writes += region.writes;
  }
  EXPECT_EQ(next, object.addr + object.bytes);
  EXPECT_EQ(samples, object.samples);
  EXPECT_EQ(writes, object.writes);
}

std::string describeRegions(const ms::RegionMonitor& monitor) {
  std::ostringstream out;
  for (const auto& object : monitor.objects()) {
    out << object.name << ":" << object.samples << "/" << object.writes << "/"
        << object.windowSamples << "/" << object.windowWrites << "[";
    for (const auto& region : object.regions) {
      out << region.base << "+" << region.bytes << "=" << region.samples << ","
          << region.writes << ";";
    }
    out << "]";
  }
  return out.str();
}

ms::RegionMonitorConfig tinyConfig() {
  ms::RegionMonitorConfig config;
  config.seed = 7;
  config.sampleInterval = 4;
  config.aggregateEvery = 64;
  config.minRegionBytes = 64;
  config.minSplitSamples = 8;
  return config;
}

}  // namespace

TEST(RegionMonitorTest, SamplingRateTracksInterval) {
  ms::RegionMonitorConfig config = tinyConfig();
  config.sampleInterval = 8;
  ms::RegionMonitor monitor(config);
  monitor.attach(0, "a", 0, 8 * 4096);
  for (std::uint64_t i = 0; i < 4096; ++i) {
    monitor.onRange(i * 8, 8, 1, /*write=*/false);
  }
  // A pure countdown sampler hits exactly every interval-th element after the
  // seeded phase offset.
  EXPECT_GE(monitor.totalSamples(), 4096 / 8 - 1);
  EXPECT_LE(monitor.totalSamples(), 4096 / 8 + 1);
}

TEST(RegionMonitorTest, BulkScalarAndChunkedFeedsAreIdentical) {
  // The same logical element stream fed three ways: element-wise, one big
  // range, and irregular chunks. The countdown must land on the same
  // elements each time (the determinism claim --bulk relies on).
  const std::uint64_t kElems = 10000;
  const auto feedScalar = [](ms::RegionMonitor& monitor) {
    for (std::uint64_t i = 0; i < kElems; ++i) {
      monitor.onRange(i * 8, 8, 1, (i % 3) == 0);
    }
  };
  const auto feedBulk = [](ms::RegionMonitor& monitor) {
    // Writes in a bulk range apply to the whole range; mirror the scalar
    // stream by splitting on the write flag boundaries (period 3).
    for (std::uint64_t i = 0; i < kElems; ++i) {
      if ((i % 3) == 0) {
        monitor.onRange(i * 8, 8, 1, true);
      } else {
        const std::uint64_t n = std::min<std::uint64_t>(2, kElems - i);
        monitor.onRange(i * 8, 8, n, false);
        i += n - 1;
      }
    }
  };
  const auto feedChunks = [](ms::RegionMonitor& monitor) {
    std::uint64_t i = 0;
    std::uint64_t chunk = 1;
    while (i < kElems) {
      // Chunk boundaries must not straddle a write-flag change, so emit
      // element-wise on write positions and growing chunks elsewhere.
      if ((i % 3) == 0) {
        monitor.onRange(i * 8, 8, 1, true);
        ++i;
        continue;
      }
      std::uint64_t n = std::min<std::uint64_t>(chunk % 2 + 1, kElems - i);
      if ((i + n - 1) % 3 == 0 || (i + n - 1) / 3 != i / 3) n = 1;
      monitor.onRange(i * 8, 8, n, false);
      i += n;
      ++chunk;
    }
  };

  ms::RegionMonitor scalar(tinyConfig());
  ms::RegionMonitor bulk(tinyConfig());
  ms::RegionMonitor chunked(tinyConfig());
  for (auto* monitor : {&scalar, &bulk, &chunked}) {
    monitor->attach(0, "a", 0, kElems * 8);
  }
  feedScalar(scalar);
  feedBulk(bulk);
  feedChunks(chunked);
  EXPECT_EQ(describeRegions(scalar), describeRegions(bulk));
  EXPECT_EQ(describeRegions(scalar), describeRegions(chunked));
  EXPECT_EQ(scalar.totalSamples(), bulk.totalSamples());
  EXPECT_EQ(scalar.totalSplits(), bulk.totalSplits());
}

TEST(RegionMonitorTest, SkewedAccessSplitsHotRegion) {
  ms::RegionMonitor monitor(tinyConfig());
  const std::uint64_t kBytes = 64 * 1024;
  monitor.attach(0, "a", 0, kBytes);
  // Hammer the first eighth of the object only.
  for (int pass = 0; pass < 64; ++pass) {
    for (std::uint64_t i = 0; i < kBytes / 8 / 8; ++i) {
      monitor.onRange(i * 8, 8, 1, true);
    }
  }
  EXPECT_GT(monitor.totalSplits(), 0u);
  ASSERT_EQ(monitor.objects().size(), 1u);
  const auto& object = monitor.objects().front();
  EXPECT_GT(object.regions.size(), 1u);
  expectRegionInvariants(object, tinyConfig());
  // The hot prefix must end up in denser regions than the cold tail.
  const auto& first = object.regions.front();
  const auto& last = object.regions.back();
  const double dFirst =
      static_cast<double>(first.samples) / static_cast<double>(first.bytes);
  const double dLast =
      static_cast<double>(last.samples) / static_cast<double>(last.bytes);
  EXPECT_GT(dFirst, dLast);
}

TEST(RegionMonitorTest, UniformPhaseMergesRegionsBack) {
  ms::RegionMonitorConfig config = tinyConfig();
  ms::RegionMonitor monitor(config);
  const std::uint64_t kBytes = 64 * 1024;
  monitor.attach(0, "a", 0, kBytes);
  for (int pass = 0; pass < 32; ++pass) {
    for (std::uint64_t i = 0; i < kBytes / 8 / 8; ++i) {
      monitor.onRange(i * 8, 8, 1, true);
    }
  }
  ASSERT_GT(monitor.totalSplits(), 0u);
  // Long uniform phase: densities converge, adjacent regions fold back.
  for (int pass = 0; pass < 64; ++pass) {
    monitor.onRange(0, 8, kBytes / 8, false);
  }
  EXPECT_GT(monitor.totalMerges(), 0u);
  expectRegionInvariants(monitor.objects().front(), config);
}

TEST(RegionMonitorTest, RegionCountStaysBounded) {
  ms::RegionMonitorConfig config = tinyConfig();
  config.maxRegionsPerObject = 4;
  ms::RegionMonitor monitor(config);
  monitor.attach(0, "a", 0, 256 * 1024);
  monitor.attach(1, "b", 256 * 1024, 256 * 1024);
  // Adversarial stream: rotate a hot stripe so splits keep triggering.
  for (int pass = 0; pass < 128; ++pass) {
    const std::uint64_t stripe = (pass % 16) * 16 * 1024;
    for (std::uint64_t i = 0; i < 2048; ++i) {
      monitor.onRange(stripe + (i % (16 * 1024 / 8)) * 8, 8, 1, true);
    }
  }
  for (const auto& object : monitor.objects()) {
    EXPECT_LE(object.regions.size(), 4u);
    expectRegionInvariants(object, config);
  }
}

TEST(RegionMonitorTest, WindowCountersTrackOnlyWindowSamples) {
  ms::RegionMonitor monitor(tinyConfig());
  monitor.attach(0, "a", 0, 4096 * 8);
  for (std::uint64_t i = 0; i < 4096; ++i) monitor.onRange(i * 8, 8, 1, true);
  const auto& object = monitor.objects().front();
  const std::uint64_t setupSamples = object.samples;
  EXPECT_EQ(object.windowSamples, 0u);
  monitor.setWindow(true);
  for (std::uint64_t i = 0; i < 4096; ++i) monitor.onRange(i * 8, 8, 1, true);
  EXPECT_GT(object.windowSamples, 0u);
  EXPECT_EQ(object.samples, setupSamples + object.windowSamples);
  EXPECT_EQ(object.windowWrites, object.windowSamples);
}

TEST(RegionMonitorTest, SeedShiftsTheSamplingPhase) {
  std::map<std::uint64_t, std::uint64_t> firstSample;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    ms::RegionMonitorConfig config = tinyConfig();
    config.seed = seed;
    config.sampleInterval = 16;
    ms::RegionMonitor monitor(config);
    monitor.attach(0, "a", 0, 16 * 64);
    std::uint64_t first = 0;
    for (std::uint64_t i = 0; i < 64 && first == 0; ++i) {
      monitor.onRange(i * 64, 64, 1, false);
      if (monitor.totalSamples() > 0) first = i + 1;
    }
    firstSample[first] = seed;
  }
  // The splitmix64 phase must actually spread across the interval.
  EXPECT_GT(firstSample.size(), 4u);
}

// ---------------------------------------------------------------------------
// Campaign layer.

namespace {

cr::CampaignConfig sampledConfig(int tests) {
  cr::CampaignConfig config;
  config.numTests = tests;
  config.seed = 11;
  config.monitor.mode = cr::MonitorMode::Sampled;
  config.profile = false;
  return config;
}

void expectSameMonitorSummary(const cr::MonitorSummary& a,
                              const cr::MonitorSummary& b) {
  EXPECT_EQ(a.active, b.active);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.splits, b.splits);
  EXPECT_EQ(a.merges, b.merges);
  EXPECT_EQ(a.demotedObjects, b.demotedObjects);
  EXPECT_EQ(a.demotedBytes, b.demotedBytes);
  EXPECT_EQ(a.trackedObjects, b.trackedObjects);
  EXPECT_EQ(a.trackedBytes, b.trackedBytes);
  ASSERT_EQ(a.objects.size(), b.objects.size());
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    const auto& oa = a.objects[i];
    const auto& ob = b.objects[i];
    EXPECT_EQ(oa.name, ob.name);
    EXPECT_EQ(oa.demoted, ob.demoted);
    EXPECT_EQ(oa.samples, ob.samples);
    EXPECT_EQ(oa.writes, ob.writes);
    EXPECT_EQ(oa.windowWrites, ob.windowWrites);
    ASSERT_EQ(oa.regions.size(), ob.regions.size());
    for (std::size_t r = 0; r < oa.regions.size(); ++r) {
      EXPECT_EQ(oa.regions[r].base, ob.regions[r].base);
      EXPECT_EQ(oa.regions[r].bytes, ob.regions[r].bytes);
      EXPECT_EQ(oa.regions[r].samples, ob.regions[r].samples);
      EXPECT_EQ(oa.regions[r].writes, ob.regions[r].writes);
    }
  }
}

void expectSameTrialRecords(const cr::CampaignResult& a,
                            const cr::CampaignResult& b) {
  ASSERT_EQ(a.tests.size(), b.tests.size());
  for (std::size_t i = 0; i < a.tests.size(); ++i) {
    EXPECT_EQ(a.tests[i].crashAccessIndex, b.tests[i].crashAccessIndex);
    EXPECT_EQ(a.tests[i].response, b.tests[i].response);
    EXPECT_EQ(a.tests[i].inconsistentRate, b.tests[i].inconsistentRate);
  }
}

}  // namespace

TEST(MonitorCampaignTest, FullModeRecordsNoMonitorState) {
  const auto factory = ec::apps::findBenchmark("cg").factory;
  cr::CampaignConfig config;
  config.numTests = 4;
  config.profile = false;
  const auto result = cr::CampaignRunner(factory, config).run();
  EXPECT_FALSE(result.monitor.active);
  EXPECT_TRUE(result.monitor.objects.empty());
  EXPECT_EQ(result.monitor.demotedObjects, 0u);
}

TEST(MonitorCampaignTest, SampledSummaryDeterministicAcrossThreads) {
  const auto factory = ec::apps::findBenchmark("cg").factory;
  cr::CampaignConfig one = sampledConfig(8);
  cr::CampaignConfig four = sampledConfig(8);
  four.threads = 4;
  const auto a = cr::CampaignRunner(factory, one).run();
  const auto b = cr::CampaignRunner(factory, four).run();
  ASSERT_TRUE(a.monitor.active);
  expectSameMonitorSummary(a.monitor, b.monitor);
  expectSameTrialRecords(a, b);
}

TEST(MonitorCampaignTest, SampledSummaryDeterministicAcrossIsolation) {
  const auto factory = ec::apps::findBenchmark("cg").factory;
  cr::CampaignConfig inProcess = sampledConfig(8);
  cr::CampaignConfig forked = sampledConfig(8);
  forked.resilience.isolate = true;
  forked.resilience.isolation = cr::IsolationMode::Fork;
  const auto a = cr::CampaignRunner(factory, inProcess).run();
  const auto b = cr::CampaignRunner(factory, forked).run();
  ASSERT_TRUE(a.monitor.active);
  expectSameMonitorSummary(a.monitor, b.monitor);
  expectSameTrialRecords(a, b);
}

TEST(MonitorCampaignTest, SampledDemotesOnlyLargeUnplannedObjects) {
  const auto factory = ec::apps::findBenchmark("cg").factory;
  const auto result = cr::CampaignRunner(factory, sampledConfig(4)).run();
  ASSERT_TRUE(result.monitor.active);
  EXPECT_GT(result.monitor.demotedObjects, 0u);
  for (const auto& object : result.monitor.objects) {
    if (!object.demoted) continue;
    EXPECT_GT(object.bytes, cr::MonitorConfig{}.smallObjectBytes);
    // Demotion never claims a candidate: candidates' inconsistency rates
    // are the Spearman selection's input and must stay value-tracked.
    EXPECT_FALSE(object.candidate);
  }
  // Golden stats must be identical to full mode: the golden run stays fully
  // tracked, so crash indices are drawn from the same window.
  cr::CampaignConfig full;
  full.numTests = 4;
  full.seed = 11;
  full.profile = false;
  const auto fullResult = cr::CampaignRunner(factory, full).run();
  EXPECT_EQ(result.golden.windowAccesses, fullResult.golden.windowAccesses);
  EXPECT_EQ(result.golden.finalIteration, fullResult.golden.finalIteration);
}

// ---------------------------------------------------------------------------
// Selection agreement: the point of the sampled mode is that the Spearman
// critical-object selection still gets the rates it needs. Campaigns are
// small here, so this also guards the ranking against sampling noise.

class MonitorSelectionSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(MonitorSelectionSuite, SampledSelectionMatchesFull) {
  const auto& entry = ec::apps::findBenchmark(GetParam());
  cr::CampaignConfig full;
  full.numTests = 12;
  full.seed = 5;
  full.profile = false;
  cr::CampaignConfig sampled = full;
  sampled.monitor.mode = cr::MonitorMode::Sampled;

  const auto fullResult = cr::CampaignRunner(entry.factory, full).run();
  const auto sampledResult = cr::CampaignRunner(entry.factory, sampled).run();

  // Demoted blocks keep metadata-only cache residency, so the tracked
  // candidates' rates, snapshots and restart outcomes are bit-identical to
  // full tracking — not merely rank-equivalent.
  expectSameTrialRecords(fullResult, sampledResult);

  const auto fullSelection = ec::core::selectCriticalObjects(fullResult);
  const auto sampledSelection = ec::core::selectCriticalObjects(sampledResult);
  EXPECT_EQ(fullSelection.critical, sampledSelection.critical)
      << "critical-object sets diverged for " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllApps, MonitorSelectionSuite,
                         ::testing::ValuesIn([] {
                           std::vector<std::string> names;
                           for (const auto& e : ec::apps::allBenchmarks()) {
                             names.push_back(e.name);
                           }
                           return names;
                         }()),
                         [](const auto& info) { return info.param; });
