// Tests for the common utilities: deterministic RNG, CLI parsing, and the
// table/format helpers.
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "easycrash/common/cli.hpp"
#include "easycrash/common/rng.hpp"
#include "easycrash/common/table.hpp"

namespace ec = easycrash;

TEST(Rng, DeterministicForSameSeed) {
  ec::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  ec::Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  ec::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  ec::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenIsInclusive) {
  ec::Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.between(5, 8));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(5));
  EXPECT_TRUE(seen.count(8));
}

TEST(Rng, Uniform01InRange) {
  ec::Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  ec::Rng parent(9);
  ec::Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 3);
}

TEST(Rng, CoversFullRangeEventually) {
  ec::Rng rng(11);
  bool highBitSeen = false;
  for (int i = 0; i < 1000 && !highBitSeen; ++i) {
    highBitSeen = (rng() >> 63) != 0;
  }
  EXPECT_TRUE(highBitSeen);
}

TEST(Cli, ParsesSpaceSeparatedValues) {
  ec::CliParser cli("test");
  cli.addInt("count", 3, "a count");
  const char* argv[] = {"prog", "--count", "42"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.getInt("count"), 42);
}

TEST(Cli, ParsesEqualsSeparatedValues) {
  ec::CliParser cli("test");
  cli.addDouble("ratio", 0.5, "a ratio");
  const char* argv[] = {"prog", "--ratio=0.25"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_DOUBLE_EQ(cli.getDouble("ratio"), 0.25);
}

TEST(Cli, DefaultsApplyWhenNotGiven) {
  ec::CliParser cli("test");
  cli.addString("name", "fallback", "a name");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.getString("name"), "fallback");
}

TEST(Cli, FlagsDefaultFalseAndSet) {
  ec::CliParser cli("test");
  cli.addFlag("verbose", "talk a lot");
  {
    const char* argv[] = {"prog"};
    ASSERT_TRUE(cli.parse(1, argv));
    EXPECT_FALSE(cli.getFlag("verbose"));
  }
  ec::CliParser cli2("test");
  cli2.addFlag("verbose", "talk a lot");
  const char* argv2[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli2.parse(2, argv2));
  EXPECT_TRUE(cli2.getFlag("verbose"));
}

TEST(Cli, UnknownOptionThrows) {
  ec::CliParser cli("test");
  const char* argv[] = {"prog", "--nonsense", "1"};
  EXPECT_THROW((void)cli.parse(3, argv), std::runtime_error);
}

TEST(Cli, HelpReturnsFalse) {
  ec::CliParser cli("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, MissingValueThrows) {
  ec::CliParser cli("test");
  cli.addInt("n", 1, "n");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW((void)cli.parse(2, argv), std::runtime_error);
}

TEST(Table, RendersAlignedColumns) {
  ec::Table table({"a", "name"});
  table.row().cell("1").cell("xx");
  table.row().cell("22").cell("y");
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a  | name |"), std::string::npos);
  EXPECT_NE(out.find("| 22 | y    |"), std::string::npos);
}

TEST(Table, CsvEscapesCommas) {
  ec::Table table({"x"});
  table.row().cell("a,b");
  std::ostringstream os;
  table.printCsv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
}

TEST(Table, PercentFormatting) {
  ec::Table table({"p"});
  table.row().cellPercent(0.1234);
  std::ostringstream os;
  table.printCsv(os);
  EXPECT_NE(os.str().find("12.3%"), std::string::npos);
}

TEST(Table, TooManyCellsThrows) {
  ec::Table table({"only"});
  table.row().cell("1");
  EXPECT_THROW(table.cell("2"), std::logic_error);
}

TEST(Table, CellBeforeRowThrows) {
  ec::Table table({"x"});
  EXPECT_THROW(table.cell("oops"), std::logic_error);
}

TEST(FormatBytes, HumanReadableUnits) {
  EXPECT_EQ(ec::formatBytes(80), "80B");
  EXPECT_EQ(ec::formatBytes(4 * 1024), "4.0KB");
  EXPECT_EQ(ec::formatBytes(3ull * 1024 * 1024 + 512 * 1024), "3.5MB");
  EXPECT_EQ(ec::formatBytes(2ull * 1024 * 1024 * 1024), "2.0GB");
}
