// Tests for the EasyCrash decision framework: critical-object selection,
// the Equation-5 model, the multi-choice knapsack (validated against brute
// force on random instances), and the end-to-end workflow.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "easycrash/apps/registry.hpp"
#include "easycrash/common/rng.hpp"
#include "easycrash/core/object_selection.hpp"
#include "easycrash/core/region_selection.hpp"
#include "easycrash/core/workflow.hpp"

namespace ec = easycrash;
namespace core = easycrash::core;
namespace cr = easycrash::crash;

namespace {

/// Build a synthetic campaign: object 1's inconsistency drives failure,
/// object 2's inconsistency is pure noise.
cr::CampaignResult syntheticCampaign(int tests, double successBias = 0.35) {
  cr::CampaignResult campaign;
  ec::runtime::DataObjectInfo driver;
  driver.id = 1;
  driver.name = "driver";
  driver.bytes = 4096;
  driver.candidate = true;
  ec::runtime::DataObjectInfo noise = driver;
  noise.id = 2;
  noise.name = "noise";
  campaign.golden.objects = {driver, noise};

  ec::Rng rng(77);
  for (int t = 0; t < tests; ++t) {
    cr::CrashTestRecord record;
    const double driverRate = rng.uniform01();
    record.inconsistentRate[1] = driverRate;
    record.inconsistentRate[2] = rng.uniform01();
    record.response = driverRate < successBias ? cr::Response::S1 : cr::Response::S4;
    campaign.tests.push_back(record);
  }
  return campaign;
}

}  // namespace

TEST(ObjectSelection, PicksTheCausalObjectOnly) {
  const auto campaign = syntheticCampaign(200);
  const auto result = core::selectCriticalObjects(campaign);
  ASSERT_EQ(result.correlations.size(), 2u);
  EXPECT_TRUE(result.correlations[0].selected) << "causal object must be critical";
  EXPECT_FALSE(result.correlations[1].selected) << "noise object must be rejected";
  ASSERT_EQ(result.critical.size(), 1u);
  EXPECT_EQ(result.critical[0], 1u);
}

TEST(ObjectSelection, NegativeRhoAndSmallPValueForCausalObject) {
  const auto campaign = syntheticCampaign(200);
  const auto result = core::selectCriticalObjects(campaign);
  EXPECT_LT(result.correlations[0].rho, -0.5);
  EXPECT_LT(result.correlations[0].pValue, 0.01);
  EXPECT_GT(result.correlations[1].pValue, 0.01);
}

TEST(ObjectSelection, DegenerateOutcomesUseFallback) {
  // All tests fail: correlation is undefined; high-inconsistency objects are
  // selected by the fallback rule.
  auto campaign = syntheticCampaign(100, /*successBias=*/-1.0);  // all S4
  const auto result = core::selectCriticalObjects(campaign);
  EXPECT_TRUE(result.correlations[0].degenerate);
  EXPECT_TRUE(result.correlations[0].selected);
  EXPECT_TRUE(result.correlations[1].selected);
}

TEST(ObjectSelection, ReliableAppSelectsNothingUnderFallback) {
  auto campaign = syntheticCampaign(100, /*successBias=*/2.0);  // all S1
  const auto result = core::selectCriticalObjects(campaign);
  EXPECT_TRUE(result.correlations[0].degenerate);
  EXPECT_FALSE(result.correlations[0].selected);
}

TEST(ObjectSelection, ByteAccountingMatchesSelection) {
  const auto campaign = syntheticCampaign(200);
  const auto result = core::selectCriticalObjects(campaign);
  EXPECT_EQ(result.candidateBytes, 8192u);
  EXPECT_EQ(result.criticalBytes, 4096u);
}

TEST(ObjectSelection, EmptyCampaignRejected) {
  cr::CampaignResult empty;
  EXPECT_THROW((void)core::selectCriticalObjects(empty), std::logic_error);
}

TEST(Equation5, ExtrapolationRecoversExactValueAtX1) {
  EXPECT_DOUBLE_EQ(core::extrapolateMaxRecomputability(0.2, 0.8, 1), 0.8);
}

TEST(Equation5, ExtrapolationInvertsTheInterpolation) {
  // If c^max = 0.9 and c = 0.3, then c^4 = (0.9-0.3)/4 + 0.3 = 0.45;
  // extrapolating the measured c^4 back must recover 0.9.
  const double cx = (0.9 - 0.3) / 4.0 + 0.3;
  EXPECT_NEAR(core::extrapolateMaxRecomputability(0.3, cx, 4), 0.9, 1e-12);
}

TEST(Equation5, ExtrapolationClampsToOne) {
  EXPECT_DOUBLE_EQ(core::extrapolateMaxRecomputability(0.0, 0.9, 8), 1.0);
}

TEST(Equation5, ExtrapolationNeverBelowMeasurement) {
  EXPECT_DOUBLE_EQ(core::extrapolateMaxRecomputability(0.9, 0.5, 4), 0.5);
}

namespace {

struct KnapsackInstance {
  std::vector<core::RegionModelInput> inputs;
  std::map<ec::runtime::PointId, double> flushNs;
  double baseExecNs = 1.0e9;
  core::RegionSelectionConfig config;
};

KnapsackInstance randomInstance(std::uint64_t seed, int regions) {
  ec::Rng rng(seed);
  KnapsackInstance inst;
  inst.config.ts = 0.05 + rng.uniform01() * 0.1;
  inst.config.frequencies = {1, 2, 4};
  for (int r = 0; r < regions; ++r) {
    core::RegionModelInput input;
    input.point = r;
    input.timeShare = rng.uniform(0.05, 0.3);
    input.baseRecomputability = rng.uniform01() * 0.5;
    input.maxRecomputability =
        input.baseRecomputability + rng.uniform01() * (1.0 - input.baseRecomputability);
    input.iterationEnds = 10 + rng.below(50);
    inst.inputs.push_back(input);
    inst.flushNs[r] = rng.uniform(1.0e5, 2.0e6);
  }
  return inst;
}

/// Exhaustive search over all (region, frequency) assignments, using the
/// identical weight discretisation as the DP so optima are comparable.
double bruteForceBestGain(const KnapsackInstance& inst) {
  const auto& freqs = inst.config.frequencies;
  const int options = static_cast<int>(freqs.size()) + 1;  // + "skip"
  const int n = static_cast<int>(inst.inputs.size());
  const int capacity =
      static_cast<int>(std::ceil(inst.config.ts / inst.config.weightResolution));
  double best = 0.0;
  std::vector<int> choice(n, 0);
  for (;;) {
    long long weight = 0;
    double gain = 0.0;
    bool valid = true;
    for (int r = 0; r < n && valid; ++r) {
      if (choice[r] == 0) continue;
      const auto x = freqs[static_cast<std::size_t>(choice[r] - 1)];
      const auto& input = inst.inputs[static_cast<std::size_t>(r)];
      const double flushes = double(input.iterationEnds) / x;
      const double c = flushes * inst.flushNs.at(r) / inst.baseExecNs;
      if (c > inst.config.ts) {
        valid = false;  // the DP also drops per-variant budget violations
        break;
      }
      weight += std::max(
          1, static_cast<int>(std::ceil(c / inst.config.weightResolution)));
      const double cx = (input.maxRecomputability - input.baseRecomputability) / x +
                        input.baseRecomputability;
      gain += std::max(0.0, input.timeShare * (cx - input.baseRecomputability));
    }
    if (valid && weight <= capacity) best = std::max(best, gain);
    int r = 0;
    while (r < n && ++choice[r] == options) choice[r++] = 0;
    if (r == n) break;
  }
  return best;
}

}  // namespace

TEST(Knapsack, MatchesBruteForceOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto inst = randomInstance(seed, 5);
    const auto result =
        core::selectRegions(inst.inputs, inst.flushNs, inst.baseExecNs, inst.config);
    const double brute = bruteForceBestGain(inst);
    const double dpGain = result.predictedY - result.baseY;
    EXPECT_NEAR(dpGain, brute, 1e-9) << "seed " << seed;
  }
}

TEST(Knapsack, RespectsTheBudget) {
  for (std::uint64_t seed = 20; seed <= 30; ++seed) {
    const auto inst = randomInstance(seed, 6);
    const auto result =
        core::selectRegions(inst.inputs, inst.flushNs, inst.baseExecNs, inst.config);
    EXPECT_LE(result.totalCostFraction, inst.config.ts + 1e-9) << "seed " << seed;
  }
}

TEST(Knapsack, EmptyWhenEverythingTooExpensive) {
  KnapsackInstance inst = randomInstance(5, 3);
  for (auto& [point, ns] : inst.flushNs) ns = 1.0e12;  // absurdly expensive
  const auto result =
      core::selectRegions(inst.inputs, inst.flushNs, inst.baseExecNs, inst.config);
  EXPECT_TRUE(result.chosen.empty());
  EXPECT_DOUBLE_EQ(result.predictedY, result.baseY);
}

TEST(Knapsack, PrefersHigherFrequencyWhenAffordable) {
  core::RegionModelInput input;
  input.point = 0;
  input.timeShare = 1.0;
  input.baseRecomputability = 0.1;
  input.maxRecomputability = 0.9;
  input.iterationEnds = 10;
  std::map<ec::runtime::PointId, double> flushNs{{0, 1.0}};
  core::RegionSelectionConfig config;
  config.ts = 0.5;  // everything is affordable
  const auto result = core::selectRegions({input}, flushNs, 1.0e6, config);
  ASSERT_EQ(result.chosen.size(), 1u);
  EXPECT_EQ(result.chosen[0].everyN, 1u) << "x=1 maximises Equation 5";
  EXPECT_NEAR(result.chosen[0].predictedCk, 0.9, 1e-12);
}

TEST(Knapsack, BaseYFollowsEquation1) {
  const auto inst = randomInstance(42, 4);
  const auto result =
      core::selectRegions(inst.inputs, inst.flushNs, inst.baseExecNs, inst.config);
  double expected = 0.0;
  for (const auto& input : inst.inputs) {
    expected += input.timeShare * input.baseRecomputability;
  }
  EXPECT_NEAR(result.baseY, expected, 1e-12);
}

TEST(Workflow, EndToEndOnIsImprovesRecomputability) {
  core::WorkflowConfig config;
  config.testsPerCampaign = 40;
  const auto workflow =
      core::runEasyCrashWorkflow(ec::apps::findBenchmark("is").factory, config);
  ASSERT_TRUE(workflow.validation.has_value());
  EXPECT_GT(workflow.validation->recomputability(),
            workflow.baselineRecomputability());
  EXPECT_FALSE(workflow.objects.critical.empty());
  EXPECT_FALSE(workflow.plan.empty());
}

TEST(Workflow, EpIsRejectedByTheTauGate) {
  core::WorkflowConfig config;
  config.testsPerCampaign = 30;
  config.regionConfig.tau = 0.10;  // any realistic threshold rejects EP
  const auto workflow =
      core::runEasyCrashWorkflow(ec::apps::findBenchmark("ep").factory, config);
  EXPECT_TRUE(workflow.plan.empty())
      << "EP must be rejected (paper §6: recomputability < 3% even with EC)";
}

TEST(Workflow, EverywherePlanCoversAllPoints) {
  core::WorkflowConfig config;
  config.testsPerCampaign = 20;
  const auto workflow =
      core::runEasyCrashWorkflow(ec::apps::findBenchmark("is").factory, config);
  // 8 regions + the main-loop end.
  EXPECT_EQ(workflow.everywherePlan.points.size(), 9u);
}
