#include <cmath>
// Tests for the Section-7 system-efficiency model: Young's formula, the
// closed-form efficiency equations, the tau threshold, node scaling, and the
// Monte-Carlo cross-check.
#include <gtest/gtest.h>

#include "easycrash/sysmodel/efficiency.hpp"

namespace sm = easycrash::sysmodel;

namespace {

sm::SystemParams paperDefaults() {
  sm::SystemParams params;  // MTBF 12h, T_chk 320s, 10-year horizon
  return params;
}

}  // namespace

TEST(Young, FormulaMatchesDefinition) {
  EXPECT_DOUBLE_EQ(sm::youngInterval(320.0, 12.0 * 3600.0),
                   std::sqrt(2.0 * 320.0 * 12.0 * 3600.0));
}

TEST(Young, GrowsWithMtbfAndCheckpointCost) {
  EXPECT_LT(sm::youngInterval(32.0, 3600.0), sm::youngInterval(320.0, 3600.0));
  EXPECT_LT(sm::youngInterval(32.0, 3600.0), sm::youngInterval(32.0, 36000.0));
}

TEST(ClosedForm, EfficiencyIsAProbability) {
  for (double tChk : {32.0, 320.0, 3200.0}) {
    auto params = paperDefaults();
    params.tChkSeconds = tChk;
    const double eff = sm::efficiencyWithoutEasyCrash(params).efficiency;
    EXPECT_GE(eff, 0.0);
    EXPECT_LE(eff, 1.0);
  }
}

TEST(ClosedForm, CheaperCheckpointsAreMoreEfficient) {
  auto a = paperDefaults();
  a.tChkSeconds = 32.0;
  auto b = paperDefaults();
  b.tChkSeconds = 3200.0;
  EXPECT_GT(sm::efficiencyWithoutEasyCrash(a).efficiency,
            sm::efficiencyWithoutEasyCrash(b).efficiency);
}

TEST(ClosedForm, LongerMtbfIsMoreEfficient) {
  auto a = paperDefaults();
  a.mtbfHours = 24.0;
  auto b = paperDefaults();
  b.mtbfHours = 3.0;
  EXPECT_GT(sm::efficiencyWithoutEasyCrash(a).efficiency,
            sm::efficiencyWithoutEasyCrash(b).efficiency);
}

TEST(ClosedForm, EfficiencyIncreasesWithRecomputability) {
  const auto params = paperDefaults();
  double previous = 0.0;
  for (double r : {0.0, 0.3, 0.6, 0.9}) {
    const double eff = sm::efficiencyWithEasyCrash(params, r, 0.02).efficiency;
    EXPECT_GE(eff, previous);
    previous = eff;
  }
}

TEST(ClosedForm, RuntimeOverheadReducesEfficiency) {
  const auto params = paperDefaults();
  EXPECT_GT(sm::efficiencyWithEasyCrash(params, 0.8, 0.0).efficiency,
            sm::efficiencyWithEasyCrash(params, 0.8, 0.05).efficiency);
}

TEST(ClosedForm, EasyCrashIntervalIsLonger) {
  const auto params = paperDefaults();
  const auto without = sm::efficiencyWithoutEasyCrash(params);
  const auto with = sm::efficiencyWithEasyCrash(params, 0.82, 0.02);
  EXPECT_GT(with.checkpointInterval, without.checkpointInterval)
      << "MTBF_EasyCrash = MTBF / (1 - R) must lengthen Young's interval";
}

TEST(ClosedForm, HighRecomputabilityBeatsPlainCheckpointRestart) {
  // The paper's headline setting: MTBF 12h, T_chk 3200s, R = 0.82.
  auto params = paperDefaults();
  params.tChkSeconds = 3200.0;
  EXPECT_GT(sm::efficiencyWithEasyCrash(params, 0.82, 0.02).efficiency,
            sm::efficiencyWithoutEasyCrash(params).efficiency + 0.10)
      << "expected the ~15% class of improvement reported by the paper";
}

TEST(Tau, ThresholdSeparatesWinningFromLosing) {
  for (double tChk : {320.0, 3200.0}) {
    auto params = paperDefaults();
    params.tChkSeconds = tChk;
    const double tau = sm::recomputabilityThreshold(params, 0.02);
    ASSERT_GT(tau, 0.0);
    ASSERT_LT(tau, 1.0);
    const double base = sm::efficiencyWithoutEasyCrash(params).efficiency;
    EXPECT_GT(sm::efficiencyWithEasyCrash(params, tau + 0.02, 0.02).efficiency, base);
    EXPECT_LT(sm::efficiencyWithEasyCrash(params, tau - 0.02, 0.02).efficiency, base);
  }
}

TEST(Tau, CheaperCheckpointsRaiseTheBar) {
  // With cheap checkpoints, plain C/R is already efficient, so EasyCrash
  // needs higher recomputability to pay off (paper Figure 10's 32s case).
  auto cheap = paperDefaults();
  cheap.tChkSeconds = 32.0;
  auto expensive = paperDefaults();
  expensive.tChkSeconds = 3200.0;
  EXPECT_GT(sm::recomputabilityThreshold(cheap, 0.02),
            sm::recomputabilityThreshold(expensive, 0.02));
}

TEST(Scaling, MtbfShrinksLinearlyWithNodes) {
  const auto params = paperDefaults();
  EXPECT_DOUBLE_EQ(params.scaledToNodes(2.0).mtbfHours, 6.0);
  EXPECT_DOUBLE_EQ(params.scaledToNodes(4.0).mtbfHours, 3.0);
}

TEST(Scaling, EasyCrashAdvantageGrowsWithScale) {
  // Paper Figure 11: the efficiency gap widens as the system grows.
  double previousGap = -1.0;
  for (double scale : {1.0, 2.0, 4.0}) {
    auto params = paperDefaults().scaledToNodes(scale);
    params.tChkSeconds = 3200.0;
    const double gap =
        sm::efficiencyWithEasyCrash(params, 0.82, 0.02).efficiency -
        sm::efficiencyWithoutEasyCrash(params).efficiency;
    EXPECT_GT(gap, previousGap);
    previousGap = gap;
  }
}

TEST(MonteCarlo, AgreesWithClosedFormWithoutEasyCrash) {
  for (double tChk : {320.0, 3200.0}) {
    auto params = paperDefaults();
    params.tChkSeconds = tChk;
    const double closed = sm::efficiencyWithoutEasyCrash(params).efficiency;
    const double mc = sm::simulateEfficiency(params, 0.0, 0.0, 7, 0.2);
    EXPECT_NEAR(mc, closed, 0.06) << "T_chk " << tChk;
  }
}

TEST(MonteCarlo, AgreesWithClosedFormWithEasyCrash) {
  for (double r : {0.5, 0.82}) {
    auto params = paperDefaults();
    params.tChkSeconds = 3200.0;
    const double closed = sm::efficiencyWithEasyCrash(params, r, 0.02).efficiency;
    const double mc = sm::simulateEfficiency(params, r, 0.02, 11, 0.2);
    EXPECT_NEAR(mc, closed, 0.08) << "R " << r;
  }
}

TEST(MonteCarlo, DeterministicForSameSeed) {
  const auto params = paperDefaults();
  EXPECT_DOUBLE_EQ(sm::simulateEfficiency(params, 0.5, 0.02, 3, 0.05),
                   sm::simulateEfficiency(params, 0.5, 0.02, 3, 0.05));
}

TEST(Params, DerivedQuantities) {
  auto params = paperDefaults();
  EXPECT_DOUBLE_EQ(params.mtbfSeconds(), 12.0 * 3600.0);
  EXPECT_DOUBLE_EQ(params.tRecover(), params.tChkSeconds);
  EXPECT_DOUBLE_EQ(params.tSync(), 0.5 * params.tChkSeconds);
  EXPECT_NEAR(params.tEcRecover(), 64.0 / 106.0, 1e-12);
}
