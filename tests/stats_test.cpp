// Unit tests for the statistics module: fractional ranks, Pearson/Spearman
// correlation, incomplete beta, and Student-t p-values.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "easycrash/stats/spearman.hpp"

namespace ec = easycrash;
using ec::stats::fractionalRanks;
using ec::stats::pearson;
using ec::stats::regularizedIncompleteBeta;
using ec::stats::spearman;
using ec::stats::studentTTwoSidedP;

TEST(FractionalRanks, SimpleOrdering) {
  const std::vector<double> v{30.0, 10.0, 20.0};
  const auto r = fractionalRanks(v);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(FractionalRanks, TiesGetAverageRank) {
  const std::vector<double> v{1.0, 2.0, 2.0, 3.0};
  const auto r = fractionalRanks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(FractionalRanks, AllTied) {
  const std::vector<double> v{5.0, 5.0, 5.0};
  const auto r = fractionalRanks(v);
  for (double x : r) EXPECT_DOUBLE_EQ(x, 2.0);
}

TEST(Pearson, PerfectPositive) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ConstantInputGivesZero) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(IncompleteBeta, KnownValues) {
  // I_x(1,1) = x (uniform CDF).
  EXPECT_NEAR(regularizedIncompleteBeta(1.0, 1.0, 0.3), 0.3, 1e-12);
  // I_x(2,2) = 3x^2 - 2x^3.
  const double x = 0.4;
  EXPECT_NEAR(regularizedIncompleteBeta(2.0, 2.0, x), 3 * x * x - 2 * x * x * x, 1e-10);
  EXPECT_DOUBLE_EQ(regularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, Symmetry) {
  // I_x(a,b) = 1 - I_{1-x}(b,a)
  const double v1 = regularizedIncompleteBeta(2.5, 3.5, 0.6);
  const double v2 = 1.0 - regularizedIncompleteBeta(3.5, 2.5, 0.4);
  EXPECT_NEAR(v1, v2, 1e-12);
}

TEST(StudentT, ZeroStatisticGivesPOne) {
  EXPECT_NEAR(studentTTwoSidedP(0.0, 10.0), 1.0, 1e-12);
}

TEST(StudentT, MatchesNormalForLargeDof) {
  // t=1.96 with huge dof ~ normal: p ~ 0.05.
  EXPECT_NEAR(studentTTwoSidedP(1.96, 100000.0), 0.05, 0.001);
}

TEST(StudentT, KnownSmallDofValue) {
  // t distribution with 1 dof is Cauchy: P(|T|>1) = 0.5.
  EXPECT_NEAR(studentTTwoSidedP(1.0, 1.0), 0.5, 1e-9);
}

TEST(Spearman, PerfectMonotoneNonlinear) {
  const std::vector<double> x{1, 2, 3, 4, 5, 6};
  const std::vector<double> y{1, 8, 27, 64, 125, 216};  // x^3: nonlinear, monotone
  const auto r = spearman(x, y);
  EXPECT_FALSE(r.degenerate);
  EXPECT_NEAR(r.rho, 1.0, 1e-12);
  EXPECT_LT(r.pValue, 0.01);
}

TEST(Spearman, PerfectAntiMonotone) {
  const std::vector<double> x{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> y;
  for (double v : x) y.push_back(-v * v);
  const auto r = spearman(x, y);
  EXPECT_NEAR(r.rho, -1.0, 1e-12);
  EXPECT_LT(r.pValue, 0.01);
}

TEST(Spearman, ConstantInputIsDegenerate) {
  const std::vector<double> x{1, 1, 1, 1};
  const std::vector<double> y{1, 2, 3, 4};
  EXPECT_TRUE(spearman(x, y).degenerate);
  EXPECT_TRUE(spearman(y, x).degenerate);
}

TEST(Spearman, TooFewSamplesIsDegenerate) {
  const std::vector<double> x{1, 2};
  const std::vector<double> y{2, 1};
  EXPECT_TRUE(spearman(x, y).degenerate);
}

TEST(Spearman, UncorrelatedHasHighP) {
  // Alternating pattern has near-zero rank correlation.
  std::vector<double> x, y;
  for (int i = 0; i < 40; ++i) {
    x.push_back(i);
    y.push_back((i % 2 == 0) ? 10.0 + i % 7 : 3.0 + i % 5);
  }
  const auto r = spearman(x, y);
  EXPECT_FALSE(r.degenerate);
  EXPECT_GT(r.pValue, 0.01);
}

TEST(Spearman, BinaryOutcomeVectorWorks) {
  // The EasyCrash use case: y is a 0/1 recomputation-outcome vector.
  std::vector<double> rate, outcome;
  for (int i = 0; i < 60; ++i) {
    const double r = i / 60.0;
    rate.push_back(r);
    outcome.push_back(r < 0.4 ? 1.0 : 0.0);  // high inconsistency => failure
  }
  const auto r = spearman(rate, outcome);
  EXPECT_FALSE(r.degenerate);
  EXPECT_LT(r.rho, -0.5);
  EXPECT_LT(r.pValue, 0.01);
}
