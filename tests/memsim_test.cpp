// Unit and property tests for the value-tracking cache hierarchy and NVM
// store: hit/miss accounting, write-back semantics, flush instruction
// classes, inclusivity invariants, inconsistency measurement, and crash
// (invalidateAll) behaviour.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "easycrash/common/rng.hpp"
#include "easycrash/memsim/hierarchy.hpp"

namespace ms = easycrash::memsim;

namespace {

struct Sim {
  Sim() : nvm(64), cache(ms::CacheConfig::tiny(), nvm) {}
  ms::NvmStore nvm;
  ms::CacheHierarchy cache;

  void storeU64(std::uint64_t addr, std::uint64_t v) {
    cache.store(addr, {reinterpret_cast<const std::uint8_t*>(&v), sizeof(v)});
  }
  std::uint64_t loadU64(std::uint64_t addr) {
    std::uint64_t v = 0;
    cache.load(addr, {reinterpret_cast<std::uint8_t*>(&v), sizeof(v)});
    return v;
  }
  std::uint64_t peekU64(std::uint64_t addr) const {
    std::uint64_t v = 0;
    cache.peek(addr, {reinterpret_cast<std::uint8_t*>(&v), sizeof(v)});
    return v;
  }
  std::uint64_t nvmU64(std::uint64_t addr) const {
    std::uint64_t v = 0;
    nvm.read(addr, {reinterpret_cast<std::uint8_t*>(&v), sizeof(v)});
    return v;
  }
};

}  // namespace

TEST(NvmStore, ZeroFilledByDefault) {
  ms::NvmStore nvm(64);
  std::vector<std::uint8_t> buf(16, 0xFF);
  nvm.read(1000, buf);
  for (auto b : buf) EXPECT_EQ(b, 0);
}

TEST(NvmStore, BlockWriteCountsAndRoundTrips) {
  ms::NvmStore nvm(64);
  std::vector<std::uint8_t> block(64, 0xAB);
  nvm.writeBlock(128, block);
  EXPECT_EQ(nvm.blockWrites(), 1u);
  std::vector<std::uint8_t> out(64);
  nvm.read(128, out);
  EXPECT_EQ(out, block);
}

TEST(NvmStore, PokeDoesNotCountAsWrite) {
  ms::NvmStore nvm(64);
  std::vector<std::uint8_t> data(8, 0x11);
  nvm.poke(0, data);
  EXPECT_EQ(nvm.blockWrites(), 0u);
}

TEST(NvmStore, SnapshotRestoreRoundTrip) {
  ms::NvmStore nvm(64);
  std::vector<std::uint8_t> data(8, 0x42);
  nvm.poke(100, data);
  auto snap = nvm.snapshotImage();
  std::vector<std::uint8_t> other(8, 0x99);
  nvm.poke(100, other);
  nvm.restoreImage(std::move(snap));
  std::vector<std::uint8_t> out(8);
  nvm.read(100, out);
  EXPECT_EQ(out, data);
}

TEST(CacheConfig, PresetsValidate) {
  EXPECT_NO_THROW(ms::CacheConfig::xeonGold6126().validate());
  EXPECT_NO_THROW(ms::CacheConfig::scaledDefault().validate());
  EXPECT_NO_THROW(ms::CacheConfig::tiny().validate());
}

TEST(CacheConfig, RejectsNonPowerOfTwoBlock) {
  ms::CacheConfig c = ms::CacheConfig::tiny();
  c.blockSize = 48;
  EXPECT_THROW(c.validate(), std::logic_error);
}

TEST(CacheConfig, RejectsShrinkingLevels) {
  ms::CacheConfig c = ms::CacheConfig::tiny();
  c.levels[2].sizeBytes = c.levels[0].sizeBytes;
  EXPECT_THROW(c.validate(), std::logic_error);
}

TEST(Hierarchy, LoadAfterStoreReturnsValue) {
  Sim s;
  s.storeU64(0, 0xDEADBEEFULL);
  EXPECT_EQ(s.loadU64(0), 0xDEADBEEFULL);
}

TEST(Hierarchy, StoreIsNotImmediatelyPersistent) {
  Sim s;
  s.storeU64(0, 42);
  EXPECT_EQ(s.nvmU64(0), 0u) << "dirty data must stay in the cache";
  EXPECT_EQ(s.peekU64(0), 42u) << "peek must see the cached value";
}

TEST(Hierarchy, FlushMakesDataPersistent) {
  Sim s;
  s.storeU64(0, 42);
  s.cache.flushBlock(0, ms::FlushKind::Clwb);
  EXPECT_EQ(s.nvmU64(0), 42u);
  EXPECT_EQ(s.cache.events().flushDirty, 1u);
  EXPECT_EQ(s.cache.events().flushInducedNvmWrites, 1u);
}

TEST(Hierarchy, ClwbKeepsLineResident) {
  Sim s;
  s.storeU64(0, 42);
  s.cache.flushBlock(0, ms::FlushKind::Clwb);
  const auto before = s.cache.events();
  (void)s.loadU64(0);
  EXPECT_EQ(s.cache.events().hits[0], before.hits[0] + 1) << "clwb keeps L1 line";
}

TEST(Hierarchy, ClflushoptInvalidatesLine) {
  Sim s;
  s.storeU64(0, 42);
  s.cache.flushBlock(0, ms::FlushKind::Clflushopt);
  const auto before = s.cache.events();
  EXPECT_EQ(s.loadU64(0), 42u);
  EXPECT_EQ(s.cache.events().misses[0], before.misses[0] + 1)
      << "clflushopt must invalidate, forcing a refetch";
}

TEST(Hierarchy, FlushCleanBlockDoesNotWriteNvm) {
  Sim s;
  s.storeU64(0, 7);
  s.cache.flushBlock(0, ms::FlushKind::Clwb);  // now clean and persistent
  const auto writes = s.cache.events().nvmBlockWrites;
  s.cache.flushBlock(0, ms::FlushKind::Clwb);
  EXPECT_EQ(s.cache.events().nvmBlockWrites, writes);
  EXPECT_EQ(s.cache.events().flushClean, 1u);
}

TEST(Hierarchy, FlushNonResidentBlockIsFree) {
  Sim s;
  s.cache.flushBlock(4096, ms::FlushKind::Clflushopt);
  EXPECT_EQ(s.cache.events().flushNonResident, 1u);
  EXPECT_EQ(s.cache.events().nvmBlockWrites, 0u);
}

TEST(Hierarchy, CrashLosesDirtyData) {
  Sim s;
  s.storeU64(0, 41);
  s.cache.flushBlock(0, ms::FlushKind::Clwb);
  s.storeU64(0, 42);  // newer value, dirty only
  s.cache.invalidateAll();
  EXPECT_EQ(s.peekU64(0), 41u) << "after power loss only the NVM value survives";
}

TEST(Hierarchy, InconsistencyCountsDirtyDifferingBytes) {
  Sim s;
  s.storeU64(0, 0x1111111111111111ULL);
  EXPECT_EQ(s.cache.inconsistentBytes(0, 8), 8u);
  s.cache.flushBlock(0, ms::FlushKind::Clwb);
  EXPECT_EQ(s.cache.inconsistentBytes(0, 8), 0u);
  // Store the same value again: line is dirty but bytes match NVM.
  s.storeU64(0, 0x1111111111111111ULL);
  EXPECT_EQ(s.cache.inconsistentBytes(0, 8), 0u);
}

TEST(Hierarchy, InconsistencyRespectsRangeBounds) {
  Sim s;
  s.storeU64(0, ~0ULL);
  s.storeU64(8, ~0ULL);
  EXPECT_EQ(s.cache.inconsistentBytes(0, 8), 8u);
  EXPECT_EQ(s.cache.inconsistentBytes(0, 16), 16u);
  EXPECT_EQ(s.cache.inconsistentBytes(4, 8), 8u);
}

TEST(Hierarchy, EvictionWritesBackThroughLevels) {
  // Fill far more blocks than the whole hierarchy holds; all dirty data must
  // eventually land in NVM or still be cached; nothing may be lost.
  Sim s;
  constexpr int kBlocks = 256;  // tiny() LLC holds 16 blocks
  for (int i = 0; i < kBlocks; ++i) s.storeU64(i * 64ULL, 1000 + i);
  EXPECT_GT(s.cache.events().nvmBlockWrites, 0u);
  for (int i = 0; i < kBlocks; ++i) {
    EXPECT_EQ(s.peekU64(i * 64ULL), 1000u + i) << "block " << i;
  }
}

TEST(Hierarchy, DrainAllPersistsEverything) {
  Sim s;
  for (int i = 0; i < 64; ++i) s.storeU64(i * 64ULL, 7000 + i);
  s.cache.drainAll();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(s.nvmU64(i * 64ULL), 7000u + i);
  }
  EXPECT_EQ(s.cache.inconsistentBytes(0, 64 * 64), 0u);
}

TEST(Hierarchy, PeekDoesNotPerturbState) {
  Sim s;
  s.storeU64(0, 5);
  const auto before = s.cache.events();
  (void)s.peekU64(0);
  (void)s.peekU64(4096);
  const auto after = s.cache.events();
  EXPECT_EQ(after.loads, before.loads);
  EXPECT_EQ(after.misses[0], before.misses[0]);
}

TEST(Hierarchy, CrossBlockAccessTouchesTwoBlocks) {
  Sim s;
  const auto before = s.cache.events();
  s.storeU64(60, 0xABCDEF0123456789ULL);  // spans blocks 0 and 1
  EXPECT_EQ(s.cache.events().stores, before.stores + 2);
  EXPECT_EQ(s.loadU64(60), 0xABCDEF0123456789ULL);
}

TEST(Hierarchy, FlushRangeCoversPartialBlocks) {
  Sim s;
  s.storeU64(60, ~0ULL);  // dirty bytes in blocks 0 and 1
  s.cache.flushRange(60, 8, ms::FlushKind::Clwb);
  EXPECT_EQ(s.loadU64(60), ~0ULL);
  EXPECT_EQ(s.cache.inconsistentBytes(0, 128), 0u);
}

// Property test: after an arbitrary random workload, the hierarchy invariants
// hold and peek() always observes the last written value.
TEST(HierarchyProperty, RandomWorkloadPreservesValuesAndInvariants) {
  easycrash::Rng rng(12345);
  Sim s;
  constexpr std::uint64_t kWords = 512;  // 4KB working set over tiny caches
  std::vector<std::uint64_t> expected(kWords, 0);
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t w = rng.below(kWords);
    const std::uint64_t addr = w * 8;
    switch (rng.below(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {
        const std::uint64_t v = rng();
        s.storeU64(addr, v);
        expected[w] = v;
        break;
      }
      case 4:
      case 5:
      case 6:
      case 7:
        ASSERT_EQ(s.loadU64(addr), expected[w]) << "word " << w;
        break;
      case 8:
        s.cache.flushBlock(addr, rng.below(2) ? ms::FlushKind::Clwb
                                              : ms::FlushKind::Clflushopt);
        break;
      case 9:
        ASSERT_EQ(s.peekU64(addr), expected[w]);
        break;
    }
    if (step % 2048 == 0) s.cache.checkInvariants();
  }
  s.cache.checkInvariants();
  for (std::uint64_t w = 0; w < kWords; ++w) {
    ASSERT_EQ(s.peekU64(w * 8), expected[w]);
  }
}

// Property: crash at any point only ever loses dirty data; clean/flushed data
// always survives exactly.
TEST(HierarchyProperty, CrashNeverCorruptsFlushedData) {
  easycrash::Rng rng(999);
  for (int trial = 0; trial < 20; ++trial) {
    Sim s;
    constexpr std::uint64_t kWords = 256;
    std::vector<std::uint64_t> lastFlushedValue(kWords, 0);
    std::vector<bool> dirtySinceFlush(kWords, false);
    std::vector<bool> everFlushed(kWords, false);
    for (int step = 0; step < 3000; ++step) {
      const std::uint64_t w = rng.below(kWords);
      s.storeU64(w * 8, rng());
      dirtySinceFlush[w] = true;
      if (rng.below(4) == 0) {
        s.cache.flushBlock(w * 8, ms::FlushKind::Clwb);
        // The whole block is now persistent and clean.
        const std::uint64_t firstWord = (w * 8) / 64 * 8;
        for (std::uint64_t k = 0; k < 8 && firstWord + k < kWords; ++k) {
          lastFlushedValue[firstWord + k] = s.peekU64((firstWord + k) * 8);
          dirtySinceFlush[firstWord + k] = false;
          everFlushed[firstWord + k] = true;
        }
      }
    }
    s.cache.invalidateAll();
    // Words not modified since their last flush must survive exactly; words
    // modified since may legitimately hold a newer natural write-back, but
    // never anything else.
    for (std::uint64_t w = 0; w < kWords; ++w) {
      if (everFlushed[w] && !dirtySinceFlush[w]) {
        ASSERT_EQ(s.peekU64(w * 8), lastFlushedValue[w]) << "trial " << trial;
      }
    }
  }
}
