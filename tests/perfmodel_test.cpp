// Tests for the NVM performance model: profiles, the time model's
// monotonicity properties, and the write-count study used by Figure 9.
#include <gtest/gtest.h>

#include "easycrash/apps/registry.hpp"
#include "easycrash/perfmodel/time_model.hpp"
#include "easycrash/perfmodel/write_model.hpp"
#include "easycrash/runtime/persistence_plan.hpp"
#include "easycrash/runtime/runtime.hpp"

namespace ec = easycrash;
namespace pm = easycrash::perfmodel;
namespace ms = easycrash::memsim;

namespace {

ms::MemEvents sampleEvents() {
  ms::MemEvents e;
  e.loads = 1000000;
  e.stores = 400000;
  e.hits = {900000, 300000, 150000, 0};
  e.misses = {500000, 200000, 50000, 0};
  e.nvmBlockReads = 50000;
  e.nvmBlockWrites = 30000;
  e.flushDirty = 4000;
  e.flushClean = 2000;
  e.flushNonResident = 6000;
  e.flushInducedNvmWrites = 4000;
  return e;
}

}  // namespace

TEST(Profiles, DramBaselineValues) {
  const auto dram = pm::NvmProfile::dram();
  EXPECT_DOUBLE_EQ(dram.readLatencyNs, 87.0);
  EXPECT_DOUBLE_EQ(dram.readBandwidthGBps, 106.0);
}

TEST(Profiles, LatencyScalingMultipliesLatencyOnly) {
  const auto p = pm::NvmProfile::latencyScaled(4.0);
  EXPECT_DOUBLE_EQ(p.readLatencyNs, 4.0 * 87.0);
  EXPECT_DOUBLE_EQ(p.readBandwidthGBps, 106.0);
}

TEST(Profiles, BandwidthScalingDividesBandwidthOnly) {
  const auto p = pm::NvmProfile::bandwidthScaled(8.0);
  EXPECT_DOUBLE_EQ(p.readBandwidthGBps, 106.0 / 8.0);
  EXPECT_DOUBLE_EQ(p.readLatencyNs, 87.0);
}

TEST(Profiles, OptaneIsAsymmetric) {
  const auto p = pm::NvmProfile::optaneDcPmm();
  EXPECT_GT(p.readLatencyNs, pm::NvmProfile::dram().readLatencyNs);
  EXPECT_LT(p.writeBandwidthGBps, p.readBandwidthGBps);
}

TEST(TimeModelTest, HigherLatencyCostsMoreTime) {
  const auto events = sampleEvents();
  const double dram = pm::TimeModel(pm::NvmProfile::dram()).executionTimeNs(events);
  const double lat4 =
      pm::TimeModel(pm::NvmProfile::latencyScaled(4.0)).executionTimeNs(events);
  const double lat8 =
      pm::TimeModel(pm::NvmProfile::latencyScaled(8.0)).executionTimeNs(events);
  EXPECT_LT(dram, lat4);
  EXPECT_LT(lat4, lat8);
}

TEST(TimeModelTest, LowerBandwidthCostsMoreTime) {
  const auto events = sampleEvents();
  const double dram = pm::TimeModel(pm::NvmProfile::dram()).executionTimeNs(events);
  const double bw6 =
      pm::TimeModel(pm::NvmProfile::bandwidthScaled(6.0)).executionTimeNs(events);
  EXPECT_LT(dram, bw6);
}

TEST(TimeModelTest, MoreDirtyFlushesCostMoreTime) {
  auto a = sampleEvents();
  auto b = sampleEvents();
  b.flushDirty += 10000;
  b.flushInducedNvmWrites += 10000;
  b.nvmBlockWrites += 10000;
  const pm::TimeModel model(pm::NvmProfile::dram());
  EXPECT_LT(model.executionTimeNs(a), model.executionTimeNs(b));
}

TEST(TimeModelTest, CleanFlushesAreMuchCheaperThanDirtyOnes) {
  ms::MemEvents dirty;
  dirty.flushDirty = 1000;
  dirty.flushInducedNvmWrites = 1000;
  dirty.nvmBlockWrites = 1000;
  ms::MemEvents clean;
  clean.flushClean = 1000;
  const pm::TimeModel model(pm::NvmProfile::dram());
  EXPECT_GT(model.persistenceTimeNs(dirty), 3.0 * model.persistenceTimeNs(clean))
      << "paper §2.1: no write-back happens for clean/non-resident blocks";
}

TEST(TimeModelTest, PersistenceTimeIsPartOfExecutionTime) {
  const auto events = sampleEvents();
  const pm::TimeModel model(pm::NvmProfile::dram());
  EXPECT_LE(model.persistenceTimeNs(events), model.executionTimeNs(events));
}

TEST(TimeModelTest, ZeroEventsZeroTime) {
  const pm::TimeModel model(pm::NvmProfile::dram());
  EXPECT_DOUBLE_EQ(model.executionTimeNs(ms::MemEvents{}), 0.0);
}

TEST(WriteModelTest, PlanAddsOnlyFlushInducedWrites) {
  const auto factory = ec::apps::findBenchmark("is").factory;
  const auto plain = pm::measureRunWrites(factory, {});
  // Only the always-persisted loop-iterator bookmark is flushed (paper
  // footnote 3): two flushes per iteration, nothing else.
  EXPECT_GT(plain.flushInducedWrites, 0u);
  EXPECT_LE(plain.flushInducedWrites, 32u);

  // Persist the histogram object (id discovered from a probe runtime).
  ec::runtime::Runtime rt;
  auto app = factory();
  app->setup(rt);
  const auto hist = rt.findObject("bucket_hist");
  ASSERT_TRUE(hist.has_value());
  const auto withPlan = pm::measureRunWrites(
      factory, ec::runtime::PersistencePlan::atMainLoopEnd({*hist}));
  EXPECT_GT(withPlan.flushInducedWrites, 0u);
  EXPECT_GE(withPlan.totalNvmWrites, plain.totalNvmWrites);
}

TEST(WriteModelTest, CheckpointAddsAtLeastTheCopiedBlocks) {
  const auto factory = ec::apps::findBenchmark("is").factory;
  const auto result =
      pm::measureCheckpointWrites(factory, pm::CheckpointScope::AllWritableObjects);
  // The checkpoint shadow itself is at least (writable bytes / 64) blocks.
  ec::runtime::Runtime rt;
  auto app = factory();
  app->setup(rt);
  std::uint64_t writableBytes = 0;
  for (const auto& o : rt.objects()) {
    if (!o.readOnly) writableBytes += o.bytes;
  }
  EXPECT_GE(result.checkpointInducedWrites, writableBytes / 64);
}

TEST(WriteModelTest, CriticalScopeWritesLessThanAllScope) {
  const auto factory = ec::apps::findBenchmark("is").factory;
  ec::runtime::Runtime rt;
  auto app = factory();
  app->setup(rt);
  const auto hist = rt.findObject("bucket_hist");
  ASSERT_TRUE(hist.has_value());
  const auto critical = pm::measureCheckpointWrites(
      factory, pm::CheckpointScope::CriticalObjects, {*hist});
  const auto all =
      pm::measureCheckpointWrites(factory, pm::CheckpointScope::AllWritableObjects);
  EXPECT_LT(critical.checkpointInducedWrites, all.checkpointInducedWrites);
}

TEST(WriteModelTest, SelectiveFlushingBeatsCheckpointing) {
  // The paper's Figure 9 headline: EasyCrash's flush-based persistence adds
  // fewer NVM writes than an in-NVM checkpoint of all writable objects.
  const auto factory = ec::apps::findBenchmark("ft").factory;
  ec::runtime::Runtime rt;
  auto app = factory();
  app->setup(rt);
  const auto csum = rt.findObject("chksums");
  ASSERT_TRUE(csum.has_value());
  const auto plain = pm::measureRunWrites(factory, {});
  const auto withEc = pm::measureRunWrites(
      factory, ec::runtime::PersistencePlan::atMainLoopEnd({*csum}));
  const auto cr =
      pm::measureCheckpointWrites(factory, pm::CheckpointScope::AllWritableObjects);
  const auto ecExtra = withEc.totalNvmWrites - plain.totalNvmWrites;
  EXPECT_LT(ecExtra, cr.checkpointInducedWrites);
}
