// Tests for the pre-forked worker pool behind `--isolation fork`
// (docs/ROBUSTNESS.md): the frame protocol round-trip, the shared-memory
// arena, and — the reason the pool exists — classification of every way a
// child can die (signal, SIGKILL, allocator exhaustion, torn protocol
// stream, parent-enforced deadline) followed by a clean respawn. All child
// behaviour is driven through request frames: gtest assertions cannot run
// in the child, so each scenario replies (or dies) and the parent asserts
// on the Reply.
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "easycrash/crash/worker_pool.hpp"

namespace cr = easycrash::crash;

namespace {

using namespace std::chrono_literals;

/// Command interpreter the child runs per request. Deaths are deliberate:
/// "abort" dies by signal (SIGABRT, not a raw segfault, so sanitizer builds
/// classify identically), "oom" escapes a std::bad_alloc to the worker main
/// loop, "torn" hand-writes a garbage length prefix, "hang" never replies.
void scenarioHandler(int slot, const std::string& request,
                     const cr::WorkerPool::ChildChannel& ch) {
  (void)slot;
  if (request.rfind("echo:", 0) == 0) {
    ch.send("ok:" + request.substr(5));
  } else if (request == "pid") {
    ch.send(std::to_string(::getpid()));
  } else if (request == "arena") {
    std::memcpy(ch.arena(), "shared-arena-payload", 20);
    ch.send("written");
  } else if (request == "abort") {
    std::abort();
  } else if (request == "oom") {
    throw std::bad_alloc();
  } else if (request == "torn") {
    const unsigned char junk[] = {0xff, 0xff, 0xff, 0x7f, 0x00};
    (void)!::write(ch.responseFd(), junk, sizeof junk);
    ::_exit(2);
  } else if (request == "hang") {
    for (;;) std::this_thread::sleep_for(1s);
  } else {
    ch.send("unknown");
  }
}

cr::WorkerPool::Reply roundTrip(cr::WorkerPool& pool, int slot,
                                const std::string& request,
                                std::chrono::milliseconds deadline = 10s) {
  EXPECT_TRUE(pool.ensureWorker(slot));
  pool.send(slot, request);
  return pool.recv(slot, deadline);
}

}  // namespace

TEST(WorkerPoolTest, EchoRoundTripAcrossSlots) {
  cr::WorkerPool pool(3, 4096, scenarioHandler);
  EXPECT_EQ(pool.workers(), 3);
  EXPECT_EQ(pool.aliveCount(), 3);
  EXPECT_EQ(pool.spawnCount(), 3);
  for (int slot = 0; slot < 3; ++slot) {
    for (int i = 0; i < 5; ++i) {
      const auto reply = roundTrip(pool, slot, "echo:m" + std::to_string(i));
      ASSERT_TRUE(reply.ok);
      EXPECT_EQ(reply.frame, "ok:m" + std::to_string(i));
    }
  }
}

TEST(WorkerPoolTest, ChildrenRunInSeparateProcesses) {
  cr::WorkerPool pool(2, 4096, scenarioHandler);
  const auto a = roundTrip(pool, 0, "pid");
  const auto b = roundTrip(pool, 1, "pid");
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_NE(a.frame, b.frame);
  EXPECT_NE(a.frame, std::to_string(::getpid()));
}

TEST(WorkerPoolTest, ArenaIsSharedWithTheChild) {
  cr::WorkerPool pool(1, 4096, scenarioHandler);
  std::memset(pool.arena(0), 0, 32);
  const auto reply = roundTrip(pool, 0, "arena");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.frame, "written");
  EXPECT_EQ(std::memcmp(pool.arena(0), "shared-arena-payload", 20), 0);
}

TEST(WorkerPoolTest, SignalDeathClassifiesAsCrashedAndRespawns) {
  cr::WorkerPool pool(1, 4096, scenarioHandler);
  const pid_t firstPid = pool.pid(0);
  const auto death = roundTrip(pool, 0, "abort");
  EXPECT_FALSE(death.ok);
  EXPECT_FALSE(death.timedOut);
  EXPECT_EQ(death.death, cr::WorkerDeath::Crashed);
  EXPECT_EQ(death.signal, SIGABRT);
  EXPECT_FALSE(pool.alive(0));

  bool respawned = false;
  ASSERT_TRUE(pool.ensureWorker(0, &respawned));
  EXPECT_TRUE(respawned);
  EXPECT_NE(pool.pid(0), firstPid);
  EXPECT_EQ(pool.spawnCount(), 2);
  const auto reply = roundTrip(pool, 0, "echo:alive");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.frame, "ok:alive");
}

TEST(WorkerPoolTest, EscapedBadAllocClassifiesAsOom) {
  cr::WorkerPool pool(1, 4096, scenarioHandler);
  const auto death = roundTrip(pool, 0, "oom");
  EXPECT_FALSE(death.ok);
  EXPECT_EQ(death.death, cr::WorkerDeath::Oom);
  EXPECT_EQ(death.exitStatus, cr::kWorkerOomExit);
}

TEST(WorkerPoolTest, TornStreamClassifiesAsProtocol) {
  cr::WorkerPool pool(1, 4096, scenarioHandler);
  const auto death = roundTrip(pool, 0, "torn");
  EXPECT_FALSE(death.ok);
  EXPECT_FALSE(death.timedOut);
  EXPECT_EQ(death.death, cr::WorkerDeath::Protocol);
  // The stream is unrecoverable: the slot is dead until ensureWorker().
  EXPECT_FALSE(pool.alive(0));
}

TEST(WorkerPoolTest, DeadlineKillsHungWorker) {
  cr::WorkerPool pool(1, 4096, scenarioHandler);
  const auto start = std::chrono::steady_clock::now();
  const auto death = roundTrip(pool, 0, "hang", 300ms);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(death.ok);
  EXPECT_TRUE(death.timedOut);
  EXPECT_EQ(death.death, cr::WorkerDeath::Killed);
  EXPECT_EQ(death.signal, SIGKILL);
  EXPECT_LT(elapsed, 10s) << "deadline must not degenerate into a hang";
}

TEST(WorkerPoolTest, DestructorReapsEveryChild) {
  std::vector<pid_t> pids;
  {
    cr::WorkerPool pool(3, 4096, scenarioHandler);
    for (int slot = 0; slot < 3; ++slot) {
      const auto reply = roundTrip(pool, slot, "echo:x");
      ASSERT_TRUE(reply.ok);
      pids.push_back(pool.pid(slot));
    }
  }
  // After the destructor every worker is gone AND reaped: a zombie would
  // still accept signal 0, so ESRCH proves both.
  for (const pid_t pid : pids) {
    EXPECT_EQ(::kill(pid, 0), -1) << "worker " << pid << " outlived the pool";
    EXPECT_EQ(errno, ESRCH);
  }
}

TEST(WorkerPoolTest, KillReapsImmediately) {
  cr::WorkerPool pool(2, 4096, scenarioHandler);
  const pid_t pid = pool.pid(1);
  pool.kill(1);
  EXPECT_FALSE(pool.alive(1));
  EXPECT_EQ(pool.aliveCount(), 1);
  EXPECT_EQ(::kill(pid, 0), -1);
  EXPECT_EQ(errno, ESRCH);
  // The sibling slot is unaffected.
  const auto reply = roundTrip(pool, 0, "echo:still-here");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.frame, "ok:still-here");
}
