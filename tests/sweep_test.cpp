// Tests for the single-sweep campaign evaluator (docs/INTERNALS.md): the
// runtime's multi-arm capture API, capture non-perturbation, and the
// campaign-level guarantee that --sweep on/off produce byte-identical
// results across thread counts, duplicate crash indices, and the fallback
// path taken when the sweep run itself dies.
#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "easycrash/crash/campaign.hpp"
#include "easycrash/crash/report.hpp"
#include "easycrash/runtime/runtime.hpp"
#include "easycrash/runtime/tracked.hpp"
#include "easycrash/telemetry/metrics.hpp"

namespace rt = easycrash::runtime;
namespace cr = easycrash::crash;
namespace ms = easycrash::memsim;
namespace tl = easycrash::telemetry;

namespace {

/// Accumulator app mirroring campaign_test's ProbeApp, with a knob that
/// throws a harness-level exception (not an AppInterrupt) at a fixed
/// iteration — the "throw before the armed crash fires" failure path.
class SweepApp final : public rt::IApp {
 public:
  struct Knobs {
    int iterations = 6;
    int cells = 256;
    /// 0 = never; otherwise crashing runs die on reaching this iteration.
    /// Restarts are exempt (they run in direct mode), and sweepFactory
    /// exempts the first construction so the golden run completes.
    int throwAtIteration = 0;
  };

  explicit SweepApp(Knobs knobs) : knobs_(knobs) {}

  [[nodiscard]] const rt::AppInfo& info() const override { return info_; }

  void setup(rt::Runtime& runtime) override {
    runtime.declareRegionCount(2);
    data_ = rt::TrackedArray<std::int64_t>(runtime, "data", knobs_.cells, true);
    sum_ = rt::TrackedScalar<std::int64_t>(runtime, "sum", true);
  }

  void initialize(rt::Runtime& runtime) override {
    (void)runtime;
    for (int i = 0; i < knobs_.cells; ++i) data_.set(i, 0);
    sum_.set(0);
  }

  void iterate(rt::Runtime& runtime, int iteration) override {
    {
      rt::RegionScope region(runtime, 0);
      if (knobs_.throwAtIteration > 0 && !runtime.direct() &&
          iteration >= knobs_.throwAtIteration) {
        throw std::runtime_error("sweep-app: induced failure");
      }
      for (int i = 0; i < knobs_.cells; ++i) data_.set(i, data_.get(i) + 1);
      region.iterationEnd();
    }
    {
      rt::RegionScope region(runtime, 1);
      std::int64_t total = 0;
      for (int i = 0; i < knobs_.cells; ++i) total += data_.get(i);
      sum_.set(total);
      region.iterationEnd();
    }
  }

  [[nodiscard]] int nominalIterations() const override { return knobs_.iterations; }

  [[nodiscard]] bool converged(rt::Runtime& runtime, int iteration) override {
    (void)runtime;
    return iteration >= knobs_.iterations;
  }

  [[nodiscard]] rt::VerifyOutcome verify(rt::Runtime& runtime) override {
    (void)runtime;
    rt::VerifyOutcome out;
    std::int64_t total = 0;
    for (int i = 0; i < knobs_.cells; ++i) total += data_.peek(i);
    const auto expected =
        static_cast<std::int64_t>(knobs_.iterations) * knobs_.cells;
    out.metric = static_cast<double>(total);
    out.pass = total == expected;
    return out;
  }

 private:
  Knobs knobs_;
  rt::AppInfo info_{"sweep-app", "sweep evaluator test app"};
  rt::TrackedArray<std::int64_t> data_;
  rt::TrackedScalar<std::int64_t> sum_;
};

rt::AppFactory sweepFactory(SweepApp::Knobs knobs) {
  // The campaign's golden run is always the factory's first construction;
  // it must complete for the campaign to start, so it never throws.
  auto constructions = std::make_shared<std::atomic<int>>(0);
  return [knobs, constructions] {
    auto effective = knobs;
    if (constructions->fetch_add(1) == 0) effective.throwAtIteration = 0;
    return std::make_unique<SweepApp>(effective);
  };
}

cr::CampaignConfig tinyConfig(int tests) {
  cr::CampaignConfig config;
  config.numTests = tests;
  config.cache = ms::CacheConfig::tiny();
  return config;
}

void expectSameRecords(const cr::CampaignResult& a, const cr::CampaignResult& b) {
  ASSERT_EQ(a.tests.size(), b.tests.size());
  for (std::size_t i = 0; i < a.tests.size(); ++i) {
    const auto& x = a.tests[i];
    const auto& y = b.tests[i];
    EXPECT_EQ(x.crashAccessIndex, y.crashAccessIndex) << "trial " << i;
    EXPECT_EQ(x.region, y.region) << "trial " << i;
    EXPECT_EQ(x.regionPath, y.regionPath) << "trial " << i;
    EXPECT_EQ(x.crashIteration, y.crashIteration) << "trial " << i;
    EXPECT_EQ(x.restartIteration, y.restartIteration) << "trial " << i;
    EXPECT_EQ(x.response, y.response) << "trial " << i;
    EXPECT_EQ(x.extraIterations, y.extraIterations) << "trial " << i;
    EXPECT_EQ(x.inconsistentRate, y.inconsistentRate) << "trial " << i;
  }
}

std::string campaignCsv(const cr::CampaignResult& campaign) {
  std::ostringstream os;
  cr::writeCampaignCsv(campaign, os);
  return os.str();
}

std::uint64_t counterValue(const char* name) {
  return tl::MetricsRegistry::instance().counter(name).value();
}

}  // namespace

// ---- Runtime capture API ----------------------------------------------------

TEST(CaptureApiTest, CaptureContextMatchesTheCrashEventAtTheSameIndex) {
  constexpr std::uint64_t kIndex = 700;

  // Reference: a real crash armed at the index.
  rt::CrashEvent reference;
  {
    rt::Runtime runtime(ms::CacheConfig::tiny());
    SweepApp app({});
    app.setup(runtime);
    app.initialize(runtime);
    runtime.armCrash(kIndex);
    try {
      (void)rt::Driver::run(app, runtime, 1, app.nominalIterations());
      FAIL() << "armed crash did not fire";
    } catch (const rt::CrashEvent& crash) {
      reference = crash;
    }
  }

  // A capture at the same index on an identical run, which then completes.
  std::vector<rt::CrashEvent> captured;
  {
    rt::Runtime runtime(ms::CacheConfig::tiny());
    SweepApp app({});
    app.setup(runtime);
    app.initialize(runtime);
    runtime.armCaptures({kIndex},
                        [&](const rt::CrashEvent& at) { captured.push_back(at); });
    const auto run = rt::Driver::run(app, runtime, 1, app.nominalIterations());
    EXPECT_TRUE(run.verification.pass);
  }

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].accessIndex, reference.accessIndex);
  EXPECT_EQ(captured[0].activeRegion, reference.activeRegion);
  EXPECT_EQ(captured[0].iteration, reference.iteration);
  EXPECT_EQ(captured[0].regionPath, reference.regionPath);
}

TEST(CaptureApiTest, CapturesFireInOrderAndDoNotReplayAfterAThrowingHook) {
  rt::Runtime runtime(ms::CacheConfig::tiny());
  rt::TrackedArray<std::int64_t> data(runtime, "data", 64, true);
  runtime.setCrashWindow(true);

  struct StopEarly {};
  std::vector<std::uint64_t> fired;
  runtime.armCaptures({10, 20, 30}, [&](const rt::CrashEvent& at) {
    fired.push_back(at.accessIndex);
    if (fired.size() == 2) throw StopEarly{};
  });

  const auto tick = [&] { data.set(0, data.peek(0) + 1); };
  for (int i = 0; i < 15; ++i) tick();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_THROW(
      {
        for (int i = 0; i < 10; ++i) tick();
      },
      StopEarly);
  // The cursor advances before the hook runs: continuing the run must fire
  // the remaining capture, not replay the one whose hook threw.
  for (int i = 0; i < 15; ++i) tick();
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], 10u);
  EXPECT_EQ(fired[1], 20u);
  EXPECT_EQ(fired[2], 30u);
}

TEST(CaptureApiTest, ArmCapturesValidatesItsIndices) {
  rt::Runtime runtime(ms::CacheConfig::tiny());
  const auto hook = [](const rt::CrashEvent&) {};
  EXPECT_THROW(runtime.armCaptures({}, hook), std::logic_error);
  EXPECT_THROW(runtime.armCaptures({0}, hook), std::logic_error);
  EXPECT_THROW(runtime.armCaptures({5, 4}, hook), std::logic_error);
  EXPECT_THROW(runtime.armCaptures({5, 5}, hook), std::logic_error);
  EXPECT_THROW(runtime.armCaptures({1, 2, 3}, nullptr), std::logic_error);
}

TEST(CaptureApiTest, ArmedCapturesDoNotPerturbTheRun) {
  const auto execute = [](bool withCaptures, ms::MemEvents* events,
                          std::uint64_t* windowAccesses, double* metric,
                          std::uint64_t* nvmWrites) {
    rt::Runtime runtime(ms::CacheConfig::tiny());
    SweepApp app({});
    app.setup(runtime);
    app.initialize(runtime);
    if (withCaptures) {
      // A hook that leans on every read-only inspection path the campaign's
      // sweep uses: none of them may touch the caches or the clock.
      runtime.armCaptures({50, 500, 2000}, [&](const rt::CrashEvent&) {
        for (const auto& object : runtime.objects()) {
          (void)runtime.dumpObjectNvm(object.id);
          (void)runtime.dumpObjectCurrent(object.id);
          (void)runtime.inconsistentRate(object.id);
        }
        (void)runtime.bookmarkedIterationNvm();
        (void)runtime.regionPath();
      });
    }
    const auto run = rt::Driver::run(app, runtime, 1, app.nominalIterations());
    *events = runtime.events();
    *windowAccesses = runtime.windowAccesses();
    *metric = run.verification.metric;
    *nvmWrites = runtime.nvm().blockWrites();
  };

  ms::MemEvents bare;
  ms::MemEvents observed;
  std::uint64_t bareAccesses = 0;
  std::uint64_t observedAccesses = 0;
  double bareMetric = 0;
  double observedMetric = 0;
  std::uint64_t bareNvmWrites = 0;
  std::uint64_t observedNvmWrites = 0;
  execute(false, &bare, &bareAccesses, &bareMetric, &bareNvmWrites);
  execute(true, &observed, &observedAccesses, &observedMetric, &observedNvmWrites);

  EXPECT_EQ(observedAccesses, bareAccesses);
  EXPECT_EQ(observedMetric, bareMetric);
  EXPECT_EQ(observedNvmWrites, bareNvmWrites);
  EXPECT_EQ(observed.loads, bare.loads);
  EXPECT_EQ(observed.stores, bare.stores);
  EXPECT_EQ(observed.hits, bare.hits);
  EXPECT_EQ(observed.misses, bare.misses);
  EXPECT_EQ(observed.nvmBlockReads, bare.nvmBlockReads);
  EXPECT_EQ(observed.nvmBlockWrites, bare.nvmBlockWrites);
  EXPECT_EQ(observed.totalFlushes(), bare.totalFlushes());
}

// ---- Campaign-level equivalence ---------------------------------------------

TEST(SweepTest, SweepOnMatchesSweepOffAcrossThreadCounts) {
  auto config = tinyConfig(40);
  config.resilience.isolate = true;

  config.sweep = false;
  const auto off = cr::CampaignRunner(sweepFactory({}), config).run();
  EXPECT_TRUE(off.failures.empty());

  config.sweep = true;
  const auto on1 = cr::CampaignRunner(sweepFactory({}), config).run();
  config.threads = 4;
  const auto on4 = cr::CampaignRunner(sweepFactory({}), config).run();

  expectSameRecords(off, on1);
  expectSameRecords(off, on4);
  EXPECT_EQ(campaignCsv(off), campaignCsv(on1));
  EXPECT_EQ(campaignCsv(off), campaignCsv(on4));
}

TEST(SweepTest, DuplicateCrashIndicesShareOneCaptureAndStayIdentical) {
  // A window of a few dozen accesses with 200 draws guarantees duplicate
  // crash indices (pigeonhole), exercising the shared-capture path.
  SweepApp::Knobs knobs;
  knobs.cells = 4;
  knobs.iterations = 3;
  auto config = tinyConfig(200);
  config.resilience.isolate = true;

  config.sweep = false;
  const auto off = cr::CampaignRunner(sweepFactory(knobs), config).run();

  const auto runsBefore = counterValue("campaign.sweep_runs");
  const auto capturesBefore = counterValue("campaign.sweep_captures");
  config.sweep = true;
  const auto on = cr::CampaignRunner(sweepFactory(knobs), config).run();
  expectSameRecords(off, on);
  EXPECT_EQ(campaignCsv(off), campaignCsv(on));

  std::set<std::uint64_t> distinct;
  for (const auto& record : on.tests) distinct.insert(record.crashAccessIndex);
  ASSERT_EQ(on.tests.size(), 200u);
  EXPECT_LT(distinct.size(), 200u) << "window too large to force duplicates";
  // One crashing run, one capture per DISTINCT index — duplicates share.
  EXPECT_EQ(counterValue("campaign.sweep_runs") - runsBefore, 1u);
  EXPECT_EQ(counterValue("campaign.sweep_captures") - capturesBefore,
            distinct.size());
}

TEST(SweepTest, SweepRunFailureFallsBackToThePerTrialPath) {
  // The app dies at iteration 3, so the sweep run can only capture crash
  // points inside the first two iterations; everything later must fall back
  // to the per-trial path and be recorded as the same trial failures the
  // legacy mode produces.
  SweepApp::Knobs knobs;
  knobs.throwAtIteration = 3;
  auto config = tinyConfig(30);
  config.resilience.isolate = true;
  config.resilience.maxRetries = 0;

  config.sweep = false;
  const auto off = cr::CampaignRunner(sweepFactory(knobs), config).run();

  const auto fallbacksBefore = counterValue("campaign.sweep_fallbacks");
  config.sweep = true;
  const auto on = cr::CampaignRunner(sweepFactory(knobs), config).run();

  ASSERT_GT(off.failures.size(), 0u) << "expected late crash points to fail";
  ASSERT_GT(off.tests.size(), 0u) << "expected early crash points to complete";
  expectSameRecords(off, on);
  ASSERT_EQ(on.failures.size(), off.failures.size());
  for (std::size_t i = 0; i < off.failures.size(); ++i) {
    EXPECT_EQ(on.failures[i].trial, off.failures[i].trial);
    EXPECT_EQ(on.failures[i].reason, off.failures[i].reason);
    EXPECT_EQ(on.failures[i].regionPath, off.failures[i].regionPath);
  }
  EXPECT_GT(counterValue("campaign.sweep_fallbacks") - fallbacksBefore, 0u);
}

TEST(SweepTest, ThrowBeforeArmedCrashStillNamesTheCrashSite) {
  // Regression: the crashing run re-zeroed the record, so a trial that threw
  // before its armed crash fired reported regionPath "main" instead of the
  // region stack the run actually stood in when it died.
  SweepApp::Knobs knobs;
  knobs.throwAtIteration = 2;
  auto config = tinyConfig(20);
  config.sweep = false;
  config.resilience.isolate = true;
  config.resilience.maxRetries = 0;

  const auto result = cr::CampaignRunner(sweepFactory(knobs), config).run();
  ASSERT_GT(result.failures.size(), 0u);
  for (const auto& failure : result.failures) {
    // The induced throw happens inside region 0 ("R1").
    EXPECT_EQ(failure.regionPath, "R1") << "trial " << failure.trial;
  }
}
